package ams

import (
	"context"
	"testing"
)

// bg is the no-cancellation context the tests label under.
var bg = context.Background()

// testSystem builds a small shared system; tests run sequentially.
var testSys = mustSystem()

func mustSystem() *System {
	s, err := New(Config{Dataset: DatasetMSCOCO, NumImages: 150, Seed: 3})
	if err != nil {
		panic(err)
	}
	return s
}

// testAgent trains once and is reused.
var testAgent = mustAgent()

func mustAgent() *Agent {
	a, err := testSys.TrainAgent(TrainOptions{
		Algorithm: DuelingDQN, Epochs: 5, Hidden: []int{32}, Seed: 11,
	})
	if err != nil {
		panic(err)
	}
	return a
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Dataset: "nope", NumImages: 100}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := New(Config{NumImages: 5}); err == nil {
		t.Fatal("tiny dataset accepted")
	}
	if _, err := New(Config{NumImages: 100, TrainFrac: 1.5}); err == nil {
		t.Fatal("bad train fraction accepted")
	}
}

func TestDefaults(t *testing.T) {
	s, err := New(Config{NumImages: 50})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s.cfg.Dataset != DatasetMSCOCO || s.cfg.TrainFrac != 0.2 {
		t.Fatalf("defaults not applied: %+v", s.cfg)
	}
	if s.NumTrainImages()+s.NumTestImages() != 50 {
		t.Fatalf("split sizes wrong: %d+%d", s.NumTrainImages(), s.NumTestImages())
	}
}

func TestSystemShape(t *testing.T) {
	if got := len(testSys.ModelNames()); got != 30 {
		t.Fatalf("%d models", got)
	}
	noPol := testSys.NoPolicyTimeSec()
	if noPol < 4.8 || noPol > 5.5 {
		t.Fatalf("no-policy time %v", noPol)
	}
	if len(Datasets()) != 5 {
		t.Fatalf("Datasets() returned %d entries", len(Datasets()))
	}
}

func TestTrainAgentPriorityValidation(t *testing.T) {
	if _, err := testSys.TrainAgent(TrainOptions{
		Algorithm: DQN, Epochs: 1, Hidden: []int{8},
		Priorities: map[string]float64{"no-such-model": 2},
	}); err == nil {
		t.Fatal("unknown priority model accepted")
	}
	if _, err := testSys.TrainAgent(TrainOptions{
		Algorithm: DQN, Epochs: 1, Hidden: []int{8},
		Priorities: map[string]float64{"facedet-mtcnn": -1},
	}); err == nil {
		t.Fatal("negative priority accepted")
	}
}

func TestLabelUnconstrained(t *testing.T) {
	res, err := testSys.Label(bg, testAgent, testSys.TestItem(0), Budget{})
	if err != nil {
		t.Fatalf("Label: %v", err)
	}
	if res.Recall < 1-1e-9 {
		t.Fatalf("unconstrained labeling recall %v", res.Recall)
	}
	if len(res.ModelsRun) == 0 || len(res.ModelsRun) > 30 {
		t.Fatalf("models run: %d", len(res.ModelsRun))
	}
	// Valuable labels are a subset with conf >= threshold.
	for _, l := range res.ValuableLabels() {
		if l.Confidence < ValuableThreshold {
			t.Fatalf("valuable label below threshold: %+v", l)
		}
	}
}

func TestLabelDeadline(t *testing.T) {
	res, err := testSys.Label(bg, testAgent, testSys.TestItem(1), Budget{DeadlineSec: 0.5})
	if err != nil {
		t.Fatalf("Label: %v", err)
	}
	if res.TimeSec > 0.5+1e-9 {
		t.Fatalf("deadline violated: %v s", res.TimeSec)
	}
}

func TestLabelMemory(t *testing.T) {
	res, err := testSys.Label(bg, testAgent, testSys.TestItem(2), Budget{DeadlineSec: 0.8, MemoryGB: 8})
	if err != nil {
		t.Fatalf("Label: %v", err)
	}
	if res.TimeSec > 0.8+1e-9 {
		t.Fatalf("makespan exceeds deadline: %v", res.TimeSec)
	}
	// Memory without a deadline is rejected.
	if _, err := testSys.Label(bg, testAgent, testSys.TestItem(2), Budget{MemoryGB: 8}); err == nil {
		t.Fatal("memory budget without deadline accepted")
	}
}

func TestLabelValidation(t *testing.T) {
	if _, err := testSys.Label(bg, nil, testSys.TestItem(0), Budget{}); err == nil {
		t.Fatal("nil agent accepted")
	}
	if _, err := testSys.Label(bg, testAgent, testSys.TestItem(-1), Budget{}); err == nil {
		t.Fatal("negative image accepted")
	}
	if _, err := testSys.Label(bg, testAgent, testSys.TestItem(testSys.NumTestImages()), Budget{}); err == nil {
		t.Fatal("out-of-range image accepted")
	}
}

func TestAgentBeatsRandomBaseline(t *testing.T) {
	var agentSum, randSum float64
	n := testSys.NumTestImages()
	for i := 0; i < n; i++ {
		a, err := testSys.Label(bg, testAgent, testSys.TestItem(i), Budget{})
		if err != nil {
			t.Fatal(err)
		}
		r, err := testSys.LabelRandom(bg, testSys.TestItem(i), Budget{}, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		agentSum += a.TimeSec
		randSum += r.TimeSec
	}
	if agentSum >= randSum {
		t.Fatalf("agent time %v not below random %v", agentSum, randSum)
	}
}

func TestOptimalStarRecall(t *testing.T) {
	r, err := testSys.OptimalStarRecall(0, Budget{DeadlineSec: 1})
	if err != nil || r <= 0 || r > 1 {
		t.Fatalf("optimal* = %v, %v", r, err)
	}
	full, err := testSys.OptimalStarRecall(0, Budget{})
	if err != nil || full != 1 {
		t.Fatalf("unconstrained optimal* = %v, %v", full, err)
	}
	mem, err := testSys.OptimalStarRecall(0, Budget{DeadlineSec: 1, MemoryGB: 8})
	if err != nil || mem <= 0 || mem > 1 {
		t.Fatalf("memory optimal* = %v, %v", mem, err)
	}
	if _, err := testSys.OptimalStarRecall(0, Budget{MemoryGB: 8}); err == nil {
		t.Fatal("memory without deadline accepted")
	}
}

func TestAgentSaveLoad(t *testing.T) {
	path := t.TempDir() + "/agent.gob"
	if err := testAgent.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadAgent(path)
	if err != nil {
		t.Fatalf("LoadAgent: %v", err)
	}
	if loaded.Algorithm() != DuelingDQN || loaded.TrainedOn() != DatasetMSCOCO {
		t.Fatalf("metadata wrong: %v %v", loaded.Algorithm(), loaded.TrainedOn())
	}
	state := []int{1, 2, 3}
	a := testAgent.PredictValues(state)
	b := loaded.PredictValues(state)
	if len(a) != 30 || len(b) != 30 {
		t.Fatalf("PredictValues lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("loaded agent predicts differently")
		}
	}
}

func TestChunkedStream(t *testing.T) {
	res, err := testSys.LabelChunkedStream(100, 10, 1)
	if err != nil {
		t.Fatalf("LabelChunkedStream: %v", err)
	}
	if res.Images != 100 {
		t.Fatalf("images %d", res.Images)
	}
	if res.TimeSavedFrac <= 0.3 {
		t.Fatalf("explore-exploit saved only %v", res.TimeSavedFrac)
	}
	if res.AvgRecall < 0.85 {
		t.Fatalf("stream recall %v too low", res.AvgRecall)
	}
	// Validation.
	if _, err := testSys.LabelChunkedStream(5, 10, 1); err == nil {
		t.Fatal("bad stream sizes accepted")
	}
	if _, err := testSys.LabelChunkedStream(100, 10, 11); err == nil {
		t.Fatal("bad exploreN accepted")
	}
}

func TestPriorityTrainingPullsModelForward(t *testing.T) {
	prio, err := testSys.TrainAgent(TrainOptions{
		Algorithm: DuelingDQN, Epochs: 5, Hidden: []int{32}, Seed: 11,
		Priorities: map[string]float64{"facedet-mtcnn": 10},
	})
	if err != nil {
		t.Fatalf("TrainAgent: %v", err)
	}
	// Average scheduling position of the prioritized model must come
	// forward relative to the uniform-priority agent.
	pos := func(a *Agent) float64 {
		var sum float64
		n := testSys.NumTestImages()
		for i := 0; i < n; i++ {
			res, err := testSys.Label(bg, a, testSys.TestItem(i), Budget{})
			if err != nil {
				t.Fatal(err)
			}
			p := len(res.ModelsRun) + 1
			for j, name := range res.ModelsRun {
				if name == "facedet-mtcnn" {
					p = j + 1
					break
				}
			}
			sum += float64(p)
		}
		return sum / float64(n)
	}
	if pp, up := pos(prio), pos(testAgent); pp >= up {
		t.Fatalf("priority agent position %v not earlier than uniform %v", pp, up)
	}
}

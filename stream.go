package ams

import (
	"fmt"

	"ams/internal/oracle"
	"ams/internal/sched"
	"ams/internal/synth"
	"ams/internal/zoo"
)

// ValuableThreshold is the confidence at or above which a label counts as
// valuable output.
const ValuableThreshold = zoo.ValuableThreshold

// StreamResult summarizes labeling a correlated (video-like) stream with
// the explore–exploit policy of the paper's introduction.
type StreamResult struct {
	Images        int
	AvgTimeSec    float64 // per-image average
	AvgRecall     float64
	NoPolicySec   float64 // per-image cost of running everything
	TimeSavedFrac float64 // 1 - AvgTime/NoPolicy
}

// LabelChunkedStream generates a chunked variant of the system's dataset
// (each chunk of chunkLen images shares latent content, like frames of a
// video segment) and labels it with the explore–exploit policy: the first
// exploreN images of each chunk run every model; the discovered valuable
// subset serves the rest of the chunk.
func (s *System) LabelChunkedStream(numImages, chunkLen, exploreN int) (*StreamResult, error) {
	if numImages < chunkLen || chunkLen <= 0 {
		return nil, fmt.Errorf("ams: need numImages >= chunkLen > 0, got %d/%d", numImages, chunkLen)
	}
	if exploreN <= 0 || exploreN > chunkLen {
		return nil, fmt.Errorf("ams: exploreN must be in [1,chunkLen], got %d", exploreN)
	}
	base := s.Dataset
	if numImages != base.Len() {
		// Regenerate at the requested size with the same profile.
		var err error
		base, err = s.regenerate(numImages)
		if err != nil {
			return nil, err
		}
	}
	chunked := base.Chunked(s.Vocabulary, chunkLen, s.cfg.Seed^0xc2b2ae3d27d4eb4f)
	st := oracle.Build(s.Zoo, chunked.Scenes)
	results := sched.RunExploreExploit(st, sched.ExploreExploitConfig{
		ChunkLen: chunkLen, ExploreN: exploreN,
	})
	var time, recall float64
	for _, r := range results {
		time += r.TimeMS / 1000
		recall += r.Recall
	}
	n := float64(len(results))
	noPol := s.Zoo.TotalTimeMS() / 1000
	avgTime := time / n
	return &StreamResult{
		Images:        len(results),
		AvgTimeSec:    avgTime,
		AvgRecall:     recall / n,
		NoPolicySec:   noPol,
		TimeSavedFrac: 1 - avgTime/noPol,
	}, nil
}

// regenerate produces a resized dataset with the same profile. Only the
// dataset is generated — not a whole throwaway System with its
// vocabulary, zoo and both precomputed oracle stores, which is what this
// used to build (and throw away) per call. The seed derivation matches
// what New would feed NewDataset for Seed+1, so existing streams are
// bit-identical.
func (s *System) regenerate(numImages int) (*synth.Dataset, error) {
	if numImages < 1 {
		return nil, fmt.Errorf("ams: numImages must be positive, got %d", numImages)
	}
	profile, err := synth.ProfileByName(s.cfg.Dataset)
	if err != nil {
		return nil, fmt.Errorf("ams: %w", err)
	}
	return synth.NewDataset(s.Vocabulary, profile, numImages, (s.cfg.Seed+1)^0x5bd1e995), nil
}

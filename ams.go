// Package ams is the public API of the Adaptive Model Scheduling library,
// a reproduction of "Comprehensive and Efficient Data Labeling via
// Adaptive Model Scheduling" (Yuan, Zhang, Li, Xiong — ICDE 2020).
//
// Given a stream of data items and a zoo of heavyweight labeling models,
// the framework (1) trains a deep-reinforcement-learning agent that
// predicts which unexecuted models will still produce valuable labels
// from the set of labels seen so far, and (2) schedules model executions
// under a per-item deadline (Algorithm 1) or joint deadline + GPU-memory
// budget (Algorithm 2) to maximize the total value of emitted labels.
//
// A typical session:
//
//	sys, err := ams.New(ams.Config{Dataset: ams.DatasetMSCOCO, NumImages: 1000})
//	agent, err := sys.TrainAgent(ams.TrainOptions{Algorithm: ams.DuelingDQN})
//	res, err := sys.Label(ctx, agent, sys.TestItem(0), ams.Budget{DeadlineSec: 0.5})
//	for _, l := range res.Labels { fmt.Println(l.Name, l.Confidence) }
//
// Labeling surfaces take Items: TestItem references the built-in
// held-out split (precomputed ground truth, Result.Recall reported),
// while ComposeItem and GenerateItems ingest external content the
// oracle has never seen — models run on demand, memoized per item, and
// results report labels, models run, and time (HasRecall is false).
// Contexts cancel mid-schedule, returning the partial labels.
//
// Scheduling policies are first-class: Label uses DefaultPolicy for the
// budget shape, while LabelWith, LabelBatchWith and ServeConfig.Policy
// accept any registry policy (PolicyByName: "algorithm1", "algorithm2",
// "qgreedy", "random"). All of them implement one constraint-carrying
// contract, so the same policy runs under the serial, deadline,
// parallel, and real-server executors alike.
//
// The model zoo and datasets are the library's built-in simulation
// substrate: thirty models across ten visual tasks whose time/memory
// costs and content-dependent outputs mirror the paper's deployment (see
// DESIGN.md for the substitution rationale and the policy architecture).
package ams

import (
	"fmt"

	"ams/internal/core"
	"ams/internal/labels"
	"ams/internal/oracle"
	"ams/internal/rl"
	"ams/internal/synth"
	"ams/internal/zoo"
)

// Algorithm selects the DRL training variant.
type Algorithm = rl.Algorithm

// The four supported training algorithms.
const (
	DQN        = rl.DQN
	DoubleDQN  = rl.DoubleDQN
	DuelingDQN = rl.DuelingDQN
	DeepSARSA  = rl.DeepSARSA
)

// Built-in dataset profiles.
const (
	DatasetMSCOCO    = "MSCOCO2017"
	DatasetPlaces    = "Places365"
	DatasetMirFlickr = "MirFlickr25"
	DatasetStanford  = "Stanford40"
	DatasetVOC       = "VOC2012"
)

// Datasets lists the built-in dataset profile names.
func Datasets() []string {
	return []string{DatasetMSCOCO, DatasetPlaces, DatasetMirFlickr,
		DatasetStanford, DatasetVOC}
}

// Config describes a System: which synthetic dataset to generate and how
// to split it.
type Config struct {
	Dataset   string  // profile name; see Datasets()
	NumImages int     // images to generate (default 1000)
	TrainFrac float64 // training fraction (default 0.2, the paper's 1:4)
	Seed      uint64  // determinism seed
}

// System owns the vocabulary, the model zoo, one generated dataset and
// its precomputed ground truth. It is not safe for concurrent use.
type System struct {
	cfg        Config
	Vocabulary *labels.Vocabulary
	Zoo        *zoo.Zoo
	Dataset    *synth.Dataset

	trainStore *oracle.Store
	testStore  *oracle.Store
}

// New generates the dataset and precomputes every model's output on every
// image (the framework's training/evaluation ground truth).
func New(cfg Config) (*System, error) {
	if cfg.Dataset == "" {
		cfg.Dataset = DatasetMSCOCO
	}
	if cfg.NumImages == 0 {
		cfg.NumImages = 1000
	}
	if cfg.NumImages < 10 {
		return nil, fmt.Errorf("ams: NumImages must be at least 10, got %d", cfg.NumImages)
	}
	if cfg.TrainFrac == 0 {
		cfg.TrainFrac = 0.2
	}
	if cfg.TrainFrac <= 0 || cfg.TrainFrac >= 1 {
		return nil, fmt.Errorf("ams: TrainFrac must be in (0,1), got %v", cfg.TrainFrac)
	}
	profile, err := synth.ProfileByName(cfg.Dataset)
	if err != nil {
		return nil, fmt.Errorf("ams: %w", err)
	}
	vocab := labels.NewVocabulary()
	z := zoo.NewZoo(vocab)
	ds := synth.NewDataset(vocab, profile, cfg.NumImages, cfg.Seed^0x5bd1e995)
	trainScenes, testScenes := ds.Split(cfg.TrainFrac)
	return &System{
		cfg:        cfg,
		Vocabulary: vocab,
		Zoo:        z,
		Dataset:    ds,
		trainStore: oracle.Build(z, trainScenes),
		testStore:  oracle.Build(z, testScenes),
	}, nil
}

// NumTestImages returns the number of held-out images available to Label.
func (s *System) NumTestImages() int { return s.testStore.NumScenes() }

// NumTrainImages returns the number of training images.
func (s *System) NumTrainImages() int { return s.trainStore.NumScenes() }

// ModelNames lists the zoo's model names in scheduling-action order.
func (s *System) ModelNames() []string {
	names := make([]string, len(s.Zoo.Models))
	for i, m := range s.Zoo.Models {
		names[i] = m.Name
	}
	return names
}

// NoPolicyTimeSec returns the per-image cost of executing every model —
// the paper's "no policy" baseline (≈5.16 s).
func (s *System) NoPolicyTimeSec() float64 { return s.Zoo.TotalTimeMS() / 1000 }

// TrainOptions tunes agent training.
type TrainOptions struct {
	Algorithm Algorithm
	Epochs    int   // default 10
	Hidden    []int // default {256}, the paper's Q-network

	// Priorities maps model names to their theta parameter (§IV-A): a
	// model with theta > 1 earns proportionally higher reward, pulling it
	// forward in the schedule. Unlisted models default to 1.
	Priorities map[string]float64

	Seed uint64

	// Progress, when non-nil, receives per-epoch training statistics.
	Progress func(epoch int, meanLoss, meanReward float64)
}

// TrainAgent trains a model-value prediction agent on the system's
// training split.
func (s *System) TrainAgent(opts TrainOptions) (*Agent, error) {
	theta, err := s.thetaVector(opts.Priorities)
	if err != nil {
		return nil, err
	}
	inner := core.Train(s.trainStore, core.TrainConfig{
		Algo:     opts.Algorithm,
		Epochs:   opts.Epochs,
		Hidden:   opts.Hidden,
		Theta:    theta,
		Seed:     opts.Seed,
		Dataset:  s.cfg.Dataset,
		Progress: opts.Progress,
	})
	return &Agent{inner: inner}, nil
}

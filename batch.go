package ams

import (
	"fmt"
	"runtime"
	"sync"

	"ams/internal/sched"
	"ams/internal/sim"
)

// BatchStats aggregates a LabelBatch run.
type BatchStats struct {
	Processed  int
	AvgRecall  float64
	AvgTimeSec float64 // simulated per-image schedule time
}

// LabelBatch labels many held-out images concurrently with worker
// goroutines. The agent's network is cloned per worker (a forward pass
// caches activations, so a single network must not be shared), while the
// precomputed ground truth is shared read-only. Results are returned in
// the order of the images slice.
func (s *System) LabelBatch(agent *Agent, images []int, b Budget, workers int) ([]*Result, BatchStats, error) {
	if agent == nil {
		return nil, BatchStats{}, fmt.Errorf("ams: nil agent")
	}
	for _, img := range images {
		if img < 0 || img >= s.testStore.NumScenes() {
			return nil, BatchStats{}, fmt.Errorf("ams: image %d out of range [0,%d)",
				img, s.testStore.NumScenes())
		}
	}
	if b.MemoryGB > 0 && b.DeadlineSec <= 0 {
		return nil, BatchStats{}, fmt.Errorf("ams: a memory budget requires a deadline")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(images) {
		workers = len(images)
	}
	if workers == 0 {
		return nil, BatchStats{}, nil
	}

	results := make([]*Result, len(images))
	jobs := make(chan int) // index into images
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker private network clone.
			private := agent.cloneInner()
			for idx := range jobs {
				img := images[idx]
				var res sim.SerialResult
				switch {
				case b.MemoryGB > 0:
					pr := sim.RunParallel(s.testStore, img,
						sched.NewMemoryPacker(private, s.Zoo),
						b.DeadlineSec*1000, b.MemoryGB*1024)
					res = sim.SerialResult{Executed: pr.Executed,
						TimeMS: pr.MakespanMS, Recall: pr.Recall}
				case b.DeadlineSec > 0:
					res = sim.RunDeadline(s.testStore, img,
						sched.NewCostQGreedy(private, s.Zoo), b.DeadlineSec*1000)
				default:
					res = sim.RunToRecall(s.testStore, img,
						sched.NewQGreedyOrder(private, private.NumModels), 1.0)
				}
				results[idx] = s.buildResult(img, res)
			}
		}()
	}
	for idx := range images {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()

	var stats BatchStats
	stats.Processed = len(results)
	for _, r := range results {
		stats.AvgRecall += r.Recall
		stats.AvgTimeSec += r.TimeSec
	}
	if stats.Processed > 0 {
		stats.AvgRecall /= float64(stats.Processed)
		stats.AvgTimeSec /= float64(stats.Processed)
	}
	return results, stats, nil
}

package ams

import (
	"fmt"
	"runtime"
	"sync"
)

// BatchStats aggregates a LabelBatch run.
type BatchStats struct {
	Processed  int
	AvgRecall  float64
	AvgTimeSec float64 // simulated per-image schedule time
}

// LabelBatch labels many held-out images concurrently with worker
// goroutines under DefaultPolicy(b) — the same policy Label would pick.
// See LabelBatchWith for an explicit policy.
func (s *System) LabelBatch(agent *Agent, images []int, b Budget, workers int) ([]*Result, BatchStats, error) {
	if agent == nil {
		return nil, BatchStats{}, fmt.Errorf("ams: nil agent")
	}
	return s.LabelBatchWith(DefaultPolicy(b), agent, images, b, workers)
}

// LabelBatchWith labels many held-out images concurrently with worker
// goroutines, each running the given policy. Policies are instantiated
// once per worker, so the agent's network is cloned per worker (a
// forward pass caches activations, so a single network must not be
// shared), while the precomputed ground truth is shared read-only.
// Results are returned in the order of the images slice.
func (s *System) LabelBatchWith(policy Policy, agent *Agent, images []int, b Budget, workers int) ([]*Result, BatchStats, error) {
	if err := b.Validate(); err != nil {
		return nil, BatchStats{}, err
	}
	for _, img := range images {
		if err := s.checkImage(img); err != nil {
			return nil, BatchStats{}, err
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(images) {
		workers = len(images)
	}
	if workers == 0 {
		return nil, BatchStats{}, nil
	}
	// Validate eagerly so configuration errors surface before any
	// goroutine starts.
	if err := policy.check(agent); err != nil {
		return nil, BatchStats{}, err
	}

	results := make([]*Result, len(images))
	jobs := make(chan int) // index into images
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker private policy (and agent clone).
			private, err := policy.instantiate(s, agent, uint64(w))
			if err != nil {
				return // unreachable: validated above
			}
			for idx := range jobs {
				img := images[idx]
				results[idx] = s.buildResult(img, s.runSchedule(img, private, b))
			}
		}(w)
	}
	for idx := range images {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()

	var stats BatchStats
	stats.Processed = len(results)
	for _, r := range results {
		stats.AvgRecall += r.Recall
		stats.AvgTimeSec += r.TimeSec
	}
	if stats.Processed > 0 {
		stats.AvgRecall /= float64(stats.Processed)
		stats.AvgTimeSec /= float64(stats.Processed)
	}
	return results, stats, nil
}

package ams

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"ams/internal/oracle"
)

// BatchStats aggregates a LabelBatch run.
type BatchStats struct {
	Processed   int
	AvgRecall   float64 // over items with known ground truth only
	RecallItems int     // items AvgRecall averaged over
	AvgTimeSec  float64 // simulated per-item schedule time
}

// LabelBatch labels many items concurrently with worker goroutines under
// DefaultPolicy(b) — the same policy Label would pick. See LabelBatchWith
// for an explicit policy.
func (s *System) LabelBatch(ctx context.Context, agent *Agent, items []Item, b Budget, workers int) ([]*Result, BatchStats, error) {
	if agent == nil {
		return nil, BatchStats{}, fmt.Errorf("ams: nil agent")
	}
	return s.LabelBatchWith(ctx, DefaultPolicy(b), agent, items, b, workers)
}

// LabelBatchWith labels many items concurrently with worker goroutines,
// each running the given policy. Policies are instantiated once per
// worker, so the agent's network is cloned per worker (a forward pass
// caches activations, so a single network must not be shared), while the
// execution substrate — precomputed for test-split items, on-demand for
// external ones — is shared read-only. Results are returned in the order
// of the items slice.
//
// Cancelling ctx aborts the batch: items already labeled keep their
// results, the item each worker is on is cut short (partial labels), no
// further items start (their result slots stay nil), and ctx.Err() is
// returned alongside the partial results.
func (s *System) LabelBatchWith(ctx context.Context, policy Policy, agent *Agent, items []Item, b Budget, workers int) ([]*Result, BatchStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := b.Validate(); err != nil {
		return nil, BatchStats{}, err
	}
	ex, indices, err := s.resolveItems(items)
	if err != nil {
		return nil, BatchStats{}, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	if workers == 0 {
		return nil, BatchStats{}, nil
	}
	// Validate eagerly so configuration errors surface before any
	// goroutine starts.
	if err := policy.check(agent); err != nil {
		return nil, BatchStats{}, err
	}

	results := make([]*Result, len(items))
	jobs := make(chan int) // index into items
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker private policy (and agent clone).
			private, err := policy.instantiate(s, agent, uint64(w))
			if err != nil {
				return // unreachable: validated above
			}
			private = withCancel(ctx, private)
			for idx := range jobs {
				if ctx.Err() != nil {
					continue // dispatched before the cancel landed: slot stays nil
				}
				res := s.runSchedule(ex, indices[idx], private, b)
				results[idx] = s.buildResult(ex, indices[idx], items[idx], res)
			}
		}(w)
	}
dispatch:
	for idx := range items {
		// Checked before the select too: with an idle worker both select
		// cases are ready and Go picks randomly, which would keep
		// dispatching items after cancellation.
		if ctx.Err() != nil {
			break dispatch
		}
		select {
		case jobs <- idx:
		case <-ctx.Done():
			break dispatch // stop feeding; workers drain and exit
		}
	}
	close(jobs)
	wg.Wait()

	var stats BatchStats
	for _, r := range results {
		if r == nil {
			continue // not started before cancellation
		}
		stats.Processed++
		if r.HasRecall {
			stats.AvgRecall += r.Recall
			stats.RecallItems++
		}
		stats.AvgTimeSec += r.TimeSec
	}
	if stats.RecallItems > 0 {
		stats.AvgRecall /= float64(stats.RecallItems)
	}
	if stats.Processed > 0 {
		stats.AvgTimeSec /= float64(stats.Processed)
	}
	return results, stats, ctx.Err()
}

// resolveItems maps a batch of items onto one shared executor: the plain
// test store when everything is oracle-backed, an on-demand overlay on
// top of it when external items are present.
func (s *System) resolveItems(items []Item) (oracle.Executor, []int, error) {
	indices := make([]int, len(items))
	var overlay *oracle.OnDemand
	for i, item := range items {
		ext, err := s.checkItem(item)
		if err != nil {
			return nil, nil, fmt.Errorf("%w (batch index %d)", err, i)
		}
		if ext == nil {
			indices[i] = item.image
			continue
		}
		if overlay == nil {
			overlay = oracle.NewOnDemand(s.Zoo, s.testStore)
		}
		indices[i] = overlay.Add(ext)
	}
	if overlay != nil {
		return overlay, indices, nil
	}
	return s.testStore, indices, nil
}

package ams

import (
	"context"
	"fmt"
	"strings"

	"ams/internal/oracle"
	"ams/internal/sched"
	"ams/internal/sim"
	"ams/internal/tensor"
)

// Policy is a first-class, named scheduling policy. The same value
// drives every execution surface — Label/LabelWith, LabelBatch, and the
// real server through ServeConfig.Policy — because every built-in
// implementation honors the one constraint-carrying contract of
// internal/sim: pick the next model from the labeling state under the
// remaining time and the memory available right now.
//
// The zero value is not a usable policy; obtain one from the exported
// variables or PolicyByName. DefaultPolicy picks the paper's algorithm
// for a budget shape.
type Policy struct {
	name string
	// parallel marks the batch-scheduling policy (Algorithm 2): the
	// server runs it in per-item parallel mode, where one item's models
	// execute concurrently across the pool under the shared accountant.
	parallel bool
	// needsAgent rejects instantiation without a trained agent.
	needsAgent bool
	seed       uint64
	// build constructs the worker-private implementation. cache, when
	// non-nil, is the server's shared cross-item Q-prediction cache;
	// agent-driven policies thread it into their predictors, others
	// ignore it.
	build func(s *System, agent *Agent, seed uint64, cache *sched.SharedCache) sim.Policy
}

// The built-in policies.
var (
	// PolicyAlgorithm1 is the paper's Algorithm 1: cost-aware Q-greedy,
	// maximizing predicted value per unit time among feasible models.
	PolicyAlgorithm1 = Policy{
		name:       "algorithm1",
		needsAgent: true,
		build: func(s *System, agent *Agent, _ uint64, cache *sched.SharedCache) sim.Policy {
			return sched.NewCostQGreedy(agent.clonePredictor(cache), s.Zoo)
		},
	}
	// PolicyAlgorithm2 is the paper's Algorithm 2: deadline+memory batch
	// packing. Under a memory budget the server runs it per item, with
	// one item's models executing in parallel (sim.RunParallel
	// semantics).
	PolicyAlgorithm2 = Policy{
		name:       "algorithm2",
		parallel:   true,
		needsAgent: true,
		build: func(s *System, agent *Agent, _ uint64, cache *sched.SharedCache) sim.Policy {
			return sched.NewMemoryPacker(agent.clonePredictor(cache), s.Zoo)
		},
	}
	// PolicyQGreedy picks the feasible model with the highest predicted
	// value, ignoring cost.
	PolicyQGreedy = Policy{
		name:       "qgreedy",
		needsAgent: true,
		build: func(s *System, agent *Agent, _ uint64, cache *sched.SharedCache) sim.Policy {
			return sched.NewQGreedy(agent.clonePredictor(cache), s.Zoo)
		},
	}
	// PolicyRandom executes uniformly random feasible models — the
	// paper's baseline. It needs no agent; seed it with WithSeed for
	// reproducible draws.
	PolicyRandom = Policy{
		name: "random",
		build: func(s *System, _ *Agent, seed uint64, _ *sched.SharedCache) sim.Policy {
			return sched.NewRandom(s.Zoo, tensor.NewRNG(seed^0x9e3779b97f4a7c15))
		},
	}
)

// builtinPolicies lists the registry in documentation order.
var builtinPolicies = []Policy{PolicyAlgorithm1, PolicyAlgorithm2, PolicyQGreedy, PolicyRandom}

// Name returns the registry name of the policy ("" for the zero value).
func (p Policy) Name() string { return p.name }

// WithSeed returns a copy of the policy whose stochastic parts (the
// random baseline's RNG) draw from the given seed stream.
func (p Policy) WithSeed(seed uint64) Policy {
	p.seed = seed
	return p
}

// valid reports whether the policy came from the registry.
func (p Policy) valid() bool { return p.build != nil }

// check validates the policy configuration without building anything —
// instantiation clones the agent's network, so surfaces that only need
// to fail fast call this instead.
func (p Policy) check(agent *Agent) error {
	if !p.valid() {
		return fmt.Errorf("ams: zero Policy value; use PolicyByName or a Policy* variable")
	}
	if p.needsAgent && agent == nil {
		return fmt.Errorf("ams: policy %q needs an agent", p.name)
	}
	return nil
}

// instantiate builds the internal policy implementation, checking the
// agent requirement. workerSalt decorrelates per-worker RNG streams.
func (p Policy) instantiate(s *System, agent *Agent, workerSalt uint64) (sim.Policy, error) {
	return p.instantiateShared(s, agent, workerSalt, nil)
}

// instantiateShared is instantiate with the server's shared cross-item
// Q-prediction cache threaded through to the predictor wrappers.
func (p Policy) instantiateShared(s *System, agent *Agent, workerSalt uint64, cache *sched.SharedCache) (sim.Policy, error) {
	if err := p.check(agent); err != nil {
		return nil, err
	}
	return p.build(s, agent, p.seed+workerSalt, cache), nil
}

// PolicyNames lists the built-in policy names.
func PolicyNames() []string {
	names := make([]string, len(builtinPolicies))
	for i, p := range builtinPolicies {
		names[i] = p.name
	}
	return names
}

// PolicyByName looks a built-in policy up by its registry name.
func PolicyByName(name string) (Policy, error) {
	for _, p := range builtinPolicies {
		if p.name == name {
			return p, nil
		}
	}
	return Policy{}, fmt.Errorf("ams: unknown policy %q (have %s)",
		name, strings.Join(PolicyNames(), ", "))
}

// DefaultPolicy returns the paper's algorithm for a budget shape:
// Algorithm 2 under a joint deadline+memory budget, Algorithm 1 under a
// deadline, and plain Q-greedy when unconstrained.
func DefaultPolicy(b Budget) Policy {
	switch {
	case b.MemoryGB > 0:
		return PolicyAlgorithm2
	case b.DeadlineSec > 0:
		return PolicyAlgorithm1
	default:
		return PolicyQGreedy
	}
}

// runSchedule is the one budget dispatch shared by every labeling
// surface: it picks the executor loop from the budget shape and runs the
// policy under it, over any oracle.Executor (precomputed or on-demand).
// The budget must already be validated.
func (s *System) runSchedule(ex oracle.Executor, idx int, p sim.Policy, b Budget) sim.SerialResult {
	switch {
	case b.MemoryGB > 0:
		pr := sim.RunParallel(ex, idx, p, b.DeadlineSec*1000, b.MemoryGB*1024)
		return sim.SerialResult{Executed: pr.Executed, TimeMS: pr.MakespanMS, Recall: pr.Recall, HasRecall: pr.HasRecall}
	case b.DeadlineSec > 0:
		return sim.RunDeadline(ex, idx, p, b.DeadlineSec*1000)
	default:
		// Schedule until every valuable label is recalled — or, without
		// ground truth, until the policy stops proposing models.
		return sim.RunToRecall(ex, idx, p, 1.0)
	}
}

// checkImage validates a held-out image index.
func (s *System) checkImage(image int) error {
	if image < 0 || image >= s.testStore.NumScenes() {
		return fmt.Errorf("ams: image %d out of range [0,%d)", image, s.testStore.NumScenes())
	}
	return nil
}

// LabelWith labels one item with an explicit policy under the budget.
// The agent may be nil for policies that do not need one (the random
// baseline). Label is LabelWith with DefaultPolicy(b). Cancelling ctx
// aborts the remaining schedule and returns the partial result alongside
// ctx.Err().
func (s *System) LabelWith(ctx context.Context, policy Policy, agent *Agent, item Item, b Budget) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	ex, idx, err := s.resolveItem(item)
	if err != nil {
		return nil, err
	}
	sp, err := policy.instantiate(s, agent, 0)
	if err != nil {
		return nil, err
	}
	res := s.runSchedule(ex, idx, withCancel(ctx, sp), b)
	return s.buildResult(ex, idx, item, res), ctx.Err()
}

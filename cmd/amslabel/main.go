// Command amslabel labels a batch of held-out synthetic images with an
// adaptive-model-scheduling agent under a deadline (and optional memory)
// budget, printing the emitted labels per image.
//
// The scheduling policy defaults to the paper's algorithm for the
// budget shape (Algorithm 1 under a deadline, Algorithm 2 with memory,
// Q-greedy unconstrained) and can be forced with -policy.
//
// Usage:
//
//	amslabel -dataset MirFlickr25 -n 5 -deadline 0.5
//	amslabel -agent agent.gob -deadline 0.8 -memory 8
//	amslabel -deadline 0.5 -policy random
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"ams"
)

func main() {
	var (
		dataset    = flag.String("dataset", ams.DatasetMirFlickr, "dataset profile")
		images     = flag.Int("images", 500, "images to generate")
		n          = flag.Int("n", 5, "test images to label")
		seed       = flag.Uint64("seed", 1, "determinism seed")
		agentPath  = flag.String("agent", "", "trained agent file (trains a quick agent when empty)")
		deadline   = flag.Float64("deadline", 0.5, "per-image deadline in seconds (0 = none)")
		memory     = flag.Float64("memory", 0, "GPU memory budget in GB (0 = serial)")
		epochs     = flag.Int("epochs", 8, "epochs for the quick agent when -agent is empty")
		policyName = flag.String("policy", "", "scheduling policy (algorithm1, algorithm2, qgreedy, random); empty = the budget's default")
		external   = flag.Bool("external", false, "label freshly generated external items (no precomputed ground truth) instead of the held-out split")
	)
	flag.Parse()

	sys, err := ams.New(ams.Config{Dataset: *dataset, NumImages: *images, Seed: *seed})
	if err != nil {
		log.Fatalf("amslabel: %v", err)
	}
	var agent *ams.Agent
	if *agentPath != "" {
		agent, err = ams.LoadAgent(*agentPath)
		if err != nil {
			log.Fatalf("amslabel: %v", err)
		}
		fmt.Printf("loaded %s agent trained on %s\n", agent.Algorithm(), agent.TrainedOn())
	} else {
		fmt.Printf("training a quick DuelingDQN agent on %s (%d epochs)...\n", *dataset, *epochs)
		agent, err = sys.TrainAgent(ams.TrainOptions{
			Algorithm: ams.DuelingDQN, Epochs: *epochs, Hidden: []int{96}, Seed: *seed,
		})
		if err != nil {
			log.Fatalf("amslabel: %v", err)
		}
	}

	budget := ams.Budget{DeadlineSec: *deadline, MemoryGB: *memory}
	policy := ams.DefaultPolicy(budget)
	if *policyName != "" {
		policy, err = ams.PolicyByName(*policyName)
		if err != nil {
			log.Fatalf("amslabel: %v", err)
		}
	}
	policy = policy.WithSeed(*seed)
	fmt.Printf("scheduling with policy %s\n", policy.Name())

	// The item source: held-out test images (with ground-truth recall) by
	// default, or externally generated scenes the oracle has never seen.
	var items []ams.Item
	if *external {
		items = sys.GenerateItems(*n, *seed)
		fmt.Printf("labeling %d external items (no precomputed ground truth)\n", len(items))
	} else {
		if *n > sys.NumTestImages() {
			*n = sys.NumTestImages()
		}
		for i := 0; i < *n; i++ {
			items = append(items, sys.TestItem(i))
		}
	}

	ctx := context.Background()
	var recallSum, timeSum float64
	recallN := 0
	for i, item := range items {
		res, err := sys.LabelWith(ctx, policy, agent, item, budget)
		if err != nil {
			log.Fatalf("amslabel: %v", err)
		}
		timeSum += res.TimeSec
		name := fmt.Sprintf("image %d", i)
		if res.ItemID != "" {
			name = res.ItemID
		}
		if res.HasRecall {
			recallSum += res.Recall
			recallN++
			fmt.Printf("\n%s: %d models, %.2fs, recall %.2f\n",
				name, len(res.ModelsRun), res.TimeSec, res.Recall)
		} else {
			fmt.Printf("\n%s: %d models, %.2fs\n", name, len(res.ModelsRun), res.TimeSec)
		}
		for _, l := range res.ValuableLabels() {
			fmt.Printf("  %-32s %.2f  [%s]\n", l.Name, l.Confidence, l.Task)
		}
	}
	fmt.Printf("\n%d items: avg time %.2fs (no-policy would cost %.2fs/image)\n",
		len(items), timeSum/float64(len(items)), sys.NoPolicyTimeSec())
	if recallN > 0 {
		fmt.Printf("avg recall %.3f over the %d ground-truth-backed items\n",
			recallSum/float64(recallN), recallN)
	}
}

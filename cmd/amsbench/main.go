// Command amsbench regenerates the paper's tables and figures against the
// simulated substrate and prints them as text series.
//
// Usage:
//
//	amsbench -exp all            # everything, quick scale
//	amsbench -exp fig10 -scale full
//	amsbench -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"ams/internal/experiments"
	"ams/internal/shardbench"
)

var order = []string{
	"table1", "table2", "fig1", "fig2", "fig4", "fig5", "fig6", "fig7",
	"fig8", "fig9", "fig10", "fig11", "fig12", "table3", "headline",
	"ablation-end", "ablation-gamma", "ablation-reward", "ext-graph",
	"ext-service", "ext-batching", "ext-sharding",
}

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id or comma list ("+strings.Join(order, ",")+") or all")
		scale = flag.String("scale", "quick", "quick or full")
		list  = flag.Bool("list", false, "list experiments and exit")
		quiet = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	if *list {
		for _, id := range order {
			fmt.Println(id)
		}
		return
	}

	var cfg experiments.Config
	switch *scale {
	case "quick":
		cfg = experiments.Quick()
	case "full":
		cfg = experiments.Full()
	default:
		log.Fatalf("amsbench: unknown scale %q", *scale)
	}
	lab := experiments.NewLab(cfg)
	if !*quiet {
		lab.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
		}
	}

	var ids []string
	if *exp == "all" {
		ids = order
	} else {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		out, err := run(lab, strings.TrimSpace(id))
		if err != nil {
			log.Fatalf("amsbench: %v", err)
		}
		fmt.Println(out)
	}
}

func run(lab *experiments.Lab, id string) (string, error) {
	switch id {
	case "table1":
		return lab.TableI(), nil
	case "table2":
		return lab.TableII(), nil
	case "table3":
		return lab.TableIII().Format(), nil
	case "fig1":
		return lab.Fig1().Format(), nil
	case "fig2":
		return lab.Fig2().Format(), nil
	case "fig4":
		var b strings.Builder
		for _, r := range lab.Fig4() {
			b.WriteString(r.FormatCounts())
			b.WriteString("\n")
		}
		return b.String(), nil
	case "fig5":
		var b strings.Builder
		for _, r := range lab.Fig5() {
			b.WriteString(r.FormatTimes())
			b.WriteString("\n")
		}
		return b.String(), nil
	case "fig6":
		r := lab.Fig6()
		return r.FormatCounts() + "\n" + r.FormatTimes(), nil
	case "fig7":
		return lab.Fig7().Format(), nil
	case "fig8":
		return lab.Fig8().Format(), nil
	case "fig9":
		return lab.Fig9().Format(), nil
	case "fig10":
		var b strings.Builder
		for _, r := range lab.Fig10() {
			b.WriteString(r.Format())
			b.WriteString("\n")
		}
		return b.String(), nil
	case "fig11":
		var b strings.Builder
		for _, r := range lab.Fig11() {
			b.WriteString(r.Format())
			b.WriteString("\n")
		}
		return b.String(), nil
	case "fig12":
		return lab.Fig12().Format(), nil
	case "headline":
		return lab.Headline().Format(), nil
	case "ablation-end":
		return lab.AblationEND().Format(), nil
	case "ablation-gamma":
		return lab.AblationGamma().Format(), nil
	case "ablation-reward":
		return lab.AblationReward().Format(), nil
	case "ext-graph":
		return lab.ExtGraph().Format(), nil
	case "ext-service":
		return lab.ExtService().Format(), nil
	case "ext-batching":
		return lab.ExtBatching().Format(), nil
	case "ext-sharding":
		return shardbench.ExtSharding(lab.Cfg, lab.Logf).Format(), nil
	default:
		return "", fmt.Errorf("unknown experiment %q (use -list)", id)
	}
}

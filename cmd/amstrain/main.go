// Command amstrain trains an adaptive-model-scheduling DRL agent on one
// of the built-in synthetic datasets and writes it to disk.
//
// Usage:
//
//	amstrain -dataset MSCOCO2017 -algo DuelingDQN -images 1000 -epochs 10 -out agent.gob
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"ams"
	"ams/internal/rl"
)

func main() {
	var (
		dataset = flag.String("dataset", ams.DatasetMSCOCO, "dataset profile (MSCOCO2017, Places365, MirFlickr25, Stanford40, VOC2012)")
		algo    = flag.String("algo", "DuelingDQN", "training algorithm (DQN, DoubleDQN, DuelingDQN, DeepSARSA)")
		images  = flag.Int("images", 1000, "images to generate")
		epochs  = flag.Int("epochs", 10, "training epochs")
		hidden  = flag.Int("hidden", 256, "Q-network hidden width")
		seed    = flag.Uint64("seed", 1, "determinism seed")
		out     = flag.String("out", "agent.gob", "output agent file")
		prio    = flag.String("priority", "", "optional model:theta priority, e.g. facedet-mtcnn:10")
		quiet   = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	algorithm, err := rl.ParseAlgorithm(*algo)
	if err != nil {
		log.Fatalf("amstrain: %v", err)
	}
	sys, err := ams.New(ams.Config{Dataset: *dataset, NumImages: *images, Seed: *seed})
	if err != nil {
		log.Fatalf("amstrain: %v", err)
	}
	opts := ams.TrainOptions{
		Algorithm: algorithm,
		Epochs:    *epochs,
		Hidden:    []int{*hidden},
		Seed:      *seed,
	}
	if !*quiet {
		fmt.Printf("training %s on %s: %d train images, %d epochs\n",
			algorithm, *dataset, sys.NumTrainImages(), *epochs)
		opts.Progress = func(epoch int, loss, reward float64) {
			fmt.Printf("  epoch %2d  loss=%.4f  mean-reward=%.3f\n", epoch, loss, reward)
		}
	}
	if *prio != "" {
		name, thetaStr, ok := strings.Cut(*prio, ":")
		if !ok {
			log.Fatalf("amstrain: bad -priority %q (want model:theta)", *prio)
		}
		theta, err := strconv.ParseFloat(thetaStr, 64)
		if err != nil {
			log.Fatalf("amstrain: bad -priority theta %q: %v", thetaStr, err)
		}
		opts.Priorities = map[string]float64{name: theta}
	}
	agent, err := sys.TrainAgent(opts)
	if err != nil {
		log.Fatalf("amstrain: %v", err)
	}
	if err := agent.Save(*out); err != nil {
		log.Fatalf("amstrain: %v", err)
	}
	if !*quiet {
		fi, _ := os.Stat(*out)
		fmt.Printf("saved %s (%d bytes)\n", *out, fi.Size())
	}
}

// Command amsserve runs the real concurrent labeling server against a
// Poisson arrival trace and prints the same statistics shape as the
// virtual-time service simulation, so the two can be compared side by
// side (-compare prints both).
//
// The server executes items with a pool of worker goroutines, each
// holding a private clone of the agent's network, and enforces a global
// GPU-memory budget (-memory) shared by all workers via the Algorithm-2
// accountant. Model executions sleep their nominal duration scaled by
// -timescale; the default 0.05 replays the trace twenty times faster
// than production pacing while keeping every scheduling decision
// identical. Note that the scheduler's real CPU overhead (the agent's
// Q-network forward passes — the paper's Table III selection overhead)
// is NOT scaled, so very small timescales magnify it relative to model
// time and inflate the reported latencies.
//
// The per-worker scheduling policy is pluggable (-policy): algorithm1
// (the default serial cost-aware Q-greedy), qgreedy, random, or
// algorithm2, which requires -memory and switches the server into
// per-item parallel mode — one item's models run concurrently across
// the pool under the shared accountant, matching sim.RunParallel
// semantics.
//
// -batch enables cross-item dynamic batching: same-model demand from
// the whole pool coalesces into batched executions (sub-linear GPU
// cost, one footprint reservation per batch instead of one per item),
// raising throughput on hot-model memory-bound traces without changing
// any schedule or recall. -batch-hold bounds how long a lone request
// waits for batch-mates; -pred-cache shares one Q-prediction cache
// across all workers and items.
//
// Ingestion can be made durable with -journal: every admitted external
// item, each memoized model output, and each completed schedule is
// appended to a write-ahead journal, committed items are evicted from
// memory (bounded by -max-resident), and -snapshot-every compacts the
// journal periodically. -sync-every/-sync-ms add group-commit fsync
// (power-loss durability without per-record flushes). A run killed at
// an arbitrary point is recovered with -replay: committed items are
// re-served bit-identically from their persisted memos without
// re-running any model, and uncommitted items are relabeled, re-running
// only what never reached the journal.
//
// -shards splits the server into independent shards — each one a worker
// pool with its own memory accountant and (with -journal, then a
// directory of per-shard segments) its own journal — behind a router
// that places items by -placement (hash, least, or affinity) with
// optional work-stealing (-steal). Replaying a segmented journal
// recovers all segments in parallel and prints one line per segment.
//
// Usage:
//
//	amsserve -workers 4 -rate 3 -items 200 -deadline 0.5
//	amsserve -workers 4 -memory 8 -compare
//	amsserve -workers 4 -memory 8 -policy algorithm2
//	amsserve -agent agent.gob -timescale 1 -rate 1 -items 30
//	amsserve -external -journal corpus.wal -max-resident 64
//	amsserve -journal corpus.wal -replay
//	amsserve -external -shards 4 -placement affinity -steal -journal corpus.d
//	amsserve -journal corpus.d -replay
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"ams"
)

func main() {
	var (
		dataset   = flag.String("dataset", ams.DatasetMirFlickr, "dataset profile")
		images    = flag.Int("images", 500, "images to generate")
		seed      = flag.Uint64("seed", 1, "determinism seed")
		agentPath = flag.String("agent", "", "trained agent file (trains a quick agent when empty)")
		epochs    = flag.Int("epochs", 8, "epochs for the quick agent when -agent is empty")

		workers    = flag.Int("workers", 4, "concurrent labeling workers")
		deadline   = flag.Float64("deadline", 0.5, "per-item deadline in seconds")
		memory     = flag.Float64("memory", 0, "global GPU memory budget in GB shared by all workers (0 = unlimited)")
		queueCap   = flag.Int("queue", 0, "admission queue bound (0 = 2*workers)")
		timescale  = flag.Float64("timescale", 0.05, "real seconds per simulated second of model time")
		policyName = flag.String("policy", "algorithm1", "scheduling policy: algorithm1, algorithm2 (needs -memory; per-item parallel), qgreedy, random")
		batchSize  = flag.Int("batch", 0, "cross-item batching: coalesce up to this many same-model requests per execution (0 = off, 1 = batching machinery without coalescing)")
		batchHold  = flag.Float64("batch-hold", 0, "max simulated ms a lone request waits for batch-mates (0 = server default)")
		predCache  = flag.Bool("pred-cache", false, "share one bounded Q-prediction cache across all workers and items")

		shards    = flag.Int("shards", 0, "split the server into this many shards (own worker pool, memory accountant, and journal segment each; 0/1 = unsharded)")
		placement = flag.String("placement", "hash", "shard placement policy: hash, least, or affinity")
		steal     = flag.Bool("steal", false, "let an idle shard steal pending items from a loaded sibling")

		metricsAddr = flag.String("metrics", "", "serve live telemetry over HTTP at this host:port while the trace runs: /metrics (Prometheus), /statusz (JSON), /tracez (decision traces; ?format=chrome for Perfetto), /debug/pprof")
		traceOut    = flag.String("trace-out", "", "write the span-trace ring as Chrome trace-event JSON (Perfetto-loadable) to this file at shutdown; implies telemetry")
		traceCap    = flag.Int("trace-cap", 0, "completed item traces the tracer ring retains (0 = default 256)")
		sloSpecs    = flag.String("slo", "", "comma-separated latency objectives, e.g. \"p99<250ms,slow:p95<1s\" (a deadline p99 objective is always tracked); burn rates export as ams_slo_* series")
		flightDir   = flag.String("flight-dir", "", "arm the anomaly flight recorder: on shed storms, deadline burn, steal storms, or reserve stalls, dump pre-anomaly traces+metrics bundles into this directory")

		rate     = flag.Int("rate", 4, "mean arrivals per simulated second (Poisson)")
		items    = flag.Int("items", 200, "arrival trace length")
		openLoop = flag.Bool("open-loop", false, "submit without blocking: arrivals keep Poisson pacing and excess load is shed (exercises overload / the flight recorder) instead of applying backpressure")
		compare  = flag.Bool("compare", false, "also run the virtual-time simulation of the same workload")
		external = flag.Bool("external", false, "serve freshly generated external items (no precomputed ground truth) instead of cycling the held-out split")

		journalPath = flag.String("journal", "", "write-ahead journal path: ingested items become durable, evictable, and crash-recoverable")
		maxResident = flag.Int("max-resident", 0, "resident-item watermark: admissions block once this many ingested items hold memory (0 = unbounded)")
		snapEvery   = flag.Int("snapshot-every", 0, "compact the journal into a snapshot every N completed items (0 = never)")
		syncEvery   = flag.Int("sync-every", 0, "group-commit fsync: sync the journal once this many records accumulate (0 = sync only on close/snapshot)")
		syncMS      = flag.Float64("sync-ms", 0, "group-commit fsync: sync the journal at least every this many milliseconds (0 = off)")
		replay      = flag.Bool("replay", false, "recover the -journal corpus from a previous (possibly killed) run and exit")
	)
	flag.Parse()
	if (*replay || *maxResident > 0 || *snapEvery > 0 || *syncEvery > 0 || *syncMS > 0) && *journalPath == "" {
		log.Fatal("amsserve: -replay, -max-resident, -snapshot-every and -sync-* require -journal")
	}

	sys, err := ams.New(ams.Config{Dataset: *dataset, NumImages: *images, Seed: *seed})
	if err != nil {
		log.Fatalf("amsserve: %v", err)
	}
	var agent *ams.Agent
	if *agentPath != "" {
		agent, err = ams.LoadAgent(*agentPath)
		if err != nil {
			log.Fatalf("amsserve: %v", err)
		}
		fmt.Printf("loaded %s agent trained on %s\n", agent.Algorithm(), agent.TrainedOn())
	} else {
		fmt.Printf("training a quick DuelingDQN agent on %s (%d epochs)...\n", *dataset, *epochs)
		agent, err = sys.TrainAgent(ams.TrainOptions{
			Algorithm: ams.DuelingDQN, Epochs: *epochs, Hidden: []int{96}, Seed: *seed,
		})
		if err != nil {
			log.Fatalf("amsserve: %v", err)
		}
	}

	policy, err := ams.PolicyByName(*policyName)
	if err != nil {
		log.Fatalf("amsserve: %v", err)
	}
	cfg := ams.ServeConfig{
		Workers:        *workers,
		Policy:         policy.WithSeed(*seed),
		DeadlineSec:    *deadline,
		MemoryGB:       *memory,
		QueueCap:       *queueCap,
		TimeScale:      *timescale,
		BatchSize:      *batchSize,
		BatchHoldMS:    *batchHold,
		PredictorCache: *predCache,
		Shards:         *shards,
		ShardPlacement: *placement,
		ShardSteal:     *steal,
		MetricsAddr:    *metricsAddr,
		TraceOut:       *traceOut,
		TraceCapacity:  *traceCap,
		FlightDir:      *flightDir,
	}
	if *sloSpecs != "" {
		cfg.SLOs = strings.Split(*sloSpecs, ",")
	}
	trace := ams.ServeTrace{ArrivalRateHz: float64(*rate), Items: *items, Seed: *seed, OpenLoop: *openLoop}

	var corpus *ams.Corpus
	if *journalPath != "" {
		copts := ams.CorpusOptions{
			MaxResident:   *maxResident,
			SnapshotEvery: *snapEvery,
			SyncEveryN:    *syncEvery,
			SyncEveryMS:   *syncMS,
		}
		// Sharded serving journals one segment per shard under a
		// directory; replaying a directory reopens however many segments
		// it holds (segment count from its manifest). A plain-file
		// journal stays on the single-segment opener.
		if *shards > 1 || (*replay && isDir(*journalPath)) {
			corpus, err = sys.OpenCorpusDir(*journalPath, *shards, copts)
		} else {
			corpus, err = sys.OpenCorpus(*journalPath, copts)
		}
		if err != nil {
			log.Fatalf("amsserve: %v", err)
		}
		cfg.Corpus = corpus
	}

	if *replay {
		rep, err := sys.ReplayCorpus(context.Background(), agent, cfg, corpus)
		if rep != nil {
			for _, sr := range rep.Segments {
				fmt.Printf("segment %d: recovered %d committed, relabeled %d uncommitted\n",
					sr.Segment, sr.Recovered, sr.Relabeled)
			}
			fmt.Printf("\nrecovered %d committed items (bit-identical, no model re-runs), relabeled %d uncommitted items across %d segments\n",
				len(rep.Recovered), len(rep.Relabeled), len(rep.Segments))
			for i, r := range rep.Recovered {
				if i >= 3 {
					fmt.Printf("  ...\n")
					break
				}
				fmt.Printf("  recovered %q: %d models, %d labels, %.2fs schedule\n",
					r.ItemID, len(r.ModelsRun), len(r.Labels), r.TimeSec)
			}
		}
		if err != nil {
			log.Fatalf("amsserve: replay: %v", err)
		}
		corpus.Stats().WriteSummary(os.Stdout)
		if err := corpus.Close(); err != nil {
			log.Fatalf("amsserve: %v", err)
		}
		return
	}

	// The item source: the built-in test split (cycled) by default, or a
	// stream of externally generated scenes fed through the same door.
	var src ams.SceneSource
	kind := "test split"
	if *external {
		src = ams.ItemSource(sys.GenerateItems(*items, *seed)...)
		kind = "external items"
	}

	fmt.Printf("\nserving %d %s at %d/s with %d workers (policy %s, deadline %.2fs, mem %.1f GB, timescale %g)\n",
		*items, kind, *rate, *workers, policy.Name(), *deadline, *memory, *timescale)
	if *metricsAddr != "" {
		fmt.Printf("telemetry: http://%s/metrics /statusz /tracez /debug/pprof\n", *metricsAddr)
	}
	real, err := sys.Serve(context.Background(), agent, cfg, trace, src)
	if err != nil {
		log.Fatalf("amsserve: %v", err)
	}
	real.WriteSummary(os.Stdout, "real server", *memory*1024)
	if *traceOut != "" {
		fmt.Printf("\nspan trace written to %s (load in https://ui.perfetto.dev or chrome://tracing)\n", *traceOut)
	}
	if *flightDir != "" {
		fmt.Printf("flight recorder armed at %s (bundles written on anomaly triggers)\n", *flightDir)
	}
	if corpus != nil {
		corpus.Stats().WriteSummary(os.Stdout)
		if err := corpus.Close(); err != nil {
			log.Fatalf("amsserve: %v", err)
		}
	}

	if *compare {
		sim, err := sys.SimulateServe(agent, cfg, trace)
		if err != nil {
			log.Fatalf("amsserve: %v", err)
		}
		fmt.Println()
		sim.WriteSummary(os.Stdout, "virtual-time sim", 0)
	}
}

// isDir reports whether path exists and is a directory — a segmented
// journal from a sharded run.
func isDir(path string) bool {
	info, err := os.Stat(path)
	return err == nil && info.IsDir()
}

// The summary itself renders through the shared
// ams.ServeStats.WriteSummary / ams.CorpusStats.WriteSummary, so this
// binary and examples/labelserver report identical runs identically.

// Command amsserve runs the real concurrent labeling server against a
// Poisson arrival trace and prints the same statistics shape as the
// virtual-time service simulation, so the two can be compared side by
// side (-compare prints both).
//
// The server executes items with a pool of worker goroutines, each
// holding a private clone of the agent's network, and enforces a global
// GPU-memory budget (-memory) shared by all workers via the Algorithm-2
// accountant. Model executions sleep their nominal duration scaled by
// -timescale; the default 0.05 replays the trace twenty times faster
// than production pacing while keeping every scheduling decision
// identical. Note that the scheduler's real CPU overhead (the agent's
// Q-network forward passes — the paper's Table III selection overhead)
// is NOT scaled, so very small timescales magnify it relative to model
// time and inflate the reported latencies.
//
// The per-worker scheduling policy is pluggable (-policy): algorithm1
// (the default serial cost-aware Q-greedy), qgreedy, random, or
// algorithm2, which requires -memory and switches the server into
// per-item parallel mode — one item's models run concurrently across
// the pool under the shared accountant, matching sim.RunParallel
// semantics.
//
// Usage:
//
//	amsserve -workers 4 -rate 3 -items 200 -deadline 0.5
//	amsserve -workers 4 -memory 8 -compare
//	amsserve -workers 4 -memory 8 -policy algorithm2
//	amsserve -agent agent.gob -timescale 1 -rate 1 -items 30
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"ams"
)

func main() {
	var (
		dataset   = flag.String("dataset", ams.DatasetMirFlickr, "dataset profile")
		images    = flag.Int("images", 500, "images to generate")
		seed      = flag.Uint64("seed", 1, "determinism seed")
		agentPath = flag.String("agent", "", "trained agent file (trains a quick agent when empty)")
		epochs    = flag.Int("epochs", 8, "epochs for the quick agent when -agent is empty")

		workers    = flag.Int("workers", 4, "concurrent labeling workers")
		deadline   = flag.Float64("deadline", 0.5, "per-item deadline in seconds")
		memory     = flag.Float64("memory", 0, "global GPU memory budget in GB shared by all workers (0 = unlimited)")
		queueCap   = flag.Int("queue", 0, "admission queue bound (0 = 2*workers)")
		timescale  = flag.Float64("timescale", 0.05, "real seconds per simulated second of model time")
		policyName = flag.String("policy", "algorithm1", "scheduling policy: algorithm1, algorithm2 (needs -memory; per-item parallel), qgreedy, random")

		rate     = flag.Int("rate", 4, "mean arrivals per simulated second (Poisson)")
		items    = flag.Int("items", 200, "arrival trace length")
		compare  = flag.Bool("compare", false, "also run the virtual-time simulation of the same workload")
		external = flag.Bool("external", false, "serve freshly generated external items (no precomputed ground truth) instead of cycling the held-out split")
	)
	flag.Parse()

	sys, err := ams.New(ams.Config{Dataset: *dataset, NumImages: *images, Seed: *seed})
	if err != nil {
		log.Fatalf("amsserve: %v", err)
	}
	var agent *ams.Agent
	if *agentPath != "" {
		agent, err = ams.LoadAgent(*agentPath)
		if err != nil {
			log.Fatalf("amsserve: %v", err)
		}
		fmt.Printf("loaded %s agent trained on %s\n", agent.Algorithm(), agent.TrainedOn())
	} else {
		fmt.Printf("training a quick DuelingDQN agent on %s (%d epochs)...\n", *dataset, *epochs)
		agent, err = sys.TrainAgent(ams.TrainOptions{
			Algorithm: ams.DuelingDQN, Epochs: *epochs, Hidden: []int{96}, Seed: *seed,
		})
		if err != nil {
			log.Fatalf("amsserve: %v", err)
		}
	}

	policy, err := ams.PolicyByName(*policyName)
	if err != nil {
		log.Fatalf("amsserve: %v", err)
	}
	cfg := ams.ServeConfig{
		Workers:     *workers,
		Policy:      policy.WithSeed(*seed),
		DeadlineSec: *deadline,
		MemoryGB:    *memory,
		QueueCap:    *queueCap,
		TimeScale:   *timescale,
	}
	trace := ams.ServeTrace{ArrivalRateHz: float64(*rate), Items: *items, Seed: *seed}

	// The item source: the built-in test split (cycled) by default, or a
	// stream of externally generated scenes fed through the same door.
	var src ams.SceneSource
	kind := "test split"
	if *external {
		src = ams.ItemSource(sys.GenerateItems(*items, *seed)...)
		kind = "external items"
	}

	fmt.Printf("\nserving %d %s at %d/s with %d workers (policy %s, deadline %.2fs, mem %.1f GB, timescale %g)\n",
		*items, kind, *rate, *workers, policy.Name(), *deadline, *memory, *timescale)
	real, err := sys.Serve(context.Background(), agent, cfg, trace, src)
	if err != nil {
		log.Fatalf("amsserve: %v", err)
	}
	printStats("real server", real)
	if real.PeakMemMB > 0 {
		fmt.Printf("  %-18s %8.0f MB (budget %.0f MB, %d blocked reservations)\n",
			"peak GPU memory", real.PeakMemMB, *memory*1024, real.MemWaits)
	}

	if *compare {
		sim, err := sys.SimulateServe(agent, cfg, trace)
		if err != nil {
			log.Fatalf("amsserve: %v", err)
		}
		fmt.Println()
		printStats("virtual-time sim", sim)
	}
}

func printStats(name string, s ams.ServeStats) {
	fmt.Printf("%s:\n", name)
	fmt.Printf("  %-18s %8d\n", "items", s.Items)
	fmt.Printf("  %-18s %8.3f s\n", "avg queue wait", s.AvgQueueWaitSec)
	fmt.Printf("  %-18s %8.3f s\n", "avg latency", s.AvgLatencySec)
	fmt.Printf("  %-18s %8.3f s\n", "p95 latency", s.P95LatencySec)
	if s.RecallItems > 0 {
		fmt.Printf("  %-18s %8.3f (over %d ground-truth items)\n", "avg recall", s.AvgRecall, s.RecallItems)
	} else {
		fmt.Printf("  %-18s %8s (external items: no ground truth)\n", "avg recall", "n/a")
	}
	fmt.Printf("  %-18s %8.2f /s\n", "throughput", s.ThroughputHz)
	fmt.Printf("  %-18s %8.1f %%\n", "utilization", 100*s.Utilization)
	fmt.Printf("  %-18s %8.2f s\n", "horizon", s.HorizonSec)
	if s.AvgSelectSec > 0 {
		// Real (unscaled) CPU time inside the policy per item — the
		// paper's Table III selection overhead.
		fmt.Printf("  %-18s %8.3f ms (real, unscaled)\n", "avg select/item", s.AvgSelectSec*1000)
	}
}

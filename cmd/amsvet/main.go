// Command amsvet runs the repo-specific analyzer suite over the module:
// invariants this codebase depends on and has already paid to re-learn
// once — accountant reserve/release pairing, simulated-time discipline,
// no blocking calls under held mutexes, context propagation — enforced
// mechanically instead of by review. Run it like vet:
//
//	go run ./cmd/amsvet ./...
//
// It prints one line per finding and exits non-zero when any survive the
// //amsvet:allow escape hatch. See internal/analysis for the analyzers
// and DESIGN.md §7 for the invariant catalog.
package main

import (
	"flag"
	"fmt"
	"os"

	"ams/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: amsvet [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "amsvet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(wd, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "amsvet:", err)
		os.Exit(2)
	}
	suite := analysis.All()
	found := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Check(pkg, suite)
		if err != nil {
			fmt.Fprintln(os.Stderr, "amsvet:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "amsvet: %d finding(s)\n", found)
		os.Exit(1)
	}
}

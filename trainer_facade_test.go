package ams

import "testing"

func TestIncrementalTrainerMatchesOneShot(t *testing.T) {
	opts := TrainOptions{Algorithm: DQN, Epochs: 4, Hidden: []int{16}, Seed: 5}
	oneShot, err := testSys.TrainAgent(opts)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := testSys.NewTrainer(opts)
	if err != nil {
		t.Fatal(err)
	}
	tr.TrainEpochs(2)
	tr.TrainEpochs(2)
	inc := tr.Snapshot()
	state := []int{1, 500}
	a, b := oneShot.PredictValues(state), inc.PredictValues(state)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("incremental trainer diverges from one-shot training")
		}
	}
}

func TestTrainerSnapshotIndependentAndSteps(t *testing.T) {
	tr, err := testSys.NewTrainer(TrainOptions{Algorithm: DQN, Epochs: 2, Hidden: []int{16}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	tr.TrainEpochs(1)
	steps := tr.Steps()
	if steps <= 0 {
		t.Fatalf("steps %d", steps)
	}
	snap := tr.Snapshot()
	before := append([]float64(nil), snap.PredictValues([]int{3})...)
	tr.TrainEpochs(1)
	if tr.Steps() <= steps {
		t.Fatal("steps did not advance")
	}
	after := snap.PredictValues([]int{3})
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("snapshot changed after continued training")
		}
	}
}

func TestTrainerAdaptOnOtherDataset(t *testing.T) {
	tr, err := testSys.NewTrainer(TrainOptions{Algorithm: DuelingDQN, Epochs: 2, Hidden: []int{16}, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	tr.TrainEpochs(1)
	if err := tr.TrainEpochsOn(DatasetStanford, 40, 1, 17); err != nil {
		t.Fatalf("TrainEpochsOn: %v", err)
	}
	if err := tr.TrainEpochsOn("nope", 40, 1, 17); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if err := tr.TrainEpochsOn(DatasetStanford, 0, 1, 17); err == nil {
		t.Fatal("zero images accepted")
	}
	agent := tr.Snapshot()
	if _, err := testSys.Label(bg, agent, testSys.TestItem(0), Budget{DeadlineSec: 1}); err != nil {
		t.Fatalf("label with adapted agent: %v", err)
	}
}

func TestNewTrainerValidation(t *testing.T) {
	if _, err := testSys.NewTrainer(TrainOptions{
		Algorithm:  DQN,
		Priorities: map[string]float64{"missing": 1},
	}); err == nil {
		t.Fatal("bad priorities accepted")
	}
}

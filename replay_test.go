package ams

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"ams/internal/oracle"
	"ams/internal/zoo"
)

// corpusCfg is the fast serving configuration the corpus tests share.
// Corpus is left nil; each test wires its own.
func corpusCfg(workers int) ServeConfig {
	return ServeConfig{
		Workers:     workers,
		Policy:      PolicyAlgorithm1,
		DeadlineSec: 0.4,
		TimeScale:   0.001,
	}
}

// runCorpusStream serves the items through a fresh corpus-wired server
// and returns every result keyed by item ID.
func runCorpusStream(t *testing.T, c *Corpus, cfg ServeConfig, items []Item) map[string]*Result {
	t.Helper()
	cfg.Corpus = c
	srv, err := testSys.NewServer(testAgent, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tks []*ServeTicket
	for _, it := range items {
		tk, err := srv.SubmitWait(bg, it)
		if err != nil {
			t.Fatal(err)
		}
		tks = append(tks, tk)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	results := make(map[string]*Result, len(tks))
	for _, tk := range tks {
		res, err := tk.Wait(bg)
		if err != nil {
			t.Fatal(err)
		}
		results[res.ItemID] = res
	}
	return results
}

// sameResult compares the fields a recovered result must reproduce
// bit-identically: the labels (names, confidences, valuable flags), the
// executed models in order, and the schedule time.
func sameResult(a, b *Result) bool {
	return reflect.DeepEqual(a.Labels, b.Labels) &&
		reflect.DeepEqual(a.ModelsRun, b.ModelsRun) &&
		a.TimeSec == b.TimeSec && a.ItemID == b.ItemID
}

// TestCorpusCrashReplayBitIdentical is the acceptance probe: a journaled
// run, reopened (both intact and truncated at arbitrary byte offsets),
// re-serves every committed item bit-identically without re-running a
// single model — verified by the zoo's inference counter — and re-runs
// only uncommitted items.
func TestCorpusCrashReplayBitIdentical(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.wal")
	c, err := testSys.OpenCorpus(path, CorpusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	items := testSys.GenerateItems(12, 42)
	original := runCorpusStream(t, c, corpusCfg(2), items)
	if len(original) != 12 {
		t.Fatalf("served %d items, want 12", len(original))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Intact journal: every item was committed, so recovery re-runs
	// nothing — not one inference — and reproduces every result.
	c2, err := testSys.OpenCorpus(path, CorpusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := zoo.Inferences()
	rep, err := testSys.ReplayCorpus(bg, testAgent, corpusCfg(2), c2)
	if err != nil {
		t.Fatal(err)
	}
	if ran := zoo.Inferences() - before; ran != 0 {
		t.Fatalf("replay of a fully committed corpus ran %d inferences; want 0", ran)
	}
	if len(rep.Recovered) != 12 || len(rep.Relabeled) != 0 {
		t.Fatalf("recovered %d / relabeled %d, want 12 / 0", len(rep.Recovered), len(rep.Relabeled))
	}
	for _, res := range rep.Recovered {
		want, ok := original[res.ItemID]
		if !ok {
			t.Fatalf("recovered unknown item %q", res.ItemID)
		}
		if !sameResult(res, want) {
			t.Fatalf("recovered %q differs from the pre-crash result:\n got %+v\nwant %+v", res.ItemID, res, want)
		}
		if res.Image != -1 || res.HasRecall {
			t.Fatalf("recovered %q claims a test index or recall: %+v", res.ItemID, res)
		}
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}

	// Kill at arbitrary byte offsets: the journal prefix must always
	// reopen, committed items in the prefix recover bit-identically, and
	// the rest relabel.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, frac := range []float64{0.2, 0.5, 0.8, 0.99} {
		cut := 5 + int(frac*float64(len(data)-5))
		p := filepath.Join(dir, fmt.Sprintf("trunc%d.wal", i))
		if err := os.WriteFile(p, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		tc, err := testSys.OpenCorpus(p, CorpusOptions{})
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		rep, err := testSys.ReplayCorpus(bg, testAgent, corpusCfg(2), tc)
		if err != nil {
			t.Fatalf("cut=%d: replay: %v", cut, err)
		}
		for _, res := range rep.Recovered {
			if want := original[res.ItemID]; want == nil || !sameResult(res, want) {
				t.Fatalf("cut=%d: recovered %q differs from the pre-crash result", cut, res.ItemID)
			}
		}
		if total := len(rep.Recovered) + len(rep.Relabeled); total > 12 {
			t.Fatalf("cut=%d: replay produced %d items from a 12-item run", cut, total)
		}
		for _, res := range rep.Relabeled {
			if res.ItemID == "" {
				t.Fatalf("cut=%d: relabeled result lost its ID", cut)
			}
		}
		if err := tc.Close(); err != nil {
			t.Fatalf("cut=%d: close: %v", cut, err)
		}
	}
}

// TestCorpusWatermarkUnderOverload is the second acceptance probe: a
// bounded-MaxResident server fed 10x its watermark holds resident items
// at the watermark (admission backpressure + eviction), and an item that
// was committed and evicted remains servable with a bit-identical result.
func TestCorpusWatermarkUnderOverload(t *testing.T) {
	const maxResident = 4
	path := filepath.Join(t.TempDir(), "corpus.wal")
	c, err := testSys.OpenCorpus(path, CorpusOptions{MaxResident: maxResident})
	if err != nil {
		t.Fatal(err)
	}
	cfg := corpusCfg(2)
	cfg.QueueCap = 2
	cfg.Corpus = c
	srv, err := testSys.NewServer(testAgent, cfg)
	if err != nil {
		t.Fatal(err)
	}
	items := testSys.GenerateItems(10*maxResident, 7)

	// Sample residency while the overload stream runs.
	stopSampling := make(chan struct{})
	var samplerDone sync.WaitGroup
	var peakResident int
	samplerDone.Add(1)
	go func() {
		defer samplerDone.Done()
		for {
			select {
			case <-stopSampling:
				return
			default:
			}
			if r := c.Stats().Resident; r > peakResident {
				peakResident = r
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()

	// First item first, alone, so it is committed and evicted before the
	// flood — the re-serve probe at the end targets it.
	firstTk, err := srv.SubmitWait(bg, items[0])
	if err != nil {
		t.Fatal(err)
	}
	first, err := firstTk.Wait(bg)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	tks := make(chan *ServeTicket, len(items))
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p + 1; i < len(items); i += 4 {
				tk, err := srv.SubmitWait(bg, items[i])
				if err != nil {
					t.Errorf("submit %d: %v", i, err)
					return
				}
				tks <- tk
			}
		}(p)
	}
	wg.Wait()
	close(tks)
	served := 1
	for tk := range tks {
		if _, err := tk.Wait(bg); err != nil {
			t.Fatal(err)
		}
		served++
	}
	close(stopSampling)
	samplerDone.Wait()
	if served != len(items) {
		t.Fatalf("served %d of %d items", served, len(items))
	}
	if peakResident > maxResident {
		t.Fatalf("resident items peaked at %d, watermark %d", peakResident, maxResident)
	}
	if st := c.Stats(); st.Evicted < int64(len(items)-maxResident) {
		t.Fatalf("only %d evictions across a %d-item overload stream", st.Evicted, len(items))
	}

	// The first item was committed and evicted long ago; re-submitting it
	// re-serves it (deterministic re-execution) bit-identically.
	againTk, err := srv.SubmitWait(bg, items[0])
	if err != nil {
		t.Fatal(err)
	}
	again, err := againTk.Wait(bg)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResult(again, first) {
		t.Fatalf("re-served evicted item differs:\n got %+v\nwant %+v", again, first)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Items != len(items) {
		t.Fatalf("corpus tracks %d items, want %d (re-submission must reuse its slot)", st.Items, len(items))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCorpusEvictionWithLaggingConsumer is the -race satellite: eager
// eviction must never reclaim data a lagging Results consumer still
// needs. Results are captured by value at commit, so every delivered
// result must match an independent recomputation of its models on the
// item's scene, no matter how far behind the consumer runs.
func TestCorpusEvictionWithLaggingConsumer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.wal")
	c, err := testSys.OpenCorpus(path, CorpusOptions{MaxResident: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := corpusCfg(2)
	cfg.Corpus = c
	srv, err := testSys.NewServer(testAgent, cfg)
	if err != nil {
		t.Fatal(err)
	}
	items := testSys.GenerateItems(24, 11)
	scenes := make(map[string]Item, len(items))
	for _, it := range items {
		scenes[it.ID()] = it
	}

	results := srv.Results()
	consumed := make(chan int)
	go func() {
		n := 0
		for res := range results {
			// Lag far behind the workers, so eviction churns ahead of us.
			time.Sleep(2 * time.Millisecond)
			src, ok := scenes[res.ItemID]
			if !ok {
				t.Errorf("result for unknown item %q", res.ItemID)
				continue
			}
			// Recompute the executed models on a twin of the scene:
			// inference is deterministic, so a result whose memory was
			// reclaimed out from under the stream would differ.
			twin := oracle.NewExternalItem(testSys.Zoo, *src.ext.Scene())
			names := res.ModelsRun
			outs := make([]zoo.Output, len(names))
			for i, name := range names {
				m, ok := testSys.Zoo.ByName(name)
				if !ok {
					t.Errorf("unknown model %q in result", name)
					continue
				}
				outs[i] = twin.Output(m.ID)
			}
			want := testSys.assembleResult(Item{id: res.ItemID, image: -1, valid: true},
				names, outs, res.TimeSec*1000, 0, false)
			if !reflect.DeepEqual(res.Labels, want.Labels) {
				t.Errorf("item %q: delivered labels diverge from recomputation", res.ItemID)
			}
			n++
		}
		consumed <- n
	}()

	for _, it := range items {
		if _, err := srv.SubmitWait(bg, it); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if n := <-consumed; n != len(items) {
		t.Fatalf("consumer saw %d of %d results", n, len(items))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointCompactsAndPreservesRecovery: Server.Checkpoint shrinks
// the journal mid-run, and a corpus recovered across a snapshot boundary
// still replays every committed item without inference — including items
// evicted before the snapshot, whose outputs the snapshot merge carried
// over from the journal.
func TestCheckpointCompactsAndPreservesRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.wal")
	c, err := testSys.OpenCorpus(path, CorpusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	original := runCorpusStream(t, c, corpusCfg(2), testSys.GenerateItems(8, 5))

	cfg := corpusCfg(2)
	cfg.Corpus = c
	srv, err := testSys.NewServer(testAgent, cfg)
	if err != nil {
		t.Fatal(err)
	}
	grown := c.Stats().JournalBytes
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.JournalBytes >= grown || st.Snapshots != 1 {
		t.Fatalf("checkpoint did not compact: %+v (journal was %d bytes)", st, grown)
	}
	// More traffic after the snapshot, then a clean close.
	for id, res := range runCorpusStreamVia(t, srv, testSys.GenerateItems(4, 6)) {
		original[id] = res
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := testSys.OpenCorpus(path, CorpusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := zoo.Inferences()
	rep, err := testSys.ReplayCorpus(bg, testAgent, corpusCfg(2), c2)
	if err != nil {
		t.Fatal(err)
	}
	if ran := zoo.Inferences() - before; ran != 0 {
		t.Fatalf("post-snapshot recovery ran %d inferences; want 0", ran)
	}
	if len(rep.Recovered) != len(original) {
		t.Fatalf("recovered %d items, want %d", len(rep.Recovered), len(original))
	}
	for _, res := range rep.Recovered {
		if want := original[res.ItemID]; want == nil || !sameResult(res, want) {
			t.Fatalf("recovered %q differs across the snapshot boundary", res.ItemID)
		}
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
}

// runCorpusStreamVia submits through an existing server (no close).
func runCorpusStreamVia(t *testing.T, srv *Server, items []Item) map[string]*Result {
	t.Helper()
	var tks []*ServeTicket
	for _, it := range items {
		tk, err := srv.SubmitWait(bg, it)
		if err != nil {
			t.Fatal(err)
		}
		tks = append(tks, tk)
	}
	out := make(map[string]*Result, len(tks))
	for _, tk := range tks {
		res, err := tk.Wait(bg)
		if err != nil {
			t.Fatal(err)
		}
		out[res.ItemID] = res
	}
	return out
}

// TestCheckpointWithoutCorpus fails loudly instead of silently no-oping.
func TestCheckpointWithoutCorpus(t *testing.T) {
	srv, err := testSys.NewServer(testAgent, corpusCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Checkpoint(); err == nil {
		t.Fatal("checkpoint without a corpus succeeded")
	}
}

package labels

import (
	"testing"
)

func TestVocabularyTotals(t *testing.T) {
	v := NewVocabulary()
	if v.Len() != Total {
		t.Fatalf("vocabulary size = %d, want %d", v.Len(), Total)
	}
	sum := 0
	for _, task := range Tasks() {
		n := len(v.TaskLabels(task))
		if n != task.LabelCount() {
			t.Fatalf("%v has %d labels, want %d", task, n, task.LabelCount())
		}
		sum += n
	}
	if sum != Total {
		t.Fatalf("task label counts sum to %d, want %d", sum, Total)
	}
}

func TestTableICounts(t *testing.T) {
	// The exact per-task counts from Table I.
	want := map[Task]int{
		ObjectDetection:       80,
		PlaceClassification:   365,
		FaceDetection:         1,
		FaceLandmark:          70,
		PoseEstimation:        17,
		EmotionClassification: 7,
		GenderClassification:  2,
		ActionClassification:  400,
		HandLandmark:          42,
		DogClassification:     120,
	}
	for task, n := range want {
		if task.LabelCount() != n {
			t.Fatalf("%v count = %d, want %d", task, task.LabelCount(), n)
		}
	}
}

func TestLabelIDsDenseAndConsistent(t *testing.T) {
	v := NewVocabulary()
	for id := 0; id < v.Len(); id++ {
		l := v.Label(id)
		if l.ID != id {
			t.Fatalf("label %d stores ID %d", id, l.ID)
		}
		got, ok := v.ByName(l.Name)
		if !ok || got.ID != id {
			t.Fatalf("ByName(%q) = %+v, %v", l.Name, got, ok)
		}
	}
}

func TestNamesUnique(t *testing.T) {
	v := NewVocabulary()
	seen := make(map[string]bool, v.Len())
	for id := 0; id < v.Len(); id++ {
		n := v.Label(id).Name
		if seen[n] {
			t.Fatalf("duplicate label name %q", n)
		}
		seen[n] = true
	}
}

func TestTaskLabelsBelongToTask(t *testing.T) {
	v := NewVocabulary()
	for _, task := range Tasks() {
		for _, id := range v.TaskLabels(task) {
			if v.Label(id).Task != task {
				t.Fatalf("label %d listed under %v but belongs to %v",
					id, task, v.Label(id).Task)
			}
		}
	}
}

func TestSemanticAttributes(t *testing.T) {
	v := NewVocabulary()
	pub, ok := v.ByName("place/pub")
	if !ok || !pub.Indoor {
		t.Fatalf("place/pub should exist and be indoor: %+v ok=%v", pub, ok)
	}
	mountain, ok := v.ByName("place/mountain")
	if !ok || mountain.Indoor {
		t.Fatalf("place/mountain should exist and be outdoor")
	}
	bike, ok := v.ByName("action/riding bike")
	if !ok || !bike.Sport {
		t.Fatalf("action/riding bike should be a sport action")
	}
	cook, ok := v.ByName("action/cooking")
	if !ok || cook.Sport {
		t.Fatalf("action/cooking should not be a sport action")
	}
	cat, ok := v.ByName("object/cat")
	if !ok || !cat.Animal {
		t.Fatalf("object/cat should be an animal object")
	}
	car, ok := v.ByName("object/car")
	if !ok || car.Animal {
		t.Fatalf("object/car should not be an animal object")
	}
	// Every dog breed counts as animal-related.
	for _, id := range v.TaskLabels(DogClassification) {
		if !v.Label(id).Animal {
			t.Fatalf("dog label %q not marked animal", v.Label(id).Name)
		}
	}
}

func TestSomeAnimalsAndSportsExist(t *testing.T) {
	v := NewVocabulary()
	animals, sports := 0, 0
	for _, id := range v.TaskLabels(ObjectDetection) {
		if v.Label(id).Animal {
			animals++
		}
	}
	for _, id := range v.TaskLabels(ActionClassification) {
		if v.Label(id).Sport {
			sports++
		}
	}
	if animals < 5 {
		t.Fatalf("only %d animal objects", animals)
	}
	if sports < 20 {
		t.Fatalf("only %d sport actions", sports)
	}
}

func TestDefaultProfitAndOverride(t *testing.T) {
	v := NewVocabulary()
	// Single-output tasks default to profit 1; keypoint tasks are
	// normalized down so their dozens of labels do not dominate.
	place, _ := v.ByName("place/pub")
	if place.Profit != 1 {
		t.Fatalf("place profit = %v, want 1", place.Profit)
	}
	kp := v.TaskLabels(FaceLandmark)[0]
	if p := v.Label(kp).Profit; p <= 0 || p >= 0.2 {
		t.Fatalf("face keypoint profit = %v, want small fraction", p)
	}
	// Typical per-task valuable output values are the same order of
	// magnitude: 70 face keypoints vs one place label.
	if tot := float64(FaceLandmark.LabelCount()) * v.Label(kp).Profit; tot < 1 || tot > 6 {
		t.Fatalf("face landmark task total %v not normalized", tot)
	}
	v.SetProfit(0, 3.5)
	if v.Label(0).Profit != 3.5 {
		t.Fatalf("SetProfit did not stick")
	}
}

func TestTaskString(t *testing.T) {
	if ObjectDetection.String() != "Object Detection" {
		t.Fatalf("unexpected task name %q", ObjectDetection.String())
	}
	if Task(99).String() == "" {
		t.Fatal("out-of-range task produced empty string")
	}
	if len(Tasks()) != NumTasks {
		t.Fatalf("Tasks() returned %d entries", len(Tasks()))
	}
}

func TestByNameMissing(t *testing.T) {
	v := NewVocabulary()
	if _, ok := v.ByName("no/such-label"); ok {
		t.Fatal("ByName returned ok for a missing label")
	}
}

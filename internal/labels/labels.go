// Package labels defines the label vocabulary of the AMS reproduction:
// ten visual-analysis tasks supporting 1104 labels in total, mirroring
// Table I of the paper. Labels carry a user-assignable profit (default 1)
// used by the evaluation function f(S,d) = sum of profits of emitted
// labels.
package labels

import "fmt"

// Task identifies one of the ten visual-analysis tasks.
type Task int

// The ten tasks of Table I.
const (
	ObjectDetection Task = iota
	PlaceClassification
	FaceDetection
	FaceLandmark
	PoseEstimation
	EmotionClassification
	GenderClassification
	ActionClassification
	HandLandmark
	DogClassification
	numTasks
)

// NumTasks is the number of distinct tasks.
const NumTasks = int(numTasks)

// taskNames in Table I order.
var taskNames = [...]string{
	"Object Detection",
	"Place Classification",
	"Face Detection",
	"Face Landmark Localization",
	"Pose Estimation",
	"Emotion Classification",
	"Gender Classification",
	"Action Classification",
	"Hand Landmark Localization",
	"Dog Classification",
}

// labelCounts per task per Table I; they sum to 1104.
var labelCounts = [...]int{80, 365, 1, 70, 17, 7, 2, 400, 42, 120}

// String returns the task's display name.
func (t Task) String() string {
	if t < 0 || int(t) >= NumTasks {
		return fmt.Sprintf("Task(%d)", int(t))
	}
	return taskNames[t]
}

// LabelCount returns the number of labels the task supports.
func (t Task) LabelCount() int { return labelCounts[t] }

// Tasks lists all tasks in Table I order.
func Tasks() []Task {
	ts := make([]Task, NumTasks)
	for i := range ts {
		ts[i] = Task(i)
	}
	return ts
}

// Label is one entry of the vocabulary.
type Label struct {
	ID     int    // dense index in [0, Total)
	Name   string // unique human-readable name
	Task   Task   // owning task
	Profit float64

	// Semantic attributes consumed by the synthetic world and the
	// handcrafted-rule engine.
	Indoor bool // meaningful for place labels
	Sport  bool // meaningful for action labels
	Animal bool // meaningful for object labels
}

// Vocabulary is the immutable registry of all labels.
type Vocabulary struct {
	labels []Label
	byName map[string]int
	byTask [NumTasks][]int // label IDs per task
}

// Total is the size of the full vocabulary (|L(M)| in the paper).
const Total = 1104

// objectNames are 80 everyday object categories (detection vocabulary).
var objectNames = []string{
	"person", "bicycle", "car", "motorcycle", "airplane", "bus", "train",
	"truck", "boat", "traffic light", "fire hydrant", "stop sign",
	"parking meter", "bench", "bird", "cat", "dog", "horse", "sheep",
	"cow", "elephant", "bear", "zebra", "giraffe", "backpack", "umbrella",
	"handbag", "tie", "suitcase", "frisbee", "skis", "snowboard",
	"sports ball", "kite", "baseball bat", "baseball glove", "skateboard",
	"surfboard", "tennis racket", "bottle", "wine glass", "cup", "fork",
	"knife", "spoon", "bowl", "banana", "apple", "sandwich", "orange",
	"broccoli", "carrot", "hot dog", "pizza", "donut", "cake", "chair",
	"couch", "potted plant", "bed", "dining table", "toilet", "tv monitor",
	"laptop", "mouse", "remote", "keyboard", "cell phone", "microwave",
	"oven", "toaster", "sink", "refrigerator", "book", "clock", "vase",
	"scissors", "teddy bear", "hair drier", "toothbrush",
}

// animalObjects marks which object labels are animals (used by the
// "Animal-Object Detection" handcrafted rule).
var animalObjects = map[string]bool{
	"bird": true, "cat": true, "dog": true, "horse": true, "sheep": true,
	"cow": true, "elephant": true, "bear": true, "zebra": true,
	"giraffe": true, "teddy bear": false,
}

// curatedPlaces seeds the place vocabulary with names used by the paper's
// figures and rules; the remainder is generated.
var curatedPlaces = []struct {
	name   string
	indoor bool
}{
	{"pub", true}, {"beer hall", true}, {"bathroom", true}, {"lobby", true},
	{"mall", true}, {"kitchen", true}, {"bedroom", true}, {"office", true},
	{"classroom", true}, {"library", true}, {"gym", true}, {"museum", true},
	{"restaurant", true}, {"supermarket", true}, {"church indoor", true},
	{"stadium indoor", true},
	{"mountain", false}, {"beach", false}, {"forest", false},
	{"lawn", false}, {"street", false}, {"park", false}, {"harbor", false},
	{"desert", false}, {"undersea", false}, {"ski slope", false},
	{"playground", false}, {"stadium outdoor", false}, {"farm", false},
	{"garden", false}, {"bridge", false}, {"campsite", false},
}

// curatedActions seeds the action vocabulary; sports actions matter for
// the "Sport-Action Classification" handcrafted rule.
var curatedActions = []struct {
	name  string
	sport bool
}{
	{"drinking beer", false}, {"riding bike", true}, {"making up", false},
	{"falling down", false}, {"reading book", false}, {"playing guitar", false},
	{"cooking", false}, {"taking photo", false}, {"walking dog", false},
	{"phoning", false}, {"writing", false}, {"applauding", false},
	{"playing soccer", true}, {"playing basketball", true},
	{"playing tennis", true}, {"swimming", true}, {"surfing", true},
	{"skiing", true}, {"skateboarding", true}, {"rowing boat", true},
	{"climbing", true}, {"running", true}, {"jumping", true},
	{"riding horse", true}, {"fishing", false}, {"gardening", false},
	{"brushing teeth", false}, {"blowing candles", false},
	{"shaking hands", false}, {"hugging", false},
}

// curatedBreeds seeds the fine-grained dog vocabulary.
var curatedBreeds = []string{
	"akita", "beagle", "border collie", "boxer", "chihuahua", "corgi",
	"dalmatian", "golden retriever", "husky", "labrador", "pomeranian",
	"poodle", "pug", "rottweiler", "samoyed", "shiba inu",
}

// poseKeypoints are the 17 standard body keypoints.
var poseKeypoints = []string{
	"nose", "left eye", "right eye", "left ear", "right ear",
	"left shoulder", "right shoulder", "left elbow", "right elbow",
	"left wrist", "right wrist", "left hip", "right hip", "left knee",
	"right knee", "left ankle", "right ankle",
}

// emotionNames are the 7 basic emotion classes.
var emotionNames = []string{
	"angry", "disgust", "fear", "happy", "sad", "surprise", "neutral",
}

var genderNames = []string{"female", "male"}

// defaultProfit returns the default per-label profit of a task. Keypoint
// tasks emit dozens of labels per detection (a face landmark model emits
// up to 70 keypoints at once), so a flat profit of 1 would let them swamp
// the evaluation function. The defaults normalize each task's typical
// valuable output to the same order of magnitude, which is the explicit
// purpose of the paper's user-assigned profits p_i; callers can override
// any label with SetProfit.
func defaultProfit(t Task) float64 {
	switch t {
	case FaceLandmark:
		return 0.05
	case HandLandmark:
		return 0.08
	case PoseEstimation:
		return 0.2
	case ObjectDetection:
		return 0.6
	default:
		return 1
	}
}

// NewVocabulary constructs the full 1104-label vocabulary. The layout is
// deterministic: labels are numbered task by task in Table I order.
func NewVocabulary() *Vocabulary {
	v := &Vocabulary{byName: make(map[string]int, Total)}
	add := func(task Task, name string, indoor, sport, animal bool) {
		id := len(v.labels)
		v.labels = append(v.labels, Label{
			ID: id, Name: name, Task: task, Profit: defaultProfit(task),
			Indoor: indoor, Sport: sport, Animal: animal,
		})
		if _, dup := v.byName[name]; dup {
			panic(fmt.Sprintf("labels: duplicate label name %q", name))
		}
		v.byName[name] = id
		v.byTask[task] = append(v.byTask[task], id)
	}

	// Object Detection: 80 labels.
	for _, n := range objectNames {
		add(ObjectDetection, "object/"+n, false, false, animalObjects[n])
	}
	// Place Classification: 365 labels (curated prefix + generated tail).
	for _, p := range curatedPlaces {
		add(PlaceClassification, "place/"+p.name, p.indoor, false, false)
	}
	for i := len(curatedPlaces); i < labelCounts[PlaceClassification]; i++ {
		indoor := i%2 == 0
		add(PlaceClassification, fmt.Sprintf("place/scene-%03d", i), indoor, false, false)
	}
	// Face Detection: 1 label.
	add(FaceDetection, "face/face", false, false, false)
	// Face Landmark Localization: 70 keypoints.
	for i := 0; i < labelCounts[FaceLandmark]; i++ {
		add(FaceLandmark, fmt.Sprintf("facekp/point-%02d", i), false, false, false)
	}
	// Pose Estimation: 17 body keypoints.
	for _, n := range poseKeypoints {
		add(PoseEstimation, "pose/"+n, false, false, false)
	}
	// Emotion Classification: 7 labels.
	for _, n := range emotionNames {
		add(EmotionClassification, "emotion/"+n, false, false, false)
	}
	// Gender Classification: 2 labels.
	for _, n := range genderNames {
		add(GenderClassification, "gender/"+n, false, false, false)
	}
	// Action Classification: 400 labels.
	for _, a := range curatedActions {
		add(ActionClassification, "action/"+a.name, false, a.sport, false)
	}
	for i := len(curatedActions); i < labelCounts[ActionClassification]; i++ {
		add(ActionClassification, fmt.Sprintf("action/activity-%03d", i), false, i%5 == 0, false)
	}
	// Hand Landmark Localization: 42 keypoints (21 per hand).
	for i := 0; i < labelCounts[HandLandmark]; i++ {
		add(HandLandmark, fmt.Sprintf("handkp/point-%02d", i), false, false, false)
	}
	// Dog Classification: 120 breeds.
	for _, b := range curatedBreeds {
		add(DogClassification, "dog/"+b, false, false, true)
	}
	for i := len(curatedBreeds); i < labelCounts[DogClassification]; i++ {
		add(DogClassification, fmt.Sprintf("dog/breed-%03d", i), false, false, true)
	}

	if len(v.labels) != Total {
		panic(fmt.Sprintf("labels: vocabulary has %d labels, want %d", len(v.labels), Total))
	}
	return v
}

// Len returns the vocabulary size.
func (v *Vocabulary) Len() int { return len(v.labels) }

// Label returns the label with the given dense ID.
func (v *Vocabulary) Label(id int) Label { return v.labels[id] }

// ByName looks a label up by its unique name.
func (v *Vocabulary) ByName(name string) (Label, bool) {
	id, ok := v.byName[name]
	if !ok {
		return Label{}, false
	}
	return v.labels[id], true
}

// TaskLabels returns the IDs of every label the task supports. The
// returned slice must not be modified.
func (v *Vocabulary) TaskLabels(t Task) []int { return v.byTask[t] }

// SetProfit overrides a label's profit (value to the user).
func (v *Vocabulary) SetProfit(id int, profit float64) { v.labels[id].Profit = profit }

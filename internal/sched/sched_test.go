package sched

import (
	"math"
	"testing"

	"ams/internal/labels"
	"ams/internal/oracle"
	"ams/internal/rules"
	"ams/internal/sim"
	"ams/internal/synth"
	"ams/internal/tensor"
	"ams/internal/zoo"
)

var (
	vocab = labels.NewVocabulary()
	z     = zoo.NewZoo(vocab)
	ds    = synth.NewDataset(vocab, synth.MSCOCO(), 40, 51)
	store = oracle.Build(z, ds.Scenes)
)

// fixedPredictor returns the same value vector regardless of state.
type fixedPredictor struct{ q []float64 }

func (p fixedPredictor) Predict([]int) []float64 { return p.q }

// cheatPredictor returns the true static model values of one scene — a
// stand-in for a perfectly trained agent in policy unit tests.
type cheatPredictor struct{ scene int }

func (p cheatPredictor) Predict([]int) []float64 {
	q := make([]float64, store.NumModels()+1)
	for m := 0; m < store.NumModels(); m++ {
		q[m] = store.ModelValue(p.scene, m)
	}
	return q
}

func TestRandomOrderCoversAllModels(t *testing.T) {
	p := NewRandom(z, tensor.NewRNG(1))
	res := sim.RunToRecall(store, 0, p, 1.0)
	if res.Recall < 1-1e-9 {
		t.Fatalf("random policy never reached full recall: %v", res.Recall)
	}
	seen := map[int]bool{}
	for _, m := range res.Executed {
		if seen[m] {
			t.Fatalf("model %d executed twice", m)
		}
		seen[m] = true
	}
}

func TestOptimalBeatsRandomOnAverage(t *testing.T) {
	rng := tensor.NewRNG(2)
	var randomTime, optimalTime float64
	for i := 0; i < store.NumScenes(); i++ {
		randomTime += sim.RunToRecall(store, i, NewRandom(z, rng), 1.0).TimeMS
		optimalTime += sim.RunToRecall(store, i, NewOptimal(store), 1.0).TimeMS
	}
	if optimalTime >= randomTime {
		t.Fatalf("optimal (%v) not faster than random (%v)", optimalTime, randomTime)
	}
	if optimalTime >= 0.6*randomTime {
		t.Fatalf("optimal (%v) should be well under random (%v)", optimalTime, randomTime)
	}
}

func TestOptimalOrderReachesThreshold(t *testing.T) {
	for i := 0; i < 10; i++ {
		for _, th := range []float64{0.2, 0.5, 0.8, 1.0} {
			res := sim.RunToRecall(store, i, NewOptimal(store), th)
			if res.Recall < th-1e-9 {
				t.Fatalf("scene %d: optimal recall %v below threshold %v", i, res.Recall, th)
			}
		}
	}
}

func TestQGreedyWithCheatMatchesOptimalCount(t *testing.T) {
	// With the true static values as Q, Q-greedy must execute no more
	// models than random needs on average.
	rng := tensor.NewRNG(3)
	var cheatN, randN int
	for i := 0; i < store.NumScenes(); i++ {
		cheatN += len(sim.RunToRecall(store, i, NewQGreedy(cheatPredictor{i}, z), 1.0).Executed)
		randN += len(sim.RunToRecall(store, i, NewRandom(z, rng), 1.0).Executed)
	}
	if cheatN >= randN {
		t.Fatalf("cheating Q-greedy (%d) not better than random (%d)", cheatN, randN)
	}
}

func TestRuleOrderValid(t *testing.T) {
	engine := rules.NewEngine(vocab, z, rules.TableII())
	p := NewRule(engine, z, tensor.NewRNG(5))
	for i := 0; i < 10; i++ {
		res := sim.RunToRecall(store, i, p, 1.0)
		if res.Recall < 1-1e-9 {
			t.Fatalf("rule policy stalled on scene %d", i)
		}
	}
}

func TestRunDeadlineRespectsBudget(t *testing.T) {
	rng := tensor.NewRNG(7)
	for _, deadline := range []float64{100, 500, 1000, 3000} {
		for i := 0; i < 10; i++ {
			for _, p := range []sim.Policy{
				NewRandom(z, rng),
				NewQGreedy(cheatPredictor{i}, z),
				NewCostQGreedy(cheatPredictor{i}, z),
			} {
				res := sim.RunDeadline(store, i, p, deadline)
				if res.TimeMS > deadline+1e-9 {
					t.Fatalf("%s exceeded deadline %v: used %v", p.Name(), deadline, res.TimeMS)
				}
			}
		}
	}
}

func TestCostQGreedyBeatsRandomUnderTightDeadline(t *testing.T) {
	rng := tensor.NewRNG(9)
	const deadline = 500 // ms, the paper's headline budget
	var costQ, random float64
	for i := 0; i < store.NumScenes(); i++ {
		costQ += sim.RunDeadline(store, i, NewCostQGreedy(cheatPredictor{i}, z), deadline).Recall
		random += sim.RunDeadline(store, i, NewRandom(z, rng), deadline).Recall
	}
	if costQ <= random {
		t.Fatalf("cost-Q (%v) not better than random (%v) at 0.5 s", costQ, random)
	}
}

func TestCostQGreedyPrefersDenseModel(t *testing.T) {
	// With Q values {m0: 1.0 over 90ms (objdet-fast), m1: 2.0 over 380ms},
	// density picks m0 first.
	q := make([]float64, store.NumModels()+1)
	q[0] = 1.0 // objdet-fast, 90 ms
	q[1] = 2.0 // objdet-accurate, 380 ms
	p := NewCostQGreedy(fixedPredictor{q}, z)
	tr := oracle.NewTracker(store, 0)
	if got := p.Next(tr, sim.Constraints{RemainingMS: 5000}); got != 0 {
		t.Fatalf("cost-Q picked %d, want the denser model 0", got)
	}
	// Plain Q-greedy picks the bigger Q.
	g := NewQGreedy(fixedPredictor{q}, z)
	if got := g.Next(tr, sim.Constraints{RemainingMS: 5000}); got != 1 {
		t.Fatalf("Q-greedy picked %d, want 1", got)
	}
}

func TestCostQGreedyFallbackWhenAllNegative(t *testing.T) {
	q := make([]float64, store.NumModels()+1)
	for i := range q {
		q[i] = -1
	}
	q[4] = -0.1 // least bad
	p := NewCostQGreedy(fixedPredictor{q}, z)
	tr := oracle.NewTracker(store, 0)
	if got := p.Next(tr, sim.Constraints{RemainingMS: 5000}); got != 4 {
		t.Fatalf("fallback picked %d, want 4", got)
	}
}

func TestOptimalStarDeadlineBounds(t *testing.T) {
	for i := 0; i < store.NumScenes(); i++ {
		prev := 0.0
		for _, d := range []float64{100, 250, 500, 1000, 2000, 4000, 6000} {
			r := OptimalStarDeadline(store, i, d)
			if r < prev-1e-9 {
				t.Fatalf("optimal* not monotone in deadline on scene %d", i)
			}
			if r < 0 || r > 1 {
				t.Fatalf("optimal* out of range: %v", r)
			}
			prev = r
			// Reference bound: a feasible serial policy may beat the greedy
			// relaxation only by a sliver (submodular marginals).
			feas := sim.RunDeadline(store, i, NewCostQGreedy(cheatPredictor{i}, z), d)
			if feas.Recall > r+0.05 {
				t.Fatalf("scene %d deadline %v: feasible %v beats optimal* %v",
					i, d, feas.Recall, r)
			}
		}
		// With the full no-policy budget, optimal* recalls everything.
		if r := OptimalStarDeadline(store, i, z.TotalTimeMS()); r < 1-1e-9 {
			t.Fatalf("scene %d: optimal* at full budget = %v", i, r)
		}
	}
}

func TestOptimalStarMemoryBoundsParallel(t *testing.T) {
	for i := 0; i < 15; i++ {
		for _, mem := range []float64{8000, 12000, 16000} {
			for _, d := range []float64{400, 800, 1600} {
				bound := OptimalStarMemory(store, i, d, mem)
				got := sim.RunParallel(store, i, NewMemoryPacker(cheatPredictor{i}, z), d, mem)
				if got.Recall > bound+0.05 {
					t.Fatalf("scene %d d=%v mem=%v: packer %v beats optimal* %v",
						i, d, mem, got.Recall, bound)
				}
			}
		}
	}
}

func TestParallelRespectsBudgets(t *testing.T) {
	rng := tensor.NewRNG(11)
	for i := 0; i < 15; i++ {
		for _, mem := range []float64{8000, 12000} {
			for _, d := range []float64{400, 800} {
				for _, sel := range []sim.Policy{
					NewMemoryPacker(cheatPredictor{i}, z),
					NewRandomPacker(z, rng),
				} {
					res := sim.RunParallel(store, i, sel, d, mem)
					if res.MakespanMS > d+1e-9 {
						t.Fatalf("%s makespan %v exceeds deadline %v", sel.Name(), res.MakespanMS, d)
					}
					if res.PeakMemMB > mem+1e-9 {
						t.Fatalf("%s peak memory %v exceeds %v", sel.Name(), res.PeakMemMB, mem)
					}
				}
			}
		}
	}
}

func TestParallelPackerBeatsRandomTight(t *testing.T) {
	rng := tensor.NewRNG(13)
	var agent, random float64
	const d, mem = 800, 8000
	for i := 0; i < store.NumScenes(); i++ {
		agent += sim.RunParallel(store, i, NewMemoryPacker(cheatPredictor{i}, z), d, mem).Recall
		random += sim.RunParallel(store, i, NewRandomPacker(z, rng), d, mem).Recall
	}
	if agent <= random {
		t.Fatalf("memory packer (%v) not better than random (%v)", agent, random)
	}
}

func TestParallelRunsModelsConcurrently(t *testing.T) {
	// With a generous memory budget the makespan must be well below the
	// serial sum for at least one scene.
	concurrent := false
	for i := 0; i < 10; i++ {
		res := sim.RunParallel(store, i, NewRandomPacker(z, tensor.NewRNG(17)), 3000, 16000)
		var serial float64
		for _, m := range res.Executed {
			serial += z.Models[m].TimeMS
		}
		if len(res.Executed) >= 4 && res.MakespanMS < 0.8*serial {
			concurrent = true
		}
	}
	if !concurrent {
		t.Fatal("parallel executor never overlapped executions")
	}
}

func TestExploreExploitOnChunkedStream(t *testing.T) {
	chunked := ds.Chunked(vocab, 10, 99)
	cst := oracle.Build(z, chunked.Scenes)
	results := RunExploreExploit(cst, ExploreExploitConfig{ChunkLen: 10, ExploreN: 1})
	if len(results) != cst.NumScenes() {
		t.Fatalf("got %d results", len(results))
	}
	var total, full float64
	var recall float64
	for _, r := range results {
		total += r.TimeMS
		full += z.TotalTimeMS()
		recall += r.Recall
	}
	if total >= 0.7*full {
		t.Fatalf("explore-exploit saved too little: %v vs %v", total, full)
	}
	avgRecall := recall / float64(len(results))
	if avgRecall < 0.85 {
		t.Fatalf("explore-exploit average recall %v too low", avgRecall)
	}
}

func TestExploreExploitConfigValidation(t *testing.T) {
	for _, cfg := range []ExploreExploitConfig{
		{ChunkLen: 0, ExploreN: 1},
		{ChunkLen: 5, ExploreN: 0},
		{ChunkLen: 5, ExploreN: 6},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v did not panic", cfg)
				}
			}()
			RunExploreExploit(store, cfg)
		}()
	}
}

func TestRunToRecallThresholdValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid threshold did not panic")
		}
	}()
	sim.RunToRecall(store, 0, NewRandom(z, tensor.NewRNG(1)), 1.5)
}

func TestSerialResultTimeMatchesModels(t *testing.T) {
	res := sim.RunToRecall(store, 2, NewOptimal(store), 1.0)
	var want float64
	for _, m := range res.Executed {
		want += z.Models[m].TimeMS
	}
	if math.Abs(res.TimeMS-want) > 1e-9 {
		t.Fatalf("result time %v != summed model time %v", res.TimeMS, want)
	}
}

// --- Unified-contract tests ----------------------------------------------

// TestPoliciesSkipModelsOverMemoryCap: under a memory constraint every
// policy must skip models that do not fit the available headroom and
// keep scheduling the ones that do — the contract that lets the real
// server feed live availability into Next.
func TestPoliciesSkipModelsOverMemoryCap(t *testing.T) {
	const capMB = 1000 // excludes several heavyweight models
	var fits, excluded []int
	for m := range z.Models {
		if z.Models[m].MemMB <= capMB {
			fits = append(fits, m)
		} else {
			excluded = append(excluded, m)
		}
	}
	if len(excluded) == 0 {
		t.Fatal("test needs at least one model over the cap")
	}
	rng := tensor.NewRNG(19)
	for _, p := range []sim.Policy{
		NewRandom(z, rng),
		NewOptimal(store),
		NewQGreedy(cheatPredictor{0}, z),
		NewCostQGreedy(cheatPredictor{0}, z),
		NewMemoryPacker(cheatPredictor{0}, z),
	} {
		p.Reset(0)
		tr := oracle.NewTracker(store, 0)
		c := sim.Constraints{RemainingMS: z.TotalTimeMS(), AvailMemMB: capMB}
		var executed int
		for {
			m := p.Next(tr, c)
			if m < 0 {
				break
			}
			if z.Models[m].MemMB > capMB+1e-9 {
				t.Fatalf("%s selected model %d (%v MB) over the %v MB cap",
					p.Name(), m, z.Models[m].MemMB, capMB)
			}
			tr.Execute(m)
			p.Observe(m, store.Output(0, m))
			executed++
		}
		// The schedule continued past the excluded models: every model
		// under the cap with any scheduling appeal ran. For the
		// exhaustive policies that is all of them.
		if executed == 0 {
			t.Fatalf("%s scheduled nothing under a feasible cap", p.Name())
		}
		if p.Name() == "Random" || p.Name() == "Optimal" {
			if executed != len(fits) {
				t.Fatalf("%s ran %d models under the cap, want all %d fitting ones",
					p.Name(), executed, len(fits))
			}
		}
		for _, m := range excluded {
			if tr.Executed(m) {
				t.Fatalf("%s executed over-cap model %d", p.Name(), m)
			}
		}
	}
}

// refCostQGreedy reimplements the pre-refactor Algorithm 1 (deadline
// only, no memory dimension) as a reference for the bit-identity test.
func refCostQGreedy(pred Predictor, tr *oracle.Tracker, remainingMS float64) int {
	q := pred.Predict(tr.State())
	bestRatio, bestRatioM := 0.0, -1
	bestQ, bestQM := 0.0, -1
	for _, m := range tr.Unexecuted() {
		mt := z.Models[m].TimeMS
		if mt > remainingMS {
			continue
		}
		if q[m] > 0 {
			if ratio := q[m] / mt; bestRatioM < 0 || ratio > bestRatio {
				bestRatio, bestRatioM = ratio, m
			}
		}
		if bestQM < 0 || q[m] > bestQ {
			bestQ, bestQM = q[m], m
		}
	}
	if bestRatioM >= 0 {
		return bestRatioM
	}
	return bestQM
}

// refRandomDeadline reimplements the pre-refactor random deadline
// baseline (one Intn draw over the feasible set per step).
func refRandomDeadline(rng *tensor.RNG, tr *oracle.Tracker, remainingMS float64) int {
	var feasible []int
	for _, m := range tr.Unexecuted() {
		if z.Models[m].TimeMS <= remainingMS {
			feasible = append(feasible, m)
		}
	}
	if len(feasible) == 0 {
		return -1
	}
	return feasible[rng.Intn(len(feasible))]
}

// refRun drives a pre-refactor reference step function through the old
// serial deadline loop.
func refRun(scene int, deadlineMS float64, step func(*oracle.Tracker, float64) int) []int {
	tr := oracle.NewTracker(store, scene)
	remaining := deadlineMS
	var executed []int
	for tr.ExecutedCount() < store.NumModels() {
		m := step(tr, remaining)
		if m < 0 {
			break
		}
		tr.Execute(m)
		executed = append(executed, m)
		remaining -= z.Models[m].TimeMS
	}
	return executed
}

// TestDeadlineBehaviorBitIdenticalToPreRefactor: with no memory
// dimension in play, the unified policies must reproduce the schedules
// of the deleted deadline-specific implementations exactly, on a fixed
// seed, across every scene and several budgets.
func TestDeadlineBehaviorBitIdenticalToPreRefactor(t *testing.T) {
	for _, deadline := range []float64{100, 500, 1000, 3000} {
		for i := 0; i < store.NumScenes(); i++ {
			got := sim.RunDeadline(store, i, NewCostQGreedy(cheatPredictor{i}, z), deadline)
			want := refRun(i, deadline, func(tr *oracle.Tracker, rem float64) int {
				return refCostQGreedy(cheatPredictor{i}, tr, rem)
			})
			if len(got.Executed) != len(want) {
				t.Fatalf("scene %d deadline %v: cost-Q %v, reference %v", i, deadline, got.Executed, want)
			}
			for j := range want {
				if got.Executed[j] != want[j] {
					t.Fatalf("scene %d deadline %v: cost-Q diverges at %d: %v vs %v",
						i, deadline, j, got.Executed, want)
				}
			}
		}
	}
	// The random baseline consumes its RNG stream identically too.
	const seed = 12345
	newRNG, refRNG := tensor.NewRNG(seed), tensor.NewRNG(seed)
	p := NewRandom(z, newRNG)
	for i := 0; i < store.NumScenes(); i++ {
		got := sim.RunDeadline(store, i, p, 700)
		want := refRun(i, 700, func(tr *oracle.Tracker, rem float64) int {
			return refRandomDeadline(refRNG, tr, rem)
		})
		if len(got.Executed) != len(want) {
			t.Fatalf("scene %d: random %v, reference %v", i, got.Executed, want)
		}
		for j := range want {
			if got.Executed[j] != want[j] {
				t.Fatalf("scene %d: random diverges at %d: %v vs %v", i, j, got.Executed, want)
			}
		}
	}
}

// TestMemoryPackerSerialUnderDeadline: Algorithm 2 also runs under the
// plain serial executors now that the contract is unified.
func TestMemoryPackerSerialUnderDeadline(t *testing.T) {
	for i := 0; i < 10; i++ {
		res := sim.RunDeadline(store, i, NewMemoryPacker(cheatPredictor{i}, z), 800)
		if res.TimeMS > 800+1e-9 {
			t.Fatalf("scene %d: packer exceeded the serial deadline: %v", i, res.TimeMS)
		}
	}
}

// Package sched implements the scheduling policies of the paper: the
// random and optimal baselines, the plain Q-greedy policy, the
// handcrafted-rule policy (§VI-C), Algorithm 1 (cost-Q greedy under a
// deadline), Algorithm 2 (deadline+memory batch packing), the relaxed
// optimal* upper bounds of §V-C, and the explore–exploit policy for
// chunked (video-like) streams sketched in the paper's introduction.
//
// Every policy implements the single sim.Policy contract: Next receives
// the labeling state plus the sim.Constraints in force (remaining time,
// available memory) and returns one model, so the same implementation
// runs under the unconstrained, deadline, and parallel executors alike.
package sched

import (
	"ams/internal/oracle"
	"ams/internal/rules"
	"ams/internal/sim"
	"ams/internal/tensor"
	"ams/internal/zoo"
)

// Predictor estimates per-model values from the sparse labeling state.
// The DRL agent is the canonical implementation; Predict must return at
// least NumModels entries (entries beyond the model count — e.g. the END
// action — are ignored by policies).
type Predictor interface {
	Predict(state []int) []float64
}

// flight tracks the models a policy has returned whose completion has
// not been observed yet. The parallel executor launches selections
// immediately and reports completions later, so every policy keeps this
// set to honor the contract's never-return-twice rule; under the serial
// executors it is always empty.
type flight struct{ m map[int]bool }

func (f *flight) reset()         { f.m = nil }
func (f *flight) has(m int) bool { return f.m[m] }
func (f *flight) count() int     { return len(f.m) }
func (f *flight) mark(m int) {
	if f.m == nil {
		f.m = make(map[int]bool)
	}
	f.m[m] = true
}
func (f *flight) done(m int) { delete(f.m, m) }

// --- Baseline and serial policies ---------------------------------------

// Random executes a uniformly random feasible model — the paper's
// "random policy", constraint-aware: only unexecuted models that fit the
// remaining time and available memory are drawn.
type Random struct {
	z   *zoo.Zoo
	rng *tensor.RNG
	fly flight
}

// NewRandom returns a random policy with its own RNG stream.
func NewRandom(z *zoo.Zoo, rng *tensor.RNG) *Random { return &Random{z: z, rng: rng} }

// Name implements sim.Policy.
func (p *Random) Name() string { return "Random" }

// Reset implements sim.Policy.
func (p *Random) Reset(int) { p.fly.reset() }

// Next implements sim.Policy.
func (p *Random) Next(t *oracle.Tracker, c sim.Constraints) int {
	var feasible []int
	for _, m := range t.Unexecuted() {
		if p.fly.has(m) || !c.Allows(p.z.Models[m]) {
			continue
		}
		feasible = append(feasible, m)
	}
	if len(feasible) == 0 {
		return -1
	}
	m := feasible[p.rng.Intn(len(feasible))]
	p.fly.mark(m)
	return m
}

// Observe implements sim.Policy.
func (p *Random) Observe(m int, _ zoo.Output) { p.fly.done(m) }

// Optimal executes models in descending order of their true output
// value — the paper's "optimal policy", which needs ground truth.
type Optimal struct {
	st    *oracle.Store
	order []int
	fly   flight
}

// NewOptimal returns the optimal policy over the store.
func NewOptimal(st *oracle.Store) *Optimal { return &Optimal{st: st} }

// Name implements sim.Policy.
func (p *Optimal) Name() string { return "Optimal" }

// Reset implements sim.Policy.
func (p *Optimal) Reset(scene int) {
	p.order = p.st.OptimalOrder(scene)
	p.fly.reset()
}

// Next implements sim.Policy.
func (p *Optimal) Next(t *oracle.Tracker, c sim.Constraints) int {
	for _, m := range p.order {
		if t.Executed(m) || p.fly.has(m) || !c.Allows(p.st.Zoo.Models[m]) {
			continue
		}
		p.fly.mark(m)
		return m
	}
	return -1
}

// Observe implements sim.Policy.
func (p *Optimal) Observe(m int, _ zoo.Output) { p.fly.done(m) }

// QGreedy executes the feasible model with the maximal predicted Q
// value — the paper's "Q-value greedy policy" ("Q Greedy" in Fig. 10
// when a deadline is in force).
type QGreedy struct {
	pred Predictor
	z    *zoo.Zoo
	fly  flight
}

// NewQGreedy returns a Q-greedy policy over the zoo's models.
func NewQGreedy(pred Predictor, z *zoo.Zoo) *QGreedy {
	return &QGreedy{pred: pred, z: z}
}

// Name implements sim.Policy.
func (p *QGreedy) Name() string { return "Q-Greedy" }

// Reset implements sim.Policy.
func (p *QGreedy) Reset(int) {
	p.fly.reset()
	invalidatePrediction(p.pred)
}

// Next implements sim.Policy.
func (p *QGreedy) Next(t *oracle.Tracker, c sim.Constraints) int {
	q := p.pred.Predict(t.State())
	best, bestQ := -1, 0.0
	for _, m := range t.Unexecuted() {
		if p.fly.has(m) || !c.Allows(p.z.Models[m]) {
			continue
		}
		if best < 0 || q[m] > bestQ {
			best, bestQ = m, q[m]
		}
	}
	if best >= 0 {
		p.fly.mark(best)
	}
	return best
}

// Observe implements sim.Policy.
func (p *QGreedy) Observe(m int, _ zoo.Output) { p.fly.done(m) }

// Rule is the handcrafted-rule policy. Models start with equal
// weights; fired rules multiply their targets' weights. Selection takes a
// uniformly random model among those with the current maximum weight, so
// with no evidence the policy is the random baseline, and once a rule
// fires its promoted models run immediately — without that sharpening the
// trigger cascade (detector → pose → action) fires too late in a
// 30-model pool to move the schedule at all.
type Rule struct {
	engine *rules.Engine
	z      *zoo.Zoo
	rng    *tensor.RNG
	fly    flight
}

// NewRule returns the rule-based policy.
func NewRule(engine *rules.Engine, z *zoo.Zoo, rng *tensor.RNG) *Rule {
	return &Rule{engine: engine, z: z, rng: rng}
}

// Name implements sim.Policy.
func (p *Rule) Name() string { return "Rule" }

// Reset implements sim.Policy.
func (p *Rule) Reset(int) {
	p.engine.Reset()
	p.fly.reset()
}

// Next implements sim.Policy.
func (p *Rule) Next(t *oracle.Tracker, c sim.Constraints) int {
	var feasible []int
	for _, m := range t.Unexecuted() {
		if p.fly.has(m) || !c.Allows(p.z.Models[m]) {
			continue
		}
		feasible = append(feasible, m)
	}
	if len(feasible) == 0 {
		return -1
	}
	const eps = 1e-9
	best := 0.0
	for _, m := range feasible {
		if w := p.engine.Weight(m); w > best {
			best = w
		}
	}
	var top []int
	for _, m := range feasible {
		if p.engine.Weight(m) >= best-eps {
			top = append(top, m)
		}
	}
	m := top[p.rng.Intn(len(top))]
	p.fly.mark(m)
	return m
}

// Observe implements sim.Policy.
func (p *Rule) Observe(m int, out zoo.Output) {
	p.fly.done(m)
	p.engine.ObserveOutput(p.z.Models[m], out.Labels)
}

// Package sched implements the scheduling policies of the paper: the
// random and optimal baselines, the plain Q-greedy policy, the
// handcrafted-rule policy (§VI-C), Algorithm 1 (cost-Q greedy under a
// deadline), Algorithm 2 (deadline+memory batch packing), the relaxed
// optimal* upper bounds of §V-C, and the explore–exploit policy for
// chunked (video-like) streams sketched in the paper's introduction.
package sched

import (
	"ams/internal/oracle"
	"ams/internal/rules"
	"ams/internal/tensor"
	"ams/internal/zoo"
)

// Predictor estimates per-model values from the sparse labeling state.
// The DRL agent is the canonical implementation; Predict must return at
// least NumModels entries (entries beyond the model count — e.g. the END
// action — are ignored by policies).
type Predictor interface {
	Predict(state []int) []float64
}

// --- Unconstrained serial policies (recall-threshold experiments) -------

// RandomOrder executes unexecuted models uniformly at random — the
// paper's "random policy".
type RandomOrder struct{ rng *tensor.RNG }

// NewRandomOrder returns a random policy with its own RNG stream.
func NewRandomOrder(rng *tensor.RNG) *RandomOrder { return &RandomOrder{rng: rng} }

// Name implements sim.OrderPolicy.
func (p *RandomOrder) Name() string { return "Random" }

// Reset implements sim.OrderPolicy.
func (p *RandomOrder) Reset(int) {}

// Next implements sim.OrderPolicy.
func (p *RandomOrder) Next(t *oracle.Tracker) int {
	un := t.Unexecuted()
	if len(un) == 0 {
		return -1
	}
	return un[p.rng.Intn(len(un))]
}

// Observe implements sim.OrderPolicy.
func (p *RandomOrder) Observe(int, zoo.Output) {}

// OptimalOrder executes models in descending order of their true output
// value — the paper's "optimal policy", which needs ground truth.
type OptimalOrder struct {
	st    *oracle.Store
	order []int
	pos   int
}

// NewOptimalOrder returns the optimal policy over the store.
func NewOptimalOrder(st *oracle.Store) *OptimalOrder { return &OptimalOrder{st: st} }

// Name implements sim.OrderPolicy.
func (p *OptimalOrder) Name() string { return "Optimal" }

// Reset implements sim.OrderPolicy.
func (p *OptimalOrder) Reset(scene int) {
	p.order = p.st.OptimalOrder(scene)
	p.pos = 0
}

// Next implements sim.OrderPolicy.
func (p *OptimalOrder) Next(t *oracle.Tracker) int {
	for p.pos < len(p.order) {
		m := p.order[p.pos]
		p.pos++
		if !t.Executed(m) {
			return m
		}
	}
	return -1
}

// Observe implements sim.OrderPolicy.
func (p *OptimalOrder) Observe(int, zoo.Output) {}

// QGreedyOrder executes the unexecuted model with the maximal predicted
// Q value — the paper's "Q-value greedy policy".
type QGreedyOrder struct {
	pred      Predictor
	numModels int
}

// NewQGreedyOrder returns a Q-greedy policy over numModels models.
func NewQGreedyOrder(pred Predictor, numModels int) *QGreedyOrder {
	return &QGreedyOrder{pred: pred, numModels: numModels}
}

// Name implements sim.OrderPolicy.
func (p *QGreedyOrder) Name() string { return "Q-Greedy" }

// Reset implements sim.OrderPolicy.
func (p *QGreedyOrder) Reset(int) {}

// Next implements sim.OrderPolicy.
func (p *QGreedyOrder) Next(t *oracle.Tracker) int {
	q := p.pred.Predict(t.State())
	best, bestQ := -1, 0.0
	for m := 0; m < p.numModels; m++ {
		if t.Executed(m) {
			continue
		}
		if best < 0 || q[m] > bestQ {
			best, bestQ = m, q[m]
		}
	}
	return best
}

// Observe implements sim.OrderPolicy.
func (p *QGreedyOrder) Observe(int, zoo.Output) {}

// RuleOrder is the handcrafted-rule policy. Models start with equal
// weights; fired rules multiply their targets' weights. Selection takes a
// uniformly random model among those with the current maximum weight, so
// with no evidence the policy is the random baseline, and once a rule
// fires its promoted models run immediately — without that sharpening the
// trigger cascade (detector → pose → action) fires too late in a
// 30-model pool to move the schedule at all.
type RuleOrder struct {
	engine *rules.Engine
	z      *zoo.Zoo
	rng    *tensor.RNG
}

// NewRuleOrder returns the rule-based policy.
func NewRuleOrder(engine *rules.Engine, z *zoo.Zoo, rng *tensor.RNG) *RuleOrder {
	return &RuleOrder{engine: engine, z: z, rng: rng}
}

// Name implements sim.OrderPolicy.
func (p *RuleOrder) Name() string { return "Rule" }

// Reset implements sim.OrderPolicy.
func (p *RuleOrder) Reset(int) { p.engine.Reset() }

// Next implements sim.OrderPolicy.
func (p *RuleOrder) Next(t *oracle.Tracker) int {
	un := t.Unexecuted()
	if len(un) == 0 {
		return -1
	}
	const eps = 1e-9
	best := 0.0
	for _, m := range un {
		if w := p.engine.Weight(m); w > best {
			best = w
		}
	}
	var top []int
	for _, m := range un {
		if p.engine.Weight(m) >= best-eps {
			top = append(top, m)
		}
	}
	return top[p.rng.Intn(len(top))]
}

// Observe implements sim.OrderPolicy.
func (p *RuleOrder) Observe(m int, out zoo.Output) {
	p.engine.ObserveOutput(p.z.Models[m], out.Labels)
}

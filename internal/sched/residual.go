package sched

import (
	"ams/internal/oracle"
)

// Residual value: the serving layer's ground-truth-free quality proxy
// (the ROADMAP's first half of the quality signal) asks each
// predictor-backed policy what value it believes is still unharvested
// for an item — the best positive Q among the unexecuted models at the
// item's final state. A committed schedule with near-zero residual
// exhausted the value the agent could see; a large residual means the
// deadline or the memory budget left predicted value on the table.
//
// ResidualValue only reads a prediction. Predictions are deterministic
// in the agent's weights, and the caching layers memoize values without
// changing them, so calling this after a schedule cannot perturb any
// future scheduling decision — the serve layer's bit-identity guarantee
// is preserved.
func residualFromQ(pred Predictor, t *oracle.Tracker) float64 {
	q := pred.Predict(t.State())
	best := 0.0
	for _, m := range t.Unexecuted() {
		if m < len(q) && q[m] > best {
			best = q[m]
		}
	}
	return best
}

// ResidualValue implements the serve layer's residualValuer contract.
func (p *CostQGreedy) ResidualValue(t *oracle.Tracker) float64 {
	return residualFromQ(p.pred, t)
}

// ResidualValue implements the serve layer's residualValuer contract.
func (p *MemoryPacker) ResidualValue(t *oracle.Tracker) float64 {
	return residualFromQ(p.pred, t)
}

// ResidualValue implements the serve layer's residualValuer contract.
func (p *QGreedy) ResidualValue(t *oracle.Tracker) float64 {
	return residualFromQ(p.pred, t)
}

package sched

import (
	"ams/internal/oracle"
	"ams/internal/sim"
)

// ExploreExploitConfig tunes the chunked-stream policy sketched in the
// paper's introduction: for data partitioned into correlated chunks
// (e.g. video segments), explore almost all models at the head of each
// chunk, then exploit the discovered valuable subset for the remainder.
type ExploreExploitConfig struct {
	ChunkLen int // items per correlated chunk
	ExploreN int // items fully explored at the head of each chunk
}

// RunExploreExploit runs the explore–exploit policy over a chunked scene
// stream, returning one result per image. During exploration every model
// runs; the union of models that produced valuable output becomes the
// exploitation subset for the rest of the chunk.
func RunExploreExploit(st *oracle.Store, cfg ExploreExploitConfig) []sim.SerialResult {
	if cfg.ChunkLen <= 0 {
		panic("sched: explore-exploit chunk length must be positive")
	}
	if cfg.ExploreN <= 0 || cfg.ExploreN > cfg.ChunkLen {
		panic("sched: explore count must be in [1, chunk length]")
	}
	results := make([]sim.SerialResult, 0, st.NumScenes())
	var subset []int
	for i := 0; i < st.NumScenes(); i++ {
		pos := i % cfg.ChunkLen
		if pos == 0 {
			subset = nil
		}
		t := oracle.NewTracker(st, i)
		var res sim.SerialResult
		if pos < cfg.ExploreN {
			// Explore: run everything, remember who was valuable.
			valuable := map[int]bool{}
			for _, m := range subset {
				valuable[m] = true
			}
			for m := 0; m < st.NumModels(); m++ {
				t.Execute(m)
				res.Executed = append(res.Executed, m)
				res.TimeMS += st.Zoo.Models[m].TimeMS
				if st.ModelValue(i, m) > 0 {
					valuable[m] = true
				}
			}
			subset = subset[:0]
			for m := 0; m < st.NumModels(); m++ {
				if valuable[m] {
					subset = append(subset, m)
				}
			}
		} else {
			// Exploit the discovered subset.
			for _, m := range subset {
				t.Execute(m)
				res.Executed = append(res.Executed, m)
				res.TimeMS += st.Zoo.Models[m].TimeMS
			}
		}
		res.Recall = t.Recall()
		results = append(results, res)
	}
	return results
}

package sched

import (
	"testing"
)

// countingPredictor counts forward passes and returns a state-dependent
// vector, reusing one backing slice like the real agent does.
type countingPredictor struct {
	calls int
	buf   []float64
}

func (p *countingPredictor) Predict(state []int) []float64 {
	p.calls++
	if p.buf == nil {
		p.buf = make([]float64, 4)
	}
	for i := range p.buf {
		p.buf[i] = float64(len(state)*10 + i)
	}
	return p.buf
}

func TestCachedPredictorMemoizesPerState(t *testing.T) {
	raw := &countingPredictor{}
	c := NewCachedPredictor(raw)

	a := c.Predict([]int{1, 5, 9})
	b := c.Predict([]int{1, 5, 9})
	if raw.calls != 1 {
		t.Fatalf("repeated ask on an unchanged state ran %d forward passes, want 1", raw.calls)
	}
	if &a[0] != &b[0] {
		t.Fatalf("cache returned different slices for the same state")
	}
	for i := range a {
		if a[i] != float64(3*10+i) {
			t.Fatalf("cached value %v at %d, want %v", a[i], i, float64(3*10+i))
		}
	}

	// A different state is a miss — and must not clobber the first
	// entry's values (the raw predictor reuses its buffer; the cache
	// must have copied).
	d := c.Predict([]int{1, 5})
	if raw.calls != 2 {
		t.Fatalf("distinct state ran %d forward passes, want 2", raw.calls)
	}
	if d[0] != 20 || a[0] != 30 {
		t.Fatalf("cache aliased the predictor's buffer: first %v, second %v", a[0], d[0])
	}

	// Invalidate drops the memo: the same state recomputes.
	c.Invalidate()
	c.Predict([]int{1, 5, 9})
	if raw.calls != 3 {
		t.Fatalf("post-invalidate ask ran %d forward passes, want 3", raw.calls)
	}
}

// TestPoliciesInvalidateCacheOnReset: a predictor-driven policy wired
// with a CachedPredictor must clear the memo at Reset, so per-item
// memoization never leaks across items (the network may be retrained
// between them).
func TestPoliciesInvalidateCacheOnReset(t *testing.T) {
	raw := &countingPredictor{}
	c := NewCachedPredictor(raw)
	p := NewCostQGreedy(c, store.Zoo)

	p.Reset(0)
	c.Predict(nil)
	c.Predict(nil)
	if raw.calls != 1 {
		t.Fatalf("memo inactive: %d calls", raw.calls)
	}
	p.Reset(1)
	c.Predict(nil)
	if raw.calls != 2 {
		t.Fatalf("Reset did not invalidate the memo: %d calls, want 2", raw.calls)
	}
}

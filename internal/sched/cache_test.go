package sched

import (
	"testing"
)

// countingPredictor counts forward passes and returns a state-dependent
// vector, reusing one backing slice like the real agent does.
type countingPredictor struct {
	calls int
	buf   []float64
}

func (p *countingPredictor) Predict(state []int) []float64 {
	p.calls++
	if p.buf == nil {
		p.buf = make([]float64, 4)
	}
	for i := range p.buf {
		p.buf[i] = float64(len(state)*10 + i)
	}
	return p.buf
}

func TestCachedPredictorMemoizesPerState(t *testing.T) {
	raw := &countingPredictor{}
	c := NewCachedPredictor(raw)

	a := c.Predict([]int{1, 5, 9})
	b := c.Predict([]int{1, 5, 9})
	if raw.calls != 1 {
		t.Fatalf("repeated ask on an unchanged state ran %d forward passes, want 1", raw.calls)
	}
	if &a[0] != &b[0] {
		t.Fatalf("cache returned different slices for the same state")
	}
	for i := range a {
		if a[i] != float64(3*10+i) {
			t.Fatalf("cached value %v at %d, want %v", a[i], i, float64(3*10+i))
		}
	}

	// A different state is a miss — and must not clobber the first
	// entry's values (the raw predictor reuses its buffer; the cache
	// must have copied).
	d := c.Predict([]int{1, 5})
	if raw.calls != 2 {
		t.Fatalf("distinct state ran %d forward passes, want 2", raw.calls)
	}
	if d[0] != 20 || a[0] != 30 {
		t.Fatalf("cache aliased the predictor's buffer: first %v, second %v", a[0], d[0])
	}

	// Invalidate drops the memo: the same state recomputes.
	c.Invalidate()
	c.Predict([]int{1, 5, 9})
	if raw.calls != 3 {
		t.Fatalf("post-invalidate ask ran %d forward passes, want 3", raw.calls)
	}
}

// TestPoliciesInvalidateCacheOnReset: a predictor-driven policy wired
// with a CachedPredictor must clear the memo at Reset, so per-item
// memoization never leaks across items (the network may be retrained
// between them).
func TestPoliciesInvalidateCacheOnReset(t *testing.T) {
	raw := &countingPredictor{}
	c := NewCachedPredictor(raw)
	p := NewCostQGreedy(c, store.Zoo)

	p.Reset(0)
	c.Predict(nil)
	c.Predict(nil)
	if raw.calls != 1 {
		t.Fatalf("memo inactive: %d calls", raw.calls)
	}
	p.Reset(1)
	c.Predict(nil)
	if raw.calls != 2 {
		t.Fatalf("Reset did not invalidate the memo: %d calls, want 2", raw.calls)
	}
}

// echoPredictor returns a vector derived from the state's contents (not
// just its length), so colliding cache keys surface as wrong values.
type echoPredictor struct{ calls int }

func (p *echoPredictor) Predict(state []int) []float64 {
	p.calls++
	var sum float64
	for _, id := range state {
		sum += float64(id)
	}
	return []float64{sum}
}

// TestCacheKeysDistinguishHighLabelIDs is the regression test for the
// key encoding: the old fixed two-byte encoding truncated label IDs to
// 16 bits, so the states {65536} and {0} collided and the second ask
// silently returned the first state's Q-values.
func TestCacheKeysDistinguishHighLabelIDs(t *testing.T) {
	raw := &echoPredictor{}
	c := NewCachedPredictor(raw)
	high := c.Predict([]int{65536})
	low := c.Predict([]int{0})
	if raw.calls != 2 {
		t.Fatalf("states {65536} and {0} shared a cache key: %d forward passes, want 2", raw.calls)
	}
	if high[0] != 65536 || low[0] != 0 {
		t.Fatalf("colliding keys served wrong Q-values: got %v and %v", high[0], low[0])
	}
	// Multi-ID states stay unambiguous too (uvarints are self-delimiting;
	// echoPredictor sums IDs, so compare forward-pass counts, not values).
	c.Predict([]int{1, 65537})
	c.Predict([]int{65538})
	if raw.calls != 4 {
		t.Fatalf("a multi-ID state collided with a single-ID state: %d forward passes, want 4", raw.calls)
	}
}

// TestSharedCacheSpansPredictors: a state computed by one worker's
// predictor is a hit for every other predictor wired to the same shared
// cache — the cross-item, cross-worker promotion of the memo.
func TestSharedCacheSpansPredictors(t *testing.T) {
	shared := NewSharedCache(0)
	raw1, raw2 := &countingPredictor{}, &countingPredictor{}
	c1 := NewSharedCachedPredictor(raw1, shared)
	c2 := NewSharedCachedPredictor(raw2, shared)

	state := []int{2, 7}
	c1.Predict(state)
	if got := c2.Predict(state); got[0] != float64(2*10) {
		t.Fatalf("shared hit returned %v", got[0])
	}
	if raw2.calls != 0 {
		t.Fatalf("second predictor ran %d forward passes for a shared state, want 0", raw2.calls)
	}
	// Private invalidation (per-item Reset) must not drop the shared tier.
	c2.Invalidate()
	c2.Predict(state)
	if raw2.calls != 0 {
		t.Fatalf("per-item Invalidate dropped the shared tier: %d forward passes", raw2.calls)
	}
	hits, misses, size := shared.Stats()
	if hits < 2 || misses != 1 || size != 1 {
		t.Fatalf("shared cache stats hits=%d misses=%d size=%d, want >=2/1/1", hits, misses, size)
	}
	// Retraining invalidation empties the shared tier.
	shared.Invalidate()
	c1.Invalidate()
	c1.Predict(state)
	if raw1.calls != 2 {
		t.Fatalf("SharedCache.Invalidate left stale entries: %d forward passes, want 2", raw1.calls)
	}
}

// TestSharedCacheBounded: the capacity is a hard bound, enforced by
// evicting an arbitrary resident entry per insert.
func TestSharedCacheBounded(t *testing.T) {
	shared := NewSharedCache(4)
	raw := &countingPredictor{}
	c := NewSharedCachedPredictor(raw, shared)
	for i := 0; i < 20; i++ {
		c.Predict([]int{i})
	}
	if _, _, size := shared.Stats(); size > 4 {
		t.Fatalf("shared cache grew to %d entries, capacity 4", size)
	}
}

package sched

import (
	"ams/internal/oracle"
	"ams/internal/sim"
	"ams/internal/tensor"
	"ams/internal/zoo"
)

// --- Parallel deadline+memory policies (§VI-G, Algorithm 2) -------------

// MemoryPacker is Algorithm 2: at each scheduling point (a completion,
// or the start of the schedule) it first launches the eligible model
// with the highest Q per unit resource area (Q / (m.time * m.mem)),
// takes that model's completion as a temporary deadline, then keeps
// launching models with the highest Q/m.mem ratio that fit in the
// remaining memory and finish by the temporary deadline. Each Observe
// opens a new scheduling point; within one point, successive Next calls
// emit the anchor followed by its packed followers, declining when the
// point's batch is complete.
type MemoryPacker struct {
	pred Predictor
	z    *zoo.Zoo
	fly  flight

	packing    bool    // this scheduling point's anchor has launched
	horizonMS  float64 // anchor duration: followers must finish within it
	batchAware bool    // see SetBatchAware
}

// NewMemoryPacker returns Algorithm 2.
func NewMemoryPacker(pred Predictor, z *zoo.Zoo) *MemoryPacker {
	return &MemoryPacker{pred: pred, z: z}
}

// SetBatchAware toggles the batching-aware anchor density (default off)
// and returns p for chaining — the same switch, with the same contract,
// as CostQGreedy.SetBatchAware.
func (p *MemoryPacker) SetBatchAware(on bool) *MemoryPacker {
	p.batchAware = on
	return p
}

// Name implements sim.Policy.
func (p *MemoryPacker) Name() string { return "Agent" }

// Reset implements sim.Policy.
func (p *MemoryPacker) Reset(int) {
	p.fly.reset()
	p.packing = false
	invalidatePrediction(p.pred)
}

// Next implements sim.Policy.
func (p *MemoryPacker) Next(t *oracle.Tracker, c sim.Constraints) int {
	q := p.pred.Predict(t.State())
	if !p.packing {
		// Anchor: highest value per resource area within the budgets.
		// When batch-aware, a model whose batch lane has cross-item
		// waiters adds only its per-item marginal GPU time, so its
		// density uses that effective cost. The packing horizon below
		// stays the nominal TimeMS — commits happen on the nominal clock.
		anchor, bestDensity := -1, 0.0
		for _, m := range t.Unexecuted() {
			if p.fly.has(m) || q[m] <= 0 {
				continue
			}
			mod := p.z.Models[m]
			if !c.Allows(mod) {
				continue
			}
			costMS := mod.TimeMS
			if p.batchAware && mod.BatchMarginalMS > 0 && c.Queued(m) > 0 {
				costMS = mod.BatchMarginalMS
			}
			d := q[m] / (costMS * mod.MemMB)
			if anchor < 0 || d > bestDensity {
				anchor, bestDensity = m, d
			}
		}
		if anchor >= 0 {
			p.packing = true
			p.horizonMS = p.z.Models[anchor].TimeMS
			p.fly.mark(anchor)
			return anchor
		}
		// No positive-value model fits; while something is running,
		// wait for its completion. On an idle GPU, fall back to the
		// least-bad feasible model so the budget is not wasted.
		if p.fly.count() > 0 {
			return -1
		}
		fallback, bestQ := -1, 0.0
		for _, m := range t.Unexecuted() {
			if !c.Allows(p.z.Models[m]) {
				continue
			}
			if fallback < 0 || q[m] > bestQ {
				fallback, bestQ = m, q[m]
			}
		}
		if fallback >= 0 {
			p.packing = true
			p.horizonMS = 0 // nothing packs behind a fallback
			p.fly.mark(fallback)
		}
		return fallback
	}
	// Pack by Q/mem under the temporary deadline (Algorithm 2 lines 8-12).
	best, bestRatio := -1, 0.0
	for _, m := range t.Unexecuted() {
		if p.fly.has(m) || q[m] <= 0 {
			continue
		}
		mod := p.z.Models[m]
		if mod.TimeMS > p.horizonMS+1e-9 || !c.Allows(mod) {
			continue
		}
		ratio := q[m] / mod.MemMB
		if best < 0 || ratio > bestRatio {
			best, bestRatio = m, ratio
		}
	}
	if best >= 0 {
		p.fly.mark(best)
	}
	return best
}

// Observe implements sim.Policy: a completion opens the next scheduling
// point, so the anchor selection runs again.
func (p *MemoryPacker) Observe(m int, _ zoo.Output) {
	p.fly.done(m)
	p.packing = false
}

// RandomPacker is the random baseline of §VI-G: it launches randomly
// chosen models that fit in memory and finish by the deadline, keeping
// the GPU packed. One shuffle is drawn per scheduling point and consumed
// across that point's launches.
type RandomPacker struct {
	z   *zoo.Zoo
	rng *tensor.RNG
	fly flight

	order []int // this scheduling point's shuffled candidates
	drawn bool
}

// NewRandomPacker returns the random deadline+memory baseline.
func NewRandomPacker(z *zoo.Zoo, rng *tensor.RNG) *RandomPacker {
	return &RandomPacker{z: z, rng: rng}
}

// Name implements sim.Policy.
func (p *RandomPacker) Name() string { return "Random" }

// Reset implements sim.Policy.
func (p *RandomPacker) Reset(int) {
	p.fly.reset()
	p.drawn = false
}

// Next implements sim.Policy.
func (p *RandomPacker) Next(t *oracle.Tracker, c sim.Constraints) int {
	if !p.drawn {
		p.order = t.Unexecuted()
		p.rng.Shuffle(p.order)
		p.drawn = true
	}
	for _, m := range p.order {
		if t.Executed(m) || p.fly.has(m) || !c.Allows(p.z.Models[m]) {
			continue
		}
		p.fly.mark(m)
		return m
	}
	return -1
}

// Observe implements sim.Policy.
func (p *RandomPacker) Observe(m int, _ zoo.Output) {
	p.fly.done(m)
	p.drawn = false
}

package sched

import (
	"ams/internal/oracle"
	"ams/internal/tensor"
	"ams/internal/zoo"
)

// --- Parallel deadline+memory selectors (§VI-G, Algorithm 2) ------------

// MemoryPacker is Algorithm 2: at each scheduling point it first launches
// the eligible model with the highest Q per unit resource area
// (Q / (m.time * m.mem)), takes that model's completion as a temporary
// deadline, then keeps launching models with the highest Q/m.mem ratio
// that fit in the remaining memory and finish by the temporary deadline.
type MemoryPacker struct {
	pred Predictor
	z    *zoo.Zoo
}

// NewMemoryPacker returns Algorithm 2.
func NewMemoryPacker(pred Predictor, z *zoo.Zoo) *MemoryPacker {
	return &MemoryPacker{pred: pred, z: z}
}

// Name implements sim.BatchSelector.
func (p *MemoryPacker) Name() string { return "Agent" }

// Reset implements sim.BatchSelector.
func (p *MemoryPacker) Reset(int) {}

// SelectStart implements sim.BatchSelector.
func (p *MemoryPacker) SelectStart(t *oracle.Tracker, running []int, availMemMB, nowMS, deadlineMS float64) []int {
	q := p.pred.Predict(t.State())
	inFlight := toSet(running)

	eligible := func(m int, mem, horizon float64) bool {
		mod := p.z.Models[m]
		return !t.Executed(m) && !inFlight[m] &&
			mod.MemMB <= mem+1e-9 && nowMS+mod.TimeMS <= horizon+1e-9
	}

	// Anchor: highest value per resource area within the global deadline.
	anchor, bestDensity := -1, 0.0
	for _, m := range t.Unexecuted() {
		if !eligible(m, availMemMB, deadlineMS) || q[m] <= 0 {
			continue
		}
		mod := p.z.Models[m]
		d := q[m] / (mod.TimeMS * mod.MemMB)
		if anchor < 0 || d > bestDensity {
			anchor, bestDensity = m, d
		}
	}
	if anchor < 0 {
		// No positive-value model fits; when the GPU is idle, fall back to
		// the least-bad feasible model so the budget is not wasted.
		if len(running) > 0 {
			return nil
		}
		fallback, bestQ := -1, 0.0
		for _, m := range t.Unexecuted() {
			if !eligible(m, availMemMB, deadlineMS) {
				continue
			}
			if fallback < 0 || q[m] > bestQ {
				fallback, bestQ = m, q[m]
			}
		}
		if fallback < 0 {
			return nil
		}
		return []int{fallback}
	}

	starts := []int{anchor}
	inFlight[anchor] = true
	mem := availMemMB - p.z.Models[anchor].MemMB
	tempDeadline := nowMS + p.z.Models[anchor].TimeMS

	// Pack by Q/mem under the temporary deadline (Algorithm 2 lines 8-12).
	for {
		best, bestRatio := -1, 0.0
		for _, m := range t.Unexecuted() {
			if inFlight[m] || q[m] <= 0 {
				continue
			}
			mod := p.z.Models[m]
			if mod.MemMB > mem+1e-9 || nowMS+mod.TimeMS > tempDeadline+1e-9 {
				continue
			}
			ratio := q[m] / mod.MemMB
			if best < 0 || ratio > bestRatio {
				best, bestRatio = m, ratio
			}
		}
		if best < 0 {
			break
		}
		starts = append(starts, best)
		inFlight[best] = true
		mem -= p.z.Models[best].MemMB
	}
	return starts
}

// RandomPacker is the random baseline of §VI-G: it launches randomly
// chosen models that fit in memory and finish by the deadline, keeping
// the GPU packed.
type RandomPacker struct {
	z   *zoo.Zoo
	rng *tensor.RNG
}

// NewRandomPacker returns the random deadline+memory baseline.
func NewRandomPacker(z *zoo.Zoo, rng *tensor.RNG) *RandomPacker {
	return &RandomPacker{z: z, rng: rng}
}

// Name implements sim.BatchSelector.
func (p *RandomPacker) Name() string { return "Random" }

// Reset implements sim.BatchSelector.
func (p *RandomPacker) Reset(int) {}

// SelectStart implements sim.BatchSelector.
func (p *RandomPacker) SelectStart(t *oracle.Tracker, running []int, availMemMB, nowMS, deadlineMS float64) []int {
	inFlight := toSet(running)
	mem := availMemMB
	var starts []int
	candidates := t.Unexecuted()
	p.rng.Shuffle(candidates)
	for _, m := range candidates {
		if inFlight[m] {
			continue
		}
		mod := p.z.Models[m]
		if mod.MemMB > mem+1e-9 || nowMS+mod.TimeMS > deadlineMS+1e-9 {
			continue
		}
		starts = append(starts, m)
		inFlight[m] = true
		mem -= mod.MemMB
	}
	return starts
}

func toSet(xs []int) map[int]bool {
	s := make(map[int]bool, len(xs))
	for _, x := range xs {
		s[x] = true
	}
	return s
}

package sched

import "sync"

// DefaultSharedCacheSize bounds a SharedCache built with capacity <= 0.
// At ~30 float64s plus a short key per entry, the default tops out
// around 20 MB — small next to the per-worker network clones it saves
// forward passes on.
const DefaultSharedCacheSize = 1 << 16

// SharedCache is the cross-item, cross-worker tier of the Q-prediction
// memo: a bounded, concurrency-safe map from labeling state to the
// frozen network's Q-values. It is valid because serving never trains —
// every worker's clone computes identical values for identical states,
// so a state any worker has visited is an answer for all of them, on
// this item or the next. Keys are the injective uvarint encoding of the
// sorted emitted-label IDs (stateKey).
//
// The bound is enforced by dropping one arbitrary resident entry per
// insert once full: O(1), no recency bookkeeping on the hit path, and
// hot states (the empty state, early-schedule states) are re-inserted
// on their next miss anyway.
type SharedCache struct {
	mu       sync.Mutex
	memo     map[string][]float64
	capacity int
	hits     int64
	misses   int64
}

// NewSharedCache builds a cache holding at most capacity states
// (DefaultSharedCacheSize when capacity <= 0).
func NewSharedCache(capacity int) *SharedCache {
	if capacity <= 0 {
		capacity = DefaultSharedCacheSize
	}
	return &SharedCache{memo: make(map[string][]float64), capacity: capacity}
}

// lookup returns the cached Q-values for a state key. The returned slice
// is shared and must not be mutated (the CachedPredictor contract).
func (c *SharedCache) lookup(key string) ([]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	q, ok := c.memo[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return q, ok
}

// store publishes a computed prediction, evicting one arbitrary entry
// when the cache is full. First writer wins: concurrent workers compute
// identical values for one state, so overwriting would be pure churn.
func (c *SharedCache) store(key string, q []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.memo[key]; ok {
		return
	}
	if len(c.memo) >= c.capacity {
		for k := range c.memo {
			delete(c.memo, k)
			break
		}
	}
	c.memo[key] = q
}

// Stats returns the hit/miss counters and the current entry count.
func (c *SharedCache) Stats() (hits, misses int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.memo)
}

// Invalidate empties the cache. Call it when the shared weights change
// (retraining): cached values are predictions of a specific network.
func (c *SharedCache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.memo)
}

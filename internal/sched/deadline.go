package sched

import (
	"ams/internal/oracle"
	"ams/internal/sim"
	"ams/internal/zoo"
)

// --- Algorithm 1 (§VI-F) ------------------------------------------------

// CostQGreedy is Algorithm 1: at each iteration filter the models that no
// longer fit in the budget and execute the one maximizing Q(m,d)/m.time.
// When every remaining feasible model has a non-positive Q the ratio
// ordering degenerates, so the policy falls back to plain argmax Q — the
// least-bad action, mirroring how a Q/time ratio over positive values
// behaves. Feasibility covers both constraint dimensions, so under a
// live memory cap the policy skips models that do not fit right now and
// keeps scheduling the ones that do.
//
// The policy can be made batching-aware (SetBatchAware): when the
// execution layer batches across items (sim.Constraints.BatchQueued), a
// model with waiters pending in its batch lane costs the GPU only its
// per-item marginal time to join, so the ratio scores it with that
// effective cost — an extension of the paper's cost model to coalesced
// serving. Awareness is off by default so enabling batching alone never
// changes a schedule; feasibility always uses the nominal TimeMS (the
// schedule clock charges it) either way.
type CostQGreedy struct {
	pred Predictor
	z    *zoo.Zoo
	fly  flight

	batchAware bool // see SetBatchAware
}

// NewCostQGreedy returns Algorithm 1.
func NewCostQGreedy(pred Predictor, z *zoo.Zoo) *CostQGreedy {
	return &CostQGreedy{pred: pred, z: z}
}

// Name implements sim.Policy.
func (p *CostQGreedy) Name() string { return "Cost-Q Greedy" }

// SetBatchAware toggles the batching-aware cost (default off) and
// returns p for chaining. Off, the ratio always charges nominal TimeMS,
// so a batched run reproduces the unbatched schedule exactly; on, the
// policy herds items onto models with live batch lanes — a genuine
// scheduling extension whose effect internal/experiments isolates.
func (p *CostQGreedy) SetBatchAware(on bool) *CostQGreedy {
	p.batchAware = on
	return p
}

// effectiveCostMS is the GPU time a selection would actually add: the
// per-item marginal when the model's batch lane already has waiters (the
// launch overhead is theirs to share), the nominal time otherwise.
func (p *CostQGreedy) effectiveCostMS(m int, mod *zoo.Model, c sim.Constraints) float64 {
	if p.batchAware && mod.BatchMarginalMS > 0 && c.Queued(m) > 0 {
		return mod.BatchMarginalMS
	}
	return mod.TimeMS
}

// Reset implements sim.Policy.
func (p *CostQGreedy) Reset(int) {
	p.fly.reset()
	invalidatePrediction(p.pred)
}

// Next implements sim.Policy.
func (p *CostQGreedy) Next(t *oracle.Tracker, c sim.Constraints) int {
	q := p.pred.Predict(t.State())
	bestRatio, bestRatioM := 0.0, -1
	bestQ, bestQM := 0.0, -1
	for _, m := range t.Unexecuted() {
		if p.fly.has(m) {
			continue
		}
		mod := p.z.Models[m]
		if !c.Allows(mod) {
			continue
		}
		if q[m] > 0 {
			if ratio := q[m] / p.effectiveCostMS(m, mod, c); bestRatioM < 0 || ratio > bestRatio {
				bestRatio, bestRatioM = ratio, m
			}
		}
		if bestQM < 0 || q[m] > bestQ {
			bestQ, bestQM = q[m], m
		}
	}
	best := bestQM
	if bestRatioM >= 0 {
		best = bestRatioM
	}
	if best >= 0 {
		p.fly.mark(best)
	}
	return best
}

// Observe implements sim.Policy.
func (p *CostQGreedy) Observe(m int, _ zoo.Output) { p.fly.done(m) }

// --- Relaxed optimal* upper bound (§V-C) --------------------------------

// OptimalStarDeadline computes the relaxed optimal* value for a scene
// under a serial deadline, exactly as §V-C defines it: greedily take the
// model with the maximal marginal-value/time density; the final model
// that no longer fits contributes the corresponding fraction of its
// marginal value. Because marginals shrink as the set grows (the function
// is submodular, not modular), the greedy relaxation is the paper's
// reference bound rather than a provable one — a feasible policy can
// exceed it by a hair on rare scenes. Returned as a recall rate.
func OptimalStarDeadline(st *oracle.Store, scene int, deadlineMS float64) float64 {
	total := st.TotalValue(scene)
	if total <= 0 {
		return 1
	}
	t := oracle.NewTracker(st, scene)
	remaining := deadlineMS
	var value float64
	for remaining > 0 && t.ExecutedCount() < st.NumModels() {
		best, bestDensity := -1, 0.0
		for _, m := range t.Unexecuted() {
			mv := t.MarginalValue(m)
			if mv <= 0 {
				continue
			}
			d := mv / st.Zoo.Models[m].TimeMS
			if best < 0 || d > bestDensity {
				best, bestDensity = m, d
			}
		}
		if best < 0 {
			break
		}
		mt := st.Zoo.Models[best].TimeMS
		mv := t.MarginalValue(best)
		if mt <= remaining {
			value += mv
			remaining -= mt
			t.Execute(best)
			continue
		}
		// Fractional tail: the relaxation credits the proportional value.
		value += mv * remaining / mt
		break
	}
	r := value / total
	if r > 1 {
		r = 1
	}
	return r
}

// OptimalStarMemory computes the relaxed optimal* value under joint
// deadline and memory budgets. Any feasible parallel schedule packs each
// model's time x memory rectangle into the deadline x memory area, so the
// fractional greedy over marginal-value/(time*mem) density bounded by that
// area upper-bounds every feasible policy. Returned as a recall rate.
func OptimalStarMemory(st *oracle.Store, scene int, deadlineMS, memMB float64) float64 {
	total := st.TotalValue(scene)
	if total <= 0 {
		return 1
	}
	area := deadlineMS * memMB
	t := oracle.NewTracker(st, scene)
	var value float64
	for area > 0 && t.ExecutedCount() < st.NumModels() {
		best, bestDensity := -1, 0.0
		for _, m := range t.Unexecuted() {
			mv := t.MarginalValue(m)
			if mv <= 0 {
				continue
			}
			mod := st.Zoo.Models[m]
			d := mv / (mod.TimeMS * mod.MemMB)
			if best < 0 || d > bestDensity {
				best, bestDensity = m, d
			}
		}
		if best < 0 {
			break
		}
		mod := st.Zoo.Models[best]
		need := mod.TimeMS * mod.MemMB
		mv := t.MarginalValue(best)
		if need <= area {
			value += mv
			area -= need
			t.Execute(best)
			continue
		}
		value += mv * area / need
		break
	}
	r := value / total
	if r > 1 {
		r = 1
	}
	return r
}

package sched

// CachedPredictor memoizes Q predictions keyed by the emitted-label set.
// Within one item's schedule the predictor-driven policies ask for the
// same state's values repeatedly — every launch of one parallel
// scheduling point, every serial re-ask after a memory stall, and every
// completion that emitted no fresh labels re-run Next on an unchanged
// state — and the Q network's forward pass is the dominant selection
// cost (the paper's Table III overhead). The cache turns those repeats
// into map hits.
//
// The memo is invalidated by the owning policy's Reset, so it spans
// exactly one item's schedule: at most one entry per distinct labeling
// state the schedule visits (≤ one per executed model plus the empty
// state), which bounds memory without any eviction policy.
//
// Not safe for concurrent use — it follows the same one-per-worker
// cloning rule as the predictor it wraps.
type CachedPredictor struct {
	pred Predictor
	memo map[string][]float64
	key  []byte // scratch buffer for key encoding
}

// NewCachedPredictor wraps pred with a per-schedule memo.
func NewCachedPredictor(pred Predictor) *CachedPredictor {
	return &CachedPredictor{pred: pred, memo: make(map[string][]float64)}
}

// Predict implements Predictor. The returned slice is owned by the cache
// and must not be mutated (policies only read it).
func (c *CachedPredictor) Predict(state []int) []float64 {
	// Encode the sorted label IDs as a compact byte key. Label IDs fit
	// comfortably in two bytes (the vocabulary has ~1100 labels).
	c.key = c.key[:0]
	for _, id := range state {
		c.key = append(c.key, byte(id), byte(id>>8))
	}
	k := string(c.key)
	if q, ok := c.memo[k]; ok {
		return q
	}
	// The wrapped predictor's slice aliases network storage and is
	// invalidated by its next forward pass; the memo keeps a copy.
	q := append([]float64(nil), c.pred.Predict(state)...)
	c.memo[k] = q
	return q
}

// Invalidate drops the memo; policies call it from Reset so cached
// values never leak across items (the network may also have been
// retrained between items).
func (c *CachedPredictor) Invalidate() { clear(c.memo) }

// invalidatePrediction resets pred's memo when it carries one. Policies
// call this from Reset, so wrapping a policy's predictor in a
// CachedPredictor is all it takes to opt in to memoization.
func invalidatePrediction(pred Predictor) {
	if c, ok := pred.(*CachedPredictor); ok {
		c.Invalidate()
	}
}

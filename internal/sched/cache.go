package sched

import "encoding/binary"

// CachedPredictor memoizes Q predictions keyed by the emitted-label set.
// Within one item's schedule the predictor-driven policies ask for the
// same state's values repeatedly — every launch of one parallel
// scheduling point, every serial re-ask after a memory stall, and every
// completion that emitted no fresh labels re-run Next on an unchanged
// state — and the Q network's forward pass is the dominant selection
// cost (the paper's Table III overhead). The cache turns those repeats
// into map hits.
//
// The private memo is invalidated by the owning policy's Reset, so it
// spans exactly one item's schedule: at most one entry per distinct
// labeling state the schedule visits (≤ one per executed model plus the
// empty state), which bounds memory without any eviction policy.
//
// An optional SharedCache (NewSharedCachedPredictor) extends the
// memoization across items and workers: concurrently served items visit
// overlapping labeling states — most schedules start from the empty
// state and early states recur constantly on a hot trace — and every
// worker's clone shares the same frozen weights, so one worker's forward
// pass is every worker's answer. Hits fill the private memo, misses
// publish to the shared tier.
//
// Not safe for concurrent use — it follows the same one-per-worker
// cloning rule as the predictor it wraps (the SharedCache itself is
// concurrency-safe).
type CachedPredictor struct {
	pred   Predictor
	memo   map[string][]float64
	key    []byte // scratch buffer for key encoding
	shared *SharedCache
}

// NewCachedPredictor wraps pred with a per-schedule memo.
func NewCachedPredictor(pred Predictor) *CachedPredictor {
	return &CachedPredictor{pred: pred, memo: make(map[string][]float64)}
}

// NewSharedCachedPredictor wraps pred with the per-schedule memo backed
// by a cross-item shared cache. All predictors sharing one cache must
// wrap clones with identical weights — the cache stores values, not
// which network produced them. A nil shared is equivalent to
// NewCachedPredictor.
func NewSharedCachedPredictor(pred Predictor, shared *SharedCache) *CachedPredictor {
	return &CachedPredictor{pred: pred, memo: make(map[string][]float64), shared: shared}
}

// stateKey encodes a labeling state into buf as a byte key. State slices
// are sorted label IDs and uvarints are self-delimiting, so the encoding
// is injective for any vocabulary size. (An earlier fixed two-byte
// encoding truncated IDs to 16 bits, silently colliding states — and so
// serving wrong Q-values — once label IDs reached 65536.)
func stateKey(buf []byte, state []int) []byte {
	buf = buf[:0]
	for _, id := range state {
		buf = binary.AppendUvarint(buf, uint64(id))
	}
	return buf
}

// Predict implements Predictor. The returned slice is owned by the cache
// and must not be mutated (policies only read it).
func (c *CachedPredictor) Predict(state []int) []float64 {
	c.key = stateKey(c.key, state)
	k := string(c.key)
	if q, ok := c.memo[k]; ok {
		return q
	}
	if c.shared != nil {
		if q, ok := c.shared.lookup(k); ok {
			c.memo[k] = q
			return q
		}
	}
	// The wrapped predictor's slice aliases network storage and is
	// invalidated by its next forward pass; the memo keeps a copy.
	q := append([]float64(nil), c.pred.Predict(state)...)
	c.memo[k] = q
	if c.shared != nil {
		c.shared.store(k, q)
	}
	return q
}

// Invalidate drops the private memo; policies call it from Reset so
// per-item state never leaks across items. The shared tier deliberately
// survives — its values are valid as long as the shared weights are
// (call SharedCache.Invalidate after retraining).
func (c *CachedPredictor) Invalidate() { clear(c.memo) }

// invalidatePrediction resets pred's memo when it carries one. Policies
// call this from Reset, so wrapping a policy's predictor in a
// CachedPredictor is all it takes to opt in to memoization.
func invalidatePrediction(pred Predictor) {
	if c, ok := pred.(*CachedPredictor); ok {
		c.Invalidate()
	}
}

package synth

import (
	"testing"

	"ams/internal/labels"
)

var vocab = labels.NewVocabulary()

func TestDatasetDeterministic(t *testing.T) {
	a := NewDataset(vocab, MSCOCO(), 50, 7)
	b := NewDataset(vocab, MSCOCO(), 50, 7)
	for i := range a.Scenes {
		if a.Scenes[i].Seed != b.Scenes[i].Seed ||
			a.Scenes[i].Place != b.Scenes[i].Place ||
			a.Scenes[i].Persons != b.Scenes[i].Persons {
			t.Fatalf("scene %d differs across same-seed generations", i)
		}
	}
	c := NewDataset(vocab, MSCOCO(), 50, 8)
	diff := 0
	for i := range a.Scenes {
		if a.Scenes[i].Place != c.Scenes[i].Place {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestSceneInvariants(t *testing.T) {
	for _, p := range Profiles() {
		d := NewDataset(vocab, p, 300, 11)
		for i, s := range d.Scenes {
			if s.ID != i {
				t.Fatalf("%s scene %d has ID %d", p.Name, i, s.ID)
			}
			if s.Faces > s.Persons {
				t.Fatalf("%s scene %d: faces %d > persons %d", p.Name, i, s.Faces, s.Persons)
			}
			if s.Faces > 0 && (s.Emotion < 0 || s.Gender < 0) {
				t.Fatalf("%s scene %d: face without emotion/gender", p.Name, i)
			}
			if s.Faces == 0 && (s.Emotion >= 0 || s.Gender >= 0) {
				t.Fatalf("%s scene %d: emotion/gender without face", p.Name, i)
			}
			if s.Persons == 0 && (len(s.PoseKP) > 0 || s.Action >= 0 || len(s.HandKP) > 0) {
				t.Fatalf("%s scene %d: person-conditioned concepts without person", p.Name, i)
			}
			if vocabTask(t, s.Place) != labels.PlaceClassification {
				t.Fatalf("%s scene %d: place label from wrong task", p.Name, i)
			}
			if s.Action >= 0 && vocabTask(t, s.Action) != labels.ActionClassification {
				t.Fatalf("%s scene %d: action label from wrong task", p.Name, i)
			}
			if s.Dog >= 0 && vocabTask(t, s.Dog) != labels.DogClassification {
				t.Fatalf("%s scene %d: dog label from wrong task", p.Name, i)
			}
			seen := map[int]bool{}
			for _, o := range s.Objects {
				if vocabTask(t, o) != labels.ObjectDetection {
					t.Fatalf("%s scene %d: object label from wrong task", p.Name, i)
				}
				if seen[o] {
					t.Fatalf("%s scene %d: duplicate object %d", p.Name, i, o)
				}
				seen[o] = true
			}
		}
	}
}

func vocabTask(t *testing.T, id int) labels.Task {
	t.Helper()
	if id < 0 || id >= vocab.Len() {
		t.Fatalf("label id %d out of range", id)
	}
	return vocab.Label(id).Task
}

func TestPersonImpliesPersonObject(t *testing.T) {
	person, _ := vocab.ByName("object/person")
	d := NewDataset(vocab, MSCOCO(), 200, 3)
	for _, s := range d.Scenes {
		has := false
		for _, o := range s.Objects {
			if o == person.ID {
				has = true
			}
		}
		if s.Persons > 0 && !has {
			t.Fatalf("scene %d has persons but no person object", s.ID)
		}
		if s.Persons == 0 && has {
			t.Fatalf("scene %d has person object but no persons", s.ID)
		}
	}
}

func TestDogImpliesDogObject(t *testing.T) {
	dogObj, _ := vocab.ByName("object/dog")
	d := NewDataset(vocab, VOC2012(), 400, 5)
	for _, s := range d.Scenes {
		if s.Dog >= 0 {
			found := false
			for _, o := range s.Objects {
				if o == dogObj.ID {
					found = true
				}
			}
			if !found {
				t.Fatalf("scene %d has a dog breed but no object/dog", s.ID)
			}
		}
	}
}

func TestProfilesDiffer(t *testing.T) {
	// Stanford40 must be action-heavy relative to Places365.
	s40 := NewDataset(vocab, Stanford40(), 500, 13)
	p365 := NewDataset(vocab, Places365(), 500, 13)
	countActions := func(d *Dataset) int {
		n := 0
		for _, s := range d.Scenes {
			if s.Action >= 0 {
				n++
			}
		}
		return n
	}
	if countActions(s40) <= 2*countActions(p365) {
		t.Fatalf("Stanford40 actions (%d) not dominant over Places365 (%d)",
			countActions(s40), countActions(p365))
	}
}

func TestSplitRatio(t *testing.T) {
	d := NewDataset(vocab, MirFlickr(), 1000, 17)
	train, test := d.Split(0.2)
	if len(train)+len(test) != 1000 {
		t.Fatalf("split lost scenes: %d + %d", len(train), len(test))
	}
	ratio := float64(len(train)) / 1000
	if ratio < 0.15 || ratio > 0.25 {
		t.Fatalf("train fraction %v too far from 0.2", ratio)
	}
	// No overlap.
	ids := map[int]bool{}
	for _, s := range train {
		ids[s.ID] = true
	}
	for _, s := range test {
		if ids[s.ID] {
			t.Fatalf("scene %d in both splits", s.ID)
		}
	}
}

func TestSplitPanicsOnBadFraction(t *testing.T) {
	d := NewDataset(vocab, MirFlickr(), 10, 17)
	for _, frac := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Split(%v) did not panic", frac)
				}
			}()
			d.Split(frac)
		}()
	}
}

func TestChunkedCorrelation(t *testing.T) {
	d := NewDataset(vocab, MSCOCO(), 60, 19)
	c := d.Chunked(vocab, 10, 23)
	if c.Len() != d.Len() {
		t.Fatalf("chunked size %d != %d", c.Len(), d.Len())
	}
	// Within a chunk the latent structure repeats; seeds differ.
	for chunk := 0; chunk < 6; chunk++ {
		base := c.Scenes[chunk*10]
		for k := 1; k < 10; k++ {
			s := c.Scenes[chunk*10+k]
			if s.Place != base.Place || s.Persons != base.Persons || s.Dog != base.Dog {
				t.Fatalf("chunk %d scene %d diverges from base structure", chunk, k)
			}
			if s.Seed == base.Seed {
				t.Fatalf("chunk %d scene %d reuses the base noise seed", chunk, k)
			}
		}
	}
}

func TestProfileByName(t *testing.T) {
	for _, p := range Profiles() {
		got, err := ProfileByName(p.Name)
		if err != nil || got.Name != p.Name {
			t.Fatalf("ProfileByName(%q) failed: %v", p.Name, err)
		}
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("ProfileByName accepted junk")
	}
}

func TestNewDatasetPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDataset(0) did not panic")
		}
	}()
	NewDataset(vocab, MSCOCO(), 0, 1)
}

// Package synth generates the synthetic image datasets that stand in for
// the paper's real image corpora (MSCOCO 2017, Places365, MirFlickr25,
// Stanford40, PASCAL VOC 2012).
//
// Each "image" is a latent scene: a structured semantic ground truth
// (place, objects, people, faces, actions, dogs, hands) with the same
// kind of inter-concept correlation the paper's DRL agent exploits —
// e.g. people imply faces and poses, pubs imply cups and drinking, dogs
// imply breeds. The 30 simulated models in internal/zoo read this latent
// truth (with task-specific noise) to produce labels and confidences, so
// every downstream component (oracle, agents, schedulers) exercises
// exactly the code paths the paper's pipeline would.
package synth

import (
	"fmt"

	"ams/internal/labels"
	"ams/internal/tensor"
)

// Scene is the latent semantic ground truth of one synthetic image.
type Scene struct {
	ID     int
	Seed   uint64 // per-scene noise seed used by simulated model inference
	Place  int    // label ID of the true place
	Indoor bool

	Objects []int // label IDs of objects present (ObjectDetection task)

	Persons int   // number of people in the scene
	Faces   int   // number of clearly visible faces (<= Persons)
	Emotion int   // label ID of the dominant facial emotion, -1 if no face
	Gender  int   // label ID of the dominant gender, -1 if no face
	Action  int   // label ID of the dominant human action, -1 if none
	PoseKP  []int // label IDs of visible body keypoints
	HandKP  []int // label IDs of visible hand keypoints

	Dog int // label ID of the dog breed present, -1 if no dog
}

// HasPerson reports whether any person is present.
func (s *Scene) HasPerson() bool { return s.Persons > 0 }

// HasFace reports whether any visible face is present.
func (s *Scene) HasFace() bool { return s.Faces > 0 }

// HasDog reports whether a dog is present.
func (s *Scene) HasDog() bool { return s.Dog >= 0 }

// Profile parameterizes a dataset's content distribution. The five
// concrete profiles below mimic the qualitative differences between the
// paper's datasets.
type Profile struct {
	Name string

	PersonProb   float64 // probability a scene contains people
	MeanPersons  float64 // mean person count when present (geometric-ish)
	FaceProb     float64 // probability a person shows a usable face
	ActionProb   float64 // probability people perform a nameable action
	SportBias    float64 // probability an action is drawn from sports
	DogProb      float64 // probability a dog appears
	IndoorProb   float64 // probability the place is indoor
	MeanObjects  float64 // mean number of distinct non-person objects
	ObjectSpread int     // size of the object sub-vocabulary the profile favours
	HandProb     float64 // probability hands are clearly visible given a person
	PlaceSpread  int     // size of the place sub-vocabulary the profile favours
}

// The five dataset profiles. Stanford40 is action-centric; VOC2012 is
// object-centric with animals and vehicles; Places365 is scene-centric;
// MSCOCO is object+people rich; MirFlickr is mixed social photography.
func MSCOCO() Profile {
	return Profile{
		Name: "MSCOCO2017", PersonProb: 0.62, MeanPersons: 2.2, FaceProb: 0.68,
		ActionProb: 0.45, SportBias: 0.35, DogProb: 0.12, IndoorProb: 0.45,
		MeanObjects: 4.5, ObjectSpread: 80, HandProb: 0.35, PlaceSpread: 160,
	}
}

func Places365() Profile {
	return Profile{
		Name: "Places365", PersonProb: 0.30, MeanPersons: 1.4, FaceProb: 0.45,
		ActionProb: 0.22, SportBias: 0.25, DogProb: 0.05, IndoorProb: 0.52,
		MeanObjects: 2.8, ObjectSpread: 70, HandProb: 0.18, PlaceSpread: 365,
	}
}

func MirFlickr() Profile {
	return Profile{
		Name: "MirFlickr25", PersonProb: 0.55, MeanPersons: 1.8, FaceProb: 0.72,
		ActionProb: 0.35, SportBias: 0.25, DogProb: 0.10, IndoorProb: 0.40,
		MeanObjects: 3.4, ObjectSpread: 80, HandProb: 0.30, PlaceSpread: 240,
	}
}

func Stanford40() Profile {
	return Profile{
		Name: "Stanford40", PersonProb: 0.97, MeanPersons: 1.6, FaceProb: 0.75,
		ActionProb: 0.95, SportBias: 0.45, DogProb: 0.08, IndoorProb: 0.38,
		MeanObjects: 2.6, ObjectSpread: 60, HandProb: 0.55, PlaceSpread: 120,
	}
}

func VOC2012() Profile {
	return Profile{
		Name: "VOC2012", PersonProb: 0.45, MeanPersons: 1.5, FaceProb: 0.55,
		ActionProb: 0.25, SportBias: 0.30, DogProb: 0.18, IndoorProb: 0.35,
		MeanObjects: 3.8, ObjectSpread: 80, HandProb: 0.22, PlaceSpread: 200,
	}
}

// Profiles returns all five dataset profiles.
func Profiles() []Profile {
	return []Profile{MSCOCO(), Places365(), MirFlickr(), Stanford40(), VOC2012()}
}

// ProfileByName resolves a profile from its Name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("synth: unknown dataset profile %q", name)
}

// Generator produces scenes for a profile against a vocabulary.
type Generator struct {
	vocab   *labels.Vocabulary
	profile Profile
	rng     *tensor.RNG

	placeIDs   []int
	objectIDs  []int
	personObj  int // label ID of object/person
	actionIDs  []int
	sportIDs   []int
	nonSport   []int
	emotionIDs []int
	genderIDs  []int
	poseIDs    []int
	handIDs    []int
	dogIDs     []int
}

// NewGenerator returns a deterministic scene generator for the profile.
func NewGenerator(vocab *labels.Vocabulary, profile Profile, seed uint64) *Generator {
	g := &Generator{vocab: vocab, profile: profile, rng: tensor.NewRNG(seed)}
	g.placeIDs = clampSpread(vocab.TaskLabels(labels.PlaceClassification), profile.PlaceSpread)
	g.objectIDs = clampSpread(vocab.TaskLabels(labels.ObjectDetection), profile.ObjectSpread)
	if l, ok := vocab.ByName("object/person"); ok {
		g.personObj = l.ID
	} else {
		panic("synth: vocabulary lacks object/person")
	}
	for _, id := range vocab.TaskLabels(labels.ActionClassification) {
		g.actionIDs = append(g.actionIDs, id)
		if vocab.Label(id).Sport {
			g.sportIDs = append(g.sportIDs, id)
		} else {
			g.nonSport = append(g.nonSport, id)
		}
	}
	g.emotionIDs = vocab.TaskLabels(labels.EmotionClassification)
	g.genderIDs = vocab.TaskLabels(labels.GenderClassification)
	g.poseIDs = vocab.TaskLabels(labels.PoseEstimation)
	g.handIDs = vocab.TaskLabels(labels.HandLandmark)
	g.dogIDs = vocab.TaskLabels(labels.DogClassification)
	return g
}

func clampSpread(ids []int, spread int) []int {
	if spread <= 0 || spread >= len(ids) {
		return ids
	}
	return ids[:spread]
}

// Next generates the next scene.
func (g *Generator) Next() Scene {
	r := g.rng
	p := g.profile
	s := Scene{
		ID:      -1, // assigned by Dataset
		Seed:    r.Uint64(),
		Emotion: -1,
		Gender:  -1,
		Action:  -1,
		Dog:     -1,
	}

	// Place: pick from the profile's favoured sub-vocabulary, biased
	// toward/away from indoor scenes by IndoorProb.
	wantIndoor := r.Bool(p.IndoorProb)
	s.Place = g.pickPlace(wantIndoor)
	s.Indoor = g.vocab.Label(s.Place).Indoor

	// People and the person-conditioned concepts.
	if r.Bool(p.PersonProb) {
		s.Persons = 1 + geometric(r, p.MeanPersons)
		if r.Bool(p.FaceProb) {
			s.Faces = 1 + r.Intn(s.Persons)
			s.Emotion = g.emotionIDs[r.Intn(len(g.emotionIDs))]
			s.Gender = g.genderIDs[r.Intn(len(g.genderIDs))]
		}
		if r.Bool(p.ActionProb) {
			// Outdoor scenes and sporty profiles favour sport actions.
			sportP := p.SportBias
			if !s.Indoor {
				sportP += 0.2
			} else {
				sportP -= 0.1
			}
			if r.Bool(clamp01(sportP)) {
				s.Action = g.sportIDs[r.Intn(len(g.sportIDs))]
			} else {
				s.Action = g.nonSport[r.Intn(len(g.nonSport))]
			}
		}
		// Visible body keypoints: a contiguous-ish random subset.
		nKP := 5 + r.Intn(len(g.poseIDs)-4)
		perm := r.Perm(len(g.poseIDs))
		for _, i := range perm[:nKP] {
			s.PoseKP = append(s.PoseKP, g.poseIDs[i])
		}
		if r.Bool(p.HandProb) {
			nh := 6 + r.Intn(len(g.handIDs)-5)
			hperm := r.Perm(len(g.handIDs))
			for _, i := range hperm[:nh] {
				s.HandKP = append(s.HandKP, g.handIDs[i])
			}
		}
	}

	// Objects: person objects mirror the person count; others are drawn
	// with a place-conditioned bias (indoor scenes favour household items,
	// which sit late in the object vocabulary; outdoor favours vehicles
	// and animals, early in the vocabulary).
	if s.Persons > 0 {
		s.Objects = append(s.Objects, g.personObj)
	}
	nObj := geometric(r, p.MeanObjects)
	for i := 0; i < nObj; i++ {
		id := g.pickObject(s.Indoor)
		if id != g.personObj && !containsInt(s.Objects, id) {
			s.Objects = append(s.Objects, id)
		}
	}

	// Dogs: more likely when the object detector would see a dog; a dog
	// object is injected so that object detection and breed classification
	// correlate.
	dogP := p.DogProb
	if !s.Indoor {
		dogP *= 1.4
	}
	if r.Bool(clamp01(dogP)) {
		s.Dog = g.dogIDs[r.Intn(len(g.dogIDs))]
		if l, ok := g.vocab.ByName("object/dog"); ok && !containsInt(s.Objects, l.ID) {
			s.Objects = append(s.Objects, l.ID)
		}
	}

	return s
}

// pickPlace draws a place with the requested indoor-ness (falling back to
// any place after a bounded number of rejections).
func (g *Generator) pickPlace(indoor bool) int {
	for i := 0; i < 16; i++ {
		id := g.placeIDs[g.rng.Intn(len(g.placeIDs))]
		if g.vocab.Label(id).Indoor == indoor {
			return id
		}
	}
	return g.placeIDs[g.rng.Intn(len(g.placeIDs))]
}

// pickObject draws an object label biased by scene indoor-ness.
func (g *Generator) pickObject(indoor bool) int {
	n := len(g.objectIDs)
	// Household objects occupy the back half of the vocabulary; animals
	// and vehicles the front. Beta-like skew via averaging two uniforms.
	u := (g.rng.Float64() + g.rng.Float64()) / 2
	var idx int
	if indoor {
		idx = int((0.5 + u/2) * float64(n-1)) // skew to the back half
	} else {
		idx = int((u / 2 * 1.6) * float64(n-1)) // skew to the front
	}
	if idx >= n {
		idx = n - 1
	}
	return g.objectIDs[idx]
}

// geometric samples a non-negative integer with the given mean.
func geometric(r *tensor.RNG, mean float64) int {
	if mean <= 0 {
		return 0
	}
	p := 1 / (1 + mean)
	n := 0
	for !r.Bool(p) && n < 64 {
		n++
	}
	return n
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

package synth

import (
	"fmt"

	"ams/internal/labels"
)

// Dataset is a generated collection of scenes together with its profile.
type Dataset struct {
	Profile Profile
	Scenes  []Scene
}

// NewDataset generates n scenes from the profile, deterministically from
// the seed. Scene IDs are dense indices into Scenes.
func NewDataset(vocab *labels.Vocabulary, profile Profile, n int, seed uint64) *Dataset {
	if n <= 0 {
		panic(fmt.Sprintf("synth: dataset size must be positive, got %d", n))
	}
	g := NewGenerator(vocab, profile, seed)
	d := &Dataset{Profile: profile, Scenes: make([]Scene, n)}
	for i := range d.Scenes {
		s := g.Next()
		s.ID = i
		d.Scenes[i] = s
	}
	return d
}

// Len returns the number of scenes.
func (d *Dataset) Len() int { return len(d.Scenes) }

// Split partitions the dataset into a training prefix-by-stride sample and
// a testing remainder with the requested training fraction. The paper uses
// a 1:4 train:test ratio ("For each dataset, we split it into a training
// set and a testing set with the ratio of 1:4"). Interleaved sampling
// keeps both splits representative without shuffling.
func (d *Dataset) Split(trainFrac float64) (train, test []Scene) {
	if trainFrac <= 0 || trainFrac >= 1 {
		panic(fmt.Sprintf("synth: train fraction must be in (0,1), got %v", trainFrac))
	}
	stride := int(1 / trainFrac)
	if stride < 1 {
		stride = 1
	}
	for i, s := range d.Scenes {
		if i%stride == 0 {
			train = append(train, s)
		} else {
			test = append(test, s)
		}
	}
	return train, test
}

// Chunked reorders a copy of the dataset into correlated chunks, emulating
// a video-like stream: each chunk of length chunkLen repeats small
// variations of a single base scene (same place/people/dog structure with
// fresh noise seeds). This is the "data partitioned into chunks" case of
// the paper's introduction, where a simple explore–exploit policy excels.
func (d *Dataset) Chunked(vocab *labels.Vocabulary, chunkLen int, seed uint64) *Dataset {
	if chunkLen <= 0 {
		panic("synth: chunk length must be positive")
	}
	g := NewGenerator(vocab, d.Profile, seed)
	out := &Dataset{Profile: d.Profile}
	id := 0
	for len(out.Scenes) < len(d.Scenes) {
		base := g.Next()
		for k := 0; k < chunkLen && len(out.Scenes) < len(d.Scenes); k++ {
			s := cloneScene(base)
			s.ID = id
			s.Seed = base.Seed ^ (uint64(k+1) * 0x9e3779b97f4a7c15)
			id++
			out.Scenes = append(out.Scenes, s)
		}
	}
	return out
}

func cloneScene(s Scene) Scene {
	c := s
	c.Objects = append([]int(nil), s.Objects...)
	c.PoseKP = append([]int(nil), s.PoseKP...)
	c.HandKP = append([]int(nil), s.HandKP...)
	return c
}

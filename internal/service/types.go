package service

import (
	"math"
	"sort"

	"ams/internal/sim"
)

// The types in this file are shared between the two serving subsystems:
// the virtual-time discrete-event simulation in this package and the real
// goroutine-based server in internal/serve. Both describe a run with the
// same Config, drive workers through the same PolicyFactory, and reduce
// per-item completion Records to the same Stats, so a simulated run and a
// real run of the same workload can be compared field by field.

// Config parameterizes one service run.
type Config struct {
	Workers       int     // parallel executors (GPUs)
	ArrivalRateHz float64 // mean arrivals per second (Poisson process)
	DeadlineSec   float64 // per-item scheduling budget
	Items         int     // stream length; images cycle through the store
	Seed          uint64
}

// Stats summarizes a run.
type Stats struct {
	Items           int
	AvgQueueWaitSec float64 // arrival -> execution start
	AvgLatencySec   float64 // arrival -> completion
	P95LatencySec   float64
	AvgRecall       float64 // over items with known ground truth only
	RecallItems     int     // items AvgRecall averaged over
	ThroughputHz    float64 // completions per simulated second
	Utilization     float64 // busy worker-time / (workers * horizon)
	HorizonSec      float64 // completion time of the last item
	AvgSelectSec    float64 // real seconds of policy selection per item (0 in the virtual-time sim)
}

// PolicyFactory builds one scheduling policy per worker. Policies are
// not shared across workers so stateful implementations stay correct.
type PolicyFactory func(worker int) sim.Policy

// Record is one completed item, all times in seconds on a common clock
// (virtual seconds for the sim, scaled wall-clock for the real server).
type Record struct {
	ArrivalSec float64 // when the item entered the system
	StartSec   float64 // when a worker began executing models for it
	FinishSec  float64 // when its schedule completed
	BusySec    float64 // model execution time charged to the worker
	Recall     float64 // fraction of the item's valuable value recalled
	HasRecall  bool    // whether the item's ground truth (and so Recall) is known

	// SelectSec is the real (unscaled) wall-clock time the worker spent
	// inside policy.Next for this item — the paper's Table III selection
	// overhead, dominated by Q-network forward passes. The virtual-time
	// sim leaves it zero.
	SelectSec float64
}

// Summarize reduces completion records to run statistics. It is the
// single aggregation path for both serving subsystems.
func Summarize(records []Record, workers int) Stats {
	var stats Stats
	stats.Items = len(records)
	if stats.Items == 0 {
		return stats
	}
	latencies := make([]float64, 0, len(records))
	var busy float64
	for _, r := range records {
		stats.AvgQueueWaitSec += r.StartSec - r.ArrivalSec
		lat := r.FinishSec - r.ArrivalSec
		stats.AvgLatencySec += lat
		latencies = append(latencies, lat)
		if r.HasRecall {
			stats.AvgRecall += r.Recall
			stats.RecallItems++
		}
		stats.AvgSelectSec += r.SelectSec
		busy += r.BusySec
		if r.FinishSec > stats.HorizonSec {
			stats.HorizonSec = r.FinishSec
		}
	}
	n := float64(stats.Items)
	stats.AvgQueueWaitSec /= n
	stats.AvgLatencySec /= n
	// Recall averages only over items whose ground truth is known:
	// externally ingested items have none, and folding zeros in would
	// poison the metric.
	if stats.RecallItems > 0 {
		stats.AvgRecall /= float64(stats.RecallItems)
	}
	stats.AvgSelectSec /= n
	sort.Float64s(latencies)
	// Nearest-rank P95: the smallest latency with at least 95% of the
	// sample at or below it, ceil(0.95n) in rank (1-based). The previous
	// floor-of-interpolated-index form sat a full rank low on small
	// samples — at n=2 it reported the minimum as the "P95".
	rank := int(math.Ceil(0.95 * float64(len(latencies))))
	stats.P95LatencySec = latencies[rank-1]
	if stats.HorizonSec > 0 {
		stats.ThroughputHz = n / stats.HorizonSec
		stats.Utilization = busy / (float64(workers) * stats.HorizonSec)
	}
	return stats
}

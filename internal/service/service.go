// Package service simulates a data-labeling service facing an arriving
// stream: images arrive with exponential interarrival times, wait in a
// FIFO queue, and are scheduled onto a pool of GPU workers, each of which
// labels its item under a per-item deadline using a pluggable scheduling
// policy. The simulation runs in virtual time (discrete events), so it
// measures queueing behaviour — waiting time, end-to-end latency,
// utilization, recall under load — deterministically and without real
// sleeping.
//
// This is the serving-system view of the paper's motivation ("limited
// computing resources and stringent delay" for a data stream): the same
// per-item scheduling policies, embedded in a queue.
package service

import (
	"fmt"
	"math"
	"sort"

	"ams/internal/oracle"
	"ams/internal/sim"
	"ams/internal/tensor"
)

// Config parameterizes one service run.
type Config struct {
	Workers       int     // parallel executors (GPUs)
	ArrivalRateHz float64 // mean arrivals per second (Poisson process)
	DeadlineSec   float64 // per-item scheduling budget
	Items         int     // stream length; images cycle through the store
	Seed          uint64
}

// Stats summarizes a run.
type Stats struct {
	Items           int
	AvgQueueWaitSec float64 // arrival -> execution start
	AvgLatencySec   float64 // arrival -> completion
	P95LatencySec   float64
	AvgRecall       float64
	ThroughputHz    float64 // completions per simulated second
	Utilization     float64 // busy worker-time / (workers * horizon)
	HorizonSec      float64 // completion time of the last item
}

// PolicyFactory builds one deadline policy per worker. Policies are not
// shared across workers so stateful implementations stay correct.
type PolicyFactory func(worker int) sim.DeadlinePolicy

// Run simulates the service over the store's images.
func Run(st *oracle.Store, factory PolicyFactory, cfg Config) Stats {
	if cfg.Workers <= 0 {
		panic("service: need at least one worker")
	}
	if cfg.ArrivalRateHz <= 0 || cfg.DeadlineSec <= 0 || cfg.Items <= 0 {
		panic(fmt.Sprintf("service: invalid config %+v", cfg))
	}
	rng := tensor.NewRNG(cfg.Seed ^ 0x2545f4914f6cdd1d)

	// Precompute arrivals (seconds).
	arrivals := make([]float64, cfg.Items)
	t := 0.0
	for i := range arrivals {
		t += expDraw(rng, cfg.ArrivalRateHz)
		arrivals[i] = t
	}

	policies := make([]sim.DeadlinePolicy, cfg.Workers)
	for w := range policies {
		policies[w] = factory(w)
	}
	workerFree := make([]float64, cfg.Workers)

	var (
		stats     Stats
		latencies []float64
		busy      float64
	)
	for i := 0; i < cfg.Items; i++ {
		// Earliest available worker takes the job.
		w := 0
		for j := 1; j < cfg.Workers; j++ {
			if workerFree[j] < workerFree[w] {
				w = j
			}
		}
		start := math.Max(arrivals[i], workerFree[w])
		img := i % st.NumScenes()
		res := sim.RunDeadline(st, img, policies[w], cfg.DeadlineSec*1000)
		dur := res.TimeMS / 1000
		finish := start + dur
		workerFree[w] = finish
		busy += dur

		stats.AvgQueueWaitSec += start - arrivals[i]
		lat := finish - arrivals[i]
		stats.AvgLatencySec += lat
		latencies = append(latencies, lat)
		stats.AvgRecall += res.Recall
		if finish > stats.HorizonSec {
			stats.HorizonSec = finish
		}
	}
	n := float64(cfg.Items)
	stats.Items = cfg.Items
	stats.AvgQueueWaitSec /= n
	stats.AvgLatencySec /= n
	stats.AvgRecall /= n
	sort.Float64s(latencies)
	stats.P95LatencySec = latencies[int(0.95*float64(len(latencies)-1))]
	if stats.HorizonSec > 0 {
		stats.ThroughputHz = n / stats.HorizonSec
		stats.Utilization = busy / (float64(cfg.Workers) * stats.HorizonSec)
	}
	return stats
}

// expDraw samples an exponential interarrival time with the given rate.
func expDraw(rng *tensor.RNG, rate float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return -math.Log(u) / rate
}

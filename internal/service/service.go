// Package service simulates a data-labeling service facing an arriving
// stream: images arrive with exponential interarrival times, wait in a
// FIFO queue, and are scheduled onto a pool of GPU workers, each of which
// labels its item under a per-item deadline using a pluggable scheduling
// policy. The simulation runs in virtual time (discrete events), so it
// measures queueing behaviour — waiting time, end-to-end latency,
// utilization, recall under load — deterministically and without real
// sleeping.
//
// This is the serving-system view of the paper's motivation ("limited
// computing resources and stringent delay" for a data stream): the same
// per-item scheduling policies, embedded in a queue.
//
// The run description (Config), worker policy wiring (PolicyFactory) and
// result reduction (Record, Summarize, Stats) live in types.go and are
// shared with internal/serve, the real concurrent server, so virtual-time
// and wall-clock runs of the same workload report comparable numbers.
package service

import (
	"fmt"
	"math"

	"ams/internal/oracle"
	"ams/internal/sim"
	"ams/internal/tensor"
)

// Run simulates the service over the executor's items.
func Run(ex oracle.Executor, factory PolicyFactory, cfg Config) Stats {
	if cfg.Workers <= 0 {
		panic("service: need at least one worker")
	}
	if cfg.ArrivalRateHz <= 0 || cfg.DeadlineSec <= 0 || cfg.Items <= 0 {
		panic(fmt.Sprintf("service: invalid config %+v", cfg))
	}
	arrivals := Arrivals(cfg.Items, cfg.ArrivalRateHz, cfg.Seed)

	policies := make([]sim.Policy, cfg.Workers)
	for w := range policies {
		policies[w] = factory(w)
	}
	workerFree := make([]float64, cfg.Workers)

	records := make([]Record, 0, cfg.Items)
	for i := 0; i < cfg.Items; i++ {
		// Earliest available worker takes the job.
		w := 0
		for j := 1; j < cfg.Workers; j++ {
			if workerFree[j] < workerFree[w] {
				w = j
			}
		}
		start := math.Max(arrivals[i], workerFree[w])
		img := i % ex.NumItems()
		res := sim.RunDeadline(ex, img, policies[w], cfg.DeadlineSec*1000)
		dur := res.TimeMS / 1000
		workerFree[w] = start + dur
		records = append(records, Record{
			ArrivalSec: arrivals[i],
			StartSec:   start,
			FinishSec:  start + dur,
			BusySec:    dur,
			Recall:     res.Recall,
			HasRecall:  res.HasRecall,
		})
	}
	return Summarize(records, cfg.Workers)
}

// Arrivals precomputes a Poisson arrival trace: item i arrives at the
// returned offset in seconds. The real server replays the same trace in
// scaled wall-clock time.
func Arrivals(items int, rateHz float64, seed uint64) []float64 {
	if items <= 0 || rateHz <= 0 {
		panic(fmt.Sprintf("service: invalid arrival trace %d items at %v Hz", items, rateHz))
	}
	rng := tensor.NewRNG(seed ^ 0x2545f4914f6cdd1d)
	arrivals := make([]float64, items)
	t := 0.0
	for i := range arrivals {
		t += expDraw(rng, rateHz)
		arrivals[i] = t
	}
	return arrivals
}

// expDraw samples an exponential interarrival time with the given rate.
func expDraw(rng *tensor.RNG, rate float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return -math.Log(u) / rate
}

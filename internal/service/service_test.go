package service

import (
	"testing"

	"ams/internal/labels"
	"ams/internal/oracle"
	"ams/internal/sched"
	"ams/internal/sim"
	"ams/internal/synth"
	"ams/internal/tensor"
	"ams/internal/zoo"
)

var (
	vocab = labels.NewVocabulary()
	z     = zoo.NewZoo(vocab)
	ds    = synth.NewDataset(vocab, synth.MSCOCO(), 60, 131)
	store = oracle.Build(z, ds.Scenes)
)

func randomFactory(seed uint64) PolicyFactory {
	return func(worker int) sim.Policy {
		return sched.NewRandom(z, tensor.NewRNG(seed+uint64(worker)))
	}
}

func TestRunBasicInvariants(t *testing.T) {
	cfg := Config{Workers: 2, ArrivalRateHz: 2, DeadlineSec: 1, Items: 100, Seed: 1}
	s := Run(store, randomFactory(1), cfg)
	if s.Items != 100 {
		t.Fatalf("items %d", s.Items)
	}
	if s.AvgQueueWaitSec < 0 || s.AvgLatencySec < s.AvgQueueWaitSec {
		t.Fatalf("latency accounting broken: wait %v latency %v",
			s.AvgQueueWaitSec, s.AvgLatencySec)
	}
	if s.P95LatencySec < s.AvgLatencySec*0.5 {
		t.Fatalf("p95 (%v) below half the mean (%v)?", s.P95LatencySec, s.AvgLatencySec)
	}
	if s.Utilization <= 0 || s.Utilization > 1+1e-9 {
		t.Fatalf("utilization %v out of range", s.Utilization)
	}
	if s.AvgRecall <= 0 || s.AvgRecall > 1 {
		t.Fatalf("recall %v out of range", s.AvgRecall)
	}
	if s.ThroughputHz <= 0 {
		t.Fatalf("throughput %v", s.ThroughputHz)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Workers: 2, ArrivalRateHz: 3, DeadlineSec: 0.8, Items: 60, Seed: 7}
	a := Run(store, randomFactory(7), cfg)
	b := Run(store, randomFactory(7), cfg)
	if a != b {
		t.Fatalf("same-seed runs differ:\n%+v\n%+v", a, b)
	}
}

func TestMoreWorkersCutLatencyUnderLoad(t *testing.T) {
	// At an offered load beyond one worker's capacity, adding workers must
	// reduce queueing.
	base := Config{ArrivalRateHz: 3, DeadlineSec: 1, Items: 200, Seed: 3}
	one := base
	one.Workers = 1
	four := base
	four.Workers = 4
	s1 := Run(store, randomFactory(3), one)
	s4 := Run(store, randomFactory(3), four)
	if s4.AvgLatencySec >= s1.AvgLatencySec {
		t.Fatalf("4 workers (%v) not faster than 1 (%v)", s4.AvgLatencySec, s1.AvgLatencySec)
	}
	if s4.AvgQueueWaitSec >= s1.AvgQueueWaitSec {
		t.Fatalf("4 workers wait (%v) not below 1 worker (%v)",
			s4.AvgQueueWaitSec, s1.AvgQueueWaitSec)
	}
}

func TestHigherLoadRaisesWait(t *testing.T) {
	mk := func(rate float64) Stats {
		return Run(store, randomFactory(5), Config{
			Workers: 2, ArrivalRateHz: rate, DeadlineSec: 1, Items: 200, Seed: 5,
		})
	}
	light, heavy := mk(0.5), mk(6)
	if heavy.AvgQueueWaitSec <= light.AvgQueueWaitSec {
		t.Fatalf("heavy load wait (%v) not above light (%v)",
			heavy.AvgQueueWaitSec, light.AvgQueueWaitSec)
	}
}

func TestTighterDeadlineRaisesThroughputLowersRecall(t *testing.T) {
	mk := func(deadline float64) Stats {
		return Run(store, randomFactory(9), Config{
			Workers: 1, ArrivalRateHz: 10, DeadlineSec: deadline, Items: 150, Seed: 9,
		})
	}
	tight, loose := mk(0.3), mk(2.0)
	if tight.ThroughputHz <= loose.ThroughputHz {
		t.Fatalf("tight deadline throughput (%v) not above loose (%v)",
			tight.ThroughputHz, loose.ThroughputHz)
	}
	if tight.AvgRecall >= loose.AvgRecall {
		t.Fatalf("tight deadline recall (%v) not below loose (%v)",
			tight.AvgRecall, loose.AvgRecall)
	}
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Workers: 0, ArrivalRateHz: 1, DeadlineSec: 1, Items: 10},
		{Workers: 1, ArrivalRateHz: 0, DeadlineSec: 1, Items: 10},
		{Workers: 1, ArrivalRateHz: 1, DeadlineSec: 0, Items: 10},
		{Workers: 1, ArrivalRateHz: 1, DeadlineSec: 1, Items: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v accepted", cfg)
				}
			}()
			Run(store, randomFactory(1), cfg)
		}()
	}
}

// TestSummarizeP95NearestRank pins the percentile definition: the
// nearest-rank P95 is the ceil(0.95n)-th smallest latency. The old
// floor-of-(n-1) indexing sat one rank low on small samples — most
// visibly at n=2, where it reported the minimum.
func TestSummarizeP95NearestRank(t *testing.T) {
	// records builds n completions with latencies 1..n seconds.
	records := func(n int) []Record {
		rs := make([]Record, n)
		for i := range rs {
			rs[i].FinishSec = float64(n - i) // unsorted on purpose
		}
		return rs
	}
	for _, tc := range []struct {
		n    int
		want float64
	}{
		{1, 1},      // ceil(0.95)  = rank 1
		{2, 2},      // ceil(1.9)   = rank 2: the max, never the min
		{20, 19},    // ceil(19)    = rank 19
		{100, 95},   // ceil(95)    = rank 95
		{101, 96},   // ceil(95.95) = rank 96
		{1000, 950}, // ceil(950)  = rank 950
	} {
		got := Summarize(records(tc.n), 1).P95LatencySec
		if got != tc.want {
			t.Errorf("n=%d: P95 = %v s, want rank %v", tc.n, got, tc.want)
		}
	}
}

package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v", m)
	}
	if s := Std(xs); math.Abs(s-2) > 1e-12 {
		t.Fatalf("Std = %v", s)
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Fatal("empty-input Mean/Std should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Fatalf("median = %v", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Fatalf("q25 = %v", q)
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCDFMonotone(t *testing.T) {
	xs := []float64{5, 1, 3, 3, 9, 2, 8, 7}
	c := NewCDF(xs, 20)
	if len(c.X) != 20 || len(c.P) != 20 {
		t.Fatalf("CDF size wrong")
	}
	for i := 1; i < len(c.P); i++ {
		if c.P[i] < c.P[i-1] {
			t.Fatalf("CDF not monotone at %d", i)
		}
		if c.X[i] < c.X[i-1] {
			t.Fatalf("CDF X not sorted at %d", i)
		}
	}
	if c.P[len(c.P)-1] < 1-1e-12 {
		t.Fatalf("CDF does not reach 1: %v", c.P[len(c.P)-1])
	}
}

func TestCDFProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		c := NewCDF(xs, 11)
		for i := 1; i < len(c.P); i++ {
			if c.P[i] < c.P[i-1] || c.P[i] > 1 || c.P[i] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{
		{"a", "1"},
		{"longer-name", "2.5"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	// All rows align: the value column starts at the same offset.
	idx := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[3][idx:], "2.5") {
		t.Fatalf("misaligned row: %q", lines[3])
	}
}

func TestSeriesTable(t *testing.T) {
	xs := []float64{0.5, 1.0}
	series := []Series{
		{Name: "A", Y: []float64{0.1, 0.2}},
		{Name: "B", Y: []float64{0.3}},
	}
	out := SeriesTable("deadline", xs, series, 2)
	if !strings.Contains(out, "deadline") || !strings.Contains(out, "0.30") {
		t.Fatalf("series table missing content:\n%s", out)
	}
	// Missing trailing point renders as "-".
	if !strings.Contains(out, "-") {
		t.Fatalf("short series not padded:\n%s", out)
	}
}

func TestFloat(t *testing.T) {
	if Float(1.23456, 2) != "1.23" {
		t.Fatalf("Float formatting wrong")
	}
}

// Package metrics provides the small statistics and text-formatting
// helpers the experiment harness uses to report paper-style tables and
// series: means, standard deviations, empirical CDFs, and aligned-column
// rendering.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation.
func Std(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Quantile returns the q-th empirical quantile (q in [0,1]) by linear
// interpolation. It panics on empty input or q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("metrics: quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("metrics: quantile %v out of [0,1]", q))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// CDF is an empirical cumulative distribution sampled at fixed points.
type CDF struct {
	X []float64 // sample points (ascending)
	P []float64 // P(value <= X[i])
}

// NewCDF evaluates the empirical CDF of xs at n evenly spaced points
// between min and max.
func NewCDF(xs []float64, n int) CDF {
	if len(xs) == 0 || n < 2 {
		panic("metrics: CDF needs samples and at least 2 points")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	lo, hi := s[0], s[len(s)-1]
	c := CDF{X: make([]float64, n), P: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		c.X[i] = x
		c.P[i] = float64(sort.SearchFloat64s(s, x+1e-12)) / float64(len(s))
	}
	return c
}

// Series is one named curve (a line in a paper figure).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Table renders rows of cells with aligned columns.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// SeriesTable renders several series sharing an X axis as one table with
// the X column first. All series must have the same length as xs.
func SeriesTable(xName string, xs []float64, series []Series, prec int) string {
	headers := append([]string{xName}, make([]string, len(series))...)
	for i, s := range series {
		headers[i+1] = s.Name
	}
	rows := make([][]string, len(xs))
	for r := range xs {
		row := make([]string, len(series)+1)
		row[0] = fmt.Sprintf("%.*f", prec, xs[r])
		for i, s := range series {
			if r < len(s.Y) {
				row[i+1] = fmt.Sprintf("%.*f", prec, s.Y[r])
			} else {
				row[i+1] = "-"
			}
		}
		rows[r] = row
	}
	return Table(headers, rows)
}

// Float formats a float compactly for table cells.
func Float(x float64, prec int) string { return fmt.Sprintf("%.*f", prec, x) }

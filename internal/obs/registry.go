package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// A Label is one metric dimension (model name, shard index, segment).
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label at a registration site.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Metric kinds, as exposed in Prometheus TYPE lines and snapshots.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// series is one labeled instance of a metric family: exactly one of the
// instrument pointers (c, g, h) or view funcs (cf, gf) is set.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
	cf     func() int64
	gf     func() float64
}

// family groups every series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   string
	series []*series
	byKey  map[string]*series
}

// Registry is a named-metric registry. Registration is idempotent on
// (name, labels): re-registering returns the existing instrument, so
// shards sharing a registry share fleet-wide counters while per-shard
// series stay distinct through a "shard" label. All methods are safe
// for concurrent use, and every method no-ops on a nil Registry —
// returning nil instruments — so a disabled server threads nil all the
// way down and pays only the instruments' own nil checks.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// labelKey canonicalizes a label set (sorted by key) for idempotence.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// lookup finds or creates the family and series slot for one
// registration. It panics on a kind conflict: registration happens once
// at server construction, so a clash is a programming error, not a
// runtime condition.
func (r *Registry) lookup(name, help, kind string, labels []Label) (*series, bool) {
	fam := r.byName[name]
	if fam == nil {
		fam = &family{name: name, help: help, kind: kind, byKey: make(map[string]*series)}
		r.byName[name] = fam
		r.families = append(r.families, fam)
	} else if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, fam.kind, kind))
	}
	key := labelKey(labels)
	if s := fam.byKey[key]; s != nil {
		return s, true
	}
	s := &series{labels: append([]Label(nil), labels...)}
	fam.byKey[key] = s
	fam.series = append(fam.series, s)
	return s, false
}

// Counter registers (or returns the existing) counter under name with
// the given labels. Returns nil on a nil registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, existed := r.lookup(name, help, kindCounter, labels)
	if !existed || s.c == nil {
		s.c = NewCounter()
		s.cf = nil
	}
	return s.c
}

// Gauge registers (or returns the existing) gauge. Nil on nil registry.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, existed := r.lookup(name, help, kindGauge, labels)
	if !existed || s.g == nil {
		s.g = NewGauge()
		s.gf = nil
	}
	return s.g
}

// Histogram registers (or returns the existing) histogram. Nil on nil
// registry.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, existed := r.lookup(name, help, kindHistogram, labels)
	if !existed || s.h == nil {
		s.h = NewHistogram()
	}
	return s.h
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the "view" form: existing server state (completed counts,
// accountant waits, batch stats) is exposed without double bookkeeping,
// so ServeStats and /metrics read the same source of truth. fn must be
// safe for concurrent calls. No-op on a nil registry.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.lookup(name, help, kindCounter, labels)
	s.cf = fn
	s.c = nil
}

// GaugeFunc registers a gauge read from fn at scrape time (see
// CounterFunc). No-op on a nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.lookup(name, help, kindGauge, labels)
	s.gf = fn
	s.g = nil
}

// Metric is one series' point-in-time state, JSON-ready for /statusz
// and the root package's ServeStats.Telemetry snapshot.
type Metric struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
	Count  int64             `json:"count,omitempty"`
	Sum    float64           `json:"sum,omitempty"`
	P50    float64           `json:"p50,omitempty"`
	P95    float64           `json:"p95,omitempty"`
	P99    float64           `json:"p99,omitempty"`
}

// Snapshot captures every series. Families appear sorted by name,
// series in registration order. Nil registries return nil.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	var out []Metric
	for _, fam := range r.sortedFamilies() {
		for _, s := range fam.series {
			m := Metric{Name: fam.name, Kind: fam.kind}
			if len(s.labels) > 0 {
				m.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					m.Labels[l.Key] = l.Value
				}
			}
			switch {
			case s.h != nil:
				snap := s.h.Snapshot()
				m.Count, m.Sum = snap.Count, snap.Sum
				m.P50, m.P95, m.P99 = snap.P50, snap.P95, snap.P99
				m.Value = snap.Mean()
			case s.c != nil:
				m.Value = float64(s.c.Value())
			case s.cf != nil:
				m.Value = float64(s.cf())
			case s.g != nil:
				m.Value = s.g.Value()
			case s.gf != nil:
				m.Value = s.gf()
			}
			out = append(out, m)
		}
	}
	return out
}

// sortedFamilies snapshots the family list under the lock and returns
// it sorted by name, so exposition order is deterministic regardless of
// registration order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// WritePrometheus writes the registry in Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, cumulative le-labeled
// histogram buckets, _sum and _count series. No-op on a nil registry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, fam := range r.sortedFamilies() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			fam.name, escapeHelp(fam.help), fam.name, fam.kind); err != nil {
			return err
		}
		for _, s := range fam.series {
			if err := writeSeries(w, fam, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, fam *family, s *series) error {
	switch {
	case s.h != nil:
		snap := s.h.Snapshot()
		var cum int64
		for i := 0; i < histBuckets; i++ {
			cum += snap.Buckets[i]
			le := formatBound(bucketBound(i))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				fam.name, renderLabels(s.labels, Label{"le", le}), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
			fam.name, renderLabels(s.labels), formatValue(snap.Sum),
			fam.name, renderLabels(s.labels), snap.Count); err != nil {
			return err
		}
		return nil
	case s.c != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", fam.name, renderLabels(s.labels), s.c.Value())
		return err
	case s.cf != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", fam.name, renderLabels(s.labels), s.cf())
		return err
	case s.g != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", fam.name, renderLabels(s.labels), formatValue(s.g.Value()))
		return err
	case s.gf != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", fam.name, renderLabels(s.labels), formatValue(s.gf()))
		return err
	}
	return nil
}

// renderLabels formats {k="v",...} with Prometheus escaping, or ""
// when there are no labels.
func renderLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatBound(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return formatValue(v)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

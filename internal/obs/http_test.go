package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestExporterEndToEnd(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ams_items_total", "items").Add(5)
	reg.Histogram("ams_wait_seconds", "waits").Observe(3e-6)
	tracer := NewTracer(8)
	it := tracer.Begin(0, "img-0")
	it.Add(TraceEvent{Kind: TraceSelected, Model: 2, RemainingMS: 400, AvailMemMB: 1024})
	tracer.End(it)

	exp, err := NewExporter("127.0.0.1:0", reg, tracer, func() any {
		return map[string]int{"shards": 2}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	base := "http://" + exp.Addr()

	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{"# TYPE ams_items_total counter", "ams_items_total 5", "ams_wait_seconds_count 1"} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	statusz := get("/statusz")
	for _, want := range []string{`"shards": 2`, `"ams_items_total"`} {
		if !strings.Contains(statusz, want) {
			t.Fatalf("/statusz missing %q:\n%s", want, statusz)
		}
	}
	tracez := get("/tracez")
	if !strings.Contains(tracez, `"kind": "selected"`) {
		t.Fatalf("/tracez missing events:\n%s", tracez)
	}
	byTag := get("/tracez?tag=img-0")
	if !strings.Contains(byTag, `"tag": "img-0"`) {
		t.Fatalf("/tracez?tag= lookup failed:\n%s", byTag)
	}
	pprofIdx := get("/debug/pprof/")
	if !strings.Contains(pprofIdx, "goroutine") {
		t.Fatal("/debug/pprof/ index not served")
	}

	if err := exp.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := exp.Close(); err != nil {
		t.Fatalf("second close must be safe: %v", err)
	}
	var nilExp *Exporter
	if err := nilExp.Close(); err != nil || nilExp.Addr() != "" {
		t.Fatal("nil exporter must no-op")
	}
}

package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Exporter is the opt-in HTTP exposition surface:
//
//	/metrics          Prometheus text format
//	/statusz          JSON: caller-supplied status plus a full snapshot
//	/tracez           JSON: recent span traces (?n=, ?tag=,
//	                  ?format=chrome for Perfetto / chrome://tracing)
//	/debug/pprof/...  the standard runtime profiles
//
// It owns one listener and one serve goroutine; Close shuts both down
// and does not return until the serve goroutine has exited, so a server
// embedding an Exporter stays leak-test clean.
type Exporter struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// NewExporter binds addr (host:port; :0 picks a free port) and starts
// serving. statusz, when non-nil, supplies the /statusz payload's
// "status" section and is called per request.
func NewExporter(addr string, reg *Registry, tr *Tracer, statusz func() any) (*Exporter, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		payload := struct {
			Status  any      `json:"status,omitempty"`
			Metrics []Metric `json:"metrics"`
		}{Metrics: reg.Snapshot()}
		if statusz != nil {
			payload.Status = statusz()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(payload)
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		n := 32
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v > 0 {
				n = v
			}
		}
		if r.URL.Query().Get("format") == "chrome" {
			_ = tr.WriteChrome(w, n, r.URL.Query().Get("tag"))
			return
		}
		_ = tr.WriteJSON(w, n, r.URL.Query().Get("tag"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	e := &Exporter{
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(e.done)
		_ = e.srv.Serve(ln) // returns once Close tears the listener down
	}()
	return e, nil
}

// Addr reports the bound address (useful with ":0").
func (e *Exporter) Addr() string {
	if e == nil {
		return ""
	}
	return e.ln.Addr().String()
}

// Close stops the listener, closes any active connections, and waits
// for the serve goroutine to exit. Safe on nil and idempotent.
func (e *Exporter) Close() error {
	if e == nil {
		return nil
	}
	err := e.srv.Close()
	<-e.done
	return err
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event / Perfetto JSON
// format (the `traceEvents` array): complete slices (ph "X"), metadata
// (ph "M"), instants (ph "i"), and flow arrows (ph "s"/"f").
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"` // microseconds, absolute
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"` // flow binding point
	S    string         `json:"s,omitempty"`  // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the top-level object Perfetto and chrome://tracing load.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// batchLanePid maps a shard to the synthetic process its batch lanes
// render under (one row per model), keeping coalesced executions
// visually separate from per-item threads.
func batchLanePid(shard int) int { return 1000 + shard }

// WriteChrome exports up to n recent traces (optionally one tag) as
// Chrome trace-event JSON — the /tracez?format=chrome and amsserve
// -trace-out payload, loadable in Perfetto / chrome://tracing.
//
// Layout: pid = shard, tid = trace sequence (one thread per item), one
// "X" slice per span. Stolen items draw a flow arrow from the victim
// shard's "stolen" instant to the thief's root slice. Batched
// executions are synthesized as one slice per batch id on the shard's
// batch-lane process (tid = model), with a flow arrow converging from
// every waiter's exec span — the fan-in of N waiters into one
// execution. Works on a nil tracer (empty traceEvents array).
func (t *Tracer) WriteChrome(w io.Writer, n int, tag string) error {
	var traces []ItemTrace
	if tag != "" {
		if tr, ok := t.ByTag(tag); ok {
			traces = []ItemTrace{tr}
		}
	} else {
		traces = t.Recent(n)
	}
	doc := chromeDoc{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	emit := func(ev chromeEvent) { doc.TraceEvents = append(doc.TraceEvents, ev) }

	seenPid := map[int]bool{}
	process := func(pid int, name string) {
		if seenPid[pid] {
			return
		}
		seenPid[pid] = true
		emit(chromeEvent{Name: "process_name", Ph: "M", Pid: pid, Args: map[string]any{"name": name}})
	}

	// Batched executions grouped by batch id, synthesized after the
	// per-item pass so one slice represents all N waiters.
	type batchRun struct {
		shard, model, n  int
		firstTS, lastEnd int64
		waiters          int
		note             string
	}
	batches := map[int64]*batchRun{}

	for _, tr := range traces {
		if len(tr.Spans) == 0 {
			continue
		}
		process(tr.Shard, fmt.Sprintf("shard-%d", tr.Shard))
		threadName := tr.Tag
		if threadName == "" {
			threadName = fmt.Sprintf("item-%d", tr.Item)
		}
		emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: tr.Shard, Tid: tr.Seq,
			Args: map[string]any{"name": threadName}})
		rootTS := tr.BeginUnixUS + tr.Spans[0].StartUS
		for _, sp := range tr.Spans {
			name := sp.Name
			if mn := t.modelName(sp.Model); mn != "" {
				name = sp.Name + " " + mn
			}
			args := map[string]any{
				"vstart_ms": sp.VStartMS,
				"vend_ms":   sp.VEndMS,
			}
			if sp.Model >= 0 {
				args["model"] = sp.Model
			}
			if sp.Note != "" {
				args["note"] = sp.Note
			}
			if sp.Batch != 0 {
				args["batch"] = sp.Batch
				args["batch_n"] = sp.BatchN
			}
			ts := tr.BeginUnixUS + sp.StartUS
			dur := sp.EndUS - sp.StartUS
			if dur < 1 {
				dur = 1
			}
			emit(chromeEvent{Name: name, Cat: "span", Ph: "X", TS: ts, Dur: dur,
				Pid: tr.Shard, Tid: tr.Seq, Args: args})
			if sp.Batch != 0 && sp.Name == SpanExec {
				br := batches[sp.Batch]
				if br == nil {
					br = &batchRun{shard: tr.Shard, model: sp.Model, n: sp.BatchN,
						firstTS: ts, lastEnd: ts + dur, note: sp.Note}
					batches[sp.Batch] = br
				}
				if ts < br.firstTS {
					br.firstTS = ts
				}
				if ts+dur > br.lastEnd {
					br.lastEnd = ts + dur
				}
				br.waiters++
				// Flow arrow: this waiter's exec span → the batch slice.
				id := fmt.Sprintf("b%d-%d", sp.Batch, tr.Seq)
				emit(chromeEvent{Name: "batch-fan-in", Cat: "batch", Ph: "s", ID: id,
					TS: ts, Pid: tr.Shard, Tid: tr.Seq})
				emit(chromeEvent{Name: "batch-fan-in", Cat: "batch", Ph: "f", BP: "e", ID: id,
					TS: ts + 1, Pid: batchLanePid(tr.Shard), Tid: int64(sp.Model)})
			}
			for _, ln := range sp.Links {
				if ln.Kind != "steal" {
					continue
				}
				// Victim shard's instant + flow arrow into the thief's
				// root slice: the cross-shard causality of a steal.
				process(ln.From, fmt.Sprintf("shard-%d", ln.From))
				id := fmt.Sprintf("steal-%d", tr.Seq)
				emit(chromeEvent{Name: "stolen", Cat: "steal", Ph: "i", S: "p",
					TS: rootTS, Pid: ln.From, Tid: tr.Seq})
				emit(chromeEvent{Name: "steal", Cat: "steal", Ph: "s", ID: id,
					TS: rootTS, Pid: ln.From, Tid: tr.Seq})
				emit(chromeEvent{Name: "steal", Cat: "steal", Ph: "f", BP: "e", ID: id,
					TS: rootTS + 1, Pid: ln.To, Tid: tr.Seq})
			}
		}
	}
	ids := make([]int64, 0, len(batches))
	for id := range batches {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		br := batches[id]
		process(batchLanePid(br.shard), fmt.Sprintf("batch-lanes shard-%d", br.shard))
		name := fmt.Sprintf("batch-exec b%d ×%d", id, br.n)
		if mn := t.modelName(br.model); mn != "" {
			name = fmt.Sprintf("batch-exec %s b%d ×%d", mn, id, br.n)
		}
		dur := br.lastEnd - br.firstTS
		if dur < 1 {
			dur = 1
		}
		emit(chromeEvent{Name: name, Cat: "batch", Ph: "X", TS: br.firstTS, Dur: dur,
			Pid: batchLanePid(br.shard), Tid: int64(br.model),
			Args: map[string]any{"batch": id, "batch_n": br.n, "waiters_traced": br.waiters, "note": br.note}})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

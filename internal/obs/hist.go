package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// The bucket layout: geometric, base one microsecond, doubling. Bucket
// i holds observations v (in seconds) with v <= bucketBase * 2^i; the
// final bucket catches everything larger. The span — 1 µs to ~18
// minutes — covers every latency this stack produces, from a cached
// Q-prediction lookup to a pathological fsync, at a fixed 31 atomics
// per histogram.
const (
	bucketBase  = 1e-6
	histBuckets = 31 // 30 geometric bounds + overflow
)

// bucketBound returns bucket i's inclusive upper bound in seconds
// (+Inf for the overflow bucket).
func bucketBound(i int) float64 {
	if i >= histBuckets-1 {
		return math.Inf(1)
	}
	return bucketBase * float64(uint64(1)<<uint(i))
}

// Histogram is a concurrency-safe log-bucketed histogram of seconds.
// Observe is wait-free (one atomic add per bucket plus a CAS loop on
// the sum); Snapshot is approximate under concurrent writes — counters
// are read one at a time — which is fine for monitoring and exact once
// writers quiesce. The zero value is ready; a nil Histogram is a no-op.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	sumBits atomic.Uint64
	count   atomic.Int64
}

// NewHistogram returns a fresh histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one value in seconds (no-op on nil; negative and NaN
// observations are dropped rather than corrupting the sum).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) || v < 0 {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, floatBits(bitsFloat(old)+v)) {
			break
		}
	}
	h.count.Add(1)
}

// ObserveSince records the real seconds elapsed since t0 — the
// vtime-aware span helper: no-op when h is nil or t0 is the zero time
// Started hands out for disabled instruments.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil || t0.IsZero() {
		return
	}
	h.Observe(SinceSeconds(t0))
}

// ObserveScaledSince records the span since t0 converted onto the
// simulated clock: real seconds divided by scale (the server's
// TimeScale), so a histogram of queue waits or batch holds reads in
// the same simulated seconds as ServeStats. No-op when h is nil, t0 is
// zero, or scale is not positive.
func (h *Histogram) ObserveScaledSince(t0 time.Time, scale float64) {
	if h == nil || t0.IsZero() || scale <= 0 {
		return
	}
	h.Observe(SinceSeconds(t0) / scale)
}

// bucketIndex maps v (seconds) to its bucket.
func bucketIndex(v float64) int {
	if v <= bucketBase {
		return 0
	}
	i := int(math.Ceil(math.Log2(v / bucketBase)))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Count returns the number of observations so far (0 on nil) — cheap
// enough for poll-rate trigger sampling.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile returns the current q-quantile estimate (the containing
// bucket's upper bound, like Snapshot's P50/P95/P99 but for an
// arbitrary q). 0 on nil or empty histograms — the SLO layer's
// current-value view.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	var buckets [histBuckets]int64
	var total int64
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
		total += buckets[i]
	}
	return quantileBound(buckets[:], total, q)
}

// HistSnapshot is a point-in-time view of a histogram.
type HistSnapshot struct {
	Count   int64
	Sum     float64 // seconds
	Buckets [histBuckets]int64
	P50     float64
	P95     float64
	P99     float64
}

// Mean returns Sum/Count (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Snapshot captures the histogram's current state with p50/p95/p99
// estimates. Quantiles resolve to the upper bound of the bucket the
// nearest-rank falls in, so for any one snapshot p50 <= p95 <= p99 by
// construction. The zero snapshot is returned for a nil histogram.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	s.Sum = bitsFloat(h.sumBits.Load())
	s.P50 = quantileBound(s.Buckets[:], s.Count, 0.50)
	s.P95 = quantileBound(s.Buckets[:], s.Count, 0.95)
	s.P99 = quantileBound(s.Buckets[:], s.Count, 0.99)
	return s
}

// quantileBound returns the upper bound of the bucket containing the
// nearest-rank q-quantile (0 when empty). The overflow bucket reports
// its lower bound — the largest finite bound — rather than +Inf, so a
// dashboard never renders an infinite latency.
func quantileBound(buckets []int64, total int64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, n := range buckets {
		seen += n
		if seen >= rank {
			if i == len(buckets)-1 {
				return bucketBound(i - 1)
			}
			return bucketBound(i)
		}
	}
	return bucketBound(len(buckets) - 2)
}

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

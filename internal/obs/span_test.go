package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTracerRecentOrdering: newest-first order must hold in all three
// ring states — partially filled, exactly full, and wrapped.
func TestTracerRecentOrdering(t *testing.T) {
	publish := func(tr *Tracer, n int) {
		for i := 0; i < n; i++ {
			it := tr.Begin(i, fmt.Sprintf("it-%d", i))
			tr.End(it)
		}
	}
	check := func(tr *Tracer, want ...int) {
		t.Helper()
		got := tr.Recent(100)
		if len(got) != len(want) {
			t.Fatalf("Recent returned %d traces, want %d", len(got), len(want))
		}
		for i, w := range want {
			if got[i].Item != w {
				t.Fatalf("Recent[%d].Item = %d, want %d", i, got[i].Item, w)
			}
		}
	}
	partial := NewTracer(4)
	publish(partial, 3)
	check(partial, 2, 1, 0)

	full := NewTracer(4)
	publish(full, 4)
	check(full, 3, 2, 1, 0)

	wrapped := NewTracer(4)
	publish(wrapped, 7) // overwrites items 0..2
	check(wrapped, 6, 5, 4, 3)
	if wrapped.Evicted() != 3 {
		t.Fatalf("evicted = %d, want 3", wrapped.Evicted())
	}
	// n smaller than residency truncates from the newest end.
	if got := wrapped.Recent(2); len(got) != 2 || got[0].Item != 6 || got[1].Item != 5 {
		t.Fatalf("Recent(2) = %v", got)
	}
}

// TestTracerByTagNewest: duplicate tags resolve to the most recently
// published trace, across a wraparound.
func TestTracerByTagNewest(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		it := tr.Begin(i, "dup")
		tr.End(it)
	}
	got, ok := tr.ByTag("dup")
	if !ok || got.Item != 4 {
		t.Fatalf("ByTag(dup): ok=%v item=%d, want the newest (4)", ok, got.Item)
	}
	if _, ok := tr.ByTag("absent"); ok {
		t.Fatal("ByTag must miss on an unknown tag")
	}
}

// TestTracerConcurrentAccess hammers Begin/End against Recent, ByTag
// and WriteJSON — the /tracez handler reads while workers publish.
// Run with -race.
func TestTracerConcurrentAccess(t *testing.T) {
	tr := NewTracer(8)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tr.Recent(4)
			tr.ByTag("w1-3")
			tr.WriteJSON(&strings.Builder{}, 4, "")
		}
	}()
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				it := tr.Begin(i, fmt.Sprintf("w%d-%d", g, i))
				it.Root(time.Now())
				id := it.StartSpan(SpanExec, 0, 1)
				it.EndSpan(id)
				tr.End(it)
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if tr.Total() != 800 {
		t.Fatalf("total = %d, want 800", tr.Total())
	}
}

// TestWriteJSONNil: the nil tracer must still produce a valid (empty)
// JSON array — the /tracez contract with telemetry off.
func TestWriteJSONNil(t *testing.T) {
	var tr *Tracer
	var sb strings.Builder
	if err := tr.WriteJSON(&sb, 10, ""); err != nil {
		t.Fatal(err)
	}
	var arr []any
	if err := json.Unmarshal([]byte(sb.String()), &arr); err != nil || len(arr) != 0 {
		t.Fatalf("nil tracer JSON = %q, want []", sb.String())
	}
	sb.Reset()
	if err := tr.WriteChrome(&sb, 10, ""); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("nil tracer chrome doc unparseable: %v", err)
	}
	if evs, ok := doc["traceEvents"].([]any); !ok || len(evs) != 0 {
		t.Fatalf("nil tracer chrome = %v, want empty traceEvents", doc)
	}
}

// TestSpanTreeOffsets: spans measure both clocks from the arrival
// origin, and Tracer.End closes whatever is still open.
func TestSpanTreeOffsets(t *testing.T) {
	tr := NewTracer(2)
	tr.SetTimeScale(0.001) // 1 real ms = 1 simulated s
	it := tr.Begin(7, "img-7")
	arrival := time.Now().Add(-10 * time.Millisecond)
	root := it.Root(arrival)
	if root != 0 {
		t.Fatalf("root id = %d, want 0", root)
	}
	if again := it.Root(arrival.Add(time.Hour)); again != 0 {
		t.Fatalf("Root must be idempotent, got %d", again)
	}
	id := it.SpanBetween(SpanQueueWait, root, -1, arrival, arrival.Add(4*time.Millisecond))
	if id != 1 {
		t.Fatalf("child id = %d, want 1", id)
	}
	open := it.StartSpan(SpanExec, root, 2)
	tr.End(it) // closes root and the open exec span
	got, ok := tr.ByTag("img-7")
	if !ok {
		t.Fatal("trace not published")
	}
	qw := got.Spans[1]
	if qw.StartUS != 0 || qw.EndUS < 3500 || qw.EndUS > 4500 {
		t.Fatalf("queue-wait offsets [%d, %d]us, want [0, ~4000]", qw.StartUS, qw.EndUS)
	}
	// Virtual clock: 4 wall ms ÷ 0.001 = 4000 simulated ms.
	if qw.VEndMS < 3500 || qw.VEndMS > 4500 {
		t.Fatalf("queue-wait vend = %g ms, want ~4000", qw.VEndMS)
	}
	for _, sp := range []Span{got.Spans[0], got.Spans[open]} {
		if sp.EndUS < 0 || sp.EndUS < sp.StartUS {
			t.Fatalf("End must close open span %q: [%d, %d]", sp.Name, sp.StartUS, sp.EndUS)
		}
	}
}

// TestSpanCap: past maxTraceSpans the trace counts drops, returns -1
// ids, and EndSpan on a -1 id stays safe.
func TestSpanCap(t *testing.T) {
	tr := NewTracer(1)
	it := tr.Begin(0, "big")
	it.Root(time.Now())
	var last int
	for i := 0; i < maxTraceSpans+5; i++ {
		last = it.StartSpan(SpanSelect, 0, -1)
		it.EndSpan(last)
	}
	if last != -1 {
		t.Fatalf("capped StartSpan = %d, want -1", last)
	}
	if it.DroppedSpans != 6 { // root consumed one slot
		t.Fatalf("dropped spans = %d, want 6", it.DroppedSpans)
	}
	tr.End(it)
	if tr.DroppedTotal() != 6 {
		t.Fatalf("tracer dropped total = %d, want 6", tr.DroppedTotal())
	}
}

// TestCriticalPathAttribution checks the sweep-line rules: the
// latest-started covering child wins each sub-interval, uncovered root
// time becomes "other", and stages aggregate then sort by wall time.
func TestCriticalPathAttribution(t *testing.T) {
	trace := ItemTrace{Scale: 1, Spans: []Span{
		{ID: 0, Parent: -1, Name: SpanItem, Model: -1, StartUS: 0, EndUS: 1000},
		{ID: 1, Parent: 0, Name: SpanQueueWait, Model: -1, StartUS: 0, EndUS: 100},
		{ID: 2, Parent: 0, Name: SpanExec, Model: 3, StartUS: 100, EndUS: 600},
		{ID: 3, Parent: 0, Name: SpanReserveWait, Model: 3, StartUS: 200, EndUS: 400},
		{ID: 4, Parent: 0, Name: SpanCommit, Model: -1, StartUS: 600, EndUS: 900},
	}}
	stages := CriticalPath(trace)
	got := map[string]int64{}
	var total int64
	for _, st := range stages {
		got[st.Name] += st.WallUS
		total += st.WallUS
	}
	want := map[string]int64{
		SpanQueueWait:   100,
		SpanExec:        300, // 100–200 and 400–600; reserve-wait owns 200–400
		SpanReserveWait: 200,
		SpanCommit:      300,
		SpanOther:       100, // 900–1000: no child covers the tail
	}
	for name, us := range want {
		if got[name] != us {
			t.Fatalf("stage %q = %dus, want %dus (all: %v)", name, got[name], us, got)
		}
	}
	if total != 1000 {
		t.Fatalf("attribution must conserve the root: total %dus, want 1000", total)
	}
	for i := 1; i < len(stages); i++ {
		if stages[i].WallUS > stages[i-1].WallUS {
			t.Fatal("stages must sort by descending wall time")
		}
	}
	var fracs float64
	for _, st := range stages {
		fracs += st.Frac
	}
	if fracs < 0.999 || fracs > 1.001 {
		t.Fatalf("fractions sum to %g, want 1", fracs)
	}
	if CriticalPath(ItemTrace{}) != nil {
		t.Fatal("no spans must yield a nil critical path")
	}
}

// TestChromeExportShape: slices carry the required trace-event keys,
// steals draw an instant + flow pair from the victim, and batched execs
// synthesize one fan-in slice on the batch-lane process.
func TestChromeExportShape(t *testing.T) {
	tr := NewTracer(4)
	tr.SetModelNames([]string{"m0", "m1"})
	tr.NoteSteal("stolen-item", 0, 1)
	batch := NextBatchID()
	for i := 0; i < 2; i++ {
		tag := "plain-item"
		if i == 1 {
			tag = "stolen-item"
		}
		it := tr.Begin(i, tag)
		it.SetShard(1)
		root := it.Root(time.Now().Add(-time.Millisecond))
		exec := it.StartSpan(SpanExec, root, 1)
		it.AnnotateBatch(exec, batch, 2, "size")
		it.EndSpan(exec)
		tr.End(it)
	}
	var sb strings.Builder
	if err := tr.WriteChrome(&sb, 10, ""); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("chrome doc unparseable: %v", err)
	}
	var slices, stealFlows, batchSlices int
	for _, ev := range doc.TraceEvents {
		for _, key := range []string{"ph", "ts", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event missing %q: %v", key, ev)
			}
		}
		name, _ := ev["name"].(string)
		switch {
		case ev["ph"] == "X" && strings.HasPrefix(name, "batch-exec"):
			batchSlices++
			if pid := int(ev["pid"].(float64)); pid != batchLanePid(1) {
				t.Fatalf("batch slice on pid %d, want %d", pid, batchLanePid(1))
			}
		case ev["ph"] == "X":
			slices++
		case ev["cat"] == "steal" && (ev["ph"] == "s" || ev["ph"] == "f"):
			stealFlows++
		}
	}
	if slices < 4 { // 2 traces × (root + exec)
		t.Fatalf("want ≥4 span slices, got %d", slices)
	}
	if stealFlows != 2 {
		t.Fatalf("want one steal flow pair, got %d arrows", stealFlows)
	}
	if batchSlices != 1 {
		t.Fatalf("want one synthesized batch-exec slice, got %d", batchSlices)
	}
}

// TestStealProvenance: a noted steal is consumed by the next Begin with
// that tag — once — and marks Home/Shard; SetShard then must not
// clobber the victim Home.
func TestStealProvenance(t *testing.T) {
	tr := NewTracer(2)
	tr.NoteSteal("tag-a", 2, 0)
	it := tr.Begin(1, "tag-a")
	if !it.Stolen || it.Home != 2 || it.Shard != 0 {
		t.Fatalf("steal note not adopted: %+v", it)
	}
	it.SetShard(0)
	if it.Home != 2 {
		t.Fatal("SetShard must preserve the stolen Home")
	}
	it.Root(time.Now())
	if len(it.Spans[0].Links) != 1 || it.Spans[0].Links[0].From != 2 || it.Spans[0].Links[0].To != 0 {
		t.Fatalf("root steal link wrong: %+v", it.Spans[0].Links)
	}
	if again := tr.Begin(1, "tag-a"); again.Stolen {
		t.Fatal("a steal note must be consumed exactly once")
	}
}

// TestSLOBurnRate drives the virtual clock by hand: burn is the
// windowed bad fraction over the error budget, and slots age out once
// the clock moves a full window past them.
func TestSLOBurnRate(t *testing.T) {
	now := 0.0
	s := NewSLO("p99", 0.25, 0.99, func() float64 { return now }, 300, 3600)
	for i := 0; i < 90; i++ {
		s.Observe(0.1) // good
	}
	for i := 0; i < 10; i++ {
		s.Observe(0.9) // bad
	}
	if s.Good() != 90 || s.Bad() != 10 {
		t.Fatalf("good/bad = %d/%d, want 90/10", s.Good(), s.Bad())
	}
	// 10% bad over a 1% budget: burn 10× in both windows.
	for _, w := range []float64{300, 3600} {
		if burn := s.BurnRate(w); burn < 9.99 || burn > 10.01 {
			t.Fatalf("burn(%gs) = %g, want 10", w, burn)
		}
	}
	if s.BurnRate(42) != 0 {
		t.Fatal("unknown window must report 0")
	}
	// Advance past the fast window: its slots age out, the slow window
	// still remembers.
	now = 600
	s.Observe(0.1)
	if burn := s.BurnRate(300); burn != 0 {
		t.Fatalf("aged fast-window burn = %g, want 0", burn)
	}
	if burn := s.BurnRate(3600); burn <= 0 {
		t.Fatalf("slow-window burn = %g, want > 0", burn)
	}
	var nilSLO *SLO
	nilSLO.Observe(1)
	if nilSLO.BurnRate(300) != 0 || nilSLO.Good() != 0 || nilSLO.Bad() != 0 || nilSLO.Windows() != nil {
		t.Fatal("nil SLO must no-op")
	}
}

// TestSLOViews: the ams_slo_* family renders with the slo label and one
// burn gauge per window.
func TestSLOViews(t *testing.T) {
	s := NewSLO("deadline", 0.5, 0.95, nil)
	s.Observe(0.1)
	s.Observe(0.9)
	reg := NewRegistry()
	s.RegisterViews(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`ams_slo_good_total{slo="deadline"} 1`,
		`ams_slo_bad_total{slo="deadline"} 1`,
		`ams_slo_threshold_seconds{slo="deadline"} 0.5`,
		`ams_slo_target{slo="deadline"} 0.95`,
		`ams_slo_burn_rate{slo="deadline",window="300s"}`,
		`ams_slo_burn_rate{slo="deadline",window="3600s"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, text)
		}
	}
}

// TestRateTrigger: the first sample is only a baseline; a later jump
// over the per-second limit fires with a human-readable detail.
func TestRateTrigger(t *testing.T) {
	var v int64
	fire := RateTrigger(func() int64 { return v }, 5)
	if fired, _ := fire(); fired {
		t.Fatal("baseline poll must not fire")
	}
	v += 1000
	time.Sleep(10 * time.Millisecond)
	fired, detail := fire()
	if !fired || !strings.Contains(detail, "over limit 5/s") {
		t.Fatalf("jump should fire: fired=%v detail=%q", fired, detail)
	}
	time.Sleep(10 * time.Millisecond)
	if fired, _ := fire(); fired {
		t.Fatal("flat counter must not fire again")
	}
	if fired, _ := ThresholdTrigger(func() float64 { return 7 }, 8)(); fired {
		t.Fatal("threshold under limit must not fire")
	}
	if fired, _ := ThresholdTrigger(func() float64 { return 9 }, 8)(); !fired {
		t.Fatal("threshold over limit must fire")
	}
}

// TestFlightRecorder: a fired trigger produces exactly one parseable
// bundle per cooldown; Close is idempotent and performs the final
// shutdown poll; the nil recorder no-ops.
func TestFlightRecorder(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	reg.Counter("ams_x_total", "x").Add(3)
	tr := NewTracer(4)
	it := tr.Begin(0, "t0")
	it.Root(time.Now())
	tr.End(it)

	fr := NewFlightRecorder(dir, reg, tr)
	fr.SetIntervals(5*time.Millisecond, time.Hour) // one dump max
	var armed atomic.Bool
	fr.AddTrigger("shed-storm", func() (bool, string) { return armed.Load(), "rate 41.2/s" })
	fr.Start()
	fr.Start() // idempotent
	armed.Store(true)
	deadline := time.Now().Add(2 * time.Second)
	for fr.Dumps() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}
	if fr.Dumps() != 1 {
		t.Fatalf("dumps = %d, want exactly 1 (cooldown)", fr.Dumps())
	}
	matches, err := filepath.Glob(filepath.Join(dir, "flight-*-shed-storm.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("bundle files = %v (err %v), want 1", matches, err)
	}
	raw, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	var b FlightBundle
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatalf("bundle unparseable: %v", err)
	}
	if b.Trigger != "shed-storm" || b.Detail != "rate 41.2/s" {
		t.Fatalf("bundle header wrong: %+v", b)
	}
	if len(b.Metrics) == 0 || len(b.Traces) != 1 {
		t.Fatalf("bundle payload wrong: %d metrics, %d traces", len(b.Metrics), len(b.Traces))
	}

	var nilFR *FlightRecorder
	nilFR.AddTrigger("x", nil)
	nilFR.Start()
	if p, err := nilFR.Snapshot("x", ""); err != nil || p != "" {
		t.Fatal("nil recorder Snapshot must no-op")
	}
	if err := nilFR.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFlightRecorderShutdownPoll: an anomaly that becomes detectable
// only at shutdown is still captured by Close's final poll.
func TestFlightRecorderShutdownPoll(t *testing.T) {
	dir := t.TempDir()
	fr := NewFlightRecorder(dir, NewRegistry(), NewTracer(2))
	fr.SetIntervals(time.Hour, time.Hour) // the ticker never fires
	fr.AddTrigger("deadline-burn", func() (bool, string) { return true, "burn 12" })
	fr.Start()
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}
	if fr.Dumps() != 1 {
		t.Fatalf("shutdown poll did not capture the live anomaly: dumps = %d", fr.Dumps())
	}
}

package obs

import (
	"encoding/json"
	"io"
	"math"
	"sync"
	"time"
)

// maxTraceEvents bounds one item's event list so a pathological
// schedule (many memory stalls) cannot grow a trace without limit;
// overflow is counted, not silently dropped.
const maxTraceEvents = 64

// Trace event kinds. The serve layer records these around — never
// inside — the policy, so tracing can't perturb scheduling.
const (
	TraceSelected = "selected"            // policy picked a model
	TraceSkipped  = "skipped-over-budget" // policy declined with work remaining
	TraceMemStall = "mem-stall"           // waiting for memory to free before retrying
	TraceBatched  = "deferred-to-batch"   // execution handed to a batch lane
	TraceExec     = "exec"                // direct (unbatched) execution
	TraceCommit   = "commit"              // schedule finalized
)

// A TraceEvent is one structured scheduling decision with the
// constraint values the policy saw at decision time. An unbounded
// constraint (no deadline, no memory budget — +Inf inside the
// scheduler) records as -1: encoding/json rejects non-finite values,
// and every trace consumer (/tracez, flight bundles) marshals events.
type TraceEvent struct {
	Kind        string  `json:"kind"`
	Model       int     `json:"model"`            // -1 when not model-specific
	RemainingMS float64 `json:"remaining_ms"`     // deadline budget left; -1 = unbounded
	AvailMemMB  float64 `json:"avail_mem_mb"`     // accountant headroom; -1 = unbounded
	Queued      int     `json:"queued,omitempty"` // batch-lane occupancy
	Note        string  `json:"note,omitempty"`   // e.g. "deadline", "memory"
}

// An ItemTrace accumulates one item's decision events and lifecycle
// spans. It is built by a single worker goroutine and published to the
// Tracer's ring at finish; a nil ItemTrace (tracing disabled) no-ops
// every method.
type ItemTrace struct {
	Item    int          `json:"item"`
	Tag     string       `json:"tag,omitempty"`
	Seq     int64        `json:"seq"`
	Events  []TraceEvent `json:"events"`
	Dropped int          `json:"dropped_events,omitempty"`

	// Span-tree fields (see span.go). Shard is the shard that executed
	// the item; Home is where the router first placed it — they differ
	// exactly when the item was stolen, and the root span then carries
	// a victim→thief causality link.
	Shard        int     `json:"shard"`
	Home         int     `json:"home"`
	Stolen       bool    `json:"stolen,omitempty"`
	BeginUnixUS  int64   `json:"begin_unix_us,omitempty"`
	Scale        float64 `json:"time_scale,omitempty"`
	Spans        []Span  `json:"spans,omitempty"`
	DroppedSpans int     `json:"dropped_spans,omitempty"`

	// origin is the wall-clock zero every span offset is measured from
	// (the item's arrival); it survives the by-value publish into the
	// ring but is deliberately kept out of the JSON payload.
	origin time.Time
}

// Add appends one event (no-op on nil; counts overflow past the cap).
func (t *ItemTrace) Add(ev TraceEvent) {
	if t == nil {
		return
	}
	if len(t.Events) >= maxTraceEvents {
		t.Dropped++
		return
	}
	if math.IsInf(ev.RemainingMS, 0) || math.IsNaN(ev.RemainingMS) {
		ev.RemainingMS = -1
	}
	if math.IsInf(ev.AvailMemMB, 0) || math.IsNaN(ev.AvailMemMB) {
		ev.AvailMemMB = -1
	}
	t.Events = append(t.Events, ev)
}

// maxPendingSteals bounds the steal-provenance map so a storm of stolen
// tickets whose traces never Begin (e.g. context-cancelled mid-flight)
// cannot grow it without limit.
const maxPendingSteals = 1024

// stealNote is pending provenance for one stolen ticket, keyed by tag
// until the thief shard Begins the item's trace.
type stealNote struct {
	victim int
	thief  int
}

// Tracer is a bounded ring of completed item traces. Begin hands out a
// fresh ItemTrace, End publishes it; the ring keeps the most recent
// `capacity` traces for /tracez and per-ticket retrieval. A nil Tracer
// no-ops everything and Begins nil ItemTraces.
type Tracer struct {
	mu      sync.Mutex
	ring    []ItemTrace
	next    int
	seq     int64
	total   int64
	evicted int64 // ring overwrites: traces lost to capacity
	dropped int64 // events+spans dropped inside published traces
	scale   float64
	models  []string
	steals  map[string]stealNote
}

// NewTracer returns a tracer retaining the most recent capacity traces
// (a small default is applied when capacity is not positive).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracer{ring: make([]ItemTrace, 0, capacity), scale: 1}
}

// SetTimeScale tells the tracer the server's TimeScale so span virtual
// clocks (wall elapsed ÷ scale) read in simulated time. Call before
// serving; no-op on nil or non-positive scale.
func (t *Tracer) SetTimeScale(scale float64) {
	if t == nil || scale <= 0 {
		return
	}
	t.mu.Lock()
	t.scale = scale
	t.mu.Unlock()
}

// SetModelNames supplies human-readable model names for trace exports
// (Chrome span titles); index = model id. No-op on nil.
func (t *Tracer) SetModelNames(names []string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.models = append([]string(nil), names...)
	t.mu.Unlock()
}

// modelName renders a model id for export payloads.
func (t *Tracer) modelName(m int) string {
	if t == nil || m < 0 {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if m < len(t.models) {
		return t.models[m]
	}
	return ""
}

// NoteSteal records steal provenance for a ticket about to be executed
// by a thief shard: the next Begin carrying tag adopts it as a
// victim→thief causality link on its root span. The router calls this
// before handing the ticket to the thief's serve loop, so the channel
// handoff orders it before Begin. No-op on nil tracer or empty tag.
func (t *Tracer) NoteSteal(tag string, victim, thief int) {
	if t == nil || tag == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.steals == nil {
		t.steals = make(map[string]stealNote)
	}
	if len(t.steals) >= maxPendingSteals {
		return
	}
	t.steals[tag] = stealNote{victim: victim, thief: thief}
}

// Begin starts a trace for one item (nil when the tracer is nil). A
// pending steal note for tag is consumed into the trace's provenance
// fields.
func (t *Tracer) Begin(item int, tag string) *ItemTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.seq++
	seq := t.seq
	scale := t.scale
	note, stolen := t.steals[tag]
	if stolen {
		delete(t.steals, tag)
	}
	t.mu.Unlock()
	tr := &ItemTrace{Item: item, Tag: tag, Seq: seq, Scale: scale, Events: make([]TraceEvent, 0, 8)}
	if stolen {
		tr.Stolen = true
		tr.Home = note.victim
		tr.Shard = note.thief
	}
	return tr
}

// End publishes a completed trace into the ring (no-op when either side
// is nil). Any still-open spans — the root span in particular — are
// closed at the publish instant.
func (t *Tracer) End(tr *ItemTrace) {
	if t == nil || tr == nil {
		return
	}
	tr.closeOpenSpans()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	t.dropped += int64(tr.Dropped + tr.DroppedSpans)
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, *tr)
		return
	}
	t.evicted++
	t.ring[t.next] = *tr
	t.next = (t.next + 1) % len(t.ring)
}

// Evicted reports how many published traces have been overwritten by
// ring wraparound — silent trace loss made visible (0 on nil).
func (t *Tracer) Evicted() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

// DroppedTotal reports the cumulative events and spans dropped to the
// per-trace caps across all published traces (0 on nil).
func (t *Tracer) DroppedTotal() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Capacity reports the ring's trace capacity (0 on nil).
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return cap(t.ring)
}

// Total reports how many traces have been published over the tracer's
// lifetime (not just those still resident).
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Recent returns up to n resident traces, newest first.
func (t *Tracer) Recent(n int) []ItemTrace {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]ItemTrace, 0, min(n, len(t.ring)))
	for i := 0; i < len(t.ring) && len(out) < n; i++ {
		// Walk backwards from the most recently written slot.
		idx := (t.next - 1 - i + 2*len(t.ring)) % len(t.ring)
		out = append(out, t.ring[idx])
	}
	return out
}

// ByTag returns the most recent resident trace carrying tag.
func (t *Tracer) ByTag(tag string) (ItemTrace, bool) {
	if t == nil {
		return ItemTrace{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 0; i < len(t.ring); i++ {
		idx := (t.next - 1 - i + 2*len(t.ring)) % len(t.ring)
		if t.ring[idx].Tag == tag {
			return t.ring[idx], true
		}
	}
	return ItemTrace{}, false
}

// WriteJSON dumps up to n recent traces (optionally filtered to one
// tag) as an indented JSON array — the /tracez payload.
func (t *Tracer) WriteJSON(w io.Writer, n int, tag string) error {
	var traces []ItemTrace
	if tag != "" {
		if tr, ok := t.ByTag(tag); ok {
			traces = []ItemTrace{tr}
		}
	} else {
		traces = t.Recent(n)
	}
	if traces == nil {
		traces = []ItemTrace{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(traces)
}

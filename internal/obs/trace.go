package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// maxTraceEvents bounds one item's event list so a pathological
// schedule (many memory stalls) cannot grow a trace without limit;
// overflow is counted, not silently dropped.
const maxTraceEvents = 64

// Trace event kinds. The serve layer records these around — never
// inside — the policy, so tracing can't perturb scheduling.
const (
	TraceSelected = "selected"            // policy picked a model
	TraceSkipped  = "skipped-over-budget" // policy declined with work remaining
	TraceMemStall = "mem-stall"           // waiting for memory to free before retrying
	TraceBatched  = "deferred-to-batch"   // execution handed to a batch lane
	TraceExec     = "exec"                // direct (unbatched) execution
	TraceCommit   = "commit"              // schedule finalized
)

// A TraceEvent is one structured scheduling decision with the
// constraint values the policy saw at decision time.
type TraceEvent struct {
	Kind        string  `json:"kind"`
	Model       int     `json:"model"`            // -1 when not model-specific
	RemainingMS float64 `json:"remaining_ms"`     // deadline budget left
	AvailMemMB  float64 `json:"avail_mem_mb"`     // accountant headroom
	Queued      int     `json:"queued,omitempty"` // batch-lane occupancy
	Note        string  `json:"note,omitempty"`   // e.g. "deadline", "memory"
}

// An ItemTrace accumulates one item's decision events. It is built by a
// single worker goroutine and published to the Tracer's ring at finish;
// a nil ItemTrace (tracing disabled) no-ops every method.
type ItemTrace struct {
	Item    int          `json:"item"`
	Tag     string       `json:"tag,omitempty"`
	Seq     int64        `json:"seq"`
	Events  []TraceEvent `json:"events"`
	Dropped int          `json:"dropped_events,omitempty"`
}

// Add appends one event (no-op on nil; counts overflow past the cap).
func (t *ItemTrace) Add(ev TraceEvent) {
	if t == nil {
		return
	}
	if len(t.Events) >= maxTraceEvents {
		t.Dropped++
		return
	}
	t.Events = append(t.Events, ev)
}

// Tracer is a bounded ring of completed item traces. Begin hands out a
// fresh ItemTrace, End publishes it; the ring keeps the most recent
// `capacity` traces for /tracez and per-ticket retrieval. A nil Tracer
// no-ops everything and Begins nil ItemTraces.
type Tracer struct {
	mu    sync.Mutex
	ring  []ItemTrace
	next  int
	seq   int64
	total int64
}

// NewTracer returns a tracer retaining the most recent capacity traces
// (a small default is applied when capacity is not positive).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracer{ring: make([]ItemTrace, 0, capacity)}
}

// Begin starts a trace for one item (nil when the tracer is nil).
func (t *Tracer) Begin(item int, tag string) *ItemTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.seq++
	seq := t.seq
	t.mu.Unlock()
	return &ItemTrace{Item: item, Tag: tag, Seq: seq, Events: make([]TraceEvent, 0, 8)}
}

// End publishes a completed trace into the ring (no-op when either side
// is nil).
func (t *Tracer) End(tr *ItemTrace) {
	if t == nil || tr == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, *tr)
		return
	}
	t.ring[t.next] = *tr
	t.next = (t.next + 1) % len(t.ring)
}

// Total reports how many traces have been published over the tracer's
// lifetime (not just those still resident).
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Recent returns up to n resident traces, newest first.
func (t *Tracer) Recent(n int) []ItemTrace {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]ItemTrace, 0, min(n, len(t.ring)))
	for i := 0; i < len(t.ring) && len(out) < n; i++ {
		// Walk backwards from the most recently written slot.
		idx := (t.next - 1 - i + 2*len(t.ring)) % len(t.ring)
		out = append(out, t.ring[idx])
	}
	return out
}

// ByTag returns the most recent resident trace carrying tag.
func (t *Tracer) ByTag(tag string) (ItemTrace, bool) {
	if t == nil {
		return ItemTrace{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 0; i < len(t.ring); i++ {
		idx := (t.next - 1 - i + 2*len(t.ring)) % len(t.ring)
		if t.ring[idx].Tag == tag {
			return t.ring[idx], true
		}
	}
	return ItemTrace{}, false
}

// WriteJSON dumps up to n recent traces (optionally filtered to one
// tag) as an indented JSON array — the /tracez payload.
func (t *Tracer) WriteJSON(w io.Writer, n int, tag string) error {
	var traces []ItemTrace
	if tag != "" {
		if tr, ok := t.ByTag(tag); ok {
			traces = []ItemTrace{tr}
		}
	} else {
		traces = t.Recent(n)
	}
	if traces == nil {
		traces = []ItemTrace{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(traces)
}

package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// batchIDs hands out process-unique batch identities so fan-in links
// correlate waiter spans across shards and traces.
var batchIDs atomic.Int64

// NextBatchID allocates a fresh nonzero batch id.
func NextBatchID() int64 { return batchIDs.Add(1) }

// A BatchRef is the telemetry handoff between a batch-lane waiter and
// the batcher: the batcher fills it before signalling the waiter's
// done channel (the channel close is the happens-before edge), and the
// waiter then records its batch-hold and exec spans from the sealed
// timestamps. A waiter passes nil when tracing is off, so the batcher
// reads no clocks on the disabled path.
type BatchRef struct {
	Batch int64     // shared batch identity
	N     int       // coalesced size
	Seal  time.Time // lane sealed → execution began
	Flush string    // flush cause: "size" | "hold"
}

// Span stage names. The serve layer opens one span per lifecycle stage
// (admission → queue wait → per-round select → reserve wait →
// batch-lane hold → model exec → commit), all parented under the item's
// root span, so a trace answers "where did this item's deadline budget
// go" stage by stage.
const (
	SpanItem        = "item"         // root: admission → publish
	SpanQueueWait   = "queue-wait"   // arrival → dequeue by a worker
	SpanSelect      = "select"       // one policy.Next decision round
	SpanReserveWait = "reserve-wait" // blocking on the memory accountant
	SpanBatchHold   = "batch-hold"   // enqueued on a batch lane → seal
	SpanExec        = "exec"         // model execution (direct or batched)
	SpanCommit      = "commit"       // corpus commit incl. journal append/fsync
	SpanOther       = "other"        // CriticalPath: root time no child covers
)

// maxTraceSpans bounds one item's span list the same way maxTraceEvents
// bounds its event list; overflow is counted in DroppedSpans.
const maxTraceSpans = 192

// A SpanLink is a causality edge that crosses item or shard boundaries
// — steal provenance (victim shard → thief shard) and batch fan-in
// (waiter span → shared batched execution).
type SpanLink struct {
	Kind string `json:"kind"` // "steal" | "batch"
	From int    `json:"from"`
	To   int    `json:"to"`
	ID   int64  `json:"id,omitempty"` // batch id for "batch" links
}

// A Span is one timed stage of an item's lifecycle. Offsets are
// measured from the trace origin (the item's arrival) on both clocks:
// StartUS/EndUS in wall microseconds, VStartMS/VEndMS in virtual
// milliseconds (wall ÷ TimeScale), so a 0.01× simulated run and a
// real-time run of the same schedule produce identical virtual
// columns. EndUS is -1 while the span is open; Tracer.End closes any
// span still open at publish.
type Span struct {
	ID       int        `json:"id"`
	Parent   int        `json:"parent"` // -1 for the root span
	Name     string     `json:"name"`
	Model    int        `json:"model"` // -1 when not model-specific
	StartUS  int64      `json:"start_us"`
	EndUS    int64      `json:"end_us"`
	VStartMS float64    `json:"vstart_ms"`
	VEndMS   float64    `json:"vend_ms"`
	Batch    int64      `json:"batch,omitempty"`   // batch id for batched exec
	BatchN   int        `json:"batch_n,omitempty"` // coalesced batch size
	Links    []SpanLink `json:"links,omitempty"`
	Note     string     `json:"note,omitempty"`
}

// Stamp returns the wall clock now — and the zero time on a nil trace,
// so the disabled path never reads the clock (the span analogue of
// Started).
func (t *ItemTrace) Stamp() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// SetShard records the executing shard. For non-stolen items the home
// shard is the executing shard; stolen items keep the victim Home that
// Begin adopted from the router's steal note.
func (t *ItemTrace) SetShard(shard int) {
	if t == nil {
		return
	}
	t.Shard = shard
	if !t.Stolen {
		t.Home = shard
	}
}

// Root opens span 0 ("item") with the trace origin set to arrival (the
// admission instant); a zero or future arrival falls back to now.
// Idempotent: a second call returns the existing root. Returns -1 on a
// nil trace. A stolen trace's root span carries the victim→thief link.
func (t *ItemTrace) Root(arrival time.Time) int {
	if t == nil {
		return -1
	}
	if len(t.Spans) > 0 {
		return 0
	}
	now := time.Now()
	if arrival.IsZero() || arrival.After(now) {
		arrival = now
	}
	t.origin = arrival
	t.BeginUnixUS = arrival.UnixMicro()
	root := Span{Parent: -1, Name: SpanItem, Model: -1, EndUS: -1, VEndMS: -1}
	if t.Stolen {
		root.Links = append(root.Links, SpanLink{Kind: "steal", From: t.Home, To: t.Shard})
	}
	return t.addSpan(root)
}

// StartSpan opens a child span at now and returns its id (-1 when the
// trace is nil or the span cap is hit). Close it with EndSpan.
func (t *ItemTrace) StartSpan(name string, parent, model int) int {
	if t == nil {
		return -1
	}
	return t.StartSpanAt(name, parent, model, time.Now())
}

// StartSpanAt opens a child span with an explicit start stamp (e.g. the
// queue-wait span starts at arrival). A zero stamp means now.
func (t *ItemTrace) StartSpanAt(name string, parent, model int, start time.Time) int {
	if t == nil {
		return -1
	}
	if start.IsZero() {
		start = time.Now()
	}
	if len(t.Spans) == 0 {
		t.Root(start)
	}
	return t.addSpan(Span{
		Parent:   parent,
		Name:     name,
		Model:    model,
		StartUS:  t.us(start),
		VStartMS: t.vms(start),
		EndUS:    -1,
		VEndMS:   -1,
	})
}

// EndSpan closes span id at now (no-op on nil, out-of-range, or
// already-closed spans — a -1 id from a capped StartSpan is safe).
func (t *ItemTrace) EndSpan(id int) {
	if t == nil {
		return
	}
	t.EndSpanAt(id, time.Now())
}

// EndSpanAt closes span id with an explicit end stamp.
func (t *ItemTrace) EndSpanAt(id int, end time.Time) {
	if t == nil || id < 0 || id >= len(t.Spans) || t.Spans[id].EndUS >= 0 {
		return
	}
	if end.IsZero() {
		end = time.Now()
	}
	sp := &t.Spans[id]
	sp.EndUS = t.us(end)
	sp.VEndMS = t.vms(end)
	if sp.EndUS < sp.StartUS {
		sp.EndUS, sp.VEndMS = sp.StartUS, sp.VStartMS
	}
}

// SpanBetween records a fully-closed span from two explicit stamps —
// for stages whose boundaries were captured before the span could be
// opened (batch hold: enqueue → seal). Returns the span id.
func (t *ItemTrace) SpanBetween(name string, parent, model int, start, end time.Time) int {
	id := t.StartSpanAt(name, parent, model, start)
	t.EndSpanAt(id, end)
	return id
}

// AnnotateBatch stamps a span with its batch-lane fan-in identity: the
// batch id shared by every waiter coalesced into one execution, the
// batch size, and a note (the flush cause). No-op on nil or invalid id.
func (t *ItemTrace) AnnotateBatch(id int, batch int64, n int, note string) {
	if t == nil || id < 0 || id >= len(t.Spans) {
		return
	}
	t.Spans[id].Batch = batch
	t.Spans[id].BatchN = n
	if note != "" {
		t.Spans[id].Note = note
	}
}

// addSpan appends one span, assigning its id (caps at maxTraceSpans).
func (t *ItemTrace) addSpan(sp Span) int {
	if len(t.Spans) >= maxTraceSpans {
		t.DroppedSpans++
		return -1
	}
	sp.ID = len(t.Spans)
	t.Spans = append(t.Spans, sp)
	return sp.ID
}

// closeOpenSpans closes every span still open (EndUS < 0) at now —
// called by Tracer.End so the root span always covers the full
// lifetime.
func (t *ItemTrace) closeOpenSpans() {
	if t == nil || len(t.Spans) == 0 {
		return
	}
	now := time.Now()
	for i := range t.Spans {
		if t.Spans[i].EndUS < 0 {
			t.Spans[i].EndUS = t.us(now)
			t.Spans[i].VEndMS = t.vms(now)
			if t.Spans[i].EndUS < t.Spans[i].StartUS {
				t.Spans[i].EndUS = t.Spans[i].StartUS
				t.Spans[i].VEndMS = t.Spans[i].VStartMS
			}
		}
	}
}

// us converts a wall stamp to microseconds since the trace origin.
func (t *ItemTrace) us(at time.Time) int64 {
	if t.origin.IsZero() {
		return 0
	}
	return at.Sub(t.origin).Microseconds()
}

// vms converts a wall stamp to virtual milliseconds since the origin
// (wall elapsed ÷ TimeScale).
func (t *ItemTrace) vms(at time.Time) float64 {
	if t.origin.IsZero() {
		return 0
	}
	scale := t.Scale
	if scale <= 0 {
		scale = 1
	}
	return at.Sub(t.origin).Seconds() * 1000 / scale
}

// A PathStage is one attributed stage of an item's critical path: how
// much of the item's total latency this stage accounts for, on both
// clocks, and as a fraction of the whole.
type PathStage struct {
	Name   string  `json:"name"`
	Model  int     `json:"model"` // -1 when aggregated over models
	WallUS int64   `json:"wall_us"`
	VirtMS float64 `json:"virt_ms"`
	Frac   float64 `json:"frac"`
}

// CriticalPath attributes an item's end-to-end latency to its stages —
// the answer to "why did this item take 900 ms". Every instant of the
// root span is attributed to the latest-started depth-1 child covering
// it (so a reserve-wait nested inside an execution round wins over the
// round), and instants no child covers go to "other" (scheduler CPU,
// loop overhead). Stages aggregate by (name, model) and sort by
// descending wall time. Returns nil for a trace with no spans.
func CriticalPath(tr ItemTrace) []PathStage {
	if len(tr.Spans) == 0 {
		return nil
	}
	root := tr.Spans[0]
	if root.EndUS <= root.StartUS {
		return nil
	}
	// Depth-1 children, clamped to the root interval.
	type iv struct {
		start, end int64
		name       string
		model      int
	}
	var children []iv
	for _, sp := range tr.Spans[1:] {
		if sp.Parent != root.ID || sp.EndUS < sp.StartUS {
			continue
		}
		c := iv{start: max(sp.StartUS, root.StartUS), end: min(sp.EndUS, root.EndUS), name: sp.Name, model: sp.Model}
		if c.end >= c.start {
			children = append(children, c)
		}
	}
	// Sweep the root interval over the sorted boundary set; each
	// sub-interval is attributed to the covering child that started
	// last (ties: the one recorded later, i.e. the more deeply timed
	// stage).
	bounds := []int64{root.StartUS, root.EndUS}
	for _, c := range children {
		bounds = append(bounds, c.start, c.end)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	type key struct {
		name  string
		model int
	}
	acc := make(map[key]int64)
	var order []key
	note := func(k key, us int64) {
		if _, ok := acc[k]; !ok {
			order = append(order, k)
		}
		acc[k] += us
	}
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		if hi <= lo || hi <= root.StartUS || lo >= root.EndUS {
			continue
		}
		best := -1
		for j, c := range children {
			if c.start <= lo && c.end >= hi {
				if best < 0 || c.start > children[best].start || (c.start == children[best].start && j > best) {
					best = j
				}
			}
		}
		if best < 0 {
			note(key{SpanOther, -1}, hi-lo)
		} else {
			note(key{children[best].name, children[best].model}, hi-lo)
		}
	}
	total := root.EndUS - root.StartUS
	scale := tr.Scale
	if scale <= 0 {
		scale = 1
	}
	out := make([]PathStage, 0, len(order))
	for _, k := range order {
		us := acc[k]
		out = append(out, PathStage{
			Name:   k.name,
			Model:  k.model,
			WallUS: us,
			VirtMS: float64(us) / 1000 / scale,
			Frac:   float64(us) / float64(total),
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].WallUS > out[j].WallUS })
	return out
}

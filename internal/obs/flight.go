package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// A Trigger is one anomaly detector the flight recorder polls: Fire
// reports whether the anomaly is live plus a human-readable detail
// ("shed rate 41.2/s over limit 5/s") for the bundle header.
type Trigger struct {
	Name string
	Fire func() (fired bool, detail string)
}

// RateTrigger adapts a monotonic counter sample into a trigger
// condition: fires when the counter's growth rate between two polls
// exceeds perSec. The first poll only establishes the baseline.
func RateTrigger(sample func() int64, perSec float64) func() (bool, string) {
	var prev int64
	var prevAt time.Time
	return func() (bool, string) {
		now := time.Now()
		v := sample()
		if prevAt.IsZero() {
			prev, prevAt = v, now
			return false, ""
		}
		dt := now.Sub(prevAt).Seconds()
		delta := v - prev
		prev, prevAt = v, now
		if dt <= 0 || delta <= 0 {
			return false, ""
		}
		rate := float64(delta) / dt
		if rate > perSec {
			return true, fmt.Sprintf("rate %.1f/s over limit %g/s", rate, perSec)
		}
		return false, ""
	}
}

// ThresholdTrigger fires when a sampled gauge exceeds limit.
func ThresholdTrigger(sample func() float64, limit float64) func() (bool, string) {
	return func() (bool, string) {
		if v := sample(); v >= limit {
			return true, fmt.Sprintf("value %.2f at or over limit %g", v, limit)
		}
		return false, ""
	}
}

// A FlightBundle is one persisted anomaly snapshot: the moment before
// the incident — recent span traces plus the full metrics registry —
// frozen to disk before the ring can overwrite it.
type FlightBundle struct {
	Trigger  string      `json:"trigger"`
	Detail   string      `json:"detail,omitempty"`
	WallTime string      `json:"wall_time"`
	UnixUS   int64       `json:"unix_us"`
	Metrics  []Metric    `json:"metrics"`
	Traces   []ItemTrace `json:"traces"`
}

// FlightRecorder polls a set of anomaly triggers against live
// telemetry and, when one fires, atomically writes a timestamped JSON
// FlightBundle (recent trace ring + registry snapshot) into its
// directory — a pre-anomaly black box. Dumps are rate-limited by a
// cooldown so a sustained incident produces a bounded series of
// bundles, not one per poll. A nil recorder no-ops everything; Close
// waits for the poll goroutine so servers embedding one stay leak-test
// clean.
type FlightRecorder struct {
	dir      string
	reg      *Registry
	tr       *Tracer
	interval time.Duration
	cooldown time.Duration
	traceN   int

	mu       sync.Mutex
	triggers []Trigger
	lastDump time.Time

	dumps atomic.Int64
	errs  atomic.Int64

	startMu  sync.Mutex
	started  bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewFlightRecorder builds a recorder writing bundles under dir.
// Defaults: 250 ms poll, 5 s cooldown, 64 traces per bundle.
func NewFlightRecorder(dir string, reg *Registry, tr *Tracer) *FlightRecorder {
	return &FlightRecorder{
		dir:      dir,
		reg:      reg,
		tr:       tr,
		interval: 250 * time.Millisecond,
		cooldown: 5 * time.Second,
		traceN:   64,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// SetIntervals overrides the poll interval and cooldown (for tests and
// tiny-scale smoke runs); non-positive values keep the defaults. Call
// before Start.
func (f *FlightRecorder) SetIntervals(poll, cooldown time.Duration) {
	if f == nil {
		return
	}
	if poll > 0 {
		f.interval = poll
	}
	if cooldown > 0 {
		f.cooldown = cooldown
	}
}

// AddTrigger registers one named anomaly detector. Safe before or
// after Start; no-op on nil.
func (f *FlightRecorder) AddTrigger(name string, fire func() (bool, string)) {
	if f == nil || fire == nil {
		return
	}
	f.mu.Lock()
	f.triggers = append(f.triggers, Trigger{Name: name, Fire: fire})
	f.mu.Unlock()
}

// Start launches the poll goroutine (idempotent, no-op on nil).
func (f *FlightRecorder) Start() {
	if f == nil {
		return
	}
	f.startMu.Lock()
	defer f.startMu.Unlock()
	if f.started {
		return
	}
	f.started = true
	go f.run()
}

func (f *FlightRecorder) run() {
	defer close(f.done)
	tick := time.NewTicker(f.interval)
	defer tick.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-tick.C:
			f.poll()
		}
	}
}

// poll evaluates every trigger once. Each trigger is always sampled
// (rate triggers need the baseline to advance) even while the cooldown
// suppresses dumps.
func (f *FlightRecorder) poll() {
	f.mu.Lock()
	trigs := make([]Trigger, len(f.triggers))
	copy(trigs, f.triggers)
	last := f.lastDump
	f.mu.Unlock()
	cool := !last.IsZero() && time.Since(last) < f.cooldown
	for _, tg := range trigs {
		fired, detail := tg.Fire()
		if !fired || cool {
			continue
		}
		cool = true // one bundle per poll at most
		if _, err := f.Snapshot(tg.Name, detail); err != nil {
			f.errs.Add(1)
		}
	}
}

// Snapshot writes one bundle immediately (also the manual seam tests
// and operators use), returning the bundle path. The write is atomic:
// a temp file in dir renamed into place, so a reader never sees a torn
// bundle. Resets the cooldown clock.
func (f *FlightRecorder) Snapshot(trigger, detail string) (string, error) {
	if f == nil {
		return "", nil
	}
	if err := os.MkdirAll(f.dir, 0o755); err != nil {
		return "", err
	}
	now := time.Now()
	b := FlightBundle{
		Trigger:  trigger,
		Detail:   detail,
		WallTime: now.Format(time.RFC3339Nano),
		UnixUS:   now.UnixMicro(),
		Metrics:  f.reg.Snapshot(),
		Traces:   f.tr.Recent(f.traceN),
	}
	if b.Metrics == nil {
		b.Metrics = []Metric{}
	}
	if b.Traces == nil {
		b.Traces = []ItemTrace{}
	}
	name := fmt.Sprintf("flight-%s-%s.json", now.UTC().Format("20060102T150405.000000000"), trigger)
	final := filepath.Join(f.dir, name)
	tmp, err := os.CreateTemp(f.dir, ".flight-*.tmp")
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(tmp)
	enc.SetIndent("", " ")
	if err := enc.Encode(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	f.dumps.Add(1)
	f.mu.Lock()
	f.lastDump = now
	f.mu.Unlock()
	return final, nil
}

// Dumps reports how many bundles have been written (0 on nil).
func (f *FlightRecorder) Dumps() int64 {
	if f == nil {
		return 0
	}
	return f.dumps.Load()
}

// Errors reports failed bundle writes (0 on nil).
func (f *FlightRecorder) Errors() int64 {
	if f == nil {
		return 0
	}
	return f.errs.Load()
}

// Dir reports the bundle directory ("" on nil).
func (f *FlightRecorder) Dir() string {
	if f == nil {
		return ""
	}
	return f.dir
}

// RegisterViews exposes recorder health on reg.
func (f *FlightRecorder) RegisterViews(reg *Registry) {
	if f == nil || reg == nil {
		return
	}
	reg.CounterFunc("ams_flight_dumps_total", "flight-recorder bundles written", f.Dumps)
	reg.CounterFunc("ams_flight_errors_total", "flight-recorder bundle write failures", f.Errors)
}

// Close stops polling and waits for the goroutine to exit. Safe on nil
// and idempotent; a recorder that was never Started closes cleanly.
func (f *FlightRecorder) Close() error {
	if f == nil {
		return nil
	}
	f.stopOnce.Do(func() { close(f.stop) })
	f.startMu.Lock()
	started := f.started
	f.started = true // a Start after Close must not relaunch the goroutine
	f.startMu.Unlock()
	if started {
		<-f.done
		// One final evaluation after the loop exits: an anomaly that
		// became detectable between the last tick and shutdown (e.g. a
		// shed storm in a short run) is still captured.
		f.poll()
	}
	return nil
}

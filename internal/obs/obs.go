// Package obs is the serving stack's runtime telemetry layer: sharded
// atomic counters, gauges, log-bucketed latency histograms with
// quantile snapshots, a named-metric registry with Prometheus text
// exposition, a bounded per-item ring of causal span traces (with
// critical-path attribution and Chrome trace-event export), SLO
// burn-rate accounting, an anomaly flight recorder, and an opt-in
// HTTP exporter (/metrics, /statusz, /tracez, /debug/pprof).
//
// The package is built around two hard promises the serving layer
// depends on:
//
//   - Inert when disabled. Every instrument method is a no-op on its
//     zero value (a nil *Counter, *Gauge, *Histogram, *Tracer, or
//     *ItemTrace), so call sites in the hot path need no guards and the
//     disabled configuration costs one nil check per hook — no clock
//     reads, no allocations, no atomics. Started returns the zero time
//     for a nil histogram so even the wall clock is untouched.
//
//   - Invisible when enabled. Instruments only ever count and measure;
//     they never feed back into scheduling state, so an instrumented
//     server produces bit-identical schedules, labels, and stats to an
//     uninstrumented one (the root package's identity test holds the
//     layer to this).
//
// Timing in the virtual-time packages goes through this package's
// helpers (Started, SinceSeconds, Histogram.ObserveSince,
// Histogram.ObserveScaledSince) rather than raw time.Since deltas: the
// helpers are the one seam that knows whether a measured span is real
// seconds (scheduler CPU overhead, fsync) or must be rescaled onto the
// simulated clock (queue wait, batch hold), and the obsclean analyzer
// enforces the discipline mechanically.
package obs

import (
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// counterStripes is the per-Counter stripe count (a power of two).
// Writers scatter across stripes so a hot counter shared by the whole
// worker pool does not serialize on one cache line; Value sums them.
const counterStripes = 8

// stripe pads one atomic to a cache line so neighboring stripes never
// false-share.
type stripe struct {
	n atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing, write-sharded counter. The
// zero value is ready to use; a nil Counter is a no-op.
type Counter struct {
	stripes [counterStripes]stripe
}

// NewCounter returns a fresh counter.
func NewCounter() *Counter { return &Counter{} }

// Add increments the counter by n (no-op on nil).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	// rand/v2's per-goroutine generator is lock-free and allocation-free:
	// a cheap scatter that spreads concurrent writers over the stripes.
	c.stripes[rand.Uint32()&(counterStripes-1)].n.Add(n)
}

// Inc increments the counter by one (no-op on nil).
func (c *Counter) Inc() { c.Add(1) }

// Value sums the stripes (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.stripes {
		total += c.stripes[i].n.Load()
	}
	return total
}

// Gauge is an instantaneous float64 value (queue depth, resident
// megabytes). The zero value is ready; a nil Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// NewGauge returns a fresh gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v (no-op on nil).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(floatBits(v))
}

// Add adjusts the gauge by delta (no-op on nil).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+delta)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return bitsFloat(g.bits.Load())
}

// Started returns the wall-clock start stamp for a span that will be
// observed into h — and the zero time when h is nil, so a disabled
// instrument never even reads the clock. Pair with ObserveSince or
// ObserveScaledSince, which treat a zero stamp as "span never started".
func Started(h *Histogram) time.Time {
	if h == nil {
		return time.Time{}
	}
	return time.Now()
}

// SinceSeconds returns the real seconds elapsed since t0. It is the
// sanctioned wall-clock delta for the virtual-time packages (obsclean
// flags raw time.Since there): keeping every delta behind one seam
// makes the real-versus-simulated bookkeeping auditable in one place.
func SinceSeconds(t0 time.Time) float64 {
	return time.Since(t0).Seconds()
}

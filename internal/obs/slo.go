package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// sloSlots is the per-window slot count: each burn window is a ring of
// sloSlots buckets, so a 300 s window resolves burn at ~9 s
// granularity without storing per-observation state.
const sloSlots = 32

// sloSlot is one time bucket of a burn window; stamp is the slot epoch
// (floor(now / slotWidth)) so stale slots age out lazily.
type sloSlot struct {
	stamp int64
	good  int64
	bad   int64
}

// burnWindow is one rolling window of good/bad counts.
type burnWindow struct {
	span  float64 // window width in clock seconds
	slotW float64 // span / sloSlots
	slots [sloSlots]sloSlot
}

// SLO tracks one named latency objective — "target fraction of items
// complete within ThresholdSec" (so a p99 < 250 ms objective is target
// 0.99, threshold 0.25) — and exposes multi-window burn rates: the
// rate at which the error budget is being consumed over each window
// (burn 1.0 = exactly on budget, >1 = burning faster than the
// objective allows). The clock is pluggable (virtual or real seconds)
// so simulated runs account burn identically to real-time ones.
//
// Observe is safe for concurrent use; a nil SLO no-ops everything.
type SLO struct {
	Name         string
	ThresholdSec float64
	Target       float64

	now     func() float64 // clock in seconds; nil falls back to last observed
	good    atomic.Int64
	bad     atomic.Int64
	lastNow atomic.Uint64 // float bits of the newest Observe stamp

	mu      sync.Mutex
	windows []*burnWindow
}

// NewSLO builds an objective. now supplies the accounting clock in
// seconds (the server's virtual clock; nil freezes burn windows at the
// last observation). windowsSec lists the burn windows; empty defaults
// to the classic fast/slow pair 300 s and 3600 s. A target outside
// (0, 1) becomes 0.99.
func NewSLO(name string, thresholdSec, target float64, now func() float64, windowsSec ...float64) *SLO {
	if target <= 0 || target >= 1 {
		target = 0.99
	}
	if len(windowsSec) == 0 {
		windowsSec = []float64{300, 3600}
	}
	s := &SLO{Name: name, ThresholdSec: thresholdSec, Target: target, now: now}
	for _, w := range windowsSec {
		if w <= 0 {
			continue
		}
		s.windows = append(s.windows, &burnWindow{span: w, slotW: w / sloSlots})
	}
	return s
}

// clock returns the current accounting time in seconds.
func (s *SLO) clock() float64 {
	if s.now != nil {
		return s.now()
	}
	return bitsFloat(s.lastNow.Load())
}

// Observe classifies one latency (seconds, on the same clock family as
// ThresholdSec) as within or over the objective and credits it to
// every burn window. No-op on nil.
func (s *SLO) Observe(latencySec float64) {
	if s == nil {
		return
	}
	ok := latencySec <= s.ThresholdSec
	if ok {
		s.good.Add(1)
	} else {
		s.bad.Add(1)
	}
	now := s.clock()
	for {
		old := s.lastNow.Load()
		if bitsFloat(old) >= now || s.lastNow.CompareAndSwap(old, floatBits(now)) {
			break
		}
	}
	s.mu.Lock()
	for _, w := range s.windows {
		epoch := int64(now / w.slotW)
		sl := &w.slots[((epoch%sloSlots)+sloSlots)%sloSlots]
		if sl.stamp != epoch {
			sl.stamp, sl.good, sl.bad = epoch, 0, 0
		}
		if ok {
			sl.good++
		} else {
			sl.bad++
		}
	}
	s.mu.Unlock()
}

// Good and Bad report lifetime counts (0 on nil).
func (s *SLO) Good() int64 {
	if s == nil {
		return 0
	}
	return s.good.Load()
}

// Bad reports lifetime objective misses (0 on nil).
func (s *SLO) Bad() int64 {
	if s == nil {
		return 0
	}
	return s.bad.Load()
}

// Windows lists the configured burn-window widths in seconds.
func (s *SLO) Windows() []float64 {
	if s == nil {
		return nil
	}
	out := make([]float64, len(s.windows))
	for i, w := range s.windows {
		out[i] = w.span
	}
	return out
}

// BurnRate reports the error-budget burn over the window of width
// windowSec: (bad fraction in window) ÷ (1 − target). 0 when the
// window is empty or unknown. A burn of 1.0 means the objective is
// being consumed exactly at budget; alerting convention fires on high
// burn in a fast window confirmed by a slower one.
func (s *SLO) BurnRate(windowSec float64) float64 {
	if s == nil {
		return 0
	}
	now := s.clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range s.windows {
		if w.span != windowSec {
			continue
		}
		epoch := int64(now / w.slotW)
		var good, bad int64
		for i := range w.slots {
			if st := w.slots[i].stamp; st > epoch-sloSlots && st <= epoch {
				good += w.slots[i].good
				bad += w.slots[i].bad
			}
		}
		if good+bad == 0 {
			return 0
		}
		badFrac := float64(bad) / float64(good+bad)
		return badFrac / (1 - s.Target)
	}
	return 0
}

// RegisterViews exposes the objective on reg as the ams_slo_* family:
// lifetime good/bad counters, the threshold and target constants, and
// one burn-rate gauge per window. No-op when either side is nil.
func (s *SLO) RegisterViews(reg *Registry) {
	if s == nil || reg == nil {
		return
	}
	l := L("slo", s.Name)
	reg.CounterFunc("ams_slo_good_total", "items within the SLO threshold", s.Good, l)
	reg.CounterFunc("ams_slo_bad_total", "items over the SLO threshold", s.Bad, l)
	reg.GaugeFunc("ams_slo_threshold_seconds", "SLO latency threshold",
		func() float64 { return s.ThresholdSec }, l)
	reg.GaugeFunc("ams_slo_target", "SLO good-fraction target",
		func() float64 { return s.Target }, l)
	for _, span := range s.Windows() {
		span := span
		reg.GaugeFunc("ams_slo_burn_rate", "error-budget burn rate over the window",
			func() float64 { return s.BurnRate(span) },
			l, L("window", fmt.Sprintf("%gs", span)))
	}
}

package obs

import (
	"testing"

	"ams/internal/leaktest"
)

// TestMain fails the package if any test — the exporter's HTTP serving
// in particular — leaks goroutines past its Close.
func TestMain(m *testing.M) {
	leaktest.VerifyTestMain(m)
}

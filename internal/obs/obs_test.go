package obs

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterHammer: concurrent increments are conserved across the
// stripes.
func TestCounterHammer(t *testing.T) {
	const goroutines, perG = 16, 20000
	c := NewCounter()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter lost updates: got %d want %d", got, goroutines*perG)
	}
}

// TestHistogramHammer: N goroutines × M observations; the final
// snapshot conserves the count, the sum matches, and quantiles are
// monotone. Mid-flight snapshots must also keep their invariants.
func TestHistogramHammer(t *testing.T) {
	const goroutines, perG = 8, 5000
	h := NewHistogram()
	stop := make(chan struct{})
	var snapErr error
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var bucketTotal int64
			for _, b := range s.Buckets {
				bucketTotal += b
			}
			if bucketTotal != s.Count {
				snapErr = fmt.Errorf("snapshot count %d != bucket total %d", s.Count, bucketTotal)
				return
			}
			if s.P50 > s.P95 || s.P95 > s.P99 {
				snapErr = fmt.Errorf("quantiles not monotone: p50=%g p95=%g p99=%g", s.P50, s.P95, s.P99)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Spread observations across many buckets.
				h.Observe(1e-6 * float64(1+(g*perG+i)%4096))
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()
	if snapErr != nil {
		t.Fatal(snapErr)
	}

	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("count not conserved: got %d want %d", s.Count, goroutines*perG)
	}
	var want float64
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			want += 1e-6 * float64(1+(g*perG+i)%4096)
		}
	}
	if diff := s.Sum - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("sum drifted: got %g want %g", s.Sum, want)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Fatalf("quantiles not monotone: p50=%g p95=%g p99=%g", s.P50, s.P95, s.P99)
	}
	if s.Mean() <= 0 {
		t.Fatalf("mean should be positive, got %g", s.Mean())
	}
}

func TestHistogramDropsGarbage(t *testing.T) {
	h := NewHistogram()
	h.Observe(-1)
	h.Observe(math.NaN())
	h.Observe(0.25)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 0.25 {
		t.Fatalf("NaN/negative must be dropped: count=%d sum=%g", s.Count, s.Sum)
	}
}

// TestNilInstrumentsAllocFree: the disabled fast path must not allocate
// — this is the "inert when disabled" promise the serve hot path
// relies on.
func TestNilInstrumentsAllocFree(t *testing.T) {
	var (
		c  *Counter
		g  *Gauge
		h  *Histogram
		tr *Tracer
		it *ItemTrace
		r  *Registry
	)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		_ = c.Value()
		g.Set(1)
		g.Add(2)
		_ = g.Value()
		h.Observe(0.5)
		t0 := Started(h)
		h.ObserveSince(t0)
		h.ObserveScaledSince(t0, 0.001)
		tr.NoteSteal("x", 0, 1)
		it = tr.Begin(1, "x")
		it.Add(TraceEvent{Kind: TraceSelected})
		if !it.Stamp().IsZero() {
			panic("nil ItemTrace.Stamp must not read the clock")
		}
		it.SetShard(2)
		_ = it.Root(time.Time{})
		sp := it.StartSpan(SpanExec, 0, 1)
		it.EndSpan(sp)
		_ = it.SpanBetween(SpanQueueWait, 0, -1, time.Time{}, time.Time{})
		it.AnnotateBatch(sp, 1, 2, "size")
		tr.End(it)
		var slo *SLO
		slo.Observe(0.5)
		_ = slo.BurnRate(300)
		_ = r.Counter("ams_x", "help")
		_ = r.Gauge("ams_y", "help")
		_ = r.Histogram("ams_z", "help")
		r.CounterFunc("ams_cf", "help", nil)
		r.GaugeFunc("ams_gf", "help", nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled instruments allocated %v times per run; want 0", allocs)
	}
	if !Started(nil).IsZero() {
		t.Fatal("Started(nil) must return the zero time")
	}
}

func TestGaugeSetAdd(t *testing.T) {
	g := NewGauge()
	g.Set(4)
	g.Add(2.5)
	if got := g.Value(); got != 6.5 {
		t.Fatalf("gauge: got %g want 6.5", got)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("ams_total", "a counter")
	b := r.Counter("ams_total", "a counter")
	if a != b {
		t.Fatal("re-registering the same counter must return the same instrument")
	}
	l1 := r.Counter("ams_model_total", "per model", L("model", "resnet"))
	l2 := r.Counter("ams_model_total", "per model", L("model", "vgg"))
	l1again := r.Counter("ams_model_total", "per model", L("model", "resnet"))
	if l1 == l2 {
		t.Fatal("distinct label sets must get distinct series")
	}
	if l1 != l1again {
		t.Fatal("same label set must share one series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict should panic")
		}
	}()
	r.Gauge("ams_total", "now a gauge")
}

func TestRegistryPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter("ams_items_total", "items served", L("shard", "0")).Add(7)
	r.Gauge("ams_queue_depth", "queued items").Set(3.5)
	h := r.Histogram("ams_wait_seconds", "queue wait")
	h.Observe(2e-6)
	h.Observe(5e-6)
	r.CounterFunc("ams_view_total", "a view", func() int64 { return 42 })
	r.GaugeFunc("ams_view_depth", "a view gauge", func() float64 { return 1.25 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# HELP ams_items_total items served",
		"# TYPE ams_items_total counter",
		`ams_items_total{shard="0"} 7`,
		"# TYPE ams_queue_depth gauge",
		"ams_queue_depth 3.5",
		"# TYPE ams_wait_seconds histogram",
		`ams_wait_seconds_bucket{le="1e-06"} 0`,
		`ams_wait_seconds_bucket{le="2e-06"} 1`,
		`ams_wait_seconds_bucket{le="8e-06"} 2`,
		`ams_wait_seconds_bucket{le="+Inf"} 2`,
		"ams_wait_seconds_sum 7",
		"ams_wait_seconds_count 2",
		"ams_view_total 42",
		"ams_view_depth 1.25",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, text)
		}
	}
	// Families must be name-sorted for deterministic scrapes.
	if strings.Index(text, "ams_items_total") > strings.Index(text, "ams_queue_depth") {
		t.Fatal("families not sorted by name")
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("ams_a_total", "a").Add(2)
	h := r.Histogram("ams_b_seconds", "b", L("model", "m0"))
	h.Observe(0.5)
	h.Observe(1.5)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("want 2 series, got %d", len(snap))
	}
	if snap[0].Name != "ams_a_total" || snap[0].Value != 2 || snap[0].Kind != "counter" {
		t.Fatalf("counter snapshot wrong: %+v", snap[0])
	}
	hm := snap[1]
	if hm.Count != 2 || hm.Sum != 2.0 || hm.Labels["model"] != "m0" {
		t.Fatalf("histogram snapshot wrong: %+v", hm)
	}
	if hm.P50 > hm.P95 || hm.P95 > hm.P99 {
		t.Fatalf("snapshot quantiles not monotone: %+v", hm)
	}
}

func TestNilRegistry(t *testing.T) {
	var r *Registry
	if r.Counter("x", "h") != nil || r.Gauge("x2", "h") != nil || r.Histogram("x3", "h") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		it := tr.Begin(i, fmt.Sprintf("item-%d", i))
		it.Add(TraceEvent{Kind: TraceSelected, Model: i})
		it.Add(TraceEvent{Kind: TraceCommit, Model: -1})
		tr.End(it)
	}
	if tr.Total() != 10 {
		t.Fatalf("total: got %d want 10", tr.Total())
	}
	recent := tr.Recent(100)
	if len(recent) != 4 {
		t.Fatalf("ring should retain 4, got %d", len(recent))
	}
	if recent[0].Item != 9 || recent[3].Item != 6 {
		t.Fatalf("ring order wrong: newest=%d oldest=%d", recent[0].Item, recent[3].Item)
	}
	if got, ok := tr.ByTag("item-8"); !ok || got.Item != 8 {
		t.Fatalf("ByTag(item-8): ok=%v item=%d", ok, got.Item)
	}
	if _, ok := tr.ByTag("item-2"); ok {
		t.Fatal("evicted trace should not be retrievable")
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb, 2, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"kind": "selected"`) {
		t.Fatalf("trace JSON missing events:\n%s", sb.String())
	}
}

func TestTraceEventCap(t *testing.T) {
	tr := NewTracer(2)
	it := tr.Begin(0, "big")
	for i := 0; i < maxTraceEvents+10; i++ {
		it.Add(TraceEvent{Kind: TraceMemStall})
	}
	if len(it.Events) != maxTraceEvents || it.Dropped != 10 {
		t.Fatalf("cap not enforced: events=%d dropped=%d", len(it.Events), it.Dropped)
	}
}

// An unconstrained budget reaches the scheduler as +Inf; recorded
// verbatim it would make every trace unmarshalable (encoding/json
// rejects non-finite values — the bug that silently broke /tracez and
// flight bundles on servers without a memory budget).
func TestTraceEventClampsNonFinite(t *testing.T) {
	tr := NewTracer(1)
	it := tr.Begin(0, "inf")
	it.Add(TraceEvent{Kind: TraceSelected, Model: 1,
		RemainingMS: math.Inf(1), AvailMemMB: math.Inf(1)})
	it.Add(TraceEvent{Kind: TraceCommit, Model: -1,
		RemainingMS: math.NaN(), AvailMemMB: math.NaN()})
	for _, ev := range it.Events {
		if ev.RemainingMS != -1 || ev.AvailMemMB != -1 {
			t.Fatalf("non-finite constraint not clamped: %+v", ev)
		}
	}
	tr.End(it)
	var sb strings.Builder
	if err := tr.WriteJSON(&sb, 1, ""); err != nil {
		t.Fatalf("trace with unbounded constraints must stay marshalable: %v", err)
	}
	if !strings.Contains(sb.String(), `"avail_mem_mb": -1`) {
		t.Fatalf("clamped sentinel missing from JSON:\n%s", sb.String())
	}
}

func TestStartedAndSince(t *testing.T) {
	h := NewHistogram()
	t0 := Started(h)
	if t0.IsZero() {
		t.Fatal("Started on a live histogram must stamp the clock")
	}
	time.Sleep(time.Millisecond)
	if SinceSeconds(t0) <= 0 {
		t.Fatal("SinceSeconds must advance")
	}
	h.ObserveSince(t0)
	if h.Snapshot().Count != 1 {
		t.Fatal("ObserveSince should record")
	}
	h.ObserveSince(time.Time{}) // zero stamp: span never started
	if h.Snapshot().Count != 1 {
		t.Fatal("zero start stamp must be dropped")
	}
}

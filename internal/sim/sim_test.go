package sim

import (
	"testing"

	"ams/internal/labels"
	"ams/internal/oracle"
	"ams/internal/synth"
	"ams/internal/zoo"
)

var (
	vocab = labels.NewVocabulary()
	z     = zoo.NewZoo(vocab)
	ds    = synth.NewDataset(vocab, synth.MSCOCO(), 25, 71)
	store = oracle.Build(z, ds.Scenes)
)

// seqPolicy executes models in fixed ID order, ignoring constraints
// (it only runs under the unconstrained executor).
type seqPolicy struct{ stopAfter int }

func (p *seqPolicy) Name() string { return "seq" }
func (p *seqPolicy) Reset(int)    {}
func (p *seqPolicy) Next(t *oracle.Tracker, _ Constraints) int {
	if p.stopAfter > 0 && t.ExecutedCount() >= p.stopAfter {
		return -1
	}
	un := t.Unexecuted()
	if len(un) == 0 {
		return -1
	}
	return un[0]
}
func (p *seqPolicy) Observe(int, zoo.Output) {}

// seqDeadline picks the first unexecuted model that fits the budget.
type seqDeadline struct{}

func (seqDeadline) Name() string { return "seq-deadline" }
func (seqDeadline) Reset(int)    {}
func (seqDeadline) Next(t *oracle.Tracker, c Constraints) int {
	for _, m := range t.Unexecuted() {
		if c.AllowsTime(store.Zoo.Models[m].TimeMS) {
			return m
		}
	}
	return -1
}
func (seqDeadline) Observe(int, zoo.Output) {}

// badDeadline ignores the budget — the executor must panic.
type badDeadline struct{}

func (badDeadline) Name() string { return "bad" }
func (badDeadline) Reset(int)    {}
func (badDeadline) Next(t *oracle.Tracker, _ Constraints) int {
	return t.Unexecuted()[0]
}
func (badDeadline) Observe(int, zoo.Output) {}

// greedyPacker launches every model that fits (for event-loop tests),
// tracking its in-flight selections as the parallel contract requires.
type greedyPacker struct{ fly map[int]bool }

func (p *greedyPacker) Name() string { return "greedy" }
func (p *greedyPacker) Reset(int)    { p.fly = map[int]bool{} }
func (p *greedyPacker) Next(t *oracle.Tracker, c Constraints) int {
	for _, m := range t.Unexecuted() {
		if p.fly[m] || !c.Allows(store.Zoo.Models[m]) {
			continue
		}
		p.fly[m] = true
		return m
	}
	return -1
}
func (p *greedyPacker) Observe(m int, _ zoo.Output) { delete(p.fly, m) }

// doubleLauncher returns the same model twice in one launch phase — the
// executor must panic.
type doubleLauncher struct{}

func (doubleLauncher) Name() string { return "double" }
func (doubleLauncher) Reset(int)    {}
func (doubleLauncher) Next(t *oracle.Tracker, _ Constraints) int {
	if t.ExecutedCount() == 0 {
		return 0
	}
	return -1
}
func (doubleLauncher) Observe(int, zoo.Output) {}

func TestRunToRecallStopsAtThreshold(t *testing.T) {
	res := RunToRecall(store, 0, &seqPolicy{}, 0.5)
	if res.Recall < 0.5-1e-9 {
		t.Fatalf("recall %v below threshold", res.Recall)
	}
	// One fewer execution must be below the threshold (minimality).
	if len(res.Executed) > 1 {
		tr := oracle.NewTracker(store, 0)
		for _, m := range res.Executed[:len(res.Executed)-1] {
			tr.Execute(m)
		}
		if tr.Recall() >= 0.5 {
			t.Fatalf("loop executed past the stop point")
		}
	}
}

func TestRunToRecallHonorsPolicyStop(t *testing.T) {
	res := RunToRecall(store, 0, &seqPolicy{stopAfter: 3}, 1.0)
	if len(res.Executed) != 3 {
		t.Fatalf("policy stop ignored: %d executions", len(res.Executed))
	}
}

func TestRunToRecallZeroThreshold(t *testing.T) {
	res := RunToRecall(store, 0, &seqPolicy{}, 0)
	if len(res.Executed) != 0 {
		t.Fatalf("zero threshold should execute nothing, got %d", len(res.Executed))
	}
}

func TestRunDeadlinePanicsOnViolation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("budget violation did not panic")
		}
	}()
	RunDeadline(store, 0, badDeadline{}, 10) // 10 ms < any model
}

func TestRunDeadlineZeroBudget(t *testing.T) {
	res := RunDeadline(store, 0, seqDeadline{}, 0)
	if len(res.Executed) != 0 || res.TimeMS != 0 {
		t.Fatalf("zero budget executed models: %+v", res)
	}
}

func TestRunDeadlineLargeBudgetRunsAll(t *testing.T) {
	res := RunDeadline(store, 0, seqDeadline{}, z.TotalTimeMS()+1)
	if len(res.Executed) != store.NumModels() {
		t.Fatalf("full budget ran %d models", len(res.Executed))
	}
	if res.Recall < 1-1e-9 {
		t.Fatalf("full budget recall %v", res.Recall)
	}
}

func TestRunParallelGreedyPacksAll(t *testing.T) {
	res := RunParallel(store, 0, &greedyPacker{}, z.TotalTimeMS(), 1<<20)
	if len(res.Executed) != store.NumModels() {
		t.Fatalf("unbounded memory ran %d models", len(res.Executed))
	}
	// With effectively unlimited memory everything runs concurrently, so
	// the makespan is the slowest model, not the serial sum.
	var maxT float64
	for _, m := range z.Models {
		if m.TimeMS > maxT {
			maxT = m.TimeMS
		}
	}
	if res.MakespanMS > maxT+1e-9 {
		t.Fatalf("makespan %v exceeds slowest model %v", res.MakespanMS, maxT)
	}
}

func TestRunParallelMemorySerializes(t *testing.T) {
	// A memory budget that fits only one heavyweight model at a time
	// forces serialization of the big models.
	res := RunParallel(store, 0, &greedyPacker{}, z.TotalTimeMS()*2, 8000)
	if res.PeakMemMB > 8000+1e-9 {
		t.Fatalf("peak memory %v over budget", res.PeakMemMB)
	}
	if len(res.Executed) != store.NumModels() {
		t.Fatalf("ran %d models", len(res.Executed))
	}
}

func TestRunParallelPanicsOnDoubleLaunch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double launch did not panic")
		}
	}()
	RunParallel(store, 0, doubleLauncher{}, 10000, 1<<20)
}

func TestRunParallelBadBudgetsPanic(t *testing.T) {
	for _, c := range []struct{ d, m float64 }{{0, 100}, {100, 0}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("budgets %v did not panic", c)
				}
			}()
			RunParallel(store, 0, &greedyPacker{}, c.d, c.m)
		}()
	}
}

func TestRunToRecallBadThresholdPanics(t *testing.T) {
	for _, th := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("threshold %v did not panic", th)
				}
			}()
			RunToRecall(store, 0, &seqPolicy{}, th)
		}()
	}
}

func TestParallelCompletionOrderIsByFinishTime(t *testing.T) {
	res := RunParallel(store, 1, &greedyPacker{}, z.TotalTimeMS(), 1<<20)
	// With all models launched at t=0, completion order equals ascending
	// model time (ties in input order).
	for i := 1; i < len(res.Executed); i++ {
		a := z.Models[res.Executed[i-1]].TimeMS
		b := z.Models[res.Executed[i]].TimeMS
		if a > b {
			t.Fatalf("completion order violates finish times at %d: %v > %v", i, a, b)
		}
	}
}

package sim

import (
	"testing"

	"ams/internal/labels"
	"ams/internal/oracle"
	"ams/internal/synth"
	"ams/internal/zoo"
)

var (
	vocab = labels.NewVocabulary()
	z     = zoo.NewZoo(vocab)
	ds    = synth.NewDataset(vocab, synth.MSCOCO(), 25, 71)
	store = oracle.Build(z, ds.Scenes)
)

// seqPolicy executes models in fixed ID order.
type seqPolicy struct{ stopAfter int }

func (p *seqPolicy) Name() string { return "seq" }
func (p *seqPolicy) Reset(int)    {}
func (p *seqPolicy) Next(t *oracle.Tracker) int {
	if p.stopAfter > 0 && t.ExecutedCount() >= p.stopAfter {
		return -1
	}
	un := t.Unexecuted()
	if len(un) == 0 {
		return -1
	}
	return un[0]
}
func (p *seqPolicy) Observe(int, zoo.Output) {}

// seqDeadline picks the first unexecuted model that fits.
type seqDeadline struct{}

func (seqDeadline) Name() string { return "seq-deadline" }
func (seqDeadline) Reset(int)    {}
func (seqDeadline) Next(t *oracle.Tracker, remaining float64) int {
	for _, m := range t.Unexecuted() {
		if store.Zoo.Models[m].TimeMS <= remaining {
			return m
		}
	}
	return -1
}
func (seqDeadline) Observe(int, zoo.Output) {}

// badDeadline ignores the budget — the executor must panic.
type badDeadline struct{}

func (badDeadline) Name() string { return "bad" }
func (badDeadline) Reset(int)    {}
func (badDeadline) Next(t *oracle.Tracker, remaining float64) int {
	return t.Unexecuted()[0]
}
func (badDeadline) Observe(int, zoo.Output) {}

// greedyPacker launches every model that fits (for event-loop tests).
type greedyPacker struct{}

func (greedyPacker) Name() string { return "greedy" }
func (greedyPacker) Reset(int)    {}
func (greedyPacker) SelectStart(t *oracle.Tracker, running []int, avail, now, deadline float64) []int {
	inFly := map[int]bool{}
	for _, m := range running {
		inFly[m] = true
	}
	var starts []int
	for _, m := range t.Unexecuted() {
		mod := store.Zoo.Models[m]
		if inFly[m] || mod.MemMB > avail || now+mod.TimeMS > deadline {
			continue
		}
		starts = append(starts, m)
		inFly[m] = true
		avail -= mod.MemMB
	}
	return starts
}

// doubleLauncher launches the same model twice — the executor must panic.
type doubleLauncher struct{}

func (doubleLauncher) Name() string { return "double" }
func (doubleLauncher) Reset(int)    {}
func (doubleLauncher) SelectStart(t *oracle.Tracker, running []int, avail, now, deadline float64) []int {
	if len(running) == 0 && t.ExecutedCount() == 0 {
		return []int{0, 0}
	}
	return nil
}

func TestRunToRecallStopsAtThreshold(t *testing.T) {
	res := RunToRecall(store, 0, &seqPolicy{}, 0.5)
	if res.Recall < 0.5-1e-9 {
		t.Fatalf("recall %v below threshold", res.Recall)
	}
	// One fewer execution must be below the threshold (minimality).
	if len(res.Executed) > 1 {
		tr := oracle.NewTracker(store, 0)
		for _, m := range res.Executed[:len(res.Executed)-1] {
			tr.Execute(m)
		}
		if tr.Recall() >= 0.5 {
			t.Fatalf("loop executed past the stop point")
		}
	}
}

func TestRunToRecallHonorsPolicyStop(t *testing.T) {
	res := RunToRecall(store, 0, &seqPolicy{stopAfter: 3}, 1.0)
	if len(res.Executed) != 3 {
		t.Fatalf("policy stop ignored: %d executions", len(res.Executed))
	}
}

func TestRunToRecallZeroThreshold(t *testing.T) {
	res := RunToRecall(store, 0, &seqPolicy{}, 0)
	if len(res.Executed) != 0 {
		t.Fatalf("zero threshold should execute nothing, got %d", len(res.Executed))
	}
}

func TestRunDeadlinePanicsOnViolation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("budget violation did not panic")
		}
	}()
	RunDeadline(store, 0, badDeadline{}, 10) // 10 ms < any model
}

func TestRunDeadlineZeroBudget(t *testing.T) {
	res := RunDeadline(store, 0, seqDeadline{}, 0)
	if len(res.Executed) != 0 || res.TimeMS != 0 {
		t.Fatalf("zero budget executed models: %+v", res)
	}
}

func TestRunDeadlineLargeBudgetRunsAll(t *testing.T) {
	res := RunDeadline(store, 0, seqDeadline{}, z.TotalTimeMS()+1)
	if len(res.Executed) != store.NumModels() {
		t.Fatalf("full budget ran %d models", len(res.Executed))
	}
	if res.Recall < 1-1e-9 {
		t.Fatalf("full budget recall %v", res.Recall)
	}
}

func TestRunParallelGreedyPacksAll(t *testing.T) {
	res := RunParallel(store, 0, greedyPacker{}, z.TotalTimeMS(), 1<<20)
	if len(res.Executed) != store.NumModels() {
		t.Fatalf("unbounded memory ran %d models", len(res.Executed))
	}
	// With effectively unlimited memory everything runs concurrently, so
	// the makespan is the slowest model, not the serial sum.
	var maxT float64
	for _, m := range z.Models {
		if m.TimeMS > maxT {
			maxT = m.TimeMS
		}
	}
	if res.MakespanMS > maxT+1e-9 {
		t.Fatalf("makespan %v exceeds slowest model %v", res.MakespanMS, maxT)
	}
}

func TestRunParallelMemorySerializes(t *testing.T) {
	// A memory budget that fits only one heavyweight model at a time
	// forces serialization of the big models.
	res := RunParallel(store, 0, greedyPacker{}, z.TotalTimeMS()*2, 8000)
	if res.PeakMemMB > 8000+1e-9 {
		t.Fatalf("peak memory %v over budget", res.PeakMemMB)
	}
	if len(res.Executed) != store.NumModels() {
		t.Fatalf("ran %d models", len(res.Executed))
	}
}

func TestRunParallelPanicsOnDoubleLaunch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double launch did not panic")
		}
	}()
	RunParallel(store, 0, doubleLauncher{}, 10000, 1<<20)
}

func TestRunParallelBadBudgetsPanic(t *testing.T) {
	for _, c := range []struct{ d, m float64 }{{0, 100}, {100, 0}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("budgets %v did not panic", c)
				}
			}()
			RunParallel(store, 0, greedyPacker{}, c.d, c.m)
		}()
	}
}

func TestRunToRecallBadThresholdPanics(t *testing.T) {
	for _, th := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("threshold %v did not panic", th)
				}
			}()
			RunToRecall(store, 0, &seqPolicy{}, th)
		}()
	}
}

func TestParallelCompletionOrderIsByFinishTime(t *testing.T) {
	res := RunParallel(store, 1, greedyPacker{}, z.TotalTimeMS(), 1<<20)
	// With all models launched at t=0, completion order equals ascending
	// model time (ties in input order).
	for i := 1; i < len(res.Executed); i++ {
		a := z.Models[res.Executed[i-1]].TimeMS
		b := z.Models[res.Executed[i]].TimeMS
		if a > b {
			t.Fatalf("completion order violates finish times at %d: %v > %v", i, a, b)
		}
	}
}

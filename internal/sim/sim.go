// Package sim provides the execution simulators of the AMS reproduction:
// a serial recall-threshold loop (the §VI-B evaluation that runs models
// until a target fraction of the valuable value is recalled), a serial
// deadline loop (§VI-F), and a discrete-event parallel executor for the
// deadline+memory setting (§VI-G) in which multiple models share a GPU
// memory budget and release their memory on completion.
//
// The package defines the policy interfaces it consumes; implementations
// live in internal/sched.
package sim

import (
	"fmt"

	"ams/internal/oracle"
	"ams/internal/zoo"
)

// OrderPolicy chooses the next model in the unconstrained serial setting.
type OrderPolicy interface {
	Name() string
	// Reset is called once before each image.
	Reset(scene int)
	// Next returns the model to execute next, or -1 to stop early.
	Next(t *oracle.Tracker) int
	// Observe feeds back the executed model's full stored output.
	Observe(m int, out zoo.Output)
}

// DeadlinePolicy chooses the next model under a per-image time budget.
type DeadlinePolicy interface {
	Name() string
	Reset(scene int)
	// Next returns the next model given the remaining budget in
	// milliseconds, or -1 when no feasible/useful model remains.
	Next(t *oracle.Tracker, remainingMS float64) int
	Observe(m int, out zoo.Output)
}

// BatchSelector picks sets of models to launch in the parallel
// deadline+memory setting.
type BatchSelector interface {
	Name() string
	Reset(scene int)
	// SelectStart returns model indices to launch now. Candidates must be
	// unexecuted, not running, fit in availMemMB, and finish by deadlineMS.
	// The implementation may return nil to launch nothing this round.
	SelectStart(t *oracle.Tracker, running []int, availMemMB, nowMS, deadlineMS float64) []int
}

// SerialResult summarizes one serial episode.
type SerialResult struct {
	Executed []int   // models in execution order
	TimeMS   float64 // summed model time
	Recall   float64 // final recall of valuable value
}

// RunToRecall executes models per the policy until the recall of valuable
// value reaches threshold (ground-truth stop condition, as in the paper's
// §VI-B), the policy stops, or every model has run.
func RunToRecall(st *oracle.Store, scene int, p OrderPolicy, threshold float64) SerialResult {
	if threshold < 0 || threshold > 1 {
		panic(fmt.Sprintf("sim: recall threshold %v out of [0,1]", threshold))
	}
	p.Reset(scene)
	t := oracle.NewTracker(st, scene)
	var res SerialResult
	for t.Recall() < threshold-1e-12 && t.ExecutedCount() < st.NumModels() {
		m := p.Next(t)
		if m < 0 {
			break
		}
		t.Execute(m)
		p.Observe(m, st.Output(scene, m))
		res.Executed = append(res.Executed, m)
		res.TimeMS += st.Zoo.Models[m].TimeMS
	}
	res.Recall = t.Recall()
	return res
}

// RunDeadline executes models serially under a per-image deadline: a model
// may start only if it finishes within the budget (Algorithm 1 line 3).
func RunDeadline(st *oracle.Store, scene int, p DeadlinePolicy, deadlineMS float64) SerialResult {
	p.Reset(scene)
	t := oracle.NewTracker(st, scene)
	var res SerialResult
	remaining := deadlineMS
	for t.ExecutedCount() < st.NumModels() {
		m := p.Next(t, remaining)
		if m < 0 {
			break
		}
		mt := st.Zoo.Models[m].TimeMS
		if mt > remaining+1e-9 {
			panic(fmt.Sprintf("sim: policy %s exceeded the deadline (model %d needs %v, %v left)",
				p.Name(), m, mt, remaining))
		}
		t.Execute(m)
		p.Observe(m, st.Output(scene, m))
		res.Executed = append(res.Executed, m)
		res.TimeMS += mt
		remaining -= mt
	}
	res.Recall = t.Recall()
	return res
}

// ParallelResult summarizes one deadline+memory episode.
type ParallelResult struct {
	Executed   []int   // models in completion order
	MakespanMS float64 // wall-clock time of the schedule
	PeakMemMB  float64 // maximum simultaneous memory use observed
	Recall     float64
}

// running is one in-flight model execution.
type running struct {
	model    int
	finishMS float64
}

// RunParallel simulates multi-processor execution under a wall-clock
// deadline and a shared GPU memory budget. Models launch according to the
// selector, occupy their peak memory while running, and release it on
// completion; outputs become visible (updating the labeling state) when a
// model finishes, which is when new Q-value predictions may change.
func RunParallel(st *oracle.Store, scene int, sel BatchSelector, deadlineMS, memMB float64) ParallelResult {
	if deadlineMS <= 0 || memMB <= 0 {
		panic("sim: non-positive parallel budgets")
	}
	sel.Reset(scene)
	t := oracle.NewTracker(st, scene)
	var (
		res     ParallelResult
		inFly   []running
		now     float64
		usedMem float64
	)
	runningIDs := func() []int {
		ids := make([]int, len(inFly))
		for i, r := range inFly {
			ids[i] = r.model
		}
		return ids
	}
	isRunning := func(m int) bool {
		for _, r := range inFly {
			if r.model == m {
				return true
			}
		}
		return false
	}
	for {
		// Launch phase.
		starts := sel.SelectStart(t, runningIDs(), memMB-usedMem, now, deadlineMS)
		for _, m := range starts {
			mod := st.Zoo.Models[m]
			if t.Executed(m) || isRunning(m) {
				panic(fmt.Sprintf("sim: selector %s launched model %d twice", sel.Name(), m))
			}
			if usedMem+mod.MemMB > memMB+1e-9 {
				panic(fmt.Sprintf("sim: selector %s exceeded memory budget", sel.Name()))
			}
			if now+mod.TimeMS > deadlineMS+1e-9 {
				panic(fmt.Sprintf("sim: selector %s launched past the deadline", sel.Name()))
			}
			usedMem += mod.MemMB
			inFly = append(inFly, running{model: m, finishMS: now + mod.TimeMS})
		}
		if usedMem > res.PeakMemMB {
			res.PeakMemMB = usedMem
		}
		if len(inFly) == 0 {
			break // nothing running and nothing launched: schedule is done
		}
		// Advance to the earliest completion (Algorithm 2 line 14).
		ei := 0
		for i, r := range inFly {
			if r.finishMS < inFly[ei].finishMS {
				ei = i
			}
		}
		done := inFly[ei]
		inFly = append(inFly[:ei], inFly[ei+1:]...)
		now = done.finishMS
		usedMem -= st.Zoo.Models[done.model].MemMB
		t.Execute(done.model) // output revealed at completion
		res.Executed = append(res.Executed, done.model)
	}
	res.MakespanMS = now
	res.Recall = t.Recall()
	return res
}

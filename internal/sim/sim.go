// Package sim provides the execution simulators of the AMS reproduction:
// a serial recall-threshold loop (the §VI-B evaluation that runs models
// until a target fraction of the valuable value is recalled), a serial
// deadline loop (§VI-F), and a discrete-event parallel executor for the
// deadline+memory setting (§VI-G) in which multiple models share a GPU
// memory budget and release their memory on completion.
//
// All three executors drive the same Policy contract: pick the next
// model from the current labeling state under the Constraints in force.
// Implementations live in internal/sched (and internal/graph); because
// the contract is uniform, any policy can run under any executor, and
// the real concurrent server (internal/serve) feeds policies its live
// memory availability through the very same interface.
package sim

import (
	"fmt"
	"math"

	"ams/internal/oracle"
	"ams/internal/zoo"
)

// budgetEps absorbs float drift when budgets are compared; it matches
// the tolerance the executors use when checking policy decisions.
const budgetEps = 1e-9

// Constraints carries the resource limits in force when a policy picks
// the next model. A zero or +Inf field leaves that dimension
// unconstrained; executors that track a dwindling budget always pass a
// positive remaining amount and stop on their own once it is depleted,
// so a policy never sees an accidental "zero means anything goes".
type Constraints struct {
	// RemainingMS is the schedule time still available: a selected
	// model must run to completion within it.
	RemainingMS float64
	// AvailMemMB is the GPU memory free right now: a selected model's
	// peak footprint must fit in it. In the real server this is the
	// shared accountant's live availability, so a model bigger than
	// the current headroom is simply not selectable — the policy skips
	// it and keeps scheduling the remaining feasible models.
	AvailMemMB float64

	// BatchQueued, when non-nil, exposes the execution layer's
	// cross-item batching demand: BatchQueued(m) is how many requests
	// from concurrently served items are waiting, unsealed, in model
	// m's batch lane. Joining such a batch costs only the model's
	// per-item marginal time on the GPU, so a policy may score the
	// model as effectively cheaper (see Queued); feasibility is
	// unchanged — the nominal TimeMS still bounds the schedule clock,
	// which is what Allows checks. Nil means the execution layer does
	// no batching (every simulator, and the server with batching off).
	BatchQueued func(m int) int
}

// Queued returns the cross-item batching demand pending for model m,
// zero when the execution layer does no batching.
func (c Constraints) Queued(m int) int {
	if c.BatchQueued == nil {
		return 0
	}
	return c.BatchQueued(m)
}

// Unconstrained returns constraints with no limit in either dimension.
func Unconstrained() Constraints { return Constraints{} }

// AllowsTime reports whether a model taking ms milliseconds fits the
// time dimension.
func (c Constraints) AllowsTime(ms float64) bool {
	return c.RemainingMS == 0 || math.IsInf(c.RemainingMS, 1) || ms <= c.RemainingMS+budgetEps
}

// AllowsMem reports whether a model occupying mb megabytes fits the
// memory dimension.
func (c Constraints) AllowsMem(mb float64) bool {
	return c.AvailMemMB == 0 || math.IsInf(c.AvailMemMB, 1) || mb <= c.AvailMemMB+budgetEps
}

// Allows reports whether a model fits both dimensions.
func (c Constraints) Allows(m *zoo.Model) bool {
	return c.AllowsTime(m.TimeMS) && c.AllowsMem(m.MemMB)
}

// Policy is the one scheduling contract of the framework: from the
// current labeling state and the constraints in force, choose the next
// model to execute, or -1 when no feasible or useful model remains.
//
// The parallel executor launches a returned model immediately and asks
// again (at the same labeling state, with the memory headroom reduced)
// until the policy declines; a launched model's output becomes visible
// only when Observe is called at its completion. A policy must
// therefore remember its own in-flight selections — models it returned
// whose Observe has not arrived yet — and never return one of them
// again. Under the serial executors Observe directly follows every
// selection, so that bookkeeping is invisible there.
type Policy interface {
	Name() string
	// Reset is called once before each image.
	Reset(scene int)
	// Next returns the model to execute next under c, or -1.
	Next(t *oracle.Tracker, c Constraints) int
	// Observe feeds back an executed model's full stored output.
	Observe(m int, out zoo.Output)
}

// SerialResult summarizes one serial episode.
type SerialResult struct {
	Executed []int   // models in execution order
	TimeMS   float64 // summed model time
	Recall   float64 // final recall of valuable value; 0 when !HasRecall
	// HasRecall reports whether the item's ground truth was known, i.e.
	// whether Recall measures anything. Precomputed-store items always
	// have it; externally ingested items usually do not.
	HasRecall bool
}

// RunToRecall executes models per the policy until the recall of valuable
// value reaches threshold (ground-truth stop condition, as in the paper's
// §VI-B), the policy stops, or every model has run. For items without
// ground truth the recall never reaches a positive threshold, so the
// schedule runs until the policy declines or the models are exhausted.
func RunToRecall(ex oracle.Executor, item int, p Policy, threshold float64) SerialResult {
	if threshold < 0 || threshold > 1 {
		panic(fmt.Sprintf("sim: recall threshold %v out of [0,1]", threshold))
	}
	p.Reset(item)
	t := oracle.NewTracker(ex, item)
	var res SerialResult
	for t.Recall() < threshold-1e-12 && t.ExecutedCount() < ex.NumModels() {
		m := p.Next(t, Unconstrained())
		if m < 0 {
			break
		}
		t.Execute(m)
		p.Observe(m, ex.Output(item, m))
		res.Executed = append(res.Executed, m)
		res.TimeMS += ex.Model(m).TimeMS
	}
	res.Recall = t.Recall()
	res.HasRecall = t.HasTruth()
	return res
}

// RunDeadline executes models serially under a per-image deadline: a model
// may start only if it finishes within the budget (Algorithm 1 line 3).
func RunDeadline(ex oracle.Executor, item int, p Policy, deadlineMS float64) SerialResult {
	p.Reset(item)
	t := oracle.NewTracker(ex, item)
	var res SerialResult
	remaining := deadlineMS
	for remaining > 0 && t.ExecutedCount() < ex.NumModels() {
		m := p.Next(t, Constraints{RemainingMS: remaining, AvailMemMB: math.Inf(1)})
		if m < 0 {
			break
		}
		mt := ex.Model(m).TimeMS
		if mt > remaining+budgetEps {
			panic(fmt.Sprintf("sim: policy %s exceeded the deadline (model %d needs %v, %v left)",
				p.Name(), m, mt, remaining))
		}
		t.Execute(m)
		p.Observe(m, ex.Output(item, m))
		res.Executed = append(res.Executed, m)
		res.TimeMS += mt
		remaining -= mt
	}
	res.Recall = t.Recall()
	res.HasRecall = t.HasTruth()
	return res
}

// ParallelResult summarizes one deadline+memory episode.
type ParallelResult struct {
	Executed   []int   // models in completion order
	MakespanMS float64 // wall-clock time of the schedule
	PeakMemMB  float64 // maximum simultaneous memory use observed
	Recall     float64
	HasRecall  bool // as in SerialResult
}

// running is one in-flight model execution.
type running struct {
	model    int
	finishMS float64
}

// RunParallel simulates multi-processor execution under a wall-clock
// deadline and a shared GPU memory budget. At each scheduling point the
// executor asks the policy for one model at a time — passing the time
// left to the deadline and the memory headroom after earlier launches —
// until the policy declines; launched models occupy their peak memory
// while running and release it on completion. Outputs become visible
// (updating the labeling state, via Observe) when a model finishes,
// which is when new Q-value predictions may change.
func RunParallel(ex oracle.Executor, item int, p Policy, deadlineMS, memMB float64) ParallelResult {
	if deadlineMS <= 0 || memMB <= 0 {
		panic("sim: non-positive parallel budgets")
	}
	p.Reset(item)
	t := oracle.NewTracker(ex, item)
	var (
		res     ParallelResult
		inFly   []running
		now     float64
		usedMem float64
	)
	isRunning := func(m int) bool {
		for _, r := range inFly {
			if r.model == m {
				return true
			}
		}
		return false
	}
	for {
		// Launch phase: one model per ask until the policy declines or
		// a budget is exhausted.
		for {
			remaining, avail := deadlineMS-now, memMB-usedMem
			if remaining <= 0 || avail <= 0 {
				break
			}
			m := p.Next(t, Constraints{RemainingMS: remaining, AvailMemMB: avail})
			if m < 0 {
				break
			}
			mod := ex.Model(m)
			if t.Executed(m) || isRunning(m) {
				panic(fmt.Sprintf("sim: policy %s launched model %d twice", p.Name(), m))
			}
			if usedMem+mod.MemMB > memMB+budgetEps {
				panic(fmt.Sprintf("sim: policy %s exceeded memory budget", p.Name()))
			}
			if now+mod.TimeMS > deadlineMS+budgetEps {
				panic(fmt.Sprintf("sim: policy %s launched past the deadline", p.Name()))
			}
			usedMem += mod.MemMB
			inFly = append(inFly, running{model: m, finishMS: now + mod.TimeMS})
		}
		if usedMem > res.PeakMemMB {
			res.PeakMemMB = usedMem
		}
		if len(inFly) == 0 {
			break // nothing running and nothing launched: schedule is done
		}
		// Advance to the earliest completion (Algorithm 2 line 14).
		ei := 0
		for i, r := range inFly {
			if r.finishMS < inFly[ei].finishMS {
				ei = i
			}
		}
		done := inFly[ei]
		inFly = append(inFly[:ei], inFly[ei+1:]...)
		now = done.finishMS
		usedMem -= ex.Model(done.model).MemMB
		t.Execute(done.model) // output revealed at completion
		p.Observe(done.model, ex.Output(item, done.model))
		res.Executed = append(res.Executed, done.model)
	}
	res.MakespanMS = now
	res.Recall = t.Recall()
	res.HasRecall = t.HasTruth()
	return res
}

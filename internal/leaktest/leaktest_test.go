package leaktest

import (
	"strings"
	"testing"
	"time"
)

func TestCheckReportsBlockedGoroutine(t *testing.T) {
	release := make(chan struct{})
	go func() { <-release }()
	leaked := Check(200 * time.Millisecond)
	if !strings.Contains(leaked, "leaktest.TestCheckReportsBlockedGoroutine") {
		t.Fatalf("blocked goroutine not reported; got:\n%s", leaked)
	}
	close(release)
	if leaked := Check(5 * time.Second); leaked != "" {
		t.Fatalf("still leaked after release:\n%s", leaked)
	}
}

func TestCheckCleanByDefault(t *testing.T) {
	if leaked := Check(5 * time.Second); leaked != "" {
		t.Fatalf("unexpected goroutines:\n%s", leaked)
	}
}

// Package leaktest fails a package's tests when goroutines outlive the
// test run: a leaked dispatcher, lane timer, or flusher is a bug in a
// server whose whole point is bounded concurrency. It is a minimal,
// dependency-free stand-in for go.uber.org/goleak (this module builds
// offline and vendors nothing) with the same integration shape:
//
//	func TestMain(m *testing.M) { leaktest.VerifyTestMain(m) }
//
// After the package's tests pass, the goroutine dump is polled with
// backoff (goroutines legitimately in teardown get time to exit); any
// survivor that is not a known runtime/testing housekeeping goroutine
// fails the run with its full stack.
package leaktest

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// ignoredStacks mark goroutines the runtime and testing machinery keep
// alive for the process's lifetime — never leaks.
var ignoredStacks = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*M).",
	"runtime.goexit",
	"created by runtime.gc",
	"created by runtime.createfing",
	"runtime.MHeap_Scavenger",
	"signal.signal_recv",
	"sigterm.handler",
	"runtime_mcall",
	"(*loggingT).flushDaemon",
	"goroutine in C code",
	"runtime.CPUProfile",
}

// VerifyTestMain runs the package's tests, then fails the process if
// goroutines leaked. Use from TestMain in goroutine-heavy packages.
func VerifyTestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if leaked := Check(5 * time.Second); leaked != "" {
			fmt.Fprintf(os.Stderr, "leaktest: leaked goroutines after tests:\n%s\n", leaked)
			code = 1
		}
	}
	os.Exit(code)
}

// Check polls until no unexpected goroutines remain or the deadline
// passes, returning the offending stacks ("" when clean). The backoff
// matters: dispatchers and flushers wind down asynchronously after
// Close returns, which is teardown, not a leak.
func Check(deadline time.Duration) string {
	var leaked []string
	for end := time.Now().Add(deadline); ; {
		leaked = interestingGoroutines()
		if len(leaked) == 0 {
			return ""
		}
		if time.Now().After(end) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	return strings.Join(leaked, "\n\n")
}

// interestingGoroutines returns the stacks of goroutines that are
// neither the caller nor known housekeeping.
func interestingGoroutines() []string {
	buf := make([]byte, 2<<20)
	buf = buf[:runtime.Stack(buf, true)]
	var out []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		header, rest, _ := strings.Cut(g, "\n")
		if rest == "" || strings.Contains(header, "goroutine 1 ") {
			continue // the main goroutine (running this check)
		}
		ignored := false
		for _, marker := range ignoredStacks {
			if strings.Contains(g, marker) {
				ignored = true
				break
			}
		}
		if !ignored {
			out = append(out, strings.TrimSpace(g))
		}
	}
	return out
}

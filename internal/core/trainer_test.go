package core

import (
	"testing"

	"ams/internal/oracle"
	"ams/internal/rl"
	"ams/internal/sched"
	"ams/internal/sim"
	"ams/internal/synth"
	"ams/internal/tensor"
	"ams/internal/zoo"
)

func TestTrainerIncrementalMatchesOneShot(t *testing.T) {
	ds := synth.NewDataset(vocab, synth.MSCOCO(), 40, 101)
	store := oracle.Build(z, ds.Scenes)
	cfg := tinyTrainConfig(rl.DQN)
	cfg.Epochs = 4

	oneShot := Train(store, cfg)

	tr := NewTrainer(store.NumModels(), cfg)
	tr.TrainEpochs(store, 2)
	tr.TrainEpochs(store, 2)
	incremental := tr.Agent()

	state := []int{2, 40, 600}
	a := append([]float64(nil), oneShot.Predict(state)...)
	b := incremental.Predict(state)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("incremental training diverges from one-shot with the same seed")
		}
	}
}

func TestTrainerSnapshotIsIndependent(t *testing.T) {
	ds := synth.NewDataset(vocab, synth.MSCOCO(), 30, 103)
	store := oracle.Build(z, ds.Scenes)
	cfg := tinyTrainConfig(rl.DQN)
	tr := NewTrainer(store.NumModels(), cfg)
	tr.TrainEpochs(store, 1)
	snap := tr.Agent()
	before := append([]float64(nil), snap.Predict([]int{1})...)
	tr.TrainEpochs(store, 2)
	after := snap.Predict([]int{1})
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("snapshot mutated by continued training")
		}
	}
}

func TestTrainerOnlineAdaptation(t *testing.T) {
	// Train on Places, then continue on Stanford40: the adapted agent must
	// beat the unadapted one on Stanford40 content.
	places := oracle.Build(z, synth.NewDataset(vocab, synth.Places365(), 120, 107).Scenes)
	stanford := oracle.Build(z, synth.NewDataset(vocab, synth.Stanford40(), 120, 109).Scenes)
	testSet := oracle.Build(z, synth.NewDataset(vocab, synth.Stanford40(), 120, 111).Scenes)

	cfg := tinyTrainConfig(rl.DuelingDQN)
	cfg.Epochs = 5
	tr := NewTrainer(places.NumModels(), cfg)
	tr.TrainEpochs(places, 5)
	base := tr.Agent()
	tr.TrainEpochs(stanford, 5)
	adapted := tr.Agent()

	evalTime := func(a *Agent) float64 {
		var sum float64
		p := sched.NewQGreedy(a, z)
		for i := 0; i < testSet.NumScenes(); i++ {
			sum += sim.RunToRecall(testSet, i, p, 1.0).TimeMS
		}
		return sum
	}
	if evalTime(adapted) >= evalTime(base)*1.02 {
		t.Fatalf("online adaptation did not help: adapted %v vs base %v",
			evalTime(adapted), evalTime(base))
	}
}

func TestTrainerStoreMismatchPanics(t *testing.T) {
	cfg := tinyTrainConfig(rl.DQN)
	tr := NewTrainer(5, cfg) // wrong model count
	ds := synth.NewDataset(vocab, synth.MSCOCO(), 12, 113)
	store := oracle.Build(z, ds.Scenes)
	defer func() {
		if recover() == nil {
			t.Fatal("model-count mismatch did not panic")
		}
	}()
	tr.TrainEpochs(store, 1)
}

func TestTrainerExtensionsRun(t *testing.T) {
	// Prioritized replay + soft target must train without blowing up.
	ds := synth.NewDataset(vocab, synth.MirFlickr(), 30, 117)
	store := oracle.Build(z, ds.Scenes)
	cfg := tinyTrainConfig(rl.DQN)
	cfg.Prioritized = true
	cfg.TargetTau = 0.01
	cfg.Epochs = 2
	agent := Train(store, cfg)
	q := agent.Predict(nil)
	for _, v := range q {
		if v != v { // NaN
			t.Fatal("prioritized+soft training produced NaN")
		}
	}
	_ = tensor.NewRNG // keep import balanced via blank usage if needed
}

func TestTrainerGlobalStepAdvances(t *testing.T) {
	ds := synth.NewDataset(vocab, synth.MSCOCO(), 15, 119)
	store := oracle.Build(z, ds.Scenes)
	tr := NewTrainer(zoo.NumModels, tinyTrainConfig(rl.DQN))
	if tr.GlobalStep() != 0 {
		t.Fatal("fresh trainer has steps")
	}
	tr.TrainEpochs(store, 1)
	if tr.GlobalStep() < store.NumScenes() {
		t.Fatalf("too few steps: %d", tr.GlobalStep())
	}
}

package core

import (
	"bytes"
	"math"
	"testing"

	"ams/internal/labels"
	"ams/internal/oracle"
	"ams/internal/rl"
	"ams/internal/sched"
	"ams/internal/sim"
	"ams/internal/synth"
	"ams/internal/tensor"
	"ams/internal/zoo"
)

var (
	vocab = labels.NewVocabulary()
	z     = zoo.NewZoo(vocab)
)

// tinyTrainConfig keeps unit-test training fast.
func tinyTrainConfig(algo rl.Algorithm) TrainConfig {
	return TrainConfig{
		Algo:            algo,
		Epochs:          4,
		Hidden:          []int{32},
		LearningRate:    0.002,
		BatchSize:       16,
		ReplayCapacity:  4000,
		TargetSyncEvery: 100,
		TrainEvery:      2,
		Epsilon:         rl.EpsilonSchedule{Start: 1, End: 0.1, DecaySteps: 1500},
		Seed:            7,
		Dataset:         "unit",
	}
}

func TestRewardFunction(t *testing.T) {
	if r := Reward(1, 0, 0); r != -1 {
		t.Fatalf("empty output reward %v, want -1", r)
	}
	r := Reward(1, 2, 1.4)
	want := math.Log(1.4 + 1)
	if math.Abs(r-want) > 1e-12 {
		t.Fatalf("reward %v, want %v", r, want)
	}
	// Theta scales inside the log: higher priority, higher reward.
	if Reward(5, 2, 1.4) <= Reward(1, 2, 1.4) {
		t.Fatal("higher theta did not increase reward")
	}
	// Logarithm compresses: 10x value is far less than 10x reward.
	if Reward(1, 20, 14) > 10*Reward(1, 1, 0.7) {
		t.Fatal("logarithmic smoothing failed to compress large outputs")
	}
	// Low-confidence-only fresh output still earns a small positive
	// reward, not the punishment.
	if r := Reward(1, 1, 0.1); r <= 0 || r >= 0.2 {
		t.Fatalf("low-value fresh reward %v out of expected band", r)
	}
}

func TestFreshValueUsesProfits(t *testing.T) {
	faceKP := vocab.TaskLabels(labels.FaceLandmark)[0]
	place := vocab.TaskLabels(labels.PlaceClassification)[0]
	fv := FreshValue(vocab, []zoo.LabelConf{{ID: faceKP, Conf: 0.9}, {ID: place, Conf: 0.9}})
	// Keypoints carry a fractional profit; places carry 1.0.
	want := 0.05*0.9 + 1.0*0.9
	if math.Abs(fv-want) > 1e-12 {
		t.Fatalf("FreshValue = %v, want %v", fv, want)
	}
}

func TestTrainProducesUsefulAgent(t *testing.T) {
	ds := synth.NewDataset(vocab, synth.MSCOCO(), 150, 61)
	train, test := ds.Split(0.3)
	trainStore := oracle.Build(z, train)
	testStore := oracle.Build(z, test)

	cfg := tinyTrainConfig(rl.DuelingDQN)
	cfg.Epochs = 6
	agent := Train(trainStore, cfg)

	if agent.NumModels != zoo.NumModels || agent.Algo != rl.DuelingDQN {
		t.Fatalf("agent metadata wrong: %+v", agent)
	}
	if agent.Net.Out() != zoo.NumModels+1 {
		t.Fatalf("agent network has %d outputs", agent.Net.Out())
	}

	// The Q-greedy policy with the trained agent must beat random on the
	// held-out scenes (average executed models to reach full recall).
	rng := tensor.NewRNG(3)
	var agentN, randN int
	for i := 0; i < testStore.NumScenes(); i++ {
		agentN += len(sim.RunToRecall(testStore, i,
			sched.NewQGreedy(agent, z), 1.0).Executed)
		randN += len(sim.RunToRecall(testStore, i,
			sched.NewRandom(z, rng), 1.0).Executed)
	}
	if agentN >= randN {
		t.Fatalf("trained agent (%d executions) not better than random (%d)", agentN, randN)
	}
}

func TestTrainAllAlgorithmsRun(t *testing.T) {
	ds := synth.NewDataset(vocab, synth.MirFlickr(), 40, 67)
	store := oracle.Build(z, ds.Scenes)
	for _, algo := range rl.Algorithms() {
		cfg := tinyTrainConfig(algo)
		cfg.Epochs = 1
		agent := Train(store, cfg)
		if agent.Algo != algo {
			t.Fatalf("agent records algo %v, want %v", agent.Algo, algo)
		}
		q := agent.Predict(nil)
		if len(q) != zoo.NumModels+1 {
			t.Fatalf("%v predict returned %d values", algo, len(q))
		}
		for _, v := range q {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%v produced non-finite Q values", algo)
			}
		}
	}
}

func TestTrainProgressCallback(t *testing.T) {
	ds := synth.NewDataset(vocab, synth.VOC2012(), 20, 71)
	store := oracle.Build(z, ds.Scenes)
	cfg := tinyTrainConfig(rl.DQN)
	cfg.Epochs = 3
	var epochs []int
	cfg.Progress = func(epoch int, loss, reward float64) {
		epochs = append(epochs, epoch)
		if math.IsNaN(loss) || math.IsNaN(reward) {
			t.Fatalf("non-finite progress at epoch %d", epoch)
		}
	}
	Train(store, cfg)
	if len(epochs) != 3 || epochs[0] != 0 || epochs[2] != 2 {
		t.Fatalf("progress callback epochs %v", epochs)
	}
}

func TestTrainThetaValidation(t *testing.T) {
	ds := synth.NewDataset(vocab, synth.VOC2012(), 10, 73)
	store := oracle.Build(z, ds.Scenes)
	cfg := tinyTrainConfig(rl.DQN)
	cfg.Theta = []float64{1, 2} // wrong length
	defer func() {
		if recover() == nil {
			t.Fatal("bad Theta did not panic")
		}
	}()
	Train(store, cfg)
}

func TestAgentSaveLoadRoundTrip(t *testing.T) {
	ds := synth.NewDataset(vocab, synth.MSCOCO(), 15, 79)
	store := oracle.Build(z, ds.Scenes)
	cfg := tinyTrainConfig(rl.DoubleDQN)
	cfg.Epochs = 1
	agent := Train(store, cfg)

	var buf bytes.Buffer
	if err := agent.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := LoadAgent(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if loaded.Algo != rl.DoubleDQN || loaded.NumModels != zoo.NumModels ||
		loaded.Dataset != "unit" {
		t.Fatalf("loaded metadata wrong: %+v", loaded)
	}
	state := []int{3, 50, 200}
	qa := append([]float64(nil), agent.Predict(state)...)
	qb := loaded.Predict(state)
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatalf("loaded agent predicts differently at %d", i)
		}
	}
}

func TestLoadAgentRejectsGarbage(t *testing.T) {
	if _, err := LoadAgent(bytes.NewBufferString("garbage")); err == nil {
		t.Fatal("LoadAgent accepted garbage")
	}
}

func TestAgentFileRoundTrip(t *testing.T) {
	ds := synth.NewDataset(vocab, synth.MSCOCO(), 10, 83)
	store := oracle.Build(z, ds.Scenes)
	cfg := tinyTrainConfig(rl.DQN)
	cfg.Epochs = 1
	agent := Train(store, cfg)
	path := t.TempDir() + "/agent.gob"
	if err := agent.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	loaded, err := LoadAgentFile(path)
	if err != nil {
		t.Fatalf("LoadAgentFile: %v", err)
	}
	if loaded.Algo != rl.DQN {
		t.Fatalf("wrong algo after file round trip")
	}
}

func TestEndIndexAndDeterminism(t *testing.T) {
	ds := synth.NewDataset(vocab, synth.MSCOCO(), 20, 89)
	store := oracle.Build(z, ds.Scenes)
	cfg := tinyTrainConfig(rl.DQN)
	cfg.Epochs = 2
	a := Train(store, cfg)
	b := Train(store, cfg)
	if a.EndIndex() != zoo.NumModels {
		t.Fatalf("EndIndex = %d", a.EndIndex())
	}
	// Same seed, same data: identical agents.
	state := []int{1, 2, 3}
	qa := append([]float64(nil), a.Predict(state)...)
	qb := b.Predict(state)
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatal("training is not deterministic for a fixed seed")
		}
	}
}

package core

import (
	"fmt"
	"math"

	"ams/internal/labels"
	"ams/internal/oracle"
	"ams/internal/rl"
	"ams/internal/tensor"
	"ams/internal/zoo"
)

// TrainConfig configures DRL agent training.
type TrainConfig struct {
	Algo   rl.Algorithm
	Epochs int   // passes over the training scenes
	Hidden []int // Q-network hidden widths; the paper uses {256}

	Gamma           float64
	LearningRate    float64
	BatchSize       int
	ReplayCapacity  int
	TargetSyncEvery int
	TrainEvery      int // environment steps per optimizer update

	Epsilon rl.EpsilonSchedule // zero value enables the default anneal

	// Theta holds the per-model priority parameters θ_m of Eq. 3 (§IV-A).
	// Nil means every model has priority 1.
	Theta []float64

	// DisableEnd removes the END action from training episodes; episodes
	// then only terminate when every model has executed. The paper adds
	// END precisely because its absence slows convergence (§IV-B) — this
	// switch exists for that ablation.
	DisableEnd bool

	// Shape selects the positive-reward smoothing; RewardLog is the
	// paper's choice (§IV-A also reports that other smoothings such as
	// the per-label average behave similarly).
	Shape RewardShape

	// Prioritized switches the learner to prioritized experience replay;
	// TargetTau enables Polyak target updates. Both are extension knobs
	// beyond the paper's uniform-replay, hard-sync setup.
	Prioritized bool
	TargetTau   float64

	Seed    uint64
	Dataset string // recorded on the trained agent

	// Progress, when non-nil, receives (epoch, meanLoss, meanReward) after
	// every epoch.
	Progress func(epoch int, meanLoss, meanReward float64)
}

// withDefaults fills unset fields.
func (c TrainConfig) withDefaults(numModels int) TrainConfig {
	if c.Epochs == 0 {
		c.Epochs = 10
	}
	if c.Gamma == 0 {
		// A small discount keeps Q(s,m) close to the model's immediate
		// profit, which is the quantity Algorithm 1's Q/time density (and
		// Algorithm 2's Q/(time*mem)) needs. Large discounts fold the
		// shared future return into every action and flatten the ranking.
		c.Gamma = 0.3
	}
	if len(c.Hidden) == 0 {
		c.Hidden = []int{256}
	}
	if c.TrainEvery == 0 {
		c.TrainEvery = 2
	}
	if c.Epsilon == (rl.EpsilonSchedule{}) {
		c.Epsilon = rl.EpsilonSchedule{Start: 1, End: 0.05, DecaySteps: 20000}
	}
	if c.Theta == nil {
		c.Theta = make([]float64, numModels)
		for i := range c.Theta {
			c.Theta[i] = 1
		}
	}
	return c
}

// RewardShape selects how the positive reward grows with fresh output
// value.
type RewardShape int

// The supported reward smoothings.
const (
	// RewardLog is ln(θ·value + 1), the paper's Eq. 3.
	RewardLog RewardShape = iota
	// RewardLinear is θ·value with no smoothing — the §IV-A strawman that
	// over-rewards many-label models.
	RewardLinear
	// RewardAverage is θ·value/|O'|, the per-label average confidence
	// smoothing §IV-A mentions as an alternative.
	RewardAverage
)

// String names the shape.
func (s RewardShape) String() string {
	switch s {
	case RewardLog:
		return "log"
	case RewardLinear:
		return "linear"
	case RewardAverage:
		return "average"
	default:
		return fmt.Sprintf("RewardShape(%d)", int(s))
	}
}

// RewardWith computes the reward under an explicit smoothing shape.
func RewardWith(shape RewardShape, theta float64, freshCount int, freshValue float64) float64 {
	if freshCount == 0 {
		return -1
	}
	switch shape {
	case RewardLinear:
		return theta * freshValue
	case RewardAverage:
		return theta * freshValue / float64(freshCount)
	default:
		return math.Log(theta*freshValue + 1)
	}
}

// FreshValue sums the profit-weighted confidences of newly emitted labels
// — the Σ p_i·conf_i term feeding the reward function.
func FreshValue(vocab *labels.Vocabulary, fresh []zoo.LabelConf) float64 {
	var sum float64
	for _, lc := range fresh {
		sum += vocab.Label(lc.ID).Profit * lc.Conf
	}
	return sum
}

// Reward implements the paper's reward function (Eq. 3):
//
//	r(m,d) = ln(θ_m · Σ_{l ∈ O'(m,d)} p_l·l.conf + 1)  when O'(m,d) ≠ ∅
//	r(m,d) = −1                                         when O'(m,d) = ∅
//
// where O'(m,d) is the set of labels m emitted that no previously executed
// model had emitted, and freshCount/freshValue are |O'| and its
// profit-weighted confidence sum. The logarithm smooths the bias from
// models with very different output counts, exactly as §IV-A argues.
func Reward(theta float64, freshCount int, freshValue float64) float64 {
	return RewardWith(RewardLog, theta, freshCount, freshValue)
}

// Trainer runs the DRL training environment of §IV and supports
// incremental (continual) training: call TrainEpochs repeatedly —
// possibly against different stores — and snapshot an Agent at any point.
// The environment: the observation is the binary labeling state, each
// model is an action, END terminates the episode with zero reward, and
// executing a model that contributes nothing new is punished with −1.
type Trainer struct {
	cfg        TrainConfig
	numModels  int
	learner    *rl.Learner
	rng        *tensor.RNG
	globalStep int
	epoch      int
}

// NewTrainer constructs a trainer for a zoo of numModels models.
func NewTrainer(numModels int, cfg TrainConfig) *Trainer {
	cfg = cfg.withDefaults(numModels)
	if len(cfg.Theta) != numModels {
		panic(fmt.Sprintf("core: Theta has %d entries, want %d", len(cfg.Theta), numModels))
	}
	rng := tensor.NewRNG(cfg.Seed)
	learner := rl.NewLearner(rl.LearnerConfig{
		Algo:            cfg.Algo,
		StateDim:        labels.Total,
		Actions:         numModels + 1, // + END
		Hidden:          cfg.Hidden,
		Gamma:           cfg.Gamma,
		LearningRate:    cfg.LearningRate,
		BatchSize:       cfg.BatchSize,
		ReplayCapacity:  cfg.ReplayCapacity,
		TargetSyncEvery: cfg.TargetSyncEvery,
		Prioritized:     cfg.Prioritized,
		TargetTau:       cfg.TargetTau,
	}, rng.Split())
	return &Trainer{cfg: cfg, numModels: numModels, learner: learner, rng: rng}
}

// GlobalStep returns the number of environment steps taken so far.
func (tr *Trainer) GlobalStep() int { return tr.globalStep }

// TrainEpochs runs the given number of passes over the store's scenes.
// The store must use the same zoo size the trainer was built for.
func (tr *Trainer) TrainEpochs(st *oracle.Store, epochs int) {
	if st.NumModels() != tr.numModels {
		panic(fmt.Sprintf("core: store has %d models, trainer expects %d",
			st.NumModels(), tr.numModels))
	}
	end := tr.numModels
	allowedActions := func(t *oracle.Tracker) []int {
		un := t.Unexecuted()
		if tr.cfg.DisableEnd {
			return un
		}
		return append(un, end) // END is always available
	}
	maybeTrain := func(epochLoss *float64, lossN *int) {
		tr.globalStep++
		if tr.globalStep%tr.cfg.TrainEvery == 0 {
			if l := tr.learner.TrainStep(); l > 0 {
				*epochLoss += l
				*lossN++
			}
		}
	}

	for e := 0; e < epochs; e++ {
		// A fresh permutation each epoch keeps incremental training
		// (TrainEpochs called repeatedly) identical to a single call.
		order := tr.rng.Perm(st.NumScenes())
		var epochLoss, epochReward float64
		var lossN, stepN int
		for _, scene := range order {
			t := oracle.NewTracker(st, scene)
			state := append([]int(nil), t.State()...)
			eps := tr.cfg.Epsilon.At(tr.globalStep)
			action := tr.learner.SelectAction(state, eps, allowedActions(t))
			for {
				if action == end {
					tr.learner.Observe(rl.Transition{
						State: state, Action: end, Reward: 0, Done: true,
					})
					stepN++
					maybeTrain(&epochLoss, &lossN)
					break
				}
				fresh := t.Execute(action)
				r := RewardWith(tr.cfg.Shape, tr.cfg.Theta[action],
					len(fresh), FreshValue(st.Zoo.Vocab, fresh))
				epochReward += r
				next := append([]int(nil), t.State()...)
				done := t.ExecutedCount() == tr.numModels
				var nextAction int
				if !done {
					eps = tr.cfg.Epsilon.At(tr.globalStep)
					nextAction = tr.learner.SelectAction(next, eps, allowedActions(t))
				}
				tr.learner.Observe(rl.Transition{
					State: state, Action: action, Reward: r,
					Next: next, NextAction: nextAction, Done: done,
				})
				stepN++
				maybeTrain(&epochLoss, &lossN)
				if done {
					break
				}
				state, action = next, nextAction
			}
		}
		if tr.cfg.Progress != nil {
			meanLoss := 0.0
			if lossN > 0 {
				meanLoss = epochLoss / float64(lossN)
			}
			meanReward := 0.0
			if stepN > 0 {
				meanReward = epochReward / float64(stepN)
			}
			tr.cfg.Progress(tr.epoch, meanLoss, meanReward)
		}
		tr.epoch++
	}
}

// Agent snapshots the current policy as an independent Agent (the network
// is cloned, so further training does not mutate the snapshot).
func (tr *Trainer) Agent() *Agent {
	return &Agent{
		Net:       tr.learner.Online().Clone(),
		NumModels: tr.numModels,
		Algo:      tr.cfg.Algo,
		Dataset:   tr.cfg.Dataset,
	}
}

// Train runs DRL training over the store's scenes and returns the trained
// agent — the one-shot convenience wrapper around Trainer.
func Train(st *oracle.Store, cfg TrainConfig) *Agent {
	tr := NewTrainer(st.NumModels(), cfg)
	tr.TrainEpochs(st, tr.cfg.Epochs)
	return tr.Agent()
}

// Package core implements the paper's primary contribution: the adaptive
// model scheduling framework. It wires the labeling environment (oracle
// ground truth) to the DRL machinery (internal/rl), trains model-value
// prediction agents with the paper's reward function (Eq. 3) and END
// action, and exposes the trained agent as a predictor the scheduling
// algorithms consume.
package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"ams/internal/nn"
	"ams/internal/rl"
)

// Agent is a trained model-value predictor: a Q network over the labeling
// state whose first NumModels outputs are per-model values and whose last
// output is the END action used during training.
type Agent struct {
	Net       *nn.Net
	NumModels int
	Algo      rl.Algorithm
	Dataset   string // profile name the agent was trained on
}

// EndIndex returns the action index of the END action.
func (a *Agent) EndIndex() int { return a.NumModels }

// Predict implements sched.Predictor: it returns the Q values of every
// action (models first, END last) for the sparse labeling state. The
// slice aliases network storage and is invalidated by the next call.
func (a *Agent) Predict(state []int) []float64 { return a.Net.Forward(state) }

// agentBlob is the gob wire format of an Agent. The network is embedded
// as opaque bytes so the whole agent travels in a single gob message
// (a trailing second stream would trip over the decoder's read-ahead).
type agentBlob struct {
	NumModels int
	Algo      string
	Dataset   string
	Net       []byte
}

// Save writes the agent (metadata + network weights) to w.
func (a *Agent) Save(w io.Writer) error {
	var netBuf bytes.Buffer
	if err := a.Net.Save(&netBuf); err != nil {
		return err
	}
	blob := agentBlob{
		NumModels: a.NumModels,
		Algo:      a.Algo.String(),
		Dataset:   a.Dataset,
		Net:       netBuf.Bytes(),
	}
	if err := gob.NewEncoder(w).Encode(blob); err != nil {
		return fmt.Errorf("core: save agent: %w", err)
	}
	return nil
}

// LoadAgent reads an agent previously written with Save.
func LoadAgent(r io.Reader) (*Agent, error) {
	var blob agentBlob
	if err := gob.NewDecoder(r).Decode(&blob); err != nil {
		return nil, fmt.Errorf("core: load agent: %w", err)
	}
	algo, err := rl.ParseAlgorithm(blob.Algo)
	if err != nil {
		return nil, fmt.Errorf("core: load agent: %w", err)
	}
	net, err := nn.Load(bytes.NewReader(blob.Net))
	if err != nil {
		return nil, err
	}
	if net.Out() != blob.NumModels+1 {
		return nil, fmt.Errorf("core: load agent: network has %d outputs, want %d",
			net.Out(), blob.NumModels+1)
	}
	return &Agent{Net: net, NumModels: blob.NumModels, Algo: algo, Dataset: blob.Dataset}, nil
}

// SaveFile writes the agent to the named file.
func (a *Agent) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: save agent: %w", err)
	}
	defer f.Close()
	if err := a.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadAgentFile reads an agent from the named file.
func LoadAgentFile(path string) (*Agent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load agent: %w", err)
	}
	defer f.Close()
	return LoadAgent(f)
}

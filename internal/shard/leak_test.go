package shard

import (
	"testing"

	"ams/internal/leaktest"
)

// TestMain fails the package when router dispatchers, steal loops, or
// completion forwarders outlive the tests.
func TestMain(m *testing.M) {
	leaktest.VerifyTestMain(m)
}

package shard

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"ams/internal/labels"
	"ams/internal/oracle"
	"ams/internal/serve"
	"ams/internal/service"
	"ams/internal/sim"
	"ams/internal/synth"
	"ams/internal/zoo"
)

var (
	vocab = labels.NewVocabulary()
	z     = zoo.NewZoo(vocab)
	ds    = synth.NewDataset(vocab, synth.MSCOCO(), 40, 77)
	store = oracle.Build(z, ds.Scenes)
)

// fixedPolicy executes a fixed model list in order, skipping models the
// constraints exclude, so every item gets the same deterministic
// schedule regardless of which shard runs it.
type fixedPolicy struct{ models []int }

func (p *fixedPolicy) Name() string { return "fixed" }
func (p *fixedPolicy) Reset(int)    {}
func (p *fixedPolicy) Next(t *oracle.Tracker, c sim.Constraints) int {
	for _, m := range p.models {
		if !t.Executed(m) && c.Allows(z.Models[m]) {
			return m
		}
	}
	return -1
}
func (p *fixedPolicy) Observe(int, zoo.Output) {}

func fixedFactory(models ...int) service.PolicyFactory {
	return func(worker int) sim.Policy { return &fixedPolicy{models: models} }
}

// newShardServers builds n identical shard servers on one clock epoch.
func newShardServers(t *testing.T, n, workers int) []*serve.Server {
	t.Helper()
	epoch := time.Now()
	servers := make([]*serve.Server, n)
	for s := range servers {
		sv, err := serve.New(store, fixedFactory(0, 1), serve.Config{
			Config:    service.Config{Workers: workers, DeadlineSec: 0.5},
			TimeScale: 0.001,
			Epoch:     epoch,
		})
		if err != nil {
			t.Fatalf("serve.New: %v", err)
		}
		servers[s] = sv
	}
	return servers
}

func workerCounts(n, workers int) []int {
	w := make([]int, n)
	for i := range w {
		w[i] = workers
	}
	return w
}

// keyOn finds a key at or after start whose hash home is shard s.
func keyOn(s, shards int, start uint64) uint64 {
	for k := start; ; k++ {
		if ShardFor(k, shards) == s {
			return k
		}
	}
}

func TestShardForStable(t *testing.T) {
	counts := make([]int, 4)
	for k := uint64(0); k < 4000; k++ {
		s := ShardFor(k, 4)
		if s2 := ShardFor(k, 4); s2 != s {
			t.Fatalf("ShardFor(%d) unstable: %d then %d", k, s, s2)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c < 500 {
			t.Errorf("shard %d got %d of 4000 keys; hash is badly skewed", s, c)
		}
	}
}

func TestPlacementByName(t *testing.T) {
	for name, want := range map[string]Placement{
		"": Hash, "hash": Hash, "least": LeastLoaded, "affinity": Affinity,
	} {
		got, err := PlacementByName(name)
		if err != nil || got != want {
			t.Errorf("PlacementByName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := PlacementByName("round-robin"); err == nil {
		t.Error("PlacementByName accepted an unknown policy")
	}
	for _, p := range []Placement{Hash, LeastLoaded, Affinity} {
		back, err := PlacementByName(p.String())
		if err != nil || back != p {
			t.Errorf("round-trip %v -> %q -> %v, %v", p, p.String(), back, err)
		}
	}
}

func TestNewValidation(t *testing.T) {
	servers := newShardServers(t, 2, 1)
	defer servers[0].Close()
	defer servers[1].Close()
	for _, tc := range []struct {
		name string
		srv  []*serve.Server
		cfg  Config
		want string
	}{
		{"no servers", nil, Config{}, "no servers"},
		{"worker count mismatch", servers, Config{Workers: []int{1}}, "worker counts"},
		{"affinity without models", servers, Config{Workers: []int{1, 1}, Placement: Affinity}, "model count"},
		{"capacity mismatch", servers, Config{Workers: []int{1, 1}, Capacity: []int{1}}, "capacities"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.srv, tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("New = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestHashPlacementMatchesShardFor submits keyed items through two
// independently built routers and checks every item executes on
// ShardFor(key, n) in both — hash placement is stable across router
// rebuilds (and, by the same function, across restarts).
func TestHashPlacementMatchesShardFor(t *testing.T) {
	const n = 4
	for rebuild := 0; rebuild < 2; rebuild++ {
		r, err := New(newShardServers(t, n, 2), Config{Workers: workerCounts(n, 2)})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		tickets := make([]*Ticket, 80)
		for i := range tickets {
			tk, err := r.SubmitWait(context.Background(), Item{Key: uint64(i), Index: i % ds.Len()})
			if err != nil {
				t.Fatalf("SubmitWait: %v", err)
			}
			tickets[i] = tk
		}
		if err := r.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		for i, tk := range tickets {
			res, err := tk.Result()
			if err != nil {
				t.Fatalf("item %d: %v", i, err)
			}
			if want := ShardFor(uint64(i), n); res.Shard != want {
				t.Errorf("rebuild %d: key %d ran on shard %d, want %d", rebuild, i, res.Shard, want)
			}
			if res.Stolen {
				t.Errorf("key %d reported stolen with stealing disabled", i)
			}
		}
	}
}

// TestAffinityGroupsHotTraffic drives two hint families through an
// affinity router and checks each family lands wholly on one shard —
// the first item of a family places by hash fallback, its heat credit
// then captures the rest.
func TestAffinityGroupsHotTraffic(t *testing.T) {
	const n = 2
	r, err := New(newShardServers(t, n, 2), Config{
		Placement: Affinity,
		Models:    len(z.Models),
		Workers:   workerCounts(n, 2),
		QueueCap:  64,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	keyA, keyB := keyOn(0, n, 0), keyOn(1, n, 0)
	var ticketsA, ticketsB []*Ticket
	for i := 0; i < 20; i++ {
		tkA, err := r.SubmitWait(context.Background(), Item{Key: keyA, Hint: []int{3}, Index: i % ds.Len()})
		if err != nil {
			t.Fatalf("SubmitWait A: %v", err)
		}
		tkB, err := r.SubmitWait(context.Background(), Item{Key: keyB, Hint: []int{7}, Index: i % ds.Len()})
		if err != nil {
			t.Fatalf("SubmitWait B: %v", err)
		}
		ticketsA, ticketsB = append(ticketsA, tkA), append(ticketsB, tkB)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i, tk := range ticketsA {
		if res, err := tk.Result(); err != nil || res.Shard != 0 {
			t.Errorf("family A item %d: shard %d, err %v; want shard 0", i, res.Shard, err)
		}
	}
	for i, tk := range ticketsB {
		if res, err := tk.Result(); err != nil || res.Shard != 1 {
			t.Errorf("family B item %d: shard %d, err %v; want shard 1", i, res.Shard, err)
		}
	}
}

// TestStealDrainsIdleShard hashes every item to shard 0 and checks the
// otherwise-idle shard 1 steals a share of them.
func TestStealDrainsIdleShard(t *testing.T) {
	const n = 2
	r, err := New(newShardServers(t, n, 2), Config{
		Steal:    true,
		Workers:  workerCounts(n, 2),
		QueueCap: 8,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	key := keyOn(0, n, 0)
	tickets := make([]*Ticket, 60)
	for i := range tickets {
		tk, err := r.SubmitWait(context.Background(), Item{Key: key, Index: i % ds.Len()})
		if err != nil {
			t.Fatalf("SubmitWait: %v", err)
		}
		tickets[i] = tk
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	stolen := 0
	for i, tk := range tickets {
		res, err := tk.Result()
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if res.Stolen != (res.Shard != 0) {
			t.Errorf("item %d: shard %d stolen=%v is inconsistent with home 0", i, res.Shard, res.Stolen)
		}
		if res.Stolen {
			stolen++
		}
	}
	st := r.Stats()
	if stolen == 0 || st.Steals == 0 {
		t.Fatalf("idle shard stole nothing (results %d, stats %d) from a fully skewed stream", stolen, st.Steals)
	}
	if int64(stolen) != st.Steals {
		t.Errorf("stolen results %d != stats steals %d", stolen, st.Steals)
	}
	if st.PerShard[1].Steals != st.Steals || st.PerShard[0].StolenFrom != st.Steals {
		t.Errorf("per-shard steal accounting: %+v", st.PerShard)
	}
}

// TestPinBypassesPlacementAndSteal pins every item to shard 1 (the
// replay path) and checks none run elsewhere even with stealing on.
func TestPinBypassesPlacementAndSteal(t *testing.T) {
	const n = 2
	r, err := New(newShardServers(t, n, 2), Config{
		Steal:    true,
		Workers:  workerCounts(n, 2),
		QueueCap: 64,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tickets := make([]*Ticket, 30)
	for i := range tickets {
		tk, err := r.SubmitWait(context.Background(), Item{Key: uint64(i), Index: i % ds.Len(), Pin: 2})
		if err != nil {
			t.Fatalf("SubmitWait: %v", err)
		}
		tickets[i] = tk
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i, tk := range tickets {
		res, err := tk.Result()
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if res.Shard != 1 || res.Stolen {
			t.Errorf("pinned item %d ran on shard %d (stolen=%v), want its pin 1", i, res.Shard, res.Stolen)
		}
	}
	if st := r.Stats(); st.Steals != 0 {
		t.Errorf("pinned stream recorded %d steals", st.Steals)
	}
}

// TestOneShardParity runs the same items through a 1-shard router and a
// bare server with the same deterministic policy: every item-level field
// that is not timing must match, and the merged summary must agree on
// counts and recall.
func TestOneShardParity(t *testing.T) {
	run := func(viaRouter bool) map[string]serve.ItemResult {
		sv := newShardServers(t, 1, 2)[0]
		out := make(map[string]serve.ItemResult)
		if viaRouter {
			r, err := New([]*serve.Server{sv}, Config{Workers: []int{2}})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			var tickets []*Ticket
			for i := 0; i < 12; i++ {
				tk, err := r.SubmitWait(context.Background(), Item{Key: uint64(i), Index: i, Tag: fmt.Sprintf("scene-%d", i)})
				if err != nil {
					t.Fatalf("SubmitWait: %v", err)
				}
				tickets = append(tickets, tk)
			}
			if err := r.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			for _, tk := range tickets {
				res, err := tk.Result()
				if err != nil {
					t.Fatalf("Result: %v", err)
				}
				out[res.Tag] = res.ItemResult
			}
			return out
		}
		var tickets []*serve.Ticket
		for i := 0; i < 12; i++ {
			tk, err := sv.SubmitWait(context.Background(), i, fmt.Sprintf("scene-%d", i))
			if err != nil {
				t.Fatalf("SubmitWait: %v", err)
			}
			tickets = append(tickets, tk)
		}
		if err := sv.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		for _, tk := range tickets {
			res := tk.Wait()
			out[res.Tag] = res
		}
		return out
	}

	routed, direct := run(true), run(false)
	if len(routed) != len(direct) {
		t.Fatalf("routed %d items, direct %d", len(routed), len(direct))
	}
	for tag, d := range direct {
		r, ok := routed[tag]
		if !ok {
			t.Fatalf("item %q missing from routed run", tag)
		}
		if r.Image != d.Image || len(r.Executed) != len(d.Executed) ||
			r.ScheduleMS != d.ScheduleMS || r.Recall != d.Recall || r.HasRecall != d.HasRecall {
			t.Errorf("item %q diverged: routed %+v, direct %+v", tag, r, d)
		}
		for i := range d.Executed {
			if r.Executed[i] != d.Executed[i] {
				t.Errorf("item %q executed %v, direct %v", tag, r.Executed, d.Executed)
				break
			}
		}
	}
}

// TestShardStress hammers an affinity+steal router from concurrent
// submitters; run under -race in CI.
func TestShardStress(t *testing.T) {
	const n, workers, goroutines, each = 4, 2, 8, 25
	r, err := New(newShardServers(t, n, workers), Config{
		Placement: Affinity,
		Steal:     true,
		Models:    len(z.Models),
		Workers:   workerCounts(n, workers),
		QueueCap:  16,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tk, err := r.SubmitWait(context.Background(), Item{
					Key:   uint64(g*each + i),
					Hint:  []int{(g + i) % len(z.Models)},
					Index: (g*each + i) % ds.Len(),
				})
				if err != nil {
					errs <- err
					return
				}
				if _, err := tk.Result(); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("submitter: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := r.Stats()
	if st.Merged.Completed != goroutines*each {
		t.Fatalf("completed %d of %d", st.Merged.Completed, goroutines*each)
	}
	if st.Failures != 0 {
		t.Fatalf("%d dispatch failures", st.Failures)
	}
	var assigned int64
	for _, ps := range st.PerShard {
		assigned += ps.Assigned
	}
	if assigned != goroutines*each {
		t.Errorf("assigned %d of %d", assigned, goroutines*each)
	}
}

package shard

import (
	"strconv"

	"ams/internal/obs"
)

// RegisterViews exposes the router's live routing state on reg as
// per-shard labeled series — views over the very counters Stats reads
// (no double bookkeeping), evaluated under r.mu at scrape time. No-op
// on a nil registry.
func (r *Router) RegisterViews(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for s := range r.servers {
		label := obs.L("shard", strconv.Itoa(s))
		s := s
		reg.CounterFunc("ams_shard_assigned_total",
			"Items placed on this shard as their home",
			func() int64 { r.mu.Lock(); defer r.mu.Unlock(); return r.assigned[s] }, label)
		reg.CounterFunc("ams_shard_steals_total",
			"Items this shard stole from a loaded sibling",
			func() int64 { r.mu.Lock(); defer r.mu.Unlock(); return r.steals[s] }, label)
		reg.CounterFunc("ams_shard_stolen_from_total",
			"Items stolen away from this shard",
			func() int64 { r.mu.Lock(); defer r.mu.Unlock(); return r.stolenFrom[s] }, label)
		reg.CounterFunc("ams_shard_rejected_total",
			"Placements refused with a full pending queue",
			func() int64 { r.mu.Lock(); defer r.mu.Unlock(); return r.rejected[s] }, label)
		reg.GaugeFunc("ams_shard_pending",
			"Items placed on this shard, not yet dispatched",
			func() float64 { r.mu.Lock(); defer r.mu.Unlock(); return float64(len(r.queues[s])) }, label)
		reg.GaugeFunc("ams_shard_inflight",
			"Items dispatched to this shard's server, not yet completed",
			func() float64 { r.mu.Lock(); defer r.mu.Unlock(); return float64(r.inflight[s]) }, label)
	}
	reg.CounterFunc("ams_shard_failures_total",
		"Tickets that failed at resolution or dispatch",
		func() int64 { r.mu.Lock(); defer r.mu.Unlock(); return r.failures })
}

// Package shard scales the labeling server across independent shards.
//
// A shard is the unit representing one GPU (or node): one serve.Server
// with its own worker pool, its own Algorithm-2 memory accountant, and —
// when the deployment journals ingestion — its own corpus journal
// segment, so nothing a shard does contends with its siblings on a lock,
// a budget, or a file.
//
// The Router in front owns placement and load balance:
//
//   - Placement assigns each submitted item a home shard — by consistent
//     hash of the item's key (stable across restarts), by least load, or
//     by model affinity: items whose hinted models match a shard's
//     accumulated "heat" land together, so each shard's hot models stay
//     resident and its packing policy sees stable headroom instead of
//     thrash.
//   - Work-stealing (optional) keeps shards busy under skew: a shard
//     whose own queue is empty and whose in-flight count is below its
//     capacity takes the oldest stealable item from the longest sibling
//     queue.
//   - Items resolve to an executor index at dispatch time, on the shard
//     that will execute them. That is what makes stealing compose with
//     durable ingestion: an external item is admitted into (and
//     journaled by) the segment of the shard that actually runs it.
//
// Stats merges every shard's completion records through one
// service.Summarize reduction (the shards share a clock epoch), and
// additionally breaks out per-shard utilization, steals, and sheds.
package shard

import (
	"context"
	"fmt"
	"sync"

	"ams/internal/obs"
	"ams/internal/serve"
	"ams/internal/service"
)

// Placement selects the router's placement policy.
type Placement int

const (
	// Hash places by consistent hash of the item key: stable across
	// restarts and routers, oblivious to load.
	Hash Placement = iota
	// LeastLoaded places on the shard with the fewest pending plus
	// in-flight items.
	LeastLoaded
	// Affinity places on the shard whose accumulated model heat best
	// matches the item's hinted models, falling back to hash when no
	// shard has seen any of them. Heat is credited at placement time and
	// decayed by periodic halving, so the mapping adapts to traffic while
	// staying deterministic for a given submission order.
	Affinity
)

// PlacementByName maps the CLI spelling of a placement policy.
func PlacementByName(name string) (Placement, error) {
	switch name {
	case "hash", "":
		return Hash, nil
	case "least":
		return LeastLoaded, nil
	case "affinity":
		return Affinity, nil
	}
	return 0, fmt.Errorf("shard: unknown placement %q (want hash, least, or affinity)", name)
}

func (p Placement) String() string {
	switch p {
	case Hash:
		return "hash"
	case LeastLoaded:
		return "least"
	case Affinity:
		return "affinity"
	}
	return fmt.Sprintf("placement(%d)", int(p))
}

// Item is one routed submission.
type Item struct {
	// Key identifies the item for hash placement (and the affinity
	// fallback). Callers derive it from a stable item identity so
	// placement survives restarts.
	Key uint64
	// Hint lists the model IDs expected to carry the item's value — the
	// affinity signal. Ignored by other placements.
	Hint []int
	// Tag is echoed verbatim in the result.
	Tag string
	// Index is the item's index in every shard's executor, for items
	// present in a shared store. Ignored when Resolve is set.
	Index int
	// Resolve, when set, maps the item to an executor index on the shard
	// chosen to execute it, called at dispatch time on that shard's
	// dispatcher (it may block — e.g. on a corpus residency watermark,
	// which is backpressure). This is how external items are admitted
	// into the executing shard's own journal segment, including when the
	// item is stolen.
	Resolve func(shard int) (int, error)
	// Pin, when positive, pins the item to shard Pin-1: placement is
	// bypassed and the item is never stolen. Replay uses this to route
	// recovered items back to the segment that journaled them. Zero
	// routes normally.
	Pin int
}

// Ticket tracks one routed item to completion.
type Ticket struct {
	key     uint64
	hint    []int
	tag     string
	index   int
	resolve func(shard int) (int, error)
	pinned  bool
	home    int // placed home shard, for steal provenance

	done chan struct{}
	res  Result
	err  error
}

// Done is closed when the item has completed (or failed to dispatch).
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Result blocks until completion. The error is non-nil when the item
// could not be dispatched (resolution failed or the router closed
// mid-flight); the Result is meaningful only when the error is nil.
func (t *Ticket) Result() (Result, error) {
	<-t.done
	return t.res, t.err
}

// Result is one completed item, annotated with where it ran.
type Result struct {
	serve.ItemResult
	Shard  int
	Stolen bool // executed by a shard other than its placed home
}

// Config parameterizes a Router.
type Config struct {
	// Placement is the home-shard policy (default Hash).
	Placement Placement
	// Steal lets an idle shard take pending items from a loaded sibling.
	Steal bool
	// QueueCap bounds each shard's pending (placed, not yet dispatched)
	// queue; Submit rejects past it. Default 2x the shard's workers.
	QueueCap int
	// Models is the zoo size, for affinity heat accounting. Required for
	// Affinity placement.
	Models int
	// Workers is each shard's worker count, parallel to the servers
	// handed to New. Required: it weights the merged utilization.
	Workers []int
	// Capacity is each shard's steal gate: a shard steals only while its
	// in-flight count is below its capacity. Default: its worker count.
	Capacity []int
	// Tracer, when non-nil, receives steal provenance: before a stolen
	// ticket is handed to the executing shard's server, the router notes
	// (tag, home, thief) so the item's span trace carries the
	// victim→thief causality link. Nil disables the hook entirely.
	Tracer *obs.Tracer
}

// Router fans submissions out to shards. Safe for concurrent use.
type Router struct {
	servers []*serve.Server
	cfg     Config

	mu       sync.Mutex
	cond     *sync.Cond
	queues   [][]*Ticket   // pending per shard, oldest first
	space    chan struct{} // closed and replaced whenever a queue drains a slot
	closed   bool
	inflight []int // dispatched, not yet completed, per shard

	assigned   []int64 // placements per shard (home assignments)
	steals     []int64 // items this shard stole
	stolenFrom []int64 // items stolen away from this shard
	rejected   []int64 // submits refused with a full pending queue
	failures   int64   // tickets failed at resolution/dispatch

	heat    [][]float64 // [shard][model] affinity heat
	heatSum float64

	dispWG sync.WaitGroup // dispatchers
	fwdWG  sync.WaitGroup // per-ticket completion forwarders

	resOnce sync.Once
	resCh   chan Result
}

// New builds a router over the given shard servers. The servers must
// share a Config.Epoch so their stats merge on one timeline.
func New(servers []*serve.Server, cfg Config) (*Router, error) {
	n := len(servers)
	if n == 0 {
		return nil, fmt.Errorf("shard: no servers")
	}
	if len(cfg.Workers) != n {
		return nil, fmt.Errorf("shard: %d servers but %d worker counts", n, len(cfg.Workers))
	}
	if cfg.Placement == Affinity && cfg.Models <= 0 {
		return nil, fmt.Errorf("shard: affinity placement needs the model count")
	}
	if cfg.Capacity == nil {
		cfg.Capacity = append([]int(nil), cfg.Workers...)
	}
	if len(cfg.Capacity) != n {
		return nil, fmt.Errorf("shard: %d servers but %d capacities", n, len(cfg.Capacity))
	}
	r := &Router{
		servers:    servers,
		cfg:        cfg,
		queues:     make([][]*Ticket, n),
		space:      make(chan struct{}),
		inflight:   make([]int, n),
		assigned:   make([]int64, n),
		steals:     make([]int64, n),
		stolenFrom: make([]int64, n),
		rejected:   make([]int64, n),
		heat:       make([][]float64, n),
	}
	r.cond = sync.NewCond(&r.mu)
	for s := range r.heat {
		r.heat[s] = make([]float64, cfg.Models)
	}
	for s := 0; s < n; s++ {
		// One dispatcher per inner worker: resolution (which may journal
		// an admission and block on a residency watermark) and the
		// inner-queue handoff then pipeline with service instead of
		// serializing the whole shard behind a single goroutine.
		d := cfg.Workers[s]
		if d < 1 {
			d = 1
		}
		for i := 0; i < d; i++ {
			r.dispWG.Add(1)
			go r.dispatch(s)
		}
	}
	return r, nil
}

// mix is splitmix64's finalizer: the consistent hash under Hash
// placement.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ShardFor is the pure hash placement: the home shard of a key. It is a
// function of (key, shards) alone, so a restarted or rebuilt router
// places every key identically.
func ShardFor(key uint64, shards int) int {
	return int(mix(key) % uint64(shards))
}

// queueCap is shard s's pending bound.
func (r *Router) queueCap(s int) int {
	if r.cfg.QueueCap > 0 {
		return r.cfg.QueueCap
	}
	return 2 * r.cfg.Workers[s]
}

// load is shard s's pending + in-flight count. Caller holds r.mu.
func (r *Router) load(s int) int { return len(r.queues[s]) + r.inflight[s] }

// place picks the home shard. Caller holds r.mu.
func (r *Router) place(it *Item) int {
	if it.Pin > 0 {
		return it.Pin - 1
	}
	n := len(r.servers)
	switch r.cfg.Placement {
	case LeastLoaded:
		best := 0
		for s := 1; s < n; s++ {
			if r.load(s) < r.load(best) {
				best = s
			}
		}
		return best
	case Affinity:
		best, bestScore := -1, 0.0
		for s := 0; s < n; s++ {
			score := 0.0
			for _, m := range it.Hint {
				if m >= 0 && m < len(r.heat[s]) {
					score += r.heat[s][m]
				}
			}
			switch {
			case best < 0 || score > bestScore:
				best, bestScore = s, score
			case score == bestScore && r.load(s) < r.load(best):
				best = s
			}
		}
		if bestScore == 0 {
			// No shard has seen these models (or the item carries no
			// hint): place by hash so cold traffic still spreads.
			return ShardFor(it.Key, n)
		}
		return best
	}
	return ShardFor(it.Key, n)
}

// credit accumulates affinity heat for the hinted models on shard s,
// halving all heat once the total passes a bound so the mapping tracks
// recent traffic instead of all history. Caller holds r.mu.
func (r *Router) credit(s int, hint []int) {
	if r.cfg.Placement != Affinity {
		return
	}
	for _, m := range hint {
		if m >= 0 && m < len(r.heat[s]) {
			r.heat[s][m]++
			r.heatSum++
		}
	}
	if r.heatSum > 256*float64(len(r.servers)) {
		r.heatSum = 0
		for _, hs := range r.heat {
			for m := range hs {
				hs[m] /= 2
				r.heatSum += hs[m]
			}
		}
	}
}

// Submit places one item without blocking. It returns
// serve.ErrQueueFull when the home shard's pending queue is at capacity
// and serve.ErrClosed after Close.
func (r *Router) Submit(it Item) (*Ticket, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, serve.ErrClosed
	}
	s := r.place(&it)
	if s < 0 || s >= len(r.servers) {
		return nil, fmt.Errorf("shard: pin to nonexistent shard %d", s)
	}
	if len(r.queues[s]) >= r.queueCap(s) {
		r.rejected[s]++
		return nil, serve.ErrQueueFull
	}
	tk := &Ticket{
		key:     it.Key,
		hint:    it.Hint,
		tag:     it.Tag,
		index:   it.Index,
		resolve: it.Resolve,
		pinned:  it.Pin > 0,
		home:    s,
		done:    make(chan struct{}),
	}
	r.queues[s] = append(r.queues[s], tk)
	r.assigned[s]++
	r.credit(s, it.Hint)
	r.cond.Broadcast()
	return tk, nil
}

// SubmitWait places one item, blocking while the home shard's pending
// queue is full until a slot frees, the context is cancelled, or the
// router closes.
func (r *Router) SubmitWait(ctx context.Context, it Item) (*Ticket, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		r.mu.Lock()
		space := r.space
		r.mu.Unlock()
		tk, err := r.Submit(it)
		if err != serve.ErrQueueFull {
			return tk, err
		}
		select {
		case <-space:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// wake signals queue-slot waiters (SubmitWait) and re-checks every
// dispatcher's wait condition — a dequeue may satisfy a sibling's
// closed-and-drained exit test. Caller holds r.mu.
func (r *Router) wake() {
	close(r.space)
	r.space = make(chan struct{})
	r.cond.Broadcast()
}

// dispatch is shard s's dispatcher: it feeds the shard's server from the
// shard's pending queue, stealing from siblings when allowed and idle,
// until the router closes and every queue is drained.
func (r *Router) dispatch(s int) {
	defer r.dispWG.Done()
	for {
		tk, stolen, ok := r.next(s)
		if !ok {
			return
		}
		r.run(s, tk, stolen)
	}
}

// next blocks until shard s has an item to execute (own queue first,
// then a steal) or the router has closed with nothing left anywhere.
func (r *Router) next(s int) (tk *Ticket, stolen bool, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if q := r.queues[s]; len(q) > 0 {
			tk, r.queues[s] = q[0], q[1:]
			r.inflight[s]++
			r.wake()
			return tk, false, true
		}
		if r.cfg.Steal && r.inflight[s] < r.cfg.Capacity[s] {
			if v, i := r.stealTarget(s); v >= 0 {
				tk = r.queues[v][i]
				r.queues[v] = append(r.queues[v][:i], r.queues[v][i+1:]...)
				r.inflight[s]++
				r.steals[s]++
				r.stolenFrom[v]++
				// The thief becomes the item's de-facto home: heat
				// follows it so like items can follow too.
				r.credit(s, tk.hint)
				r.wake()
				return tk, true, true
			}
		}
		if r.closed && r.pendingTotal() == 0 {
			return nil, false, false
		}
		r.cond.Wait()
	}
}

// stealTarget picks the longest sibling queue and the oldest stealable
// (unpinned) ticket in it. Caller holds r.mu.
func (r *Router) stealTarget(thief int) (victim, idx int) {
	victim = -1
	for v := range r.queues {
		if v == thief {
			continue
		}
		for i, tk := range r.queues[v] {
			if tk.pinned {
				continue
			}
			if victim < 0 || len(r.queues[v]) > len(r.queues[victim]) {
				victim, idx = v, i
			}
			break
		}
	}
	return victim, idx
}

// pendingTotal sums all pending queues. Caller holds r.mu.
func (r *Router) pendingTotal() int {
	total := 0
	for _, q := range r.queues {
		total += len(q)
	}
	return total
}

// run resolves and executes one dequeued ticket on shard s, forwarding
// completion asynchronously so the dispatcher can move on.
func (r *Router) run(s int, tk *Ticket, stolen bool) {
	idx := tk.index
	if tk.resolve != nil {
		i, err := tk.resolve(s)
		if err != nil {
			r.fail(s, tk, err)
			return
		}
		idx = i
	}
	if stolen && tk.tag != "" {
		// Record provenance before the inner submit: the handoff into the
		// executing server's queue is the happens-before edge that orders
		// this note ahead of the serve loop's Tracer.Begin for the tag.
		r.cfg.Tracer.NoteSteal(tk.tag, tk.home, s)
	}
	//amsvet:allow ctxflow the dispatcher outlives any submitter ctx; Router.Close is its cancellation scope
	in, err := r.servers[s].SubmitWait(context.Background(), idx, tk.tag)
	if err != nil {
		r.fail(s, tk, err)
		return
	}
	r.fwdWG.Add(1)
	go func() {
		defer r.fwdWG.Done()
		res := in.Wait()
		tk.res = Result{ItemResult: res, Shard: s, Stolen: stolen}
		r.complete(s)
		close(tk.done)
	}()
}

// fail resolves a ticket with a dispatch error.
func (r *Router) fail(s int, tk *Ticket, err error) {
	tk.err = err
	close(tk.done)
	r.mu.Lock()
	r.failures++
	r.mu.Unlock()
	r.complete(s)
}

// complete retires one in-flight item on shard s, re-opening its steal
// gate and re-checking every dispatcher's exit/steal condition.
func (r *Router) complete(s int) {
	r.mu.Lock()
	r.inflight[s]--
	r.cond.Broadcast()
	r.mu.Unlock()
}

// Close stops admission, drains every pending queue through the shard
// servers, closes them, and waits for all completions to resolve.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return serve.ErrClosed
	}
	r.closed = true
	r.cond.Broadcast()
	r.wake()
	r.mu.Unlock()
	r.dispWG.Wait() // every placed item has been handed to a server
	var firstErr error
	for _, sv := range r.servers {
		if err := sv.Close(); err != nil && err != serve.ErrClosed && firstErr == nil {
			firstErr = err
		}
	}
	r.fwdWG.Wait() // every ticket has resolved
	return firstErr
}

// Results merges every shard's completion stream into one channel,
// annotated with the executing shard. Subscribe before submitting; the
// channel closes after Close once all shards' streams drain.
func (r *Router) Results() <-chan Result {
	r.resOnce.Do(func() {
		r.resCh = make(chan Result)
		var wg sync.WaitGroup
		for s, sv := range r.servers {
			wg.Add(1)
			go func(s int, ch <-chan serve.ItemResult) {
				defer wg.Done()
				for ir := range ch {
					r.resCh <- Result{ItemResult: ir, Shard: s}
				}
			}(s, sv.Results())
		}
		go func() {
			wg.Wait()
			close(r.resCh)
		}()
	})
	return r.resCh
}

// ShardStats is one shard's slice of the merged picture.
type ShardStats struct {
	Shard        int
	Items        int     // completions in the shard's stats window
	Completed    int64   // total completions
	ThroughputHz float64 // over the shard's own records
	Utilization  float64 // of the shard's own workers
	AvgRecall    float64
	PeakMemMB    float64
	MemWaits     int64
	Pending      int   // placed, not yet dispatched
	Assigned     int64 // home placements
	Steals       int64 // items this shard stole from siblings
	StolenFrom   int64 // items siblings stole from this shard
	Rejected     int64 // sheds: submits refused at this shard's queue cap
}

// Stats is the router-wide picture: one merged reduction over every
// shard's records plus the per-shard breakdown.
type Stats struct {
	Merged   serve.RunStats // all shards' records, one Summarize
	PerShard []ShardStats
	Steals   int64 // total stolen dispatches
	Failures int64 // tickets failed at resolution/dispatch
}

// RejectedTotal is the router-level shed count (submits refused at a
// full pending queue), cheap enough for a flight-recorder trigger to
// poll. Server-level sheds are not included; callers that want the full
// picture add the per-shard serve totals.
func (r *Router) RejectedTotal() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, n := range r.rejected {
		total += n
	}
	return total
}

// StealsTotal is the total stolen dispatches across all shards, cheap
// enough for a flight-recorder trigger to poll.
func (r *Router) StealsTotal() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, n := range r.steals {
		total += n
	}
	return total
}

// Stats merges every shard's completion records through one Summarize
// reduction — valid because the servers share a clock epoch — and
// reports the per-shard breakdown beside it.
func (r *Router) Stats() Stats {
	n := len(r.servers)
	workers := 0
	var records []service.Record
	per := make([]ShardStats, n)
	var totalSteals int64
	r.mu.Lock()
	pending := make([]int, n)
	for s := range pending {
		pending[s] = len(r.queues[s])
	}
	assigned := append([]int64(nil), r.assigned...)
	steals := append([]int64(nil), r.steals...)
	stolenFrom := append([]int64(nil), r.stolenFrom...)
	rejected := append([]int64(nil), r.rejected...)
	failures := r.failures
	r.mu.Unlock()
	merged := serve.RunStats{}
	for s, sv := range r.servers {
		rs := sv.Stats()
		records = append(records, sv.Records()...)
		workers += r.cfg.Workers[s]
		per[s] = ShardStats{
			Shard:        s,
			Items:        rs.Items,
			Completed:    rs.Completed,
			ThroughputHz: rs.ThroughputHz,
			Utilization:  rs.Utilization,
			AvgRecall:    rs.AvgRecall,
			PeakMemMB:    rs.PeakMemMB,
			MemWaits:     rs.MemWaits,
			Pending:      pending[s],
			Assigned:     assigned[s],
			Steals:       steals[s],
			StolenFrom:   stolenFrom[s],
			Rejected:     rejected[s] + rs.Rejected,
		}
		totalSteals += steals[s]
		merged.Completed += rs.Completed
		merged.PeakMemMB += rs.PeakMemMB // summed per-shard peaks: the footprint bound
		merged.MemWaits += rs.MemWaits
		merged.Rejected += rejected[s] + rs.Rejected
		merged.ResultsDropped += rs.ResultsDropped
		merged.Batching.Batches += rs.Batching.Batches
		merged.Batching.Requests += rs.Batching.Requests
		merged.Batching.SizeFlushes += rs.Batching.SizeFlushes
		merged.Batching.HoldFlushes += rs.Batching.HoldFlushes
		merged.Batching.SavedGPUMS += rs.Batching.SavedGPUMS
		merged.Batching.SavedMemMB += rs.Batching.SavedMemMB
		if rs.Batching.LargestBatch > merged.Batching.LargestBatch {
			merged.Batching.LargestBatch = rs.Batching.LargestBatch
		}
	}
	merged.Stats = service.Summarize(records, workers)
	if merged.Completed > int64(merged.Items) && merged.Items > 0 {
		// Some shard's ring wrapped: re-derive throughput/utilization
		// over the retained records' own span (mirrors serve.Stats).
		minArr, maxFin := records[0].ArrivalSec, records[0].FinishSec
		var busy float64
		for _, rec := range records {
			if rec.ArrivalSec < minArr {
				minArr = rec.ArrivalSec
			}
			if rec.FinishSec > maxFin {
				maxFin = rec.FinishSec
			}
			busy += rec.BusySec
		}
		if span := maxFin - minArr; span > 0 {
			merged.ThroughputHz = float64(merged.Items) / span
			merged.Utilization = busy / (float64(workers) * span)
		}
	}
	return Stats{Merged: merged, PerShard: per, Steals: totalSteals, Failures: failures}
}

package experiments

import (
	"fmt"
	"strings"

	"ams/internal/metrics"
	"ams/internal/oracle"
	"ams/internal/rl"
	"ams/internal/rules"
	"ams/internal/sched"
	"ams/internal/sim"
	"ams/internal/tensor"
	"ams/internal/zoo"
)

// --- Fig. 2: data-driven analysis ---------------------------------------

// Fig2Result reproduces the §II analysis: per-image time cost of the
// no-policy, random-policy and optimal-policy executions over a mixed
// three-dataset pool, with the time-cost CDFs.
type Fig2Result struct {
	AvgNoPolicySec float64
	AvgRandomSec   float64
	AvgOptimalSec  float64
	CDFNoPolicy    metrics.CDF
	CDFRandom      metrics.CDF
	CDFOptimal     metrics.CDF
}

// Fig2 runs the data-driven analysis on the union of MSCOCO, Places365
// and MirFlickr scenes.
func (l *Lab) Fig2() Fig2Result {
	var noPol, random, optimal []float64
	rng := tensor.NewRNG(l.seedFor("fig2"))
	for _, name := range SweepDatasets() {
		st := l.FullStore(name)
		total := l.Zoo.TotalTimeMS()
		randPolicy := sched.NewRandom(l.Zoo, rng)
		for i := 0; i < st.NumScenes(); i++ {
			noPol = append(noPol, total/1000)
			// Random: execute in random order until every valuable label
			// is recalled.
			res := sim.RunToRecall(st, i, randPolicy, 1.0)
			random = append(random, res.TimeMS/1000)
			// Optimal: only the model executions that generate
			// high-confidence output.
			optimal = append(optimal, st.OptimalTimeMS(i)/1000)
		}
	}
	return Fig2Result{
		AvgNoPolicySec: metrics.Mean(noPol),
		AvgRandomSec:   metrics.Mean(random),
		AvgOptimalSec:  metrics.Mean(optimal),
		CDFNoPolicy:    metrics.NewCDF(noPol, 21),
		CDFRandom:      metrics.NewCDF(random, 21),
		CDFOptimal:     metrics.NewCDF(optimal, 21),
	}
}

// Format renders the figure's numbers.
func (r Fig2Result) Format() string {
	var b strings.Builder
	b.WriteString("Fig. 2 — time cost to obtain all valuable labels per image\n")
	b.WriteString(metrics.Table(
		[]string{"policy", "avg time/image (s)"},
		[][]string{
			{"No Policy", metrics.Float(r.AvgNoPolicySec, 2)},
			{"Random Policy", metrics.Float(r.AvgRandomSec, 2)},
			{"Optimal Policy", metrics.Float(r.AvgOptimalSec, 2)},
		}))
	b.WriteString("\nCDF of time cost per image (s -> P):\n")
	b.WriteString(metrics.SeriesTable("time", r.CDFOptimal.X, []metrics.Series{
		{Name: "Optimal", Y: r.CDFOptimal.P},
	}, 2))
	b.WriteString(metrics.SeriesTable("time", r.CDFRandom.X, []metrics.Series{
		{Name: "Random", Y: r.CDFRandom.P},
	}, 2))
	return b.String()
}

// --- Fig. 4 / Fig. 5: recall sweeps --------------------------------------

// SweepResult holds, per policy and per recall threshold, the average
// number of executed models (Fig. 4) and the average execution time in
// seconds (Fig. 5) on one dataset's test split.
type SweepResult struct {
	Dataset    string
	Thresholds []float64
	Policies   []string
	Counts     [][]float64 // [policy][threshold]
	Times      [][]float64 // [policy][threshold], seconds
}

// trajPoint is one step of an execution trajectory.
type trajPoint struct {
	cumTimeMS float64
	recall    float64
}

// trajectory runs the policy to exhaustion on one scene and records the
// cumulative (time, recall) after every execution.
func trajectory(st *oracle.Store, scene int, p sim.Policy) []trajPoint {
	p.Reset(scene)
	t := oracle.NewTracker(st, scene)
	pts := make([]trajPoint, 0, st.NumModels())
	var cum float64
	for t.ExecutedCount() < st.NumModels() {
		m := p.Next(t, sim.Unconstrained())
		if m < 0 {
			break
		}
		t.Execute(m)
		p.Observe(m, st.Output(scene, m))
		cum += st.Zoo.Models[m].TimeMS
		pts = append(pts, trajPoint{cumTimeMS: cum, recall: t.Recall()})
	}
	return pts
}

// metricsAt returns the executed-model count and time needed to reach the
// threshold on one trajectory (the full trajectory if never reached,
// which cannot happen for exhaustive policies).
func metricsAt(pts []trajPoint, threshold float64) (count int, timeMS float64) {
	for i, p := range pts {
		if p.recall >= threshold-1e-12 {
			return i + 1, p.cumTimeMS
		}
	}
	if len(pts) == 0 {
		return 0, 0
	}
	return len(pts), pts[len(pts)-1].cumTimeMS
}

// namedOrderPolicy couples a display name with a policy factory so sweeps
// can instantiate fresh policies.
type namedOrderPolicy struct {
	name   string
	policy sim.Policy
}

// sweep evaluates order policies over every test scene of a dataset.
func (l *Lab) sweep(dataset string, policies []namedOrderPolicy) *SweepResult {
	st := l.TestStore(dataset)
	grid := l.Cfg.RecallGrid
	res := &SweepResult{
		Dataset:    dataset,
		Thresholds: grid,
		Policies:   make([]string, len(policies)),
		Counts:     make([][]float64, len(policies)),
		Times:      make([][]float64, len(policies)),
	}
	for pi, np := range policies {
		res.Policies[pi] = np.name
		counts := make([]float64, len(grid))
		times := make([]float64, len(grid))
		for i := 0; i < st.NumScenes(); i++ {
			pts := trajectory(st, i, np.policy)
			for ti, th := range grid {
				c, tm := metricsAt(pts, th)
				counts[ti] += float64(c)
				times[ti] += tm / 1000
			}
		}
		n := float64(st.NumScenes())
		for ti := range grid {
			counts[ti] /= n
			times[ti] /= n
		}
		res.Counts[pi] = counts
		res.Times[pi] = times
	}
	return res
}

// RecallSweep runs (and caches) the §VI-B sweep on one dataset: the four
// DRL agents, the random baseline, and the optimal policy.
func (l *Lab) RecallSweep(dataset string) *SweepResult {
	if r, ok := l.sweeps[dataset]; ok {
		return r
	}
	st := l.TestStore(dataset)
	rng := tensor.NewRNG(l.seedFor("sweep/" + dataset))
	var policies []namedOrderPolicy
	for _, algo := range rl.Algorithms() {
		agent := l.Agent(algo, dataset)
		policies = append(policies, namedOrderPolicy{
			name:   algo.String(),
			policy: sched.NewQGreedy(agent, l.Zoo),
		})
	}
	policies = append(policies,
		namedOrderPolicy{name: "Random", policy: sched.NewRandom(l.Zoo, rng)},
		namedOrderPolicy{name: "Optimal", policy: sched.NewOptimal(st)},
	)
	l.logf("sweeping %s (%d scenes, %d policies)", dataset, st.NumScenes(), len(policies))
	r := l.sweep(dataset, policies)
	l.sweeps[dataset] = r
	return r
}

// Fig4 returns the executed-model-count sweeps of the three datasets.
func (l *Lab) Fig4() []*SweepResult {
	var rs []*SweepResult
	for _, name := range SweepDatasets() {
		rs = append(rs, l.RecallSweep(name))
	}
	return rs
}

// Fig5 returns the execution-time sweeps (same computation as Fig. 4).
func (l *Lab) Fig5() []*SweepResult { return l.Fig4() }

// FormatCounts renders the Fig. 4 view of the sweep.
func (r *SweepResult) FormatCounts() string {
	series := make([]metrics.Series, len(r.Policies))
	for i, p := range r.Policies {
		series[i] = metrics.Series{Name: p, Y: r.Counts[i]}
	}
	return fmt.Sprintf("Fig. 4 (%s) — avg executed models vs recall rate\n%s",
		r.Dataset, metrics.SeriesTable("recall", r.Thresholds, series, 2))
}

// FormatTimes renders the Fig. 5 view of the sweep.
func (r *SweepResult) FormatTimes() string {
	series := make([]metrics.Series, len(r.Policies))
	for i, p := range r.Policies {
		series[i] = metrics.Series{Name: p, Y: r.Times[i]}
	}
	return fmt.Sprintf("Fig. 5 (%s) — avg execution time (s) vs recall rate\n%s",
		r.Dataset, metrics.SeriesTable("recall", r.Thresholds, series, 2))
}

// PolicyRow returns the Y-series of one named policy (counts or times).
func (r *SweepResult) PolicyRow(name string, times bool) ([]float64, bool) {
	for i, p := range r.Policies {
		if p == name {
			if times {
				return r.Times[i], true
			}
			return r.Counts[i], true
		}
	}
	return nil, false
}

// --- Fig. 6: handcrafted rules vs agent ----------------------------------

// Fig6 compares the rule-based policy against DuelingDQN, random and
// optimal on MSCOCO, mirroring §VI-C.
func (l *Lab) Fig6() *SweepResult {
	dataset := DSMSCOCO
	st := l.TestStore(dataset)
	rng := tensor.NewRNG(l.seedFor("fig6"))
	agent := l.Agent(rl.DuelingDQN, dataset)
	engine := rules.NewEngine(l.Vocab, l.Zoo, rules.TableII())
	engine.EnableSiblingDemotion(0.4)
	policies := []namedOrderPolicy{
		{name: "Rule", policy: sched.NewRule(engine, l.Zoo, rng.Split())},
		{name: "DuelingDQN", policy: sched.NewQGreedy(agent, l.Zoo)},
		{name: "Random", policy: sched.NewRandom(l.Zoo, rng)},
		{name: "Optimal", policy: sched.NewOptimal(st)},
	}
	l.logf("fig6: rules vs agent on %s", dataset)
	r := l.sweep(dataset, policies)
	return r
}

// --- Fig. 7: a scheduled execution sequence ------------------------------

// Fig7Step is one executed model with the valuable labels it surfaced.
type Fig7Step struct {
	Model  string
	Labels []string // "name (conf)" of new valuable labels
}

// Fig7Result is the model execution sequence for one sample image.
type Fig7Result struct {
	Dataset string
	Scene   int
	Steps   []Fig7Step
}

// Fig7 walks the DuelingDQN Q-greedy policy over one content-rich
// MirFlickr test scene, recording the model order and the fresh valuable
// labels each step contributed — the counterpart of the paper's pub/cup/
// drinking-beer example.
func (l *Lab) Fig7() Fig7Result {
	dataset := DSMirFlickr
	st := l.TestStore(dataset)
	agent := l.Agent(rl.DuelingDQN, dataset)

	// Choose the test scene with the most valuable models, i.e. the
	// richest story to tell.
	best, bestN := 0, -1
	for i := 0; i < st.NumScenes(); i++ {
		if n := len(st.ValuableModels(i)); n > bestN {
			best, bestN = i, n
		}
	}

	policy := sched.NewQGreedy(agent, l.Zoo)
	policy.Reset(best)
	t := oracle.NewTracker(st, best)
	res := Fig7Result{Dataset: dataset, Scene: best}
	for t.Recall() < 1-1e-9 && t.ExecutedCount() < st.NumModels() {
		m := policy.Next(t, sim.Unconstrained())
		if m < 0 {
			break
		}
		fresh := t.Execute(m)
		step := Fig7Step{Model: st.Zoo.Models[m].Name}
		for _, lc := range fresh {
			if lc.Conf >= zoo.ValuableThreshold {
				step.Labels = append(step.Labels,
					fmt.Sprintf("%s (%.2f)", l.Vocab.Label(lc.ID).Name, lc.Conf))
			}
		}
		res.Steps = append(res.Steps, step)
	}
	return res
}

// Format renders the execution sequence.
func (r Fig7Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7 — DuelingDQN Q-greedy execution sequence (%s scene %d)\n",
		r.Dataset, r.Scene)
	for i, s := range r.Steps {
		fmt.Fprintf(&b, "%2d. %-20s %s\n", i+1, s.Model, strings.Join(s.Labels, ", "))
	}
	return b.String()
}

// --- Fig. 8: knowledge transferability -----------------------------------

// Fig8Result reports, for each (agent, dataset) pair, the average time to
// recall all valuable labels, plus random and optimal references.
type Fig8Result struct {
	// Rows: Agent1, Agent2, Random, Optimal. Columns: Dataset1, Dataset2.
	Names   []string
	AvgSec  [][]float64   // [policy][dataset]
	CDFs    []metrics.CDF // per policy on Dataset1
	CDFs2   []metrics.CDF // per policy on Dataset2
	NoPol   float64       // no-policy seconds, for reference
	Headers []string
}

// Fig8 trains Agent1 on Stanford40 and Agent2 on VOC2012 and evaluates
// both on both test sets (§VI-D).
func (l *Lab) Fig8() Fig8Result {
	agent1 := l.Agent(rl.DuelingDQN, DSStanford)
	agent2 := l.Agent(rl.DuelingDQN, DSVOC)
	datasets := []string{DSStanford, DSVOC}
	rng := tensor.NewRNG(l.seedFor("fig8"))

	res := Fig8Result{
		Names:   []string{"Agent1", "Agent2", "Random", "Optimal"},
		Headers: []string{"Dataset1 (Stanford40)", "Dataset2 (VOC2012)"},
		AvgSec:  make([][]float64, 4),
		NoPol:   l.Zoo.TotalTimeMS() / 1000,
	}
	for i := range res.AvgSec {
		res.AvgSec[i] = make([]float64, len(datasets))
	}
	for di, ds := range datasets {
		st := l.TestStore(ds)
		policies := []sim.Policy{
			sched.NewQGreedy(agent1, l.Zoo),
			sched.NewQGreedy(agent2, l.Zoo),
			sched.NewRandom(l.Zoo, rng),
			sched.NewOptimal(st),
		}
		for pi, p := range policies {
			var times []float64
			for i := 0; i < st.NumScenes(); i++ {
				times = append(times, sim.RunToRecall(st, i, p, 1.0).TimeMS/1000)
			}
			res.AvgSec[pi][di] = metrics.Mean(times)
			cdf := metrics.NewCDF(times, 21)
			if di == 0 {
				res.CDFs = append(res.CDFs, cdf)
			} else {
				res.CDFs2 = append(res.CDFs2, cdf)
			}
		}
	}
	return res
}

// Format renders the Fig. 8 averages.
func (r Fig8Result) Format() string {
	rows := make([][]string, len(r.Names))
	for i, n := range r.Names {
		rows[i] = []string{n,
			metrics.Float(r.AvgSec[i][0], 2),
			metrics.Float(r.AvgSec[i][1], 2)}
	}
	rows = append(rows, []string{"No Policy",
		metrics.Float(r.NoPol, 2), metrics.Float(r.NoPol, 2)})
	return "Fig. 8 — avg time (s) to recall all valuable labels\n" +
		metrics.Table(append([]string{"policy"}, r.Headers...), rows)
}

// --- Fig. 9: model priority (theta) --------------------------------------

// Fig9Result reports, per algorithm and per theta, the average selection
// order of the prioritized face-detection model and the average total
// execution time at full recall.
type Fig9Result struct {
	Thetas   []float64
	Algos    []string
	AvgOrder [][]float64 // [algo][theta]
	AvgTime  [][]float64 // [algo][theta], seconds
	Random   struct {
		AvgOrder float64
		AvgTime  float64
	}
	FaceModel string
}

// PriorityModel is the face-detection model whose theta Fig. 9 sweeps.
const PriorityModel = "facedet-mtcnn"

// Fig9 trains agents with the face detector's theta set to each value in
// the grid and measures how early the model is scheduled (§VI-E).
func (l *Lab) Fig9() Fig9Result {
	dataset := DSMSCOCO
	st := l.TestStore(dataset)
	faceModel, ok := l.Zoo.ByName(PriorityModel)
	if !ok {
		panic("experiments: priority model missing from zoo")
	}
	res := Fig9Result{
		Thetas:    l.Cfg.Thetas,
		FaceModel: PriorityModel,
	}
	for _, algo := range rl.Algorithms() {
		res.Algos = append(res.Algos, algo.String())
		orders := make([]float64, len(res.Thetas))
		times := make([]float64, len(res.Thetas))
		for ti, theta := range res.Thetas {
			var thetaVec []float64
			var thetaKey string
			if theta != 1 {
				thetaVec = make([]float64, zoo.NumModels)
				for i := range thetaVec {
					thetaVec[i] = 1
				}
				thetaVec[faceModel.ID] = theta
				thetaKey = fmt.Sprintf("%.0f", theta)
			}
			agent := l.AgentTheta(algo, dataset, thetaKey, thetaVec)
			policy := sched.NewQGreedy(agent, l.Zoo)
			var orderSum, timeSum float64
			for i := 0; i < st.NumScenes(); i++ {
				pts := fullOrder(st, i, policy)
				orderSum += float64(position(pts, faceModel.ID))
				_, tm := metricsAt(trajectory(st, i, policy), 1.0)
				timeSum += tm / 1000
			}
			n := float64(st.NumScenes())
			orders[ti] = orderSum / n
			times[ti] = timeSum / n
		}
		res.AvgOrder = append(res.AvgOrder, orders)
		res.AvgTime = append(res.AvgTime, times)
	}
	// Random reference: expected position of a fixed model in a random
	// permutation of 30 is (30+1)/2; measure it empirically anyway.
	rng := tensor.NewRNG(l.seedFor("fig9-random"))
	random := sched.NewRandom(l.Zoo, rng)
	var orderSum, timeSum float64
	for i := 0; i < st.NumScenes(); i++ {
		pts := fullOrder(st, i, random)
		orderSum += float64(position(pts, faceModel.ID))
		_, tm := metricsAt(trajectory(st, i, random), 1.0)
		timeSum += tm / 1000
	}
	res.Random.AvgOrder = orderSum / float64(st.NumScenes())
	res.Random.AvgTime = timeSum / float64(st.NumScenes())
	return res
}

// fullOrder runs the policy to exhaustion and returns the executed model
// IDs in order.
func fullOrder(st *oracle.Store, scene int, p sim.Policy) []int {
	p.Reset(scene)
	t := oracle.NewTracker(st, scene)
	var order []int
	for t.ExecutedCount() < st.NumModels() {
		m := p.Next(t, sim.Unconstrained())
		if m < 0 {
			break
		}
		t.Execute(m)
		p.Observe(m, st.Output(scene, m))
		order = append(order, m)
	}
	return order
}

// position returns the 1-based position of model in the order (len+1 when
// absent).
func position(order []int, model int) int {
	for i, m := range order {
		if m == model {
			return i + 1
		}
	}
	return len(order) + 1
}

// Format renders both panels of Fig. 9.
func (r Fig9Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 9 — effect of priority theta on %q\n", r.FaceModel)
	b.WriteString("(a) average selection order\n")
	hdr := []string{"algo"}
	for _, th := range r.Thetas {
		hdr = append(hdr, fmt.Sprintf("theta=%.0f", th))
	}
	var rows [][]string
	for i, a := range r.Algos {
		row := []string{a}
		for _, v := range r.AvgOrder[i] {
			row = append(row, metrics.Float(v, 1))
		}
		rows = append(rows, row)
	}
	randRow := []string{"Random"}
	for range r.Thetas {
		randRow = append(randRow, metrics.Float(r.Random.AvgOrder, 1))
	}
	rows = append(rows, randRow)
	b.WriteString(metrics.Table(hdr, rows))
	b.WriteString("(b) average execution time at full recall (s)\n")
	rows = rows[:0]
	for i, a := range r.Algos {
		row := []string{a}
		for _, v := range r.AvgTime[i] {
			row = append(row, metrics.Float(v, 2))
		}
		rows = append(rows, row)
	}
	randRow = []string{"Random"}
	for range r.Thetas {
		randRow = append(randRow, metrics.Float(r.Random.AvgTime, 2))
	}
	rows = append(rows, randRow)
	b.WriteString(metrics.Table(hdr, rows))
	return b.String()
}

// --- Headline numbers ------------------------------------------------------

// HeadlineResult carries the introduction's summary statistics.
type HeadlineResult struct {
	SavedAtFullRecall float64 // fraction of time saved vs random at recall 1.0
	SavedAt80Recall   float64 // fraction saved vs random at recall 0.8
}

// Headline derives the paper's headline claims from the Fig. 5 data,
// averaged over the three sweep datasets: time saved by the best DRL
// agent versus the random policy at 100% and 80% recall.
func (l *Lab) Headline() HeadlineResult {
	var s100, s80 []float64
	for _, name := range SweepDatasets() {
		sw := l.RecallSweep(name)
		agent, ok1 := sw.PolicyRow("DuelingDQN", true)
		random, ok2 := sw.PolicyRow("Random", true)
		if !ok1 || !ok2 {
			panic("experiments: sweep missing required policies")
		}
		idx100 := indexOf(sw.Thresholds, 1.0)
		idx80 := indexOf(sw.Thresholds, 0.8)
		s100 = append(s100, 1-agent[idx100]/random[idx100])
		s80 = append(s80, 1-agent[idx80]/random[idx80])
	}
	return HeadlineResult{
		SavedAtFullRecall: metrics.Mean(s100),
		SavedAt80Recall:   metrics.Mean(s80),
	}
}

// Format renders the headline numbers.
func (r HeadlineResult) Format() string {
	return fmt.Sprintf(
		"Headline — execution time saved vs random policy\n"+
			"  at 100%% recall of valuable labels: %.1f%% (paper: ~53%%)\n"+
			"  at  80%% recall of valuable labels: %.1f%% (paper: ~70%% vs no-policy baseline)\n",
		100*r.SavedAtFullRecall, 100*r.SavedAt80Recall)
}

func indexOf(xs []float64, x float64) int {
	best, bestD := 0, -1.0
	for i, v := range xs {
		d := v - x
		if d < 0 {
			d = -d
		}
		if bestD < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

package experiments

import (
	"fmt"
	"strings"

	"ams/internal/metrics"
	"ams/internal/rl"
	"ams/internal/sched"
	"ams/internal/sim"
	"ams/internal/tensor"
)

// --- Fig. 11: scheduling under memory-deadline constraints -----------------

// MemoryResult holds recall-vs-deadline curves for one GPU memory budget.
type MemoryResult struct {
	MemGB        float64
	DeadlinesSec []float64
	Policies     []string    // Agent (Algorithm 2), Random, Optimal*
	Recall       [][]float64 // [policy][deadline]
	PerfRatio    []float64   // Agent / Optimal* per deadline
}

// Fig11 evaluates Algorithm 2 under joint deadline and GPU memory budgets
// (§VI-G). Following the paper it uses the worst transfer case: Agent1
// (Stanford40-trained) on Dataset2 (VOC2012).
func (l *Lab) Fig11() []MemoryResult {
	agent := l.Agent(rl.DuelingDQN, DSStanford)
	st := l.TestStore(DSVOC)
	var results []MemoryResult
	for _, memGB := range l.Cfg.MemBudgetsGB {
		memMB := memGB * 1024
		l.logf("fig11: deadline+memory scheduling, %vGB", memGB)
		rng := tensor.NewRNG(l.seedFor(fmt.Sprintf("fig11/%v", memGB)))
		res := MemoryResult{
			MemGB:        memGB,
			DeadlinesSec: l.Cfg.MemDeadlines,
			Policies:     []string{"Agent", "Random", "Optimal*"},
			Recall:       make([][]float64, 3),
			PerfRatio:    make([]float64, len(l.Cfg.MemDeadlines)),
		}
		for i := range res.Recall {
			res.Recall[i] = make([]float64, len(res.DeadlinesSec))
		}
		n := float64(st.NumScenes())
		packer := sched.NewMemoryPacker(agent, l.Zoo)
		random := sched.NewRandomPacker(l.Zoo, rng)
		for di, dSec := range res.DeadlinesSec {
			dMS := dSec * 1000
			var agentSum, randSum, optSum float64
			for i := 0; i < st.NumScenes(); i++ {
				agentSum += sim.RunParallel(st, i, packer, dMS, memMB).Recall
				randSum += sim.RunParallel(st, i, random, dMS, memMB).Recall
				optSum += sched.OptimalStarMemory(st, i, dMS, memMB)
			}
			res.Recall[0][di] = agentSum / n
			res.Recall[1][di] = randSum / n
			res.Recall[2][di] = optSum / n
			if res.Recall[2][di] > 0 {
				res.PerfRatio[di] = res.Recall[0][di] / res.Recall[2][di]
			} else {
				res.PerfRatio[di] = 1
			}
		}
		results = append(results, res)
	}
	return results
}

// Format renders one memory budget's panel of Fig. 11.
func (r MemoryResult) Format() string {
	series := make([]metrics.Series, len(r.Policies))
	for i, p := range r.Policies {
		series[i] = metrics.Series{Name: p, Y: r.Recall[i]}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 11 (%.0fGB memory) — recall under deadline+memory constraints\n", r.MemGB)
	b.WriteString(metrics.SeriesTable("deadline(s)", r.DeadlinesSec, series, 2))
	b.WriteString("performance ratio (Agent / Optimal*, reference 1-1/e = 0.632):\n")
	b.WriteString(metrics.SeriesTable("deadline(s)", r.DeadlinesSec,
		[]metrics.Series{{Name: "ratio", Y: r.PerfRatio}}, 2))
	return b.String()
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (§II and §VI) against the simulated substrate. Each
// experiment is a method on a Lab, which lazily builds and caches the
// datasets, oracle stores, and trained DRL agents that several figures
// share. All results carry a Format method that prints the same rows or
// series the paper plots.
package experiments

import (
	"fmt"
	"hash/fnv"

	"ams/internal/core"
	"ams/internal/labels"
	"ams/internal/oracle"
	"ams/internal/rl"
	"ams/internal/synth"
	"ams/internal/zoo"
)

// Config scales the experiment suite. Quick keeps a full bench run in
// minutes on a laptop; Full approaches the paper's training regime.
type Config struct {
	Seed        uint64
	DatasetSize int     // scenes generated per dataset profile
	TrainFrac   float64 // training split fraction (paper: 1:4 => 0.2)

	Epochs int   // DRL training epochs
	Hidden []int // Q-network hidden widths

	RecallGrid   []float64 // thresholds for the §VI-B sweeps
	DeadlinesSec []float64 // §VI-F deadline grid (seconds)
	MemDeadlines []float64 // §VI-G deadline grid (seconds)
	MemBudgetsGB []float64 // §VI-G memory grid (GB)
	Thetas       []float64 // §VI-E priority values
}

// Quick returns the fast configuration used by tests and default benches.
func Quick() Config {
	return Config{
		Seed:         1,
		DatasetSize:  500,
		TrainFrac:    0.2,
		Epochs:       8,
		Hidden:       []int{96},
		RecallGrid:   []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		DeadlinesSec: []float64{0.25, 0.5, 0.75, 1, 1.5, 2, 3, 4, 5},
		MemDeadlines: []float64{0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.6, 2.0},
		MemBudgetsGB: []float64{8, 12, 16},
		Thetas:       []float64{1, 2, 5, 10},
	}
}

// Full returns the paper-scale configuration (slow: tens of minutes).
func Full() Config {
	c := Quick()
	c.DatasetSize = 2000
	c.Epochs = 15
	c.Hidden = []int{256}
	return c
}

// Lab owns the cached datasets, ground-truth stores, and trained agents.
// It is not safe for concurrent use.
type Lab struct {
	Cfg   Config
	Vocab *labels.Vocabulary
	Zoo   *zoo.Zoo

	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)

	datasets map[string]*synth.Dataset
	stores   map[string]*oracle.Store
	agents   map[string]*core.Agent
	sweeps   map[string]*SweepResult
}

// NewLab constructs a lab for the configuration.
func NewLab(cfg Config) *Lab {
	v := labels.NewVocabulary()
	return &Lab{
		Cfg:      cfg,
		Vocab:    v,
		Zoo:      zoo.NewZoo(v),
		datasets: make(map[string]*synth.Dataset),
		stores:   make(map[string]*oracle.Store),
		agents:   make(map[string]*core.Agent),
		sweeps:   make(map[string]*SweepResult),
	}
}

func (l *Lab) logf(format string, args ...any) {
	if l.Logf != nil {
		l.Logf(format, args...)
	}
}

// seedFor derives a stable per-purpose seed from the lab seed.
func (l *Lab) seedFor(purpose string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", l.Cfg.Seed, purpose)
	return h.Sum64()
}

// Dataset returns (building on first use) the named dataset.
func (l *Lab) Dataset(name string) *synth.Dataset {
	if d, ok := l.datasets[name]; ok {
		return d
	}
	profile, err := synth.ProfileByName(name)
	if err != nil {
		panic(err)
	}
	l.logf("generating dataset %s (%d scenes)", name, l.Cfg.DatasetSize)
	d := synth.NewDataset(l.Vocab, profile, l.Cfg.DatasetSize, l.seedFor("dataset/"+name))
	l.datasets[name] = d
	return d
}

// store builds or returns the oracle store for one dataset split.
// split is "train", "test" or "all".
func (l *Lab) store(name, split string) *oracle.Store {
	key := name + "/" + split
	if st, ok := l.stores[key]; ok {
		return st
	}
	d := l.Dataset(name)
	var scenes []synth.Scene
	switch split {
	case "all":
		scenes = d.Scenes
	case "train":
		scenes, _ = d.Split(l.Cfg.TrainFrac)
	case "test":
		_, scenes = d.Split(l.Cfg.TrainFrac)
	default:
		panic(fmt.Sprintf("experiments: unknown split %q", split))
	}
	l.logf("building oracle store %s (%d scenes x %d models)", key, len(scenes), zoo.NumModels)
	st := oracle.Build(l.Zoo, scenes)
	l.stores[key] = st
	return st
}

// TrainStore returns the training-split store of a dataset.
func (l *Lab) TrainStore(name string) *oracle.Store { return l.store(name, "train") }

// TestStore returns the test-split store of a dataset.
func (l *Lab) TestStore(name string) *oracle.Store { return l.store(name, "test") }

// FullStore returns the whole-dataset store.
func (l *Lab) FullStore(name string) *oracle.Store { return l.store(name, "all") }

// Agent returns (training on first use) the agent for an algorithm and
// dataset with uniform priorities.
func (l *Lab) Agent(algo rl.Algorithm, dataset string) *core.Agent {
	return l.AgentTheta(algo, dataset, "", nil)
}

// AgentTheta returns the agent trained with a per-model priority vector.
// thetaKey must uniquely describe theta ("" for uniform priorities).
func (l *Lab) AgentTheta(algo rl.Algorithm, dataset, thetaKey string, theta []float64) *core.Agent {
	key := fmt.Sprintf("%s@%s#%s", algo, dataset, thetaKey)
	if a, ok := l.agents[key]; ok {
		return a
	}
	st := l.TrainStore(dataset)
	l.logf("training %s on %s (%d scenes, %d epochs)%s",
		algo, dataset, st.NumScenes(), l.Cfg.Epochs, thetaSuffix(thetaKey))
	agent := core.Train(st, core.TrainConfig{
		Algo:    algo,
		Epochs:  l.Cfg.Epochs,
		Hidden:  l.Cfg.Hidden,
		Theta:   theta,
		Seed:    l.seedFor("agent/" + key),
		Dataset: dataset,
	})
	l.agents[key] = agent
	return agent
}

func thetaSuffix(k string) string {
	if k == "" {
		return ""
	}
	return " theta=" + k
}

// Canonical dataset names (the synth profile names).
const (
	DSMSCOCO    = "MSCOCO2017"
	DSPlaces    = "Places365"
	DSMirFlickr = "MirFlickr25"
	DSStanford  = "Stanford40"
	DSVOC       = "VOC2012"
)

// SweepDatasets lists the three datasets of the §VI-B sweeps.
func SweepDatasets() []string { return []string{DSMSCOCO, DSMirFlickr, DSPlaces} }

package experiments

import (
	"fmt"
	"strings"

	"ams/internal/metrics"
	"ams/internal/rl"
	"ams/internal/sched"
	"ams/internal/sim"
	"ams/internal/tensor"
)

// --- Fig. 10: scheduling under deadline constraint ------------------------

// DeadlineResult holds recall-vs-deadline curves on one dataset plus the
// performance ratio of Algorithm 1 to the optimal* reference.
type DeadlineResult struct {
	Dataset      string
	DeadlinesSec []float64
	Policies     []string    // Q-Greedy, Cost-Q Greedy, Random, Optimal*
	Recall       [][]float64 // [policy][deadline]
	PerfRatio    []float64   // Cost-Q / Optimal* per deadline
}

// deadlineEval evaluates the three feasible policies plus the optimal*
// reference on one dataset's test split, using the given agent.
func (l *Lab) deadlineEval(dataset string, agent sched.Predictor, seedTag string) DeadlineResult {
	st := l.TestStore(dataset)
	rng := tensor.NewRNG(l.seedFor("deadline/" + dataset + "/" + seedTag))
	policies := []struct {
		name string
		p    sim.Policy
	}{
		{"Q-Greedy", sched.NewQGreedy(agent, l.Zoo)},
		{"Cost-Q Greedy", sched.NewCostQGreedy(agent, l.Zoo)},
		{"Random", sched.NewRandom(l.Zoo, rng)},
	}
	res := DeadlineResult{
		Dataset:      dataset,
		DeadlinesSec: l.Cfg.DeadlinesSec,
		Policies:     []string{"Q-Greedy", "Cost-Q Greedy", "Random", "Optimal*"},
		Recall:       make([][]float64, 4),
	}
	for i := range res.Recall {
		res.Recall[i] = make([]float64, len(res.DeadlinesSec))
	}
	res.PerfRatio = make([]float64, len(res.DeadlinesSec))
	n := float64(st.NumScenes())
	for di, dSec := range res.DeadlinesSec {
		dMS := dSec * 1000
		for pi, np := range policies {
			var sum float64
			for i := 0; i < st.NumScenes(); i++ {
				sum += sim.RunDeadline(st, i, np.p, dMS).Recall
			}
			res.Recall[pi][di] = sum / n
		}
		var optSum float64
		for i := 0; i < st.NumScenes(); i++ {
			optSum += sched.OptimalStarDeadline(st, i, dMS)
		}
		res.Recall[3][di] = optSum / n
		if res.Recall[3][di] > 0 {
			res.PerfRatio[di] = res.Recall[1][di] / res.Recall[3][di]
		} else {
			res.PerfRatio[di] = 1
		}
	}
	return res
}

// Fig10 evaluates deadline scheduling with the DuelingDQN agent on the
// three sweep datasets (§VI-F).
func (l *Lab) Fig10() []DeadlineResult {
	var rs []DeadlineResult
	for _, name := range SweepDatasets() {
		agent := l.Agent(rl.DuelingDQN, name)
		l.logf("fig10: deadline scheduling on %s", name)
		rs = append(rs, l.deadlineEval(name, agent, "fig10"))
	}
	return rs
}

// Format renders one dataset's panel of Fig. 10.
func (r DeadlineResult) Format() string {
	series := make([]metrics.Series, len(r.Policies))
	for i, p := range r.Policies {
		series[i] = metrics.Series{Name: p, Y: r.Recall[i]}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 10 (%s) — value recall rate under deadline constraints\n", r.Dataset)
	b.WriteString(metrics.SeriesTable("deadline(s)", r.DeadlinesSec, series, 2))
	b.WriteString("performance ratio (Cost-Q / Optimal*, reference 1-1/e = 0.632):\n")
	b.WriteString(metrics.SeriesTable("deadline(s)", r.DeadlinesSec,
		[]metrics.Series{{Name: "ratio", Y: r.PerfRatio}}, 2))
	return b.String()
}

// --- Fig. 12: transfer under deadline constraint ---------------------------

// Fig12Result holds recall-vs-deadline for Agent1/Agent2 on the two
// transfer datasets using Algorithm 1.
type Fig12Result struct {
	Datasets     []string // Dataset1, Dataset2
	DeadlinesSec []float64
	Policies     []string      // Agent1, Agent2, Random, Optimal*
	Recall       [][][]float64 // [dataset][policy][deadline]
}

// Fig12 mirrors §VI-F's transfer experiment: Agent1 (Stanford40-trained)
// and Agent2 (VOC-trained) scheduled by Algorithm 1 on both test sets.
func (l *Lab) Fig12() Fig12Result {
	agent1 := l.Agent(rl.DuelingDQN, DSStanford)
	agent2 := l.Agent(rl.DuelingDQN, DSVOC)
	res := Fig12Result{
		Datasets:     []string{DSStanford, DSVOC},
		DeadlinesSec: l.Cfg.DeadlinesSec,
		Policies:     []string{"Agent1", "Agent2", "Random", "Optimal*"},
	}
	for _, ds := range res.Datasets {
		st := l.TestStore(ds)
		rng := tensor.NewRNG(l.seedFor("fig12/" + ds))
		policies := []sim.Policy{
			sched.NewCostQGreedy(agent1, l.Zoo),
			sched.NewCostQGreedy(agent2, l.Zoo),
			sched.NewRandom(l.Zoo, rng),
		}
		recall := make([][]float64, 4)
		for i := range recall {
			recall[i] = make([]float64, len(res.DeadlinesSec))
		}
		n := float64(st.NumScenes())
		for di, dSec := range res.DeadlinesSec {
			dMS := dSec * 1000
			for pi, p := range policies {
				var sum float64
				for i := 0; i < st.NumScenes(); i++ {
					sum += sim.RunDeadline(st, i, p, dMS).Recall
				}
				recall[pi][di] = sum / n
			}
			var optSum float64
			for i := 0; i < st.NumScenes(); i++ {
				optSum += sched.OptimalStarDeadline(st, i, dMS)
			}
			recall[3][di] = optSum / n
		}
		res.Recall = append(res.Recall, recall)
	}
	return res
}

// Format renders both panels of Fig. 12.
func (r Fig12Result) Format() string {
	var b strings.Builder
	for di, ds := range r.Datasets {
		series := make([]metrics.Series, len(r.Policies))
		for i, p := range r.Policies {
			series[i] = metrics.Series{Name: p, Y: r.Recall[di][i]}
		}
		fmt.Fprintf(&b, "Fig. 12 (Dataset%d = %s) — recall under deadline, Algorithm 1\n",
			di+1, ds)
		b.WriteString(metrics.SeriesTable("deadline(s)", r.DeadlinesSec, series, 2))
	}
	return b.String()
}

package experiments

import (
	"math"
	"strings"
	"testing"
)

// TestExtBatching pins the extension's headline claims on the micro
// lab: execution-layer batching raises throughput on the memory-bound
// hot-model trace without moving recall (schedules are charged nominal
// time either way), and the batch-aware policy variant coalesces at
// least as aggressively as the unaware one.
func TestExtBatching(t *testing.T) {
	if testing.Short() {
		t.Skip("serves three real concurrent traces")
	}
	l := newMicroLab(t)
	r := l.ExtBatching()
	if len(r.Modes) != 3 || len(r.ThroughputHz) != 3 || len(r.Recall) != 3 {
		t.Fatalf("shape: %d modes, %d throughputs, %d recalls",
			len(r.Modes), len(r.ThroughputHz), len(r.Recall))
	}
	unb, bat, aware := 0, 1, 2
	if r.ThroughputHz[bat] <= r.ThroughputHz[unb] {
		t.Fatalf("batching did not raise throughput: %v vs %v /s",
			r.ThroughputHz[bat], r.ThroughputHz[unb])
	}
	// Nominal-time accounting: batching must not change scheduling
	// quality. Individual schedules may differ (policies see live
	// memory availability), so recall is equal in aggregate, not bitwise.
	if d := math.Abs(r.Recall[bat] - r.Recall[unb]); d > 0.05 {
		t.Fatalf("batching moved recall by %v (%v vs %v)", d, r.Recall[bat], r.Recall[unb])
	}
	if r.AvgBatch[unb] != 1 {
		t.Fatalf("unbatched mode reports avg batch %v", r.AvgBatch[unb])
	}
	if r.AvgBatch[bat] <= 1 || r.SavedGPUMS[bat] <= 0 {
		t.Fatalf("no coalescing happened: avg batch %v, saved %v GPU-ms",
			r.AvgBatch[bat], r.SavedGPUMS[bat])
	}
	if r.AvgBatch[aware] <= 1 || r.SavedGPUMS[aware] <= 0 {
		t.Fatalf("batch-aware mode never coalesced: avg batch %v, saved %v GPU-ms",
			r.AvgBatch[aware], r.SavedGPUMS[aware])
	}
	out := r.Format()
	for _, want := range []string{"cross-item dynamic batching", "unbatched", "batched+aware", "throughput/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
}

package experiments

import (
	"strings"
	"testing"

	"ams/internal/rl"
)

// microConfig keeps the whole suite testable in seconds.
func microConfig() Config {
	c := Quick()
	c.DatasetSize = 150
	c.Epochs = 6
	c.Hidden = []int{32}
	c.RecallGrid = []float64{0.2, 0.5, 0.8, 1.0}
	c.DeadlinesSec = []float64{0.5, 1, 2}
	c.MemDeadlines = []float64{0.4, 0.8}
	c.MemBudgetsGB = []float64{8, 16}
	c.Thetas = []float64{1, 10}
	return c
}

// sharedLab caches trained agents and stores across the test functions;
// the Lab is single-threaded and so are Go tests unless marked parallel.
var sharedLab = NewLab(microConfig())

func newMicroLab(t *testing.T) *Lab {
	t.Helper()
	return sharedLab
}

func TestLabCaching(t *testing.T) {
	l := newMicroLab(t)
	a := l.Agent(rl.DQN, DSMSCOCO)
	b := l.Agent(rl.DQN, DSMSCOCO)
	if a != b {
		t.Fatal("agent not cached")
	}
	if l.TestStore(DSMSCOCO) != l.TestStore(DSMSCOCO) {
		t.Fatal("store not cached")
	}
	if l.Dataset(DSMSCOCO) != l.Dataset(DSMSCOCO) {
		t.Fatal("dataset not cached")
	}
}

func TestLabSplitSizes(t *testing.T) {
	l := newMicroLab(t)
	train := l.TrainStore(DSPlaces)
	test := l.TestStore(DSPlaces)
	if train.NumScenes()+test.NumScenes() != l.Cfg.DatasetSize {
		t.Fatalf("splits sum to %d", train.NumScenes()+test.NumScenes())
	}
	frac := float64(train.NumScenes()) / float64(l.Cfg.DatasetSize)
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("train fraction %v", frac)
	}
}

func TestFig1Motivation(t *testing.T) {
	l := newMicroLab(t)
	r := l.Fig1()
	if len(r.Models) != 6 || len(r.Images) == 0 {
		t.Fatalf("fig1 shape: %d models %d images", len(r.Models), len(r.Images))
	}
	for _, row := range r.Cells {
		if len(row) != len(r.Images) {
			t.Fatal("ragged cell matrix")
		}
	}
	// The motivation claim: a large share of all-model compute is waste.
	if r.WastedFraction < 0.2 || r.WastedFraction > 0.9 {
		t.Fatalf("wasted fraction %v implausible", r.WastedFraction)
	}
	if r.UsefulExecutions+0 > r.TotalExecutions {
		t.Fatal("accounting broken")
	}
	out := r.Format()
	if !strings.Contains(out, "Fig. 1") || !strings.Contains(out, "useful") {
		t.Fatalf("format wrong:\n%s", out)
	}
}

func TestFig2Shape(t *testing.T) {
	l := newMicroLab(t)
	r := l.Fig2()
	if !(r.AvgOptimalSec < r.AvgRandomSec && r.AvgRandomSec <= r.AvgNoPolicySec) {
		t.Fatalf("Fig2 ordering violated: optimal=%v random=%v nopolicy=%v",
			r.AvgOptimalSec, r.AvgRandomSec, r.AvgNoPolicySec)
	}
	// No-policy time is the calibrated ~5.16 s.
	if r.AvgNoPolicySec < 4.8 || r.AvgNoPolicySec > 5.5 {
		t.Fatalf("no-policy avg %v", r.AvgNoPolicySec)
	}
	// Optimal saves most of the time (paper: 22% of no-policy).
	if r.AvgOptimalSec > 0.6*r.AvgNoPolicySec {
		t.Fatalf("optimal time %v too close to no-policy %v", r.AvgOptimalSec, r.AvgNoPolicySec)
	}
	if !strings.Contains(r.Format(), "Fig. 2") {
		t.Fatal("Format missing header")
	}
}

func TestRecallSweepOrderings(t *testing.T) {
	l := newMicroLab(t)
	sw := l.RecallSweep(DSMSCOCO)
	if len(sw.Policies) != 6 {
		t.Fatalf("sweep has %d policies", len(sw.Policies))
	}
	last := len(sw.Thresholds) - 1
	opt, _ := sw.PolicyRow("Optimal", false)
	rnd, _ := sw.PolicyRow("Random", false)
	duel, _ := sw.PolicyRow("DuelingDQN", false)
	if !(opt[last] < duel[last] && duel[last] < rnd[last]) {
		t.Fatalf("count ordering at full recall: opt=%v duel=%v rand=%v",
			opt[last], rnd[last], duel[last])
	}
	// Counts are non-decreasing in the threshold for every policy.
	for pi, name := range sw.Policies {
		for ti := 1; ti < len(sw.Thresholds); ti++ {
			if sw.Counts[pi][ti] < sw.Counts[pi][ti-1]-1e-9 {
				t.Fatalf("%s counts not monotone", name)
			}
			if sw.Times[pi][ti] < sw.Times[pi][ti-1]-1e-9 {
				t.Fatalf("%s times not monotone", name)
			}
		}
	}
	// Sweep is cached.
	if l.RecallSweep(DSMSCOCO) != sw {
		t.Fatal("sweep not cached")
	}
	if !strings.Contains(sw.FormatCounts(), "Fig. 4") ||
		!strings.Contains(sw.FormatTimes(), "Fig. 5") {
		t.Fatal("sweep format headers wrong")
	}
}

func TestFig6RuleBetween(t *testing.T) {
	l := newMicroLab(t)
	r := l.Fig6()
	last := len(r.Thresholds) - 1
	rule, ok := r.PolicyRow("Rule", true)
	if !ok {
		t.Fatal("rule policy missing")
	}
	rnd, _ := r.PolicyRow("Random", true)
	opt, _ := r.PolicyRow("Optimal", true)
	// Rules help a bit: between optimal and random at full recall
	// (allowing sampling slack against random).
	if rule[last] < opt[last]-1e-9 {
		t.Fatalf("rule (%v) beats optimal (%v)?", rule[last], opt[last])
	}
	if rule[last] > rnd[last]*1.05 {
		t.Fatalf("rule (%v) clearly worse than random (%v)", rule[last], rnd[last])
	}
}

func TestFig7Sequence(t *testing.T) {
	l := newMicroLab(t)
	r := l.Fig7()
	if len(r.Steps) == 0 {
		t.Fatal("empty execution sequence")
	}
	seen := map[string]bool{}
	for _, s := range r.Steps {
		if seen[s.Model] {
			t.Fatalf("model %s executed twice", s.Model)
		}
		seen[s.Model] = true
	}
	out := r.Format()
	if !strings.Contains(out, "Fig. 7") || !strings.Contains(out, r.Steps[0].Model) {
		t.Fatalf("format wrong:\n%s", out)
	}
}

func TestFig8Transfer(t *testing.T) {
	l := newMicroLab(t)
	r := l.Fig8()
	if len(r.Names) != 4 || len(r.AvgSec) != 4 {
		t.Fatalf("Fig8 shape wrong")
	}
	for di := 0; di < 2; di++ {
		optimal := r.AvgSec[3][di]
		random := r.AvgSec[2][di]
		a1, a2 := r.AvgSec[0][di], r.AvgSec[1][di]
		if !(optimal < random) {
			t.Fatalf("dataset %d: optimal %v !< random %v", di, optimal, random)
		}
		// Both agents (native and transferred) beat random.
		if a1 >= random || a2 >= random {
			t.Fatalf("dataset %d: agents (%v,%v) not better than random %v",
				di, a1, a2, random)
		}
	}
	if !strings.Contains(r.Format(), "Fig. 8") {
		t.Fatal("format header wrong")
	}
}

func TestFig9ThetaPullsForward(t *testing.T) {
	l := newMicroLab(t)
	r := l.Fig9()
	if len(r.Thetas) != 2 || len(r.Algos) != 4 {
		t.Fatalf("Fig9 shape: %d thetas %d algos", len(r.Thetas), len(r.Algos))
	}
	// Averaged over algorithms, theta=10 schedules the face detector
	// earlier than theta=1.
	var at1, at10 float64
	for i := range r.Algos {
		at1 += r.AvgOrder[i][0]
		at10 += r.AvgOrder[i][1]
	}
	if at10 >= at1 {
		t.Fatalf("theta=10 order (%v) not earlier than theta=1 (%v)", at10/4, at1/4)
	}
	if !strings.Contains(r.Format(), "Fig. 9") {
		t.Fatal("format header wrong")
	}
}

func TestFig10DeadlineCurves(t *testing.T) {
	l := newMicroLab(t)
	rs := l.Fig10()
	if len(rs) != 3 {
		t.Fatalf("Fig10 returned %d datasets", len(rs))
	}
	for _, r := range rs {
		for pi, name := range r.Policies {
			for di := 1; di < len(r.DeadlinesSec); di++ {
				if r.Recall[pi][di] < r.Recall[pi][di-1]-0.05 {
					t.Fatalf("%s/%s recall sharply decreasing in deadline", r.Dataset, name)
				}
			}
		}
		// Cost-Q beats random at the tightest deadline.
		if r.Recall[1][0] <= r.Recall[2][0] {
			t.Fatalf("%s: cost-Q (%v) not above random (%v) at tight deadline",
				r.Dataset, r.Recall[1][0], r.Recall[2][0])
		}
		// Optimal* dominates the feasible policies (within relaxation slack).
		for di := range r.DeadlinesSec {
			for pi := 0; pi < 3; pi++ {
				if r.Recall[pi][di] > r.Recall[3][di]+0.03 {
					t.Fatalf("%s: policy %s beats optimal*", r.Dataset, r.Policies[pi])
				}
			}
		}
		if !strings.Contains(r.Format(), "Fig. 10") {
			t.Fatal("format header wrong")
		}
	}
}

func TestFig11MemoryCurves(t *testing.T) {
	l := newMicroLab(t)
	rs := l.Fig11()
	if len(rs) != 2 {
		t.Fatalf("Fig11 returned %d budgets", len(rs))
	}
	for _, r := range rs {
		for di := range r.DeadlinesSec {
			if r.Recall[0][di] > r.Recall[2][di]+0.03 {
				t.Fatalf("agent beats optimal* at %vGB", r.MemGB)
			}
		}
		if !strings.Contains(r.Format(), "Fig. 11") {
			t.Fatal("format header wrong")
		}
	}
	// More memory helps the random baseline at a fixed tight deadline.
	if rs[1].Recall[1][0] < rs[0].Recall[1][0]-0.05 {
		t.Fatalf("16GB random (%v) worse than 8GB (%v)",
			rs[1].Recall[1][0], rs[0].Recall[1][0])
	}
}

func TestFig12Transfer(t *testing.T) {
	l := newMicroLab(t)
	r := l.Fig12()
	if len(r.Recall) != 2 {
		t.Fatalf("Fig12 datasets = %d", len(r.Recall))
	}
	// Averaged over the deadline grid: the natively trained agent beats
	// random, and the transferred agent is at least competitive with it
	// (micro-trained transfer can land at parity).
	for di := range r.Datasets {
		avg := func(pi int) float64 {
			var s float64
			for _, v := range r.Recall[di][pi] {
				s += v
			}
			return s / float64(len(r.Recall[di][pi]))
		}
		random := avg(2)
		native, transferred := avg(0), avg(1)
		if di == 1 {
			native, transferred = transferred, native
		}
		if native <= random {
			t.Fatalf("dataset %d: native agent (%v) not above random (%v)", di, native, random)
		}
		if transferred < 0.9*random {
			t.Fatalf("dataset %d: transferred agent (%v) far below random (%v)",
				di, transferred, random)
		}
	}
	if !strings.Contains(r.Format(), "Fig. 12") {
		t.Fatal("format header wrong")
	}
}

func TestTables(t *testing.T) {
	l := newMicroLab(t)
	t1 := l.TableI()
	if !strings.Contains(t1, "1104 Labels") || !strings.Contains(t1, "30 Models") {
		t.Fatalf("Table I totals missing:\n%s", t1)
	}
	t2 := l.TableII()
	if !strings.Contains(t2, "pose estimation") || !strings.Contains(t2, "0.5x") {
		t.Fatalf("Table II content missing:\n%s", t2)
	}
	t3 := l.TableIII()
	if t3.SelectionMS <= 0 || t3.SelectionMS > 50 {
		t.Fatalf("selection overhead %v ms implausible", t3.SelectionMS)
	}
	if t3.AgentMemoryMB <= 0 || t3.AgentMemoryMB > 200 {
		t.Fatalf("agent memory %v MB implausible", t3.AgentMemoryMB)
	}
	if t3.ModelTimeMinMS != 50 || t3.ModelTimeMaxMS != 400 {
		t.Fatalf("model time range %v-%v", t3.ModelTimeMinMS, t3.ModelTimeMaxMS)
	}
	if !strings.Contains(t3.Format(), "Table III") {
		t.Fatal("Table III header wrong")
	}
}

func TestHeadline(t *testing.T) {
	l := newMicroLab(t)
	h := l.Headline()
	if h.SavedAtFullRecall <= 0 {
		t.Fatalf("no time saved at full recall: %v", h.SavedAtFullRecall)
	}
	if h.SavedAtFullRecall >= 1 || h.SavedAt80Recall >= 1 {
		t.Fatalf("savings out of range: %+v", h)
	}
	if !strings.Contains(h.Format(), "Headline") {
		t.Fatal("format header wrong")
	}
}

func TestQuickFullConfigs(t *testing.T) {
	q, f := Quick(), Full()
	if f.DatasetSize <= q.DatasetSize || f.Epochs <= q.Epochs {
		t.Fatal("Full not larger than Quick")
	}
	if len(q.RecallGrid) == 0 || q.RecallGrid[len(q.RecallGrid)-1] != 1.0 {
		t.Fatal("recall grid must end at 1.0")
	}
}

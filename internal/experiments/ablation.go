package experiments

import (
	"fmt"
	"strings"

	"ams/internal/core"
	"ams/internal/graph"
	"ams/internal/metrics"
	"ams/internal/rl"
	"ams/internal/sched"
	"ams/internal/sim"
	"ams/internal/tensor"
)

// --- Ablation: the END action (§IV-B) -------------------------------------

// AblationENDResult compares training with and without the END action.
type AblationENDResult struct {
	Epochs         int
	RewardWithEnd  []float64 // mean per-step reward per epoch
	RewardNoEnd    []float64
	ModelsWithEnd  float64 // avg executed models at full recall (test set)
	ModelsNoEnd    float64
	FinalRewardGap float64 // with - without, positive favours END
}

// AblationEND trains two DuelingDQN agents on MSCOCO, one with the END
// action and one without, and compares convergence. The paper argues END
// "effectively quickens the velocity of convergence" by letting the agent
// avoid the -1 punishments that pile up once nothing valuable remains.
func (l *Lab) AblationEND() AblationENDResult {
	st := l.TrainStore(DSMSCOCO)
	test := l.TestStore(DSMSCOCO)
	res := AblationENDResult{Epochs: l.Cfg.Epochs}

	train := func(disable bool, rewards *[]float64) *core.Agent {
		return core.Train(st, core.TrainConfig{
			Algo:       rl.DuelingDQN,
			Epochs:     l.Cfg.Epochs,
			Hidden:     l.Cfg.Hidden,
			DisableEnd: disable,
			Seed:       l.seedFor("ablation-end"),
			Progress: func(_ int, _, meanReward float64) {
				*rewards = append(*rewards, meanReward)
			},
		})
	}
	l.logf("ablation: training with END action")
	withEnd := train(false, &res.RewardWithEnd)
	l.logf("ablation: training without END action")
	noEnd := train(true, &res.RewardNoEnd)

	evalModels := func(a *core.Agent) float64 {
		var sum float64
		p := sched.NewQGreedy(a, l.Zoo)
		for i := 0; i < test.NumScenes(); i++ {
			sum += float64(len(sim.RunToRecall(test, i, p, 1.0).Executed))
		}
		return sum / float64(test.NumScenes())
	}
	res.ModelsWithEnd = evalModels(withEnd)
	res.ModelsNoEnd = evalModels(noEnd)
	if n := len(res.RewardWithEnd); n > 0 && len(res.RewardNoEnd) == n {
		res.FinalRewardGap = res.RewardWithEnd[n-1] - res.RewardNoEnd[n-1]
	}
	return res
}

// Format renders the END ablation.
func (r AblationENDResult) Format() string {
	var b strings.Builder
	b.WriteString("Ablation — END action (§IV-B)\n")
	b.WriteString("mean per-step training reward by epoch:\n")
	xs := make([]float64, len(r.RewardWithEnd))
	for i := range xs {
		xs[i] = float64(i)
	}
	b.WriteString(metrics.SeriesTable("epoch", xs, []metrics.Series{
		{Name: "with END", Y: r.RewardWithEnd},
		{Name: "without END", Y: r.RewardNoEnd},
	}, 3))
	fmt.Fprintf(&b, "avg executed models at full recall: with END %.2f, without %.2f\n",
		r.ModelsWithEnd, r.ModelsNoEnd)
	return b.String()
}

// --- Ablation: discount factor -------------------------------------------

// AblationGammaResult sweeps the discount factor and reports Algorithm 1
// recall at two deadlines.
type AblationGammaResult struct {
	Gammas      []float64
	RecallHalfS []float64 // 0.5 s deadline
	RecallOneS  []float64 // 1.0 s deadline
}

// AblationGamma quantifies the design choice documented in
// core.TrainConfig: small discounts keep Q close to each model's
// immediate profit, which is what Algorithm 1's Q/time density needs.
func (l *Lab) AblationGamma() AblationGammaResult {
	st := l.TrainStore(DSMSCOCO)
	test := l.TestStore(DSMSCOCO)
	res := AblationGammaResult{Gammas: []float64{0.1, 0.3, 0.6, 0.9}}
	for _, gamma := range res.Gammas {
		l.logf("ablation: gamma=%v", gamma)
		agent := core.Train(st, core.TrainConfig{
			Algo:   rl.DuelingDQN,
			Epochs: l.Cfg.Epochs,
			Hidden: l.Cfg.Hidden,
			Gamma:  gamma,
			Seed:   l.seedFor("ablation-gamma"),
		})
		p := sched.NewCostQGreedy(agent, l.Zoo)
		var half, one float64
		for i := 0; i < test.NumScenes(); i++ {
			half += sim.RunDeadline(test, i, p, 500).Recall
			one += sim.RunDeadline(test, i, p, 1000).Recall
		}
		n := float64(test.NumScenes())
		res.RecallHalfS = append(res.RecallHalfS, half/n)
		res.RecallOneS = append(res.RecallOneS, one/n)
	}
	return res
}

// Format renders the gamma ablation.
func (r AblationGammaResult) Format() string {
	return "Ablation — discount factor for Algorithm 1 (Cost-Q density)\n" +
		metrics.SeriesTable("gamma", r.Gammas, []metrics.Series{
			{Name: "recall@0.5s", Y: r.RecallHalfS},
			{Name: "recall@1.0s", Y: r.RecallOneS},
		}, 3)
}

// --- Ablation: reward smoothing (§IV-A) -----------------------------------

// AblationRewardResult compares the reward smoothing shapes.
type AblationRewardResult struct {
	Shapes    []string
	AvgModels []float64 // executed models at full recall
	AvgTimeS  []float64
}

// AblationReward trains one agent per reward shape. The paper argues the
// logarithm (or any smoothing keeping model rewards within an order of
// magnitude, like the per-label average) prevents many-label models from
// dominating; the linear shape is the strawman.
func (l *Lab) AblationReward() AblationRewardResult {
	st := l.TrainStore(DSMSCOCO)
	test := l.TestStore(DSMSCOCO)
	var res AblationRewardResult
	for _, shape := range []core.RewardShape{core.RewardLog, core.RewardLinear, core.RewardAverage} {
		l.logf("ablation: reward shape %v", shape)
		agent := core.Train(st, core.TrainConfig{
			Algo:   rl.DuelingDQN,
			Epochs: l.Cfg.Epochs,
			Hidden: l.Cfg.Hidden,
			Shape:  shape,
			Seed:   l.seedFor("ablation-reward"),
		})
		p := sched.NewQGreedy(agent, l.Zoo)
		var models, time float64
		for i := 0; i < test.NumScenes(); i++ {
			r := sim.RunToRecall(test, i, p, 1.0)
			models += float64(len(r.Executed))
			time += r.TimeMS / 1000
		}
		n := float64(test.NumScenes())
		res.Shapes = append(res.Shapes, shape.String())
		res.AvgModels = append(res.AvgModels, models/n)
		res.AvgTimeS = append(res.AvgTimeS, time/n)
	}
	return res
}

// Format renders the reward ablation.
func (r AblationRewardResult) Format() string {
	rows := make([][]string, len(r.Shapes))
	for i, s := range r.Shapes {
		rows[i] = []string{s,
			metrics.Float(r.AvgModels[i], 2),
			metrics.Float(r.AvgTimeS[i], 2)}
	}
	return "Ablation — reward smoothing (§IV-A), full-recall cost\n" +
		metrics.Table([]string{"shape", "avg models", "avg time (s)"}, rows)
}

// --- Extension: model-relationship graph (§VIII future work) ---------------

// GraphExtResult compares the statistical model-relationship-graph policy
// against the DRL agent and baselines, and lists the strongest mined
// relationships.
type GraphExtResult struct {
	Sweep    *SweepResult
	TopEdges string
}

// ExtGraph builds the model-relationship graph from the MSCOCO training
// ground truth and evaluates its belief-driven policy on the test split —
// the fast-construction component the paper's conclusion proposes.
func (l *Lab) ExtGraph() GraphExtResult {
	st := l.TrainStore(DSMSCOCO)
	test := l.TestStore(DSMSCOCO)
	g := graph.Build(st)
	agent := l.Agent(rl.DuelingDQN, DSMSCOCO)
	rng := tensor.NewRNG(l.seedFor("ext-graph"))
	l.logf("extension: model-relationship graph policy")
	sweep := l.sweep(DSMSCOCO, []namedOrderPolicy{
		{name: "Graph", policy: graph.NewValuePolicy(g, l.Zoo)},
		{name: "DuelingDQN", policy: sched.NewQGreedy(agent, l.Zoo)},
		{name: "Random", policy: sched.NewRandom(l.Zoo, rng)},
		{name: "Optimal", policy: sched.NewOptimal(test)},
	})
	names := make([]string, len(l.Zoo.Models))
	for i, m := range l.Zoo.Models {
		names[i] = m.Name
	}
	return GraphExtResult{Sweep: sweep, TopEdges: g.Format(names, 12)}
}

// Format renders the graph extension.
func (r GraphExtResult) Format() string {
	series := make([]metrics.Series, len(r.Sweep.Policies))
	for i, p := range r.Sweep.Policies {
		series[i] = metrics.Series{Name: p, Y: r.Sweep.Counts[i]}
	}
	return "Extension — model-relationship graph policy (avg executed models)\n" +
		metrics.SeriesTable("recall", r.Sweep.Thresholds, series, 2) +
		"\n" + r.TopEdges
}

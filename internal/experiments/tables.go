package experiments

import (
	"fmt"
	"strings"
	"time"

	"ams/internal/labels"
	"ams/internal/metrics"
	"ams/internal/rl"
	"ams/internal/rules"
	"ams/internal/tensor"
)

// TableI renders the task/model/label inventory (paper Table I).
func (l *Lab) TableI() string {
	var rows [][]string
	totalLabels := 0
	for _, t := range labels.Tasks() {
		n := t.LabelCount()
		totalLabels += n
		models := l.Zoo.ModelsForTask(t)
		names := make([]string, len(models))
		for i, m := range models {
			names[i] = m.Name
		}
		rows = append(rows, []string{
			t.String(), fmt.Sprintf("%d", n), strings.Join(names, ", "),
		})
	}
	rows = append(rows, []string{"10 Tasks",
		fmt.Sprintf("%d Labels", totalLabels),
		fmt.Sprintf("%d Models", len(l.Zoo.Models))})
	return "Table I — summary of 10 visual analysis tasks\n" +
		metrics.Table([]string{"task", "label#", "deployed models"}, rows)
}

// TableII renders the handcrafted rules (paper Table II).
func (l *Lab) TableII() string {
	var rows [][]string
	for _, r := range rules.TableII() {
		factor := "2x"
		if r.Factor < 1 {
			factor = "0.5x"
		}
		rows = append(rows, []string{r.From.String(), r.Name, factor})
	}
	return "Table II — ten handcrafted model execution rules\n" +
		metrics.Table([]string{"current model task", "rule", "factor"}, rows)
}

// TableIIIResult reports the scheduling overhead measurements.
type TableIIIResult struct {
	SelectionMS                    float64 // time per DRL value prediction (one selection)
	AgentMemoryMB                  float64 // agent parameter footprint
	ModelTimeMinMS, ModelTimeMaxMS float64
	ModelMemMinMB, ModelMemMaxMB   float64
}

// TableIII measures the overhead added by the framework (paper Table III):
// the wall-clock cost of one agent selection and the agent's memory
// footprint, against the simulated models' cost ranges.
func (l *Lab) TableIII() TableIIIResult {
	agent := l.Agent(rl.DuelingDQN, DSMSCOCO)
	rng := tensor.NewRNG(l.seedFor("table3"))
	// Random plausible labeling states: a handful of active labels.
	states := make([][]int, 256)
	for i := range states {
		n := 1 + rng.Intn(40)
		seen := map[int]bool{}
		for len(seen) < n {
			seen[rng.Intn(agent.Net.In())] = true
		}
		s := make([]int, 0, n)
		for id := range seen {
			s = append(s, id)
		}
		states[i] = sortedInts(s)
	}
	const iters = 2000
	start := time.Now()
	for i := 0; i < iters; i++ {
		agent.Predict(states[i%len(states)])
	}
	elapsed := time.Since(start)

	res := TableIIIResult{
		SelectionMS:   float64(elapsed.Microseconds()) / 1000 / iters,
		AgentMemoryMB: float64(agent.Net.NumParams()) * 8 / 1e6,
	}
	res.ModelTimeMinMS, res.ModelTimeMaxMS = 1e18, 0
	res.ModelMemMinMB, res.ModelMemMaxMB = 1e18, 0
	for _, m := range l.Zoo.Models {
		res.ModelTimeMinMS = min(res.ModelTimeMinMS, m.TimeMS)
		res.ModelTimeMaxMS = max(res.ModelTimeMaxMS, m.TimeMS)
		res.ModelMemMinMB = min(res.ModelMemMinMB, m.MemMB)
		res.ModelMemMaxMB = max(res.ModelMemMaxMB, m.MemMB)
	}
	return res
}

// Format renders Table III.
func (r TableIIIResult) Format() string {
	return "Table III — computing cost of DRL agent vs deployed models\n" +
		metrics.Table(
			[]string{"", "DRL agent", "deep learning model"},
			[][]string{
				{"time", fmt.Sprintf("%.3f ms/selection", r.SelectionMS),
					fmt.Sprintf("%.0f-%.0f ms", r.ModelTimeMinMS, r.ModelTimeMaxMS)},
				{"memory", fmt.Sprintf("%.1f MB (CPU)", r.AgentMemoryMB),
					fmt.Sprintf("%.0f-%.0f MB (GPU)", r.ModelMemMinMB, r.ModelMemMaxMB)},
			})
}

func sortedInts(xs []int) []int {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
	return xs
}

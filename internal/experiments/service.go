package experiments

import (
	"fmt"
	"strings"

	"ams/internal/metrics"
	"ams/internal/rl"
	"ams/internal/sched"
	"ams/internal/service"
	"ams/internal/sim"
	"ams/internal/tensor"
)

// ServiceExtResult compares the agent-driven scheduler against the random
// baseline inside a queueing labeling service at several offered loads.
type ServiceExtResult struct {
	Workers      int
	DeadlineSec  float64
	ArrivalRates []float64
	// Per rate, for each of {Agent, Random}:
	AgentRecall  []float64
	RandomRecall []float64
	AgentP95Sec  []float64
	RandomP95Sec []float64
	AgentUtil    []float64
	RandomUtil   []float64
	AgentThruHz  []float64
	RandomThruHz []float64
}

// ExtService runs the labeling-service simulation on MSCOCO with the
// DuelingDQN agent (Algorithm 1 per item) versus the random policy at
// matched budgets. Because both schedulers fill the same deadline, their
// throughput matches — the agent's advantage shows up purely as recall
// per item under identical serving behaviour.
func (l *Lab) ExtService() ServiceExtResult {
	st := l.TestStore(DSMSCOCO)
	agent := l.Agent(rl.DuelingDQN, DSMSCOCO)
	res := ServiceExtResult{
		Workers:      2,
		DeadlineSec:  0.5,
		ArrivalRates: []float64{1, 3, 6},
	}
	items := 4 * st.NumScenes()
	if items > 1200 {
		items = 1200
	}
	for _, rate := range res.ArrivalRates {
		l.logf("ext-service: offered load %v Hz", rate)
		cfg := service.Config{
			Workers:       res.Workers,
			ArrivalRateHz: rate,
			DeadlineSec:   res.DeadlineSec,
			Items:         items,
			Seed:          l.seedFor(fmt.Sprintf("service/%v", rate)),
		}
		// service.Run is a single-threaded virtual-time loop, so sharing
		// one agent network across the worker policies is safe.
		agentStats := service.Run(st, func(int) sim.Policy {
			return sched.NewCostQGreedy(agent, l.Zoo)
		}, cfg)
		randStats := service.Run(st, func(w int) sim.Policy {
			return sched.NewRandom(l.Zoo, tensor.NewRNG(cfg.Seed+uint64(w)))
		}, cfg)
		res.AgentRecall = append(res.AgentRecall, agentStats.AvgRecall)
		res.RandomRecall = append(res.RandomRecall, randStats.AvgRecall)
		res.AgentP95Sec = append(res.AgentP95Sec, agentStats.P95LatencySec)
		res.RandomP95Sec = append(res.RandomP95Sec, randStats.P95LatencySec)
		res.AgentUtil = append(res.AgentUtil, agentStats.Utilization)
		res.RandomUtil = append(res.RandomUtil, randStats.Utilization)
		res.AgentThruHz = append(res.AgentThruHz, agentStats.ThroughputHz)
		res.RandomThruHz = append(res.RandomThruHz, randStats.ThroughputHz)
	}
	return res
}

// Format renders the service comparison.
func (r ServiceExtResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — labeling service under load (%d workers, %.1fs deadline)\n",
		r.Workers, r.DeadlineSec)
	b.WriteString(metrics.SeriesTable("arrivals/s", r.ArrivalRates, []metrics.Series{
		{Name: "agent recall", Y: r.AgentRecall},
		{Name: "random recall", Y: r.RandomRecall},
		{Name: "agent p95 (s)", Y: r.AgentP95Sec},
		{Name: "random p95 (s)", Y: r.RandomP95Sec},
		{Name: "agent util", Y: r.AgentUtil},
		{Name: "random util", Y: r.RandomUtil},
	}, 3))
	return b.String()
}

package experiments

import (
	"strings"
	"testing"
)

func TestAblationEND(t *testing.T) {
	l := newMicroLab(t)
	r := l.AblationEND()
	if len(r.RewardWithEnd) != l.Cfg.Epochs || len(r.RewardNoEnd) != l.Cfg.Epochs {
		t.Fatalf("reward trajectories wrong length: %d/%d",
			len(r.RewardWithEnd), len(r.RewardNoEnd))
	}
	if r.ModelsWithEnd <= 0 || r.ModelsNoEnd <= 0 {
		t.Fatalf("eval missing: %+v", r)
	}
	// With END available, late-training mean reward must be at least as
	// good as without it (END avoids the -1 pile-up).
	lastWith := r.RewardWithEnd[len(r.RewardWithEnd)-1]
	lastNo := r.RewardNoEnd[len(r.RewardNoEnd)-1]
	if lastWith < lastNo-0.05 {
		t.Fatalf("END hurt final reward: with %v, without %v", lastWith, lastNo)
	}
	if !strings.Contains(r.Format(), "END action") {
		t.Fatal("format header wrong")
	}
}

func TestAblationGamma(t *testing.T) {
	l := newMicroLab(t)
	r := l.AblationGamma()
	if len(r.Gammas) != 4 || len(r.RecallHalfS) != 4 || len(r.RecallOneS) != 4 {
		t.Fatalf("shape wrong: %+v", r)
	}
	for i := range r.Gammas {
		if r.RecallHalfS[i] < 0 || r.RecallHalfS[i] > 1 ||
			r.RecallOneS[i] < r.RecallHalfS[i]-0.05 {
			t.Fatalf("recall curves implausible at gamma %v: %v / %v",
				r.Gammas[i], r.RecallHalfS[i], r.RecallOneS[i])
		}
	}
	// The design claim: a small gamma must not lose to gamma=0.9 for the
	// density-based scheduler (allowing micro-training noise).
	small := (r.RecallHalfS[0] + r.RecallHalfS[1]) / 2
	large := r.RecallHalfS[len(r.RecallHalfS)-1]
	if small < large-0.1 {
		t.Fatalf("small gammas (%v) unexpectedly far below 0.9 (%v)", small, large)
	}
	if !strings.Contains(r.Format(), "discount factor") {
		t.Fatal("format header wrong")
	}
}

func TestAblationReward(t *testing.T) {
	l := newMicroLab(t)
	r := l.AblationReward()
	if len(r.Shapes) != 3 {
		t.Fatalf("shapes: %v", r.Shapes)
	}
	for i := range r.Shapes {
		if r.AvgModels[i] <= 0 || r.AvgModels[i] > 30 {
			t.Fatalf("avg models out of range for %s: %v", r.Shapes[i], r.AvgModels[i])
		}
	}
	if !strings.Contains(r.Format(), "reward smoothing") {
		t.Fatal("format header wrong")
	}
}

func TestExtService(t *testing.T) {
	l := newMicroLab(t)
	r := l.ExtService()
	if len(r.ArrivalRates) != 3 {
		t.Fatalf("rates: %v", r.ArrivalRates)
	}
	for i := range r.ArrivalRates {
		// Matched budgets: the agent's advantage is recall per item.
		if r.AgentRecall[i] <= r.RandomRecall[i] {
			t.Fatalf("rate %v: agent recall %v not above random %v",
				r.ArrivalRates[i], r.AgentRecall[i], r.RandomRecall[i])
		}
		if r.AgentUtil[i] <= 0 || r.AgentUtil[i] > 1+1e-9 {
			t.Fatalf("utilization out of range: %v", r.AgentUtil[i])
		}
	}
	// Heavier load must not reduce p95 latency.
	last := len(r.ArrivalRates) - 1
	if r.RandomP95Sec[last] < r.RandomP95Sec[0]-1e-9 {
		t.Fatalf("p95 fell with load: %v -> %v", r.RandomP95Sec[0], r.RandomP95Sec[last])
	}
	if !strings.Contains(r.Format(), "labeling service") {
		t.Fatal("format header wrong")
	}
}

func TestExtGraph(t *testing.T) {
	l := newMicroLab(t)
	r := l.ExtGraph()
	if len(r.Sweep.Policies) != 4 {
		t.Fatalf("policies: %v", r.Sweep.Policies)
	}
	last := len(r.Sweep.Thresholds) - 1
	graphRow, ok := r.Sweep.PolicyRow("Graph", false)
	if !ok {
		t.Fatal("graph policy missing")
	}
	randRow, _ := r.Sweep.PolicyRow("Random", false)
	optRow, _ := r.Sweep.PolicyRow("Optimal", false)
	// The graph policy sits between optimal and random.
	if graphRow[last] >= randRow[last] {
		t.Fatalf("graph (%v) not better than random (%v)", graphRow[last], randRow[last])
	}
	if graphRow[last] < optRow[last]-1e-9 {
		t.Fatalf("graph (%v) beats optimal (%v)?", graphRow[last], optRow[last])
	}
	if !strings.Contains(r.TopEdges, "lift") {
		t.Fatal("edges missing")
	}
	if !strings.Contains(r.Format(), "model-relationship graph") {
		t.Fatal("format header wrong")
	}
}

package experiments

import (
	"context"
	"fmt"
	"strings"

	"ams/internal/core"
	"ams/internal/metrics"
	"ams/internal/oracle"
	"ams/internal/rl"
	"ams/internal/sched"
	"ams/internal/serve"
	"ams/internal/sim"
)

// BatchingExtResult compares the real concurrent server on one
// memory-bound hot-model trace in three modes at identical worker
// count, budget, and submission order:
//
//   - unbatched: every execution reserves its own footprint;
//   - batched: cross-item demand coalesces in the execution layer, the
//     policies unchanged — schedules stay nominal-identical, throughput
//     rises purely from memory coalescing;
//   - batched+aware: the policy additionally scores a model with live
//     batch-lane waiters at its per-item marginal cost
//     (sched.SetBatchAware), the scheduling-problem extension — it may
//     trade schedule composition for joining cheaper batches.
type BatchingExtResult struct {
	Workers     int
	DeadlineSec float64
	MemGB       float64
	BatchSize   int
	Items       int

	Modes        []string
	ThroughputHz []float64
	Recall       []float64
	P95Sec       []float64
	AvgBatch     []float64 // requests per batched execution (1 = no coalescing)
	SavedGPUMS   []float64 // GPU-ms the sub-linear batch cost avoided
}

// ExtBatching runs the cross-item batching extension on MSCOCO with the
// DuelingDQN agent driving Algorithm 1 per item. The trace is shaped to
// be memory-bound with few hot models — a budget most of the zoo does
// not fit and a short deadline that concentrates every item on the same
// top-ratio models — which is where coalescing has demand to find.
func (l *Lab) ExtBatching() BatchingExtResult {
	st := l.TestStore(DSMSCOCO)
	agent := l.Agent(rl.DuelingDQN, DSMSCOCO)
	res := BatchingExtResult{
		Workers:     8,
		DeadlineSec: 0.2,
		MemGB:       1,
		BatchSize:   8,
		Items:       3 * st.NumScenes(),
		Modes:       []string{"unbatched", "batched", "batched+aware"},
	}
	base := serve.Config{
		MemoryBudgetMB: res.MemGB * 1024,
		QueueCap:       2 * res.Workers,
		TimeScale:      0.002,
	}
	base.Workers = res.Workers
	base.DeadlineSec = res.DeadlineSec
	for _, mode := range res.Modes {
		cfg := base
		aware := false
		switch mode {
		case "batched":
			cfg.BatchSize = res.BatchSize
			cfg.BatchHoldMS = 600
		case "batched+aware":
			cfg.BatchSize = res.BatchSize
			cfg.BatchHoldMS = 600
			aware = true
		}
		l.logf("ext-batching: %s (%d items)", mode, res.Items)
		stats := l.runBatchTrace(st, agent, cfg, aware, res.Items)
		res.ThroughputHz = append(res.ThroughputHz, stats.ThroughputHz)
		res.Recall = append(res.Recall, stats.AvgRecall)
		res.P95Sec = append(res.P95Sec, stats.P95LatencySec)
		avg := 1.0
		if stats.Batching.Batches > 0 {
			avg = float64(stats.Batching.Requests) / float64(stats.Batching.Batches)
		}
		res.AvgBatch = append(res.AvgBatch, avg)
		res.SavedGPUMS = append(res.SavedGPUMS, stats.Batching.SavedGPUMS)
	}
	return res
}

// runBatchTrace saturates one server configuration with items cycling
// the store and reduces the completed run. Each worker gets a private
// network clone (real goroutines, unlike service.Run's single-threaded
// loop) behind the per-schedule prediction memo.
func (l *Lab) runBatchTrace(st *oracle.Store, agent *core.Agent, cfg serve.Config, aware bool, items int) serve.RunStats {
	cfg.StatsWindow = items
	factory := func(int) sim.Policy {
		clone := &core.Agent{
			Net:       agent.Net.Clone(),
			NumModels: agent.NumModels,
			Algo:      agent.Algo,
			Dataset:   agent.Dataset,
		}
		return sched.NewCostQGreedy(sched.NewCachedPredictor(clone), l.Zoo).SetBatchAware(aware)
	}
	srv, err := serve.New(st, factory, cfg)
	if err != nil {
		panic(err)
	}
	tickets := make([]*serve.Ticket, 0, items)
	for i := 0; i < items; i++ {
		//amsvet:allow ctxflow experiment harness drives the server to completion; no caller ctx exists
		tk, err := srv.SubmitWait(context.Background(), i%st.NumScenes(), "")
		if err != nil {
			panic(err)
		}
		tickets = append(tickets, tk)
	}
	for _, tk := range tickets {
		tk.Wait()
	}
	if err := srv.Close(); err != nil {
		panic(err)
	}
	return srv.Stats()
}

// Format renders the batching comparison, one row per metric with the
// mode index as the column axis.
func (r BatchingExtResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — cross-item dynamic batching (%d workers, %.1fs deadline, %.0fGB memory, batch %d, %d items)\n",
		r.Workers, r.DeadlineSec, r.MemGB, r.BatchSize, r.Items)
	x := make([]float64, len(r.Modes))
	for i, m := range r.Modes {
		x[i] = float64(i)
		fmt.Fprintf(&b, "mode %d: %s\n", i, m)
	}
	b.WriteString(metrics.SeriesTable("mode", x, []metrics.Series{
		{Name: "throughput/s", Y: r.ThroughputHz},
		{Name: "recall", Y: r.Recall},
		{Name: "p95 (s)", Y: r.P95Sec},
		{Name: "avg batch", Y: r.AvgBatch},
		{Name: "saved GPU-ms", Y: r.SavedGPUMS},
	}, 3))
	return b.String()
}

package experiments

import (
	"fmt"
	"strings"

	"ams/internal/metrics"
	"ams/internal/zoo"
)

// Fig1Cell classifies one model execution on one image, as in the paper's
// motivation figure: useful (valuable labels), low-confidence-only
// output, or nothing at all.
type Fig1Cell int

// Cell kinds.
const (
	CellNoOutput Fig1Cell = iota
	CellLowConf
	CellUseful
)

// String renders a cell marker.
func (c Fig1Cell) String() string {
	switch c {
	case CellUseful:
		return "useful"
	case CellLowConf:
		return "low"
	default:
		return "-"
	}
}

// Fig1Result is the motivation analysis: a matrix of model executions on
// sample images plus corpus-level waste accounting.
type Fig1Result struct {
	Models []string
	Images []int
	Cells  [][]Fig1Cell // [model][image]

	// Corpus-wide execution accounting over the full dataset.
	TotalExecutions  int
	UsefulExecutions int
	WastedFraction   float64
}

// Fig1 reproduces the paper's Fig. 1 narrative on MirFlickr: a handful of
// sample images crossed with a handful of diverse models, plus the
// fraction of all-model executions that produce nothing valuable ("16/30
// model executions didn't generate anything useful").
func (l *Lab) Fig1() Fig1Result {
	st := l.FullStore(DSMirFlickr)
	// Pick one representative model per task for the display matrix.
	displayTasks := []string{
		"pose-openpose", "facedet-mtcnn", "objdet-accurate",
		"action-i3d", "placecls-resnet", "dogcls-finegrained",
	}
	res := Fig1Result{}
	var modelIdx []int
	for _, name := range displayTasks {
		m, ok := l.Zoo.ByName(name)
		if !ok {
			panic(fmt.Sprintf("experiments: fig1 model %q missing", name))
		}
		res.Models = append(res.Models, name)
		modelIdx = append(modelIdx, m.ID)
	}
	// Sample a few diverse images: first with a dog, first with people,
	// first with neither, plus two more arbitrary ones.
	seen := map[int]bool{}
	pick := func(pred func(i int) bool) {
		for i := 0; i < st.NumScenes(); i++ {
			if !seen[i] && pred(i) {
				seen[i] = true
				res.Images = append(res.Images, i)
				return
			}
		}
	}
	pick(func(i int) bool { return st.Scenes[i].HasDog() })
	pick(func(i int) bool { return st.Scenes[i].Persons > 1 })
	pick(func(i int) bool { return !st.Scenes[i].HasPerson() && !st.Scenes[i].HasDog() })
	pick(func(i int) bool { return st.Scenes[i].HasFace() })
	pick(func(i int) bool { return true })

	res.Cells = make([][]Fig1Cell, len(modelIdx))
	for mi, m := range modelIdx {
		res.Cells[mi] = make([]Fig1Cell, len(res.Images))
		for ii, img := range res.Images {
			res.Cells[mi][ii] = classify(st.Output(img, m))
		}
	}

	// Corpus accounting over every (image, model) pair.
	for i := 0; i < st.NumScenes(); i++ {
		for m := 0; m < st.NumModels(); m++ {
			res.TotalExecutions++
			if st.ModelValue(i, m) > 0 {
				res.UsefulExecutions++
			}
		}
	}
	res.WastedFraction = 1 - float64(res.UsefulExecutions)/float64(res.TotalExecutions)
	return res
}

// classify buckets one output like the paper's blue/grey/white boxes.
func classify(out zoo.Output) Fig1Cell {
	if len(out.Labels) == 0 {
		return CellNoOutput
	}
	for _, lc := range out.Labels {
		if lc.Conf >= zoo.ValuableThreshold {
			return CellUseful
		}
	}
	return CellLowConf
}

// Format renders the motivation matrix and the waste headline.
func (r Fig1Result) Format() string {
	var b strings.Builder
	b.WriteString("Fig. 1 — output of diverse models on sample images\n")
	headers := []string{"model"}
	for _, img := range r.Images {
		headers = append(headers, fmt.Sprintf("img%d", img))
	}
	rows := make([][]string, len(r.Models))
	for mi, name := range r.Models {
		row := []string{name}
		for ii := range r.Images {
			row = append(row, r.Cells[mi][ii].String())
		}
		rows[mi] = row
	}
	b.WriteString(metrics.Table(headers, rows))
	fmt.Fprintf(&b, "corpus: %d/%d executions useful; %.1f%% of all-model compute is waste\n",
		r.UsefulExecutions, r.TotalExecutions, 100*r.WastedFraction)
	return b.String()
}

package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("generators with different seeds collided %d/100 times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", x)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(13)
	var sum, sumsq float64
	const n = 200000
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		x := r.Intn(5)
		if x < 0 || x >= 5 {
			t.Fatalf("Intn(5) returned %d", x)
		}
		seen[x] = true
	}
	if len(seen) != 5 {
		t.Fatalf("Intn(5) did not cover all values: %v", seen)
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(21)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(40)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, x := range p {
			if x < 0 || x >= n || seen[x] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[x] = true
		}
	}
}

func TestRNGChoiceRespectsWeights(t *testing.T) {
	r := NewRNG(5)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[r.Choice([]float64{1, 2, 7})]++
	}
	if !(counts[2] > counts[1] && counts[1] > counts[0]) {
		t.Fatalf("weighted choice ordering wrong: %v", counts)
	}
	frac := float64(counts[2]) / 30000
	if math.Abs(frac-0.7) > 0.03 {
		t.Fatalf("weight-7 arm frequency %v too far from 0.7", frac)
	}
}

func TestRNGChoiceZeroWeightsUniform(t *testing.T) {
	r := NewRNG(6)
	counts := [4]int{}
	for i := 0; i < 4000; i++ {
		counts[r.Choice([]float64{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("arm %d never chosen under degenerate weights: %v", i, counts)
		}
	}
}

func TestRNGChoiceNegativeWeightIgnored(t *testing.T) {
	r := NewRNG(8)
	for i := 0; i < 1000; i++ {
		if got := r.Choice([]float64{-5, 0, 1}); got != 2 {
			t.Fatalf("Choice picked non-positive arm %d", got)
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(99)
	child := parent.Split()
	// The child must not replay the parent stream.
	a, b := parent.Uint64(), child.Uint64()
	if a == b {
		t.Fatal("split child mirrors parent stream")
	}
}

func TestRNGRangeProperty(t *testing.T) {
	r := NewRNG(17)
	f := func(lo8, width8 uint8) bool {
		lo := float64(lo8)
		hi := lo + float64(width8) + 1
		x := r.Range(lo, hi)
		return x >= lo && x < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGBoolExtremes(t *testing.T) {
	r := NewRNG(23)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1.01) {
			t.Fatal("Bool(>1) returned false")
		}
	}
}

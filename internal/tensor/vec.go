package tensor

import (
	"fmt"
	"math"
)

// Vec is a dense float64 vector.
type Vec []float64

// NewVec returns a zeroed vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a deep copy.
func (v Vec) Clone() Vec {
	c := make(Vec, len(v))
	copy(c, v)
	return c
}

// Zero sets every element to 0.
func (v Vec) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Fill sets every element to x.
func (v Vec) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// Add adds w element-wise into v. Panics on length mismatch.
func (v Vec) Add(w Vec) {
	assertLen(len(v), len(w))
	for i := range v {
		v[i] += w[i]
	}
}

// Sub subtracts w element-wise from v.
func (v Vec) Sub(w Vec) {
	assertLen(len(v), len(w))
	for i := range v {
		v[i] -= w[i]
	}
}

// Scale multiplies every element by a.
func (v Vec) Scale(a float64) {
	for i := range v {
		v[i] *= a
	}
}

// AXPY computes v += a*w.
func (v Vec) AXPY(a float64, w Vec) {
	assertLen(len(v), len(w))
	for i := range v {
		v[i] += a * w[i]
	}
}

// Dot returns the inner product <v,w>.
func (v Vec) Dot(w Vec) float64 {
	assertLen(len(v), len(w))
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Sum returns the sum of all elements.
func (v Vec) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean (0 for the empty vector).
func (v Vec) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	return v.Sum() / float64(len(v))
}

// Max returns the maximum element and its index. For the empty vector it
// returns (-Inf, -1).
func (v Vec) Max() (float64, int) {
	best, idx := math.Inf(-1), -1
	for i, x := range v {
		if x > best {
			best, idx = x, i
		}
	}
	return best, idx
}

// Norm2 returns the Euclidean norm.
func (v Vec) Norm2() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// ClipInPlace clamps each element into [-c, c]. c must be positive.
func (v Vec) ClipInPlace(c float64) {
	for i, x := range v {
		if x > c {
			v[i] = c
		} else if x < -c {
			v[i] = -c
		}
	}
}

func assertLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("tensor: length mismatch %d != %d", a, b))
	}
}

package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestVecAddSubScale(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{4, 5, 6}
	v.Add(w)
	if v[0] != 5 || v[1] != 7 || v[2] != 9 {
		t.Fatalf("Add wrong: %v", v)
	}
	v.Sub(w)
	if v[0] != 1 || v[1] != 2 || v[2] != 3 {
		t.Fatalf("Sub wrong: %v", v)
	}
	v.Scale(2)
	if v[0] != 2 || v[1] != 4 || v[2] != 6 {
		t.Fatalf("Scale wrong: %v", v)
	}
}

func TestVecAXPYDot(t *testing.T) {
	v := Vec{1, 1}
	w := Vec{2, 3}
	v.AXPY(0.5, w)
	if !almostEq(v[0], 2) || !almostEq(v[1], 2.5) {
		t.Fatalf("AXPY wrong: %v", v)
	}
	if d := v.Dot(w); !almostEq(d, 2*2+2.5*3) {
		t.Fatalf("Dot wrong: %v", d)
	}
}

func TestVecMaxEmpty(t *testing.T) {
	var v Vec
	m, i := v.Max()
	if i != -1 || !math.IsInf(m, -1) {
		t.Fatalf("empty Max = (%v,%d)", m, i)
	}
}

func TestVecMax(t *testing.T) {
	v := Vec{-3, 7, 2, 7}
	m, i := v.Max()
	if m != 7 || i != 1 {
		t.Fatalf("Max = (%v,%d), want (7,1) first occurrence", m, i)
	}
}

func TestVecClip(t *testing.T) {
	v := Vec{-10, -0.5, 0.5, 10}
	v.ClipInPlace(1)
	want := Vec{-1, -0.5, 0.5, 1}
	for i := range v {
		if v[i] != want[i] {
			t.Fatalf("Clip wrong: %v", v)
		}
	}
}

func TestVecMeanSumNorm(t *testing.T) {
	v := Vec{3, 4}
	if v.Sum() != 7 {
		t.Fatalf("Sum wrong")
	}
	if v.Mean() != 3.5 {
		t.Fatalf("Mean wrong")
	}
	if !almostEq(v.Norm2(), 5) {
		t.Fatalf("Norm2 wrong: %v", v.Norm2())
	}
	var empty Vec
	if empty.Mean() != 0 {
		t.Fatalf("empty Mean should be 0")
	}
}

func TestVecLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Add did not panic")
		}
	}()
	Vec{1}.Add(Vec{1, 2})
}

func TestMatMulVec(t *testing.T) {
	m := NewMat(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	out := NewVec(2)
	m.MulVecInto(out, Vec{1, 0, -1})
	if !almostEq(out[0], -2) || !almostEq(out[1], -2) {
		t.Fatalf("MulVec wrong: %v", out)
	}
}

func TestMatMulVecTrans(t *testing.T) {
	m := NewMat(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	out := NewVec(3)
	m.MulVecTransInto(out, Vec{1, 2})
	// m^T * [1,2] = [1+8, 2+10, 3+12]
	if !almostEq(out[0], 9) || !almostEq(out[1], 12) || !almostEq(out[2], 15) {
		t.Fatalf("MulVecTrans wrong: %v", out)
	}
}

func TestMatAddOuter(t *testing.T) {
	m := NewMat(2, 2)
	m.AddOuter(2, Vec{1, 3}, Vec{4, 5})
	// 2 * [1,3]^T [4,5] = [[8,10],[24,30]]
	want := []float64{8, 10, 24, 30}
	for i, x := range m.Data {
		if !almostEq(x, want[i]) {
			t.Fatalf("AddOuter wrong: %v", m.Data)
		}
	}
}

func TestMatSumColsSparseMatchesDense(t *testing.T) {
	r := NewRNG(31)
	m := NewMat(5, 8)
	for i := range m.Data {
		m.Data[i] = r.Norm()
	}
	active := []int{1, 4, 7}
	x := NewVec(8)
	for _, j := range active {
		x[j] = 1
	}
	dense := NewVec(5)
	m.MulVecInto(dense, x)
	sparse := NewVec(5)
	m.SumColsSparseInto(sparse, active)
	for i := range dense {
		if !almostEq(dense[i], sparse[i]) {
			t.Fatalf("sparse path diverges from dense at %d: %v vs %v", i, sparse[i], dense[i])
		}
	}
}

func TestMatSumColsSparsePanicsOutOfRange(t *testing.T) {
	m := NewMat(2, 2)
	out := NewVec(2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range sparse index did not panic")
		}
	}()
	m.SumColsSparseInto(out, []int{2})
}

func TestMatCloneIndependent(t *testing.T) {
	m := NewMat(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases original storage")
	}
}

func TestMatCopyFromShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape-mismatched CopyFrom did not panic")
		}
	}()
	NewMat(2, 2).CopyFrom(NewMat(2, 3))
}

// Property: for random matrices and sparse one-hot-sum inputs, the sparse
// and dense products agree.
func TestMatSparseDenseProperty(t *testing.T) {
	r := NewRNG(77)
	f := func(seed uint16) bool {
		rr := NewRNG(uint64(seed))
		rows := 1 + rr.Intn(6)
		cols := 1 + rr.Intn(10)
		m := NewMat(rows, cols)
		for i := range m.Data {
			m.Data[i] = r.Norm()
		}
		var active []int
		x := NewVec(cols)
		for j := 0; j < cols; j++ {
			if rr.Bool(0.3) {
				active = append(active, j)
				x[j] = 1
			}
		}
		dense, sparse := NewVec(rows), NewVec(rows)
		m.MulVecInto(dense, x)
		m.SumColsSparseInto(sparse, active)
		for i := range dense {
			if math.Abs(dense[i]-sparse[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

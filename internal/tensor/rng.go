// Package tensor provides the small dense linear-algebra kernels and the
// deterministic random-number generator used throughout the AMS
// reproduction. Everything is float64 and allocation-conscious: the hot
// paths (network forward/backward) reuse caller-provided buffers.
package tensor

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256**, seeded through splitmix64). Every stochastic component in
// the repository draws from an explicitly seeded RNG so that experiments
// are reproducible bit-for-bit.
type RNG struct {
	s [4]uint64
	// cached spare normal deviate for Box-Muller
	hasSpare bool
	spare    float64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 expansion of the seed into the xoshiro state.
	x := seed
	for i := 0; i < 4; i++ {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent child generator. Useful for handing each
// subsystem its own stream without correlation.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa0761d6478bd642f)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0,n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo,hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a standard normal deviate (Box-Muller with caching).
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// NormMeanStd returns a normal deviate with the given mean and stddev.
func (r *RNG) NormMeanStd(mean, std float64) float64 {
	return mean + std*r.Norm()
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Perm fills a permutation of [0,n) into a fresh slice.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes the slice in place (Fisher-Yates).
func (r *RNG) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Choice returns a random index weighted by the non-negative weights.
// A zero-sum weight vector degenerates to uniform choice.
func (r *RNG) Choice(weights []float64) int {
	var sum float64
	for _, w := range weights {
		if w > 0 {
			sum += w
		}
	}
	if sum <= 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * sum
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

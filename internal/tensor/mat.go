package tensor

import "fmt"

// Mat is a dense row-major matrix: element (i,j) lives at Data[i*Cols+j].
type Mat struct {
	Rows, Cols int
	Data       Vec
}

// NewMat returns a zeroed Rows x Cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic("tensor: negative matrix dimensions")
	}
	return &Mat{Rows: rows, Cols: cols, Data: NewVec(rows * cols)}
}

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	return &Mat{Rows: m.Rows, Cols: m.Cols, Data: m.Data.Clone()}
}

// At returns element (i,j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores x at (i,j).
func (m *Mat) Set(i, j int, x float64) { m.Data[i*m.Cols+j] = x }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Mat) Row(i int) Vec { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Zero clears all elements.
func (m *Mat) Zero() { m.Data.Zero() }

// CopyFrom copies the contents of src; dimensions must match.
func (m *Mat) CopyFrom(src *Mat) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch (%dx%d vs %dx%d)",
			m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// MulVecInto computes out = m * x (out length Rows, x length Cols).
func (m *Mat) MulVecInto(out, x Vec) {
	assertLen(len(x), m.Cols)
	assertLen(len(out), m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Row(i).Dot(x)
	}
}

// MulVecTransInto computes out = m^T * x (out length Cols, x length Rows).
func (m *Mat) MulVecTransInto(out, x Vec) {
	assertLen(len(x), m.Rows)
	assertLen(len(out), m.Cols)
	out.Zero()
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j, w := range row {
			out[j] += xi * w
		}
	}
}

// AddOuter accumulates m += a * x y^T where x has length Rows and y length
// Cols. It is the rank-1 update used by backprop weight gradients.
func (m *Mat) AddOuter(a float64, x, y Vec) {
	assertLen(len(x), m.Rows)
	assertLen(len(y), m.Cols)
	for i := 0; i < m.Rows; i++ {
		s := a * x[i]
		if s == 0 {
			continue
		}
		row := m.Row(i)
		for j, yj := range y {
			row[j] += s * yj
		}
	}
}

// SumColsSparseInto computes out = sum over j in active of column j of m.
// This is the sparse-input fast path: when the network input is a binary
// vector with few ones, the first layer's product m^T? No — here m is laid
// out (out x in), so column j holds the weights feeding output from input j.
// out must have length Rows.
func (m *Mat) SumColsSparseInto(out Vec, active []int) {
	assertLen(len(out), m.Rows)
	out.Zero()
	for _, j := range active {
		if j < 0 || j >= m.Cols {
			panic(fmt.Sprintf("tensor: sparse index %d out of range [0,%d)", j, m.Cols))
		}
		for i := 0; i < m.Rows; i++ {
			out[i] += m.Data[i*m.Cols+j]
		}
	}
}

package vtime

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSleepElapses(t *testing.T) {
	w := NewWheel()
	defer w.Stop()
	start := time.Now()
	w.Sleep(20 * time.Millisecond)
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("slept %v, want >= 20ms", elapsed)
	}
}

func TestZeroSleepAndAfterFuncAreImmediate(t *testing.T) {
	w := NewWheel()
	defer w.Stop()
	w.Sleep(0)
	w.Sleep(-time.Second)
	ran := false
	w.AfterFunc(0, func() { ran = true }) // synchronous for d <= 0
	if !ran {
		t.Fatal("zero-delay AfterFunc did not run synchronously")
	}
}

// TestManyConcurrentSleepers is the wheel's reason to exist: hundreds of
// concurrent sleeps share one dispatcher, every one of them completes,
// and none returns early.
func TestManyConcurrentSleepers(t *testing.T) {
	w := NewWheel()
	defer w.Stop()
	const n = 400
	var wg sync.WaitGroup
	var early atomic.Int64
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		d := time.Duration(1+i%25) * time.Millisecond
		go func(d time.Duration) {
			defer wg.Done()
			w.Sleep(d)
			if time.Since(start) < d {
				early.Add(1)
			}
		}(d)
	}
	wg.Wait()
	if early.Load() != 0 {
		t.Fatalf("%d sleeps returned early", early.Load())
	}
	if w.pending() != 0 {
		t.Fatalf("%d waiters left after all sleeps returned", w.pending())
	}
}

// TestAfterFuncOrdering: expirations fire in deadline order even when
// pushed out of order, with same-instant ties broken by insertion order.
func TestAfterFuncOrdering(t *testing.T) {
	w := NewWheel()
	defer w.Stop()
	var mu sync.Mutex
	var got []int
	var wg sync.WaitGroup
	wg.Add(3)
	record := func(id int) func() {
		return func() {
			mu.Lock()
			got = append(got, id)
			mu.Unlock()
			wg.Done()
		}
	}
	w.AfterFunc(30*time.Millisecond, record(3))
	w.AfterFunc(10*time.Millisecond, record(1))
	w.AfterFunc(20*time.Millisecond, record(2))
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for i, want := range []int{1, 2, 3} {
		if got[i] != want {
			t.Fatalf("fire order %v, want [1 2 3]", got)
		}
	}
}

func TestStopDropsPending(t *testing.T) {
	w := NewWheel()
	var fired atomic.Bool
	w.AfterFunc(time.Hour, func() { fired.Store(true) })
	w.Stop()
	if w.pending() != 0 {
		t.Fatalf("%d waiters survived Stop", w.pending())
	}
	// New registrations after Stop are dropped, not queued forever.
	w.AfterFunc(time.Millisecond, func() { fired.Store(true) })
	time.Sleep(10 * time.Millisecond)
	if fired.Load() {
		t.Fatal("callback fired after Stop")
	}
}

// Package vtime provides the timer wheel that paces simulated model
// executions in the serving layer. The real server sleeps each model's
// nominal duration scaled by the configured TimeScale; before the wheel,
// every in-flight execution parked its own goroutine in time.Sleep, so a
// busy server held one OS timer per flight and paid a scheduler wake-up
// for each. The wheel replaces that with one dispatcher goroutine over a
// min-heap of deadlines: all pending expirations share a single timer
// armed at the earliest deadline, and expirations that land on the same
// instant are fired in one wake-up — which is what keeps small TimeScale
// values (thousands of sub-millisecond sleeps per simulated second) from
// drowning the runtime in timer churn.
package vtime

import (
	"container/heap"
	"sync"
	"time"
)

// waiter is one pending expiration.
type waiter struct {
	at  time.Time
	seq uint64 // insertion order; breaks same-instant ties deterministically
	fn  func()
}

// waiterHeap orders waiters by deadline, then insertion order.
type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x any)   { *h = append(*h, x.(*waiter)) }
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// Wheel is a shared timer: many concurrent sleepers, one dispatcher
// goroutine, one armed OS timer. Create one with NewWheel and release its
// dispatcher with Stop once every sleeper has returned.
type Wheel struct {
	mu      sync.Mutex
	waiters waiterHeap
	seq     uint64
	wake    chan struct{} // capacity 1: "heap front may have changed"
	stopped bool
}

// NewWheel starts a wheel and its dispatcher goroutine.
func NewWheel() *Wheel {
	w := &Wheel{wake: make(chan struct{}, 1)}
	go w.dispatch()
	return w
}

// AfterFunc schedules fn to run on the dispatcher goroutine once d has
// elapsed; a non-positive d runs fn synchronously. Callbacks must be
// short (close a channel, flip a flag under a lock) — a slow callback
// delays every later expiration. There is no cancellation: callers that
// may outlive their interest guard the callback body themselves (the
// batch lanes do, with a generation counter). After Stop, pending and new
// callbacks are dropped.
func (w *Wheel) AfterFunc(d time.Duration, fn func()) {
	if d <= 0 {
		fn()
		return
	}
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return
	}
	heap.Push(&w.waiters, &waiter{at: time.Now().Add(d), seq: w.seq, fn: fn})
	w.seq++
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default: // a wake-up is already pending
	}
}

// Sleep blocks the caller for d. It must not be called after Stop (the
// expiration would be dropped and the caller would block forever) — the
// server guarantees that by stopping the wheel only after its worker
// pool has drained.
func (w *Wheel) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	done := make(chan struct{})
	w.AfterFunc(d, func() { close(done) })
	<-done
}

// Stop terminates the dispatcher and drops any pending expirations.
func (w *Wheel) Stop() {
	w.mu.Lock()
	w.stopped = true
	w.waiters = nil
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// pending returns the number of waiting expirations (for tests).
func (w *Wheel) pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.waiters)
}

// dispatch pops due expirations and sleeps until the next deadline,
// re-armed whenever an earlier one is pushed. Callbacks run outside the
// wheel lock, so they may re-enter AfterFunc (the batch lanes' hold
// timers do).
func (w *Wheel) dispatch() {
	for {
		w.mu.Lock()
		if w.stopped {
			w.mu.Unlock()
			return
		}
		now := time.Now()
		var due []func()
		for len(w.waiters) > 0 && !w.waiters[0].at.After(now) {
			due = append(due, heap.Pop(&w.waiters).(*waiter).fn)
		}
		wait := time.Duration(-1)
		if len(w.waiters) > 0 {
			wait = w.waiters[0].at.Sub(now)
		}
		w.mu.Unlock()
		if len(due) > 0 {
			for _, fn := range due {
				fn()
			}
			continue // new expirations may already be due
		}
		if wait < 0 {
			<-w.wake // idle: block until a waiter arrives or Stop
			continue
		}
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-w.wake:
			t.Stop()
		}
	}
}

package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"ams/internal/labels"
	"ams/internal/oracle"
	"ams/internal/sched"
	"ams/internal/service"
	"ams/internal/sim"
	"ams/internal/synth"
	"ams/internal/tensor"
	"ams/internal/zoo"
)

var (
	vocab = labels.NewVocabulary()
	z     = zoo.NewZoo(vocab)
	ds    = synth.NewDataset(vocab, synth.MSCOCO(), 40, 77)
	store = oracle.Build(z, ds.Scenes)
)

// fast is a quick-running config: a millisecond of model time sleeps one
// microsecond, so a full 0.5 s schedule costs 0.5 ms of wall clock.
func fast(workers int) Config {
	return Config{
		Config:    service.Config{Workers: workers, DeadlineSec: 0.5},
		TimeScale: 0.001,
	}
}

func randomFactory(seed uint64) service.PolicyFactory {
	return func(worker int) sim.Policy {
		return sched.NewRandom(z, tensor.NewRNG(seed+uint64(worker)))
	}
}

// fixedPolicy executes a fixed model list in order, ignoring value but
// honoring the constraints: a model that does not fit the remaining
// time or the available memory is skipped, not schedule-ending. It
// gives timing tests a deterministic per-item schedule length.
type fixedPolicy struct{ models []int }

func (p *fixedPolicy) Name() string { return "fixed" }
func (p *fixedPolicy) Reset(int)    {}
func (p *fixedPolicy) Next(t *oracle.Tracker, c sim.Constraints) int {
	for _, m := range p.models {
		if !t.Executed(m) && c.Allows(z.Models[m]) {
			return m
		}
	}
	return -1
}
func (p *fixedPolicy) Observe(int, zoo.Output) {}

func fixedFactory(models ...int) service.PolicyFactory {
	return func(worker int) sim.Policy { return &fixedPolicy{models: models} }
}

func TestNewValidation(t *testing.T) {
	base := fast(2)
	for _, tc := range []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"zero workers", func(c *Config) { c.Workers = 0 }, "at least one worker"},
		{"negative workers", func(c *Config) { c.Workers = -3 }, "at least one worker"},
		{"no deadline", func(c *Config) { c.DeadlineSec = 0 }, "deadline"},
		{"negative time scale", func(c *Config) { c.TimeScale = -1 }, "time scale"},
		{"negative queue", func(c *Config) { c.QueueCap = -1 }, "queue"},
		{"negative budget", func(c *Config) { c.MemoryBudgetMB = -4 }, "memory budget"},
		{"negative stats window", func(c *Config) { c.StatsWindow = -1 }, "stats window"},
		{"exhausted budget", func(c *Config) { c.MemoryBudgetMB = 100 }, "smallest model"},
		{"negative batch size", func(c *Config) { c.BatchSize = -2 }, "batch size"},
		{"negative batch hold", func(c *Config) { c.BatchSize = 4; c.BatchHoldMS = -1 }, "batch hold"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			_, err := New(store, randomFactory(1), cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("New = %v, want error containing %q", err, tc.want)
			}
		})
	}
	if _, err := New(nil, randomFactory(1), base); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := New(store, nil, base); err == nil {
		t.Fatal("nil factory accepted")
	}
}

func TestSubmitValidationAndClose(t *testing.T) {
	s, err := New(store, randomFactory(1), fast(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(-1, ""); err == nil {
		t.Fatal("negative image accepted")
	}
	if _, err := s.Submit(store.NumScenes(), ""); err == nil {
		t.Fatal("out-of-range image accepted")
	}
	tk, err := s.Submit(0, "")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	res := tk.Wait()
	if res.Image != 0 || res.Recall < 0 || res.Recall > 1+1e-9 {
		t.Fatalf("bad result %+v", res)
	}
	if res.ScheduleMS > 500+1e-9 {
		t.Fatalf("schedule %v ms exceeds the 500 ms deadline", res.ScheduleMS)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := s.Submit(0, ""); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if _, err := s.SubmitWait(context.Background(), 0, ""); !errors.Is(err, ErrClosed) {
		t.Fatalf("SubmitWait after Close = %v, want ErrClosed", err)
	}
	if err := s.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	// One worker, queue of one. The worker's single model (380 model-ms
	// at TimeScale 0.1) occupies it for ~38 ms of wall clock — a wide
	// margin over the test's submit burst.
	cfg := Config{
		Config:    service.Config{Workers: 1, DeadlineSec: 0.5},
		QueueCap:  1,
		TimeScale: 0.1,
	}
	s, err := New(store, fixedFactory(1), cfg) // model 1: objdet-accurate, 380 ms
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	first, err := s.Submit(0, "")
	if err != nil {
		t.Fatalf("first submit: %v", err)
	}
	// Give the worker time to dequeue the first item and start sleeping.
	time.Sleep(10 * time.Millisecond)
	if _, err := s.Submit(1, ""); err != nil {
		t.Fatalf("second submit should occupy the queue: %v", err)
	}
	if _, err := s.Submit(2, ""); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit = %v, want ErrQueueFull", err)
	}
	if got := s.Stats().Rejected; got != 1 {
		t.Fatalf("rejected count %d, want 1", got)
	}
	// Backpressure is transient: a blocking submit gets through.
	if _, err := s.SubmitWait(context.Background(), 2, ""); err != nil {
		t.Fatalf("SubmitWait during backpressure: %v", err)
	}
	first.Wait()
}

func TestSubmitWaitHonorsContext(t *testing.T) {
	cfg := Config{
		Config:    service.Config{Workers: 1, DeadlineSec: 0.5},
		QueueCap:  1,
		TimeScale: 0.1,
	}
	s, err := New(store, fixedFactory(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Submit(0, ""); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if _, err := s.Submit(1, ""); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := s.SubmitWait(ctx, 2, ""); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SubmitWait = %v, want deadline exceeded", err)
	}
}

// TestMemoryBudgetNeverOvercommits is the headline concurrency test: a
// pool of four workers labels 240 items under a budget that only fits a
// couple of models at a time, and the shared accountant must never let
// the in-flight footprint exceed the budget.
func TestMemoryBudgetNeverOvercommits(t *testing.T) {
	const budgetMB = 6000
	cfg := fast(4)
	cfg.QueueCap = 16
	cfg.MemoryBudgetMB = budgetMB
	s, err := New(store, randomFactory(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	const items = 240
	var wg sync.WaitGroup
	tickets := make([]*Ticket, items)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < items; i += 8 {
				tk, err := s.SubmitWait(context.Background(), i%store.NumScenes(), "")
				if err != nil {
					t.Errorf("submit %d: %v", i, err)
					return
				}
				tickets[i] = tk
			}
		}(g)
	}
	wg.Wait()
	for i, tk := range tickets {
		if tk == nil {
			t.Fatalf("item %d never submitted", i)
		}
		res := tk.Wait()
		if res.Recall < 0 || res.Recall > 1+1e-9 {
			t.Fatalf("item %d recall %v", i, res.Recall)
		}
		if res.ScheduleMS > 500+1e-9 {
			t.Fatalf("item %d schedule %v ms over deadline", i, res.ScheduleMS)
		}
		// The live-availability contract: a model that cannot fit the
		// budget is never selected, it is skipped by the policy.
		for _, m := range res.Executed {
			if z.Models[m].MemMB > budgetMB+1e-9 {
				t.Fatalf("item %d executed model %d (%v MB) over the %v MB budget",
					i, m, z.Models[m].MemMB, budgetMB)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Items != items {
		t.Fatalf("completed %d items, want %d", st.Items, items)
	}
	if st.PeakMemMB <= 0 || st.PeakMemMB > budgetMB+1e-9 {
		t.Fatalf("peak memory %v MB outside (0, %v]", st.PeakMemMB, budgetMB)
	}
	// MemWaits is no longer asserted: policies see the live availability
	// and adapt their selections, so blocking happens only on rare races
	// between observation and reservation.
	if s.acct.inUse() != 0 {
		t.Fatalf("%v MB still reserved after drain", s.acct.inUse())
	}
	if st.AvgRecall <= 0 {
		t.Fatalf("average recall %v", st.AvgRecall)
	}
}

// TestTightBudgetSerializesExecution: with a budget that fits exactly one
// mid-size model, concurrent workers degrade to (correct) serial
// execution instead of over-committing.
func TestTightBudgetSerializesExecution(t *testing.T) {
	cfg := fast(4)
	cfg.MemoryBudgetMB = 900                          // fits one ~500-900 MB model at a time
	s, err := New(store, fixedFactory(6, 8, 19), cfg) // 500, 650, 520 MB models
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := s.SubmitWait(context.Background(), i%store.NumScenes(), ""); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Items != 40 {
		t.Fatalf("items %d", st.Items)
	}
	if st.PeakMemMB > 900+1e-9 {
		t.Fatalf("peak %v MB over the 900 MB budget", st.PeakMemMB)
	}
}

// TestOversizedModelSkippedScheduleContinues: a model bigger than the
// whole budget is never selectable — the policy sees the live
// availability, skips it, and keeps scheduling the remaining feasible
// models instead of ending the item early.
func TestOversizedModelSkippedScheduleContinues(t *testing.T) {
	cfg := fast(2)
	cfg.MemoryBudgetMB = 1000 // pose-openpose (8000 MB) can never run
	// facedet-blaze, then the oversized pose-openpose, then two more
	// models that fit the budget.
	s, err := New(store, fixedFactory(6, 12, 19, 8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := s.Submit(0, "")
	if err != nil {
		t.Fatal(err)
	}
	res := tk.Wait()
	want := []int{6, 19, 8}
	if len(res.Executed) != len(want) {
		t.Fatalf("executed %v, want %v (oversized model skipped, schedule continued)", res.Executed, want)
	}
	for i := range want {
		if res.Executed[i] != want[i] {
			t.Fatalf("executed %v, want %v", res.Executed, want)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// itemParallelConfig is the shared deadline+memory config for the
// per-item parallel (Algorithm 2) serving tests.
func itemParallelConfig(workers int) Config {
	return Config{
		Config:         service.Config{Workers: workers, DeadlineSec: 0.8},
		TimeScale:      0.001,
		MemoryBudgetMB: 8000,
		ItemParallel:   true,
	}
}

func TestItemParallelRequiresMemoryBudget(t *testing.T) {
	cfg := itemParallelConfig(1)
	cfg.MemoryBudgetMB = 0
	if _, err := New(store, fixedFactory(6), cfg); err == nil || !strings.Contains(err.Error(), "memory budget") {
		t.Fatalf("New = %v, want a memory-budget error", err)
	}
}

// TestItemParallelMatchesRunParallel: an uncontended item served in
// per-item parallel mode must reproduce the sim.RunParallel schedule —
// and therefore its recall — exactly, for every image and for both a
// value-driven packer and the random baseline (same seed).
func TestItemParallelMatchesRunParallel(t *testing.T) {
	const deadlineMS, memMB = 800, 8000
	factory := func(worker int) sim.Policy {
		return sched.NewRandomPacker(z, tensor.NewRNG(23+uint64(worker)))
	}
	s, err := New(store, factory, itemParallelConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	ref := sched.NewRandomPacker(z, tensor.NewRNG(23)) // worker 0's seed
	for img := 0; img < 12; img++ {
		tk, err := s.Submit(img, "")
		if err != nil {
			t.Fatal(err)
		}
		got := tk.Wait() // one item in flight at a time: uncontended
		want := sim.RunParallel(store, img, ref, deadlineMS, memMB)
		if len(got.Executed) != len(want.Executed) {
			t.Fatalf("image %d: served %v, sim ran %v", img, got.Executed, want.Executed)
		}
		for i := range want.Executed {
			if got.Executed[i] != want.Executed[i] {
				t.Fatalf("image %d: schedule diverges at %d: %v vs %v",
					img, i, got.Executed, want.Executed)
			}
		}
		if got.Recall != want.Recall {
			t.Fatalf("image %d: recall %v diverges from sim %v", img, got.Recall, want.Recall)
		}
		if got.ScheduleMS != want.MakespanMS {
			t.Fatalf("image %d: schedule %v ms != sim makespan %v ms", img, got.ScheduleMS, want.MakespanMS)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if peak := s.PeakMemMB(); peak <= 0 || peak > memMB+1e-9 {
		t.Fatalf("peak memory %v MB outside (0, %v]", peak, memMB)
	}
}

// TestItemParallelConcurrentItemsStayInBudget: several parallel items
// share the accountant; the pool must never over-commit, and every item
// must finish within its deadline on the nominal clock.
func TestItemParallelConcurrentItemsStayInBudget(t *testing.T) {
	cfg := itemParallelConfig(4)
	cfg.QueueCap = 16
	factory := func(worker int) sim.Policy {
		return sched.NewRandomPacker(z, tensor.NewRNG(31+uint64(worker)))
	}
	s, err := New(store, factory, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tickets []*Ticket
	for i := 0; i < 60; i++ {
		tk, err := s.SubmitWait(context.Background(), i%store.NumScenes(), "")
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	for i, tk := range tickets {
		res := tk.Wait()
		if res.ScheduleMS > 800+1e-9 {
			t.Fatalf("item %d makespan %v ms over the 800 ms deadline", i, res.ScheduleMS)
		}
		if res.Recall < 0 || res.Recall > 1+1e-9 {
			t.Fatalf("item %d recall %v", i, res.Recall)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Items != 60 {
		t.Fatalf("completed %d items", st.Items)
	}
	if st.PeakMemMB <= 0 || st.PeakMemMB > cfg.MemoryBudgetMB+1e-9 {
		t.Fatalf("peak memory %v MB outside (0, %v]", st.PeakMemMB, cfg.MemoryBudgetMB)
	}
	// The coordinator's busy time is the makespan, so utilization stays
	// a true worker-occupancy fraction even with intra-item parallelism.
	if st.Utilization <= 0 || st.Utilization > 1+1e-6 {
		t.Fatalf("utilization %v out of range", st.Utilization)
	}
	if s.acct.inUse() != 0 {
		t.Fatalf("%v MB still reserved after drain", s.acct.inUse())
	}
}

// TestSelectOverheadMeasured: the per-item selection overhead must be
// populated by the real server (it spends real CPU inside policy.Next).
func TestSelectOverheadMeasured(t *testing.T) {
	s, err := New(store, randomFactory(41), fast(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := s.SubmitWait(context.Background(), i%store.NumScenes(), ""); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.AvgSelectSec <= 0 {
		t.Fatalf("AvgSelectSec %v, want > 0", st.AvgSelectSec)
	}
	if st.AvgSelectSec > 1 {
		t.Fatalf("AvgSelectSec %v implausibly large", st.AvgSelectSec)
	}
}

func TestStatsMatchSimShape(t *testing.T) {
	cfg := Config{
		Config: service.Config{
			Workers: 2, ArrivalRateHz: 2000, DeadlineSec: 0.5, Items: 60, Seed: 9,
		},
		TimeScale: 0.001,
	}
	// Replay the trace the virtual-time sim would generate for cfg: the
	// arrival pacing collapses (2000 Hz at TimeScale 0.001), so the
	// server just absorbs the whole burst through SubmitWait.
	s, err := New(store, randomFactory(9), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range service.Arrivals(cfg.Items, cfg.ArrivalRateHz, cfg.Seed) {
		if _, err := s.SubmitWait(context.Background(), i%store.NumScenes(), ""); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got := s.Stats()
	if got.Items != 60 {
		t.Fatalf("items %d", got.Items)
	}
	if got.AvgLatencySec < got.AvgQueueWaitSec {
		t.Fatalf("latency %v below queue wait %v", got.AvgLatencySec, got.AvgQueueWaitSec)
	}
	if got.AvgRecall <= 0 || got.AvgRecall > 1+1e-9 {
		t.Fatalf("recall %v", got.AvgRecall)
	}
	if got.ThroughputHz <= 0 || got.HorizonSec <= 0 {
		t.Fatalf("throughput %v horizon %v", got.ThroughputHz, got.HorizonSec)
	}
	if got.Utilization <= 0 || got.Utilization > 1+1e-6 {
		t.Fatalf("utilization %v out of range", got.Utilization)
	}
	// The virtual-time sim accepts the very same config and factory —
	// the shared-type contract this package was refactored for.
	simStats := service.Run(store, randomFactory(9), cfg.Config)
	if simStats.Items != got.Items {
		t.Fatalf("sim labeled %d items, server %d", simStats.Items, got.Items)
	}
}

// TestStatsWindowBoundsRetention: a long-running server keeps only the
// most recent StatsWindow records while Completed counts everything.
func TestStatsWindowBoundsRetention(t *testing.T) {
	cfg := fast(2)
	cfg.StatsWindow = 10
	s, err := New(store, fixedFactory(6), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, err := s.SubmitWait(context.Background(), i%store.NumScenes(), ""); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Completed != 25 {
		t.Fatalf("completed %d, want 25", st.Completed)
	}
	if st.Items != 10 {
		t.Fatalf("summarized %d records, want the 10-item window", st.Items)
	}
	// Windowed throughput/utilization are measured over the window's own
	// span, so they must stay sane instead of decaying with server age.
	if st.ThroughputHz <= 0 {
		t.Fatalf("windowed throughput %v", st.ThroughputHz)
	}
	if st.Utilization <= 0 || st.Utilization > 1+1e-6 {
		t.Fatalf("windowed utilization %v out of range", st.Utilization)
	}
}

// TestExactlyExhaustedBudgetDoesNotPanic: when one worker's reservation
// consumes the whole budget, availability is exactly zero — which must
// never be handed to a policy (a zero constraint field means
// "unconstrained"), and must pause rather than end the other workers'
// schedules. Regression test for the serial-path zero-availability
// guard.
func TestExactlyExhaustedBudgetDoesNotPanic(t *testing.T) {
	cfg := fast(4)
	cfg.QueueCap = 16
	cfg.MemoryBudgetMB = 8000 // pose-openpose (model 12) fills it exactly
	s, err := New(store, fixedFactory(12, 6), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tickets []*Ticket
	for i := 0; i < 40; i++ {
		tk, err := s.SubmitWait(context.Background(), i%store.NumScenes(), "")
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	for i, tk := range tickets {
		res := tk.Wait()
		// Both models always run (50+400 ms fit the 500 ms deadline):
		// under contention the policy defers — never abandons — the
		// budget-filling model. The order depends on the live
		// availability at each ask.
		ran := map[int]bool{}
		for _, m := range res.Executed {
			ran[m] = true
		}
		if !ran[12] || !ran[6] {
			t.Fatalf("item %d executed %v, want both models 6 and 12", i, res.Executed)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Items != 40 {
		t.Fatalf("completed %d items", st.Items)
	}
	if st.PeakMemMB != 8000 {
		t.Fatalf("peak %v MB, want the exactly-filled 8000", st.PeakMemMB)
	}
}

// recordingCorpus records the server's lifecycle calls so the tests can
// assert the Begin/Commit/Abort pairing contract.
type recordingCorpus struct {
	mu      sync.Mutex
	begins  map[int]int
	commits map[int]int
	aborts  map[int]int
}

func newRecordingCorpus() *recordingCorpus {
	return &recordingCorpus{
		begins:  map[int]int{},
		commits: map[int]int{},
		aborts:  map[int]int{},
	}
}

func (rc *recordingCorpus) BeginItem(item int) {
	rc.mu.Lock()
	rc.begins[item]++
	rc.mu.Unlock()
}

func (rc *recordingCorpus) CommitItem(item int, executed []int, scheduleMS float64) {
	rc.mu.Lock()
	rc.commits[item]++
	rc.mu.Unlock()
}

func (rc *recordingCorpus) AbortItem(item int) {
	rc.mu.Lock()
	rc.aborts[item]++
	rc.mu.Unlock()
}

// TestCorpusLifecycleCalls checks the serve<->corpus contract: every
// admission Begins exactly once, every completion Commits exactly once
// before the ticket resolves, and failed admissions Abort their Begin.
func TestCorpusLifecycleCalls(t *testing.T) {
	rc := newRecordingCorpus()
	cfg := fast(2)
	cfg.QueueCap = 1
	cfg.Corpus = rc
	s, err := New(store, randomFactory(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tickets []*Ticket
	rejected := 0
	for i := 0; i < 12; i++ {
		tk, err := s.Submit(i%store.NumItems(), "")
		if errors.Is(err, ErrQueueFull) {
			rejected++
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	for _, tk := range tickets {
		res := tk.Wait()
		if len(res.Outputs) != len(res.Executed) {
			t.Fatalf("result outputs %d not parallel to executed %d", len(res.Outputs), len(res.Executed))
		}
		// Commit-of-result is the boundary: by Wait time the commit has
		// been journaled.
		rc.mu.Lock()
		committed := rc.commits[res.Image]
		rc.mu.Unlock()
		if committed == 0 {
			t.Fatalf("item %d resolved before its commit", res.Image)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	var begins, commits, aborts int
	for _, n := range rc.begins {
		begins += n
	}
	for _, n := range rc.commits {
		commits += n
	}
	for _, n := range rc.aborts {
		aborts += n
	}
	if commits != len(tickets) {
		t.Fatalf("%d commits for %d completed items", commits, len(tickets))
	}
	if aborts != rejected {
		t.Fatalf("%d aborts for %d rejected admissions", aborts, rejected)
	}
	if begins != commits+aborts {
		t.Fatalf("begin/commit+abort imbalance: %d vs %d+%d", begins, commits, aborts)
	}
}

// TestSubmitAfterCloseAborts checks the Begin released on the closed path.
func TestSubmitAfterCloseAborts(t *testing.T) {
	rc := newRecordingCorpus()
	cfg := fast(1)
	cfg.Corpus = rc
	s, err := New(store, randomFactory(6), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(0, ""); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
	if _, err := s.SubmitWait(context.Background(), 0, ""); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit-wait after close: %v", err)
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.begins[0] != rc.aborts[0] || rc.begins[0] == 0 {
		t.Fatalf("closed-server admissions: %d begins, %d aborts", rc.begins[0], rc.aborts[0])
	}
}

// Package serve is the real-time counterpart of internal/service: a
// goroutine-based labeling server that actually executes concurrent
// work instead of simulating it in virtual time. Items are admitted
// onto a bounded queue and dispatched to a pool of workers; each worker
// owns one scheduling policy (built by the shared service.PolicyFactory,
// mirroring LabelBatch's one-clone-per-worker rule) and labels its item
// under the per-item deadline of Algorithm 1. The joint deadline +
// GPU-memory setting of Algorithm 2 is enforced globally: all workers
// reserve model footprints against one shared memory accountant before
// executing, so the server as a whole never commits more GPU memory
// than the configured budget, and workers block (backpressure) when the
// budget is saturated.
//
// Admission control is explicit: Submit rejects with ErrQueueFull when
// the bounded queue is saturated, SubmitWait blocks until space frees,
// and New rejects configurations that could never make progress (no
// workers, a memory budget below the smallest model).
//
// Model execution is simulated by sleeping the model's nominal duration
// scaled by Config.TimeScale, so tests and benchmarks can run the real
// concurrent machinery thousands of times faster than production pacing
// while keeping every scheduling decision, reservation, and statistic
// identical. All reported statistics are on the simulated clock
// (wall-clock divided by TimeScale), making them directly comparable to
// the virtual-time sim's output — both reduce through service.Summarize.
// One caveat: the scheduler's real CPU work (the agent's Q-network
// forward passes — the paper's Table III selection overhead) is not
// scaled, so very small TimeScale values magnify it relative to model
// time and inflate the simulated-clock latencies.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ams/internal/oracle"
	"ams/internal/service"
	"ams/internal/sim"
)

// Sentinel errors of the admission path.
var (
	ErrQueueFull = errors.New("serve: queue full")
	ErrClosed    = errors.New("serve: server closed")
)

// Config parameterizes a server. The embedded service.Config supplies
// Workers and DeadlineSec to the server itself; ArrivalRateHz, Items and
// Seed describe the arrival trace that Replay generates.
type Config struct {
	service.Config

	// QueueCap bounds the admission queue (default 2*Workers). Together
	// with the worker pool it caps in-flight items at QueueCap+Workers.
	QueueCap int

	// MemoryBudgetMB, when positive, is the GPU memory shared by ALL
	// workers: the sum of in-flight model footprints never exceeds it.
	// Zero disables the memory constraint. A model whose footprint
	// exceeds the whole budget can never run; if a policy selects one,
	// the item's schedule ends early (Algorithm 2's feasibility check
	// with an empty candidate set).
	MemoryBudgetMB float64

	// TimeScale is the real seconds slept per simulated second of model
	// time (default 1.0, production pacing). Tests use small values to
	// exercise the full concurrent machinery quickly.
	TimeScale float64

	// StatsWindow is how many completed-item records the server retains
	// for Stats (default 65536), bounding memory on a long-running
	// server: once exceeded, Stats summarizes the most recent window.
	// Replay raises it to cover its whole trace.
	StatsWindow int
}

// defaultStatsWindow bounds retained per-item records (~40 B each).
const defaultStatsWindow = 1 << 16

// ItemResult is the outcome of one labeled item.
type ItemResult struct {
	Image      int
	Executed   []int   // model IDs in execution order
	ScheduleMS float64 // summed nominal model time
	Recall     float64
	WaitSec    float64 // queue wait on the simulated clock
	LatencySec float64 // submit -> completion on the simulated clock
}

// Ticket tracks one submitted item to completion.
type Ticket struct {
	image   int
	arrival time.Time
	done    chan struct{}
	res     ItemResult
}

// Done is closed when the item has been labeled.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Wait blocks until the item has been labeled and returns its result.
func (t *Ticket) Wait() ItemResult {
	<-t.done
	return t.res
}

// Server is a running labeling server. Create one with New, feed it with
// Submit/SubmitWait, and stop it with Close, which drains the queue.
type Server struct {
	st      *oracle.Store
	cfg     Config
	factory service.PolicyFactory
	acct    *accountant // nil when no memory budget is configured
	queue   chan *Ticket
	stop    chan struct{} // closed by Close to wake blocked SubmitWait senders
	start   time.Time
	wg      sync.WaitGroup // workers
	senders sync.WaitGroup // in-flight SubmitWait sends; drained before queue close

	mu        sync.Mutex // guards closed, records, counters; held across Submit's send
	closed    bool
	records   []service.Record // ring of the most recent StatsWindow completions
	recHead   int              // next overwrite position once the ring is full
	completed int64
	rejected  int64
}

// New validates the configuration and starts the worker pool.
func New(st *oracle.Store, factory service.PolicyFactory, cfg Config) (*Server, error) {
	if st == nil || factory == nil {
		return nil, errors.New("serve: nil store or policy factory")
	}
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("serve: need at least one worker, got %d", cfg.Workers)
	}
	if cfg.DeadlineSec <= 0 {
		return nil, fmt.Errorf("serve: need a positive per-item deadline, got %v", cfg.DeadlineSec)
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 1.0
	}
	if cfg.TimeScale < 0 {
		return nil, fmt.Errorf("serve: negative time scale %v", cfg.TimeScale)
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 2 * cfg.Workers
	}
	if cfg.QueueCap < 0 {
		return nil, fmt.Errorf("serve: negative queue capacity %d", cfg.QueueCap)
	}
	if cfg.StatsWindow < 0 {
		return nil, fmt.Errorf("serve: negative stats window %d", cfg.StatsWindow)
	}
	if cfg.StatsWindow == 0 {
		cfg.StatsWindow = defaultStatsWindow
	}
	var acct *accountant
	if cfg.MemoryBudgetMB < 0 {
		return nil, fmt.Errorf("serve: negative memory budget %v MB", cfg.MemoryBudgetMB)
	}
	if cfg.MemoryBudgetMB > 0 {
		smallest := st.Zoo.Models[0].MemMB
		for _, m := range st.Zoo.Models {
			if m.MemMB < smallest {
				smallest = m.MemMB
			}
		}
		if cfg.MemoryBudgetMB < smallest {
			return nil, fmt.Errorf("serve: memory budget %v MB below the smallest model (%v MB); no model could ever run",
				cfg.MemoryBudgetMB, smallest)
		}
		acct = newAccountant(cfg.MemoryBudgetMB)
	}
	s := &Server{
		st:      st,
		cfg:     cfg,
		factory: factory,
		acct:    acct,
		queue:   make(chan *Ticket, cfg.QueueCap),
		stop:    make(chan struct{}),
		start:   time.Now(),
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker(w)
	}
	return s, nil
}

// Submit admits one image without blocking. It returns ErrQueueFull when
// the bounded queue is saturated (the caller's backpressure signal) and
// ErrClosed after Close.
func (s *Server) Submit(image int) (*Ticket, error) {
	tk, err := s.ticket(image)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	select {
	case s.queue <- tk:
		return tk, nil
	default:
		s.rejected++
		return nil, ErrQueueFull
	}
}

// SubmitWait admits one image, blocking while the queue is full until
// space frees, the context is cancelled, or the server closes.
func (s *Server) SubmitWait(ctx context.Context, image int) (*Ticket, error) {
	tk, err := s.ticket(image)
	if err != nil {
		return nil, err
	}
	// Register as a sender before touching the queue: Close drains the
	// senders group before closing the channel, so a blocked send can
	// never hit a closed queue.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.senders.Add(1)
	s.mu.Unlock()
	defer s.senders.Done()
	select {
	case s.queue <- tk:
		return tk, nil
	case <-s.stop:
		return nil, ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (s *Server) ticket(image int) (*Ticket, error) {
	if image < 0 || image >= s.st.NumScenes() {
		return nil, fmt.Errorf("serve: image %d out of range [0,%d)", image, s.st.NumScenes())
	}
	return &Ticket{image: image, arrival: time.Now(), done: make(chan struct{})}, nil
}

// Close stops admission, drains the queue, and waits for in-flight items
// to complete. It is safe to call once; later calls return ErrClosed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)    // wake SubmitWait senders blocked on a full queue
	s.senders.Wait() // after which no send can touch the queue
	close(s.queue)   // let workers drain and exit
	s.wg.Wait()
	return nil
}

// worker owns one policy instance (and, through the factory, one private
// agent clone) and labels queued items until the queue closes.
func (s *Server) worker(w int) {
	defer s.wg.Done()
	policy := s.factory(w)
	for tk := range s.queue {
		s.process(policy, tk)
	}
}

// process runs one item's schedule: Algorithm 1's serial deadline loop,
// with every model execution gated by the global memory accountant.
func (s *Server) process(policy sim.DeadlinePolicy, tk *Ticket) {
	startWall := time.Now()
	policy.Reset(tk.image)
	tr := oracle.NewTracker(s.st, tk.image)
	remaining := s.cfg.DeadlineSec * 1000
	var (
		executed []int
		schedMS  float64
	)
	for tr.ExecutedCount() < s.st.NumModels() {
		m := policy.Next(tr, remaining)
		if m < 0 {
			break
		}
		mod := s.st.Zoo.Models[m]
		if mod.TimeMS > remaining+1e-9 {
			panic(fmt.Sprintf("serve: policy %s exceeded the deadline (model %d needs %v, %v left)",
				policy.Name(), m, mod.TimeMS, remaining))
		}
		if s.acct != nil && !s.acct.reserve(mod.MemMB) {
			break // footprint exceeds the whole budget: never feasible
		}
		sleepFor(mod.TimeMS * s.cfg.TimeScale)
		if s.acct != nil {
			s.acct.release(mod.MemMB)
		}
		tr.Execute(m)
		policy.Observe(m, s.st.Output(tk.image, m))
		executed = append(executed, m)
		schedMS += mod.TimeMS
		remaining -= mod.TimeMS
	}
	finishWall := time.Now()

	// Record on the simulated clock so Stats is comparable to the sim.
	scale := s.cfg.TimeScale
	rec := service.Record{
		ArrivalSec: tk.arrival.Sub(s.start).Seconds() / scale,
		StartSec:   startWall.Sub(s.start).Seconds() / scale,
		FinishSec:  finishWall.Sub(s.start).Seconds() / scale,
		BusySec:    schedMS / 1000,
		Recall:     tr.Recall(),
	}
	tk.res = ItemResult{
		Image:      tk.image,
		Executed:   executed,
		ScheduleMS: schedMS,
		Recall:     tr.Recall(),
		WaitSec:    rec.StartSec - rec.ArrivalSec,
		LatencySec: rec.FinishSec - rec.ArrivalSec,
	}
	s.mu.Lock()
	s.completed++
	if len(s.records) < s.cfg.StatsWindow {
		s.records = append(s.records, rec)
	} else {
		// Ring: overwrite the oldest record so a long-running server's
		// footprint stays bounded.
		s.records[s.recHead] = rec
		s.recHead = (s.recHead + 1) % s.cfg.StatsWindow
	}
	s.mu.Unlock()
	close(tk.done)
}

// sleepFor sleeps ms milliseconds of real time (the scaled execution).
func sleepFor(ms float64) {
	if ms <= 0 {
		return
	}
	time.Sleep(time.Duration(ms * float64(time.Millisecond)))
}

// RunStats extends the shared Stats with the server's concurrency
// counters.
type RunStats struct {
	service.Stats
	Completed int64   // total completions (Stats.Items caps at StatsWindow)
	PeakMemMB float64 // maximum simultaneous reservation observed
	MemWaits  int64   // reservations that blocked on the budget
	Rejected  int64   // submits rejected with ErrQueueFull
}

// Stats summarizes the most recent StatsWindow completed items through
// the same service.Summarize reduction the virtual-time sim uses.
func (s *Server) Stats() RunStats {
	s.mu.Lock()
	records := append([]service.Record(nil), s.records...)
	completed := s.completed
	rejected := s.rejected
	s.mu.Unlock()
	rs := RunStats{
		Stats:     service.Summarize(records, s.cfg.Workers),
		Completed: completed,
		Rejected:  rejected,
	}
	if completed > int64(rs.Items) && rs.Items > 0 {
		// The ring has wrapped: Summarize's throughput/utilization
		// denominator (horizon since server start) would decay toward
		// zero as old records drop, so re-derive both over the
		// retained window's own span.
		minArr, maxFin := records[0].ArrivalSec, records[0].FinishSec
		var busy float64
		for _, r := range records {
			if r.ArrivalSec < minArr {
				minArr = r.ArrivalSec
			}
			if r.FinishSec > maxFin {
				maxFin = r.FinishSec
			}
			busy += r.BusySec
		}
		if span := maxFin - minArr; span > 0 {
			rs.ThroughputHz = float64(rs.Items) / span
			rs.Utilization = busy / (float64(s.cfg.Workers) * span)
		}
	}
	if s.acct != nil {
		rs.PeakMemMB = s.acct.peak()
		rs.MemWaits = s.acct.waitCount()
	}
	return rs
}

// PeakMemMB returns the accountant's observed peak (0 when unbudgeted).
func (s *Server) PeakMemMB() float64 {
	if s.acct == nil {
		return 0
	}
	return s.acct.peak()
}

// Replay drives a fresh server with the same Poisson arrival trace the
// virtual-time sim generates for cfg (arrival pacing scaled by
// TimeScale), blocking on the queue when the server falls behind, then
// closes the server and returns its statistics.
func Replay(st *oracle.Store, factory service.PolicyFactory, cfg Config) (RunStats, error) {
	if cfg.ArrivalRateHz <= 0 || cfg.Items <= 0 {
		return RunStats{}, fmt.Errorf("serve: replay needs a positive arrival rate and item count, got %v Hz / %d items",
			cfg.ArrivalRateHz, cfg.Items)
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 1.0 // keep arrival pacing on the same scale New defaults to
	}
	if cfg.StatsWindow == 0 && cfg.Items > defaultStatsWindow {
		cfg.StatsWindow = cfg.Items // summarize the whole trace
	}
	s, err := New(st, factory, cfg)
	if err != nil {
		return RunStats{}, err
	}
	arrivals := service.Arrivals(cfg.Items, cfg.ArrivalRateHz, cfg.Seed)
	for i, at := range arrivals {
		if d := time.Duration(at*cfg.TimeScale*float64(time.Second)) - time.Since(s.start); d > 0 {
			time.Sleep(d)
		}
		if _, err := s.SubmitWait(context.Background(), i%st.NumScenes()); err != nil {
			s.Close()
			return RunStats{}, err
		}
	}
	if err := s.Close(); err != nil {
		return RunStats{}, err
	}
	return s.Stats(), nil
}

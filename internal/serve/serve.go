// Package serve is the real-time counterpart of internal/service: a
// goroutine-based labeling server that actually executes concurrent
// work instead of simulating it in virtual time. Items are admitted
// onto a bounded queue and dispatched to a pool of workers; each worker
// owns one scheduling policy (built by the shared service.PolicyFactory,
// mirroring LabelBatch's one-clone-per-worker rule) and labels its item
// under the per-item deadline. The joint deadline + GPU-memory setting
// of Algorithm 2 is enforced globally: all workers reserve model
// footprints against one shared memory accountant before executing, so
// the server as a whole never commits more GPU memory than the
// configured budget, and workers block (backpressure) when the budget
// is saturated.
//
// Policies receive the accountant's live availability through
// sim.Constraints on every selection, so a model that does not fit the
// current headroom — including one bigger than the whole budget — is
// simply skipped by the policy, which keeps scheduling the remaining
// feasible models. When a policy declines while other items still hold
// memory, the worker waits for a release and asks again rather than
// ending the item's schedule on a transient shortage.
//
// Two per-item execution modes exist. The default runs Algorithm 1's
// serial loop: one worker executes its item's models one at a time. With
// Config.ItemParallel the server instead mirrors sim.RunParallel per
// item: the worker that dequeues an item coordinates its schedule,
// launching the policy's selections concurrently (each execution sleeps
// in its own goroutine while holding its reservation) and committing
// completions in nominal-finish order, so an uncontended item reproduces
// the virtual-time parallel schedule — and its recall — exactly. As in
// sim.RunParallel, per-item parallelism is bounded by the memory budget,
// not the worker count.
//
// Admission control is explicit: Submit rejects with ErrQueueFull when
// the bounded queue is saturated, SubmitWait blocks until space frees,
// and New rejects configurations that could never make progress (no
// workers, a memory budget below the smallest model).
//
// With Config.BatchSize the server coalesces demand across items:
// workers hand their executions to a cross-item batching runtime
// (internal/batch) that collects same-model requests from the whole
// pool into one batched execution with sub-linear cost, reserving the
// model's footprint once per batch instead of once per request — the
// memory coalescing that buys throughput on hot-model, memory-bound
// traces. Policies see the live batching demand through
// sim.Constraints.BatchQueued; the built-in ones only act on it when
// explicitly made batch-aware (sched's SetBatchAware), so by default
// batching is pure execution-layer mechanics. Deadline accounting stays
// nominal (a batched execution still charges the item TimeMS), so
// schedules — and recall — are unchanged by batching; with BatchSize 1
// the runtime reproduces the unbatched reserve → sleep → release
// sequence exactly.
//
// Model execution is simulated by sleeping the model's nominal duration
// scaled by Config.TimeScale, so tests and benchmarks can run the real
// concurrent machinery thousands of times faster than production pacing
// while keeping every scheduling decision, reservation, and statistic
// identical. All sleeps share one timer wheel (internal/vtime) instead
// of parking a goroutine per execution in the runtime timer heap. All reported statistics are on the simulated clock
// (wall-clock divided by TimeScale), making them directly comparable to
// the virtual-time sim's output — both reduce through service.Summarize.
// One caveat: the scheduler's real CPU work (the agent's Q-network
// forward passes — the paper's Table III selection overhead) is not
// scaled, so very small TimeScale values magnify it relative to model
// time and inflate the simulated-clock latencies; RunStats.AvgSelectSec
// quantifies that overhead per item.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"ams/internal/batch"
	"ams/internal/obs"
	"ams/internal/oracle"
	"ams/internal/service"
	"ams/internal/sim"
	"ams/internal/vtime"
	"ams/internal/zoo"
)

// Sentinel errors of the admission path.
var (
	ErrQueueFull = errors.New("serve: queue full")
	ErrClosed    = errors.New("serve: server closed")
)

// Config parameterizes a server. The embedded service.Config supplies
// Workers and DeadlineSec to the server itself; ArrivalRateHz, Items and
// Seed describe an arrival trace when the caller replays one (the ams
// layer's Serve does, sharing the shape with the virtual-time sim).
type Config struct {
	service.Config

	// QueueCap bounds the admission queue (default 2*Workers). Together
	// with the worker pool it caps in-flight items at QueueCap+Workers.
	QueueCap int

	// MemoryBudgetMB, when positive, is the GPU memory shared by ALL
	// workers: the sum of in-flight model footprints never exceeds it.
	// Zero disables the memory constraint. Policies see the live
	// availability through sim.Constraints, so a model that cannot fit —
	// including one bigger than the whole budget — is skipped by the
	// policy while the rest of the item's schedule continues.
	MemoryBudgetMB float64

	// ItemParallel, when set, runs each item's schedule with the
	// parallel executor semantics of sim.RunParallel (Algorithm 2 per
	// item): the dequeuing worker launches the policy's selections
	// concurrently under the shared accountant and commits completions
	// in nominal-finish order. Requires a memory budget, which is what
	// bounds the per-item parallelism.
	ItemParallel bool

	// BatchSize, when positive, turns on cross-item batching: same-model
	// demand from the whole worker pool is coalesced into batched
	// executions of at most BatchSize requests (see internal/batch).
	// Zero disables batching; one runs every request through the
	// batching machinery alone, reproducing the unbatched execution
	// sequence exactly.
	BatchSize int

	// BatchHoldMS bounds, on the simulated clock, how long a lone
	// request waits in its model's lane for batch-mates before its batch
	// flushes anyway. Zero defaults to defaultBatchHoldMS when batching
	// is on. Only meaningful with BatchSize > 1.
	BatchHoldMS float64

	// TimeScale is the real seconds slept per simulated second of model
	// time (default 1.0, production pacing). Tests use small values to
	// exercise the full concurrent machinery quickly.
	TimeScale float64

	// StatsWindow is how many completed-item records the server retains
	// for Stats (default 65536), bounding memory on a long-running
	// server: once exceeded, Stats summarizes the most recent window.
	// Trace replayers raise it to cover their whole trace.
	StatsWindow int

	// Corpus, when non-nil, makes the server drive a durable item
	// corpus's lifecycle: every admission registers an in-flight
	// reference (BeginItem), every completed schedule journals a commit
	// (CommitItem) before the result is delivered, and failed admissions
	// release their reference (AbortItem). The executor handed to New is
	// then typically the corpus's own Source, so ingested items are
	// journaled, memoized to disk, and evicted once committed.
	Corpus Corpus

	// Epoch, when non-zero, is the wall-clock origin of the server's
	// simulated timeline (arrival/finish seconds in its records). Shards
	// of one logical server share an epoch so their records merge into
	// one coherent summary; zero means "now".
	Epoch time.Time

	// Metrics, when non-nil, receives per-stage telemetry (see
	// NewMetrics). Instruments only count and measure — they never feed
	// back into scheduling — so an instrumented server's schedules are
	// bit-identical to an uninstrumented one's. Nil disables the layer:
	// every hook degrades to one nil check.
	Metrics *Metrics

	// Tracer, when non-nil, records a bounded structured decision trace
	// and causal span tree per item (selection, budget skips, memory
	// stalls, batching, commit) retrievable by ticket tag. Nil disables
	// tracing.
	Tracer *obs.Tracer

	// Shard is this server's shard index, stamped into every trace so
	// exports attribute spans to the executing shard (0 when the server
	// is not sharded).
	Shard int
}

// Corpus is the narrow contract a durable ingestion corpus exposes to
// the server (implemented by internal/corpus's Source). The server calls
// BeginItem when an item is admitted, CommitItem when its schedule
// completes — the item's explicit lifetime boundary: after commit the
// corpus may evict the item's memoized outputs, which is safe because
// every completion's outputs are captured into its ItemResult first —
// and AbortItem when an admission fails after BeginItem.
type Corpus interface {
	BeginItem(item int)
	CommitItem(item int, executed []int, scheduleMS float64)
	AbortItem(item int)
}

// defaultStatsWindow bounds retained per-item records (~40 B each).
const defaultStatsWindow = 1 << 16

// defaultBatchHoldMS is the flush hold applied when batching is enabled
// without an explicit Config.BatchHoldMS: long enough for concurrent
// workers to pile demand into a hot model's lane, short next to any
// realistic per-item deadline.
const defaultBatchHoldMS = 10.0

// ItemResult is the outcome of one labeled item. It is self-contained:
// Outputs carries the executed models' results by value, captured before
// the commit is journaled, so reading a result never touches the
// executor — the item's memo may already be evicted by then.
type ItemResult struct {
	Image      int          // item index in the server's executor
	Tag        string       // caller-supplied identifier, echoed verbatim
	Executed   []int        // model IDs in execution order
	Outputs    []zoo.Output // the executed models' outputs, parallel to Executed
	ScheduleMS float64      // summed nominal model time; the makespan in ItemParallel mode
	Recall     float64
	HasRecall  bool    // whether the item's ground truth (and so Recall) is known
	WaitSec    float64 // queue wait on the simulated clock
	LatencySec float64 // submit -> completion on the simulated clock
}

// Ticket tracks one submitted item to completion.
type Ticket struct {
	image   int
	tag     string
	arrival time.Time
	done    chan struct{}
	res     ItemResult
}

// Done is closed when the item has been labeled.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Wait blocks until the item has been labeled and returns its result.
// The result is committed before Done closes: its Outputs are captured
// by value, so Wait never reads the executor and is unaffected by a
// corpus evicting the item's memo after commit.
func (t *Ticket) Wait() ItemResult {
	<-t.done
	return t.res
}

// Server is a running labeling server. Create one with New, feed it with
// Submit/SubmitWait, and stop it with Close, which drains the queue.
type Server struct {
	ex          oracle.Executor
	cfg         Config
	factory     service.PolicyFactory
	acct        *accountant    // nil when no memory budget is configured
	wheel       *vtime.Wheel   // all simulated executions sleep on it
	batcher     *batch.Batcher // nil when batching is not configured
	queue       chan *Ticket
	stop        chan struct{} // closed by Close to wake blocked SubmitWait senders
	workersDone chan struct{} // closed by Close after the pool drains
	start       time.Time
	wg          sync.WaitGroup // workers
	senders     sync.WaitGroup // in-flight SubmitWait sends; drained before queue close

	mu        sync.Mutex // guards closed, records, counters; held across Submit's send
	closed    bool
	records   []service.Record // ring of the most recent StatsWindow completions
	recHead   int              // next overwrite position once the ring is full
	completed int64
	rejected  int64

	// Results subscription (nil until Results is called). Workers append
	// under mu and signal; the pump goroutine forwards to the subscriber
	// channel, so a slow (or abandoned) consumer never blocks a worker
	// or Close. The buffer of undelivered results is bounded at
	// StatsWindow entries — beyond that the oldest are dropped and
	// counted, so an abandoned subscription cannot grow memory for the
	// server's lifetime.
	resCh      chan ItemResult
	resSig     chan struct{} // capacity 1: "new results buffered"
	resBuf     []ItemResult
	resDropped int64
}

// New validates the configuration and starts the worker pool.
func New(ex oracle.Executor, factory service.PolicyFactory, cfg Config) (*Server, error) {
	if ex == nil || factory == nil {
		return nil, errors.New("serve: nil executor or policy factory")
	}
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("serve: need at least one worker, got %d", cfg.Workers)
	}
	if cfg.DeadlineSec <= 0 {
		return nil, fmt.Errorf("serve: need a positive per-item deadline, got %v", cfg.DeadlineSec)
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 1.0
	}
	if cfg.TimeScale < 0 {
		return nil, fmt.Errorf("serve: negative time scale %v", cfg.TimeScale)
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 2 * cfg.Workers
	}
	if cfg.QueueCap < 0 {
		return nil, fmt.Errorf("serve: negative queue capacity %d", cfg.QueueCap)
	}
	if cfg.StatsWindow < 0 {
		return nil, fmt.Errorf("serve: negative stats window %d", cfg.StatsWindow)
	}
	if cfg.StatsWindow == 0 {
		cfg.StatsWindow = defaultStatsWindow
	}
	var acct *accountant
	if cfg.MemoryBudgetMB < 0 {
		return nil, fmt.Errorf("serve: negative memory budget %v MB", cfg.MemoryBudgetMB)
	}
	if cfg.ItemParallel && cfg.MemoryBudgetMB <= 0 {
		return nil, errors.New("serve: per-item parallel execution requires a memory budget (it bounds the parallelism)")
	}
	if cfg.MemoryBudgetMB > 0 {
		smallest := ex.Model(0).MemMB
		for m := 1; m < ex.NumModels(); m++ {
			if mb := ex.Model(m).MemMB; mb < smallest {
				smallest = mb
			}
		}
		if cfg.MemoryBudgetMB < smallest {
			return nil, fmt.Errorf("serve: memory budget %v MB below the smallest model (%v MB); no model could ever run",
				cfg.MemoryBudgetMB, smallest)
		}
		acct = newAccountant(cfg.MemoryBudgetMB)
		if cfg.Metrics != nil {
			acct.waitHist = cfg.Metrics.ReserveWait
		}
	}
	if cfg.BatchSize < 0 {
		return nil, fmt.Errorf("serve: negative batch size %d", cfg.BatchSize)
	}
	if cfg.BatchHoldMS < 0 {
		return nil, fmt.Errorf("serve: negative batch hold %v ms", cfg.BatchHoldMS)
	}
	if cfg.BatchSize > 0 && cfg.BatchHoldMS == 0 {
		cfg.BatchHoldMS = defaultBatchHoldMS
	}
	start := cfg.Epoch
	if start.IsZero() {
		start = time.Now()
	}
	s := &Server{
		ex:          ex,
		cfg:         cfg,
		factory:     factory,
		acct:        acct,
		wheel:       vtime.NewWheel(),
		queue:       make(chan *Ticket, cfg.QueueCap),
		stop:        make(chan struct{}),
		workersDone: make(chan struct{}),
		start:       start,
	}
	if cfg.BatchSize > 0 {
		models := make([]*zoo.Model, ex.NumModels())
		for m := range models {
			models[m] = ex.Model(m)
		}
		var mem batch.Memory
		if acct != nil {
			mem = acctMemory{acct}
		}
		var bm *batch.Metrics
		if cfg.Metrics != nil {
			bm = cfg.Metrics.Batch
		}
		s.batcher = batch.New(models, mem, s.wheel, batch.Config{
			MaxBatch:  cfg.BatchSize,
			MaxHoldMS: cfg.BatchHoldMS,
			TimeScale: cfg.TimeScale,
			Metrics:   bm,
		})
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker(w)
	}
	return s, nil
}

// Submit admits one item without blocking. The tag is an opaque caller
// identifier echoed in the item's result. Submit returns ErrQueueFull
// when the bounded queue is saturated (the caller's backpressure signal)
// and ErrClosed after Close.
func (s *Server) Submit(item int, tag string) (*Ticket, error) {
	tk, err := s.ticket(item, tag)
	if err != nil {
		return nil, err
	}
	// Register the in-flight schedule with the corpus before the item
	// can reach a worker, so a commit can never observe a missing
	// reference; a failed admission releases it again.
	if s.cfg.Corpus != nil {
		s.cfg.Corpus.BeginItem(item)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.abortItem(item)
		return nil, ErrClosed
	}
	select {
	case s.queue <- tk:
		s.mu.Unlock()
		s.cfg.Metrics.admitted()
		return tk, nil
	default:
		s.rejected++
		s.mu.Unlock()
		s.cfg.Metrics.shed()
		s.abortItem(item)
		return nil, ErrQueueFull
	}
}

// abortItem releases a BeginItem'd corpus reference after a failed
// admission.
func (s *Server) abortItem(item int) {
	if s.cfg.Corpus != nil {
		s.cfg.Corpus.AbortItem(item)
	}
}

// SubmitWait admits one item, blocking while the queue is full until
// space frees, the context is cancelled, or the server closes.
func (s *Server) SubmitWait(ctx context.Context, item int, tag string) (*Ticket, error) {
	tk, err := s.ticket(item, tag)
	if err != nil {
		return nil, err
	}
	if s.cfg.Corpus != nil {
		s.cfg.Corpus.BeginItem(item)
	}
	// Register as a sender before touching the queue: Close drains the
	// senders group before closing the channel, so a blocked send can
	// never hit a closed queue.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.abortItem(item)
		return nil, ErrClosed
	}
	s.senders.Add(1)
	s.mu.Unlock()
	defer s.senders.Done()
	select {
	case s.queue <- tk:
		s.cfg.Metrics.admitted()
		return tk, nil
	case <-s.stop:
		s.abortItem(item)
		return nil, ErrClosed
	case <-ctx.Done():
		s.abortItem(item)
		return nil, ctx.Err()
	}
}

func (s *Server) ticket(item int, tag string) (*Ticket, error) {
	if item < 0 || item >= s.ex.NumItems() {
		return nil, fmt.Errorf("serve: item %d out of range [0,%d)", item, s.ex.NumItems())
	}
	return &Ticket{image: item, tag: tag, arrival: time.Now(), done: make(chan struct{})}, nil
}

// Close stops admission, drains the queue, and waits for in-flight items
// to complete. It is safe to call once; later calls return ErrClosed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)    // wake SubmitWait senders blocked on a full queue
	s.senders.Wait() // after which no send can touch the queue
	close(s.queue)   // let workers drain and exit
	s.wg.Wait()
	// The pool has drained: no execution sleeps or hold timers can be
	// armed anymore, so the wheel's dispatcher can go.
	s.wheel.Stop()
	close(s.workersDone) // tell the results pump to flush and finish
	return nil
}

// Results subscribes to completed items: every item finished after the
// call is delivered, in completion order, on the returned channel, which
// closes once the server has closed and all buffered results are
// consumed. Repeated calls return the same channel. Results lets a
// caller consume a stream of completions without holding tickets —
// submit-and-forget producers on one side, one consumer loop on the
// other. Items completed before the first Results call are not
// replayed; subscribe before submitting. Workers never block on the
// subscriber: results are buffered internally (at most StatsWindow
// undelivered entries — beyond that the oldest are dropped and counted
// in RunStats.ResultsDropped) and forwarded by a pump goroutine, so an
// abandoned subscription cannot stall labeling, deadlock Close, or grow
// memory unboundedly.
func (s *Server) Results() <-chan ItemResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.resCh == nil {
		s.resCh = make(chan ItemResult)
		s.resSig = make(chan struct{}, 1)
		go s.pumpResults()
	}
	return s.resCh
}

// pumpResults forwards buffered completions one at a time — everything
// not yet handed to the subscriber stays in resBuf, so finish's
// shedding bound covers all undelivered results (plus at most the one
// entry in flight) — until the workers have drained, then flushes what
// remains and closes.
func (s *Server) pumpResults() {
	for {
		if s.forwardOne() {
			continue
		}
		select {
		case <-s.resSig:
		case <-s.workersDone:
			// Workers are gone: drain anything racing in, then close.
			for s.forwardOne() {
			}
			close(s.resCh)
			return
		}
	}
}

// forwardOne pops one buffered result and delivers it (blocking on the
// subscriber), reporting whether there was one.
func (s *Server) forwardOne() bool {
	s.mu.Lock()
	if len(s.resBuf) == 0 {
		s.mu.Unlock()
		return false
	}
	r := s.resBuf[0]
	s.resBuf = s.resBuf[1:]
	s.mu.Unlock()
	s.resCh <- r
	return true
}

// worker owns one policy instance (and, through the factory, one private
// agent clone) and labels queued items until the queue closes.
func (s *Server) worker(w int) {
	defer s.wg.Done()
	policy := s.factory(w)
	for tk := range s.queue {
		if s.cfg.ItemParallel {
			s.processParallel(policy, tk)
		} else {
			s.process(policy, tk)
		}
	}
}

// acctMemory adapts the shared accountant to the batch.Memory contract
// so sealed batches can hold one footprint reservation per batch.
type acctMemory struct{ a *accountant }

func (m acctMemory) Reserve(mb float64) bool { return m.a.reserve(mb) }
func (m acctMemory) Release(mb float64)      { m.a.release(mb) }

// constraints snapshots the limits for one selection: the item's
// remaining schedule time, the accountant's live availability, and —
// when batching is on — the live cross-item demand per model lane.
func (s *Server) constraints(remainingMS float64) sim.Constraints {
	avail := math.Inf(1)
	if s.acct != nil {
		avail = s.acct.available()
	}
	c := sim.Constraints{RemainingMS: remainingMS, AvailMemMB: avail}
	if s.batcher != nil {
		c.BatchQueued = s.batcher.Queued
	}
	return c
}

// memStalled reports whether the policy's decline may be transient
// memory pressure: some unexecuted model fits the remaining time and
// the whole budget, but not the availability the policy just saw. When
// it returns false the decline is final — the item is out of time, out
// of candidates, or the policy chose to stop — so waiting for a memory
// release could never change the answer.
func (s *Server) memStalled(tr *oracle.Tracker, remainingMS, observedAvailMB float64) bool {
	if s.acct == nil {
		return false
	}
	for _, m := range tr.Unexecuted() {
		mod := s.ex.Model(m)
		if mod.TimeMS <= remainingMS+1e-9 &&
			mod.MemMB <= s.cfg.MemoryBudgetMB+1e-9 &&
			mod.MemMB > observedAvailMB+1e-9 {
			return true
		}
	}
	return false
}

// checkSelection panics when the policy violated the constraints it was
// handed — the executor-level contract checks sim's loops also apply.
func checkSelection(policy sim.Policy, m int, mod *zoo.Model, c sim.Constraints) {
	if mod.TimeMS > c.RemainingMS+1e-9 {
		panic(fmt.Sprintf("serve: policy %s exceeded the deadline (model %d needs %v, %v left)",
			policy.Name(), m, mod.TimeMS, c.RemainingMS))
	}
	if mod.MemMB > c.AvailMemMB+1e-9 {
		panic(fmt.Sprintf("serve: policy %s ignored the memory constraint (model %d needs %v MB, %v MB available)",
			policy.Name(), m, mod.MemMB, c.AvailMemMB))
	}
}

// process runs one item's schedule: Algorithm 1's serial deadline loop,
// with every model execution gated by the global memory accountant. The
// policy sees the live availability, so an unfittable model is skipped
// by the policy itself; a decline while other items hold memory only
// pauses the schedule until a release frees headroom.
func (s *Server) process(policy sim.Policy, tk *Ticket) {
	startWall := time.Now()
	trace := s.cfg.Tracer.Begin(tk.image, tk.tag)
	trace.SetShard(s.cfg.Shard)
	root := trace.Root(tk.arrival)
	trace.SpanBetween(obs.SpanQueueWait, root, -1, tk.arrival, startWall)
	policy.Reset(tk.image)
	tr := oracle.NewTracker(s.ex, tk.image)
	remaining := s.cfg.DeadlineSec * 1000
	var (
		executed  []int
		outputs   []zoo.Output
		schedMS   float64
		selectSec float64
	)
	for remaining > 0 && tr.ExecutedCount() < s.ex.NumModels() {
		c := s.constraints(remaining)
		if c.AvailMemMB <= 0 {
			// Never ask with a depleted headroom: a zero constraint
			// field means "unconstrained" to the policy. Treat it as
			// the fully-stalled case instead.
			if s.memStalled(tr, remaining, 0) && s.acct.awaitMore(0) {
				trace.Add(obs.TraceEvent{Kind: obs.TraceMemStall, Model: -1,
					RemainingMS: remaining, AvailMemMB: 0})
				continue
			}
			break
		}
		t0 := time.Now()
		m := policy.Next(tr, c)
		selectSec += obs.SinceSeconds(t0)
		trace.SpanBetween(obs.SpanSelect, root, -1, t0, trace.Stamp())
		if m < 0 {
			// Retry only when the decline can be blamed on memory that
			// concurrent items hold right now; a final decline (out of
			// time, out of candidates) ends the schedule immediately.
			if s.memStalled(tr, remaining, c.AvailMemMB) && s.acct.awaitMore(c.AvailMemMB) {
				trace.Add(obs.TraceEvent{Kind: obs.TraceMemStall, Model: -1,
					RemainingMS: remaining, AvailMemMB: c.AvailMemMB, Note: "memory"})
				continue
			}
			if trace != nil && len(tr.Unexecuted()) > 0 {
				trace.Add(obs.TraceEvent{Kind: obs.TraceSkipped, Model: -1,
					RemainingMS: remaining, AvailMemMB: c.AvailMemMB,
					Note: "declined with models unexecuted"})
			}
			break
		}
		mod := s.ex.Model(m)
		checkSelection(policy, m, mod, c)
		trace.Add(obs.TraceEvent{Kind: obs.TraceSelected, Model: m,
			RemainingMS: remaining, AvailMemMB: c.AvailMemMB})
		s.executeSerial(policy, m, mod, trace)
		tr.Execute(m)
		out := s.ex.Output(tk.image, m)
		policy.Observe(m, out)
		executed = append(executed, m)
		outputs = append(outputs, out)
		schedMS += mod.TimeMS
		remaining -= mod.TimeMS
	}
	trace.Add(obs.TraceEvent{Kind: obs.TraceCommit, Model: -1, RemainingMS: remaining})
	s.observeQuality(policy, tr, outputs)
	s.finish(tk, startWall, executed, outputs, schedMS, selectSec, tr.Recall(), tr.HasTruth(), trace)
}

// residualValuer is implemented by the predictor-backed policies
// (internal/sched): the agent's estimate of the value still available
// for an item given its executed-set state. Used only for the quality
// proxy metric — reading a prediction never alters scheduling state, so
// bit-identity holds.
type residualValuer interface {
	ResidualValue(tr *oracle.Tracker) float64
}

// observeQuality records the ground-truth-free quality proxy on
// ingested traffic (items with no ground truth, hence no recall): the
// valuable-label confidence mass the schedule banked against the
// agent's predicted residual value at schedule end. Runs only when
// telemetry is enabled.
func (s *Server) observeQuality(policy sim.Policy, tr *oracle.Tracker, outputs []zoo.Output) {
	if s.cfg.Metrics == nil || tr.HasTruth() {
		return
	}
	mass := 0.0
	for _, out := range outputs {
		mass += out.Value(zoo.ValuableThreshold)
	}
	residual := 0.0
	if rv, ok := policy.(residualValuer); ok {
		residual = rv.ResidualValue(tr)
	}
	s.cfg.Metrics.quality(mass, residual)
}

// executeSerial runs one model for a serially scheduled item: through
// the batching runtime when batching is on (the batch owns the item's
// footprint reservation — that is the coalescing), directly on the
// timer wheel otherwise. Tracing records the stage spans: batch-hold
// (enqueue → seal) and exec (seal → wake) on the batched path, using
// the seal stamp the batcher publishes through the BatchRef before the
// done channel closes; reserve-wait and exec on the direct path.
func (s *Server) executeSerial(policy sim.Policy, m int, mod *zoo.Model, trace *obs.ItemTrace) {
	t0 := s.cfg.Metrics.execStart(m)
	if s.batcher != nil {
		var ref *obs.BatchRef
		enq := trace.Stamp()
		if trace != nil {
			trace.Add(obs.TraceEvent{Kind: obs.TraceBatched, Model: m, Queued: s.batcher.Queued(m)})
			ref = &obs.BatchRef{}
		}
		done := make(chan struct{})
		s.batcher.Enqueue(m, s.acct != nil, done, ref)
		<-done
		if ref != nil {
			hold := trace.SpanBetween(obs.SpanBatchHold, 0, m, enq, ref.Seal)
			trace.AnnotateBatch(hold, ref.Batch, ref.N, ref.Flush)
			exec := trace.SpanBetween(obs.SpanExec, 0, m, ref.Seal, trace.Stamp())
			trace.AnnotateBatch(exec, ref.Batch, ref.N, ref.Flush)
		}
		s.cfg.Metrics.execDone(m, t0, s.cfg.TimeScale)
		return
	}
	trace.Add(obs.TraceEvent{Kind: obs.TraceExec, Model: m})
	if s.acct != nil {
		// Another worker may have claimed the observed headroom in the
		// meantime; reserve blocks until the footprint fits again.
		rw := trace.StartSpan(obs.SpanReserveWait, 0, m)
		s.mustReserve(policy, m, mod)
		trace.EndSpan(rw)
	}
	exec := trace.StartSpan(obs.SpanExec, 0, m)
	s.wheel.Sleep(s.scaled(mod.TimeMS))
	trace.EndSpan(exec)
	if s.acct != nil {
		s.acct.release(mod.MemMB)
	}
	s.cfg.Metrics.execDone(m, t0, s.cfg.TimeScale)
}

// mustReserve claims a model's footprint, panicking when the accountant
// reports it could never fit the whole budget. A selection that passed
// checkSelection always fits (the observed availability never exceeds
// the budget), so a false return here means the policy's selection and
// the constraints it was handed disagree — a contract violation, not a
// transient stall, and silently ignoring it would let the execution
// proceed without any reservation at all.
func (s *Server) mustReserve(policy sim.Policy, m int, mod *zoo.Model) {
	if !s.acct.reserve(mod.MemMB) {
		panic(fmt.Sprintf("serve: policy %s selected model %d whose footprint (%v MB) exceeds the whole memory budget (%v MB)",
			policy.Name(), m, mod.MemMB, s.cfg.MemoryBudgetMB))
	}
}

// scaled converts nominal model milliseconds to the real duration slept.
func (s *Server) scaled(ms float64) time.Duration {
	return time.Duration(ms * s.cfg.TimeScale * float64(time.Millisecond))
}

// parallelFlight is one in-flight model execution of a parallel item.
type parallelFlight struct {
	model    int
	finishMS float64       // nominal finish on the item's schedule clock
	done     chan struct{} // closed when the scaled sleep has elapsed
	started  time.Time     // metrics stamp at launch (zero when disabled)
	launched time.Time     // trace stamp at launch (zero when tracing is off)
	ref      *obs.BatchRef // batched fan-in identity (nil unbatched/untraced)
}

// flightHas reports whether model m is in the in-flight set.
func flightHas(inFly []parallelFlight, m int) bool {
	for _, f := range inFly {
		if f.model == m {
			return true
		}
	}
	return false
}

// launch starts one parallel-mode execution: through the batching
// runtime when batching is on — non-owned, because the coordinator
// keeps the per-flight reservation until commit, exactly as the
// virtual-time executor accounts memory; the batch only shares the
// execution sleep — or as a plain timer on the wheel otherwise.
func (s *Server) launch(m int, mod *zoo.Model, done chan struct{}, ref *obs.BatchRef) {
	if s.batcher != nil {
		s.batcher.Enqueue(m, false, done, ref)
		return
	}
	s.wheel.AfterFunc(s.scaled(mod.TimeMS), func() { close(done) })
}

// processParallel runs one item with sim.RunParallel's semantics under
// real concurrency: the worker coordinates launch phases and completion
// commits on the item's nominal schedule clock while each launched model
// sleeps in its own goroutine. Reservations are released at commit (not
// when the sleep ends), so the availability a launch phase observes is
// exactly what the virtual-time executor would compute — an uncontended
// item therefore reproduces the sim.RunParallel schedule bit for bit.
func (s *Server) processParallel(policy sim.Policy, tk *Ticket) {
	startWall := time.Now()
	trace := s.cfg.Tracer.Begin(tk.image, tk.tag)
	trace.SetShard(s.cfg.Shard)
	root := trace.Root(tk.arrival)
	trace.SpanBetween(obs.SpanQueueWait, root, -1, tk.arrival, startWall)
	policy.Reset(tk.image)
	tr := oracle.NewTracker(s.ex, tk.image)
	deadlineMS := s.cfg.DeadlineSec * 1000
	var (
		inFly     []parallelFlight
		nowMS     float64 // the item's nominal schedule clock
		executed  []int
		outputs   []zoo.Output
		selectSec float64
	)
	for {
		// Launch phase: one selection per ask until the policy declines.
		// stalledAt records the availability at which launching stopped
		// short of the budget, so an empty schedule can wait for a
		// release instead of ending on another item's transient usage.
		stalledAt := -1.0
		for {
			remaining := deadlineMS - nowMS
			if remaining <= 0 {
				break
			}
			c := s.constraints(remaining)
			if c.AvailMemMB <= 0 {
				stalledAt = 0
				break
			}
			t0 := time.Now()
			m := policy.Next(tr, c)
			selectSec += obs.SinceSeconds(t0)
			trace.SpanBetween(obs.SpanSelect, root, -1, t0, trace.Stamp())
			if m < 0 {
				stalledAt = c.AvailMemMB
				if trace != nil && len(tr.Unexecuted()) > len(inFly) {
					trace.Add(obs.TraceEvent{Kind: obs.TraceSkipped, Model: -1,
						RemainingMS: remaining, AvailMemMB: c.AvailMemMB,
						Note: "declined with models unexecuted"})
				}
				break
			}
			mod := s.ex.Model(m)
			checkSelection(policy, m, mod, c)
			trace.Add(obs.TraceEvent{Kind: obs.TraceSelected, Model: m,
				RemainingMS: remaining, AvailMemMB: c.AvailMemMB})
			// The double-launch contract of sim.RunParallel: an in-flight
			// model's output is not visible yet, so a policy that returns
			// it again is reading state it was told to track itself.
			if tr.Executed(m) || flightHas(inFly, m) {
				panic(fmt.Sprintf("serve: policy %s launched model %d twice", policy.Name(), m))
			}
			// This reserve can briefly block when another item claims
			// the observed headroom first, while this coordinator holds
			// its own in-flight reservations. That cannot deadlock: a
			// blocked reserve implies a later successful reservation by
			// another coordinator, so the globally last reserver is
			// never blocked, always drains its commits (which need no
			// reservation), and its releases wake the blocked one — a
			// selection always fits the budget minus its own holdings.
			rw := trace.StartSpan(obs.SpanReserveWait, root, m)
			s.mustReserve(policy, m, mod)
			trace.EndSpan(rw)
			f := parallelFlight{model: m, finishMS: nowMS + mod.TimeMS,
				done: make(chan struct{}), started: s.cfg.Metrics.execStart(m),
				launched: trace.Stamp()}
			if s.batcher != nil && trace != nil {
				trace.Add(obs.TraceEvent{Kind: obs.TraceBatched, Model: m, Queued: s.batcher.Queued(m)})
				f.ref = &obs.BatchRef{}
			}
			inFly = append(inFly, f)
			s.launch(m, mod, f.done, f.ref)
		}
		if len(inFly) == 0 {
			// Nothing running and nothing launchable. As in the serial
			// loop, a decline under another item's memory pressure only
			// pauses the schedule; a final decline ends it.
			if stalledAt >= 0 && s.memStalled(tr, deadlineMS-nowMS, stalledAt) &&
				s.acct.awaitMore(stalledAt) {
				trace.Add(obs.TraceEvent{Kind: obs.TraceMemStall, Model: -1,
					RemainingMS: deadlineMS - nowMS, AvailMemMB: stalledAt, Note: "memory"})
				continue
			}
			break
		}
		// Commit the earliest nominal completion (ties: launch order),
		// matching sim.RunParallel's event loop regardless of real
		// wall-clock jitter between the sleeps.
		ei := 0
		for i, f := range inFly {
			if f.finishMS < inFly[ei].finishMS {
				ei = i
			}
		}
		f := inFly[ei]
		inFly = append(inFly[:ei], inFly[ei+1:]...)
		<-f.done
		// The coordinator records the flight's spans at commit (it owns
		// the trace; sleeps never write). A batched flight splits into
		// hold (launch → seal) and exec (seal → wake) from the BatchRef
		// the batcher filled before closing done.
		if f.ref != nil && f.ref.Batch != 0 {
			hold := trace.SpanBetween(obs.SpanBatchHold, root, f.model, f.launched, f.ref.Seal)
			trace.AnnotateBatch(hold, f.ref.Batch, f.ref.N, f.ref.Flush)
			exec := trace.SpanBetween(obs.SpanExec, root, f.model, f.ref.Seal, trace.Stamp())
			trace.AnnotateBatch(exec, f.ref.Batch, f.ref.N, f.ref.Flush)
		} else {
			trace.SpanBetween(obs.SpanExec, root, f.model, f.launched, trace.Stamp())
		}
		mod := s.ex.Model(f.model)
		s.acct.release(mod.MemMB)
		s.cfg.Metrics.execDone(f.model, f.started, s.cfg.TimeScale)
		nowMS = f.finishMS
		tr.Execute(f.model)
		out := s.ex.Output(tk.image, f.model)
		policy.Observe(f.model, out)
		executed = append(executed, f.model)
		outputs = append(outputs, out)
	}
	// The coordinating worker is occupied for the whole makespan, so
	// that — not the summed model time, which can exceed it — is the
	// busy time charged to utilization.
	trace.Add(obs.TraceEvent{Kind: obs.TraceCommit, Model: -1, RemainingMS: deadlineMS - nowMS})
	s.observeQuality(policy, tr, outputs)
	s.finish(tk, startWall, executed, outputs, nowMS, selectSec, tr.Recall(), tr.HasTruth(), trace)
}

// finish commits and records one completed item, then resolves its
// ticket. schedMS is the item's schedule length — the worker time the
// item occupied, which is also what utilization charges: summed model
// time serially, the makespan in parallel mode. The corpus commit (the
// item's explicit lifetime boundary) happens first: the outputs are
// already captured by value, so the corpus may evict the item's memo the
// moment the commit is journaled, before any reader wakes.
func (s *Server) finish(tk *Ticket, startWall time.Time, executed []int, outputs []zoo.Output, schedMS, selectSec float64, recall float64, hasRecall bool, trace *obs.ItemTrace) {
	commit := trace.StartSpan(obs.SpanCommit, 0, -1)
	if s.cfg.Corpus != nil {
		s.cfg.Corpus.CommitItem(tk.image, executed, schedMS)
	}
	trace.EndSpan(commit)
	finishWall := time.Now()

	// Record on the simulated clock so Stats is comparable to the sim.
	scale := s.cfg.TimeScale
	rec := service.Record{
		ArrivalSec: tk.arrival.Sub(s.start).Seconds() / scale,
		StartSec:   startWall.Sub(s.start).Seconds() / scale,
		FinishSec:  finishWall.Sub(s.start).Seconds() / scale,
		BusySec:    schedMS / 1000,
		Recall:     recall,
		HasRecall:  hasRecall,
		SelectSec:  selectSec, // real seconds, deliberately unscaled
	}
	tk.res = ItemResult{
		Image:      tk.image,
		Tag:        tk.tag,
		Executed:   executed,
		Outputs:    outputs,
		ScheduleMS: schedMS,
		Recall:     recall,
		HasRecall:  hasRecall,
		WaitSec:    rec.StartSec - rec.ArrivalSec,
		LatencySec: rec.FinishSec - rec.ArrivalSec,
	}
	// Telemetry reads the very record ServeStats will summarize — one
	// source of truth, so the exposition can never disagree with Stats.
	s.cfg.Metrics.itemDone(tk.res.WaitSec, tk.res.LatencySec, selectSec)
	s.cfg.Tracer.End(trace)
	s.mu.Lock()
	s.completed++
	if len(s.records) < s.cfg.StatsWindow {
		s.records = append(s.records, rec)
	} else {
		// Ring: overwrite the oldest record so a long-running server's
		// footprint stays bounded.
		s.records[s.recHead] = rec
		s.recHead = (s.recHead + 1) % s.cfg.StatsWindow
	}
	notify := s.resSig != nil
	if notify {
		if len(s.resBuf) >= s.cfg.StatsWindow {
			// The consumer is at least a full stats window behind: treat
			// the subscription as abandoned and shed the oldest results
			// rather than retaining every completion forever.
			drop := len(s.resBuf) - s.cfg.StatsWindow + 1
			s.resBuf = append(s.resBuf[:0], s.resBuf[drop:]...)
			s.resDropped += int64(drop)
		}
		s.resBuf = append(s.resBuf, tk.res)
	}
	s.mu.Unlock()
	if notify {
		select {
		case s.resSig <- struct{}{}:
		default: // a wake-up is already pending
		}
	}
	close(tk.done)
}

// RunStats extends the shared Stats with the server's concurrency
// counters.
type RunStats struct {
	service.Stats
	Completed      int64       // total completions (Stats.Items caps at StatsWindow)
	PeakMemMB      float64     // maximum simultaneous reservation observed
	MemWaits       int64       // reservations that blocked on the budget
	Rejected       int64       // submits rejected with ErrQueueFull
	ResultsDropped int64       // Results-stream entries shed behind a lagging consumer
	Batching       batch.Stats // zero when batching is not configured
}

// Stats summarizes the most recent StatsWindow completed items through
// the same service.Summarize reduction the virtual-time sim uses.
func (s *Server) Stats() RunStats {
	s.mu.Lock()
	records := append([]service.Record(nil), s.records...)
	completed := s.completed
	rejected := s.rejected
	resDropped := s.resDropped
	s.mu.Unlock()
	rs := RunStats{
		Stats:          service.Summarize(records, s.cfg.Workers),
		Completed:      completed,
		Rejected:       rejected,
		ResultsDropped: resDropped,
	}
	if completed > int64(rs.Items) && rs.Items > 0 {
		// The ring has wrapped: Summarize's throughput/utilization
		// denominator (horizon since server start) would decay toward
		// zero as old records drop, so re-derive both over the
		// retained window's own span.
		minArr, maxFin := records[0].ArrivalSec, records[0].FinishSec
		var busy float64
		for _, r := range records {
			if r.ArrivalSec < minArr {
				minArr = r.ArrivalSec
			}
			if r.FinishSec > maxFin {
				maxFin = r.FinishSec
			}
			busy += r.BusySec
		}
		if span := maxFin - minArr; span > 0 {
			rs.ThroughputHz = float64(rs.Items) / span
			rs.Utilization = busy / (float64(s.cfg.Workers) * span)
		}
	}
	if s.acct != nil {
		rs.PeakMemMB = s.acct.peak()
		rs.MemWaits = s.acct.waitCount()
	}
	if s.batcher != nil {
		rs.Batching = s.batcher.Stats()
	}
	return rs
}

// Records returns a copy of the retained per-item completion records —
// the raw material a shard router merges across servers (with a shared
// Config.Epoch) before one Summarize reduction.
func (s *Server) Records() []service.Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]service.Record(nil), s.records...)
}

// PeakMemMB returns the accountant's observed peak (0 when unbudgeted).
func (s *Server) PeakMemMB() float64 {
	if s.acct == nil {
		return 0
	}
	return s.acct.peak()
}

package serve

import (
	"testing"

	"ams/internal/leaktest"
)

// TestMain fails the package when worker pools, batch lanes, or the
// vtime dispatcher outlive the tests: this package's contract is that
// Close drains everything it started.
func TestMain(m *testing.M) {
	leaktest.VerifyTestMain(m)
}

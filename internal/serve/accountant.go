package serve

import (
	"fmt"
	"sync"
	"time"

	"ams/internal/obs"
)

// accountant is the shared GPU-memory budget of Algorithm 2, lifted from
// a per-item schedule to the whole server: every worker must reserve a
// model's peak footprint before executing it and release it afterwards,
// so the sum of in-flight footprints never exceeds the budget no matter
// how many workers run concurrently. Reservations that cannot be granted
// immediately block until running models release memory — this is the
// server's execution-level backpressure.
type accountant struct {
	mu       sync.Mutex
	cond     *sync.Cond
	budgetMB float64
	usedMB   float64
	peakMB   float64
	waits    int64 // reservations that had to block at least once

	// waitHist, when non-nil, receives the real seconds each blocked
	// reservation (or selection retry) spent waiting — the server's
	// memory-stall latency. Set once at construction, before any worker
	// runs.
	waitHist *obs.Histogram
}

func newAccountant(budgetMB float64) *accountant {
	a := &accountant{budgetMB: budgetMB}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// reserve blocks until mb megabytes are available and claims them. It
// returns false, without blocking, when mb exceeds the total budget and
// so could never be granted.
func (a *accountant) reserve(mb float64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if mb > a.budgetMB+1e-9 {
		return false
	}
	waited := false
	var t0 time.Time
	for a.usedMB+mb > a.budgetMB+1e-9 {
		if !waited {
			waited = true
			a.waits++
			t0 = obs.Started(a.waitHist)
		}
		a.cond.Wait()
	}
	a.waitHist.ObserveSince(t0) // no-op unless the reservation blocked
	a.usedMB += mb
	if a.usedMB > a.peakMB {
		a.peakMB = a.usedMB
	}
	if a.usedMB > a.budgetMB+1e-9 {
		panic(fmt.Sprintf("serve: memory accountant over-committed: %v MB in use, budget %v MB",
			a.usedMB, a.budgetMB))
	}
	return true
}

// release returns a reservation to the pool and wakes blocked reservers.
func (a *accountant) release(mb float64) {
	a.mu.Lock()
	a.usedMB -= mb
	if a.usedMB < -1e-9 {
		panic(fmt.Sprintf("serve: memory accountant released more than reserved (%v MB in use)", a.usedMB))
	}
	a.mu.Unlock()
	a.cond.Broadcast()
}

// available returns the megabytes a reservation could claim right now.
// This is the live availability fed into policies as
// sim.Constraints.AvailMemMB, so a policy only ever selects models that
// fit the current headroom.
func (a *accountant) available() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.budgetMB - a.usedMB
}

// awaitMore blocks until the available memory differs from what the
// caller last observed, returning true to ask the policy again. It
// returns false without blocking when the whole budget was already
// available: nothing is running, so no release will ever raise it and a
// policy that declined has genuinely finished its schedule.
func (a *accountant) awaitMore(observedMB float64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if observedMB >= a.budgetMB-1e-9 {
		return false
	}
	waited := false
	var t0 time.Time
	for a.budgetMB-a.usedMB <= observedMB+1e-9 {
		if !waited {
			waited = true
			a.waits++
			t0 = obs.Started(a.waitHist)
		}
		a.cond.Wait()
	}
	a.waitHist.ObserveSince(t0) // no-op unless the retry blocked
	return true
}

// peak returns the maximum simultaneous reservation observed.
func (a *accountant) peak() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peakMB
}

// inUse returns the currently reserved megabytes.
func (a *accountant) inUse() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.usedMB
}

// waitCount returns how many reservations had to block.
func (a *accountant) waitCount() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waits
}

package serve

import (
	"time"

	"ams/internal/batch"
	"ams/internal/obs"
	"ams/internal/zoo"
)

// Metrics is the server's hot-path instrument set, registered once at
// construction (never in the item loop — the obsclean analyzer enforces
// constant metric names at registration sites). One Metrics is shared
// by every shard of a logical server: counters and histograms are
// concurrency-safe, so per-model series aggregate fleet-wide while
// per-shard live state is exposed separately through RegisterViews.
//
// A nil *Metrics disables instrumentation: every helper method no-ops,
// no clock is read, and nothing allocates — the disabled fast path the
// root package's benchmark pair holds to zero allocations.
type Metrics struct {
	Admitted    *obs.Counter     // items accepted onto the queue
	Shed        *obs.Counter     // items rejected with ErrQueueFull
	QueueWait   *obs.Histogram   // simulated seconds from submit to dequeue
	Select      *obs.Histogram   // real seconds of policy.Next per item (Table III overhead)
	Latency     *obs.Histogram   // simulated seconds from submit to completion
	ReserveWait *obs.Histogram   // real seconds blocked on the memory accountant
	ExecCount   []*obs.Counter   // executions per model
	ExecLatency []*obs.Histogram // simulated seconds per model execution (incl. batch hold)

	// Quality proxy (ROADMAP's ground-truth-free signal, first half):
	// on ingested traffic — no ground truth, so no recall — compare what
	// a schedule banked against what the agent thinks is still on the
	// table. Mass is the summed confidence of valuable labels actually
	// produced; Residual is the agent's best remaining Q-value at
	// schedule end; Ratio is residual/(mass+residual) for the most
	// recent such item (near 0: schedules are exhausting the value the
	// agent can see; near 1: deadlines are leaving predicted value
	// unharvested).
	QualityMass     *obs.Histogram
	QualityResidual *obs.Histogram
	QualityRatio    *obs.Gauge

	// Batch carries the batching runtime's instruments (nil when the
	// registry is nil), threaded into the batcher at construction.
	Batch *batch.Metrics

	// SLOs are the latency objectives every completed item is accounted
	// against (itemDone feeds each one the item's simulated-clock
	// latency). Observing an SLO only classifies and counts — nothing
	// feeds back into scheduling — so bit-identity holds. Empty when no
	// objectives are configured.
	SLOs []*obs.SLO
}

// NewMetrics registers the serve-layer instruments against reg. Returns
// nil on a nil registry, which disables instrumentation everywhere it
// is threaded.
func NewMetrics(reg *obs.Registry, models []*zoo.Model) *Metrics {
	if reg == nil {
		return nil
	}
	m := &Metrics{
		Admitted: reg.Counter("ams_items_admitted_total",
			"Items accepted onto the admission queue"),
		Shed: reg.Counter("ams_items_shed_total",
			"Items rejected at admission (queue full)"),
		QueueWait: reg.Histogram("ams_queue_wait_seconds",
			"Simulated seconds an item waited in the admission queue"),
		Select: reg.Histogram("ams_select_seconds",
			"Real seconds of scheduler selection overhead per item"),
		Latency: reg.Histogram("ams_item_latency_seconds",
			"Simulated seconds from submission to completion"),
		ReserveWait: reg.Histogram("ams_mem_reserve_wait_seconds",
			"Real seconds executions blocked waiting for GPU memory"),
		QualityMass: reg.Histogram("ams_quality_conf_mass",
			"Per ingested item: summed confidence of valuable labels produced (unitless)"),
		QualityResidual: reg.Histogram("ams_quality_predicted_residual",
			"Per ingested item: the agent's best remaining Q-value at schedule end (unitless)"),
		QualityRatio: reg.Gauge("ams_quality_residual_ratio",
			"Most recent ingested item: predicted residual / (banked mass + residual)"),
		Batch: batch.NewMetrics(reg),
	}
	m.ExecCount = make([]*obs.Counter, len(models))
	m.ExecLatency = make([]*obs.Histogram, len(models))
	for i, mod := range models {
		m.ExecCount[i] = reg.Counter("ams_model_exec_total",
			"Model executions (batched requests count once per request)",
			obs.L("model", mod.Name))
		m.ExecLatency[i] = reg.Histogram("ams_model_exec_seconds",
			"Simulated seconds per model execution as seen by the item (includes batch hold)",
			obs.L("model", mod.Name))
	}
	return m
}

// admitted / shed record the admission outcome (no-op on nil).
func (m *Metrics) admitted() {
	if m == nil {
		return
	}
	m.Admitted.Inc()
}

func (m *Metrics) shed() {
	if m == nil {
		return
	}
	m.Shed.Inc()
}

// execStart stamps the clock for one model execution span — the zero
// time when disabled, so the hot path pays one nil check only.
func (m *Metrics) execStart(model int) time.Time {
	if m == nil {
		return time.Time{}
	}
	return obs.Started(m.ExecLatency[model])
}

// execDone counts the execution and observes its span on the simulated
// clock.
func (m *Metrics) execDone(model int, t0 time.Time, scale float64) {
	if m == nil {
		return
	}
	m.ExecCount[model].Inc()
	m.ExecLatency[model].ObserveScaledSince(t0, scale)
}

// itemDone records one completed item's stage timings: queue wait and
// end-to-end latency in simulated seconds (already rescaled by the
// caller, which derives them from the same record ServeStats reads),
// selection overhead in real seconds.
func (m *Metrics) itemDone(waitSec, latencySec, selectSec float64) {
	if m == nil {
		return
	}
	m.QueueWait.Observe(waitSec)
	m.Latency.Observe(latencySec)
	m.Select.Observe(selectSec)
	for _, slo := range m.SLOs {
		slo.Observe(latencySec)
	}
}

// quality records the ground-truth-free quality proxy for one ingested
// item.
func (m *Metrics) quality(mass, residual float64) {
	if m == nil {
		return
	}
	m.QualityMass.Observe(mass)
	m.QualityResidual.Observe(residual)
	if total := mass + residual; total > 0 {
		m.QualityRatio.Set(residual / total)
	} else {
		m.QualityRatio.Set(0)
	}
}

// RegisterViews exposes this server's live state as labeled series on
// reg — per-shard gauges over the same fields Stats reads, so /metrics
// and ServeStats can never disagree. Call once per server, with a
// distinguishing shard label when several servers share one registry.
func (s *Server) RegisterViews(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("ams_queue_depth",
		"Items waiting in the admission queue right now",
		func() float64 { return float64(len(s.queue)) }, labels...)
	reg.CounterFunc("ams_items_completed_total",
		"Items whose schedules have committed",
		func() int64 { s.mu.Lock(); defer s.mu.Unlock(); return s.completed }, labels...)
	reg.CounterFunc("ams_items_rejected_total",
		"Admissions rejected with a full queue",
		func() int64 { s.mu.Lock(); defer s.mu.Unlock(); return s.rejected }, labels...)
	reg.CounterFunc("ams_results_dropped_total",
		"Results-stream entries shed behind a lagging consumer",
		func() int64 { s.mu.Lock(); defer s.mu.Unlock(); return s.resDropped }, labels...)
	if s.acct != nil {
		reg.GaugeFunc("ams_mem_inuse_mb",
			"GPU megabytes currently reserved by in-flight executions",
			s.acct.inUse, labels...)
		reg.GaugeFunc("ams_mem_peak_mb",
			"Maximum simultaneous GPU reservation observed",
			s.acct.peak, labels...)
		reg.CounterFunc("ams_mem_stalls_total",
			"Reservations or selection retries that blocked on the memory budget",
			s.acct.waitCount, labels...)
	}
}

package serve

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"ams/internal/oracle"
	"ams/internal/sched"
	"ams/internal/service"
	"ams/internal/sim"
	"ams/internal/tensor"
	"ams/internal/vtime"
	"ams/internal/zoo"
)

// runSequential serves items 0..n-1 one at a time on a fresh server and
// returns their results. With one worker and strictly sequential
// submits the run is deterministic, which makes schedules comparable
// across server configurations.
func runSequential(t *testing.T, cfg Config, factory service.PolicyFactory, n int) []ItemResult {
	t.Helper()
	s, err := New(store, factory, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	results := make([]ItemResult, n)
	for i := 0; i < n; i++ {
		tk, err := s.SubmitWait(context.Background(), i, "")
		if err != nil {
			t.Fatal(err)
		}
		results[i] = tk.Wait()
	}
	return results
}

// TestBatchSizeOneMatchesUnbatched: with MaxBatch = 1 the batching
// runtime reproduces the unbatched reserve → sleep → release sequence,
// so every schedule is identical to the batching-disabled server's — in
// both execution modes.
func TestBatchSizeOneMatchesUnbatched(t *testing.T) {
	const items = 12
	serial := fast(1)
	serial.MemoryBudgetMB = 6000
	parallel := itemParallelConfig(1)
	for _, tc := range []struct {
		name    string
		cfg     Config
		factory service.PolicyFactory
	}{
		{"serial", serial, randomFactory(5)},
		{"item-parallel", parallel, func(worker int) sim.Policy {
			return sched.NewRandomPacker(z, tensor.NewRNG(23+uint64(worker)))
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plain := runSequential(t, tc.cfg, tc.factory, items)
			batched := tc.cfg
			batched.BatchSize = 1
			got := runSequential(t, batched, tc.factory, items)
			for i := range plain {
				if !reflect.DeepEqual(got[i].Executed, plain[i].Executed) {
					t.Fatalf("item %d: batch=1 schedule %v != unbatched %v", i, got[i].Executed, plain[i].Executed)
				}
				if got[i].Recall != plain[i].Recall || got[i].ScheduleMS != plain[i].ScheduleMS {
					t.Fatalf("item %d: batch=1 recall/schedule (%v, %v) != unbatched (%v, %v)",
						i, got[i].Recall, got[i].ScheduleMS, plain[i].Recall, plain[i].ScheduleMS)
				}
			}
		})
	}
}

// TestBatchingStress hammers the batching path the way the race job
// wants it hammered: a pool of workers all scheduling the same hot
// models under a short deadline and a tight shared memory budget, so
// lanes fill, hold timers race size flushes, and the batch runtime's
// single-reservation path contends with the accountant. Every item's
// outputs and recall must still be exactly what a pure recomputation of
// its committed schedule yields.
func TestBatchingStress(t *testing.T) {
	cfg := fast(8)
	cfg.BatchSize = 8
	cfg.BatchHoldMS = 300
	cfg.MemoryBudgetMB = 4000
	cfg.QueueCap = 64
	s, err := New(store, fixedFactory(6, 11, 3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := store.NumScenes()
	tickets := make([]*Ticket, n)
	for i := 0; i < n; i++ {
		if tickets[i], err = s.SubmitWait(context.Background(), i, ""); err != nil {
			t.Fatal(err)
		}
	}
	var totalExecuted int64
	for _, tk := range tickets {
		res := tk.Wait()
		totalExecuted += int64(len(res.Executed))
		// Batched execution must not leak anything across the items it
		// coalesces: outputs and recall are per-item, bit for bit.
		tr := oracle.NewTracker(store, res.Image)
		for j, m := range res.Executed {
			tr.Execute(m)
			if want := store.Output(res.Image, m); !reflect.DeepEqual(res.Outputs[j], want) {
				t.Fatalf("item %d model %d: batched output %+v != store output %+v", res.Image, m, res.Outputs[j], want)
			}
		}
		if res.Recall != tr.Recall() {
			t.Fatalf("item %d: recall %v != recomputed %v over %v", res.Image, res.Recall, tr.Recall(), res.Executed)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Completed != int64(n) {
		t.Fatalf("completed %d of %d items", st.Completed, n)
	}
	if st.Batching.Requests != totalExecuted {
		t.Fatalf("batching served %d requests, executions totalled %d", st.Batching.Requests, totalExecuted)
	}
	// A hot-model pool this saturated coalesces somewhere: 8 workers
	// enqueue the same three lanes hundreds of times within each hold
	// window.
	if st.Batching.Batches >= st.Batching.Requests {
		t.Fatalf("no coalescing at all: %d batches for %d requests", st.Batching.Batches, st.Batching.Requests)
	}
	if st.Batching.SavedGPUMS <= 0 {
		t.Fatalf("coalesced batches saved no GPU time: %+v", st.Batching)
	}
}

// TestMustReservePanicNamesPolicy is the regression test for the
// ignored-reserve-result bug: the accountant's "this footprint can
// never fit the budget" return was silently discarded, letting an
// execution proceed with no reservation at all. The server now treats
// it as a policy contract violation and says which policy.
func TestMustReservePanicNamesPolicy(t *testing.T) {
	s := &Server{
		acct: newAccountant(500),
		cfg:  Config{MemoryBudgetMB: 500},
	}
	oversized := &zoo.Model{TimeMS: 100, MemMB: 9999}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("mustReserve swallowed an impossible reservation")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "fixed") || !strings.Contains(msg, "exceeds the whole memory budget") {
			t.Fatalf("panic %v does not name the policy and the violation", r)
		}
	}()
	s.mustReserve(&fixedPolicy{}, 7, oversized)
}

// repeatLauncher misbehaves on purpose: it keeps returning the same
// model without tracking its own in-flight selections — the contract
// violation sim.RunParallel panics on, which the server's parallel path
// must catch identically.
type repeatLauncher struct{ model int }

func (p *repeatLauncher) Name() string { return "repeat-launcher" }
func (p *repeatLauncher) Reset(int)    {}
func (p *repeatLauncher) Next(t *oracle.Tracker, c sim.Constraints) int {
	if !t.Executed(p.model) && c.Allows(z.Models[p.model]) {
		return p.model
	}
	return -1
}
func (p *repeatLauncher) Observe(int, zoo.Output) {}

// TestParallelDoubleLaunchPanics is the regression test for the ported
// double-launch contract check: before it, a policy that re-selected an
// in-flight model got it executed (and its memory reserved) twice for
// one item.
func TestParallelDoubleLaunchPanics(t *testing.T) {
	s := &Server{
		ex: store,
		cfg: Config{
			Config:         service.Config{Workers: 1, DeadlineSec: 0.8},
			TimeScale:      0.001,
			MemoryBudgetMB: 8000,
			ItemParallel:   true,
		},
		acct:  newAccountant(8000),
		wheel: vtime.NewWheel(),
		start: time.Now(),
	}
	defer s.wheel.Stop()
	tk := &Ticket{image: 0, arrival: time.Now(), done: make(chan struct{})}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("the parallel path executed an in-flight model twice without panicking")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "repeat-launcher") || !strings.Contains(msg, "twice") {
			t.Fatalf("panic %v does not name the policy and the double launch", r)
		}
	}()
	s.processParallel(&repeatLauncher{model: 6}, tk)
}

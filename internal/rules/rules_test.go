package rules

import (
	"testing"

	"ams/internal/labels"
	"ams/internal/zoo"
)

var (
	vocab = labels.NewVocabulary()
	z     = zoo.NewZoo(vocab)
)

func TestTableIIHasTenRules(t *testing.T) {
	rs := TableII()
	if len(rs) != 10 {
		t.Fatalf("Table II has %d rules, want 10", len(rs))
	}
	for _, r := range rs {
		if r.Factor != 2 && r.Factor != 0.5 {
			t.Fatalf("rule %q has non-paper factor %v", r.Name, r.Factor)
		}
	}
}

func mustLabel(t *testing.T, name string) labels.Label {
	t.Helper()
	l, ok := vocab.ByName(name)
	if !ok {
		t.Fatalf("missing label %q", name)
	}
	return l
}

func mustModel(t *testing.T, name string) *zoo.Model {
	t.Helper()
	m, ok := z.ByName(name)
	if !ok {
		t.Fatalf("missing model %q", name)
	}
	return m
}

func TestPersonPromotesPose(t *testing.T) {
	e := NewEngine(vocab, z, TableII())
	person := mustLabel(t, "object/person")
	det := mustModel(t, "objdet-fast")
	e.ObserveOutput(det, []zoo.LabelConf{{ID: person.ID, Conf: 0.9}})
	for mi, m := range z.Models {
		w := e.Weight(mi)
		switch m.Task {
		case labels.PoseEstimation, labels.GenderClassification:
			if w != 2 {
				t.Fatalf("%s weight %v, want 2", m.Name, w)
			}
		default:
			if w != 1 {
				t.Fatalf("%s weight %v, want 1", m.Name, w)
			}
		}
	}
}

func TestLowConfidenceDoesNotTrigger(t *testing.T) {
	e := NewEngine(vocab, z, TableII())
	person := mustLabel(t, "object/person")
	det := mustModel(t, "objdet-fast")
	e.ObserveOutput(det, []zoo.LabelConf{{ID: person.ID, Conf: 0.3}})
	for mi := range z.Models {
		if e.Weight(mi) != 1 {
			t.Fatal("low-confidence label triggered a rule")
		}
	}
}

func TestWrongSourceTaskDoesNotTrigger(t *testing.T) {
	e := NewEngine(vocab, z, TableII())
	person := mustLabel(t, "object/person")
	// A pose model "emitting" the person label must not fire the
	// object-detection-sourced rule.
	pose := mustModel(t, "pose-openpose")
	e.ObserveOutput(pose, []zoo.LabelConf{{ID: person.ID, Conf: 0.9}})
	for mi := range z.Models {
		if e.Weight(mi) != 1 {
			t.Fatal("rule fired from the wrong source task")
		}
	}
}

func TestIndoorDemotesAnimalAndSport(t *testing.T) {
	e := NewEngine(vocab, z, TableII())
	pub := mustLabel(t, "place/pub")
	place := mustModel(t, "placecls-resnet")
	e.ObserveOutput(place, []zoo.LabelConf{{ID: pub.ID, Conf: 0.85}})
	animal := mustModel(t, "objdet-animal")
	sport := mustModel(t, "action-sport")
	if e.Weight(animal.ID) != 0.5 {
		t.Fatalf("animal detector weight %v, want 0.5", e.Weight(animal.ID))
	}
	if e.Weight(sport.ID) != 0.5 {
		t.Fatalf("sport classifier weight %v, want 0.5", e.Weight(sport.ID))
	}
}

func TestOutdoorPromotesSport(t *testing.T) {
	e := NewEngine(vocab, z, TableII())
	mountain := mustLabel(t, "place/mountain")
	place := mustModel(t, "placecls-resnet")
	e.ObserveOutput(place, []zoo.LabelConf{{ID: mountain.ID, Conf: 0.8}})
	sport := mustModel(t, "action-sport")
	if e.Weight(sport.ID) != 2 {
		t.Fatalf("sport classifier weight %v, want 2", e.Weight(sport.ID))
	}
}

func TestRuleFiresOncePerImage(t *testing.T) {
	e := NewEngine(vocab, z, TableII())
	person := mustLabel(t, "object/person")
	a := mustModel(t, "objdet-fast")
	b := mustModel(t, "objdet-accurate")
	e.ObserveOutput(a, []zoo.LabelConf{{ID: person.ID, Conf: 0.9}})
	e.ObserveOutput(b, []zoo.LabelConf{{ID: person.ID, Conf: 0.95}})
	pose := mustModel(t, "pose-openpose")
	if e.Weight(pose.ID) != 2 {
		t.Fatalf("pose weight %v after repeat trigger, want 2 (fire once)", e.Weight(pose.ID))
	}
}

func TestWristPromotesHands(t *testing.T) {
	e := NewEngine(vocab, z, TableII())
	wrist := mustLabel(t, "pose/left wrist")
	nose := mustLabel(t, "pose/nose")
	pose := mustModel(t, "pose-openpose")
	e.ObserveOutput(pose, []zoo.LabelConf{{ID: nose.ID, Conf: 0.9}, {ID: wrist.ID, Conf: 0.8}})
	hand := mustModel(t, "handlmk-mvb")
	if e.Weight(hand.ID) != 2 {
		t.Fatalf("hand model weight %v, want 2", e.Weight(hand.ID))
	}
	// Body keypoints promote action classification once per keypoint
	// (nose and wrist both trigger), compounding to 4.
	action := mustModel(t, "action-i3d")
	if e.Weight(action.ID) != 4 {
		t.Fatalf("action model weight %v, want 4", e.Weight(action.ID))
	}
}

func TestWeightsAreCapped(t *testing.T) {
	e := NewEngine(vocab, z, TableII())
	pose := mustModel(t, "pose-openpose")
	// Every keypoint triggers the keypoints=>action rule; the compounded
	// weight must stop at the cap.
	var out []zoo.LabelConf
	for _, id := range vocab.TaskLabels(labels.PoseEstimation) {
		out = append(out, zoo.LabelConf{ID: id, Conf: 0.9})
	}
	e.ObserveOutput(pose, out)
	action := mustModel(t, "action-i3d")
	if e.Weight(action.ID) != 64 {
		t.Fatalf("weight %v not capped at 64", e.Weight(action.ID))
	}
}

func TestReset(t *testing.T) {
	e := NewEngine(vocab, z, TableII())
	person := mustLabel(t, "object/person")
	e.ObserveOutput(mustModel(t, "objdet-fast"), []zoo.LabelConf{{ID: person.ID, Conf: 0.9}})
	e.Reset()
	for mi := range z.Models {
		if e.Weight(mi) != 1 {
			t.Fatal("Reset did not restore uniform weights")
		}
	}
	// Rules can fire again after reset.
	e.ObserveOutput(mustModel(t, "objdet-fast"), []zoo.LabelConf{{ID: person.ID, Conf: 0.9}})
	pose := mustModel(t, "pose-openpose")
	if e.Weight(pose.ID) != 2 {
		t.Fatal("rule did not re-fire after Reset")
	}
}

func TestWeightsCopy(t *testing.T) {
	e := NewEngine(vocab, z, TableII())
	w := e.Weights()
	w[0] = 99
	if e.Weight(0) == 99 {
		t.Fatal("Weights returned aliased storage")
	}
}

package rules

import (
	"testing"

	"ams/internal/zoo"
)

func TestSiblingDemotion(t *testing.T) {
	e := NewEngine(vocab, z, TableII())
	e.EnableSiblingDemotion(0.4)
	det := mustModel(t, "objdet-fast")
	e.ObserveOutput(det, nil)
	acc := mustModel(t, "objdet-accurate")
	animal := mustModel(t, "objdet-animal")
	if e.Weight(acc.ID) != 0.4 || e.Weight(animal.ID) != 0.4 {
		t.Fatalf("siblings not demoted: %v %v", e.Weight(acc.ID), e.Weight(animal.ID))
	}
	// The executed model's own weight is untouched (the policy never
	// reselects executed models anyway).
	if e.Weight(det.ID) != 1 {
		t.Fatalf("executed model weight changed: %v", e.Weight(det.ID))
	}
	// Other tasks unaffected.
	pose := mustModel(t, "pose-openpose")
	if e.Weight(pose.ID) != 1 {
		t.Fatalf("unrelated model demoted: %v", e.Weight(pose.ID))
	}
}

func TestSiblingDemotionComposesWithRules(t *testing.T) {
	e := NewEngine(vocab, z, TableII())
	e.EnableSiblingDemotion(0.4)
	person := mustLabel(t, "object/person")
	det := mustModel(t, "objdet-fast")
	e.ObserveOutput(det, []zoo.LabelConf{{ID: person.ID, Conf: 0.9}})
	// Pose promoted by the rule and not demoted (different task).
	pose := mustModel(t, "pose-openpose")
	if e.Weight(pose.ID) != 2 {
		t.Fatalf("pose weight %v, want 2", e.Weight(pose.ID))
	}
	// Running a pose model then demotes its siblings below the promoted
	// level but keeps the rule boost partially.
	e.ObserveOutput(pose, nil)
	flow := mustModel(t, "pose-flow")
	if w := e.Weight(flow.ID); w != 0.8 {
		t.Fatalf("pose sibling weight %v, want 2*0.4=0.8", w)
	}
}

func TestSiblingDemotionFloor(t *testing.T) {
	e := NewEngine(vocab, z, TableII())
	e.EnableSiblingDemotion(0.4)
	a := mustModel(t, "gender-fast")
	for i := 0; i < 20; i++ {
		e.ObserveOutput(a, nil)
	}
	b := mustModel(t, "gender-vgg")
	if e.Weight(b.ID) < 1.0/64-1e-12 {
		t.Fatalf("weight fell through the floor: %v", e.Weight(b.ID))
	}
}

func TestSiblingDemotionValidation(t *testing.T) {
	e := NewEngine(vocab, z, TableII())
	for _, f := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("factor %v accepted", f)
				}
			}()
			e.EnableSiblingDemotion(f)
		}()
	}
}

func TestResetKeepsSiblingSetting(t *testing.T) {
	e := NewEngine(vocab, z, TableII())
	e.EnableSiblingDemotion(0.4)
	e.ObserveOutput(mustModel(t, "objdet-fast"), nil)
	e.Reset()
	for mi := range z.Models {
		if e.Weight(mi) != 1 {
			t.Fatal("Reset did not restore weights")
		}
	}
	e.ObserveOutput(mustModel(t, "objdet-fast"), nil)
	if e.Weight(mustModel(t, "objdet-accurate").ID) != 0.4 {
		t.Fatal("sibling demotion lost after Reset")
	}
}

// Package rules implements the handcrafted-rule baseline of the paper's
// §VI-C (Table II): pair-wise execution rules that scale the probability
// of running models for a task once certain labels have been observed.
// All models start with equal execution probability; each triggered rule
// multiplies a task's probability by a fixed factor (2× to promote,
// 0.5× to demote).
package rules

import (
	"ams/internal/labels"
	"ams/internal/zoo"
)

// Rule is one handcrafted execution rule. When a label satisfying Trigger
// is emitted by an executed model of task From, the execution weight of
// every model matched by Target is multiplied by Factor.
type Rule struct {
	Name    string
	From    labels.Task
	Trigger func(v *labels.Vocabulary, labelID int) bool
	Target  func(m *zoo.Model) bool
	Factor  float64
}

// matchLabel builds a trigger matching one exact label name.
func matchLabel(name string) func(*labels.Vocabulary, int) bool {
	return func(v *labels.Vocabulary, id int) bool {
		return v.Label(id).Name == name
	}
}

// matchTask builds a target matching every model of a task.
func matchTask(t labels.Task) func(*zoo.Model) bool {
	return func(m *zoo.Model) bool { return m.Task == t }
}

// TableII returns the ten handcrafted rules of the paper's Table II,
// expressed against this repository's vocabulary and model zoo.
func TableII() []Rule {
	return []Rule{
		{
			Name: "person => pose estimation", From: labels.ObjectDetection,
			Trigger: matchLabel("object/person"),
			Target:  matchTask(labels.PoseEstimation), Factor: 2,
		},
		{
			Name: "person => gender classification", From: labels.ObjectDetection,
			Trigger: matchLabel("object/person"),
			Target:  matchTask(labels.GenderClassification), Factor: 2,
		},
		{
			Name: "dog => dog classification", From: labels.ObjectDetection,
			Trigger: matchLabel("object/dog"),
			Target:  matchTask(labels.DogClassification), Factor: 2,
		},
		{
			Name: "face => face landmarks", From: labels.FaceDetection,
			Trigger: matchLabel("face/face"),
			Target:  matchTask(labels.FaceLandmark), Factor: 2,
		},
		{
			Name: "face => emotion classification", From: labels.FaceDetection,
			Trigger: matchLabel("face/face"),
			Target:  matchTask(labels.EmotionClassification), Factor: 2,
		},
		{
			Name: "body keypoints => action classification", From: labels.PoseEstimation,
			Trigger: func(v *labels.Vocabulary, id int) bool {
				return v.Label(id).Task == labels.PoseEstimation
			},
			Target: matchTask(labels.ActionClassification), Factor: 2,
		},
		{
			Name: "wrist keypoints => hand landmarks", From: labels.PoseEstimation,
			Trigger: func(v *labels.Vocabulary, id int) bool {
				n := v.Label(id).Name
				return n == "pose/left wrist" || n == "pose/right wrist"
			},
			Target: matchTask(labels.HandLandmark), Factor: 2,
		},
		{
			Name: "indoor place => animal object detection (demote)",
			From: labels.PlaceClassification,
			Trigger: func(v *labels.Vocabulary, id int) bool {
				l := v.Label(id)
				return l.Task == labels.PlaceClassification && l.Indoor
			},
			Target: func(m *zoo.Model) bool { return m.Name == "objdet-animal" },
			Factor: 0.5,
		},
		{
			Name: "indoor place => sport action classification (demote)",
			From: labels.PlaceClassification,
			Trigger: func(v *labels.Vocabulary, id int) bool {
				l := v.Label(id)
				return l.Task == labels.PlaceClassification && l.Indoor
			},
			Target: func(m *zoo.Model) bool { return m.Name == "action-sport" },
			Factor: 0.5,
		},
		{
			Name: "outdoor place => sport action classification",
			From: labels.PlaceClassification,
			Trigger: func(v *labels.Vocabulary, id int) bool {
				l := v.Label(id)
				return l.Task == labels.PlaceClassification && !l.Indoor
			},
			Target: func(m *zoo.Model) bool { return m.Name == "action-sport" },
			Factor: 2,
		},
	}
}

// Weight bounds keep repeated rule applications finite: a rule that fires
// per triggering label (e.g. one per detected body keypoint) compounds
// multiplicatively up to these caps.
const (
	minWeight = 1.0 / 64
	maxWeight = 64
)

// Engine maintains per-model execution weights for one image and applies
// rules as labels arrive. A rule fires once per distinct triggering label,
// so multi-label evidence (many body keypoints) compounds its effect.
type Engine struct {
	vocab   *labels.Vocabulary
	zoo     *zoo.Zoo
	rules   []Rule
	weights []float64
	fired   []map[int]bool // rule index -> triggering label IDs consumed

	// siblingFactor, when in (0,1), demotes the remaining models of a
	// task once one of its models has executed — the common-sense "don't
	// immediately rerun a task whose labels you already have" heuristic
	// that keeps the rule baseline from burning its promotions on
	// redundant same-task models. 0 disables it.
	siblingFactor float64
}

// NewEngine starts an engine with uniform weights.
func NewEngine(v *labels.Vocabulary, z *zoo.Zoo, rs []Rule) *Engine {
	e := &Engine{vocab: v, zoo: z, rules: rs}
	e.weights = make([]float64, len(z.Models))
	e.fired = make([]map[int]bool, len(rs))
	e.Reset()
	return e
}

// EnableSiblingDemotion turns on demotion of a just-executed task's
// remaining models by the given factor in (0,1).
func (e *Engine) EnableSiblingDemotion(factor float64) {
	if factor <= 0 || factor >= 1 {
		panic("rules: sibling demotion factor must be in (0,1)")
	}
	e.siblingFactor = factor
}

// ObserveOutput feeds the labels a just-executed model emitted; matching
// rules adjust the weights of their target models once per distinct
// triggering label.
func (e *Engine) ObserveOutput(from *zoo.Model, out []zoo.LabelConf) {
	if e.siblingFactor > 0 {
		for mi, m := range e.zoo.Models {
			if m.Task == from.Task && m.ID != from.ID {
				w := e.weights[mi] * e.siblingFactor
				if w < minWeight {
					w = minWeight
				}
				e.weights[mi] = w
			}
		}
	}
	for ri := range e.rules {
		r := &e.rules[ri]
		if r.From != from.Task {
			continue
		}
		for _, lc := range out {
			if lc.Conf < zoo.ValuableThreshold || e.fired[ri][lc.ID] {
				continue
			}
			if r.Trigger(e.vocab, lc.ID) {
				e.fired[ri][lc.ID] = true
				for mi, m := range e.zoo.Models {
					if r.Target(m) {
						w := e.weights[mi] * r.Factor
						if w < minWeight {
							w = minWeight
						}
						if w > maxWeight {
							w = maxWeight
						}
						e.weights[mi] = w
					}
				}
			}
		}
	}
}

// Weight returns the current execution weight of model mi.
func (e *Engine) Weight(mi int) float64 { return e.weights[mi] }

// Weights returns a copy of all weights.
func (e *Engine) Weights() []float64 {
	return append([]float64(nil), e.weights...)
}

// Reset restores uniform weights for the next image.
func (e *Engine) Reset() {
	for i := range e.weights {
		e.weights[i] = 1
	}
	for i := range e.fired {
		e.fired[i] = make(map[int]bool)
	}
}

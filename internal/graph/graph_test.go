package graph

import (
	"math"
	"strings"
	"testing"

	"ams/internal/labels"
	"ams/internal/oracle"
	"ams/internal/sched"
	"ams/internal/sim"
	"ams/internal/synth"
	"ams/internal/tensor"
	"ams/internal/zoo"
)

var (
	vocab = labels.NewVocabulary()
	z     = zoo.NewZoo(vocab)
	ds    = synth.NewDataset(vocab, synth.MSCOCO(), 300, 91)
	store = oracle.Build(z, ds.Scenes)
	g     = Build(store)
)

func TestGraphShape(t *testing.T) {
	if g.NumModels != zoo.NumModels {
		t.Fatalf("graph over %d models", g.NumModels)
	}
	for m := 0; m < g.NumModels; m++ {
		if g.BaseRate[m] < 0 || g.BaseRate[m] > 1 {
			t.Fatalf("base rate out of range: %v", g.BaseRate[m])
		}
		if g.MeanValue[m] < 0 {
			t.Fatalf("negative mean value")
		}
	}
}

func TestConditionalsAreProbabilities(t *testing.T) {
	for i := 0; i < g.NumModels; i++ {
		for j := 0; j < g.NumModels; j++ {
			if i == j {
				continue
			}
			if g.CondYes[i][j] <= 0 || g.CondYes[i][j] >= 1 {
				t.Fatalf("CondYes[%d][%d]=%v not smoothed into (0,1)", i, j, g.CondYes[i][j])
			}
			if g.CondNo[i][j] <= 0 || g.CondNo[i][j] >= 1 {
				t.Fatalf("CondNo[%d][%d]=%v not smoothed into (0,1)", i, j, g.CondNo[i][j])
			}
		}
	}
}

func TestSemanticRelationshipsMined(t *testing.T) {
	// A face detector being valuable must strongly raise the probability
	// that face landmark models are valuable, and vice versa for the
	// negative conditional.
	face, _ := z.ByName("facedet-mtcnn")
	lmk, _ := z.ByName("facelmk-2dfan")
	if g.CondYes[face.ID][lmk.ID] <= g.BaseRate[lmk.ID] {
		t.Fatalf("face=>landmark lift missing: cond %v base %v",
			g.CondYes[face.ID][lmk.ID], g.BaseRate[lmk.ID])
	}
	if g.CondNo[face.ID][lmk.ID] >= g.BaseRate[lmk.ID] {
		t.Fatalf("no-face=>landmark should drop below base: cond %v base %v",
			g.CondNo[face.ID][lmk.ID], g.BaseRate[lmk.ID])
	}
	// Object detectors seeing dogs should promote breed classifiers.
	det, _ := z.ByName("objdet-accurate")
	dog, _ := z.ByName("dogcls-finegrained")
	if g.Lift(det.ID, dog.ID) <= 0 {
		t.Fatalf("degenerate lift")
	}
}

func TestTopEdgesSortedAndFormat(t *testing.T) {
	edges := g.TopEdges(15)
	if len(edges) != 15 {
		t.Fatalf("got %d edges", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		if edges[i-1].Lift < edges[i].Lift {
			t.Fatalf("edges not sorted at %d", i)
		}
	}
	names := make([]string, len(z.Models))
	for i, m := range z.Models {
		names[i] = m.Name
	}
	out := g.Format(names, 5)
	if !strings.Contains(out, "lift") {
		t.Fatalf("format missing content:\n%s", out)
	}
}

func TestBeliefUpdates(t *testing.T) {
	face, _ := z.ByName("facedet-mtcnn")
	lmk, _ := z.ByName("facelmk-2dfan")
	b := g.NewBelief()
	prior := b.Prob(lmk.ID)
	if math.Abs(prior-g.BaseRate[lmk.ID]) > 1e-9 {
		t.Fatalf("prior %v != base rate %v", prior, g.BaseRate[lmk.ID])
	}
	b.Observe(face.ID, true)
	if b.Prob(lmk.ID) <= prior {
		t.Fatalf("positive face evidence did not raise landmark belief")
	}
	if b.Prob(face.ID) != 1 {
		t.Fatalf("executed valuable model belief %v != 1", b.Prob(face.ID))
	}
	b2 := g.NewBelief()
	b2.Observe(face.ID, false)
	if b2.Prob(lmk.ID) >= prior {
		t.Fatalf("negative face evidence did not lower landmark belief")
	}
	if b2.Prob(face.ID) != 0 {
		t.Fatalf("executed valueless model belief %v != 0", b2.Prob(face.ID))
	}
}

func TestBeliefProbsStayInRange(t *testing.T) {
	rng := tensor.NewRNG(3)
	for trial := 0; trial < 20; trial++ {
		b := g.NewBelief()
		for _, m := range rng.Perm(g.NumModels) {
			b.Observe(m, rng.Bool(0.5))
			for j := 0; j < g.NumModels; j++ {
				p := b.Prob(j)
				if p < 0 || p > 1 || math.IsNaN(p) {
					t.Fatalf("belief out of range: %v", p)
				}
			}
		}
	}
}

func TestGraphPolicyBeatsRandom(t *testing.T) {
	// Evaluate on held-out scenes from the same distribution.
	test := synth.NewDataset(vocab, synth.MSCOCO(), 120, 191)
	testStore := oracle.Build(z, test.Scenes)
	rng := tensor.NewRNG(7)
	var graphN, randN int
	var graphT, randT float64
	for i := 0; i < testStore.NumScenes(); i++ {
		gr := sim.RunToRecall(testStore, i, NewValuePolicy(g, z), 1.0)
		rr := sim.RunToRecall(testStore, i, sched.NewRandom(z, rng), 1.0)
		graphN += len(gr.Executed)
		randN += len(rr.Executed)
		graphT += gr.TimeMS
		randT += rr.TimeMS
	}
	if graphN >= randN {
		t.Fatalf("graph policy executions %d not below random %d", graphN, randN)
	}
	if graphT >= randT {
		t.Fatalf("graph policy time %v not below random %v", graphT, randT)
	}
}

func TestGraphDeadlinePolicyBeatsRandom(t *testing.T) {
	test := synth.NewDataset(vocab, synth.MSCOCO(), 120, 193)
	testStore := oracle.Build(z, test.Scenes)
	rng := tensor.NewRNG(9)
	var graphR, randR float64
	const deadline = 800
	for i := 0; i < testStore.NumScenes(); i++ {
		graphR += sim.RunDeadline(testStore, i, NewDensityPolicy(g, z), deadline).Recall
		randR += sim.RunDeadline(testStore, i, sched.NewRandom(z, rng), deadline).Recall
	}
	if graphR <= randR {
		t.Fatalf("graph deadline policy (%v) not above random (%v)", graphR, randR)
	}
}

func TestDeadlinePolicyRespectsBudget(t *testing.T) {
	p := NewDensityPolicy(g, z)
	res := sim.RunDeadline(store, 0, p, 300)
	if res.TimeMS > 300+1e-9 {
		t.Fatalf("deadline violated: %v", res.TimeMS)
	}
}

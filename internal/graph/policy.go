package graph

import (
	"ams/internal/oracle"
	"ams/internal/sim"
	"ams/internal/zoo"
)

// flight tracks selections whose completion has not been observed yet,
// the bookkeeping sim.Policy requires for parallel execution.
type flight map[int]bool

func (f flight) has(m int) bool { return f[m] }

// ValuePolicy schedules models by descending expected value under the
// graph belief — a DRL-free counterpart of the Q-greedy policy. It
// implements sim.Policy.
type ValuePolicy struct {
	g      *Graph
	z      *zoo.Zoo
	belief *Belief
	fly    flight
}

// NewValuePolicy returns a fresh graph-driven policy.
func NewValuePolicy(g *Graph, z *zoo.Zoo) *ValuePolicy { return &ValuePolicy{g: g, z: z} }

// Name implements sim.Policy.
func (p *ValuePolicy) Name() string { return "Graph" }

// Reset implements sim.Policy.
func (p *ValuePolicy) Reset(int) {
	p.belief = p.g.NewBelief()
	p.fly = flight{}
}

// Next implements sim.Policy.
func (p *ValuePolicy) Next(t *oracle.Tracker, c sim.Constraints) int {
	best, bestV := -1, 0.0
	for _, m := range t.Unexecuted() {
		if p.fly.has(m) || !c.Allows(p.z.Models[m]) {
			continue
		}
		v := p.belief.ExpectedValue(m)
		if best < 0 || v > bestV {
			best, bestV = m, v
		}
	}
	if best >= 0 {
		p.fly[best] = true
	}
	return best
}

// Observe implements sim.Policy: the model was valuable when it
// emitted any label at or above the threshold.
func (p *ValuePolicy) Observe(m int, out zoo.Output) {
	delete(p.fly, m)
	p.belief.Observe(m, out.Value(zoo.ValuableThreshold) > 0)
}

// DensityPolicy is the graph analogue of Algorithm 1: expected value per
// unit time among models that still fit the budget. It implements
// sim.Policy.
type DensityPolicy struct {
	g      *Graph
	z      *zoo.Zoo
	belief *Belief
	fly    flight
}

// NewDensityPolicy returns the graph-driven cost-aware policy.
func NewDensityPolicy(g *Graph, z *zoo.Zoo) *DensityPolicy {
	return &DensityPolicy{g: g, z: z}
}

// Name implements sim.Policy.
func (p *DensityPolicy) Name() string { return "Graph" }

// Reset implements sim.Policy.
func (p *DensityPolicy) Reset(int) {
	p.belief = p.g.NewBelief()
	p.fly = flight{}
}

// Next implements sim.Policy.
func (p *DensityPolicy) Next(t *oracle.Tracker, c sim.Constraints) int {
	best, bestD := -1, 0.0
	for _, m := range t.Unexecuted() {
		if p.fly.has(m) {
			continue
		}
		mod := p.z.Models[m]
		if !c.Allows(mod) {
			continue
		}
		d := p.belief.ExpectedValue(m) / mod.TimeMS
		if best < 0 || d > bestD {
			best, bestD = m, d
		}
	}
	if best >= 0 {
		p.fly[best] = true
	}
	return best
}

// Observe implements sim.Policy.
func (p *DensityPolicy) Observe(m int, out zoo.Output) {
	delete(p.fly, m)
	p.belief.Observe(m, out.Value(zoo.ValuableThreshold) > 0)
}

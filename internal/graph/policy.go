package graph

import (
	"ams/internal/oracle"
	"ams/internal/zoo"
)

// OrderPolicy schedules models by descending expected value under the
// graph belief — a DRL-free counterpart of the Q-greedy policy. It
// implements sim.OrderPolicy.
type OrderPolicy struct {
	g      *Graph
	belief *Belief
}

// NewOrderPolicy returns a fresh graph-driven policy.
func NewOrderPolicy(g *Graph) *OrderPolicy { return &OrderPolicy{g: g} }

// Name implements sim.OrderPolicy.
func (p *OrderPolicy) Name() string { return "Graph" }

// Reset implements sim.OrderPolicy.
func (p *OrderPolicy) Reset(int) { p.belief = p.g.NewBelief() }

// Next implements sim.OrderPolicy.
func (p *OrderPolicy) Next(t *oracle.Tracker) int {
	best, bestV := -1, 0.0
	for _, m := range t.Unexecuted() {
		v := p.belief.ExpectedValue(m)
		if best < 0 || v > bestV {
			best, bestV = m, v
		}
	}
	return best
}

// Observe implements sim.OrderPolicy: the model was valuable when it
// emitted any label at or above the threshold.
func (p *OrderPolicy) Observe(m int, out zoo.Output) {
	p.belief.Observe(m, out.Value(zoo.ValuableThreshold) > 0)
}

// DeadlinePolicy is the graph analogue of Algorithm 1: expected value per
// unit time among models that still fit the budget. It implements
// sim.DeadlinePolicy.
type DeadlinePolicy struct {
	g      *Graph
	z      *zoo.Zoo
	belief *Belief
}

// NewDeadlinePolicy returns the graph-driven deadline policy.
func NewDeadlinePolicy(g *Graph, z *zoo.Zoo) *DeadlinePolicy {
	return &DeadlinePolicy{g: g, z: z}
}

// Name implements sim.DeadlinePolicy.
func (p *DeadlinePolicy) Name() string { return "Graph" }

// Reset implements sim.DeadlinePolicy.
func (p *DeadlinePolicy) Reset(int) { p.belief = p.g.NewBelief() }

// Next implements sim.DeadlinePolicy.
func (p *DeadlinePolicy) Next(t *oracle.Tracker, remainingMS float64) int {
	best, bestD := -1, 0.0
	for _, m := range t.Unexecuted() {
		mt := p.z.Models[m].TimeMS
		if mt > remainingMS {
			continue
		}
		d := p.belief.ExpectedValue(m) / mt
		if best < 0 || d > bestD {
			best, bestD = m, d
		}
	}
	return best
}

// Observe implements sim.DeadlinePolicy.
func (p *DeadlinePolicy) Observe(m int, out zoo.Output) {
	p.belief.Observe(m, out.Value(zoo.ValuableThreshold) > 0)
}

// Package graph implements the model-relationship graph the paper's
// conclusion proposes as future work: a fast-to-construct statistical
// summary of how models' labeling capacities relate ("if a pose estimator
// found keypoints, an action classifier will probably produce something
// valuable too").
//
// The graph is mined in one pass over oracle ground truth: for every
// ordered model pair (i, j) it estimates P(j valuable | i valuable) and
// P(j valuable | i not valuable), alongside each model's base rate and
// expected valuable output value. A naive-Bayes belief update over these
// tables yields a lightweight scheduling policy that needs no neural
// network at all — a useful baseline between the handcrafted rules and
// the DRL agent.
package graph

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ams/internal/oracle"
)

// Graph is the mined model-relationship graph.
type Graph struct {
	NumModels int

	// BaseRate[m] is P(model m emits valuable output) over the corpus.
	BaseRate []float64
	// MeanValue[m] is E[valuable output value of m | m valuable].
	MeanValue []float64
	// CondYes[i][j] is P(j valuable | i valuable).
	CondYes [][]float64
	// CondNo[i][j] is P(j valuable | i not valuable).
	CondNo [][]float64

	scenes int
}

// Build mines the graph from a ground-truth store in a single pass.
func Build(st *oracle.Store) *Graph {
	n := st.NumModels()
	g := &Graph{
		NumModels: n,
		BaseRate:  make([]float64, n),
		MeanValue: make([]float64, n),
		CondYes:   make([][]float64, n),
		CondNo:    make([][]float64, n),
		scenes:    st.NumScenes(),
	}
	yesCount := make([]float64, n)
	valueSum := make([]float64, n)
	coYes := make([][]float64, n) // i valuable and j valuable
	noCount := make([]float64, n) // i not valuable
	coNo := make([][]float64, n)  // i not valuable and j valuable
	for i := 0; i < n; i++ {
		g.CondYes[i] = make([]float64, n)
		g.CondNo[i] = make([]float64, n)
		coYes[i] = make([]float64, n)
		coNo[i] = make([]float64, n)
	}
	valuable := make([]bool, n)
	for s := 0; s < st.NumScenes(); s++ {
		for m := 0; m < n; m++ {
			v := st.ModelValue(s, m)
			valuable[m] = v > 0
			if valuable[m] {
				yesCount[m]++
				valueSum[m] += v
			} else {
				noCount[m]++
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j || !valuable[j] {
					continue
				}
				if valuable[i] {
					coYes[i][j]++
				} else {
					coNo[i][j]++
				}
			}
		}
	}
	total := float64(st.NumScenes())
	for m := 0; m < n; m++ {
		g.BaseRate[m] = yesCount[m] / total
		if yesCount[m] > 0 {
			g.MeanValue[m] = valueSum[m] / yesCount[m]
		}
	}
	// Laplace smoothing keeps the conditionals away from 0/1 so the
	// log-odds belief update stays finite.
	const alpha = 1
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			g.CondYes[i][j] = (coYes[i][j] + alpha*g.BaseRate[j]) / (yesCount[i] + alpha)
			g.CondNo[i][j] = (coNo[i][j] + alpha*g.BaseRate[j]) / (noCount[i] + alpha)
		}
	}
	return g
}

// Lift returns CondYes[i][j] / BaseRate[j]: how much model i being
// valuable raises the odds of j being valuable (1 = independent).
func (g *Graph) Lift(i, j int) float64 {
	if g.BaseRate[j] <= 0 {
		return 1
	}
	return g.CondYes[i][j] / g.BaseRate[j]
}

// Edge is one directed relationship.
type Edge struct {
	From, To int
	Lift     float64
}

// TopEdges returns the k strongest positive relationships by lift,
// considering only pairs with meaningful base rates.
func (g *Graph) TopEdges(k int) []Edge {
	var edges []Edge
	for i := 0; i < g.NumModels; i++ {
		for j := 0; j < g.NumModels; j++ {
			if i == j || g.BaseRate[j] < 0.01 {
				continue
			}
			edges = append(edges, Edge{From: i, To: j, Lift: g.Lift(i, j)})
		}
	}
	sort.Slice(edges, func(a, b int) bool { return edges[a].Lift > edges[b].Lift })
	if k > len(edges) {
		k = len(edges)
	}
	return edges[:k]
}

// Format renders the strongest edges with model names.
func (g *Graph) Format(names []string, k int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "model-relationship graph (%d scenes, top %d edges by lift)\n", g.scenes, k)
	for _, e := range g.TopEdges(k) {
		fmt.Fprintf(&b, "  %-22s -> %-22s lift %.2f (P %.2f over base %.2f)\n",
			names[e.From], names[e.To], e.Lift, g.CondYes[e.From][e.To], g.BaseRate[e.To])
	}
	return b.String()
}

// Belief tracks per-model valuable-probability estimates for one image,
// updated by naive-Bayes log-odds accumulation as executions reveal which
// models were valuable.
type Belief struct {
	g      *Graph
	logit  []float64
	known  []bool // model executed: belief pinned to the observation
	actual []bool
}

// NewBelief starts from the base rates.
func (g *Graph) NewBelief() *Belief {
	b := &Belief{
		g:      g,
		logit:  make([]float64, g.NumModels),
		known:  make([]bool, g.NumModels),
		actual: make([]bool, g.NumModels),
	}
	for m := range b.logit {
		b.logit[m] = logit(g.BaseRate[m])
	}
	return b
}

// Observe records that model i executed and whether it produced valuable
// output, updating every unexecuted model's belief.
func (b *Belief) Observe(i int, valuable bool) {
	b.known[i] = true
	b.actual[i] = valuable
	for j := range b.logit {
		if j == i || b.known[j] {
			continue
		}
		var cond float64
		if valuable {
			cond = b.g.CondYes[i][j]
		} else {
			cond = b.g.CondNo[i][j]
		}
		// Naive-Bayes evidence: add the log-likelihood ratio vs the base.
		b.logit[j] += logit(cond) - logit(b.g.BaseRate[j])
	}
}

// Prob returns the current probability model m would be valuable. For an
// executed model it returns the observed outcome (0 or 1).
func (b *Belief) Prob(m int) float64 {
	if b.known[m] {
		if b.actual[m] {
			return 1
		}
		return 0
	}
	return sigmoid(b.logit[m])
}

// ExpectedValue returns Prob(m) times the model's mean valuable value —
// the graph policy's analogue of the DRL agent's Q value.
func (b *Belief) ExpectedValue(m int) float64 {
	return b.Prob(m) * b.g.MeanValue[m]
}

func logit(p float64) float64 {
	const eps = 1e-4
	if p < eps {
		p = eps
	}
	if p > 1-eps {
		p = 1 - eps
	}
	return math.Log(p / (1 - p))
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

package batch

import (
	"testing"

	"ams/internal/leaktest"
)

// TestMain fails the package when sealed-batch runners or lane hold
// timers outlive the tests.
func TestMain(m *testing.M) {
	leaktest.VerifyTestMain(m)
}

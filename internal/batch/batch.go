// Package batch implements cross-item dynamic batching for the serving
// layer: the raw-speed lever of real GPU serving that the paper's
// one-item-at-a-time formulation never had. Each model gets a lane;
// workers enqueue their items' pending requests for a model into its
// lane, and the batcher coalesces the lane's demand into one batched
// execution whose simulated cost is sub-linear in the batch size
// (zoo.Model.BatchCostMS: a fixed launch overhead plus a small per-item
// marginal).
//
// The flush policy bounds how long a lone request can wait for
// batch-mates: a lane seals its batch when it reaches Config.MaxBatch
// requests, or when the oldest request has waited Config.MaxHoldMS on
// the simulated clock, whichever comes first — so a cold model's single
// request is delayed by at most the hold, never starved.
//
// Memory coalescing is where batching buys the server throughput under a
// GPU budget: a model's weights are resident once no matter how many
// items its batch serves, so a sealed batch whose requests own their
// footprint reserves the model's MemMB once — not once per request —
// against the shared accountant. On memory-bound traces that collapses
// n identical reservations into one, which is exactly what lets more
// items make progress at the same worker count and budget. With
// MaxBatch = 1 every batch holds one request and the runtime reproduces
// the unbatched reserve → sleep → release sequence exactly.
package batch

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ams/internal/obs"
	"ams/internal/vtime"
	"ams/internal/zoo"
)

// Memory is the reservation contract the batcher drives — implemented by
// the server's shared accountant. Reserve blocks until the footprint
// fits the budget and returns false only when it never could (the
// footprint exceeds the whole budget). A nil Memory disables
// reservations (no budget configured).
type Memory interface {
	Reserve(mb float64) bool
	Release(mb float64)
}

// Config parameterizes the coalescing runtime.
type Config struct {
	// MaxBatch seals a lane's batch at this many requests (>= 1). One
	// means every request executes alone — the unbatched cost model
	// through the batching machinery.
	MaxBatch int
	// MaxHoldMS bounds, on the simulated clock, how long a lane holds
	// its oldest request waiting for batch-mates before flushing. Zero
	// flushes immediately: batches form only at MaxBatch.
	MaxHoldMS float64
	// TimeScale converts simulated milliseconds to real ones (the
	// server's Config.TimeScale).
	TimeScale float64
	// Metrics, when non-nil, receives batch-size, hold-span and
	// flush-cause observations. Nil disables instrumentation entirely.
	Metrics *Metrics
}

// Stats counts the runtime's activity. SavedGPUMS is the simulated GPU
// time batching avoided versus unbatched execution — for a batch of n,
// n*TimeMS - BatchCostMS(n) = (n-1)*BatchLaunchMS. SavedMemMB sums the
// footprint reservations coalesced away: (k-1)*MemMB for a batch with k
// footprint-owning requests.
type Stats struct {
	Batches      int64
	Requests     int64
	LargestBatch int
	SizeFlushes  int64 // batches sealed by reaching MaxBatch
	HoldFlushes  int64 // batches sealed by the hold timer (or zero hold)
	SavedGPUMS   float64
	SavedMemMB   float64
}

// request is one item's pending demand for a model.
type request struct {
	done  chan struct{}
	owned bool          // the batch reserves/releases the model footprint for it
	ref   *obs.BatchRef // fan-in telemetry handoff; nil when the waiter isn't tracing
}

// lane collects one model's pending requests until a flush seals them.
type lane struct {
	mu        sync.Mutex
	gen       uint64 // bumped at each seal; stale hold timers check it
	reqs      []request
	queued    atomic.Int64 // lock-free mirror of len(reqs) for Queued
	heldSince time.Time    // wall stamp of the oldest unsealed request (metrics only)
}

// Batcher is the coalescing runtime. Create one with New; it shares the
// server's timer wheel and stops with it (no goroutines of its own
// outside running batches).
type Batcher struct {
	models []*zoo.Model
	cfg    Config
	mem    Memory
	wheel  *vtime.Wheel
	lanes  []lane

	statMu sync.Mutex
	stats  Stats
}

// New builds a batcher over the model registry. Configuration errors are
// panics: the batcher is internal machinery and the server validates its
// user-facing knobs before building one.
func New(models []*zoo.Model, mem Memory, wheel *vtime.Wheel, cfg Config) *Batcher {
	if cfg.MaxBatch < 1 {
		panic(fmt.Sprintf("batch: max batch %d < 1", cfg.MaxBatch))
	}
	if cfg.MaxHoldMS < 0 {
		panic(fmt.Sprintf("batch: negative hold %v ms", cfg.MaxHoldMS))
	}
	if cfg.TimeScale <= 0 {
		panic(fmt.Sprintf("batch: non-positive time scale %v", cfg.TimeScale))
	}
	if wheel == nil {
		panic("batch: nil timer wheel")
	}
	return &Batcher{models: models, cfg: cfg, mem: mem, wheel: wheel, lanes: make([]lane, len(models))}
}

// Enqueue registers one request for model m and returns immediately;
// done is closed when the batched execution containing the request
// completes. owned asks the batch to hold the model's footprint against
// the Memory on the request's behalf (the serial path); a non-owned
// request's caller keeps its own reservation (the parallel path, whose
// coordinator releases at commit) and the batch only shares the
// execution. ref, when non-nil, is filled with the batch's fan-in
// identity (id, size, seal stamp, flush cause) before done closes, so
// a tracing waiter can record its batch-hold and exec spans; nil keeps
// the batcher clock-free for that request.
func (b *Batcher) Enqueue(m int, owned bool, done chan struct{}, ref *obs.BatchRef) {
	ln := &b.lanes[m]
	ln.mu.Lock()
	ln.reqs = append(ln.reqs, request{done: done, owned: owned, ref: ref})
	ln.queued.Add(1)
	if len(ln.reqs) == 1 {
		ln.heldSince = b.cfg.Metrics.holdStart()
	}
	switch {
	case len(ln.reqs) >= b.cfg.MaxBatch:
		b.seal(m, ln, true)
	case b.cfg.MaxHoldMS <= 0:
		b.seal(m, ln, false)
	case len(ln.reqs) == 1:
		// First request of a fresh batch: arm the lane's hold timer. The
		// generation check makes a timer that lost the race to a size
		// flush (or to a later batch entirely) a no-op.
		gen := ln.gen
		b.wheel.AfterFunc(b.scaled(b.cfg.MaxHoldMS), func() {
			ln.mu.Lock()
			if ln.gen == gen && len(ln.reqs) > 0 {
				b.seal(m, ln, false)
			}
			ln.mu.Unlock()
		})
	}
	ln.mu.Unlock()
}

// Queued reports how many requests are waiting, unsealed, in model m's
// lane right now. This is the batching demand surfaced to policies
// through sim.Constraints: a model with waiters is effectively cheaper
// to join. Sealed (already running) batches no longer count — a new
// request would start a fresh batch.
func (b *Batcher) Queued(m int) int {
	return int(b.lanes[m].queued.Load())
}

// Stats returns a snapshot of the runtime's counters.
func (b *Batcher) Stats() Stats {
	b.statMu.Lock()
	defer b.statMu.Unlock()
	return b.stats
}

// seal detaches the lane's waiting requests as one batch and runs it in
// its own goroutine. Called with the lane locked; the caller unlocks.
func (b *Batcher) seal(m int, ln *lane, sizeFlush bool) {
	reqs := ln.reqs
	ln.reqs = nil
	ln.gen++
	ln.queued.Add(int64(-len(reqs)))
	b.cfg.Metrics.sealed(len(reqs), sizeFlush, ln.heldSince, b.cfg.TimeScale)
	ln.heldSince = time.Time{}
	go b.run(m, reqs, sizeFlush)
}

// run executes one sealed batch: reserve the model's footprint once if
// any request owns it, sleep the sub-linear batched cost on the wheel,
// release, and wake every member. Tracing waiters' BatchRefs are
// filled before their done channels close — the channel close is the
// happens-before edge that publishes the ref to the waiter.
func (b *Batcher) run(m int, reqs []request, sizeFlush bool) {
	mod := b.models[m]
	n := len(reqs)
	ownedReqs := 0
	traced := false
	for _, r := range reqs {
		if r.owned {
			ownedReqs++
		}
		if r.ref != nil {
			traced = true
		}
	}
	var sealT time.Time
	if traced {
		// The seal instant (execution begins here, including any wait on
		// the shared accountant below). Read only when some waiter is
		// tracing, so the disabled path stays clock-free.
		sealT = time.Now()
	}
	reservedMB := 0.0
	if b.mem != nil && ownedReqs > 0 {
		reservedMB = mod.MemMB
		if !b.mem.Reserve(reservedMB) {
			// Unreachable through the server: policies only select models
			// that fit the observed availability, which never exceeds the
			// budget. Kept as a contract assertion, like the accountant's.
			panic(fmt.Sprintf("batch: model %d footprint %v MB exceeds the whole memory budget", m, mod.MemMB))
		}
	}
	b.wheel.Sleep(b.scaled(mod.BatchCostMS(n)))
	if reservedMB > 0 {
		b.mem.Release(reservedMB)
	}
	if traced {
		id := obs.NextBatchID()
		flush := "hold"
		if sizeFlush {
			flush = "size"
		}
		for _, r := range reqs {
			if r.ref != nil {
				*r.ref = obs.BatchRef{Batch: id, N: n, Seal: sealT, Flush: flush}
			}
		}
	}
	for _, r := range reqs {
		close(r.done)
	}
	b.statMu.Lock()
	b.stats.Batches++
	b.stats.Requests += int64(n)
	if n > b.stats.LargestBatch {
		b.stats.LargestBatch = n
	}
	if sizeFlush {
		b.stats.SizeFlushes++
	} else {
		b.stats.HoldFlushes++
	}
	b.stats.SavedGPUMS += float64(n)*mod.TimeMS - mod.BatchCostMS(n)
	if reservedMB > 0 && ownedReqs > 1 {
		b.stats.SavedMemMB += float64(ownedReqs-1) * mod.MemMB
	}
	b.statMu.Unlock()
}

// scaled converts simulated milliseconds to a real duration.
func (b *Batcher) scaled(ms float64) time.Duration {
	return time.Duration(ms * b.cfg.TimeScale * float64(time.Millisecond))
}

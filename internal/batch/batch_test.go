package batch

import (
	"sync"
	"testing"
	"time"

	"ams/internal/obs"
	"ams/internal/vtime"
	"ams/internal/zoo"
)

// testModels is a two-model registry with a controlled cost split:
// TimeMS 100 = 70 launch + 30 marginal, footprint 1000 MB.
func testModels() []*zoo.Model {
	return []*zoo.Model{
		{ID: 0, TimeMS: 100, MemMB: 1000, BatchLaunchMS: 70, BatchMarginalMS: 30},
		{ID: 1, TimeMS: 50, MemMB: 500, BatchLaunchMS: 35, BatchMarginalMS: 15},
	}
}

// recMem records reservation traffic.
type recMem struct {
	mu     sync.Mutex
	events []float64 // +mb on reserve, -mb on release
}

func (r *recMem) Reserve(mb float64) bool {
	r.mu.Lock()
	r.events = append(r.events, mb)
	r.mu.Unlock()
	return true
}

func (r *recMem) Release(mb float64) {
	r.mu.Lock()
	r.events = append(r.events, -mb)
	r.mu.Unlock()
}

func (r *recMem) trace() []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]float64(nil), r.events...)
}

func newBatcher(t *testing.T, mem Memory, cfg Config) (*Batcher, *vtime.Wheel) {
	t.Helper()
	w := vtime.NewWheel()
	t.Cleanup(w.Stop)
	return New(testModels(), mem, w, cfg), w
}

func TestSizeFlushCoalescesDemand(t *testing.T) {
	mem := &recMem{}
	b, _ := newBatcher(t, mem, Config{MaxBatch: 3, MaxHoldMS: 1e6, TimeScale: 0.01})
	dones := make([]chan struct{}, 3)
	for i := range dones {
		dones[i] = make(chan struct{})
		b.Enqueue(0, true, dones[i], nil)
	}
	for _, d := range dones {
		<-d // the size flush must fire well before the enormous hold
	}
	st := b.Stats()
	if st.Batches != 1 || st.Requests != 3 || st.SizeFlushes != 1 || st.LargestBatch != 3 {
		t.Fatalf("stats %+v, want one size-flushed batch of 3", st)
	}
	// Saved GPU time: 3*100 - (70 + 3*30) = 140 = (n-1)*launch.
	if st.SavedGPUMS != 140 {
		t.Fatalf("saved %v GPU-ms, want 140", st.SavedGPUMS)
	}
	// Memory coalescing: three owned requests, ONE reservation.
	want := []float64{1000, -1000}
	got := mem.trace()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("reservation trace %v, want %v", got, want)
	}
	if st.SavedMemMB != 2000 {
		t.Fatalf("saved %v MB of reservations, want 2000", st.SavedMemMB)
	}
}

func TestHoldFlushNeverStarvesALoneRequest(t *testing.T) {
	b, _ := newBatcher(t, nil, Config{MaxBatch: 8, MaxHoldMS: 5, TimeScale: 0.01})
	done := make(chan struct{})
	b.Enqueue(1, false, done, nil)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("lone request starved waiting for batch-mates")
	}
	st := b.Stats()
	if st.Batches != 1 || st.HoldFlushes != 1 || st.LargestBatch != 1 {
		t.Fatalf("stats %+v, want one hold-flushed batch of 1", st)
	}
	if st.SavedGPUMS != 0 {
		t.Fatalf("a batch of one saved %v GPU-ms, want 0", st.SavedGPUMS)
	}
}

// TestBatchOfOneMatchesUnbatchedSequence pins the MaxBatch=1 parity
// contract: one reserve of the full footprint, a sleep of exactly the
// nominal TimeMS (BatchCostMS(1) == TimeMS), one release.
func TestBatchOfOneMatchesUnbatchedSequence(t *testing.T) {
	mem := &recMem{}
	b, _ := newBatcher(t, mem, Config{MaxBatch: 1, MaxHoldMS: 10, TimeScale: 0.1})
	start := time.Now()
	done := make(chan struct{})
	b.Enqueue(0, true, done, nil)
	<-done
	// 100 simulated ms at TimeScale 0.1 = 10 ms real.
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("batch of one slept %v, want >= the full nominal 10ms", elapsed)
	}
	got := mem.trace()
	if len(got) != 2 || got[0] != 1000 || got[1] != -1000 {
		t.Fatalf("reservation trace %v, want [1000 -1000]", got)
	}
	st := b.Stats()
	if st.SizeFlushes != 1 {
		t.Fatalf("stats %+v: a MaxBatch=1 enqueue must seal by size immediately", st)
	}
}

func TestQueuedTracksUnsealedDemand(t *testing.T) {
	b, _ := newBatcher(t, nil, Config{MaxBatch: 2, MaxHoldMS: 1e6, TimeScale: 0.01})
	if b.Queued(0) != 0 {
		t.Fatalf("fresh lane queued %d", b.Queued(0))
	}
	d1, d2 := make(chan struct{}), make(chan struct{})
	b.Enqueue(0, false, d1, nil)
	if b.Queued(0) != 1 {
		t.Fatalf("queued %d after one enqueue, want 1", b.Queued(0))
	}
	if b.Queued(1) != 0 {
		t.Fatalf("lane 1 queued %d, want 0 (demand is per model)", b.Queued(1))
	}
	b.Enqueue(0, false, d2, nil) // second request seals the batch synchronously
	if b.Queued(0) != 0 {
		t.Fatalf("queued %d after seal, want 0 (running batches are not joinable)", b.Queued(0))
	}
	<-d1
	<-d2
}

// TestConcurrentEnqueues hammers two lanes from many goroutines (run
// with -race): every request completes and the counters balance.
func TestConcurrentEnqueues(t *testing.T) {
	mem := &recMem{}
	b, _ := newBatcher(t, mem, Config{MaxBatch: 4, MaxHoldMS: 2, TimeScale: 0.001})
	const n = 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			done := make(chan struct{})
			b.Enqueue(i%2, i%3 == 0, done, nil)
			<-done
		}(i)
	}
	wg.Wait()
	st := b.Stats()
	if st.Requests != n {
		t.Fatalf("%d requests recorded, want %d", st.Requests, n)
	}
	if st.Batches == 0 || st.Batches > n {
		t.Fatalf("implausible batch count %d", st.Batches)
	}
	if b.Queued(0) != 0 || b.Queued(1) != 0 {
		t.Fatalf("demand left after drain: %d/%d", b.Queued(0), b.Queued(1))
	}
	// Reservation traffic must balance to zero.
	var sum float64
	for _, e := range mem.trace() {
		sum += e
	}
	if sum != 0 {
		t.Fatalf("unbalanced reservations: %v MB leaked", sum)
	}
}

// TestBatchRefFanIn: every tracing waiter's BatchRef is filled — with
// one shared batch id, the coalesced size, a real seal stamp, and the
// flush cause — before its done channel closes; a nil ref waiter in the
// same batch is untouched and the disabled path stays clock-free.
func TestBatchRefFanIn(t *testing.T) {
	b, _ := newBatcher(t, nil, Config{MaxBatch: 3, MaxHoldMS: 1e6, TimeScale: 0.01})
	refs := []*obs.BatchRef{{}, {}, nil}
	dones := make([]chan struct{}, 3)
	for i := range dones {
		dones[i] = make(chan struct{})
		b.Enqueue(0, false, dones[i], refs[i])
	}
	for _, d := range dones {
		<-d
	}
	if refs[0].Batch == 0 || refs[0].Batch != refs[1].Batch {
		t.Fatalf("waiters must share one nonzero batch id: %d vs %d", refs[0].Batch, refs[1].Batch)
	}
	for i, ref := range refs[:2] {
		if ref.N != 3 {
			t.Fatalf("ref[%d].N = %d, want 3", i, ref.N)
		}
		if ref.Seal.IsZero() {
			t.Fatalf("ref[%d] missing the seal stamp", i)
		}
		if ref.Flush != "size" {
			t.Fatalf("ref[%d].Flush = %q, want size", i, ref.Flush)
		}
	}
}

// TestBatchRefHoldFlush: a lone request sealed by the hold timer reads
// flush cause "hold" and batch size 1.
func TestBatchRefHoldFlush(t *testing.T) {
	b, _ := newBatcher(t, nil, Config{MaxBatch: 8, MaxHoldMS: 5, TimeScale: 0.01})
	ref := &obs.BatchRef{}
	done := make(chan struct{})
	b.Enqueue(1, false, done, ref)
	<-done
	if ref.Batch == 0 || ref.N != 1 || ref.Flush != "hold" {
		t.Fatalf("hold-flushed ref = %+v, want n=1 flush=hold", ref)
	}
}

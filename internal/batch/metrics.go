package batch

import (
	"time"

	"ams/internal/obs"
)

// Metrics is the batcher's telemetry hook set. A nil *Metrics (the
// default) disables instrumentation: every method no-ops and the lane
// hot path never stamps the clock.
type Metrics struct {
	// Size distributes sealed batch sizes (request counts; the
	// histogram's geometric buckets are unitless here).
	Size *obs.Histogram
	// Hold distributes, in simulated seconds, how long each sealed
	// batch's oldest request waited for batch-mates.
	Hold *obs.Histogram
	// SizeFlush / HoldFlush split sealed batches by flush cause.
	SizeFlush *obs.Counter
	HoldFlush *obs.Counter
}

// NewMetrics registers the batching instruments (nil on a nil
// registry).
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Size: reg.Histogram("ams_batch_size",
			"Sealed batch sizes in requests (buckets are unitless)"),
		Hold: reg.Histogram("ams_batch_hold_seconds",
			"Simulated seconds a sealed batch's oldest request waited for batch-mates"),
		SizeFlush: reg.Counter("ams_batch_flush_total",
			"Sealed batches by flush cause", obs.L("cause", "size")),
		HoldFlush: reg.Counter("ams_batch_flush_total",
			"Sealed batches by flush cause", obs.L("cause", "hold")),
	}
}

// holdStart stamps the wall clock for a lane's hold span — the zero
// time when metrics are disabled, so the disabled path never reads the
// clock.
func (m *Metrics) holdStart() time.Time {
	if m == nil {
		return time.Time{}
	}
	return obs.Started(m.Hold)
}

// sealed records one sealed batch: size, flush cause, and the oldest
// request's hold converted onto the simulated clock.
func (m *Metrics) sealed(n int, sizeFlush bool, heldSince time.Time, scale float64) {
	if m == nil {
		return
	}
	m.Size.Observe(float64(n))
	if sizeFlush {
		m.SizeFlush.Inc()
	} else {
		m.HoldFlush.Inc()
	}
	m.Hold.ObserveScaledSince(heldSince, scale)
}

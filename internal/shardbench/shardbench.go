// Package shardbench holds the multi-shard scale-out comparison for
// cmd/amsbench. It lives outside internal/experiments because it
// drives the PUBLIC ams server (shards, routing and journal segments
// are wired in the root package, not the internal layers), and the
// root package's own benchmarks import internal/experiments — an
// experiments → ams import would cycle through them.
package shardbench

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strings"
	"sync"

	"ams"

	"ams/internal/experiments"
	"ams/internal/metrics"
)

// ShardingExtResult compares the public server unsharded versus sharded
// at EQUAL total resources: every mode gets the same worker count, the
// same summed GPU budget, the same journaled ingestion stream, and the
// same submission mix — only the shard count and the router's placement
// policy change. Each shard is a full server slice (its own worker pool,
// memory accountant and journal segment), so the comparison isolates
// what scale-out buys: admission, journaling, memory accounting and
// batching all split into independent domains instead of contending on
// one.
type ShardingExtResult struct {
	Workers int
	MemGB   float64 // total across shards
	Items   int

	Modes       []string
	ItemsPerSec []float64 // merged completions per simulated second
	Speedup     []float64 // vs mode 0 (unsharded)
	Recall      []float64 // over ground-truth-backed items
	Steals      []float64 // items executed off their placed shard
}

// shardMode is one row of the comparison.
type shardMode struct {
	name      string
	shards    int
	placement string
	steal     bool
}

// seedFor derives a stable per-purpose seed, mirroring Lab.seedFor.
func seedFor(seed uint64, purpose string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", seed, purpose)
	return h.Sum64()
}

// ExtSharding runs the scale-out extension on MSCOCO with a DuelingDQN
// agent driving Algorithm 1 on every shard. The trace mixes held-out
// test images (recall is measured on these) with journaled external
// items from concurrent clients, under a compaction-heavy durability
// policy: every corpus snapshots every 16 commits, so the dominant
// serial section is compaction under the journal mutex. A monolithic
// corpus stalls all sixteen workers while it rewrites its whole
// history; a segment stalls four of them for a quarter as long, and the
// other segments keep labeling through the stall. logf receives
// progress lines; nil discards them.
func ExtSharding(cfg experiments.Config, logf func(format string, args ...any)) ShardingExtResult {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	sys, err := ams.New(ams.Config{
		Dataset:   ams.DatasetMSCOCO,
		NumImages: cfg.DatasetSize,
		Seed:      seedFor(cfg.Seed, "ext-sharding/system"),
	})
	if err != nil {
		panic(err)
	}
	agent, err := sys.TrainAgent(ams.TrainOptions{
		Algorithm: ams.DuelingDQN,
		Epochs:    cfg.Epochs,
		Hidden:    []int{32},
		Seed:      seedFor(cfg.Seed, "ext-sharding/agent"),
	})
	if err != nil {
		panic(err)
	}

	res := ShardingExtResult{
		Workers: 16,
		MemGB:   10,
		Items:   3840,
	}
	modes := []shardMode{
		{name: "1 shard", shards: 1},
		{name: "4 shards, hash", shards: 4, placement: "hash"},
		{name: "4 shards, affinity", shards: 4, placement: "affinity"},
		{name: "4 shards, affinity+steal", shards: 4, placement: "affinity", steal: true},
		{name: "2 shards, affinity+steal", shards: 2, placement: "affinity", steal: true},
	}
	// One core runs the whole comparison, so a single trace is at the
	// mercy of GC and scheduler alignment; the median of three reps is
	// what gets reported.
	const reps = 3
	for _, m := range modes {
		var hz, rc, stl []float64
		for r := 0; r < reps; r++ {
			logf("ext-sharding: %s rep %d/%d (%d items)", m.name, r+1, reps, res.Items)
			st := runShardTrace(sys, agent, m, res)
			hz = append(hz, st.ThroughputHz)
			rc = append(rc, st.AvgRecall)
			stl = append(stl, float64(st.Steals))
		}
		res.Modes = append(res.Modes, m.name)
		res.ItemsPerSec = append(res.ItemsPerSec, median(hz))
		res.Speedup = append(res.Speedup, median(hz)/max(res.ItemsPerSec[0], 1e-9))
		res.Recall = append(res.Recall, median(rc))
		res.Steals = append(res.Steals, median(stl))
	}
	return res
}

// median reduces one mode's repetitions to its middle observation.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// runShardTrace serves the mixed trace through one mode's server and
// reduces the completed run. Sixteen client goroutines each submit an
// interleaved stream of test images and freshly generated external
// items (the external half is what the journal sees); total workers,
// total memory and the item mix are identical across modes.
func runShardTrace(sys *ams.System, agent *ams.Agent, m shardMode, res ShardingExtResult) ams.ServeStats {
	dir, err := os.MkdirTemp("", "ams-ext-sharding-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	// The resident-memo budget is a TOTAL of 256 split across segments,
	// like workers and memory: the unsharded journal carries the whole
	// admission, memoization and eviction load on one mutex. Compaction
	// runs under the same policy everywhere — a snapshot every 16 commits
	// of the corpus that took them — which is where segmentation pays:
	// a monolithic corpus stalls every worker while it compacts its whole
	// history, a segment stalls a quarter of them for a quarter as long.
	corpus, err := sys.OpenCorpusDir(dir, m.shards, ams.CorpusOptions{
		MaxResident:   256 / m.shards,
		SnapshotEvery: 16,
	})
	if err != nil {
		panic(err)
	}
	cfg := ams.ServeConfig{
		Workers:        res.Workers,
		Policy:         ams.PolicyAlgorithm1,
		DeadlineSec:    0.4,
		MemoryGB:       res.MemGB,
		QueueCap:       4 * res.Workers,
		PredictorCache: true,
		TimeScale:      0.005,
		StatsWindow:    res.Items + res.Workers,
		Corpus:         corpus,
	}
	if m.shards > 1 {
		cfg.Shards = m.shards
		cfg.ShardPlacement = m.placement
		cfg.ShardSteal = m.steal
	}
	srv, err := sys.NewServer(agent, cfg)
	if err != nil {
		panic(err)
	}

	const clients = 16
	perClient := res.Items / clients
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Three quarters of the stream is external (journaled)
			// items, pre-generated so scene synthesis is not on the
			// measured path; the same seeds repeat across modes, so
			// every mode labels the same stream. The test-image quarter
			// keeps recall measured.
			ext := sys.GenerateItems(3*perClient/4, uint64(1000+c))
			tickets := make([]*ams.ServeTicket, 0, perClient)
			for i := 0; i < perClient; i++ {
				var item ams.Item
				if i%4 == 0 {
					item = sys.TestItem((c*perClient + i) % sys.NumTestImages())
				} else {
					item = ext[i-i/4-1]
				}
				//amsvet:allow ctxflow benchmark clients run to completion; no caller ctx exists
				tk, err := srv.SubmitWait(context.Background(), item)
				if err != nil {
					panic(err)
				}
				tickets = append(tickets, tk)
			}
			for _, tk := range tickets {
				//amsvet:allow ctxflow benchmark waits for every ticket; cancellation is not part of the measured path
				if _, err := tk.Wait(context.Background()); err != nil {
					panic(err)
				}
			}
		}(c)
	}
	wg.Wait()
	if err := srv.Close(); err != nil {
		panic(err)
	}
	st := srv.Stats()
	if err := corpus.Close(); err != nil {
		panic(err)
	}
	return st
}

// Format renders the sharding comparison, one row per metric with the
// mode index as the column axis.
func (r ShardingExtResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — multi-shard scale-out (%d workers total, %.0fGB memory total, %d items, equal resources per mode)\n",
		r.Workers, r.MemGB, r.Items)
	x := make([]float64, len(r.Modes))
	for i, m := range r.Modes {
		x[i] = float64(i)
		fmt.Fprintf(&b, "mode %d: %s\n", i, m)
	}
	b.WriteString(metrics.SeriesTable("mode", x, []metrics.Series{
		{Name: "items/s", Y: r.ItemsPerSec},
		{Name: "speedup", Y: r.Speedup},
		{Name: "recall", Y: r.Recall},
		{Name: "steals", Y: r.Steals},
	}, 3))
	return b.String()
}

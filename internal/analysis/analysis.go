// Package analysis is amsvet: a suite of repo-specific static analyzers
// that mechanically enforce the serving stack's concurrency and
// durability invariants. Each analyzer is grounded in a bug class that
// has already appeared in this repo and been hand-fixed once:
//
//   - reservepair: every memory-accountant Reserve result is checked and
//     every successful reserve reaches a Release (the PR-6 ignored
//     Reserve booleans).
//   - vtimesleep: simulated-execution packages pace themselves on the
//     vtime wheel, never on raw time.Sleep/time.After (the PR-6
//     migration off per-execution sleeps).
//   - lockblock: no blocking operation — channel op, Wait, Sleep, fsync
//     — while a sync.Mutex acquired in the same function is held (the
//     PR-7 fsync-under-the-corpus-mutex rework).
//   - ctxflow: library code propagates the caller's context.Context
//     instead of minting context.Background, and never drops a ctx
//     parameter on the floor.
//   - obsclean: metric names at Registry registration sites are
//     compile-time constants (variance belongs in labels, not names),
//     and simulated-execution packages measure real spans through the
//     obs seam instead of raw time.Since (the PR-9 instrumentation
//     discipline: wall and simulated clocks must stay distinguishable).
//   - spanpair: every span opened on the tracing seam (Tracer.Begin,
//     ItemTrace.StartSpan/StartSpanAt) reaches its close on every
//     control-flow path — an unclosed item trace never commits to the
//     /tracez ring and an unclosed child span corrupts the
//     critical-path attribution (the PR-10 span-tree discipline).
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic) but is self-contained on the standard library's go/ast and
// go/types, because this module deliberately has no external
// dependencies. Findings can be suppressed one line at a time with a
// reasoned escape hatch:
//
//	//amsvet:allow <analyzer> <reason>
//
// placed on the offending line or the line directly above it. The reason
// is mandatory — an allow comment without one is itself a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named invariant check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //amsvet:allow comments.
	Name string
	// Doc is a one-paragraph description: the invariant enforced and
	// the historical bug that motivated it.
	Doc string
	// Run reports violations via pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's parsed non-test sources.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one reported violation, positioned for editors.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full amsvet suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		ReservePair,
		VtimeSleep,
		LockBlock,
		CtxFlow,
		Obsclean,
		SpanPair,
	}
}

// Check runs every analyzer in suite over pkg and returns the surviving
// diagnostics: findings on lines carrying a matching //amsvet:allow
// comment are suppressed, and malformed allow comments (no analyzer
// name, no reason, or a name no analyzer answers to) are reported as
// findings of the pseudo-analyzer "allow".
func Check(pkg *Package, suite []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range suite {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	allows, bad := collectAllows(pkg.Fset, pkg.Files, suite)
	kept := diags[:0]
	for _, d := range diags {
		if !allows.covers(d) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, bad...)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}

// allowDirective is the escape-hatch comment marker.
const allowDirective = "//amsvet:allow"

// allowSet maps (file, line, analyzer) to a sanctioned suppression. A
// comment suppresses findings on its own line and on the line below it
// (the usual placement: a full-line comment above the offending call).
type allowSet map[string]bool

func (s allowSet) covers(d Diagnostic) bool {
	return s[fmt.Sprintf("%s:%d:%s", d.Pos.Filename, d.Pos.Line, d.Analyzer)]
}

func collectAllows(fset *token.FileSet, files []*ast.File, suite []*Analyzer) (allowSet, []Diagnostic) {
	known := make(map[string]bool, len(suite))
	for _, a := range suite {
		known[a.Name] = true
	}
	set := make(allowSet)
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowDirective) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, allowDirective)
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					bad = append(bad, Diagnostic{Pos: pos, Analyzer: "allow",
						Message: "malformed //amsvet:allow: want \"//amsvet:allow <analyzer> <reason>\""})
				case !known[fields[0]]:
					bad = append(bad, Diagnostic{Pos: pos, Analyzer: "allow",
						Message: fmt.Sprintf("//amsvet:allow names unknown analyzer %q", fields[0])})
				case len(fields) < 2:
					bad = append(bad, Diagnostic{Pos: pos, Analyzer: "allow",
						Message: fmt.Sprintf("//amsvet:allow %s needs a reason", fields[0])})
				default:
					for _, line := range []int{pos.Line, pos.Line + 1} {
						set[fmt.Sprintf("%s:%d:%s", pos.Filename, line, fields[0])] = true
					}
				}
			}
		}
	}
	return set, bad
}

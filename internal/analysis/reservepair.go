package analysis

import (
	"go/ast"
	"go/types"
)

// ReservePair enforces the memory-accountant protocol of Algorithm 2.
var ReservePair = &Analyzer{
	Name: "reservepair",
	Doc: "Every call to a memory-accountant Reserve (a method named " +
		"Reserve/reserve returning a single bool) must have its result " +
		"checked — a discarded boolean silently turns budget-refusal into " +
		"an unpaid execution, the PR-6 bug — and a successful reserve must " +
		"reach a Release on its success path: a reservation leaked on an " +
		"early return shrinks the server's memory budget forever. " +
		"Functions named mustReserve/MustReserve are sanctioned " +
		"panic-on-refusal wrappers (their caller owns the release), and a " +
		"function that returns the Reserve result forwards the whole " +
		"obligation to its caller.",
	Run: runReservePair,
}

func runReservePair(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncReserves(pass, fd.Name.Name, fd.Body)
		}
	}
	return nil
}

// checkFuncReserves analyzes one function body. Function literals nested
// inside are analyzed as part of the enclosing function: a closure that
// reserves participates in the same pairing discipline.
func checkFuncReserves(pass *Pass, funcName string, body *ast.BlockStmt) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if call, ok := n.(*ast.CallExpr); ok && isReserveCall(pass.Info, call) {
			checkReserveSite(pass, funcName, call, append([]ast.Node(nil), stack...))
		}
		return true
	})
}

// isReserveCall reports whether call invokes a method named
// Reserve/reserve with a single bool result — the accountant protocol's
// shape, whether on the concrete accountant or the batcher's
// MemoryReserver interface.
func isReserveCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || (fn.Name() != "Reserve" && fn.Name() != "reserve") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() != 1 {
		return false
	}
	basic, ok := sig.Results().At(0).Type().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Bool
}

func isReleaseCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || (fn.Name() != "Release" && fn.Name() != "release") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// checkReserveSite classifies how one Reserve call's result is consumed
// and, for checked calls, verifies the success path reaches a Release.
// stack is the ancestor chain from the function body down to the call.
func checkReserveSite(pass *Pass, funcName string, call *ast.CallExpr, stack []ast.Node) {
	parent := parentOf(stack, len(stack)-1)
	switch p := parent.(type) {
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(), "result of %s is discarded: a refused reservation must not execute", calleeName(pass.Info, call))
		return
	case *ast.GoStmt, *ast.DeferStmt:
		pass.Reportf(call.Pos(), "result of %s is discarded by go/defer", calleeName(pass.Info, call))
		return
	case *ast.ReturnStmt:
		return // forwarding wrapper: the caller inherits the obligation
	case *ast.AssignStmt:
		lhs := assignTarget(p, call)
		if lhs == nil {
			break
		}
		if lhs.Name == "_" {
			pass.Reportf(call.Pos(), "result of %s is assigned to _: check it", calleeName(pass.Info, call))
			return
		}
		obj := pass.Info.Defs[lhs]
		if obj == nil {
			obj = pass.Info.Uses[lhs]
		}
		guard := findGuardIf(pass, stack, p, obj)
		if guard == nil {
			pass.Reportf(call.Pos(), "result of %s is stored in %s but never checked", calleeName(pass.Info, call), lhs.Name)
			return
		}
		checkSuccessPath(pass, funcName, call, stack, guard.ifStmt, guard.positive)
		return
	}
	// The call sits inside an expression — most commonly an if condition,
	// `if ok := r.Reserve(x); ok`, or a && chain. Find the guarding if.
	if ifStmt, positive := enclosingIf(pass, stack); ifStmt != nil {
		checkSuccessPath(pass, funcName, call, stack, ifStmt, positive)
		return
	}
	// Consumed some other way (stored in a struct, passed along): treat
	// as checked but still require a reachable Release.
	checkSuccessPath(pass, funcName, call, stack, nil, true)
}

func calleeName(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		return fn.Name()
	}
	return "Reserve"
}

func parentOf(stack []ast.Node, i int) ast.Node {
	for j := i - 1; j >= 0; j-- {
		switch stack[j].(type) {
		case *ast.ParenExpr:
			continue
		default:
			return stack[j]
		}
	}
	return nil
}

func assignTarget(asg *ast.AssignStmt, call *ast.CallExpr) *ast.Ident {
	for i, rhs := range asg.Rhs {
		if ast.Unparen(rhs) == call && i < len(asg.Lhs) {
			id, _ := asg.Lhs[i].(*ast.Ident)
			return id
		}
	}
	return nil
}

type guardIf struct {
	ifStmt   *ast.IfStmt
	positive bool // true when the if body is the success branch
}

// findGuardIf looks for the first if statement after the assignment (in
// the same or an enclosing block) whose condition reads the assigned
// variable, and derives the branch polarity from the condition's shape.
func findGuardIf(pass *Pass, stack []ast.Node, asg *ast.AssignStmt, obj types.Object) *guardIf {
	if obj == nil {
		return nil
	}
	// `if ok := r.Reserve(x); ok { ... }`: the assign is the guard's init.
	if ifStmt, ok := parentOfNode(stack, asg).(*ast.IfStmt); ok && ifStmt.Init == asg {
		if pol, reads := condPolarity(pass, ifStmt.Cond, obj); reads {
			return &guardIf{ifStmt: ifStmt, positive: pol}
		}
	}
	// Otherwise: the first later if (in this or an enclosing block) whose
	// condition reads the variable.
	var cur ast.Node = asg
	for i := len(stack) - 1; i >= 0; i-- {
		block, ok := stack[i].(*ast.BlockStmt)
		if !ok {
			continue
		}
		idx := stmtIndex(block.List, cur)
		if idx >= 0 {
			for j := idx + 1; j < len(block.List); j++ {
				if ifStmt, ok := block.List[j].(*ast.IfStmt); ok {
					if pol, reads := condPolarity(pass, ifStmt.Cond, obj); reads {
						return &guardIf{ifStmt: ifStmt, positive: pol}
					}
				}
			}
		}
		cur = block
	}
	return nil
}

func parentOfNode(stack []ast.Node, target ast.Node) ast.Node {
	for i := len(stack) - 1; i > 0; i-- {
		if stack[i] == target {
			return stack[i-1]
		}
	}
	return nil
}

func stmtIndex(list []ast.Stmt, target ast.Node) int {
	for i, s := range list {
		if s == target || containsNode(s, target) {
			return i
		}
	}
	return -1
}

func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// condPolarity reports whether cond reads obj and whether the then
// branch is the success branch (`if ok`) or the failure branch
// (`if !ok`).
func condPolarity(pass *Pass, cond ast.Expr, obj types.Object) (positive, reads bool) {
	positive = true
	ast.Inspect(cond, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.UnaryExpr:
			if e.Op.String() == "!" {
				if id, ok := ast.Unparen(e.X).(*ast.Ident); ok && pass.Info.Uses[id] == obj {
					positive, reads = false, true
					return false
				}
			}
		case *ast.Ident:
			if pass.Info.Uses[e] == obj {
				reads = true
			}
		}
		return true
	})
	return positive, reads
}

// enclosingIf finds the if statement whose condition contains the
// Reserve call itself, with polarity from negation depth.
func enclosingIf(pass *Pass, stack []ast.Node) (*ast.IfStmt, bool) {
	call := stack[len(stack)-1]
	negations := 0
	for i := len(stack) - 2; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "!" {
				negations++
			}
		case *ast.IfStmt:
			if containsNode(n.Cond, call) {
				return n, negations%2 == 0
			}
			return nil, true
		case *ast.ForStmt:
			if n.Cond != nil && containsNode(n.Cond, call) {
				return nil, true // loop condition: treated as checked
			}
			return nil, true
		case ast.Stmt:
			// The call's statement is not an if condition (e.g. the init
			// of `if ok := r.Reserve(x); ok` — keep climbing only through
			// the if's own init).
			if _, isAssign := n.(*ast.AssignStmt); isAssign {
				continue
			}
			return nil, true
		}
	}
	return nil, true
}

// checkSuccessPath verifies that the success path from the guard (or
// from the call's own statement when guard is nil) reaches a Release.
func checkSuccessPath(pass *Pass, funcName string, call *ast.CallExpr, stack []ast.Node, guard *ast.IfStmt, positive bool) {
	if funcName == "mustReserve" || funcName == "MustReserve" {
		return // the sanctioned panic-on-refusal wrapper; callers release
	}
	var res pathResult
	if guard != nil && positive {
		// Success = the if body, falling through to what follows the if.
		res = analyzeStmts(pass, guard.Body.List)
		if res == pathNeutral {
			res = analyzeAfter(pass, stack, guard)
		}
	} else if guard != nil {
		// `if !ok { ... }`: failure handled in the body; success resumes
		// after the if.
		res = analyzeAfter(pass, stack, guard)
	} else {
		res = analyzeAfter(pass, stack, stack[len(stack)-1])
	}
	switch res {
	case pathLeaky:
		pass.Reportf(call.Pos(), "successful %s can return without Release: release on every success path or defer it", calleeName(pass.Info, call))
	case pathNeutral:
		pass.Reportf(call.Pos(), "successful %s never reaches a Release in %s: pair every reserve with a release", calleeName(pass.Info, call), funcName)
	}
}

type pathResult int

const (
	pathNeutral  pathResult = iota // falls through, no release yet
	pathReleased                   // a release (or divergence) covers the path
	pathLeaky                      // a path returns with the reservation held
)

// analyzeAfter walks the statements lexically after `from` in each
// enclosing block, innermost first, mirroring fall-through control flow.
func analyzeAfter(pass *Pass, stack []ast.Node, from ast.Node) pathResult {
	cur := from
	for i := len(stack) - 1; i >= 0; i-- {
		block, ok := stack[i].(*ast.BlockStmt)
		if !ok {
			continue
		}
		idx := -1
		for j, s := range block.List {
			if s == cur || containsNode(s, cur) {
				idx = j
				break
			}
		}
		if idx >= 0 {
			switch analyzeStmts(pass, block.List[idx+1:]) {
			case pathReleased:
				return pathReleased
			case pathLeaky:
				return pathLeaky
			}
		}
		cur = block
	}
	return pathNeutral
}

// analyzeStmts computes the release outcome of a statement sequence.
// Leaks dominate; otherwise a release anywhere on a branch is accepted
// (optimistic join — flow-sensitive guards like `if reservedMB > 0 {
// mem.Release(reservedMB) }` pair with conditional reserves the analyzer
// cannot correlate).
func analyzeStmts(pass *Pass, stmts []ast.Stmt) pathResult {
	for _, s := range stmts {
		switch analyzeStmt(pass, s) {
		case pathReleased:
			return pathReleased
		case pathLeaky:
			return pathLeaky
		}
	}
	return pathNeutral
}

func analyzeStmt(pass *Pass, stmt ast.Stmt) pathResult {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if isReleaseCall(pass.Info, call) {
				return pathReleased
			}
			if isPanicCall(pass.Info, call) {
				return pathReleased // divergence: the unwind is not a leak
			}
		}
	case *ast.DeferStmt:
		if isReleaseCall(pass.Info, s.Call) {
			return pathReleased
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok && bodyReleases(pass, fl.Body) {
			return pathReleased
		}
	case *ast.GoStmt:
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok && bodyReleases(pass, fl.Body) {
			return pathReleased // async release: the spawned goroutine pays
		}
	case *ast.ReturnStmt:
		return pathLeaky
	case *ast.BlockStmt:
		return analyzeStmts(pass, s.List)
	case *ast.LabeledStmt:
		return analyzeStmt(pass, s.Stmt)
	case *ast.IfStmt:
		t := analyzeStmts(pass, s.Body.List)
		e := pathNeutral
		if s.Else != nil {
			e = analyzeStmt(pass, s.Else)
		}
		if t == pathLeaky || e == pathLeaky {
			return pathLeaky
		}
		if t == pathReleased || e == pathReleased {
			return pathReleased
		}
	case *ast.ForStmt:
		r := analyzeStmts(pass, s.Body.List)
		if r == pathLeaky {
			return pathLeaky
		}
		if r == pathReleased {
			return pathReleased
		}
		if s.Cond == nil {
			return pathReleased // for {}: diverges rather than leaks
		}
	case *ast.RangeStmt:
		return analyzeStmts(pass, s.Body.List)
	case *ast.SwitchStmt:
		return analyzeCaseBodies(pass, s.Body)
	case *ast.TypeSwitchStmt:
		return analyzeCaseBodies(pass, s.Body)
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			switch analyzeStmts(pass, cc.(*ast.CommClause).Body) {
			case pathLeaky:
				return pathLeaky
			case pathReleased:
				return pathReleased
			}
		}
	}
	return pathNeutral
}

func analyzeCaseBodies(pass *Pass, body *ast.BlockStmt) pathResult {
	for _, cc := range body.List {
		switch analyzeStmts(pass, cc.(*ast.CaseClause).Body) {
		case pathLeaky:
			return pathLeaky
		case pathReleased:
			return pathReleased
		}
	}
	return pathNeutral
}

func bodyReleases(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isReleaseCall(pass.Info, call) {
			found = true
		}
		return !found
	})
	return found
}

func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

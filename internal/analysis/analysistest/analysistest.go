// Package analysistest runs one analyzer over a testdata fixture package
// and checks its diagnostics against `// want` annotations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// only (this module vendors nothing and builds offline).
//
// A fixture line that should trigger a finding carries a trailing
//
//	code() // want "regexp"
//
// comment; the regexp must match the diagnostic message reported on that
// line. Diagnostics with no matching want, and wants with no matching
// diagnostic, both fail the test. Lines suppressed by a valid
// //amsvet:allow comment must carry no want: the harness checks the
// post-suppression view, exactly what amsvet ships.
package analysistest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"ams/internal/analysis"
)

// want is one expected diagnostic.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads the fixture directory as one package, applies the analyzer
// (with allow-comment suppression), and enforces the want annotations.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkg, err := analysis.LoadFixture(dir)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	diags, err := analysis.Check(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("check %s: %v", dir, err)
	}

	wants := collectWants(t, pkg)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// collectWants parses `// want "re"` comments out of the fixture.
func collectWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := cutWant(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				pat, err := unquoteWant(text)
				if err != nil {
					t.Fatalf("%s:%d: %v", pos.Filename, pos.Line, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
				}
				wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

func cutWant(comment string) (string, bool) {
	const marker = "// want "
	i := strings.Index(comment, marker)
	if i < 0 {
		return "", false
	}
	return strings.TrimSpace(comment[i+len(marker):]), true
}

func unquoteWant(s string) (string, error) {
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("want pattern must be a quoted regexp, got %s", s)
	}
	return s[1 : len(s)-1], nil
}

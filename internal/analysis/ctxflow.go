package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces context propagation in library code.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "Library (non-main, non-example, non-test) code must thread the " +
		"caller's context.Context instead of minting context.Background or " +
		"context.TODO — a minted context silently detaches cancellation " +
		"from the public API that promised it. The defaulting guard " +
		"`if ctx == nil { ctx = context.Background() }` is the one " +
		"sanctioned mint. Exported functions that accept a ctx must also " +
		"use it: an ignored parameter is a cancellation promise the " +
		"implementation dropped.",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	if pass.Pkg.Name() == "main" || strings.Contains(pass.Pkg.Path(), "/examples/") {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		checkCtxMints(pass, f)
		checkCtxParams(pass, f)
	}
	return nil
}

// checkCtxMints flags context.Background()/context.TODO() calls outside
// the nil-defaulting guard idiom.
func checkCtxMints(pass *Pass, f *ast.File) {
	// Collect the assignments sanctioned by a `if ctx == nil` guard:
	// inside such an if body, `ctx = context.Background()` re-binds the
	// very variable the guard proved nil.
	sanctioned := make(map[ast.Node]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		guarded := nilCheckedIdent(pass, ifs.Cond)
		if guarded == nil {
			return true
		}
		for _, stmt := range ifs.Body.List {
			asg, ok := stmt.(*ast.AssignStmt)
			if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
				continue
			}
			lhs, ok := asg.Lhs[0].(*ast.Ident)
			if !ok || pass.Info.Uses[lhs] != guarded {
				continue
			}
			if isCtxMint(pass.Info, asg.Rhs[0]) != "" {
				sanctioned[asg.Rhs[0]] = true
			}
		}
		return true
	})
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := isCtxMint(pass.Info, call)
		if name == "" || sanctioned[call] {
			return true
		}
		pass.Reportf(call.Pos(), "context.%s minted in library code: propagate the caller's ctx (only the `if ctx == nil` default guard may mint one)", name)
		return true
	})
}

// nilCheckedIdent returns the context.Context-typed object a condition
// of the form `x == nil` (or `nil == x`) tests, or nil.
func nilCheckedIdent(pass *Pass, cond ast.Expr) types.Object {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || bin.Op.String() != "==" {
		return nil
	}
	x := bin.X
	if isNilIdent(bin.X) {
		x = bin.Y
	} else if !isNilIdent(bin.Y) {
		return nil
	}
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.Info.Uses[id]
	if obj == nil || !isContextType(obj.Type()) {
		return nil
	}
	return obj
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// isCtxMint returns "Background" or "TODO" when e is a call to that
// context constructor, else "".
func isCtxMint(info *types.Info, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name()
	}
	return ""
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkCtxParams flags exported functions whose context parameter is
// never referenced in the body.
func checkCtxParams(pass *Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !fd.Name.IsExported() {
			continue
		}
		if recv := receiverTypeName(fd); recv != "" && !ast.IsExported(recv) {
			continue // methods on unexported types are not public surface
		}
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if name.Name == "_" {
					continue
				}
				obj := pass.Info.Defs[name]
				if obj == nil || !isContextType(obj.Type()) {
					continue
				}
				if !identUsed(pass, fd.Body, obj) {
					pass.Reportf(name.Pos(), "exported %s accepts ctx but never uses it: propagate it or name the parameter _", fd.Name.Name)
				}
			}
		}
	}
}

func receiverTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

func identUsed(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

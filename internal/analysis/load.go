package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one type-checked module package ready for analysis.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load lists, parses, and type-checks the module packages matched by
// patterns (relative to dir), returning them in listing order.
//
// Dependencies — the standard library and sibling module packages alike
// — are loaded from compiler export data produced by `go list -export`,
// so only the packages under analysis are type-checked from source.
// This needs no network and no third-party loader: it is the same
// export-data path `go vet` itself uses.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("amsvet: go list: %v\n%s", err, errb.String())
	}

	exports := make(map[string]string) // import path -> export data file
	importMaps := make(map[string]map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(&out)
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("amsvet: decode go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("amsvet: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if len(lp.ImportMap) > 0 {
			importMaps[lp.ImportPath] = lp.ImportMap
		}
		if !lp.DepOnly && !lp.Standard {
			p := lp
			targets = append(targets, &p)
		}
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var pkgs []*Package
	for _, lp := range targets {
		pkg, err := typecheck(fset, imp, lp, importMaps[lp.ImportPath])
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadFixture parses and type-checks a single directory of Go files as
// one package — the analysistest path, where fixtures live under
// testdata and are invisible to `go list ./...`. The package's import
// path defaults to the directory name; a fixture whose analyzer is
// scoped by import path declares the path it impersonates with a
//
//	//amsvet:importpath ams/internal/sim
//
// comment in any of its files. Fixture imports (standard library only)
// resolve through the same export-data importer as Load, fed by a
// `go list -export -deps` over the imported paths.
func LoadFixture(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		names = append(names, filepath.Join(dir, e.Name()))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("amsvet: no Go files in fixture %s", dir)
	}

	importPath := filepath.Base(dir)
	imported := make(map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if rest, ok := cutPrefix(c.Text, "//amsvet:importpath "); ok {
					importPath = rest
				}
			}
		}
		for _, spec := range f.Imports {
			imported[importPathOf(spec)] = true
		}
	}

	exports := make(map[string]string)
	if len(imported) > 0 {
		args := []string{"list", "-e", "-export", "-deps", "-json"}
		for p := range imported {
			args = append(args, p)
		}
		cmd := exec.Command("go", args...)
		cmd.Dir = dir
		var out, errb bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &errb
		if err := cmd.Run(); err != nil {
			return nil, fmt.Errorf("amsvet: go list fixture deps: %v\n%s", err, errb.String())
		}
		dec := json.NewDecoder(&out)
		for {
			var lp listPackage
			if err := dec.Decode(&lp); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if lp.Export != "" {
				exports[lp.ImportPath] = lp.Export
			}
		}
	}

	lp := &listPackage{ImportPath: importPath, Dir: dir, GoFiles: names}
	return typecheckFiles(fset, newExportImporter(fset, exports), lp, nil, files)
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return "", false
}

func importPathOf(spec *ast.ImportSpec) string {
	p := spec.Path.Value
	return p[1 : len(p)-1] // strip quotes
}

func typecheck(fset *token.FileSet, imp types.ImporterFrom, lp *listPackage, importMap map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return typecheckFiles(fset, imp, lp, importMap, files)
}

func typecheckFiles(fset *token.FileSet, imp types.ImporterFrom, lp *listPackage, importMap map[string]string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := &types.Config{
		Importer: &mappedImporter{imp: imp, m: importMap},
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("amsvet: typecheck %s: %w", lp.ImportPath, err)
	}
	return &Package{
		Path:  lp.ImportPath,
		Name:  tpkg.Name(),
		Dir:   lp.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// mappedImporter applies a package's vendor ImportMap (a no-op in this
// module, which vendors nothing) before delegating to the shared
// export-data importer.
type mappedImporter struct {
	imp types.ImporterFrom
	m   map[string]string
}

func (mi *mappedImporter) Import(path string) (*types.Package, error) {
	return mi.ImportFrom(path, "", 0)
}

func (mi *mappedImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if mapped, ok := mi.m[path]; ok {
		path = mapped
	}
	return mi.imp.ImportFrom(path, srcDir, mode)
}

// newExportImporter returns an importer that resolves every package from
// the compiler export data files `go list -export` reported.
func newExportImporter(fset *token.FileSet, exports map[string]string) types.ImporterFrom {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("amsvet: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
}

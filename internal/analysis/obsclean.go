package analysis

import (
	"go/ast"
	"go/types"
)

// registrationMethods are the obs.Registry methods whose first argument
// is the metric name. Metric names are series identities: a name built
// at call time (fmt.Sprintf in an item loop, a tag interpolated into
// the name) mints a new family per call, growing the registry without
// bound and shredding the exposition into single-sample series. Names
// must be compile-time constants; variance belongs in labels.
var registrationMethods = map[string]bool{
	"Counter":     true,
	"Gauge":       true,
	"Histogram":   true,
	"CounterFunc": true,
	"GaugeFunc":   true,
}

// Obsclean enforces the telemetry layer's two hygiene rules.
var Obsclean = &Analyzer{
	Name: "obsclean",
	Doc: "Telemetry hygiene: (1) metric registration (Registry.Counter/" +
		"Gauge/Histogram/CounterFunc/GaugeFunc) takes a compile-time " +
		"constant name — dynamic names mint unbounded families, one per " +
		"call; put variance in labels. (2) In simulated-execution packages " +
		"(internal/sim, internal/batch, internal/serve, internal/shard) " +
		"wall-clock spans go through the obs seam (obs.SinceSeconds, " +
		"Histogram.ObserveSince/ObserveScaledSince), not raw time.Since: " +
		"the seam is what keeps real-clock instruments distinguishable " +
		"from the simulated clock the schedules run on.",
	Run: runObsclean,
}

func runObsclean(pass *Pass) error {
	checkSince := simulatedPackages[pass.Pkg.Path()]
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue // tests may build names and read clocks as they like
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil {
				return true
			}
			if checkSince && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Since" {
				pass.Reportf(call.Pos(), "time.Since in simulated-execution package %s: measure real spans through the obs seam (obs.SinceSeconds / Histogram.ObserveSince) so wall and simulated clocks stay distinguishable",
					pass.Pkg.Path())
			}
			if registrationMethods[fn.Name()] && isRegistryMethod(fn) && len(call.Args) > 0 {
				if tv, ok := pass.Info.Types[call.Args[0]]; ok && tv.Value == nil {
					pass.Reportf(call.Args[0].Pos(), "metric name passed to Registry.%s is not a compile-time constant: dynamic names mint one family per call — use a constant name and put the variance in labels",
						fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// isRegistryMethod reports whether fn is a method on a named type called
// Registry (pointer or value receiver). Matching by type name rather
// than by import path keeps the check fixture-testable and catches any
// future registry clone wholesale.
func isRegistryMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

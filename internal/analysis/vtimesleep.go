package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// simulatedPackages are the packages whose execution paths run on
// simulated time: every pause in them must go through the
// internal/vtime wheel so thousands of concurrent sub-millisecond
// sleeps share one dispatcher and one armed OS timer. A raw stdlib
// timer here reintroduces the per-flight timer churn PR 6 removed.
// Genuine wall-clock sites (epoch stamps, drain timeouts) opt out per
// line with //amsvet:allow vtimesleep <reason>.
var simulatedPackages = map[string]bool{
	"ams/internal/sim":   true,
	"ams/internal/batch": true,
	"ams/internal/serve": true,
	"ams/internal/shard": true,
}

// timerFuncs are the package-level time functions that park a goroutine
// or arm a per-call OS timer.
var timerFuncs = map[string]bool{
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
}

// VtimeSleep enforces the simulated-time discipline.
var VtimeSleep = &Analyzer{
	Name: "vtimesleep",
	Doc: "In simulated-execution packages (internal/sim, internal/batch, " +
		"internal/serve, internal/shard), pauses must run on the " +
		"internal/vtime wheel, not raw time.Sleep/After/NewTimer: " +
		"per-execution stdlib timers drown the runtime in timer churn at " +
		"small TimeScale values, which is the bug the wheel was built to fix.",
	Run: runVtimeSleep,
}

func runVtimeSleep(pass *Pass) error {
	if !simulatedPackages[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue // tests may pace themselves on the wall clock
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(pass.Info, call); fn != nil &&
				fn.Pkg() != nil && fn.Pkg().Path() == "time" && timerFuncs[fn.Name()] {
				pass.Reportf(call.Pos(), "time.%s in simulated-execution package %s: pace on the internal/vtime wheel instead",
					fn.Name(), pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}

// isTestFile reports whether f came from a _test.go file.
func isTestFile(pass *Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}

// calleeFunc resolves the *types.Func a call invokes, or nil for calls
// through function values, built-ins, and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

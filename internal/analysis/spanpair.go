package analysis

import (
	"go/ast"
	"go/types"
)

// SpanPair enforces the span lifecycle of the obs tracing seam.
var SpanPair = &Analyzer{
	Name: "spanpair",
	Doc: "Every span opened on the obs tracing seam must be closed on " +
		"every control-flow path: a Tracer.Begin result must reach " +
		"Tracer.End, and an ItemTrace.StartSpan/StartSpanAt id must reach " +
		"EndSpan/EndSpanAt. An unclosed item trace never commits to the " +
		"ring (the item simply vanishes from /tracez), and an unclosed " +
		"child span reads as an infinite stage in the critical-path " +
		"attribution. Discarding the open result outright makes the close " +
		"impossible and is reported immediately. Deferring the close is " +
		"sanctioned, as is handing the obligation away whole: returning " +
		"the open result or passing it to another call (the serve loop's " +
		"finish(..., trace) shape) forwards the close duty to the " +
		"receiver. Only receiver types named Tracer and ItemTrace are in " +
		"scope — the corpus's unrelated Begin(seq) lifecycle is not a " +
		"span open.",
	Run: runSpanPair,
}

func runSpanPair(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncSpans(pass, fd.Name.Name, fd.Body)
		}
	}
	return nil
}

// checkFuncSpans analyzes one function body, nested function literals
// included — a closure that opens a span owes its close just the same.
func checkFuncSpans(pass *Pass, funcName string, body *ast.BlockStmt) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if call, ok := n.(*ast.CallExpr); ok {
			if opener, ok := spanOpenCall(pass.Info, call); ok {
				checkSpanSite(pass, funcName, call, opener, append([]ast.Node(nil), stack...))
			}
		}
		return true
	})
}

// spanOpener describes one open-call shape and the close that pays it.
type spanOpener struct {
	open, close string
}

// spanOpenCall reports whether call opens a span: Begin on a receiver
// type named Tracer, or StartSpan/StartSpanAt on a receiver type named
// ItemTrace. The name match is deliberate — any other Begin (the corpus
// ingestion lifecycle, say) is a different protocol with its own rules.
func spanOpenCall(info *types.Info, call *ast.CallExpr) (spanOpener, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return spanOpener{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() != 1 {
		return spanOpener{}, false
	}
	recv := recvTypeName(sig.Recv())
	switch {
	case fn.Name() == "Begin" && recv == "Tracer":
		return spanOpener{open: "Begin", close: "End"}, true
	case (fn.Name() == "StartSpan" || fn.Name() == "StartSpanAt") && recv == "ItemTrace":
		return spanOpener{open: fn.Name(), close: "EndSpan"}, true
	}
	return spanOpener{}, false
}

// spanCloseCall reports whether call is a close on the tracing seam:
// End (Tracer) or EndSpan/EndSpanAt (ItemTrace).
func spanCloseCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	switch recvTypeName(sig.Recv()) {
	case "Tracer":
		return fn.Name() == "End"
	case "ItemTrace":
		return fn.Name() == "EndSpan" || fn.Name() == "EndSpanAt"
	}
	return false
}

// checkSpanSite classifies how one open call's result is consumed and,
// when it lands in a variable, verifies every path from the open
// reaches a close (or hands the obligation away).
func checkSpanSite(pass *Pass, funcName string, call *ast.CallExpr, op spanOpener, stack []ast.Node) {
	parent := parentOf(stack, len(stack)-1)
	switch p := parent.(type) {
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(), "result of %s is discarded: the span can never be closed with %s", op.open, op.close)
		return
	case *ast.GoStmt, *ast.DeferStmt:
		pass.Reportf(call.Pos(), "result of %s is discarded by go/defer: the span can never be closed", op.open)
		return
	case *ast.ReturnStmt:
		return // forwarding: the caller inherits the close obligation
	case *ast.AssignStmt:
		lhs := assignTarget(p, call)
		if lhs == nil {
			return // multi-value or indirect target: treated as escaped
		}
		if lhs.Name == "_" {
			pass.Reportf(call.Pos(), "result of %s is assigned to _: the span can never be closed with %s", op.open, op.close)
			return
		}
		obj := pass.Info.Defs[lhs]
		if obj == nil {
			obj = pass.Info.Uses[lhs]
		}
		if obj == nil {
			return
		}
		switch analyzeSpanAfter(pass, stack, p, obj) {
		case pathLeaky:
			pass.Reportf(call.Pos(), "span from %s can return without %s: close on every path or defer it", op.open, op.close)
		case pathNeutral:
			pass.Reportf(call.Pos(), "span from %s never reaches %s in %s: pair every open with a close", op.open, op.close, funcName)
		}
		return
	}
	// The result feeds an expression directly — an argument of another
	// call, a composite literal, a field store. The obligation moved with
	// the value; its new owner is accountable.
}

// analyzeSpanAfter walks the statements lexically after `from` in each
// enclosing block, innermost first, mirroring fall-through control flow
// — the same sweep reservepair uses, keyed to the span variable.
func analyzeSpanAfter(pass *Pass, stack []ast.Node, from ast.Node, obj types.Object) pathResult {
	cur := from
	for i := len(stack) - 1; i >= 0; i-- {
		block, ok := stack[i].(*ast.BlockStmt)
		if !ok {
			continue
		}
		idx := stmtIndex(block.List, cur)
		if idx >= 0 {
			switch analyzeSpanStmts(pass, block.List[idx+1:], obj) {
			case pathReleased:
				return pathReleased
			case pathLeaky:
				return pathLeaky
			}
		}
		cur = block
	}
	return pathNeutral
}

func analyzeSpanStmts(pass *Pass, stmts []ast.Stmt, obj types.Object) pathResult {
	for _, s := range stmts {
		switch analyzeSpanStmt(pass, s, obj) {
		case pathReleased:
			return pathReleased
		case pathLeaky:
			return pathLeaky
		}
	}
	return pathNeutral
}

// analyzeSpanStmt computes one statement's effect on the open span.
// Leaks dominate; otherwise a close anywhere on a branch is accepted
// (the optimistic join reservepair established). A close is any
// End/EndSpan/EndSpanAt whose arguments mention the span variable; a
// discharge is forwarding it — returning it, passing it to any other
// call, or storing it — after which the new holder owes the close.
func analyzeSpanStmt(pass *Pass, stmt ast.Stmt, obj types.Object) pathResult {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if spanDischarged(pass, call, obj) {
				return pathReleased
			}
			if isPanicCall(pass.Info, call) {
				return pathReleased // divergence: the unwind is not a leak
			}
		}
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if usesObj(pass, rhs, obj) {
				return pathReleased // escaped into another binding or field
			}
		}
	case *ast.DeferStmt:
		if spanDischarged(pass, s.Call, obj) {
			return pathReleased
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok && usesObj(pass, fl.Body, obj) {
			return pathReleased
		}
	case *ast.GoStmt:
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok && usesObj(pass, fl.Body, obj) {
			return pathReleased // async close: the spawned goroutine pays
		}
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			if usesObj(pass, res, obj) {
				return pathReleased // forwarded to the caller
			}
		}
		return pathLeaky
	case *ast.BlockStmt:
		return analyzeSpanStmts(pass, s.List, obj)
	case *ast.LabeledStmt:
		return analyzeSpanStmt(pass, s.Stmt, obj)
	case *ast.IfStmt:
		t := analyzeSpanStmts(pass, s.Body.List, obj)
		e := pathNeutral
		if s.Else != nil {
			e = analyzeSpanStmt(pass, s.Else, obj)
		}
		if t == pathLeaky || e == pathLeaky {
			return pathLeaky
		}
		if t == pathReleased || e == pathReleased {
			return pathReleased
		}
	case *ast.ForStmt:
		r := analyzeSpanStmts(pass, s.Body.List, obj)
		if r != pathNeutral {
			return r
		}
	case *ast.RangeStmt:
		return analyzeSpanStmts(pass, s.Body.List, obj)
	case *ast.SwitchStmt:
		return analyzeSpanCases(pass, s.Body, obj)
	case *ast.TypeSwitchStmt:
		return analyzeSpanCases(pass, s.Body, obj)
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			switch analyzeSpanStmts(pass, cc.(*ast.CommClause).Body, obj) {
			case pathLeaky:
				return pathLeaky
			case pathReleased:
				return pathReleased
			}
		}
	}
	return pathNeutral
}

func analyzeSpanCases(pass *Pass, body *ast.BlockStmt, obj types.Object) pathResult {
	for _, cc := range body.List {
		switch analyzeSpanStmts(pass, cc.(*ast.CaseClause).Body, obj) {
		case pathLeaky:
			return pathLeaky
		case pathReleased:
			return pathReleased
		}
	}
	return pathNeutral
}

// spanDischarged reports whether call pays the open's obligation: a
// close call whose arguments mention the span variable, or any other
// call the variable is handed to as an argument (forwarding — the
// serve loop's finish(..., trace) hands the whole trace, and with it
// the End duty, to one terminal function). Uses of the variable as a
// mere receiver (trace.Add(ev)) neither close nor forward.
func spanDischarged(pass *Pass, call *ast.CallExpr, obj types.Object) bool {
	for _, arg := range call.Args {
		if usesObj(pass, arg, obj) {
			return spanCloseCall(pass.Info, call) || !isSpanOpenOrNote(pass.Info, call)
		}
	}
	return false
}

// isSpanOpenOrNote keeps an open call from discharging itself.
func isSpanOpenOrNote(info *types.Info, call *ast.CallExpr) bool {
	_, ok := spanOpenCall(info, call)
	return ok
}

func usesObj(pass *Pass, root ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

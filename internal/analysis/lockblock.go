package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockBlock forbids blocking operations inside mutex critical sections.
var LockBlock = &Analyzer{
	Name: "lockblock",
	Doc: "No blocking operation — channel send/receive, select without " +
		"default, Wait, Sleep, or an os.File fsync — while a sync.Mutex or " +
		"RWMutex acquired in the same function is still held. A blocked " +
		"holder stalls every other goroutine contending for the lock; this " +
		"is the PR-7 bug class, where the corpus flusher fsynced the " +
		"journal under the corpus mutex and writers queued behind the " +
		"disk. Functions whose name ends in \"Locked\" are analyzed as if " +
		"a caller-held lock were in force, matching the repo's naming " +
		"convention. sync.Cond.Wait is exempt (it releases the lock while " +
		"parked); deliberate stop-the-world sections opt out per line with " +
		"//amsvet:allow lockblock <reason>.",
	Run: runLockBlock,
}

func runLockBlock(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var name string
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body, name = fn.Body, fn.Name.Name
			case *ast.FuncLit:
				body, name = fn.Body, ""
			default:
				return true
			}
			if body == nil {
				return true
			}
			held := make(map[string]token.Pos)
			if strings.HasSuffix(name, "Locked") {
				// The repo's convention: fooLocked runs with the caller's
				// mutex held, so its whole body is a critical section.
				held["<caller's lock>"] = body.Pos()
			}
			walkLockStmts(pass, body.List, held)
			return true // descend: FuncLits nested inside get their own visit
		})
	}
	return nil
}

// walkLockStmts scans one statement sequence, tracking which mutexes are
// held after each statement. Branch bodies get a copy of the held set:
// an unlock on one path does not release the other.
func walkLockStmts(pass *Pass, stmts []ast.Stmt, held map[string]token.Pos) {
	for _, stmt := range stmts {
		walkLockStmt(pass, stmt, held)
	}
}

func walkLockStmt(pass *Pass, stmt ast.Stmt, held map[string]token.Pos) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if recv, kind := mutexOp(pass.Info, s.X); kind != "" {
			switch kind {
			case "Lock", "RLock":
				held[recv] = s.Pos()
			case "Unlock", "RUnlock":
				delete(held, recv)
			}
			return
		}
		scanBlocking(pass, s.X, held)
	case *ast.DeferStmt:
		// `defer mu.Unlock()` pins the lock for the rest of the function;
		// the held set already reflects that, so nothing changes. Other
		// deferred calls run after the function's own statements and are
		// not part of this critical section.
	case *ast.GoStmt:
		// The spawned goroutine does not run under the caller's locks;
		// its FuncLit body is analyzed as its own function.
	case *ast.SendStmt:
		if len(held) > 0 {
			pass.Reportf(s.Pos(), "channel send while %s is held: move it after the unlock", heldName(held))
		}
	case *ast.AssignStmt, *ast.DeclStmt, *ast.ReturnStmt, *ast.IncDecStmt:
		scanBlocking(pass, stmt, held)
	case *ast.BlockStmt:
		walkLockStmts(pass, s.List, held)
	case *ast.LabeledStmt:
		walkLockStmt(pass, s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			walkLockStmt(pass, s.Init, held)
		}
		scanBlocking(pass, s.Cond, held)
		walkLockStmts(pass, s.Body.List, copyHeld(held))
		if s.Else != nil {
			walkLockStmt(pass, s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			walkLockStmt(pass, s.Init, held)
		}
		if s.Cond != nil {
			scanBlocking(pass, s.Cond, held)
		}
		body := copyHeld(held)
		walkLockStmts(pass, s.Body.List, body)
		if s.Post != nil {
			walkLockStmt(pass, s.Post, body)
		}
	case *ast.RangeStmt:
		if len(held) > 0 {
			if t := pass.Info.Types[s.X].Type; t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					pass.Reportf(s.Pos(), "range over channel while %s is held: the loop blocks until the channel closes", heldName(held))
				}
			}
		}
		scanBlocking(pass, s.X, held)
		walkLockStmts(pass, s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			walkLockStmt(pass, s.Init, held)
		}
		if s.Tag != nil {
			scanBlocking(pass, s.Tag, held)
		}
		for _, cc := range s.Body.List {
			walkLockStmts(pass, cc.(*ast.CaseClause).Body, copyHeld(held))
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			walkLockStmt(pass, s.Init, held)
		}
		for _, cc := range s.Body.List {
			walkLockStmts(pass, cc.(*ast.CaseClause).Body, copyHeld(held))
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, clause := range s.Body.List {
			if clause.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && len(held) > 0 {
			pass.Reportf(s.Pos(), "select without default while %s is held: it parks the goroutine inside the critical section", heldName(held))
		}
		for _, clause := range s.Body.List {
			walkLockStmts(pass, clause.(*ast.CommClause).Body, copyHeld(held))
		}
	}
}

// scanBlocking reports receives and blocking calls inside an expression
// or simple statement evaluated while locks are held. Function-literal
// bodies are skipped: they run when called, not where they are written.
func scanBlocking(pass *Pass, n ast.Node, held map[string]token.Pos) {
	if len(held) == 0 || n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				pass.Reportf(e.Pos(), "channel receive while %s is held: move it after the unlock", heldName(held))
			}
		case *ast.CallExpr:
			if why := blockingCall(pass.Info, e); why != "" {
				pass.Reportf(e.Pos(), "%s while %s is held: move it outside the critical section", why, heldName(held))
			}
		}
		return true
	})
}

// mutexOp recognizes X.Lock / X.RLock / X.Unlock / X.RUnlock calls on a
// sync.Mutex or sync.RWMutex (including ones promoted from an embedded
// field) and returns a stable name for the lock plus the operation.
func mutexOp(info *types.Info, e ast.Expr) (recv string, kind string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil || !isMutexType(sig.Recv().Type()) {
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	return types.ExprString(sel.X), fn.Name()
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// blockingCall classifies a call that parks the goroutine: Wait methods
// (sync.WaitGroup, tickets, routers — but not sync.Cond, which releases
// the mutex while parked), Sleep (time or the vtime wheel), and
// (*os.File).Sync, the PR-7 offender.
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	recv := sig.Recv()
	switch fn.Name() {
	case "Wait":
		if recv == nil {
			return ""
		}
		if named := namedOf(recv.Type()); named != nil {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Cond" {
				return "" // Cond.Wait atomically releases the lock
			}
		}
		return "blocking " + recvTypeName(recv) + ".Wait call"
	case "Sleep":
		return "Sleep call"
	case "Sync":
		if recv != nil {
			if named := namedOf(recv.Type()); named != nil {
				obj := named.Obj()
				if obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File" {
					return "journal fsync (os.File.Sync)"
				}
			}
		}
	}
	return ""
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func recvTypeName(recv *types.Var) string {
	if named := namedOf(recv.Type()); named != nil {
		return named.Obj().Name()
	}
	return "value"
}

func heldName(held map[string]token.Pos) string {
	best := ""
	for name := range held {
		if best == "" || name < best {
			best = name
		}
	}
	return "mutex " + best
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	cp := make(map[string]token.Pos, len(held))
	for k, v := range held {
		cp[k] = v
	}
	return cp
}

// Malformed escape hatches are themselves findings: a suppression
// without a reason is review debt, not a sanction. The expectations for
// this fixture live in TestAllowNeedsReason (a want comment cannot share
// a line with the allow comment under test).
//
//amsvet:importpath ams/internal/fixture
package fixture

//amsvet:allow vtimesleep

//amsvet:allow nosuchanalyzer because reasons

func placeholder() {}

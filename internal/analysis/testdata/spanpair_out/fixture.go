// Scope check: the span-pairing rule keys on the obs seam's receiver
// type names (Tracer, ItemTrace). The corpus ingestion lifecycle has a
// Begin of its own — a sequence-number protocol with commit/abort, not
// a span open — and must produce no spanpair findings.
//
//amsvet:importpath ams/internal/corpus
package corpus

// Corpus mirrors the real ingestion surface: Begin marks a sequence
// in-flight and its pairing is corpus-internal, out of spanpair's scope.
type Corpus struct{ inflight int }

func (c *Corpus) Begin(seq int) int { c.inflight++; return seq }
func (c *Corpus) End(seq int)       { c.inflight-- }

// span-ish method names on an unrelated type are equally out of scope.
type wheel struct{}

func (w *wheel) StartSpan(name string, parent, model int) int { return 0 }

func ingest(c *Corpus) {
	c.Begin(41) // corpus protocol: no diagnostic
	seq := c.Begin(42)
	_ = seq
}

func timers(w *wheel) {
	w.StartSpan("tick", 0, -1) // not the ItemTrace seam: no diagnostic
}

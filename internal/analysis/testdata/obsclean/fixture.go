// This fixture impersonates a simulated-execution package holding a
// local metric registry: dynamic metric names at registration sites and
// raw time.Since spans are violations; constant names, labels, and the
// obs seam are not.
//
//amsvet:importpath ams/internal/serve
package serve

import (
	"fmt"
	"time"
)

// Registry mimics obs.Registry: the analyzer matches registration
// methods by receiver type name, so the fixture needs no obs import.
type Registry struct{}

type instrument struct{}

func (r *Registry) Counter(name, help string, labels ...string) *instrument   { return nil }
func (r *Registry) Gauge(name, help string, labels ...string) *instrument     { return nil }
func (r *Registry) Histogram(name, help string, labels ...string) *instrument { return nil }
func (r *Registry) CounterFunc(name, help string, fn func() int64)            {}
func (r *Registry) GaugeFunc(name, help string, fn func() float64)            {}
func (r *Registry) NotRegistration(name string, labels ...string) *instrument { return nil }

const itemLatency = "ams_item_latency_seconds"

func constantNames(r *Registry) {
	r.Counter("ams_items_total", "items served")             // constant literal: fine
	r.Histogram(itemLatency, "latency")                      // named constant: fine
	r.Gauge("ams_depth_"+"live", "depth")                    // constant expression: fine
	r.Counter("ams_model_exec_total", "execs", "model", "m") // variance in labels: the sanctioned form
}

func dynamicNames(r *Registry, shard int, tag string) {
	r.Counter(fmt.Sprintf("ams_shard_%d_total", shard), "per-shard") // want "not a compile-time constant"
	r.Gauge("ams_"+tag, "per-tag")                                   // want "not a compile-time constant"
	name := "ams_built_total"
	r.CounterFunc(name, "built", func() int64 { return 0 }) // want "not a compile-time constant"
	r.NotRegistration(fmt.Sprintf("free_%d", shard))        // not a registration method: fine
}

func rawSpan(t0 time.Time) float64 {
	return time.Since(t0).Seconds() // want "time.Since in simulated-execution package"
}

func sanctionedSpan(t0 time.Time) float64 {
	//amsvet:allow obsclean epoch bookkeeping predating the obs seam
	return time.Since(t0).Seconds()
}

func clockRead() time.Time {
	return time.Now() // reading the clock is not a span measurement
}

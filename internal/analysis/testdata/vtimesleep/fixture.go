// This fixture impersonates a simulated-execution package: raw stdlib
// timers are violations, the vtime wheel and annotated wall-clock sites
// are not.
//
//amsvet:importpath ams/internal/sim
package sim

import "time"

type wheel struct{}

func (w *wheel) Sleep(d time.Duration) {}

func rawSleep() {
	time.Sleep(time.Millisecond) // want "time.Sleep in simulated-execution package"
}

func rawAfter() {
	<-time.After(time.Second) // want "time.After in simulated-execution package"
}

func rawTimer() *time.Timer {
	return time.NewTimer(time.Second) // want "time.NewTimer in simulated-execution package"
}

func rawTicker() {
	t := time.NewTicker(time.Second) // want "time.NewTicker in simulated-execution package"
	t.Stop()
}

func wheelSleep(w *wheel) {
	w.Sleep(time.Millisecond) // the sanctioned wrapper
}

func epochStamp() time.Time {
	return time.Now() // reading the clock is not a pause
}

func drainTimeout() {
	//amsvet:allow vtimesleep genuine wall-clock drain timeout, not simulated pacing
	<-time.After(time.Second)
}

// Package fixture seeds context-propagation violations: minted
// Backgrounds in library code and an exported function that drops its
// ctx parameter. The nil-defaulting guard and the annotated dispatcher
// site stay quiet.
//
//amsvet:importpath ams/internal/fixture
package fixture

import "context"

func do(ctx context.Context) error { return ctx.Err() }

func MintedBackground() error {
	return do(context.Background()) // want "context.Background minted in library code"
}

func MintedTODO() error {
	return do(context.TODO()) // want "context.TODO minted in library code"
}

func DroppedParam(ctx context.Context, n int) int { // want "exported DroppedParam accepts ctx but never uses it"
	return n * 2
}

// --- quiet shapes ---

func NilGuardDefault(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background() // the sanctioned defaulting guard
	}
	return do(ctx)
}

func Propagates(ctx context.Context) error {
	return do(ctx)
}

func ExplicitlyUnused(_ context.Context) int {
	return 1 // a blank ctx is an honest signature, not a dropped promise
}

type hidden struct{}

// methods on unexported types are not public surface.
func (hidden) Convenience(ctx context.Context) int { return 0 }

func dispatcherLifetime() error {
	//amsvet:allow ctxflow dispatcher outlives any submitter ctx; router lifetime scopes it
	return do(context.Background())
}

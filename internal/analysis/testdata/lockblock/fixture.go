// Package fixture seeds blocking operations inside mutex critical
// sections — the PR-7 fsync-under-the-corpus-mutex bug class — plus the
// shapes that must stay quiet: ops after the unlock, sync.Cond.Wait,
// non-blocking selects, and the annotated stop-the-world section.
//
//amsvet:importpath ams/internal/fixture
package fixture

import (
	"os"
	"sync"
	"time"
)

type state struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	cond *sync.Cond
	ch   chan int
	f    *os.File
	wg   sync.WaitGroup
	n    int
}

// --- seeded violations ---

func sendUnderLock(s *state) {
	s.mu.Lock()
	s.ch <- 1 // want "channel send while mutex s.mu is held"
	s.mu.Unlock()
}

func recvUnderDeferredLock(s *state) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want "channel receive while mutex s.mu is held"
}

func selectUnderLock(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select without default while mutex s.mu is held"
	case <-s.ch:
	case s.ch <- 1:
	}
}

func fsyncUnderLock(s *state) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync() // want "journal fsync"
}

func waitUnderRLock(s *state) {
	s.rw.RLock()
	s.wg.Wait() // want "blocking WaitGroup.Wait call while mutex s.rw is held"
	s.rw.RUnlock()
}

func sleepUnderLock(s *state) {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "Sleep call while mutex s.mu is held"
	s.mu.Unlock()
}

func rangeChanUnderLock(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range s.ch { // want "range over channel while mutex s.mu is held"
		s.n += v
	}
}

// flushLocked runs under the caller's lock by naming convention.
func flushLocked(s *state) error {
	return s.f.Sync() // want "journal fsync \(os.File.Sync\) while mutex <caller's lock> is held"
}

// --- quiet shapes ---

func afterUnlock(s *state) {
	s.mu.Lock()
	v := s.n
	s.mu.Unlock()
	s.ch <- v
}

func condWait(s *state) {
	s.mu.Lock()
	for s.n == 0 {
		s.cond.Wait() // Cond.Wait releases the mutex while parked
	}
	s.mu.Unlock()
}

func nonBlockingSelect(s *state) {
	s.mu.Lock()
	select {
	case s.ch <- s.n:
	default:
	}
	s.mu.Unlock()
}

func branchUnlockThenBlock(s *state) {
	s.mu.Lock()
	if s.n > 0 {
		s.mu.Unlock()
		<-s.ch // this path released the lock first
		return
	}
	s.mu.Unlock()
}

func spawnedGoroutine(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- 1 // runs outside the caller's critical section
	}()
}

func stopTheWorld(s *state) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//amsvet:allow lockblock deliberate stop-the-world compaction, writers are fenced
	return s.f.Sync()
}

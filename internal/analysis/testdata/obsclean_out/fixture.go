// Scope check: in a wall-clock package raw time.Since is fine — only
// the constant-name rule applies everywhere.
//
//amsvet:importpath ams/internal/corpus
package corpus

import (
	"fmt"
	"time"
)

type Registry struct{}

func (r *Registry) Counter(name, help string, labels ...string) {}

func wallSpan(t0 time.Time) float64 {
	return time.Since(t0).Seconds() // wall-clock package: no diagnostic
}

func stillChecked(r *Registry, seg int) {
	r.Counter(fmt.Sprintf("ams_seg_%d", seg), "per-segment") // want "not a compile-time constant"
}

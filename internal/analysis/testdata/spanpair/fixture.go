// Package fixture seeds violations of the spanpair invariant: every
// span opened on the tracing seam (Tracer.Begin, ItemTrace.StartSpan/
// StartSpanAt) reaches its close (End, EndSpan/EndSpanAt) on every
// control-flow path, with defers and whole-value forwarding sanctioned.
//
//amsvet:importpath ams/internal/fixture
package fixture

// Tracer and ItemTrace mirror the obs seam's shapes: the analyzer keys
// on these receiver type names, not on the obs import path.
type Tracer struct{}

type ItemTrace struct{ n int }

func (t *Tracer) Begin(image int, tag string) *ItemTrace { return &ItemTrace{} }
func (t *Tracer) End(it *ItemTrace)                      {}

func (it *ItemTrace) StartSpan(name string, parent, model int) int       { it.n++; return it.n }
func (it *ItemTrace) StartSpanAt(name string, parent, model, at int) int { it.n++; return it.n }
func (it *ItemTrace) EndSpan(id int)                                     {}
func (it *ItemTrace) EndSpanAt(id, at int)                               {}
func (it *ItemTrace) Add(ev int)                                         {}

func work() bool { return true }

func finish(outputs []int, trace *ItemTrace) {}

// --- seeded violations ---

func discardedBegin(tr *Tracer) {
	tr.Begin(1, "img") // want "result of Begin is discarded"
}

func discardedStart(it *ItemTrace) {
	it.StartSpan("exec", 0, 1) // want "result of StartSpan is discarded"
}

func blankAssigned(tr *Tracer) {
	_ = tr.Begin(1, "img") // want "result of Begin is assigned to _"
}

func deferDiscarded(tr *Tracer) {
	defer tr.Begin(1, "img") // want "result of Begin is discarded by go/defer"
}

func leakyEarlyReturn(it *ItemTrace) {
	id := it.StartSpan("reserve-wait", 0, 2) // want "span from StartSpan can return without EndSpan"
	if !work() {
		return // the span is still open here
	}
	it.EndSpan(id)
}

func neverClosed(tr *Tracer) {
	trace := tr.Begin(1, "img") // want "span from Begin never reaches End in neverClosed"
	trace.Add(7)                // receiver-only use: neither close nor forward
}

func startAtNeverClosed(it *ItemTrace) {
	id := it.StartSpanAt("batch-hold", 0, 1, 40) // want "span from StartSpanAt never reaches EndSpan"
	if id < 0 {
		work() // a condition read neither closes nor forwards
	}
}

// --- sanctioned shapes: no diagnostics ---

func pairedDirect(it *ItemTrace) {
	id := it.StartSpan("exec", 0, 1)
	work()
	it.EndSpan(id)
}

func pairedAt(it *ItemTrace) {
	id := it.StartSpanAt("queue-wait", 0, -1, 10)
	it.EndSpanAt(id, 25)
}

func pairedByDefer(tr *Tracer) {
	trace := tr.Begin(1, "img")
	defer tr.End(trace)
	if !work() {
		return // covered by the defer
	}
	work()
}

func deferredClosure(it *ItemTrace) {
	id := it.StartSpan("commit", 0, -1)
	defer func() { it.EndSpan(id) }()
	work()
}

func forwardedToFinish(tr *Tracer) {
	// The serve-loop shape: the trace is handed whole to one terminal
	// function that owns the End.
	trace := tr.Begin(1, "img")
	trace.Add(1)
	finish(nil, trace)
}

func forwardedToCaller(tr *Tracer) *ItemTrace {
	return tr.Begin(1, "img")
}

func closedInBranch(tr *Tracer, it *ItemTrace) {
	id := it.StartSpan("exec", 0, 3)
	if work() {
		it.EndSpan(id)
	} else {
		it.EndSpanAt(id, 99)
	}
}

func asyncClose(it *ItemTrace) {
	id := it.StartSpan("exec", 0, 1)
	go func() {
		work()
		it.EndSpan(id)
	}()
}

func escapeHatch(tr *Tracer) {
	//amsvet:allow spanpair fixture exercising the reasoned escape hatch
	tr.Begin(1, "img")
}

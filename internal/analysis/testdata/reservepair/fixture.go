// Package fixture seeds violations of the reservepair invariant: every
// Reserve result checked, every successful reserve paired with a
// Release on its success path.
//
//amsvet:importpath ams/internal/fixture
package fixture

import "errors"

var errBudget = errors.New("over budget")

type acct struct{ used float64 }

func (a *acct) Reserve(mb float64) bool { a.used += mb; return true }
func (a *acct) Release(mb float64)      { a.used -= mb }

func work() bool { return true }

// --- seeded violations ---

func discarded(a *acct) {
	a.Reserve(5) // want "result of Reserve is discarded"
}

func blankAssigned(a *acct) {
	_ = a.Reserve(5) // want "result of Reserve is assigned to _"
}

func storedButNeverChecked(a *acct) {
	granted := a.Reserve(5) // want "result of Reserve is stored in granted but never checked"
	_ = granted
}

func leakyEarlyReturn(a *acct) error {
	if !a.Reserve(5) { // want "successful Reserve can return without Release"
		return errBudget
	}
	if !work() {
		return errBudget // the reservation is still held here
	}
	a.Release(5)
	return nil
}

func neverReleased(a *acct) {
	if a.Reserve(5) { // want "successful Reserve never reaches a Release"
		work()
	}
}

func initGuardLeak(a *acct) {
	if ok := a.Reserve(5); ok { // want "successful Reserve never reaches a Release"
		work()
	}
}

// --- sanctioned shapes: no diagnostics ---

// mustReserve is the panic-on-refusal wrapper; its callers release.
func mustReserve(a *acct) {
	if !a.Reserve(5) {
		panic("over budget: policies only select models that fit")
	}
}

// Reserve forwards the result, and with it the release obligation.
type wrapped struct{ a *acct }

func (w *wrapped) Reserve(mb float64) bool { return w.a.Reserve(mb) }

func pairedInBranch(a *acct) {
	if a.Reserve(5) {
		work()
		a.Release(5)
	}
}

func pairedByDefer(a *acct) error {
	if !a.Reserve(5) {
		return errBudget
	}
	defer a.Release(5)
	if !work() {
		return errBudget // covered by the defer
	}
	return nil
}

func pairedAcrossGuard(a *acct) {
	granted := a.Reserve(5)
	if !granted {
		return
	}
	work()
	a.Release(5)
}

func conditionalPairing(a *acct, reservedMB float64) {
	// The internal/batch shape: the reserve and the release share a
	// flow-sensitive guard the analyzer cannot correlate; the optimistic
	// join accepts the branch release.
	if reservedMB > 0 {
		if !a.Reserve(reservedMB) {
			panic("over budget")
		}
	}
	work()
	if reservedMB > 0 {
		a.Release(reservedMB)
	}
}

func asyncRelease(a *acct) {
	if a.Reserve(5) {
		go func() {
			work()
			a.Release(5)
		}()
	}
}

func escapeHatch(a *acct) {
	//amsvet:allow reservepair fixture exercising the reasoned escape hatch
	a.Reserve(5)
}

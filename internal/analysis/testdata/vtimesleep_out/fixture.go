// The negative fixture: an identical raw sleep in a package outside the
// simulated-execution set stays quiet — vtimesleep is scoped, not
// global.
//
//amsvet:importpath ams/internal/corpus
package corpus

import "time"

func wallClockFlusher() {
	time.Sleep(time.Millisecond) // wall-clock package: no diagnostic
	tick := time.NewTicker(time.Second)
	tick.Stop()
}

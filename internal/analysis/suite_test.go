package analysis_test

import (
	"strings"
	"testing"

	"ams/internal/analysis"
	"ams/internal/analysis/analysistest"
)

func TestReservePair(t *testing.T) {
	analysistest.Run(t, "testdata/reservepair", analysis.ReservePair)
}

func TestVtimeSleep(t *testing.T) {
	analysistest.Run(t, "testdata/vtimesleep", analysis.VtimeSleep)
}

// TestVtimeSleepOutOfScope proves the analyzer is scoped: the same raw
// timers in a wall-clock package produce no diagnostics.
func TestVtimeSleepOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata/vtimesleep_out", analysis.VtimeSleep)
}

func TestObsclean(t *testing.T) {
	analysistest.Run(t, "testdata/obsclean", analysis.Obsclean)
}

// TestObscleanOutOfScope proves the time.Since rule is scoped to
// simulated-execution packages while the constant-name rule is global.
func TestObscleanOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata/obsclean_out", analysis.Obsclean)
}

func TestSpanPair(t *testing.T) {
	analysistest.Run(t, "testdata/spanpair", analysis.SpanPair)
}

// TestSpanPairOutOfScope proves the analyzer keys on the obs seam's
// receiver type names: the corpus's unrelated Begin(seq) lifecycle and
// span-ish method names on other types produce no diagnostics.
func TestSpanPairOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata/spanpair_out", analysis.SpanPair)
}

func TestLockBlock(t *testing.T) {
	analysistest.Run(t, "testdata/lockblock", analysis.LockBlock)
}

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata/ctxflow", analysis.CtxFlow)
}

// TestSuiteCleanOnTree runs the full suite over the whole module — the
// same run CI's amsvet job performs — so a new invariant violation fails
// tier-1 tests even before CI. Every pre-existing true positive was
// either fixed in this tree or carries a reasoned //amsvet:allow.
func TestSuiteCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader matched no packages")
	}
	suite := analysis.All()
	for _, pkg := range pkgs {
		diags, err := analysis.Check(pkg, suite)
		if err != nil {
			t.Fatalf("check %s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}

// TestAllowNeedsReason covers the escape hatch's own contract: an allow
// comment without a reason (or naming an unknown analyzer) is a finding.
func TestAllowNeedsReason(t *testing.T) {
	pkg, err := analysis.LoadFixture("testdata/allowform")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags, err := analysis.Check(pkg, analysis.All())
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	for i, wantSub := range []string{"needs a reason", "unknown analyzer"} {
		if !strings.Contains(diags[i].Message, wantSub) {
			t.Errorf("diagnostic %d = %q, want substring %q", i, diags[i].Message, wantSub)
		}
	}
}

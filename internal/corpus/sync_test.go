package corpus

import (
	"os"
	"strings"
	"testing"
	"time"
)

// waitStats polls the corpus until pred accepts its stats or a deadline
// passes — the group-commit flusher is asynchronous by design.
func waitStats(t *testing.T, c *Corpus, what string, pred func(Stats) bool) Stats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := c.Stats()
		if pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: stats never converged: %+v", what, st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGroupCommitSyncEveryN checks the record-count trigger: once at
// least N records pile up, the flusher syncs them as one batch, and the
// unsynced tail stays below N.
func TestGroupCommitSyncEveryN(t *testing.T) {
	c := mustOpen(t, tempJournal(t), Options{SyncEveryN: 4})
	populate(t, c, 8, []int{0, 2}, 8)
	waitStats(t, c, "first round", func(st Stats) bool {
		return st.Syncs >= 1 && st.Unsynced < 4
	})
	// A second burst must re-arm the trigger: group commit is a loop,
	// not a one-shot.
	prev := c.Stats().Syncs
	for i := 8; i < 16; i++ {
		seq, err := c.TryAdmit(ds.Scenes[i], "item")
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		c.Begin(seq)
		if err := c.Commit(seq, nil, 100); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	waitStats(t, c, "second round", func(st Stats) bool {
		return st.Syncs > prev && st.Unsynced < 4
	})
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestGroupCommitSyncEveryMS checks the timer trigger: a record tail
// smaller than any count trigger still reaches the disk within the
// window.
func TestGroupCommitSyncEveryMS(t *testing.T) {
	c := mustOpen(t, tempJournal(t), Options{SyncEveryMS: 2})
	populate(t, c, 1, []int{0}, 1)
	waitStats(t, c, "SyncEveryMS", func(st Stats) bool {
		return st.Syncs >= 1 && st.Unsynced == 0
	})
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestCloseSyncsTail: without any flusher configured, Close itself must
// leave no record unsynced.
func TestCloseSyncsTail(t *testing.T) {
	path := tempJournal(t)
	c := mustOpen(t, path, Options{})
	populate(t, c, 2, []int{0}, 2)
	if st := c.Stats(); st.Syncs != 0 {
		t.Fatalf("unconfigured corpus ran %d group syncs", st.Syncs)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	c2 := mustOpen(t, path, Options{})
	defer c2.Close()
	if c2.Len() != 2 {
		t.Fatalf("reopened corpus has %d items, want 2", c2.Len())
	}
}

// TestOpenDirManifest covers the segmented layout: creation writes the
// manifest and one journal per segment, a reopen with n == 0 recovers
// the count, and a contradicting count is refused.
func TestOpenDirManifest(t *testing.T) {
	dir := t.TempDir()
	segs, err := OpenDir(z, dir, 3, Options{})
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	if len(segs) != 3 {
		t.Fatalf("OpenDir returned %d segments, want 3", len(segs))
	}
	for i := range segs {
		if _, err := os.Stat(SegmentPath(dir, i)); err != nil {
			t.Errorf("segment %d journal: %v", i, err)
		}
	}
	for _, s := range segs {
		if err := s.Close(); err != nil {
			t.Fatalf("close segment: %v", err)
		}
	}

	segs, err = OpenDir(z, dir, 0, Options{})
	if err != nil {
		t.Fatalf("reopen with manifest count: %v", err)
	}
	if len(segs) != 3 {
		t.Fatalf("manifest reopen returned %d segments, want 3", len(segs))
	}
	for _, s := range segs {
		s.Close()
	}

	if _, err := OpenDir(z, dir, 2, Options{}); err == nil || !strings.Contains(err.Error(), "holds 3 segments") {
		t.Fatalf("re-partitioning in place = %v, want segment-count error", err)
	}
}

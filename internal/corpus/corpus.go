// Package corpus is the durable ingestion corpus of the labeling server:
// it owns the lifetime of externally ingested items end to end, from
// admission to eviction to crash recovery.
//
// Every lifecycle event is appended to a write-ahead journal — the
// admitted scene, each memoized (item, model) output as inference lands,
// and a commit record when the item's schedule completes — so a server
// killed at an arbitrary point can reopen the journal and recover: items
// committed before the crash are re-served bit-identically from their
// persisted memos without re-running any model, and items admitted but
// not committed re-run only the models whose outputs never reached the
// journal.
//
// In-memory growth is bounded by refcounted eviction. An item holds one
// reference per in-flight schedule; once its result is committed and the
// last reference drops, its memoized outputs are reclaimed (the journal
// keeps the durable copy, and zoo inference is a pure function of the
// scene, so even a re-serve after eviction reproduces the same outputs).
// The MaxResident watermark turns this into admission backpressure: when
// the corpus holds that many resident items, TryAdmit refuses and
// AdmitWait blocks until an eviction frees a slot.
//
// Periodic snapshots compact the journal: a snapshot merges the previous
// snapshot, the journal, and the in-memory state into one blob (so no
// output is ever lost across snapshot generations), then truncates the
// journal. Opening a corpus loads the snapshot and replays the journal
// tail on top, tolerating a torn final record.
package corpus

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"ams/internal/oracle"
	"ams/internal/synth"
	"ams/internal/zoo"
)

// Admission and lifecycle errors.
var (
	// ErrFull is the admission backpressure signal: the corpus already
	// holds MaxResident resident items. Committing (and thereby evicting)
	// in-flight items frees slots.
	ErrFull = errors.New("corpus: resident watermark reached")
	// ErrClosed follows Close.
	ErrClosed = errors.New("corpus: closed")
)

// Options parameterizes a corpus.
type Options struct {
	// MaxResident, when positive, bounds the number of resident items
	// (items whose memoized outputs occupy memory: everything admitted
	// and not yet evicted). Admission of new items past the watermark is
	// refused (TryAdmit) or blocked (AdmitWait) until evictions free
	// slots. Zero means unbounded.
	MaxResident int
	// SnapshotEvery, when positive, compacts the journal into a snapshot
	// automatically after every N commit records. Zero disables
	// automatic snapshots; Snapshot can still be called explicitly.
	SnapshotEvery int
	// SyncEveryN and SyncEveryMS enable group-commit fsync: a background
	// flusher syncs the journal whenever N records have accumulated since
	// the last sync (SyncEveryN) and at least every SyncEveryMS
	// milliseconds (SyncEveryMS), whichever fires first. Writers never
	// block on the flush — they keep appending while a batch syncs — so
	// durability against machine-level power loss costs one fsync per
	// batch instead of one per record. Both zero (the default) preserves
	// the original behavior: the journal is synced only on Close and
	// Snapshot, and an OS crash may lose the tail (a process crash alone
	// never does — the records are in the page cache).
	SyncEveryN  int
	SyncEveryMS float64
}

// entry is one item's corpus-side state. The scene and the commit
// metadata stay for the corpus's lifetime (they are small); the memoized
// outputs — the bulk — live in the item and are reclaimed by eviction.
type entry struct {
	seq  int
	tag  string
	item *oracle.ExternalItem

	refs       int  // in-flight schedules holding the item
	committed  bool // a commit record has been journaled
	evicted    bool // the memo is currently reclaimed
	executed   []int
	scheduleMS float64
}

// Corpus is a durable, evictable collection of ingested items backed by
// a write-ahead journal. Safe for concurrent use.
type Corpus struct {
	z    *zoo.Zoo
	path string
	opts Options

	mu               sync.Mutex
	f                *os.File
	entries          []*entry
	resident         int
	committed        int
	evictedTotal     int64
	journalBytes     int64
	journalRecords   int64
	snapshots        int64
	commitsSinceSnap int
	closed           bool
	err              error         // sticky journal write error
	space            chan struct{} // closed and replaced on every eviction

	// Group-commit fsync state (nil channels when disabled).
	unsynced  int64         // records appended since the last sync
	syncs     int64         // group-commit syncs performed
	syncReq   chan struct{} // capacity 1: nudges the flusher at SyncEveryN
	flushStop chan struct{}
	flushDone chan struct{}

	metrics *Metrics // durability telemetry; nil disables (see SetMetrics)
}

// Stats is a point-in-time summary of the corpus.
type Stats struct {
	Items          int   // items the corpus tracks (admitted, ever)
	Resident       int   // items whose memoized outputs occupy memory
	Committed      int   // items with a journaled completion
	Evicted        int64 // memo reclamations since open
	JournalBytes   int64 // current journal size, including the header
	JournalRecords int64 // records appended since open
	Snapshots      int64 // compacting snapshots taken since open
	Syncs          int64 // group-commit fsync batches since open
	Unsynced       int64 // records appended and not yet fsynced
}

// ItemState is one entry's externally visible lifecycle state.
type ItemState struct {
	Seq        int
	Tag        string
	Committed  bool
	Resident   bool
	MemoCount  int   // model outputs currently memoized in memory
	Executed   []int // the committed schedule's models, in execution order
	ScheduleMS float64
}

// Open opens (or creates) the corpus journaled at path against the zoo.
// An existing snapshot (path + ".snap") is loaded first, then the
// journal is replayed on top; a torn record at the journal's tail — the
// signature of a crash mid-write — is discarded by truncating the file
// to the last complete record, after which appending resumes there.
func Open(z *zoo.Zoo, path string, opts Options) (*Corpus, error) {
	if z == nil {
		return nil, errors.New("corpus: nil zoo")
	}
	if opts.MaxResident < 0 || opts.SnapshotEvery < 0 || opts.SyncEveryN < 0 || opts.SyncEveryMS < 0 {
		return nil, fmt.Errorf("corpus: negative option in %+v", opts)
	}
	c := &Corpus{z: z, path: path, opts: opts, space: make(chan struct{})}
	if err := c.loadSnapshot(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("corpus: open journal: %w", err)
	}
	c.f = f
	info, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("corpus: stat journal: %w", err)
	}
	if info.Size() == 0 {
		if _, err := f.Write(header(journalMagic, journalVersion)); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("corpus: write journal header: %w", err)
		}
		c.journalBytes = headerLen
		c.startFlusher()
		return c, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("corpus: read journal: %w", err)
	}
	if err := checkHeader(data, journalMagic, journalVersion, "journal "+path); err != nil {
		_ = f.Close()
		return nil, err
	}
	recs, goodOffset := parseJournal(data[headerLen:])
	for i := range recs {
		c.apply(&recs[i])
	}
	end := int64(headerLen + goodOffset)
	if end < info.Size() {
		// Torn tail: drop it so appended records start on a clean frame.
		if err := f.Truncate(end); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("corpus: truncate torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(end, 0); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("corpus: seek journal end: %w", err)
	}
	c.journalBytes = end
	c.startFlusher()
	return c, nil
}

// startFlusher launches the group-commit fsync goroutine when either
// sync option is set.
func (c *Corpus) startFlusher() {
	if c.opts.SyncEveryN <= 0 && c.opts.SyncEveryMS <= 0 {
		return
	}
	c.syncReq = make(chan struct{}, 1)
	c.flushStop = make(chan struct{})
	c.flushDone = make(chan struct{})
	go c.flusher()
}

// flusher is the group-commit loop: it syncs the journal on the
// SyncEveryN nudge from writeRecord, on the SyncEveryMS ticker, and
// exits on Close (which performs the final sync itself, after every
// writer is fenced out by the closed flag).
func (c *Corpus) flusher() {
	defer close(c.flushDone)
	var tickC <-chan time.Time
	if c.opts.SyncEveryMS > 0 {
		tick := time.NewTicker(time.Duration(c.opts.SyncEveryMS * float64(time.Millisecond)))
		defer tick.Stop()
		tickC = tick.C
	}
	for {
		select {
		case <-c.flushStop:
			return
		case <-c.syncReq:
			c.syncJournal()
		case <-tickC:
			c.syncJournal()
		}
	}
}

// syncJournal fsyncs the batch of records appended since the last sync.
// The Sync runs outside c.mu — writers keep appending to the journal
// while the batch flushes; those appends simply land in the next batch.
func (c *Corpus) syncJournal() {
	c.mu.Lock()
	if c.closed || c.err != nil || c.unsynced == 0 {
		c.mu.Unlock()
		return
	}
	pending := c.unsynced
	f := c.f
	m := c.metrics
	c.mu.Unlock()
	t0 := m.fsyncStart()
	err := f.Sync()
	m.fsyncDone(t0)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		if c.err == nil && !c.closed {
			c.err = fmt.Errorf("corpus: journal sync: %w", err)
		}
		return
	}
	c.syncs++
	// A concurrent snapshot may have truncated the journal and reset the
	// counter; never let it go negative.
	if c.unsynced -= pending; c.unsynced < 0 {
		c.unsynced = 0
	}
}

// apply folds one replayed journal record into the in-memory state.
// Records that reference unknown sequence numbers (possible only with a
// corrupt-but-decodable body) are ignored rather than fatal: the journal
// is the recovery path, and salvaging every valid record beats refusing
// the whole corpus.
func (c *Corpus) apply(rec *record) {
	switch rec.Kind {
	case kindAdmit:
		if rec.Seq < len(c.entries) {
			return // already known (snapshot overlap after a torn compaction)
		}
		if rec.Seq > len(c.entries) {
			return // gap: unusable without its admit record's predecessors
		}
		c.addEntry(rec.Scene, rec.Tag)
	case kindOutput:
		if rec.Seq < len(c.entries) && rec.Model >= 0 && rec.Model < len(c.z.Models) {
			c.entries[rec.Seq].item.Preload(rec.Model, rec.Out)
		}
	case kindCommit:
		if rec.Seq < len(c.entries) {
			e := c.entries[rec.Seq]
			if !e.committed {
				c.committed++
			}
			e.committed = true
			e.executed = rec.Executed
			e.scheduleMS = rec.ScheduleMS
		}
	}
}

// addEntry creates entry state for a scene and installs the persistence
// hook that journals each memoized output as inference lands. Caller
// holds c.mu (or is single-threaded setup).
func (c *Corpus) addEntry(scene synth.Scene, tag string) *entry {
	e := &entry{seq: len(c.entries), tag: tag, item: oracle.NewExternalItem(c.z, scene)}
	seq := e.seq
	e.item.SetOutputHook(func(m int, out zoo.Output) {
		c.journalOutput(seq, m, out)
	})
	c.entries = append(c.entries, e)
	c.resident++
	return e
}

// admitLocked is the admission body; the caller holds c.mu.
func (c *Corpus) admitLocked(scene synth.Scene, tag string) (int, error) {
	if c.closed {
		return 0, ErrClosed
	}
	if c.err != nil {
		return 0, c.err
	}
	if c.opts.MaxResident > 0 && c.resident >= c.opts.MaxResident {
		return 0, ErrFull
	}
	e := c.addEntry(scene, tag)
	if err := c.writeRecord(&record{Kind: kindAdmit, Seq: e.seq, Tag: tag, Scene: scene}); err != nil {
		return 0, err
	}
	return e.seq, nil
}

// TryAdmit admits one scene without blocking, journaling it, and returns
// its sequence number. ErrFull is the backpressure signal when the
// resident watermark is reached; re-admitting is the caller's retry.
func (c *Corpus) TryAdmit(scene synth.Scene, tag string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.admitLocked(scene, tag)
}

// AdmitWait admits one scene, blocking while the resident watermark is
// reached until an eviction frees a slot, the context is cancelled, or
// the corpus closes (returning ErrClosed).
func (c *Corpus) AdmitWait(ctx context.Context, scene synth.Scene, tag string) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		// The wakeup channel is captured under the same lock that
		// observes fullness: an eviction (or Close) after the unlock
		// closes exactly this channel, so no wakeup can be lost between
		// the failed attempt and the wait.
		c.mu.Lock()
		seq, err := c.admitLocked(scene, tag)
		space := c.space
		c.mu.Unlock()
		if !errors.Is(err, ErrFull) {
			return seq, err
		}
		select {
		case <-space:
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
}

// journalOutput is the persistence hook: one freshly memoized (item,
// model) output lands in the journal. Write failures stick and surface
// on the next Admit/Commit/Close. It also un-evicts bookkeeping when an
// evicted item's output is recomputed (a re-serve after eviction), since
// its memo occupies memory again.
func (c *Corpus) journalOutput(seq, m int, out zoo.Output) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.err != nil {
		return
	}
	e := c.entries[seq]
	if e.evicted {
		e.evicted = false
		c.resident++
	}
	_ = c.writeRecord(&record{Kind: kindOutput, Seq: seq, Model: m, Out: out})
}

// Begin registers one in-flight schedule for the item: the refcount that
// holds its memo resident until Commit or Abort.
func (c *Corpus) Begin(seq int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if seq < 0 || seq >= len(c.entries) {
		return
	}
	c.entries[seq].refs++
}

// Abort drops a Begin'd reference without a completion — an admission
// that failed downstream (queue full, server closed, cancelled wait).
// The entry stays addressable (a retry of the same item reuses its
// slot), but when no other schedule holds it, its watermark slot is
// reclaimed immediately: a client that sheds on ErrQueueFull and never
// retries must not strand resident slots until the corpus wedges.
func (c *Corpus) Abort(seq int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if seq < 0 || seq >= len(c.entries) {
		return
	}
	e := c.entries[seq]
	e.refs--
	if e.committed {
		c.maybeEvict(e)
	} else if e.refs <= 0 {
		// Never ran (an abort precedes any worker): nothing is memoized
		// beyond what the journal already holds, so eviction only frees
		// the slot. A later re-serve re-memoizes and re-registers as
		// resident through the output hook.
		c.evictLocked(e)
	}
}

// Commit journals the item's completion — the explicit end of its
// lifetime: the result is final, readers received their copies, and the
// memo may be reclaimed once the last concurrent schedule commits too.
// Commit is idempotent per schedule; a re-serve of a committed item
// journals a fresh (identical) commit record.
func (c *Corpus) Commit(seq int, executed []int, scheduleMS float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if seq < 0 || seq >= len(c.entries) {
		return fmt.Errorf("corpus: commit of unknown item %d", seq)
	}
	if c.closed {
		return ErrClosed
	}
	e := c.entries[seq]
	e.refs--
	if !e.committed {
		c.committed++
	}
	e.committed = true
	e.executed = append([]int(nil), executed...)
	e.scheduleMS = scheduleMS
	err := c.writeRecord(&record{Kind: kindCommit, Seq: seq, Executed: e.executed, ScheduleMS: scheduleMS})
	c.maybeEvict(e)
	c.commitsSinceSnap++
	if err == nil && c.opts.SnapshotEvery > 0 && c.commitsSinceSnap >= c.opts.SnapshotEvery {
		err = c.snapshotLocked()
	}
	return err
}

// maybeEvict reclaims the entry's memo when its result is committed and
// no in-flight schedule holds it. Caller holds c.mu.
func (c *Corpus) maybeEvict(e *entry) {
	if !e.committed || e.refs > 0 || e.evicted {
		return
	}
	c.evictLocked(e)
}

// evictLocked unconditionally reclaims the entry's memo and its
// watermark slot, waking admission waiters. Caller holds c.mu.
func (c *Corpus) evictLocked(e *entry) {
	if e.evicted {
		return
	}
	e.item.Evict()
	e.evicted = true
	c.resident--
	c.evictedTotal++
	// Wake every AdmitWait blocked on the watermark.
	close(c.space)
	c.space = make(chan struct{})
}

// ReclaimCommitted evicts every committed item no schedule holds —
// called after recovery has read what it needs, so a reopened corpus
// does not pin its whole history in memory.
func (c *Corpus) ReclaimCommitted() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		c.maybeEvict(e)
	}
}

// writeRecord appends one record to the journal. Caller holds c.mu.
// Failures stick: a corpus that cannot journal refuses further
// admissions rather than silently degrading to memory-only.
func (c *Corpus) writeRecord(rec *record) error {
	t0 := c.metrics.appendStart()
	frame, err := encodeRecord(rec)
	if err == nil {
		_, err = c.f.Write(frame)
	}
	if err != nil {
		c.err = fmt.Errorf("corpus: journal write: %w", err)
		return c.err
	}
	c.metrics.appendDone(t0)
	c.journalBytes += int64(len(frame))
	c.journalRecords++
	c.unsynced++
	if c.opts.SyncEveryN > 0 && c.unsynced >= int64(c.opts.SyncEveryN) && c.syncReq != nil {
		select {
		case c.syncReq <- struct{}{}:
		default: // a nudge is already pending
		}
	}
	return nil
}

// Item returns the managed item for a sequence number — the executor
// payload whose memoized outputs recovery reads.
func (c *Corpus) Item(seq int) *oracle.ExternalItem {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries[seq].item
}

// Len returns the number of items the corpus tracks.
func (c *Corpus) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// States returns every item's lifecycle state in sequence order.
func (c *Corpus) States() []ItemState {
	c.mu.Lock()
	defer c.mu.Unlock()
	states := make([]ItemState, len(c.entries))
	for i, e := range c.entries {
		states[i] = ItemState{
			Seq:        e.seq,
			Tag:        e.tag,
			Committed:  e.committed,
			Resident:   !e.evicted,
			MemoCount:  e.item.MemoCount(),
			Executed:   append([]int(nil), e.executed...),
			ScheduleMS: e.scheduleMS,
		}
	}
	return states
}

// Stats returns a point-in-time summary.
func (c *Corpus) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Items:          len(c.entries),
		Resident:       c.resident,
		Committed:      c.committed,
		Evicted:        c.evictedTotal,
		JournalBytes:   c.journalBytes,
		JournalRecords: c.journalRecords,
		Snapshots:      c.snapshots,
		Syncs:          c.syncs,
		Unsynced:       c.unsynced,
	}
}

// Close syncs and closes the journal. The corpus refuses further
// admissions and commits; a sticky journal write error surfaces here.
func (c *Corpus) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.closed = true
	// Wake every AdmitWait blocked on the watermark: their next attempt
	// returns ErrClosed.
	close(c.space)
	c.space = make(chan struct{})
	err := c.err
	f := c.f
	c.mu.Unlock()
	// Stop the group-commit flusher before the final sync. The closed
	// flag fences out every writer, so the Sync below covers the whole
	// journal, and the flusher never touches a closed file.
	if c.flushStop != nil {
		close(c.flushStop)
		<-c.flushDone
	}
	// The final fsync and close run outside c.mu: with the closed flag
	// set and the flusher drained the file is quiescent, and holding the
	// corpus mutex across disk latency is exactly the blocking-under-lock
	// bug class the group-commit rework removed (amsvet: lockblock).
	if syncErr := f.Sync(); err == nil && syncErr != nil {
		err = fmt.Errorf("corpus: sync journal: %w", syncErr)
	}
	if closeErr := f.Close(); err == nil && closeErr != nil {
		err = fmt.Errorf("corpus: close journal: %w", closeErr)
	}
	c.mu.Lock()
	c.unsynced = 0
	c.mu.Unlock()
	return err
}

package corpus

import (
	"time"

	"ams/internal/obs"
)

// Metrics carries the corpus's durability instruments. Spans are real
// seconds — fsync and append cost are genuine I/O, never rescaled onto
// the simulated clock. A nil *Metrics disables instrumentation.
type Metrics struct {
	// Append distributes the encode+write latency of one journal record
	// (taken under the corpus mutex, where appends serialize).
	Append *obs.Histogram
	// Fsync distributes group-commit fsync latency (taken outside the
	// mutex, where the flusher syncs).
	Fsync *obs.Histogram
}

// NewMetrics registers the corpus instruments under the given labels
// (typically a segment index). Nil on a nil registry.
func NewMetrics(reg *obs.Registry, labels ...obs.Label) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Append: reg.Histogram("ams_corpus_append_seconds",
			"Real seconds to encode and append one journal record", labels...),
		Fsync: reg.Histogram("ams_corpus_fsync_seconds",
			"Real seconds per group-commit journal fsync", labels...),
	}
}

func (m *Metrics) appendStart() time.Time {
	if m == nil {
		return time.Time{}
	}
	return obs.Started(m.Append)
}

func (m *Metrics) appendDone(t0 time.Time) {
	if m == nil {
		return
	}
	m.Append.ObserveSince(t0)
}

func (m *Metrics) fsyncStart() time.Time {
	if m == nil {
		return time.Time{}
	}
	return obs.Started(m.Fsync)
}

func (m *Metrics) fsyncDone(t0 time.Time) {
	if m == nil {
		return
	}
	m.Fsync.ObserveSince(t0)
}

// SetMetrics attaches telemetry to the corpus. Call before serving
// traffic (the ams layer does so during server construction).
func (c *Corpus) SetMetrics(m *Metrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metrics = m
}

// RegisterViews exposes the corpus's durability counters on reg as
// labeled views over the same state Stats reads. No-op on nil.
func (c *Corpus) RegisterViews(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("ams_corpus_items",
		"Items the corpus tracks (admitted, ever)",
		func() float64 { return float64(c.Stats().Items) }, labels...)
	reg.GaugeFunc("ams_corpus_resident",
		"Items whose memoized outputs occupy memory",
		func() float64 { return float64(c.Stats().Resident) }, labels...)
	reg.CounterFunc("ams_corpus_evicted_total",
		"Memo reclamations since open",
		func() int64 { return c.Stats().Evicted }, labels...)
	reg.GaugeFunc("ams_corpus_journal_bytes",
		"Current journal size including the header",
		func() float64 { return float64(c.Stats().JournalBytes) }, labels...)
	reg.CounterFunc("ams_corpus_records_total",
		"Journal records appended since open",
		func() int64 { return c.Stats().JournalRecords }, labels...)
	reg.CounterFunc("ams_corpus_syncs_total",
		"Group-commit fsync batches since open",
		func() int64 { return c.Stats().Syncs }, labels...)
	reg.GaugeFunc("ams_corpus_unsynced",
		"Records appended and not yet fsynced",
		func() float64 { return float64(c.Stats().Unsynced) }, labels...)
}

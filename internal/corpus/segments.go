package corpus

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"ams/internal/zoo"
)

// A segmented corpus is one journal per shard under a shared directory:
//
//	dir/manifest        — segment count (so a reopen needs no flags)
//	dir/journal-0.log   — shard 0's write-ahead journal
//	dir/journal-0.log.snap
//	dir/journal-1.log
//	...
//
// Each segment is an ordinary Corpus: its writers never contend with
// another segment's, and crash replay opens all segments in parallel.

const (
	manifestName   = "manifest"
	manifestHeader = "ams-corpus-manifest v1"
)

// SegmentPath is the journal path of segment i under dir.
func SegmentPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("journal-%d.log", i))
}

// OpenDir opens (or creates) a directory of n journal segments. With
// n == 0 the count is read from the directory's manifest — the reopen
// path, where the caller should not need to remember the shard count.
// A count that contradicts an existing manifest is an error: segments
// cannot be re-partitioned in place. Options apply to each segment
// individually (MaxResident bounds residency per segment). Segments are
// opened concurrently, so replay of a crashed multi-segment corpus
// fans out across journals.
func OpenDir(z *zoo.Zoo, dir string, n int, opts Options) ([]*Corpus, error) {
	if n < 0 {
		return nil, fmt.Errorf("corpus: negative segment count %d", n)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("corpus: create segment directory: %w", err)
	}
	mpath := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(mpath)
	switch {
	case err == nil:
		have, perr := parseManifest(data)
		if perr != nil {
			return nil, fmt.Errorf("corpus: manifest %s: %w", mpath, perr)
		}
		if n == 0 {
			n = have
		}
		if n != have {
			return nil, fmt.Errorf("corpus: directory %s holds %d segments, asked to open %d", dir, have, n)
		}
	case os.IsNotExist(err):
		if n == 0 {
			n = 1
		}
		if werr := writeManifest(mpath, n); werr != nil {
			return nil, werr
		}
	default:
		return nil, fmt.Errorf("corpus: read manifest: %w", err)
	}

	segs := make([]*Corpus, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range segs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			segs[i], errs[i] = Open(z, SegmentPath(dir, i), opts)
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			for _, s := range segs {
				if s != nil {
					_ = s.Close()
				}
			}
			return nil, fmt.Errorf("corpus: segment %d: %w", i, e)
		}
	}
	return segs, nil
}

func parseManifest(data []byte) (int, error) {
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 || strings.TrimSpace(lines[0]) != manifestHeader {
		return 0, fmt.Errorf("unrecognized manifest format")
	}
	var n int
	if _, err := fmt.Sscanf(strings.TrimSpace(lines[1]), "segments %d", &n); err != nil || n <= 0 {
		return 0, fmt.Errorf("bad segment count line %q", lines[1])
	}
	return n, nil
}

func writeManifest(path string, n int) error {
	tmp := path + ".tmp"
	body := fmt.Sprintf("%s\nsegments %d\n", manifestHeader, n)
	if err := os.WriteFile(tmp, []byte(body), 0o644); err != nil {
		return fmt.Errorf("corpus: write manifest: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("corpus: install manifest: %w", err)
	}
	return nil
}

package corpus

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"ams/internal/labels"
	"ams/internal/oracle"
	"ams/internal/synth"
	"ams/internal/zoo"
)

var (
	vocab = labels.NewVocabulary()
	z     = zoo.NewZoo(vocab)
	ds    = synth.NewDataset(vocab, synth.MSCOCO(), 30, 97)
)

func tempJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "corpus.wal")
}

func mustOpen(t *testing.T, path string, opts Options) *Corpus {
	t.Helper()
	c, err := Open(z, path, opts)
	if err != nil {
		t.Fatalf("open corpus: %v", err)
	}
	return c
}

// populate admits n scenes, executes the given models on each, and
// commits the first committed of them. It returns the memoized outputs
// keyed by (seq, model) for later bit-identity checks.
func populate(t *testing.T, c *Corpus, n int, models []int, committed int) map[[2]int]zoo.Output {
	t.Helper()
	outs := make(map[[2]int]zoo.Output)
	for i := 0; i < n; i++ {
		seq, err := c.TryAdmit(ds.Scenes[i], "item")
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		c.Begin(seq)
		for _, m := range models {
			outs[[2]int{seq, m}] = c.Item(seq).Output(m)
		}
		if i < committed {
			if err := c.Commit(seq, models, 100); err != nil {
				t.Fatalf("commit %d: %v", i, err)
			}
		} else {
			c.Abort(seq) // uncommitted: drop the schedule ref without a commit record
		}
	}
	return outs
}

func TestJournalRoundTrip(t *testing.T) {
	path := tempJournal(t)
	c := mustOpen(t, path, Options{})
	models := []int{0, 3, 7}
	want := populate(t, c, 6, models, 4)
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	before := zoo.Inferences()
	c2 := mustOpen(t, path, Options{})
	defer c2.Close()
	if got := zoo.Inferences() - before; got != 0 {
		t.Fatalf("opening a journal ran %d inferences; want 0", got)
	}
	if c2.Len() != 6 {
		t.Fatalf("reopened corpus has %d items, want 6", c2.Len())
	}
	states := c2.States()
	for i, st := range states {
		if wantCommitted := i < 4; st.Committed != wantCommitted {
			t.Fatalf("item %d committed=%v, want %v", i, st.Committed, wantCommitted)
		}
		if st.Committed && !reflect.DeepEqual(st.Executed, models) {
			t.Fatalf("item %d executed %v, want %v", i, st.Executed, models)
		}
		if st.MemoCount != len(models) {
			t.Fatalf("item %d has %d memos, want %d", i, st.MemoCount, len(models))
		}
	}
	// Replayed memos are bit-identical and cost no inference.
	for key, out := range want {
		got := c2.Item(key[0]).Output(key[1])
		if !reflect.DeepEqual(got, out) {
			t.Fatalf("item %d model %d output differs after replay", key[0], key[1])
		}
	}
	if got := zoo.Inferences() - before; got != 0 {
		t.Fatalf("reading replayed memos ran %d inferences; want 0", got)
	}
}

func TestJournalTruncationAtArbitraryOffsets(t *testing.T) {
	path := tempJournal(t)
	c := mustOpen(t, path, Options{})
	models := []int{1, 4}
	want := populate(t, c, 5, models, 5)
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Every truncation length from the bare header to the full file must
	// reopen cleanly and recover a bit-identical prefix. Stride keeps the
	// loop fast; the ±1 offsets around record boundaries come for free
	// because the stride is odd.
	dir := t.TempDir()
	for cut := headerLen; cut <= len(data); cut += 137 {
		if cut > len(data) {
			cut = len(data)
		}
		p := filepath.Join(dir, "trunc.wal")
		if err := os.WriteFile(p, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		tc, err := Open(z, p, Options{})
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		for _, st := range tc.States() {
			if st.Committed {
				for _, m := range st.Executed {
					got := tc.Item(st.Seq).Output(m)
					if !reflect.DeepEqual(got, want[[2]int{st.Seq, m}]) {
						t.Fatalf("cut=%d: item %d model %d differs from pre-crash output", cut, st.Seq, m)
					}
				}
			}
		}
		// The torn tail was truncated away: appending must work.
		if _, err := tc.TryAdmit(ds.Scenes[9], "post-crash"); err != nil {
			t.Fatalf("cut=%d: admit after recovery: %v", cut, err)
		}
		if err := tc.Close(); err != nil {
			t.Fatalf("cut=%d: close: %v", cut, err)
		}
		os.Remove(p)
		os.Remove(p + ".snap")
	}
}

func TestJournalHeaderVersioning(t *testing.T) {
	dir := t.TempDir()
	garbage := filepath.Join(dir, "garbage.wal")
	if err := os.WriteFile(garbage, []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(z, garbage, Options{}); err == nil {
		t.Fatal("garbage journal accepted")
	}

	future := filepath.Join(dir, "future.wal")
	if err := os.WriteFile(future, header(journalMagic, journalVersion+1), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(z, future, Options{}); err == nil {
		t.Fatal("future-version journal accepted")
	} else if want := "newer"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("future-version error %q does not mention %q", err, want)
	}
}

func TestRefcountedEviction(t *testing.T) {
	path := tempJournal(t)
	c := mustOpen(t, path, Options{})
	defer c.Close()
	seq, err := c.TryAdmit(ds.Scenes[0], "x")
	if err != nil {
		t.Fatal(err)
	}
	// Two concurrent schedules hold the item.
	c.Begin(seq)
	c.Begin(seq)
	first := c.Item(seq).Output(2)
	if err := c.Commit(seq, []int{2}, 50); err != nil {
		t.Fatal(err)
	}
	if st := c.States()[seq]; !st.Resident {
		t.Fatal("item evicted while a second schedule still holds it")
	}
	if err := c.Commit(seq, []int{2}, 50); err != nil {
		t.Fatal(err)
	}
	st := c.States()[seq]
	if st.Resident || st.MemoCount != 0 {
		t.Fatalf("committed, unreferenced item not evicted: %+v", st)
	}
	if got := c.Stats(); got.Evicted != 1 || got.Resident != 0 {
		t.Fatalf("stats after eviction: %+v", got)
	}
	// An evicted item stays servable: re-execution is deterministic, so
	// the recomputed output is bit-identical — and residency returns.
	if again := c.Item(seq).Output(2); !reflect.DeepEqual(again, first) {
		t.Fatal("re-served output differs from the evicted one")
	}
	if st := c.States()[seq]; !st.Resident {
		t.Fatal("re-memoized item not accounted resident again")
	}
}

func TestMaxResidentWatermarkBackpressure(t *testing.T) {
	path := tempJournal(t)
	c := mustOpen(t, path, Options{MaxResident: 2})
	defer c.Close()
	s0, err := c.TryAdmit(ds.Scenes[0], "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.TryAdmit(ds.Scenes[1], "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.TryAdmit(ds.Scenes[2], "c"); !errors.Is(err, ErrFull) {
		t.Fatalf("third admission got %v, want ErrFull", err)
	}

	// AdmitWait blocks until an eviction frees a slot.
	admitted := make(chan int)
	go func() {
		seq, err := c.AdmitWait(context.Background(), ds.Scenes[2], "c")
		if err != nil {
			t.Errorf("AdmitWait: %v", err)
		}
		admitted <- seq
	}()
	select {
	case seq := <-admitted:
		t.Fatalf("AdmitWait returned %d before any eviction", seq)
	case <-time.After(20 * time.Millisecond):
	}
	c.Begin(s0)
	c.Item(s0).Output(0)
	if err := c.Commit(s0, []int{0}, 10); err != nil {
		t.Fatal(err)
	}
	select {
	case <-admitted:
	case <-time.After(2 * time.Second):
		t.Fatal("AdmitWait still blocked after an eviction freed a slot")
	}

	// Cancellation unblocks a waiter that nothing will ever evict for.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := c.AdmitWait(ctx, ds.Scenes[3], "d"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled AdmitWait got %v", err)
	}
}

func TestSnapshotCompactsAndPreservesEvictedOutputs(t *testing.T) {
	path := tempJournal(t)
	c := mustOpen(t, path, Options{})
	models := []int{0, 5}
	want := populate(t, c, 4, models, 3) // items 0..2 committed => evicted
	grown := c.Stats().JournalBytes
	if err := c.Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if got := c.Stats(); got.JournalBytes >= grown || got.Snapshots != 1 {
		t.Fatalf("snapshot did not compact the journal: %+v (was %d bytes)", got, grown)
	}
	// A second generation: more activity, snapshot again. The first
	// generation's evicted outputs must survive the merge.
	populateFrom := c.Len()
	seq, err := c.TryAdmit(ds.Scenes[populateFrom], "late")
	if err != nil {
		t.Fatal(err)
	}
	c.Begin(seq)
	want[[2]int{seq, 0}] = c.Item(seq).Output(0)
	if err := c.Commit(seq, []int{0}, 10); err != nil {
		t.Fatal(err)
	}
	if err := c.Snapshot(); err != nil {
		t.Fatalf("second snapshot: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	before := zoo.Inferences()
	c2 := mustOpen(t, path, Options{})
	defer c2.Close()
	for _, st := range c2.States() {
		if !st.Committed {
			continue
		}
		for _, m := range st.Executed {
			if got := c2.Item(st.Seq).Output(m); !reflect.DeepEqual(got, want[[2]int{st.Seq, m}]) {
				t.Fatalf("item %d model %d differs after two snapshot generations", st.Seq, m)
			}
		}
	}
	if ran := zoo.Inferences() - before; ran != 0 {
		t.Fatalf("recovery after snapshots ran %d inferences; want 0", ran)
	}
}

func TestSourceIndexing(t *testing.T) {
	// A corpus source over a base store layers corpus items after it.
	base := oracle.Build(z, ds.Scenes[:3])
	path := tempJournal(t)
	c := mustOpen(t, path, Options{})
	defer c.Close()
	src := c.Source(base)
	if src.NumItems() != base.NumItems() {
		t.Fatalf("empty corpus source has %d items, want %d", src.NumItems(), base.NumItems())
	}
	idx, err := src.TryAdmit(ds.Scenes[5], "ext")
	if err != nil {
		t.Fatal(err)
	}
	if idx != base.NumItems() {
		t.Fatalf("first corpus item at index %d, want %d", idx, base.NumItems())
	}
	if src.Truth(idx) != nil {
		t.Fatal("corpus item reports ground truth")
	}
	if src.Truth(0) == nil {
		t.Fatal("base item lost its ground truth")
	}
	src.BeginItem(idx)
	out := src.Output(idx, 1)
	src.CommitItem(idx, []int{1}, 5)
	st := c.States()[0]
	if !st.Committed || st.Resident {
		t.Fatalf("commit through the source did not commit+evict: %+v", st)
	}
	if !reflect.DeepEqual(src.Output(idx, 1), out) {
		t.Fatal("re-served output differs")
	}
	// Base items are not corpus-managed: their hooks are no-ops.
	src.BeginItem(0)
	src.CommitItem(0, []int{1}, 5)
	src.AbortItem(0)
	if got := c.Stats().Items; got != 1 {
		t.Fatalf("base-item lifecycle leaked into the corpus: %d items", got)
	}
}

// TestCloseWakesAdmitWait: a watermark-blocked admitter must observe
// Close (with ErrClosed) instead of sleeping forever.
func TestCloseWakesAdmitWait(t *testing.T) {
	c := mustOpen(t, tempJournal(t), Options{MaxResident: 1})
	if _, err := c.TryAdmit(ds.Scenes[0], "a"); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error)
	go func() {
		_, err := c.AdmitWait(context.Background(), ds.Scenes[1], "b")
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter block
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("woken admitter got %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("AdmitWait still blocked after Close")
	}
}

// TestAbortedAdmissionFreesWatermarkSlot: an admission shed downstream
// (queue full, never begun again) must not strand a resident slot.
func TestAbortedAdmissionFreesWatermarkSlot(t *testing.T) {
	c := mustOpen(t, tempJournal(t), Options{MaxResident: 1})
	defer c.Close()
	seq, err := c.TryAdmit(ds.Scenes[0], "shed")
	if err != nil {
		t.Fatal(err)
	}
	c.Begin(seq)
	c.Abort(seq) // the ErrQueueFull path: begun, never scheduled
	if st := c.Stats(); st.Resident != 0 {
		t.Fatalf("aborted admission still resident: %+v", st)
	}
	// The freed slot admits the next item without any commit happening.
	if _, err := c.TryAdmit(ds.Scenes[1], "next"); err != nil {
		t.Fatalf("watermark slot not reclaimed after abort: %v", err)
	}
	// The aborted entry stays servable: a retry re-serves it and its
	// residency accounting returns through the output hook.
	c.Begin(seq)
	c.Item(seq).Output(0)
	if err := c.Commit(seq, []int{0}, 5); err != nil {
		t.Fatal(err)
	}
	if st := c.States()[seq]; !st.Committed {
		t.Fatal("retried aborted entry did not commit")
	}
}

// TestAdmitWaitEvictionStress hammers the lost-wakeup window: waiters
// must always see concurrent evictions, with no admission stranded.
func TestAdmitWaitEvictionStress(t *testing.T) {
	c := mustOpen(t, tempJournal(t), Options{MaxResident: 2})
	defer c.Close()
	const n = 40
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			seq, err := c.AdmitWait(context.Background(), ds.Scenes[i%len(ds.Scenes)], "s")
			if err == nil {
				c.Begin(seq)
				err = c.Commit(seq, nil, 1) // commit+evict frees the slot
			}
			done <- err
		}(i)
	}
	for i := 0; i < n; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("admission %d stranded: lost eviction wakeup", i)
		}
	}
}

package corpus

import (
	"testing"

	"ams/internal/leaktest"
)

// TestMain fails the package when group-commit flushers or admission
// waiters outlive the tests: Close must fence and drain both.
func TestMain(m *testing.M) {
	leaktest.VerifyTestMain(m)
}

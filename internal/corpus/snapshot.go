package corpus

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"

	"ams/internal/synth"
	"ams/internal/zoo"
)

// The snapshot's wire format: the same magic+version header shape as the
// journal (and internal/oracle's store blob), followed by one gob blob.
var snapMagic = [4]byte{'A', 'M', 'S', 'S'}

const snapVersion = 1

// snapEntry is one item's compacted state: the admit record, the commit
// record, and every memoized output, folded into one place.
type snapEntry struct {
	Seq        int
	Tag        string
	Scene      synth.Scene
	Committed  bool
	Executed   []int
	ScheduleMS float64
	Models     []int        // models with persisted outputs
	Outputs    []zoo.Output // parallel to Models
}

// snapBlob is the gob payload of a snapshot file.
type snapBlob struct {
	Entries []snapEntry
}

// snapPath is where the corpus's snapshot lives.
func (c *Corpus) snapPath() string { return c.path + ".snap" }

// Snapshot compacts the corpus: it merges the previous snapshot, the
// journal, and the in-memory state into one blob at path+".snap"
// (written atomically via rename), then truncates the journal to its
// header. Outputs of evicted items are carried over from the previous
// snapshot or journal, so no persisted output is ever lost, no matter
// how many snapshot generations pass.
func (c *Corpus) Snapshot() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if c.err != nil {
		return c.err
	}
	return c.snapshotLocked()
}

func (c *Corpus) snapshotLocked() error {
	// Persisted outputs not in memory (evicted items): recover them from
	// the previous snapshot, then overlay the journal — later records
	// win, matching replay order.
	disk := make(map[int]map[int]zoo.Output)
	keep := func(seq, m int, out zoo.Output) {
		if disk[seq] == nil {
			disk[seq] = make(map[int]zoo.Output)
		}
		disk[seq][m] = out
	}
	if old, err := readSnapBlob(c.snapPath()); err != nil {
		return err
	} else if old != nil {
		for _, se := range old.Entries {
			for i, m := range se.Models {
				keep(se.Seq, m, se.Outputs[i])
			}
		}
	}
	if data, err := os.ReadFile(c.path); err == nil && checkHeader(data, journalMagic, journalVersion, "journal") == nil {
		recs, _ := parseJournal(data[headerLen:])
		for i := range recs {
			if recs[i].Kind == kindOutput {
				keep(recs[i].Seq, recs[i].Model, recs[i].Out)
			}
		}
	}

	blob := snapBlob{Entries: make([]snapEntry, len(c.entries))}
	for i, e := range c.entries {
		se := snapEntry{
			Seq:        e.seq,
			Tag:        e.tag,
			Scene:      *e.item.Scene(),
			Committed:  e.committed,
			Executed:   append([]int(nil), e.executed...),
			ScheduleMS: e.scheduleMS,
		}
		if e.evicted {
			for m, out := range disk[e.seq] {
				se.Models = append(se.Models, m)
				se.Outputs = append(se.Outputs, out)
			}
			// Deterministic file bytes: map order is randomized.
			sortMemos(se.Models, se.Outputs)
		} else {
			se.Models, se.Outputs = e.item.Memos()
		}
		blob.Entries[i] = se
	}

	tmp := c.snapPath() + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("corpus: snapshot: %w", err)
	}
	var payload bytes.Buffer
	payload.Write(header(snapMagic, snapVersion))
	if err := gob.NewEncoder(&payload).Encode(blob); err != nil {
		_ = f.Close()
		return fmt.Errorf("corpus: snapshot encode: %w", err)
	}
	if _, err := f.Write(payload.Bytes()); err != nil {
		_ = f.Close()
		return fmt.Errorf("corpus: snapshot write: %w", err)
	}
	//amsvet:allow lockblock snapshot is a deliberate stop-the-world compaction: the corpus mutex must pin entries and the journal while the snapshot is fsynced and swapped in
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("corpus: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("corpus: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, c.snapPath()); err != nil {
		return fmt.Errorf("corpus: snapshot rename: %w", err)
	}

	// The snapshot now carries everything: restart the journal. A crash
	// between the rename and this truncation only leaves records the
	// snapshot already contains, which replay deduplicates by Seq.
	if err := c.f.Truncate(0); err != nil {
		return fmt.Errorf("corpus: truncate journal after snapshot: %w", err)
	}
	if _, err := c.f.Seek(0, 0); err != nil {
		return fmt.Errorf("corpus: rewind journal after snapshot: %w", err)
	}
	if _, err := c.f.Write(header(journalMagic, journalVersion)); err != nil {
		return fmt.Errorf("corpus: rewrite journal header: %w", err)
	}
	c.journalBytes = headerLen
	c.commitsSinceSnap = 0
	c.snapshots++
	// The truncated journal holds only its (reconstructible) header, and
	// every truncated record now lives in the fsynced snapshot.
	c.unsynced = 0
	return nil
}

// sortMemos orders a (models, outputs) pair by model ID (insertion sort:
// the lists are at most the zoo's size).
func sortMemos(models []int, outs []zoo.Output) {
	for i := 1; i < len(models); i++ {
		for j := i; j > 0 && models[j-1] > models[j]; j-- {
			models[j-1], models[j] = models[j], models[j-1]
			outs[j-1], outs[j] = outs[j], outs[j-1]
		}
	}
}

// readSnapBlob loads a snapshot file; a missing file returns (nil, nil).
func readSnapBlob(path string) (*snapBlob, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("corpus: read snapshot: %w", err)
	}
	if err := checkHeader(data, snapMagic, snapVersion, "snapshot "+path); err != nil {
		return nil, err
	}
	var blob snapBlob
	if err := gob.NewDecoder(bytes.NewReader(data[headerLen:])).Decode(&blob); err != nil {
		return nil, fmt.Errorf("corpus: decode snapshot: %w", err)
	}
	return &blob, nil
}

// loadSnapshot seeds the in-memory state from the snapshot file, if one
// exists. Every persisted output is preloaded into its item's memo so
// recovery never re-runs a model; callers that do not need the history
// resident reclaim committed items afterwards (ReclaimCommitted).
func (c *Corpus) loadSnapshot() error {
	blob, err := readSnapBlob(c.snapPath())
	if err != nil || blob == nil {
		return err
	}
	for i := range blob.Entries {
		se := &blob.Entries[i]
		if se.Seq != len(c.entries) {
			return fmt.Errorf("corpus: snapshot %s: entry %d has sequence %d (corrupt ordering)",
				c.snapPath(), i, se.Seq)
		}
		e := c.addEntry(se.Scene, se.Tag)
		e.committed = se.Committed
		if se.Committed {
			c.committed++
		}
		e.executed = se.Executed
		e.scheduleMS = se.ScheduleMS
		for j, m := range se.Models {
			if m >= 0 && m < len(c.z.Models) {
				e.item.Preload(m, se.Outputs[j])
			}
		}
	}
	return nil
}

package corpus

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"

	"ams/internal/synth"
	"ams/internal/zoo"
)

// The journal's wire format: a 5-byte magic+version header followed by
// length-prefixed records. Each record is an independently gob-encoded
// record struct preceded by its uvarint byte length, so the reader can
// stop cleanly at the first incomplete or corrupt record — the tail a
// crash mid-write leaves behind — and the writer can append with a fresh
// gob encoder after reopening (a single shared gob stream cannot be
// appended to: the new encoder would re-transmit type definitions the
// decoder rejects as duplicates).
//
// Unlike the store blob in internal/oracle, the journal has no legacy
// headerless form: a missing or unknown header fails loudly.
var journalMagic = [4]byte{'A', 'M', 'S', 'J'}

const (
	journalVersion = 1
	headerLen      = 5 // magic + version byte

	// maxRecordLen bounds a single record's declared size, so a corrupt
	// length prefix cannot ask the reader to allocate gigabytes.
	maxRecordLen = 64 << 20
)

// Record kinds: the three events of an item's durable lifecycle.
const (
	kindAdmit  = 1 // an item entered the corpus (scene + tag)
	kindOutput = 2 // one (item, model) output was memoized
	kindCommit = 3 // the item's schedule completed (result finalized)
)

// record is the tagged union all three journal events share. Only the
// fields of the record's Kind are meaningful.
type record struct {
	Kind int
	Seq  int // corpus sequence number of the item the event belongs to

	// kindAdmit
	Tag   string
	Scene synth.Scene

	// kindOutput
	Model int
	Out   zoo.Output

	// kindCommit
	Executed   []int
	ScheduleMS float64
}

// encodeRecord renders one record in the journal's framing.
func encodeRecord(rec *record) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(rec); err != nil {
		return nil, fmt.Errorf("corpus: encode journal record: %w", err)
	}
	frame := binary.AppendUvarint(nil, uint64(payload.Len()))
	return append(frame, payload.Bytes()...), nil
}

// parseJournal decodes the records of a journal image (everything after
// the header). It returns the complete records and the offset just past
// the last complete one, relative to the start of data: a crash can leave
// a partial record at the tail, which is not an error — the caller
// truncates the file there and appends over it. A corrupt record *body*
// that still gob-decodes to an unknown kind is skipped by the applier,
// not here.
func parseJournal(data []byte) (recs []record, goodOffset int) {
	off := 0
	for off < len(data) {
		length, n := binary.Uvarint(data[off:])
		if n <= 0 || length > maxRecordLen || off+n+int(length) > len(data) {
			break // partial or corrupt tail
		}
		var rec record
		dec := gob.NewDecoder(bytes.NewReader(data[off+n : off+n+int(length)]))
		if err := dec.Decode(&rec); err != nil {
			break
		}
		recs = append(recs, rec)
		off += n + int(length)
	}
	return recs, off
}

// checkHeader validates a journal or snapshot header, distinguishing
// "not this format at all" from "a future version of it".
func checkHeader(data []byte, magic [4]byte, version byte, what string) error {
	if len(data) < headerLen || !bytes.Equal(data[:4], magic[:]) {
		return fmt.Errorf("corpus: %s has no %s header (not a corpus file, or written before versioning)", what, string(magic[:]))
	}
	if data[4] > version {
		return fmt.Errorf("corpus: %s format version %d is newer than this build supports (%d)",
			what, data[4], version)
	}
	return nil
}

// header renders a magic+version header.
func header(magic [4]byte, version byte) []byte {
	return append(magic[:len(magic):len(magic)], version)
}

package corpus

import (
	"context"
	"fmt"

	"ams/internal/oracle"
	"ams/internal/synth"
	"ams/internal/zoo"
)

// Source is the corpus's executor view: an oracle.Executor whose index
// space layers the corpus's items after an optional precomputed base
// store (the held-out test split), exactly as oracle.OnDemand layers
// ingested items — but item lifetimes are corpus-managed: admissions are
// journaled, memoized outputs are journaled as they land, and the serve
// layer's Begin/Commit/Abort calls drive refcounted eviction.
//
// Source also implements the serving layer's corpus contract
// (serve.Corpus), so a server constructed over it journals every item's
// completion without knowing the corpus's internals.
type Source struct {
	c    *Corpus
	base *oracle.Store
}

var _ oracle.Executor = (*Source)(nil)

// Source returns the corpus's executor view over an optional base store
// (which must share the corpus's zoo).
func (c *Corpus) Source(base *oracle.Store) *Source {
	if base != nil && base.Zoo != c.z {
		panic("corpus: base store built against a different zoo")
	}
	return &Source{c: c, base: base}
}

func (s *Source) baseLen() int {
	if s.base == nil {
		return 0
	}
	return s.base.NumItems()
}

// TryAdmit journals one scene into the corpus and returns its executor
// index. ErrFull signals the resident watermark.
func (s *Source) TryAdmit(scene synth.Scene, tag string) (int, error) {
	seq, err := s.c.TryAdmit(scene, tag)
	if err != nil {
		return 0, err
	}
	return s.baseLen() + seq, nil
}

// AdmitWait journals one scene, blocking on the resident watermark until
// an eviction frees a slot or ctx is cancelled.
func (s *Source) AdmitWait(ctx context.Context, scene synth.Scene, tag string) (int, error) {
	seq, err := s.c.AdmitWait(ctx, scene, tag)
	if err != nil {
		return 0, err
	}
	return s.baseLen() + seq, nil
}

// Index maps a corpus sequence number onto the executor's index space.
func (s *Source) Index(seq int) int { return s.baseLen() + seq }

// NumItems implements oracle.Executor.
func (s *Source) NumItems() int { return s.baseLen() + s.c.Len() }

// NumModels implements oracle.Executor.
func (s *Source) NumModels() int { return len(s.c.z.Models) }

// Model implements oracle.Executor.
func (s *Source) Model(m int) *zoo.Model { return s.c.z.Models[m] }

// Output implements oracle.Executor: precomputed for base items; for
// corpus items, memoized (journaled on first computation) — an evicted
// item re-executes the model, deterministically reproducing the evicted
// output.
func (s *Source) Output(i, m int) zoo.Output {
	if i < s.baseLen() {
		return s.base.Output(i, m)
	}
	return s.item(i).Output(m)
}

// Truth implements oracle.Executor: known for base items, never for
// corpus items (ingested production data has no ground truth).
func (s *Source) Truth(i int) *oracle.Truth {
	if i < s.baseLen() {
		return s.base.Truth(i)
	}
	s.item(i) // range check, matching OnDemand's panic behavior
	return nil
}

func (s *Source) item(i int) *oracle.ExternalItem {
	pos := i - s.baseLen()
	if pos < 0 || pos >= s.c.Len() {
		panic(fmt.Sprintf("corpus: item index %d out of range", i))
	}
	return s.c.Item(pos)
}

// BeginItem implements the serve layer's corpus contract: one schedule
// for the item is in flight. Base (test-split) items are not
// corpus-managed, so theirs is a no-op.
func (s *Source) BeginItem(i int) {
	if i >= s.baseLen() {
		s.c.Begin(i - s.baseLen())
	}
}

// CommitItem implements the serve contract: the item's schedule
// completed and its result is final — journal the commit and release the
// schedule's reference (evicting once no reader of the corpus holds it).
func (s *Source) CommitItem(i int, executed []int, scheduleMS float64) {
	if i >= s.baseLen() {
		// The sticky write error surfaces on the admission path; a
		// worker completing an item has nowhere to return it.
		_ = s.c.Commit(i-s.baseLen(), executed, scheduleMS)
	}
}

// AbortItem implements the serve contract: an admission that Begin'd but
// never reached a worker (queue full, server closed) releases its
// reference without a commit record.
func (s *Source) AbortItem(i int) {
	if i >= s.baseLen() {
		s.c.Abort(i - s.baseLen())
	}
}

// Package zoo provides the 30 simulated deep-learning models the AMS
// framework schedules (Table I of the paper: 10 visual tasks, 3 deployed
// models each, 1104 supported labels in total).
//
// A model here is a black box characterized exactly the way the paper's
// scheduler sees one: a supported label set, a mean execution time
// (m.time), a peak GPU memory footprint (m.mem), and a content-dependent
// output — labels with confidences — computed from a scene's latent ground
// truth with model-specific recall/precision noise. Inference is a pure
// function of (scene seed, model identity), so repeated executions of the
// same model on the same image agree, which the oracle relies on.
package zoo

import (
	"fmt"
	"sort"

	"ams/internal/labels"
	"ams/internal/synth"
	"ams/internal/tensor"
)

// LabelConf is one output label with its confidence in [0,1].
type LabelConf struct {
	ID   int
	Conf float64
}

// Output is the result of executing one model on one image.
type Output struct {
	Labels []LabelConf
}

// Value returns the sum of confidences of labels at or above the
// confidence threshold — the paper's notion of valuable output when label
// profits equal confidences.
func (o Output) Value(threshold float64) float64 {
	var v float64
	for _, lc := range o.Labels {
		if lc.Conf >= threshold {
			v += lc.Conf
		}
	}
	return v
}

// Model describes one deployed deep-learning model.
type Model struct {
	ID        int
	Name      string
	Task      labels.Task
	Supported []int // label IDs this model can emit

	TimeMS float64 // mean execution time in milliseconds (m.time)
	MemMB  float64 // peak GPU memory in megabytes (m.mem)

	// Batched-execution cost split: one batched run serving n requests of
	// this model costs BatchLaunchMS + n*BatchMarginalMS of GPU time (the
	// fixed launch overhead — weight loading, kernel setup — paid once,
	// plus a small per-item marginal). The two always sum to TimeMS, so a
	// batch of one costs exactly the nominal serial execution and the
	// serving layer's batch-size-1 path stays identical to the unbatched
	// one. Derived in NewZoo.
	BatchLaunchMS   float64
	BatchMarginalMS float64

	// Quality knobs for the simulated inference.
	Recall   float64 // probability a present, supported concept is emitted
	ConfMean float64 // mean confidence of a true positive
	ConfStd  float64 // stddev of true-positive confidence
	LowConf  float64 // probability a detection surfaces only at low confidence
	FPRate   float64 // expected spurious low-confidence labels per image

	salt uint64 // mixed into the scene seed for deterministic noise
}

// Zoo is the registry of all deployed models.
type Zoo struct {
	Vocab  *labels.Vocabulary
	Models []*Model
	byName map[string]*Model
}

// ByName resolves a model by name.
func (z *Zoo) ByName(name string) (*Model, bool) {
	m, ok := z.byName[name]
	return m, ok
}

// TotalTimeMS returns the summed mean execution time of all models — the
// per-image cost of the paper's "no policy" (≈ 5.16 s).
func (z *Zoo) TotalTimeMS() float64 {
	var t float64
	for _, m := range z.Models {
		t += m.TimeMS
	}
	return t
}

// ModelsForTask returns the models deployed for one task.
func (z *Zoo) ModelsForTask(t labels.Task) []*Model {
	var ms []*Model
	for _, m := range z.Models {
		if m.Task == t {
			ms = append(ms, m)
		}
	}
	return ms
}

// SupportingModels returns up to k model IDs ranked by how much of the
// given per-label value mass each model's supported set covers — the
// "which models would labeling this item run" signal a shard router
// uses for affinity placement. Ties break toward the lower model ID, so
// the ranking is deterministic; models covering none of the labels are
// omitted.
func (z *Zoo) SupportingModels(weights map[int]float64, k int) []int {
	if len(weights) == 0 || k <= 0 {
		return nil
	}
	type scored struct {
		id    int
		score float64
	}
	var ss []scored
	for _, m := range z.Models {
		score := 0.0
		for _, l := range m.Supported {
			score += weights[l]
		}
		if score > 0 {
			ss = append(ss, scored{m.ID, score})
		}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].score != ss[j].score {
			return ss[i].score > ss[j].score
		}
		return ss[i].id < ss[j].id
	})
	if len(ss) > k {
		ss = ss[:k]
	}
	ids := make([]int, len(ss))
	for i, s := range ss {
		ids[i] = s.id
	}
	return ids
}

// spec is the static description of one deployed model.
type spec struct {
	name    string
	task    labels.Task
	timeMS  float64
	memMB   float64
	recall  float64
	conf    float64
	confStd float64
	lowConf float64
	fpRate  float64
	subset  string // "", "animal", "sport": restricted label vocabulary
}

// registrySpecs lists the 30 deployed models: three per task, spanning a
// fast/cheap to slow/accurate spectrum. Mean times are calibrated so the
// total sits near the paper's 5.16 s per image; memories span the paper's
// 500–8000 MB range (Table III).
var registrySpecs = []spec{
	// Object Detection (80 labels).
	{name: "objdet-fast", task: labels.ObjectDetection, timeMS: 90, memMB: 1200,
		recall: 0.80, conf: 0.82, confStd: 0.10, lowConf: 0.18, fpRate: 0.5},
	{name: "objdet-accurate", task: labels.ObjectDetection, timeMS: 380, memMB: 5000,
		recall: 0.95, conf: 0.90, confStd: 0.06, lowConf: 0.06, fpRate: 0.2},
	{name: "objdet-animal", task: labels.ObjectDetection, timeMS: 140, memMB: 1800,
		recall: 0.92, conf: 0.88, confStd: 0.07, lowConf: 0.08, fpRate: 0.1, subset: "animal"},
	// Place Classification (365 labels).
	{name: "placecls-fast", task: labels.PlaceClassification, timeMS: 60, memMB: 700,
		recall: 0.85, conf: 0.78, confStd: 0.12, lowConf: 0.20, fpRate: 0.8},
	{name: "placecls-resnet", task: labels.PlaceClassification, timeMS: 120, memMB: 1500,
		recall: 0.93, conf: 0.86, confStd: 0.08, lowConf: 0.10, fpRate: 0.6},
	{name: "placecls-wide", task: labels.PlaceClassification, timeMS: 210, memMB: 2600,
		recall: 0.97, conf: 0.90, confStd: 0.06, lowConf: 0.05, fpRate: 0.4},
	// Face Detection (1 label).
	{name: "facedet-blaze", task: labels.FaceDetection, timeMS: 50, memMB: 500,
		recall: 0.85, conf: 0.84, confStd: 0.09, lowConf: 0.15, fpRate: 0.05},
	{name: "facedet-mtcnn", task: labels.FaceDetection, timeMS: 110, memMB: 900,
		recall: 0.94, conf: 0.90, confStd: 0.06, lowConf: 0.07, fpRate: 0.04},
	{name: "facedet-dlib", task: labels.FaceDetection, timeMS: 80, memMB: 650,
		recall: 0.90, conf: 0.87, confStd: 0.08, lowConf: 0.10, fpRate: 0.04},
	// Face Landmark Localization (70 labels).
	{name: "facelmk-2dfan", task: labels.FaceLandmark, timeMS: 300, memMB: 3500,
		recall: 0.95, conf: 0.88, confStd: 0.07, lowConf: 0.05, fpRate: 0.0},
	{name: "facelmk-small", task: labels.FaceLandmark, timeMS: 130, memMB: 1100,
		recall: 0.85, conf: 0.80, confStd: 0.10, lowConf: 0.12, fpRate: 0.0},
	{name: "facelmk-openface", task: labels.FaceLandmark, timeMS: 180, memMB: 1600,
		recall: 0.90, conf: 0.84, confStd: 0.08, lowConf: 0.08, fpRate: 0.0},
	// Pose Estimation (17 labels).
	{name: "pose-openpose", task: labels.PoseEstimation, timeMS: 400, memMB: 8000,
		recall: 0.96, conf: 0.90, confStd: 0.06, lowConf: 0.05, fpRate: 0.1},
	{name: "pose-flow", task: labels.PoseEstimation, timeMS: 280, memMB: 5200,
		recall: 0.92, conf: 0.86, confStd: 0.08, lowConf: 0.08, fpRate: 0.1},
	{name: "pose-lite", task: labels.PoseEstimation, timeMS: 150, memMB: 2400,
		recall: 0.84, conf: 0.80, confStd: 0.10, lowConf: 0.15, fpRate: 0.15},
	// Emotion Classification (7 labels).
	{name: "emotion-pylearn", task: labels.EmotionClassification, timeMS: 100, memMB: 800,
		recall: 0.90, conf: 0.82, confStd: 0.10, lowConf: 0.12, fpRate: 0.1},
	{name: "emotion-fast", task: labels.EmotionClassification, timeMS: 55, memMB: 550,
		recall: 0.82, conf: 0.76, confStd: 0.12, lowConf: 0.20, fpRate: 0.15},
	{name: "emotion-deep", task: labels.EmotionClassification, timeMS: 70, memMB: 950,
		recall: 0.93, conf: 0.86, confStd: 0.08, lowConf: 0.08, fpRate: 0.08},
	// Gender Classification (2 labels).
	{name: "gender-vgg", task: labels.GenderClassification, timeMS: 85, memMB: 1300,
		recall: 0.94, conf: 0.88, confStd: 0.07, lowConf: 0.06, fpRate: 0.05},
	{name: "gender-fast", task: labels.GenderClassification, timeMS: 50, memMB: 520,
		recall: 0.86, conf: 0.80, confStd: 0.10, lowConf: 0.14, fpRate: 0.08},
	{name: "gender-mid", task: labels.GenderClassification, timeMS: 65, memMB: 780,
		recall: 0.90, conf: 0.84, confStd: 0.08, lowConf: 0.10, fpRate: 0.06},
	// Action Classification (400 labels).
	{name: "action-i3d", task: labels.ActionClassification, timeMS: 380, memMB: 6000,
		recall: 0.94, conf: 0.88, confStd: 0.07, lowConf: 0.07, fpRate: 0.4},
	{name: "action-tsn", task: labels.ActionClassification, timeMS: 280, memMB: 4200,
		recall: 0.89, conf: 0.83, confStd: 0.09, lowConf: 0.12, fpRate: 0.5},
	{name: "action-sport", task: labels.ActionClassification, timeMS: 160, memMB: 2200,
		recall: 0.93, conf: 0.87, confStd: 0.07, lowConf: 0.08, fpRate: 0.2, subset: "sport"},
	// Hand Landmark Localization (42 labels).
	{name: "handlmk-mvb", task: labels.HandLandmark, timeMS: 340, memMB: 4000,
		recall: 0.93, conf: 0.86, confStd: 0.08, lowConf: 0.08, fpRate: 0.0},
	{name: "handlmk-mid", task: labels.HandLandmark, timeMS: 200, memMB: 2500,
		recall: 0.88, conf: 0.82, confStd: 0.09, lowConf: 0.12, fpRate: 0.0},
	{name: "handlmk-lite", task: labels.HandLandmark, timeMS: 120, memMB: 1300,
		recall: 0.80, conf: 0.78, confStd: 0.11, lowConf: 0.18, fpRate: 0.0},
	// Dog Classification (120 labels).
	{name: "dogcls-finegrained", task: labels.DogClassification, timeMS: 260, memMB: 3200,
		recall: 0.95, conf: 0.90, confStd: 0.06, lowConf: 0.05, fpRate: 0.05},
	{name: "dogcls-mid", task: labels.DogClassification, timeMS: 150, memMB: 1900,
		recall: 0.89, conf: 0.84, confStd: 0.09, lowConf: 0.10, fpRate: 0.08},
	{name: "dogcls-fast", task: labels.DogClassification, timeMS: 90, memMB: 1000,
		recall: 0.82, conf: 0.78, confStd: 0.11, lowConf: 0.16, fpRate: 0.1},
}

// NumModels is the number of deployed models (|M| in the paper).
const NumModels = 30

// batchMarginalFrac is the fraction of a model's mean execution time
// attributed to per-item work when executions are batched; the rest is
// the fixed launch overhead shared by the whole batch. 0.3 reflects the
// usual GPU serving shape — most of a single inference's latency is
// weight movement and kernel launch, which batching amortizes.
const batchMarginalFrac = 0.3

// BatchCostMS returns the simulated GPU time of one batched execution
// serving n requests: sub-linear in n, and exactly TimeMS at n = 1.
func (m *Model) BatchCostMS(n int) float64 {
	if n <= 0 {
		return 0
	}
	return m.BatchLaunchMS + float64(n)*m.BatchMarginalMS
}

// NewZoo builds the 30-model registry over the vocabulary.
func NewZoo(vocab *labels.Vocabulary) *Zoo {
	if len(registrySpecs) != NumModels {
		panic(fmt.Sprintf("zoo: registry has %d specs, want %d", len(registrySpecs), NumModels))
	}
	z := &Zoo{Vocab: vocab, byName: make(map[string]*Model, NumModels)}
	for i, sp := range registrySpecs {
		m := &Model{
			ID:       i,
			Name:     sp.name,
			Task:     sp.task,
			TimeMS:   sp.timeMS,
			MemMB:    sp.memMB,
			Recall:   sp.recall,
			ConfMean: sp.conf,
			ConfStd:  sp.confStd,
			LowConf:  sp.lowConf,
			FPRate:   sp.fpRate,
			salt:     0x9e3779b97f4a7c15 * uint64(i+1),
		}
		// Subtraction (not a second multiply) keeps the n=1 batch cost
		// bit-identical to TimeMS.
		m.BatchMarginalMS = sp.timeMS * batchMarginalFrac
		m.BatchLaunchMS = sp.timeMS - m.BatchMarginalMS
		all := vocab.TaskLabels(sp.task)
		switch sp.subset {
		case "animal":
			for _, id := range all {
				if vocab.Label(id).Animal {
					m.Supported = append(m.Supported, id)
				}
			}
		case "sport":
			for _, id := range all {
				if vocab.Label(id).Sport {
					m.Supported = append(m.Supported, id)
				}
			}
		default:
			m.Supported = append([]int(nil), all...)
		}
		if len(m.Supported) == 0 {
			panic(fmt.Sprintf("zoo: model %s supports no labels", sp.name))
		}
		z.Models = append(z.Models, m)
		z.byName[m.Name] = m
	}
	return z
}

// SupportsLabel reports whether the model can emit the label.
func (m *Model) SupportsLabel(id int) bool {
	for _, s := range m.Supported {
		if s == id {
			return true
		}
	}
	return false
}

// rng returns the deterministic noise source for this (model, scene) pair.
func (m *Model) rng(s *synth.Scene) *tensor.RNG {
	return tensor.NewRNG(s.Seed ^ m.salt)
}

package zoo

import (
	"testing"

	"ams/internal/labels"
	"ams/internal/synth"
)

var (
	vocab = labels.NewVocabulary()
	z     = NewZoo(vocab)
)

func TestZooShape(t *testing.T) {
	if len(z.Models) != NumModels {
		t.Fatalf("zoo has %d models, want %d", len(z.Models), NumModels)
	}
	perTask := map[labels.Task]int{}
	for _, m := range z.Models {
		perTask[m.Task]++
	}
	for _, task := range labels.Tasks() {
		if perTask[task] != 3 {
			t.Fatalf("%v has %d models, want 3", task, perTask[task])
		}
	}
}

func TestZooTimeCalibration(t *testing.T) {
	total := z.TotalTimeMS()
	// Paper: executing all 30 models averages 5.16 s per image.
	if total < 4800 || total > 5500 {
		t.Fatalf("total zoo time %v ms, want ≈5160", total)
	}
	for _, m := range z.Models {
		if m.TimeMS < 50 || m.TimeMS > 400 {
			t.Fatalf("%s time %v outside the paper's 50-400 ms range", m.Name, m.TimeMS)
		}
		if m.MemMB < 500 || m.MemMB > 8000 {
			t.Fatalf("%s memory %v outside the paper's 500-8000 MB range", m.Name, m.MemMB)
		}
	}
}

func TestSupportedLabelsMatchTask(t *testing.T) {
	for _, m := range z.Models {
		if len(m.Supported) == 0 {
			t.Fatalf("%s supports no labels", m.Name)
		}
		for _, id := range m.Supported {
			if vocab.Label(id).Task != m.Task {
				t.Fatalf("%s supports label %q from task %v",
					m.Name, vocab.Label(id).Name, vocab.Label(id).Task)
			}
		}
	}
}

func TestSubsetModels(t *testing.T) {
	animal, ok := z.ByName("objdet-animal")
	if !ok {
		t.Fatal("objdet-animal missing")
	}
	for _, id := range animal.Supported {
		if !vocab.Label(id).Animal {
			t.Fatalf("animal detector supports non-animal %q", vocab.Label(id).Name)
		}
	}
	general, _ := z.ByName("objdet-accurate")
	if len(animal.Supported) >= len(general.Supported) {
		t.Fatal("animal detector should support fewer labels than the general one")
	}
	sport, ok := z.ByName("action-sport")
	if !ok {
		t.Fatal("action-sport missing")
	}
	for _, id := range sport.Supported {
		if !vocab.Label(id).Sport {
			t.Fatalf("sport classifier supports non-sport %q", vocab.Label(id).Name)
		}
	}
}

func TestInferDeterministic(t *testing.T) {
	d := synth.NewDataset(vocab, synth.MSCOCO(), 20, 5)
	for _, m := range z.Models {
		for i := range d.Scenes {
			a := m.Infer(&d.Scenes[i])
			b := m.Infer(&d.Scenes[i])
			if len(a.Labels) != len(b.Labels) {
				t.Fatalf("%s non-deterministic on scene %d", m.Name, i)
			}
			for j := range a.Labels {
				if a.Labels[j] != b.Labels[j] {
					t.Fatalf("%s output differs at %d on scene %d", m.Name, j, i)
				}
			}
		}
	}
}

func TestInferOnlySupportedLabels(t *testing.T) {
	d := synth.NewDataset(vocab, synth.MirFlickr(), 100, 9)
	for _, m := range z.Models {
		sup := make(map[int]bool, len(m.Supported))
		for _, id := range m.Supported {
			sup[id] = true
		}
		for i := range d.Scenes {
			out := m.Infer(&d.Scenes[i])
			seen := map[int]bool{}
			for _, lc := range out.Labels {
				if !sup[lc.ID] {
					t.Fatalf("%s emitted unsupported label %q", m.Name, vocab.Label(lc.ID).Name)
				}
				if lc.Conf <= 0 || lc.Conf >= 1 {
					t.Fatalf("%s confidence %v out of (0,1)", m.Name, lc.Conf)
				}
				if seen[lc.ID] {
					t.Fatalf("%s emitted duplicate label %d", m.Name, lc.ID)
				}
				seen[lc.ID] = true
			}
		}
	}
}

func TestSemanticsFaceModels(t *testing.T) {
	d := synth.NewDataset(vocab, synth.MSCOCO(), 400, 21)
	lmk, _ := z.ByName("facelmk-2dfan")
	emo, _ := z.ByName("emotion-deep")
	for i := range d.Scenes {
		s := &d.Scenes[i]
		if !s.HasFace() {
			if out := lmk.Infer(s); len(out.Labels) > 0 {
				t.Fatalf("face landmarks emitted without a face in scene %d", i)
			}
			// Emotion may only produce low-confidence noise without a face.
			for _, lc := range emo.Infer(s).Labels {
				if lc.Conf >= ValuableThreshold {
					t.Fatalf("high-confidence emotion without a face in scene %d", i)
				}
			}
		}
	}
}

func TestSemanticsDogModels(t *testing.T) {
	d := synth.NewDataset(vocab, synth.VOC2012(), 400, 27)
	dog, _ := z.ByName("dogcls-finegrained")
	hits, correct := 0, 0
	for i := range d.Scenes {
		s := &d.Scenes[i]
		out := dog.Infer(s)
		if !s.HasDog() {
			for _, lc := range out.Labels {
				if lc.Conf >= ValuableThreshold {
					t.Fatalf("high-confidence breed without a dog in scene %d", i)
				}
			}
			continue
		}
		hits++
		for _, lc := range out.Labels {
			if lc.ID == s.Dog && lc.Conf >= ValuableThreshold {
				correct++
			}
		}
	}
	if hits == 0 {
		t.Fatal("no dog scenes generated")
	}
	if float64(correct)/float64(hits) < 0.7 {
		t.Fatalf("fine-grained dog model accuracy %d/%d too low", correct, hits)
	}
}

func TestAccurateBeatsFastRecall(t *testing.T) {
	d := synth.NewDataset(vocab, synth.MSCOCO(), 600, 33)
	fast, _ := z.ByName("objdet-fast")
	acc, _ := z.ByName("objdet-accurate")
	valuable := func(m *Model) int {
		n := 0
		for i := range d.Scenes {
			for _, lc := range m.Infer(&d.Scenes[i]).Labels {
				if lc.Conf >= ValuableThreshold {
					n++
				}
			}
		}
		return n
	}
	if valuable(acc) <= valuable(fast) {
		t.Fatalf("accurate detector (%d) should emit more valuable labels than fast (%d)",
			valuable(acc), valuable(fast))
	}
}

func TestOutputValue(t *testing.T) {
	o := Output{Labels: []LabelConf{{ID: 1, Conf: 0.9}, {ID: 2, Conf: 0.3}, {ID: 3, Conf: 0.6}}}
	got := o.Value(0.5)
	if got < 1.49 || got > 1.51 {
		t.Fatalf("Value = %v, want 1.5", got)
	}
}

func TestModelsForTaskAndByName(t *testing.T) {
	ms := z.ModelsForTask(labels.PoseEstimation)
	if len(ms) != 3 {
		t.Fatalf("pose task has %d models", len(ms))
	}
	if _, ok := z.ByName("no-such-model"); ok {
		t.Fatal("ByName returned ok for a missing model")
	}
}

// TestBatchCostModel pins the batched-execution cost split: a batch of
// one costs exactly the nominal serial time (the serving layer's
// batch-size-1 bit-identity depends on it), and larger batches are
// sub-linear but never cheaper than one plain execution.
func TestBatchCostModel(t *testing.T) {
	for _, m := range z.Models {
		if m.BatchLaunchMS <= 0 || m.BatchMarginalMS <= 0 {
			t.Fatalf("%s: non-positive batch cost split %v + %v", m.Name, m.BatchLaunchMS, m.BatchMarginalMS)
		}
		if got := m.BatchCostMS(1); got != m.TimeMS {
			t.Fatalf("%s: BatchCostMS(1) = %v, want exactly TimeMS %v", m.Name, got, m.TimeMS)
		}
		if got := m.BatchCostMS(0); got != 0 {
			t.Fatalf("%s: BatchCostMS(0) = %v, want 0", m.Name, got)
		}
		for n := 2; n <= 8; n *= 2 {
			cost := m.BatchCostMS(n)
			if cost >= float64(n)*m.TimeMS {
				t.Fatalf("%s: batch of %d costs %v ms, not sub-linear vs %v", m.Name, n, cost, float64(n)*m.TimeMS)
			}
			if cost <= m.TimeMS {
				t.Fatalf("%s: batch of %d costs %v ms, cheaper than one execution %v", m.Name, n, cost, m.TimeMS)
			}
		}
	}
}

package zoo

import (
	"fmt"
	"sync/atomic"

	"ams/internal/labels"
	"ams/internal/synth"
	"ams/internal/tensor"
)

// inferCount counts every simulated model execution process-wide. Tests
// and recovery probes read it through Inferences to assert that a replay
// path served memoized outputs instead of re-running models.
var inferCount atomic.Int64

// Inferences returns the total number of model executions performed by
// this process so far. Deltas around an operation measure how much real
// inference it triggered (zero for a fully memoized replay).
func Inferences() int64 { return inferCount.Load() }

// ValuableThreshold is the confidence at or above which a label counts as
// valuable. The paper treats high-confidence labels as the valuable output
// and low-confidence emissions as waste.
const ValuableThreshold = 0.5

// Infer simulates executing the model on a scene. The result is a pure
// function of (scene, model): re-running the same pair yields the same
// output, which is what lets the oracle precompute "no policy" ground
// truth once and replay it.
func (m *Model) Infer(s *synth.Scene) Output {
	inferCount.Add(1)
	r := m.rng(s)
	var out Output
	emit := func(id int, conf float64) {
		if conf < 0.01 {
			conf = 0.01
		}
		if conf > 0.99 {
			conf = 0.99
		}
		out.Labels = append(out.Labels, LabelConf{ID: id, Conf: conf})
	}
	// truePos draws a confidence for a concept the model actually found;
	// with probability LowConf the hit only surfaces below threshold
	// (e.g. the paper's "Person (0.43)").
	truePos := func(id int) {
		if r.Bool(m.LowConf) {
			emit(id, r.Range(0.10, ValuableThreshold-0.02))
			return
		}
		c := r.NormMeanStd(m.ConfMean, m.ConfStd)
		if c < ValuableThreshold {
			c = ValuableThreshold + (ValuableThreshold-c)*0.2
		}
		emit(id, c)
	}

	switch m.Task {
	case labels.ObjectDetection:
		for _, id := range s.Objects {
			if !m.SupportsLabel(id) {
				continue
			}
			if r.Bool(m.Recall) {
				truePos(id)
			}
		}
		m.falsePositives(r, &out, emit)

	case labels.PlaceClassification:
		if r.Bool(m.Recall) {
			truePos(s.Place)
		} else {
			// Misclassification: a neighbouring scene at modest confidence.
			emit(m.neighbour(r, s.Place), r.Range(0.3, 0.7))
		}
		// Runner-up guesses at low confidence, like "beer hall 0.198".
		for i := 0; i < 1+r.Intn(2); i++ {
			emit(m.randomSupported(r), r.Range(0.05, 0.35))
		}

	case labels.FaceDetection:
		if s.HasFace() {
			if r.Bool(m.Recall) {
				truePos(m.Supported[0])
			}
		} else if r.Bool(m.FPRate) {
			emit(m.Supported[0], r.Range(0.1, 0.4))
		}

	case labels.FaceLandmark:
		if s.HasFace() && r.Bool(m.Recall) {
			// A detected face yields most of the 70 keypoints.
			n := len(m.Supported)
			keep := n - r.Intn(n/4+1)
			perm := r.Perm(n)
			for _, i := range perm[:keep] {
				truePos(m.Supported[i])
			}
		}

	case labels.PoseEstimation:
		if s.HasPerson() {
			for _, id := range s.PoseKP {
				if r.Bool(m.Recall) {
					truePos(id)
				}
			}
		} else if r.Bool(m.FPRate) {
			emit(m.randomSupported(r), r.Range(0.1, 0.4))
		}

	case labels.EmotionClassification:
		if s.HasFace() && s.Emotion >= 0 {
			if r.Bool(m.Recall) {
				truePos(s.Emotion)
			} else {
				emit(m.neighbour(r, s.Emotion), r.Range(0.3, 0.6))
			}
			if r.Bool(0.3) {
				emit(m.randomSupported(r), r.Range(0.05, 0.3))
			}
		} else if r.Bool(m.FPRate) {
			emit(m.randomSupported(r), r.Range(0.1, 0.35))
		}

	case labels.GenderClassification:
		if s.HasFace() && s.Gender >= 0 {
			if r.Bool(m.Recall) {
				truePos(s.Gender)
			} else {
				emit(m.neighbour(r, s.Gender), r.Range(0.35, 0.6))
			}
		} else if r.Bool(m.FPRate) {
			emit(m.randomSupported(r), r.Range(0.1, 0.35))
		}

	case labels.ActionClassification:
		if s.HasPerson() && s.Action >= 0 && m.SupportsLabel(s.Action) {
			if r.Bool(m.Recall) {
				truePos(s.Action)
			} else {
				emit(m.neighbour(r, s.Action), r.Range(0.3, 0.6))
			}
		} else if s.HasPerson() && r.Bool(m.FPRate) {
			// A person with no nameable (or unsupported) action still makes
			// classifiers guess at low confidence.
			emit(m.randomSupported(r), r.Range(0.1, 0.45))
		}

	case labels.HandLandmark:
		if len(s.HandKP) > 0 && r.Bool(m.Recall) {
			for _, id := range s.HandKP {
				if r.Bool(m.Recall) {
					truePos(id)
				}
			}
		}

	case labels.DogClassification:
		if s.HasDog() {
			if r.Bool(m.Recall) {
				truePos(s.Dog)
			} else {
				emit(m.neighbour(r, s.Dog), r.Range(0.3, 0.6))
			}
			if r.Bool(0.25) {
				emit(m.randomSupported(r), r.Range(0.05, 0.3))
			}
		} else if r.Bool(m.FPRate) {
			emit(m.randomSupported(r), r.Range(0.1, 0.35))
		}

	default:
		panic(fmt.Sprintf("zoo: model %s has unknown task %v", m.Name, m.Task))
	}

	return dedupe(out)
}

// falsePositives sprinkles spurious low-confidence detections.
func (m *Model) falsePositives(r *tensor.RNG, out *Output, emit func(int, float64)) {
	n := 0
	for r.Bool(m.FPRate/(float64(n)+1)) && n < 3 {
		emit(m.randomSupported(r), r.Range(0.05, 0.45))
		n++
	}
}

// randomSupported picks a uniformly random supported label.
func (m *Model) randomSupported(r *tensor.RNG) int {
	return m.Supported[r.Intn(len(m.Supported))]
}

// neighbour returns a supported label near the given one — the plausible
// confusion class for a misclassification.
func (m *Model) neighbour(r *tensor.RNG, id int) int {
	for i := 0; i < 8; i++ {
		c := m.randomSupported(r)
		if c != id {
			return c
		}
	}
	return m.Supported[0]
}

// dedupe keeps the highest confidence per label and drops repeats.
func dedupe(o Output) Output {
	if len(o.Labels) < 2 {
		return o
	}
	best := make(map[int]float64, len(o.Labels))
	order := make([]int, 0, len(o.Labels))
	for _, lc := range o.Labels {
		if prev, ok := best[lc.ID]; !ok {
			best[lc.ID] = lc.Conf
			order = append(order, lc.ID)
		} else if lc.Conf > prev {
			best[lc.ID] = lc.Conf
		}
	}
	out := Output{Labels: make([]LabelConf, 0, len(order))}
	for _, id := range order {
		out.Labels = append(out.Labels, LabelConf{ID: id, Conf: best[id]})
	}
	return out
}

package oracle

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
)

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := Load(&buf, z)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if loaded.NumScenes() != store.NumScenes() || loaded.NumModels() != store.NumModels() {
		t.Fatalf("shape mismatch after load")
	}
	for i := 0; i < store.NumScenes(); i++ {
		if loaded.TotalValue(i) != store.TotalValue(i) {
			t.Fatalf("scene %d total value %v != %v", i, loaded.TotalValue(i), store.TotalValue(i))
		}
		for m := 0; m < store.NumModels(); m++ {
			if loaded.ModelValue(i, m) != store.ModelValue(i, m) {
				t.Fatalf("scene %d model %d value differs", i, m)
			}
			a, b := loaded.Output(i, m), store.Output(i, m)
			if len(a.Labels) != len(b.Labels) {
				t.Fatalf("scene %d model %d output size differs", i, m)
			}
		}
	}
	// Trackers over the loaded store behave identically.
	ta, tb := NewTracker(store, 0), NewTracker(loaded, 0)
	for m := 0; m < store.NumModels(); m++ {
		ta.Execute(m)
		tb.Execute(m)
		if ta.Recall() != tb.Recall() {
			t.Fatalf("recall diverges after model %d", m)
		}
	}
}

func TestStoreFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/store.gob"
	if err := store.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	loaded, err := LoadFile(path, z)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if loaded.NumScenes() != store.NumScenes() {
		t.Fatal("file round trip lost scenes")
	}
}

func TestLoadRejectsGarbageAndMismatch(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("junk"), z); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSaveWritesVersionHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	head := buf.Bytes()[:5]
	if !bytes.Equal(head[:4], storeMagic[:]) || head[4] != storeVersion {
		t.Fatalf("saved header %v, want %v + version %d", head, storeMagic, storeVersion)
	}
}

func TestLoadRejectsNewerVersionLoudly(t *testing.T) {
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = storeVersion + 7 // a blob from the future
	_, err := Load(bytes.NewReader(data), z)
	if err == nil {
		t.Fatal("future-version blob accepted")
	}
	if !strings.Contains(err.Error(), "version") {
		t.Fatalf("future-version error %q does not name the version", err)
	}
}

func TestLoadAcceptsLegacyHeaderlessBlob(t *testing.T) {
	// A v0 blob is a bare gob stream with no header — what every store
	// saved before versioning looks like. It must keep loading.
	var buf bytes.Buffer
	blob := storeBlob{Scenes: store.Scenes, Outputs: store.outputs}
	if err := gob.NewEncoder(&buf).Encode(blob); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, z)
	if err != nil {
		t.Fatalf("legacy v0 blob rejected: %v", err)
	}
	if loaded.NumScenes() != store.NumScenes() {
		t.Fatal("legacy load lost scenes")
	}
	for i := 0; i < store.NumScenes(); i++ {
		if loaded.TotalValue(i) != store.TotalValue(i) {
			t.Fatalf("scene %d total value differs under legacy load", i)
		}
	}
}

package oracle

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"

	"ams/internal/synth"
	"ams/internal/zoo"
)

// storeBlob is the gob wire format of a Store. Only the scenes and raw
// outputs travel; the derived valuation tables are rebuilt on load so a
// store saved under one profit configuration cannot silently leak stale
// values into another.
type storeBlob struct {
	Scenes  []synth.Scene
	Outputs [][]zoo.Output
}

// The persisted-store header: a magic tag plus a format version byte, so
// a future wire-format change fails loudly ("written by version N") at
// load time instead of gob-decoding garbage. Version 0 is the historical
// headerless format (a bare gob stream), which Load still accepts.
var storeMagic = [4]byte{'A', 'M', 'S', 'B'}

const storeVersion = 1

// writeHeader emits a magic+version header for one of the oracle's gob
// container formats (the store blob here, the corpus journal and
// snapshot formats reuse the same shape with their own magic).
func writeHeader(w io.Writer, magic [4]byte, version byte) error {
	_, err := w.Write(append(magic[:len(magic):len(magic)], version))
	return err
}

// readHeader consumes a magic+version header from br if one is present,
// returning the version. A stream that does not start with the magic is
// reported as version 0 with nothing consumed — the legacy headerless
// format.
func readHeader(br *bufio.Reader, magic [4]byte) (byte, error) {
	head, err := br.Peek(len(magic) + 1)
	if err != nil || !bytes.Equal(head[:len(magic)], magic[:]) {
		return 0, nil //nolint:nilerr // short/unmatched stream: legacy v0
	}
	if _, err := br.Discard(len(magic) + 1); err != nil {
		return 0, err
	}
	return head[len(magic)], nil
}

// Save writes the store's ground truth to w. The zoo itself is not
// serialized: the loader must supply an identical registry (enforced by
// the output shape check on load).
func (st *Store) Save(w io.Writer) error {
	if err := writeHeader(w, storeMagic, storeVersion); err != nil {
		return fmt.Errorf("oracle: save store: %w", err)
	}
	blob := storeBlob{Scenes: st.Scenes, Outputs: st.outputs}
	if err := gob.NewEncoder(w).Encode(blob); err != nil {
		return fmt.Errorf("oracle: save store: %w", err)
	}
	return nil
}

// Load reads a store previously written with Save and re-derives the
// valuation tables against the provided zoo (label profits are read from
// the zoo's vocabulary at load time). Both the current versioned format
// and the historical headerless (v0) gob stream are accepted; a header
// with an unknown version fails loudly.
func Load(r io.Reader, z *zoo.Zoo) (*Store, error) {
	br := bufio.NewReader(r)
	version, err := readHeader(br, storeMagic)
	if err != nil {
		return nil, fmt.Errorf("oracle: load store: %w", err)
	}
	if version > storeVersion {
		return nil, fmt.Errorf("oracle: load store: format version %d is newer than this build supports (%d)",
			version, storeVersion)
	}
	var blob storeBlob
	if err := gob.NewDecoder(br).Decode(&blob); err != nil {
		return nil, fmt.Errorf("oracle: load store: %w", err)
	}
	if len(blob.Scenes) == 0 || len(blob.Scenes) != len(blob.Outputs) {
		return nil, fmt.Errorf("oracle: load store: inconsistent blob (%d scenes, %d output rows)",
			len(blob.Scenes), len(blob.Outputs))
	}
	for i, row := range blob.Outputs {
		if len(row) != len(z.Models) {
			return nil, fmt.Errorf("oracle: load store: scene %d has %d model outputs, zoo has %d",
				i, len(row), len(z.Models))
		}
	}
	st := &Store{
		Zoo:        z,
		Scenes:     blob.Scenes,
		outputs:    blob.Outputs,
		truths:     make([]Truth, len(blob.Scenes)),
		modelValue: make([][]float64, len(blob.Scenes)),
	}
	st.deriveValues()
	return st, nil
}

// deriveValues recomputes the per-scene valuation tables from the stored
// raw outputs.
func (st *Store) deriveValues() {
	for i := range st.Scenes {
		st.truths[i], st.modelValue[i] = deriveTruth(st.Zoo, st.outputs[i])
	}
}

// deriveTruth reduces one item's full set of model outputs to its ground
// truth and per-model static values. It is the single valuation rule
// shared by the precomputed Store and DeriveTruth's on-demand path.
func deriveTruth(z *zoo.Zoo, outputs []zoo.Output) (Truth, []float64) {
	modelValue := make([]float64, len(z.Models))
	lv := make(map[int]float64)
	for mi := range z.Models {
		for _, lc := range outputs[mi].Labels {
			if lc.Conf < zoo.ValuableThreshold {
				continue
			}
			v := z.Vocab.Label(lc.ID).Profit * lc.Conf
			modelValue[mi] += v
			if v > lv[lc.ID] {
				lv[lc.ID] = v
			}
		}
	}
	// Sum in sorted label order so the total is bit-identical across
	// runs (map iteration order is randomized).
	ids := make([]int, 0, len(lv))
	for id := range lv {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var total float64
	for _, id := range ids {
		total += lv[id]
	}
	return Truth{LabelValue: lv, TotalValue: total}, modelValue
}

// SaveFile writes the store to the named file.
func (st *Store) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("oracle: save store: %w", err)
	}
	if err := st.Save(f); err != nil {
		_ = f.Close()
		return err
	}
	// A store that vanishes on power loss silently re-queries the oracle
	// on the next run, so surface fsync and close failures to the caller
	// instead of pretending the save landed.
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("oracle: sync store: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("oracle: close store: %w", err)
	}
	return nil
}

// LoadFile reads a store from the named file.
func LoadFile(path string, z *zoo.Zoo) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("oracle: load store: %w", err)
	}
	defer f.Close()
	return Load(f, z)
}

package oracle

import (
	"testing"
	"testing/quick"

	"ams/internal/labels"
	"ams/internal/synth"
	"ams/internal/tensor"
	"ams/internal/zoo"
)

var (
	vocab = labels.NewVocabulary()
	z     = zoo.NewZoo(vocab)
	ds    = synth.NewDataset(vocab, synth.MSCOCO(), 60, 41)
	store = Build(z, ds.Scenes)
)

func TestStoreShape(t *testing.T) {
	if store.NumScenes() != 60 || store.NumModels() != zoo.NumModels {
		t.Fatalf("store shape %dx%d", store.NumScenes(), store.NumModels())
	}
}

func TestStoreMatchesLiveInference(t *testing.T) {
	for i := 0; i < 10; i++ {
		for mi, m := range z.Models {
			live := m.Infer(&ds.Scenes[i])
			stored := store.Output(i, mi)
			if len(live.Labels) != len(stored.Labels) {
				t.Fatalf("stored output differs from live inference (scene %d model %s)", i, m.Name)
			}
		}
	}
}

func TestTotalValueConsistency(t *testing.T) {
	// Total value must equal the value recalled after executing all models.
	for i := 0; i < store.NumScenes(); i++ {
		tr := NewTracker(store, i)
		for m := 0; m < store.NumModels(); m++ {
			tr.Execute(m)
		}
		if diff := tr.RecalledValue() - store.TotalValue(i); diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("scene %d: recalled %v != total %v", i, tr.RecalledValue(), store.TotalValue(i))
		}
		if r := tr.Recall(); r < 1-1e-9 || r > 1+1e-9 {
			t.Fatalf("scene %d: full execution recall %v != 1", i, r)
		}
	}
}

func TestRecallMonotoneNondecreasing(t *testing.T) {
	rng := tensor.NewRNG(5)
	for trial := 0; trial < 20; trial++ {
		i := rng.Intn(store.NumScenes())
		tr := NewTracker(store, i)
		prev := tr.Recall()
		if store.TotalValue(i) > 0 && prev != 0 {
			t.Fatalf("fresh tracker recall %v != 0", prev)
		}
		for _, m := range rng.Perm(store.NumModels()) {
			tr.Execute(m)
			r := tr.Recall()
			if r < prev-1e-12 {
				t.Fatalf("recall decreased: %v -> %v", prev, r)
			}
			if r > 1+1e-12 {
				t.Fatalf("recall exceeded 1: %v", r)
			}
			prev = r
		}
	}
}

func TestExecuteTwicePanics(t *testing.T) {
	tr := NewTracker(store, 0)
	tr.Execute(0)
	defer func() {
		if recover() == nil {
			t.Fatal("double execution did not panic")
		}
	}()
	tr.Execute(0)
}

func TestFreshLabelsNeverRepeat(t *testing.T) {
	tr := NewTracker(store, 3)
	seen := map[int]bool{}
	for m := 0; m < store.NumModels(); m++ {
		for _, lc := range tr.Execute(m) {
			if seen[lc.ID] {
				t.Fatalf("label %d reported fresh twice", lc.ID)
			}
			seen[lc.ID] = true
		}
	}
	if len(seen) != len(tr.State()) {
		t.Fatalf("state size %d != distinct fresh labels %d", len(tr.State()), len(seen))
	}
}

func TestStateSorted(t *testing.T) {
	tr := NewTracker(store, 7)
	for m := 0; m < store.NumModels(); m++ {
		tr.Execute(m)
		s := tr.State()
		for j := 1; j < len(s); j++ {
			if s[j-1] >= s[j] {
				t.Fatalf("state not strictly sorted at %d: %v", j, s)
			}
		}
	}
}

func TestOptimalOrderSortsValue(t *testing.T) {
	for i := 0; i < 20; i++ {
		order := store.OptimalOrder(i)
		if len(order) != store.NumModels() {
			t.Fatalf("order length %d", len(order))
		}
		for j := 1; j < len(order); j++ {
			if store.ModelValue(i, order[j-1]) < store.ModelValue(i, order[j]) {
				t.Fatalf("scene %d order not descending at %d", i, j)
			}
		}
	}
}

func TestValuableModelsMatchModelValue(t *testing.T) {
	for i := 0; i < store.NumScenes(); i++ {
		set := map[int]bool{}
		for _, m := range store.ValuableModels(i) {
			set[m] = true
			if store.ModelValue(i, m) <= 0 {
				t.Fatalf("valuable model %d has value 0", m)
			}
		}
		for m := 0; m < store.NumModels(); m++ {
			if !set[m] && store.ModelValue(i, m) > 0 {
				t.Fatalf("model %d has value but not listed valuable", m)
			}
		}
	}
}

func TestOptimalTimeLessThanTotal(t *testing.T) {
	total := z.TotalTimeMS()
	var sum float64
	for i := 0; i < store.NumScenes(); i++ {
		opt := store.OptimalTimeMS(i)
		if opt > total {
			t.Fatalf("scene %d optimal time exceeds no-policy time", i)
		}
		sum += opt
	}
	avg := sum / float64(store.NumScenes())
	// The headline waste claim: the optimal policy should cost well below
	// the ~5.16 s "no policy" average.
	if avg > 0.6*total {
		t.Fatalf("optimal avg %v not clearly below no-policy %v", avg, total)
	}
}

// Property: the evaluation function f(S) = recalled value is submodular
// and monotone. Check monotonicity plus the diminishing-returns inequality
// f(A ∪ {m}) − f(A) ≥ f(B ∪ {m}) − f(B) for random A ⊆ B and m ∉ B.
func TestEvaluationSubmodular(t *testing.T) {
	valueOf := func(scene int, set []int) float64 {
		tr := NewTracker(store, scene)
		for _, m := range set {
			tr.Execute(m)
		}
		return tr.RecalledValue()
	}
	f := func(seed uint16) bool {
		rng := tensor.NewRNG(uint64(seed))
		scene := rng.Intn(store.NumScenes())
		perm := rng.Perm(store.NumModels())
		aLen := rng.Intn(10)
		bLen := aLen + rng.Intn(10)
		if bLen >= len(perm) {
			bLen = len(perm) - 1
		}
		if aLen > bLen {
			aLen = bLen
		}
		a, b := perm[:aLen], perm[:bLen]
		m := perm[len(perm)-1]
		fa := valueOf(scene, a)
		fam := valueOf(scene, append(append([]int(nil), a...), m))
		fb := valueOf(scene, b)
		fbm := valueOf(scene, append(append([]int(nil), b...), m))
		// Monotone.
		if fam < fa-1e-9 || fbm < fb-1e-9 || fb < fa-1e-9 {
			return false
		}
		// Submodular.
		return (fam - fa) >= (fbm-fb)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMarginalValueAgainstBruteForce(t *testing.T) {
	rng := tensor.NewRNG(9)
	for trial := 0; trial < 30; trial++ {
		scene := rng.Intn(store.NumScenes())
		tr := NewTracker(store, scene)
		executedSet := []int{}
		for _, m := range rng.Perm(store.NumModels())[:rng.Intn(8)] {
			tr.Execute(m)
			executedSet = append(executedSet, m)
		}
		for _, m := range tr.Unexecuted() {
			// Brute force: value after executing m minus value now.
			tr2 := NewTracker(store, scene)
			for _, e := range executedSet {
				tr2.Execute(e)
			}
			before := tr2.RecalledValue()
			tr2.Execute(m)
			want := tr2.RecalledValue() - before
			got := tr.MarginalValue(m)
			if diff := got - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("MarginalValue(%d) = %v, brute force %v", m, got, want)
			}
		}
	}
}

func TestUnexecutedShrinks(t *testing.T) {
	tr := NewTracker(store, 1)
	if len(tr.Unexecuted()) != store.NumModels() {
		t.Fatal("fresh tracker should have all models unexecuted")
	}
	tr.Execute(5)
	un := tr.Unexecuted()
	if len(un) != store.NumModels()-1 {
		t.Fatalf("unexecuted count %d", len(un))
	}
	for _, m := range un {
		if m == 5 {
			t.Fatal("executed model still listed")
		}
	}
}

func TestTrackerSceneOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range scene did not panic")
		}
	}()
	NewTracker(store, store.NumScenes())
}

func TestBuildEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty Build did not panic")
		}
	}()
	Build(z, nil)
}

// Package oracle precomputes the "no policy" ground truth the paper's
// evaluation relies on: the output of every model on every image of a
// dataset, stored once ("We executed all 30 models on 5 datasets and
// stored the output labels and confidences"). On top of the store it
// provides the valuable-label bookkeeping (value, recall) and the labeling
// state tracker that both the DRL training environment and the policy
// evaluation loops consume.
package oracle

import (
	"fmt"
	"sort"

	"ams/internal/synth"
	"ams/internal/zoo"
)

// Store holds the precomputed execution results for one scene collection.
type Store struct {
	Zoo    *zoo.Zoo
	Scenes []synth.Scene

	outputs [][]zoo.Output // [scene][model]

	// Derived per-scene ground truth.
	labelValue []map[int]float64 // valuable label -> its truth value (best conf)
	totalValue []float64         // sum of labelValue
	modelValue [][]float64       // [scene][model]: static true output value
}

// Build executes every model on every scene once and indexes the results.
func Build(z *zoo.Zoo, scenes []synth.Scene) *Store {
	if len(scenes) == 0 {
		panic("oracle: empty scene collection")
	}
	st := &Store{
		Zoo:        z,
		Scenes:     scenes,
		outputs:    make([][]zoo.Output, len(scenes)),
		labelValue: make([]map[int]float64, len(scenes)),
		totalValue: make([]float64, len(scenes)),
		modelValue: make([][]float64, len(scenes)),
	}
	for i := range scenes {
		st.outputs[i] = make([]zoo.Output, len(z.Models))
		for mi, m := range z.Models {
			st.outputs[i][mi] = m.Infer(&scenes[i])
		}
	}
	// A valuable label's value is its profit-weighted confidence
	// (f in Eq. 1 with p_i = profit_i * conf).
	st.deriveValues()
	return st
}

// NumScenes returns the number of stored scenes.
func (st *Store) NumScenes() int { return len(st.Scenes) }

// NumModels returns the number of models in the zoo.
func (st *Store) NumModels() int { return len(st.Zoo.Models) }

// Output returns the precomputed output of model m on scene i.
func (st *Store) Output(i, m int) zoo.Output { return st.outputs[i][m] }

// TotalValue returns the summed truth value of every valuable label of
// scene i (the denominator of the recall rate).
func (st *Store) TotalValue(i int) float64 { return st.totalValue[i] }

// LabelValue returns the truth value of a valuable label on scene i
// (0 when the label is not valuable there).
func (st *Store) LabelValue(i, label int) float64 { return st.labelValue[i][label] }

// ModelValue returns the static true output value of model m on scene i:
// the sum of confidences of its valuable output labels, ignoring overlap
// with other models. The paper's optimal policy ranks models by this.
func (st *Store) ModelValue(i, m int) float64 { return st.modelValue[i][m] }

// OptimalOrder returns model indices in descending order of true output
// value on scene i, breaking ties by ascending execution time so the
// cheaper model runs first.
func (st *Store) OptimalOrder(i int) []int {
	order := make([]int, st.NumModels())
	for m := range order {
		order[m] = m
	}
	sort.SliceStable(order, func(a, b int) bool {
		va, vb := st.modelValue[i][order[a]], st.modelValue[i][order[b]]
		if va != vb {
			return va > vb
		}
		return st.Zoo.Models[order[a]].TimeMS < st.Zoo.Models[order[b]].TimeMS
	})
	return order
}

// ValuableModels returns the models that emit at least one valuable label
// on scene i — the executions the ideal "optimal policy" of the paper's
// §II would perform.
func (st *Store) ValuableModels(i int) []int {
	var ms []int
	for m := range st.Zoo.Models {
		if st.modelValue[i][m] > 0 {
			ms = append(ms, m)
		}
	}
	return ms
}

// OptimalTimeMS returns the summed time of the valuable models of scene i
// (the "optimal policy" cost).
func (st *Store) OptimalTimeMS(i int) float64 {
	var t float64
	for _, m := range st.ValuableModels(i) {
		t += st.Zoo.Models[m].TimeMS
	}
	return t
}

// Tracker tracks the labeling state of one scene while models execute:
// which labels have been emitted (at any confidence — this binary vector
// is the DRL observation), which models ran, and how much valuable value
// has been recalled.
type Tracker struct {
	st    *Store
	scene int

	emitted  map[int]bool // label emitted at any confidence
	recalled map[int]bool // valuable label emitted at >= threshold
	executed []bool
	state    []int // sorted emitted label IDs (the sparse DRL state)

	recalledValue float64
	executedCount int
}

// NewTracker starts an empty labeling state for scene i.
func NewTracker(st *Store, i int) *Tracker {
	if i < 0 || i >= st.NumScenes() {
		panic(fmt.Sprintf("oracle: scene index %d out of range", i))
	}
	return &Tracker{
		st:       st,
		scene:    i,
		emitted:  make(map[int]bool),
		recalled: make(map[int]bool),
		executed: make([]bool, st.NumModels()),
	}
}

// Scene returns the tracked scene index.
func (t *Tracker) Scene() int { return t.scene }

// Executed reports whether model m has run.
func (t *Tracker) Executed(m int) bool { return t.executed[m] }

// ExecutedCount returns how many models have run.
func (t *Tracker) ExecutedCount() int { return t.executedCount }

// Execute replays model m's stored output into the state and returns the
// newly emitted labels — O'(m,d) in the paper: labels not previously
// output by any executed model, at any confidence. Executing a model twice
// panics; the scheduler must never do that.
func (t *Tracker) Execute(m int) []zoo.LabelConf {
	if t.executed[m] {
		panic(fmt.Sprintf("oracle: model %d executed twice on scene %d", m, t.scene))
	}
	t.executed[m] = true
	t.executedCount++
	out := t.st.outputs[t.scene][m]
	var fresh []zoo.LabelConf
	for _, lc := range out.Labels {
		if !t.emitted[lc.ID] {
			t.emitted[lc.ID] = true
			t.insertState(lc.ID)
			fresh = append(fresh, lc)
		}
		if lc.Conf >= zoo.ValuableThreshold && !t.recalled[lc.ID] {
			t.recalled[lc.ID] = true
			t.recalledValue += t.st.labelValue[t.scene][lc.ID]
		}
	}
	return fresh
}

// insertState keeps the sparse state sorted for deterministic hashing and
// network input.
func (t *Tracker) insertState(id int) {
	pos := sort.SearchInts(t.state, id)
	t.state = append(t.state, 0)
	copy(t.state[pos+1:], t.state[pos:])
	t.state[pos] = id
}

// State returns the sorted emitted-label indices (the DRL observation).
// The slice aliases tracker storage; callers must copy before mutating.
func (t *Tracker) State() []int { return t.state }

// Recall returns the fraction of total valuable value recalled so far.
// Scenes with no valuable labels report full recall.
func (t *Tracker) Recall() float64 {
	total := t.st.totalValue[t.scene]
	if total <= 0 {
		return 1
	}
	return t.recalledValue / total
}

// RecalledValue returns the absolute recalled value.
func (t *Tracker) RecalledValue() float64 { return t.recalledValue }

// MarginalValue returns the valuable value model m would add to the
// current state: the summed truth value of its valuable labels that have
// not been recalled yet. This is f(S ∪ {m}) − f(S) with perfect knowledge
// and backs the optimal* policy.
func (t *Tracker) MarginalValue(m int) float64 {
	var v float64
	for _, lc := range t.st.outputs[t.scene][m].Labels {
		if lc.Conf >= zoo.ValuableThreshold && !t.recalled[lc.ID] {
			v += t.st.labelValue[t.scene][lc.ID]
		}
	}
	return v
}

// Unexecuted returns the indices of models that have not run, in model-ID
// order.
func (t *Tracker) Unexecuted() []int {
	var ms []int
	for m, done := range t.executed {
		if !done {
			ms = append(ms, m)
		}
	}
	return ms
}

// Package oracle provides the execution substrate the schedulers run on.
//
// Its historical core is the precomputed Store: the "no policy" ground
// truth the paper's evaluation relies on — the output of every model on
// every image of a dataset, stored once ("We executed all 30 models on 5
// datasets and stored the output labels and confidences"). Deployment,
// however, labels *incoming* data whose outputs nobody has precomputed,
// so the package now abstracts execution behind the narrow Executor
// interface with two implementations: the Store (precomputed, with
// ground truth) and the OnDemand path in ondemand.go (lazy per
// (item, model) inference over externally ingested scenes, memoized, no
// ground truth). The Tracker — the labeling-state bookkeeping that both
// DRL training and every policy evaluation loop consume — runs over
// either.
package oracle

import (
	"fmt"
	"sort"

	"ams/internal/synth"
	"ams/internal/zoo"
)

// Truth is the valuable-label ground truth of one item: the per-label
// truth values (profit-weighted best confidence across all models) and
// their sum, the denominator of the recall rate. Externally ingested
// items usually have no Truth — computing one requires executing every
// model, which is exactly what scheduling avoids.
type Truth struct {
	LabelValue map[int]float64 // valuable label -> its truth value
	TotalValue float64         // sum of LabelValue
}

// Executor is the narrow contract every scheduler-facing execution layer
// implements: per-item model outputs plus per-model costs. The Store
// serves precomputed outputs; OnDemand runs zoo inference lazily. All
// executors must be safe for concurrent readers (the serving layer calls
// Output from many goroutines).
type Executor interface {
	// NumItems is the number of addressable items. Implementations may
	// grow (OnDemand ingestion); indices once valid stay valid.
	NumItems() int
	// NumModels is the size of the model zoo.
	NumModels() int
	// Model returns the m-th model (costs, name, supported labels).
	Model(m int) *zoo.Model
	// Output returns model m's output on item i, executing the model if
	// the executor is lazy. Repeated calls agree (outputs are memoized
	// or precomputed).
	Output(i, m int) zoo.Output
	// Truth returns item i's ground truth, or nil when it is unknown.
	Truth(i int) *Truth
}

// Store holds the precomputed execution results for one scene collection.
type Store struct {
	Zoo    *zoo.Zoo
	Scenes []synth.Scene

	outputs [][]zoo.Output // [scene][model]

	// Derived per-scene ground truth.
	truths     []Truth
	modelValue [][]float64 // [scene][model]: static true output value
}

var _ Executor = (*Store)(nil)

// Build executes every model on every scene once and indexes the results.
func Build(z *zoo.Zoo, scenes []synth.Scene) *Store {
	if len(scenes) == 0 {
		panic("oracle: empty scene collection")
	}
	st := &Store{
		Zoo:        z,
		Scenes:     scenes,
		outputs:    make([][]zoo.Output, len(scenes)),
		truths:     make([]Truth, len(scenes)),
		modelValue: make([][]float64, len(scenes)),
	}
	for i := range scenes {
		st.outputs[i] = make([]zoo.Output, len(z.Models))
		for mi, m := range z.Models {
			st.outputs[i][mi] = m.Infer(&scenes[i])
		}
	}
	// A valuable label's value is its profit-weighted confidence
	// (f in Eq. 1 with p_i = profit_i * conf).
	st.deriveValues()
	return st
}

// NumScenes returns the number of stored scenes.
func (st *Store) NumScenes() int { return len(st.Scenes) }

// NumItems implements Executor.
func (st *Store) NumItems() int { return len(st.Scenes) }

// NumModels returns the number of models in the zoo.
func (st *Store) NumModels() int { return len(st.Zoo.Models) }

// Model implements Executor.
func (st *Store) Model(m int) *zoo.Model { return st.Zoo.Models[m] }

// Output returns the precomputed output of model m on scene i.
func (st *Store) Output(i, m int) zoo.Output { return st.outputs[i][m] }

// Truth implements Executor: the store knows every scene's ground truth.
func (st *Store) Truth(i int) *Truth { return &st.truths[i] }

// TotalValue returns the summed truth value of every valuable label of
// scene i (the denominator of the recall rate).
func (st *Store) TotalValue(i int) float64 { return st.truths[i].TotalValue }

// LabelValue returns the truth value of a valuable label on scene i
// (0 when the label is not valuable there).
func (st *Store) LabelValue(i, label int) float64 { return st.truths[i].LabelValue[label] }

// ModelValue returns the static true output value of model m on scene i:
// the sum of confidences of its valuable output labels, ignoring overlap
// with other models. The paper's optimal policy ranks models by this.
func (st *Store) ModelValue(i, m int) float64 { return st.modelValue[i][m] }

// OptimalOrder returns model indices in descending order of true output
// value on scene i, breaking ties by ascending execution time so the
// cheaper model runs first.
func (st *Store) OptimalOrder(i int) []int {
	order := make([]int, st.NumModels())
	for m := range order {
		order[m] = m
	}
	sort.SliceStable(order, func(a, b int) bool {
		va, vb := st.modelValue[i][order[a]], st.modelValue[i][order[b]]
		if va != vb {
			return va > vb
		}
		return st.Zoo.Models[order[a]].TimeMS < st.Zoo.Models[order[b]].TimeMS
	})
	return order
}

// ValuableModels returns the models that emit at least one valuable label
// on scene i — the executions the ideal "optimal policy" of the paper's
// §II would perform.
func (st *Store) ValuableModels(i int) []int {
	var ms []int
	for m := range st.Zoo.Models {
		if st.modelValue[i][m] > 0 {
			ms = append(ms, m)
		}
	}
	return ms
}

// OptimalTimeMS returns the summed time of the valuable models of scene i
// (the "optimal policy" cost).
func (st *Store) OptimalTimeMS(i int) float64 {
	var t float64
	for _, m := range st.ValuableModels(i) {
		t += st.Zoo.Models[m].TimeMS
	}
	return t
}

// Tracker tracks the labeling state of one item while models execute:
// which labels have been emitted (at any confidence — this binary vector
// is the DRL observation), which models ran, and — when the item's ground
// truth is known — how much valuable value has been recalled.
type Tracker struct {
	ex    Executor
	item  int
	truth *Truth // nil when the item's ground truth is unknown

	emitted  map[int]bool // label emitted at any confidence
	recalled map[int]bool // valuable label emitted at >= threshold
	executed []bool
	state    []int // sorted emitted label IDs (the sparse DRL state)

	recalledValue float64
	executedCount int
}

// NewTracker starts an empty labeling state for item i of the executor.
func NewTracker(ex Executor, i int) *Tracker {
	if i < 0 || i >= ex.NumItems() {
		panic(fmt.Sprintf("oracle: item index %d out of range", i))
	}
	return &Tracker{
		ex:       ex,
		item:     i,
		truth:    ex.Truth(i),
		emitted:  make(map[int]bool),
		recalled: make(map[int]bool),
		executed: make([]bool, ex.NumModels()),
	}
}

// Scene returns the tracked item index.
func (t *Tracker) Scene() int { return t.item }

// HasTruth reports whether the item's ground truth is known, i.e.
// whether Recall, RecalledValue and MarginalValue are meaningful.
func (t *Tracker) HasTruth() bool { return t.truth != nil }

// Executed reports whether model m has run.
func (t *Tracker) Executed(m int) bool { return t.executed[m] }

// ExecutedCount returns how many models have run.
func (t *Tracker) ExecutedCount() int { return t.executedCount }

// Execute runs (or replays) model m on the item, folds its output into
// the state, and returns the newly emitted labels — O'(m,d) in the
// paper: labels not previously output by any executed model, at any
// confidence. Executing a model twice panics; the scheduler must never
// do that.
func (t *Tracker) Execute(m int) []zoo.LabelConf {
	if t.executed[m] {
		panic(fmt.Sprintf("oracle: model %d executed twice on item %d", m, t.item))
	}
	t.executed[m] = true
	t.executedCount++
	out := t.ex.Output(t.item, m)
	var fresh []zoo.LabelConf
	for _, lc := range out.Labels {
		if !t.emitted[lc.ID] {
			t.emitted[lc.ID] = true
			t.insertState(lc.ID)
			fresh = append(fresh, lc)
		}
		if t.truth != nil && lc.Conf >= zoo.ValuableThreshold && !t.recalled[lc.ID] {
			t.recalled[lc.ID] = true
			t.recalledValue += t.truth.LabelValue[lc.ID]
		}
	}
	return fresh
}

// insertState keeps the sparse state sorted for deterministic hashing and
// network input.
func (t *Tracker) insertState(id int) {
	pos := sort.SearchInts(t.state, id)
	t.state = append(t.state, 0)
	copy(t.state[pos+1:], t.state[pos:])
	t.state[pos] = id
}

// State returns the sorted emitted-label indices (the DRL observation).
// The slice aliases tracker storage; callers must copy before mutating.
func (t *Tracker) State() []int { return t.state }

// Recall returns the fraction of total valuable value recalled so far.
// Items with known truth and no valuable labels report full recall;
// items without ground truth report 0 — check HasTruth to tell "nothing
// recalled" from "nothing to measure against".
func (t *Tracker) Recall() float64 {
	if t.truth == nil {
		return 0
	}
	if t.truth.TotalValue <= 0 {
		return 1
	}
	return t.recalledValue / t.truth.TotalValue
}

// RecalledValue returns the absolute recalled value (0 without truth).
func (t *Tracker) RecalledValue() float64 { return t.recalledValue }

// MarginalValue returns the valuable value model m would add to the
// current state: the summed truth value of its valuable labels that have
// not been recalled yet. This is f(S ∪ {m}) − f(S) with perfect knowledge
// and backs the optimal* policy. It requires ground truth (and, on a
// lazy executor, forces m's execution); without truth it returns 0.
func (t *Tracker) MarginalValue(m int) float64 {
	if t.truth == nil {
		return 0
	}
	var v float64
	for _, lc := range t.ex.Output(t.item, m).Labels {
		if lc.Conf >= zoo.ValuableThreshold && !t.recalled[lc.ID] {
			v += t.truth.LabelValue[lc.ID]
		}
	}
	return v
}

// Unexecuted returns the indices of models that have not run, in model-ID
// order.
func (t *Tracker) Unexecuted() []int {
	var ms []int
	for m, done := range t.executed {
		if !done {
			ms = append(ms, m)
		}
	}
	return ms
}

package oracle

import (
	"fmt"
	"sync"

	"ams/internal/synth"
	"ams/internal/zoo"
)

// ExternalItem is one externally ingested scene with lazily computed,
// memoized per-model outputs: the first Output(m) runs model m's
// inference, later calls replay the memo. The memo travels with the item,
// so labeling the same item on several surfaces (Label, a server, a
// batch) never re-executes a model. Safe for concurrent use.
type ExternalItem struct {
	z     *zoo.Zoo
	scene synth.Scene

	mu    sync.Mutex
	outs  []zoo.Output
	done  []bool
	truth *Truth // nil unless SetTruth (or DeriveTruth) supplied one

	// hook, when set, observes every freshly computed output — the
	// persistence hook a durable corpus installs to journal memoized
	// results as they land. It is invoked outside the item lock (the
	// hook typically takes its own locks and performs I/O) and never for
	// Preload'ed or replayed outputs.
	hook func(m int, out zoo.Output)
}

// NewExternalItem wraps a scene for on-demand execution against the zoo.
func NewExternalItem(z *zoo.Zoo, scene synth.Scene) *ExternalItem {
	return &ExternalItem{
		z:     z,
		scene: scene,
		outs:  make([]zoo.Output, len(z.Models)),
		done:  make([]bool, len(z.Models)),
	}
}

// Scene returns the item's latent content.
func (it *ExternalItem) Scene() *synth.Scene { return &it.scene }

// Output runs model m on the item if it has not run yet and returns the
// (memoized) result.
func (it *ExternalItem) Output(m int) zoo.Output {
	it.mu.Lock()
	if it.done[m] {
		out := it.outs[m]
		it.mu.Unlock()
		return out
	}
	out := it.z.Models[m].Infer(&it.scene)
	it.outs[m] = out
	it.done[m] = true
	hook := it.hook
	it.mu.Unlock()
	// Outside the lock: the hook may take corpus locks that themselves
	// call back into this item (eviction), so holding it here would
	// invert the lock order.
	if hook != nil {
		hook(m, out)
	}
	return out
}

// SetOutputHook installs the fresh-output observer (see the field doc).
// A durable corpus installs one per managed item; passing nil removes it.
func (it *ExternalItem) SetOutputHook(hook func(m int, out zoo.Output)) {
	it.mu.Lock()
	it.hook = hook
	it.mu.Unlock()
}

// Preload memoizes model m's output without executing it — the replay
// path: outputs recovered from a journal or snapshot short-circuit zoo
// inference. The hook is not invoked (the output is already persisted).
func (it *ExternalItem) Preload(m int, out zoo.Output) {
	it.mu.Lock()
	it.outs[m] = out
	it.done[m] = true
	it.mu.Unlock()
}

// Memos returns a copy of the item's memoized outputs: the models that
// have run and their results, in model order. Snapshot writers call this
// to persist the item's state.
func (it *ExternalItem) Memos() (models []int, outs []zoo.Output) {
	it.mu.Lock()
	defer it.mu.Unlock()
	for m, done := range it.done {
		if done {
			models = append(models, m)
			outs = append(outs, it.outs[m])
		}
	}
	return models, outs
}

// MemoCount returns how many model outputs are currently memoized.
func (it *ExternalItem) MemoCount() int {
	it.mu.Lock()
	defer it.mu.Unlock()
	n := 0
	for _, done := range it.done {
		if done {
			n++
		}
	}
	return n
}

// Evict drops the item's memoized outputs, reclaiming their memory. The
// scene stays, so a later Output re-runs the model — inference is a pure
// function of (scene, model), so the recomputed result is bit-identical
// to the evicted one (and a corpus additionally preserves the original on
// disk). Eviction is the caller's responsibility to sequence: the corpus
// only evicts items whose results are committed and no longer read.
func (it *ExternalItem) Evict() {
	it.mu.Lock()
	it.outs = make([]zoo.Output, len(it.z.Models))
	it.done = make([]bool, len(it.z.Models))
	it.mu.Unlock()
}

// SetTruth attaches known ground truth to the item, enabling recall
// reporting — evaluation harnesses use this; production ingestion has no
// truth to attach.
func (it *ExternalItem) SetTruth(t *Truth) {
	it.mu.Lock()
	it.truth = t
	it.mu.Unlock()
}

// Truth returns the attached ground truth, or nil.
func (it *ExternalItem) Truth() *Truth {
	it.mu.Lock()
	defer it.mu.Unlock()
	return it.truth
}

// DeriveTruth computes a scene's ground truth by executing every model —
// the full-cost operation the Store performs per scene at Build time.
// Evaluation-only: deriving truth costs exactly the "no policy" schedule
// the framework exists to avoid.
func DeriveTruth(z *zoo.Zoo, scene *synth.Scene) *Truth {
	outputs := make([]zoo.Output, len(z.Models))
	for mi, m := range z.Models {
		outputs[mi] = m.Infer(scene)
	}
	truth, _ := deriveTruth(z, outputs)
	return &truth
}

// OnDemand is the lazy Executor: an optional precomputed base (the test
// split, say) extended by externally ingested items that are executed
// on demand, model by model. Indices [0, base.NumItems()) address the
// base; Add appends external items after it. Safe for concurrent use —
// the serving layer Adds and reads from many goroutines.
type OnDemand struct {
	z    *zoo.Zoo
	base *Store // may be nil: a purely external executor

	mu    sync.RWMutex
	items []*ExternalItem
}

var _ Executor = (*OnDemand)(nil)

// NewOnDemand returns an on-demand executor over the zoo, optionally
// layered on a precomputed base store (which must share the zoo).
func NewOnDemand(z *zoo.Zoo, base *Store) *OnDemand {
	if base != nil && base.Zoo != z {
		panic("oracle: on-demand base store built against a different zoo")
	}
	return &OnDemand{z: z, base: base}
}

// Add ingests one external item and returns its index.
func (o *OnDemand) Add(it *ExternalItem) int {
	if it == nil {
		panic("oracle: nil external item")
	}
	if it.z != o.z {
		panic("oracle: external item built against a different zoo")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.items = append(o.items, it)
	return o.baseLen() + len(o.items) - 1
}

func (o *OnDemand) baseLen() int {
	if o.base == nil {
		return 0
	}
	return o.base.NumItems()
}

// NumItems implements Executor.
func (o *OnDemand) NumItems() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.baseLen() + len(o.items)
}

// NumModels implements Executor.
func (o *OnDemand) NumModels() int { return len(o.z.Models) }

// Model implements Executor.
func (o *OnDemand) Model(m int) *zoo.Model { return o.z.Models[m] }

// item resolves an external index (panicking on out-of-range, matching
// the Store's behavior for bad scene indices).
func (o *OnDemand) item(i int) *ExternalItem {
	o.mu.RLock()
	defer o.mu.RUnlock()
	pos := i - o.baseLen()
	if pos < 0 || pos >= len(o.items) {
		panic(fmt.Sprintf("oracle: on-demand item index %d out of range", i))
	}
	return o.items[pos]
}

// Output implements Executor: precomputed for base items, lazy and
// memoized for ingested ones.
func (o *OnDemand) Output(i, m int) zoo.Output {
	if i < o.baseLen() {
		return o.base.Output(i, m)
	}
	return o.item(i).Output(m)
}

// Truth implements Executor: known for base items, usually nil for
// ingested ones.
func (o *OnDemand) Truth(i int) *Truth {
	if i < o.baseLen() {
		return o.base.Truth(i)
	}
	return o.item(i).Truth()
}

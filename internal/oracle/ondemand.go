package oracle

import (
	"fmt"
	"sync"

	"ams/internal/synth"
	"ams/internal/zoo"
)

// ExternalItem is one externally ingested scene with lazily computed,
// memoized per-model outputs: the first Output(m) runs model m's
// inference, later calls replay the memo. The memo travels with the item,
// so labeling the same item on several surfaces (Label, a server, a
// batch) never re-executes a model. Safe for concurrent use.
type ExternalItem struct {
	z     *zoo.Zoo
	scene synth.Scene

	mu    sync.Mutex
	outs  []zoo.Output
	done  []bool
	truth *Truth // nil unless SetTruth (or DeriveTruth) supplied one
}

// NewExternalItem wraps a scene for on-demand execution against the zoo.
func NewExternalItem(z *zoo.Zoo, scene synth.Scene) *ExternalItem {
	return &ExternalItem{
		z:     z,
		scene: scene,
		outs:  make([]zoo.Output, len(z.Models)),
		done:  make([]bool, len(z.Models)),
	}
}

// Scene returns the item's latent content.
func (it *ExternalItem) Scene() *synth.Scene { return &it.scene }

// Output runs model m on the item if it has not run yet and returns the
// (memoized) result.
func (it *ExternalItem) Output(m int) zoo.Output {
	it.mu.Lock()
	defer it.mu.Unlock()
	if !it.done[m] {
		it.outs[m] = it.z.Models[m].Infer(&it.scene)
		it.done[m] = true
	}
	return it.outs[m]
}

// SetTruth attaches known ground truth to the item, enabling recall
// reporting — evaluation harnesses use this; production ingestion has no
// truth to attach.
func (it *ExternalItem) SetTruth(t *Truth) {
	it.mu.Lock()
	it.truth = t
	it.mu.Unlock()
}

// Truth returns the attached ground truth, or nil.
func (it *ExternalItem) Truth() *Truth {
	it.mu.Lock()
	defer it.mu.Unlock()
	return it.truth
}

// DeriveTruth computes a scene's ground truth by executing every model —
// the full-cost operation the Store performs per scene at Build time.
// Evaluation-only: deriving truth costs exactly the "no policy" schedule
// the framework exists to avoid.
func DeriveTruth(z *zoo.Zoo, scene *synth.Scene) *Truth {
	outputs := make([]zoo.Output, len(z.Models))
	for mi, m := range z.Models {
		outputs[mi] = m.Infer(scene)
	}
	truth, _ := deriveTruth(z, outputs)
	return &truth
}

// OnDemand is the lazy Executor: an optional precomputed base (the test
// split, say) extended by externally ingested items that are executed
// on demand, model by model. Indices [0, base.NumItems()) address the
// base; Add appends external items after it. Safe for concurrent use —
// the serving layer Adds and reads from many goroutines.
type OnDemand struct {
	z    *zoo.Zoo
	base *Store // may be nil: a purely external executor

	mu    sync.RWMutex
	items []*ExternalItem
}

var _ Executor = (*OnDemand)(nil)

// NewOnDemand returns an on-demand executor over the zoo, optionally
// layered on a precomputed base store (which must share the zoo).
func NewOnDemand(z *zoo.Zoo, base *Store) *OnDemand {
	if base != nil && base.Zoo != z {
		panic("oracle: on-demand base store built against a different zoo")
	}
	return &OnDemand{z: z, base: base}
}

// Add ingests one external item and returns its index.
func (o *OnDemand) Add(it *ExternalItem) int {
	if it == nil {
		panic("oracle: nil external item")
	}
	if it.z != o.z {
		panic("oracle: external item built against a different zoo")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.items = append(o.items, it)
	return o.baseLen() + len(o.items) - 1
}

func (o *OnDemand) baseLen() int {
	if o.base == nil {
		return 0
	}
	return o.base.NumItems()
}

// NumItems implements Executor.
func (o *OnDemand) NumItems() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.baseLen() + len(o.items)
}

// NumModels implements Executor.
func (o *OnDemand) NumModels() int { return len(o.z.Models) }

// Model implements Executor.
func (o *OnDemand) Model(m int) *zoo.Model { return o.z.Models[m] }

// item resolves an external index (panicking on out-of-range, matching
// the Store's behavior for bad scene indices).
func (o *OnDemand) item(i int) *ExternalItem {
	o.mu.RLock()
	defer o.mu.RUnlock()
	pos := i - o.baseLen()
	if pos < 0 || pos >= len(o.items) {
		panic(fmt.Sprintf("oracle: on-demand item index %d out of range", i))
	}
	return o.items[pos]
}

// Output implements Executor: precomputed for base items, lazy and
// memoized for ingested ones.
func (o *OnDemand) Output(i, m int) zoo.Output {
	if i < o.baseLen() {
		return o.base.Output(i, m)
	}
	return o.item(i).Output(m)
}

// Truth implements Executor: known for base items, usually nil for
// ingested ones.
func (o *OnDemand) Truth(i int) *Truth {
	if i < o.baseLen() {
		return o.base.Truth(i)
	}
	return o.item(i).Truth()
}

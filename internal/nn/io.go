package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"ams/internal/tensor"
)

// netBlob is the gob wire format for a Net: architecture plus every
// parameter tensor in Params() order.
type netBlob struct {
	In      int
	Hidden  []int
	Out     int
	Dueling bool
	Values  [][]float64
}

// Save writes the network to w in gob format.
func (n *Net) Save(w io.Writer) error {
	blob := netBlob{In: n.in, Hidden: n.hidden, Out: n.out, Dueling: n.dueling}
	for _, p := range n.Params() {
		blob.Values = append(blob.Values, append([]float64(nil), p.Val...))
	}
	if err := gob.NewEncoder(w).Encode(blob); err != nil {
		return fmt.Errorf("nn: save network: %w", err)
	}
	return nil
}

// Load reads a network previously written with Save.
func Load(r io.Reader) (*Net, error) {
	var blob netBlob
	if err := gob.NewDecoder(r).Decode(&blob); err != nil {
		return nil, fmt.Errorf("nn: load network: %w", err)
	}
	n := NewNet(Config{In: blob.In, Hidden: blob.Hidden, Out: blob.Out, Dueling: blob.Dueling},
		tensor.NewRNG(0))
	params := n.Params()
	if len(params) != len(blob.Values) {
		return nil, fmt.Errorf("nn: load network: expected %d parameter tensors, got %d",
			len(params), len(blob.Values))
	}
	for i, p := range params {
		if len(p.Val) != len(blob.Values[i]) {
			return nil, fmt.Errorf("nn: load network: parameter %d has %d values, want %d",
				i, len(blob.Values[i]), len(p.Val))
		}
		copy(p.Val, blob.Values[i])
	}
	return n, nil
}

// SaveFile writes the network to the named file.
func (n *Net) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("nn: save network: %w", err)
	}
	defer f.Close()
	if err := n.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a network from the named file.
func LoadFile(path string) (*Net, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nn: load network: %w", err)
	}
	defer f.Close()
	return Load(f)
}

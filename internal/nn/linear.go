// Package nn implements the small feed-forward neural networks used as
// Q-value functions by the AMS reproduction: a multi-layer perceptron with
// ReLU activations, an optional dueling head (value + advantage streams),
// per-sample backpropagation with gradient accumulation, SGD/Adam/RMSProp
// optimizers, Huber and MSE losses, and gob persistence.
//
// The labeling state that feeds the network is a high-dimensional binary
// vector with very few active bits, so the first layer exposes a sparse
// forward/backward fast path indexed by the active positions.
package nn

import (
	"fmt"
	"math"

	"ams/internal/tensor"
)

// Linear is a fully connected layer out = W*x + b with gradient buffers.
type Linear struct {
	In, Out int
	W       *tensor.Mat // Out x In
	B       tensor.Vec  // Out
	GW      *tensor.Mat // gradient accumulator for W
	GB      tensor.Vec  // gradient accumulator for B
}

// NewLinear returns a layer with He-uniform initialised weights, the
// standard choice for ReLU networks.
func NewLinear(in, out int, rng *tensor.RNG) *Linear {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid linear dimensions %dx%d", in, out))
	}
	l := &Linear{
		In:  in,
		Out: out,
		W:   tensor.NewMat(out, in),
		B:   tensor.NewVec(out),
		GW:  tensor.NewMat(out, in),
		GB:  tensor.NewVec(out),
	}
	bound := math.Sqrt(6.0 / float64(in))
	for i := range l.W.Data {
		l.W.Data[i] = rng.Range(-bound, bound)
	}
	return l
}

// ForwardInto computes out = W*x + b.
func (l *Linear) ForwardInto(out, x tensor.Vec) {
	l.W.MulVecInto(out, x)
	out.Add(l.B)
}

// ForwardSparseInto computes out = sum_{j active} W[:,j] + b; it is
// equivalent to ForwardInto with a binary input whose ones sit at active.
func (l *Linear) ForwardSparseInto(out tensor.Vec, active []int) {
	l.W.SumColsSparseInto(out, active)
	out.Add(l.B)
}

// BackwardDense accumulates gradients given the input x that produced the
// last forward pass and the gradient dOut of the loss w.r.t. this layer's
// output. It returns (into dIn, if non-nil) the gradient w.r.t. x.
func (l *Linear) BackwardDense(dIn, dOut, x tensor.Vec) {
	l.GW.AddOuter(1, dOut, x)
	l.GB.Add(dOut)
	if dIn != nil {
		l.W.MulVecTransInto(dIn, dOut)
	}
}

// BackwardSparse accumulates gradients for a binary sparse input: the
// weight gradient only touches the active columns, and no input gradient
// is produced (the input is data, not a learnable activation).
func (l *Linear) BackwardSparse(dOut tensor.Vec, active []int) {
	for _, j := range active {
		for i := 0; i < l.Out; i++ {
			l.GW.Data[i*l.In+j] += dOut[i]
		}
	}
	l.GB.Add(dOut)
}

// ZeroGrad clears the accumulated gradients.
func (l *Linear) ZeroGrad() {
	l.GW.Zero()
	l.GB.Zero()
}

// Params appends this layer's (value, gradient) pairs to dst.
func (l *Linear) Params(dst []Param) []Param {
	return append(dst,
		Param{Val: l.W.Data, Grad: l.GW.Data},
		Param{Val: l.B, Grad: l.GB},
	)
}

// Param is a flattened view of one parameter tensor and its gradient.
type Param struct {
	Val  tensor.Vec
	Grad tensor.Vec
}

package nn

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"ams/internal/tensor"
)

func newTestNet(dueling bool) *Net {
	return NewNet(Config{In: 12, Hidden: []int{8}, Out: 5, Dueling: dueling},
		tensor.NewRNG(1))
}

func TestForwardDeterministic(t *testing.T) {
	n := newTestNet(false)
	a := n.Forward([]int{1, 3}).Clone()
	b := n.Forward([]int{1, 3}).Clone()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("repeated forward differs at %d", i)
		}
	}
}

func TestForwardSparseMatchesManualDense(t *testing.T) {
	// Evaluate the first layer densely by hand and compare with Forward.
	n := newTestNet(false)
	active := []int{0, 4, 11}
	q := n.Forward(active).Clone()

	// Manual forward.
	x := tensor.NewVec(12)
	for _, j := range active {
		x[j] = 1
	}
	h := tensor.NewVec(8)
	n.feature[0].ForwardInto(h, x)
	for i, v := range h {
		if v < 0 {
			h[i] = 0
		}
	}
	out := tensor.NewVec(5)
	n.advHead.ForwardInto(out, h)
	for i := range q {
		if math.Abs(q[i]-out[i]) > 1e-9 {
			t.Fatalf("sparse forward diverges at %d: %v vs %v", i, q[i], out[i])
		}
	}
}

func TestDuelingIdentity(t *testing.T) {
	// Q = V + A - mean(A) implies mean(Q) == V.
	n := newTestNet(true)
	q := n.Forward([]int{2, 5})
	meanQ := q.Mean()
	if math.Abs(meanQ-n.val[0]) > 1e-9 {
		t.Fatalf("dueling identity violated: mean(Q)=%v V=%v", meanQ, n.val[0])
	}
}

func TestEmptyStateForward(t *testing.T) {
	n := newTestNet(false)
	q := n.Forward(nil)
	if len(q) != 5 {
		t.Fatalf("forward on empty state returned %d values", len(q))
	}
	for _, v := range q {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite Q on empty state: %v", q)
		}
	}
}

// numericalGrad estimates dLoss/dtheta for the scalar loss q[a] via central
// differences.
func numericalGrad(n *Net, active []int, a int, theta *float64) float64 {
	const eps = 1e-6
	orig := *theta
	*theta = orig + eps
	up := n.Forward(active)[a]
	*theta = orig - eps
	down := n.Forward(active)[a]
	*theta = orig
	return (up - down) / (2 * eps)
}

func gradCheck(t *testing.T, dueling bool) {
	t.Helper()
	n := newTestNet(dueling)
	active := []int{0, 3, 7}
	const action = 2

	n.ZeroGrad()
	n.Forward(active)
	dQ := tensor.NewVec(5)
	dQ[action] = 1
	n.Backward(dQ)

	params := n.Params()
	checked := 0
	for pi, p := range params {
		stride := 1 + len(p.Val)/7 // sample a handful of coordinates
		for j := 0; j < len(p.Val); j += stride {
			want := numericalGrad(n, active, action, &params[pi].Val[j])
			got := p.Grad[j]
			if math.Abs(want-got) > 1e-5*(1+math.Abs(want)) {
				t.Fatalf("grad mismatch (dueling=%v) param %d idx %d: analytic %v numeric %v",
					dueling, pi, j, got, want)
			}
			checked++
		}
	}
	if checked < 20 {
		t.Fatalf("gradient check only covered %d coordinates", checked)
	}
}

func TestGradCheckPlain(t *testing.T)   { gradCheck(t, false) }
func TestGradCheckDueling(t *testing.T) { gradCheck(t, true) }

func TestLearnsSimpleMapping(t *testing.T) {
	// Supervised toy problem: Q[target(active)] should go to 1, rest to 0,
	// where target = first active index mod out. A few hundred Adam steps
	// must drive the argmax to the target.
	n := NewNet(Config{In: 6, Hidden: []int{16}, Out: 3}, tensor.NewRNG(3))
	opt := NewAdam(0.01)
	rng := tensor.NewRNG(4)
	for step := 0; step < 1500; step++ {
		a := rng.Intn(6)
		active := []int{a}
		target := a % 3
		q := n.Forward(active)
		dQ := tensor.NewVec(3)
		for i := range dQ {
			want := 0.0
			if i == target {
				want = 1.0
			}
			_, g := MSELoss(q[i], want)
			dQ[i] = g
		}
		n.ZeroGrad()
		n.Backward(dQ)
		opt.Step(n)
	}
	for a := 0; a < 6; a++ {
		q := n.Forward([]int{a})
		_, arg := q.Max()
		if arg != a%3 {
			t.Fatalf("network failed to learn mapping: input %d predicted %d want %d (q=%v)",
				a, arg, a%3, q)
		}
	}
}

func TestCloneAndCopyWeights(t *testing.T) {
	n := newTestNet(true)
	c := n.Clone()
	qa := n.Forward([]int{1}).Clone()
	qb := c.Forward([]int{1}).Clone()
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatalf("clone forward differs at %d", i)
		}
	}
	// Mutating the clone must not affect the original.
	c.Params()[0].Val[0] += 1
	qc := n.Forward([]int{1}).Clone()
	for i := range qa {
		if qa[i] != qc[i] {
			t.Fatal("clone shares storage with original")
		}
	}
}

func TestSoftUpdateConverges(t *testing.T) {
	a := newTestNet(false)
	b := NewNet(Config{In: 12, Hidden: []int{8}, Out: 5}, tensor.NewRNG(9))
	for i := 0; i < 200; i++ {
		b.SoftUpdateFrom(a, 0.1)
	}
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].Val {
			if math.Abs(pa[i].Val[j]-pb[i].Val[j]) > 1e-6 {
				t.Fatalf("soft update did not converge at param %d idx %d", i, j)
			}
		}
	}
}

func TestSoftUpdateTauOne(t *testing.T) {
	a := newTestNet(false)
	b := NewNet(Config{In: 12, Hidden: []int{8}, Out: 5}, tensor.NewRNG(9))
	b.SoftUpdateFrom(a, 1)
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].Val {
			if pa[i].Val[j] != pb[i].Val[j] {
				t.Fatal("tau=1 soft update is not a hard copy")
			}
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, dueling := range []bool{false, true} {
		n := newTestNet(dueling)
		var buf bytes.Buffer
		if err := n.Save(&buf); err != nil {
			t.Fatalf("save: %v", err)
		}
		m, err := Load(&buf)
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		qa := n.Forward([]int{0, 5}).Clone()
		qb := m.Forward([]int{0, 5}).Clone()
		for i := range qa {
			if qa[i] != qb[i] {
				t.Fatalf("round-trip forward differs (dueling=%v)", dueling)
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not gob")); err == nil {
		t.Fatal("Load accepted garbage input")
	}
}

func TestNumParams(t *testing.T) {
	n := NewNet(Config{In: 10, Hidden: []int{4}, Out: 3}, tensor.NewRNG(1))
	want := 10*4 + 4 + 4*3 + 3
	if got := n.NumParams(); got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
	d := NewNet(Config{In: 10, Hidden: []int{4}, Out: 3, Dueling: true}, tensor.NewRNG(1))
	want += 4*1 + 1
	if got := d.NumParams(); got != want {
		t.Fatalf("dueling NumParams = %d, want %d", got, want)
	}
}

func TestHuberLoss(t *testing.T) {
	// Quadratic region.
	l, g := HuberLoss(1.5, 1.0, 1.0)
	if math.Abs(l-0.125) > 1e-12 || math.Abs(g-0.5) > 1e-12 {
		t.Fatalf("huber quadratic wrong: l=%v g=%v", l, g)
	}
	// Linear region clips the gradient.
	_, g = HuberLoss(10, 0, 1.0)
	if g != 1 {
		t.Fatalf("huber gradient not clipped: %v", g)
	}
	_, g = HuberLoss(-10, 0, 1.0)
	if g != -1 {
		t.Fatalf("huber negative gradient not clipped: %v", g)
	}
}

func TestHuberGradientMatchesNumeric(t *testing.T) {
	f := func(p8, t8 int8) bool {
		p, tgt := float64(p8)/16, float64(t8)/16
		const eps = 1e-6
		lUp, _ := HuberLoss(p+eps, tgt, 1.0)
		lDn, _ := HuberLoss(p-eps, tgt, 1.0)
		_, g := HuberLoss(p, tgt, 1.0)
		num := (lUp - lDn) / (2 * eps)
		return math.Abs(num-g) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizersReduceLoss(t *testing.T) {
	mk := func() (*Net, []int, float64) {
		n := NewNet(Config{In: 4, Hidden: []int{6}, Out: 2}, tensor.NewRNG(5))
		return n, []int{1, 2}, 3.0
	}
	step := func(n *Net, active []int, target float64, opt Optimizer) float64 {
		q := n.Forward(active)
		loss, g := MSELoss(q[0], target)
		dQ := tensor.NewVec(2)
		dQ[0] = g
		n.ZeroGrad()
		n.Backward(dQ)
		opt.Step(n)
		return loss
	}
	for name, opt := range map[string]Optimizer{
		"sgd":     NewSGD(0.05, 0.9),
		"adam":    NewAdam(0.01),
		"rmsprop": NewRMSProp(0.005),
	} {
		n, active, target := mk()
		first := step(n, active, target, opt)
		var last float64
		for i := 0; i < 400; i++ {
			last = step(n, active, target, opt)
		}
		if last > first*0.05 {
			t.Fatalf("%s failed to reduce loss: first=%v last=%v", name, first, last)
		}
	}
}

func TestInvalidConfigsPanic(t *testing.T) {
	cases := []Config{
		{In: 0, Hidden: []int{4}, Out: 2},
		{In: 4, Hidden: nil, Out: 2},
		{In: 4, Hidden: []int{0}, Out: 2},
		{In: 4, Hidden: []int{4}, Out: 0},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %d did not panic: %+v", i, cfg)
				}
			}()
			NewNet(cfg, tensor.NewRNG(1))
		}()
	}
}

package nn

import (
	"math"

	"ams/internal/tensor"
)

// Optimizer applies accumulated gradients to a network's parameters.
// Implementations hold per-parameter state (momenta) keyed by position in
// the network's Params() slice, so an optimizer must be used with a single
// network for its whole life.
type Optimizer interface {
	// Step applies one update using the gradients currently accumulated in
	// the network and then leaves the gradients untouched (callers usually
	// ZeroGrad afterwards).
	Step(n *Net)
}

// SGD is stochastic gradient descent with optional classical momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity []tensor.Vec
}

// NewSGD returns an SGD optimizer with the given learning rate and
// momentum coefficient (0 disables momentum).
func NewSGD(lr, momentum float64) *SGD { return &SGD{LR: lr, Momentum: momentum} }

// Step implements Optimizer.
func (o *SGD) Step(n *Net) {
	params := n.Params()
	if o.velocity == nil {
		o.velocity = makeState(params)
	}
	for i, p := range params {
		v := o.velocity[i]
		for j := range p.Val {
			v[j] = o.Momentum*v[j] - o.LR*p.Grad[j]
			p.Val[j] += v[j]
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba, 2015).
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t int
	m []tensor.Vec
	v []tensor.Vec
}

// NewAdam returns an Adam optimizer with standard defaults for the moment
// coefficients.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step implements Optimizer.
func (o *Adam) Step(n *Net) {
	params := n.Params()
	if o.m == nil {
		o.m = makeState(params)
		o.v = makeState(params)
	}
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for i, p := range params {
		m, v := o.m[i], o.v[i]
		for j := range p.Val {
			g := p.Grad[j]
			m[j] = o.Beta1*m[j] + (1-o.Beta1)*g
			v[j] = o.Beta2*v[j] + (1-o.Beta2)*g*g
			mhat := m[j] / bc1
			vhat := v[j] / bc2
			p.Val[j] -= o.LR * mhat / (math.Sqrt(vhat) + o.Epsilon)
		}
	}
}

// RMSProp is the RMSProp optimizer used by the original DQN paper.
type RMSProp struct {
	LR      float64
	Decay   float64
	Epsilon float64

	cache []tensor.Vec
}

// NewRMSProp returns an RMSProp optimizer with the DQN-standard decay.
func NewRMSProp(lr float64) *RMSProp {
	return &RMSProp{LR: lr, Decay: 0.95, Epsilon: 1e-6}
}

// Step implements Optimizer.
func (o *RMSProp) Step(n *Net) {
	params := n.Params()
	if o.cache == nil {
		o.cache = makeState(params)
	}
	for i, p := range params {
		c := o.cache[i]
		for j := range p.Val {
			g := p.Grad[j]
			c[j] = o.Decay*c[j] + (1-o.Decay)*g*g
			p.Val[j] -= o.LR * g / (math.Sqrt(c[j]) + o.Epsilon)
		}
	}
}

func makeState(params []Param) []tensor.Vec {
	st := make([]tensor.Vec, len(params))
	for i, p := range params {
		st[i] = tensor.NewVec(len(p.Val))
	}
	return st
}

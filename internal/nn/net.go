package nn

import (
	"fmt"

	"ams/internal/tensor"
)

// Net is a feed-forward Q-value network: a stack of fully connected ReLU
// layers over a sparse binary input, topped either by a plain linear output
// head or by a dueling pair of heads (state-value V and per-action
// advantage A) combined as Q = V + A - mean(A), per Wang et al. (2015).
//
// A Net is not safe for concurrent use: forward passes cache activations
// for the subsequent backward pass. Clone the network (or use separate
// instances) for parallel evaluation.
type Net struct {
	in, out int
	hidden  []int
	dueling bool

	feature []*Linear // in -> hidden[0] -> ... -> hidden[last]
	advHead *Linear   // hidden[last] -> out
	valHead *Linear   // hidden[last] -> 1, only when dueling

	// forward caches
	acts    []tensor.Vec // post-ReLU activation of each feature layer
	preacts []tensor.Vec // pre-ReLU sums of each feature layer
	adv     tensor.Vec
	val     tensor.Vec
	q       tensor.Vec
	active  []int // sparse input of the last forward

	// backward scratch
	dacts []tensor.Vec
	dadv  tensor.Vec
}

// Config describes a Q-network architecture.
type Config struct {
	In      int   // input (labeling-state) dimension
	Hidden  []int // hidden layer widths; the paper uses one layer of 256
	Out     int   // number of actions
	Dueling bool  // use the dueling value/advantage decomposition
}

// NewNet builds a network from cfg with weights drawn from rng.
func NewNet(cfg Config, rng *tensor.RNG) *Net {
	if cfg.In <= 0 || cfg.Out <= 0 {
		panic(fmt.Sprintf("nn: invalid net dims in=%d out=%d", cfg.In, cfg.Out))
	}
	if len(cfg.Hidden) == 0 {
		panic("nn: at least one hidden layer required")
	}
	n := &Net{in: cfg.In, out: cfg.Out, hidden: append([]int(nil), cfg.Hidden...), dueling: cfg.Dueling}
	prev := cfg.In
	for _, h := range cfg.Hidden {
		if h <= 0 {
			panic("nn: non-positive hidden width")
		}
		n.feature = append(n.feature, NewLinear(prev, h, rng))
		n.acts = append(n.acts, tensor.NewVec(h))
		n.preacts = append(n.preacts, tensor.NewVec(h))
		n.dacts = append(n.dacts, tensor.NewVec(h))
		prev = h
	}
	n.advHead = NewLinear(prev, cfg.Out, rng)
	n.adv = tensor.NewVec(cfg.Out)
	n.dadv = tensor.NewVec(cfg.Out)
	n.q = tensor.NewVec(cfg.Out)
	if cfg.Dueling {
		n.valHead = NewLinear(prev, 1, rng)
		n.val = tensor.NewVec(1)
	}
	return n
}

// In returns the input dimension.
func (n *Net) In() int { return n.in }

// Out returns the number of actions.
func (n *Net) Out() int { return n.out }

// Dueling reports whether the network uses dueling heads.
func (n *Net) Dueling() bool { return n.dueling }

// Forward evaluates the network on a sparse binary input whose set bits
// are listed in active, returning the Q-value vector. The returned slice
// aliases internal storage and is invalidated by the next Forward.
func (n *Net) Forward(active []int) tensor.Vec {
	n.active = append(n.active[:0], active...)
	var inAct tensor.Vec
	for li, l := range n.feature {
		if li == 0 {
			l.ForwardSparseInto(n.preacts[0], active)
		} else {
			l.ForwardInto(n.preacts[li], inAct)
		}
		relu(n.acts[li], n.preacts[li])
		inAct = n.acts[li]
	}
	n.advHead.ForwardInto(n.adv, inAct)
	if !n.dueling {
		copy(n.q, n.adv)
		return n.q
	}
	n.valHead.ForwardInto(n.val, inAct)
	mean := n.adv.Mean()
	v := n.val[0]
	for i, a := range n.adv {
		n.q[i] = v + a - mean
	}
	return n.q
}

// Backward accumulates parameter gradients given dQ, the gradient of the
// loss w.r.t. the Q output of the most recent Forward call.
func (n *Net) Backward(dQ tensor.Vec) {
	last := len(n.feature) - 1
	top := n.acts[last]
	dTop := n.dacts[last]
	dTop.Zero()

	if n.dueling {
		// Q_i = V + A_i - mean(A)  =>  dV = sum_i dQ_i,
		// dA_i = dQ_i - mean(dQ).
		var sum float64
		for _, g := range dQ {
			sum += g
		}
		mean := sum / float64(n.out)
		for i, g := range dQ {
			n.dadv[i] = g - mean
		}
		n.valHead.BackwardDense(dTop, tensor.Vec{sum}, top)
		// advHead gradient adds into dTop as well.
		advIn := tensor.NewVec(len(top))
		n.advHead.BackwardDense(advIn, n.dadv, top)
		dTop.Add(advIn)
	} else {
		n.advHead.BackwardDense(dTop, dQ, top)
	}

	// Back through the feature stack.
	for li := last; li >= 0; li-- {
		// ReLU gate: zero the gradient where the pre-activation was <= 0.
		d := n.dacts[li]
		pre := n.preacts[li]
		for i := range d {
			if pre[i] <= 0 {
				d[i] = 0
			}
		}
		if li == 0 {
			n.feature[0].BackwardSparse(d, n.active)
		} else {
			n.dacts[li-1].Zero()
			n.feature[li].BackwardDense(n.dacts[li-1], d, n.acts[li-1])
		}
	}
}

// ZeroGrad clears all accumulated gradients.
func (n *Net) ZeroGrad() {
	for _, l := range n.feature {
		l.ZeroGrad()
	}
	n.advHead.ZeroGrad()
	if n.dueling {
		n.valHead.ZeroGrad()
	}
}

// Params returns flattened (value, gradient) views over every parameter.
func (n *Net) Params() []Param {
	var ps []Param
	for _, l := range n.feature {
		ps = l.Params(ps)
	}
	ps = n.advHead.Params(ps)
	if n.dueling {
		ps = n.valHead.Params(ps)
	}
	return ps
}

// NumParams returns the total number of scalar parameters.
func (n *Net) NumParams() int {
	var total int
	for _, p := range n.Params() {
		total += len(p.Val)
	}
	return total
}

// Clone returns a deep copy sharing no storage with the receiver.
func (n *Net) Clone() *Net {
	c := NewNet(Config{In: n.in, Hidden: n.hidden, Out: n.out, Dueling: n.dueling}, tensor.NewRNG(0))
	c.CopyWeightsFrom(n)
	return c
}

// CopyWeightsFrom copies every parameter value from src. Architectures
// must match; gradients are not copied.
func (n *Net) CopyWeightsFrom(src *Net) {
	dst, s := n.Params(), src.Params()
	if len(dst) != len(s) {
		panic("nn: CopyWeightsFrom architecture mismatch")
	}
	for i := range dst {
		if len(dst[i].Val) != len(s[i].Val) {
			panic("nn: CopyWeightsFrom parameter shape mismatch")
		}
		copy(dst[i].Val, s[i].Val)
	}
}

// SoftUpdateFrom blends src parameters into the receiver:
// theta <- tau*src + (1-tau)*theta. Used for Polyak target-network updates.
func (n *Net) SoftUpdateFrom(src *Net, tau float64) {
	dst, s := n.Params(), src.Params()
	if len(dst) != len(s) {
		panic("nn: SoftUpdateFrom architecture mismatch")
	}
	for i := range dst {
		dv, sv := dst[i].Val, s[i].Val
		for j := range dv {
			dv[j] = tau*sv[j] + (1-tau)*dv[j]
		}
	}
}

func relu(out, in tensor.Vec) {
	for i, x := range in {
		if x > 0 {
			out[i] = x
		} else {
			out[i] = 0
		}
	}
}

package nn

import (
	"bytes"
	"math"
	"testing"

	"ams/internal/tensor"
)

// Deeper architectures (two hidden layers) exercise the full backward
// recursion through intermediate dense layers, which the single-hidden
// tests never reach.

func newDeepNet(dueling bool) *Net {
	return NewNet(Config{In: 10, Hidden: []int{12, 8}, Out: 4, Dueling: dueling},
		tensor.NewRNG(17))
}

func TestDeepForwardFinite(t *testing.T) {
	for _, dueling := range []bool{false, true} {
		n := newDeepNet(dueling)
		for _, active := range [][]int{nil, {0}, {1, 5, 9}, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}} {
			q := n.Forward(active)
			if len(q) != 4 {
				t.Fatalf("output size %d", len(q))
			}
			for _, v := range q {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("non-finite output (dueling=%v active=%v)", dueling, active)
				}
			}
		}
	}
}

func deepGradCheck(t *testing.T, dueling bool) {
	t.Helper()
	n := newDeepNet(dueling)
	active := []int{2, 7}
	const action = 1

	n.ZeroGrad()
	n.Forward(active)
	dQ := tensor.NewVec(4)
	dQ[action] = 1
	n.Backward(dQ)

	params := n.Params()
	checked := 0
	for pi, p := range params {
		stride := 1 + len(p.Val)/5
		for j := 0; j < len(p.Val); j += stride {
			want := numericalGrad(n, active, action, &params[pi].Val[j])
			got := p.Grad[j]
			if math.Abs(want-got) > 1e-5*(1+math.Abs(want)) {
				t.Fatalf("deep grad mismatch (dueling=%v) param %d idx %d: %v vs %v",
					dueling, pi, j, got, want)
			}
			checked++
		}
	}
	if checked < 25 {
		t.Fatalf("deep gradient check only covered %d coordinates", checked)
	}
}

func TestDeepGradCheckPlain(t *testing.T)   { deepGradCheck(t, false) }
func TestDeepGradCheckDueling(t *testing.T) { deepGradCheck(t, true) }

func TestDeepLearnsXORLikeMapping(t *testing.T) {
	// Inputs {0},{1},{0,1},{} map to classes 1,1,0,0 — not linearly
	// separable over the two input bits, so a working hidden stack is
	// required.
	n := NewNet(Config{In: 2, Hidden: []int{16, 8}, Out: 2}, tensor.NewRNG(3))
	opt := NewAdam(0.02)
	cases := []struct {
		active []int
		class  int
	}{
		{[]int{0}, 1}, {[]int{1}, 1}, {[]int{0, 1}, 0}, {nil, 0},
	}
	rng := tensor.NewRNG(5)
	for step := 0; step < 3000; step++ {
		c := cases[rng.Intn(len(cases))]
		q := n.Forward(c.active)
		dQ := tensor.NewVec(2)
		for i := range dQ {
			want := 0.0
			if i == c.class {
				want = 1.0
			}
			_, g := MSELoss(q[i], want)
			dQ[i] = g
		}
		n.ZeroGrad()
		n.Backward(dQ)
		opt.Step(n)
	}
	for _, c := range cases {
		_, got := n.Forward(c.active).Max()
		if got != c.class {
			t.Fatalf("XOR-like case %v misclassified as %d", c.active, got)
		}
	}
}

func TestDeepSaveLoadRoundTrip(t *testing.T) {
	n := newDeepNet(true)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	m, err := Load(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	qa := n.Forward([]int{1, 4}).Clone()
	qb := m.Forward([]int{1, 4}).Clone()
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatal("deep round trip differs")
		}
	}
}

func TestDeepNumParams(t *testing.T) {
	n := newDeepNet(false)
	want := 10*12 + 12 + 12*8 + 8 + 8*4 + 4
	if got := n.NumParams(); got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
}

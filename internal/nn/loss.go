package nn

import "math"

// HuberLoss returns the Huber (smooth-L1) loss with threshold delta for
// residual r = pred - target, together with its derivative w.r.t. pred.
// DQN-style training clips the TD-error gradient exactly this way.
func HuberLoss(pred, target, delta float64) (loss, grad float64) {
	r := pred - target
	a := math.Abs(r)
	if a <= delta {
		return 0.5 * r * r, r
	}
	return delta * (a - 0.5*delta), delta * sign(r)
}

// MSELoss returns 0.5*(pred-target)^2 and its derivative w.r.t. pred.
func MSELoss(pred, target float64) (loss, grad float64) {
	r := pred - target
	return 0.5 * r * r, r
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	if x > 0 {
		return 1
	}
	return 0
}

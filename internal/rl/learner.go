package rl

import (
	"fmt"

	"ams/internal/nn"
	"ams/internal/tensor"
)

// Algorithm selects the Q-learning variant used to compute bootstrap
// targets (and, for DuelingDQN, the network architecture).
type Algorithm int

// The four trainers evaluated in the paper (§VI-B).
const (
	DQN Algorithm = iota
	DoubleDQN
	DuelingDQN
	DeepSARSA
)

// String returns the canonical paper name of the algorithm.
func (a Algorithm) String() string {
	switch a {
	case DQN:
		return "DQN"
	case DoubleDQN:
		return "DoubleDQN"
	case DuelingDQN:
		return "DuelingDQN"
	case DeepSARSA:
		return "DeepSARSA"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm converts a name as printed by String back to an
// Algorithm value.
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range []Algorithm{DQN, DoubleDQN, DuelingDQN, DeepSARSA} {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("rl: unknown algorithm %q", s)
}

// Algorithms lists every supported variant in paper order.
func Algorithms() []Algorithm {
	return []Algorithm{DQN, DoubleDQN, DuelingDQN, DeepSARSA}
}

// LearnerConfig configures a Learner.
type LearnerConfig struct {
	Algo            Algorithm
	StateDim        int   // labeling-state dimension (|L(M)|)
	Actions         int   // |M| + 1 (models plus the END action)
	Hidden          []int // hidden widths; default {256} per the paper
	Gamma           float64
	LearningRate    float64
	BatchSize       int
	ReplayCapacity  int
	TargetSyncEvery int // hard target-network sync period (train steps)
	WarmupSize      int // transitions required before updates begin
	HuberDelta      float64

	// TargetTau, when positive, switches target maintenance to Polyak
	// soft updates (theta_target <- tau*theta + (1-tau)*theta_target)
	// applied after every train step instead of periodic hard syncs.
	TargetTau float64

	// Prioritized enables proportional prioritized experience replay
	// with exponent PriorityAlpha (default 0.6). The paper's agents use
	// uniform replay; this is an extension knob.
	Prioritized   bool
	PriorityAlpha float64
}

// withDefaults fills zero fields with sensible paper-aligned defaults.
func (c LearnerConfig) withDefaults() LearnerConfig {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{256}
	}
	if c.Gamma == 0 {
		c.Gamma = 0.9
	}
	if c.LearningRate == 0 {
		c.LearningRate = 3e-4
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.ReplayCapacity == 0 {
		c.ReplayCapacity = 20000
	}
	if c.TargetSyncEvery == 0 {
		c.TargetSyncEvery = 500
	}
	if c.WarmupSize == 0 {
		c.WarmupSize = 16 * c.BatchSize
	}
	if c.HuberDelta == 0 {
		c.HuberDelta = 1
	}
	if c.PriorityAlpha == 0 {
		c.PriorityAlpha = 0.6
	}
	return c
}

// Learner trains a Q-network from transitions. It owns the online and
// target networks, the replay buffer, and the optimizer.
type Learner struct {
	cfg    LearnerConfig
	online *nn.Net
	target *nn.Net
	opt    nn.Optimizer
	buf    *ReplayBuffer
	pbuf   *PrioritizedBuffer
	rng    *tensor.RNG

	trainSteps int
	batch      []Transition
	tdErrs     []float64
	dQ         tensor.Vec
}

// NewLearner constructs a learner. The DuelingDQN variant instantiates the
// dueling network architecture; the others use the plain MLP.
func NewLearner(cfg LearnerConfig, rng *tensor.RNG) *Learner {
	cfg = cfg.withDefaults()
	if cfg.StateDim <= 0 || cfg.Actions <= 1 {
		panic(fmt.Sprintf("rl: invalid learner dims state=%d actions=%d", cfg.StateDim, cfg.Actions))
	}
	netCfg := nn.Config{
		In:      cfg.StateDim,
		Hidden:  cfg.Hidden,
		Out:     cfg.Actions,
		Dueling: cfg.Algo == DuelingDQN,
	}
	online := nn.NewNet(netCfg, rng)
	target := online.Clone()
	l := &Learner{
		cfg:    cfg,
		online: online,
		target: target,
		opt:    nn.NewAdam(cfg.LearningRate),
		rng:    rng,
		batch:  make([]Transition, cfg.BatchSize),
		tdErrs: make([]float64, cfg.BatchSize),
		dQ:     tensor.NewVec(cfg.Actions),
	}
	if cfg.Prioritized {
		l.pbuf = NewPrioritizedBuffer(cfg.ReplayCapacity, cfg.PriorityAlpha, rng.Split())
	} else {
		l.buf = NewReplayBuffer(cfg.ReplayCapacity, rng.Split())
	}
	return l
}

// Config returns the (defaulted) configuration.
func (l *Learner) Config() LearnerConfig { return l.cfg }

// Online returns the online network. Callers must not use it concurrently
// with training.
func (l *Learner) Online() *nn.Net { return l.online }

// Buffer exposes the uniform replay buffer (nil when the learner uses
// prioritized replay).
func (l *Learner) Buffer() *ReplayBuffer { return l.buf }

// BufferLen returns the number of stored transitions in whichever buffer
// is active.
func (l *Learner) BufferLen() int {
	if l.pbuf != nil {
		return l.pbuf.Len()
	}
	return l.buf.Len()
}

// QValues evaluates the online network on a sparse state. The returned
// vector aliases network storage and is invalidated by the next forward.
func (l *Learner) QValues(state []int) tensor.Vec { return l.online.Forward(state) }

// SelectAction performs epsilon-greedy selection restricted to the allowed
// action indices. It panics when allowed is empty.
func (l *Learner) SelectAction(state []int, epsilon float64, allowed []int) int {
	if len(allowed) == 0 {
		panic("rl: SelectAction with no allowed actions")
	}
	if l.rng.Bool(epsilon) {
		return allowed[l.rng.Intn(len(allowed))]
	}
	q := l.online.Forward(state)
	best, bestQ := allowed[0], q[allowed[0]]
	for _, a := range allowed[1:] {
		if q[a] > bestQ {
			best, bestQ = a, q[a]
		}
	}
	return best
}

// Observe appends a transition to the replay buffer.
func (l *Learner) Observe(tr Transition) {
	if l.pbuf != nil {
		l.pbuf.Add(tr)
		return
	}
	l.buf.Add(tr)
}

// TrainStep samples a minibatch and applies one optimizer update,
// returning the mean Huber loss. It is a no-op (returning 0) until the
// buffer has finished its warmup.
func (l *Learner) TrainStep() float64 {
	if l.BufferLen() < l.cfg.WarmupSize || l.BufferLen() < l.cfg.BatchSize {
		return 0
	}
	var batch []Transition
	var idxs []int
	if l.pbuf != nil {
		batch, idxs = l.pbuf.Sample(l.cfg.BatchSize)
	} else {
		batch = l.buf.SampleInto(l.batch)
	}
	l.online.ZeroGrad()
	var totalLoss float64
	for i := range batch {
		tr := &batch[i]
		y := l.targetValue(tr)
		q := l.online.Forward(tr.State)
		td := q[tr.Action] - y
		l.tdErrs[i] = td
		loss, grad := nn.HuberLoss(q[tr.Action], y, l.cfg.HuberDelta)
		totalLoss += loss
		l.dQ.Zero()
		l.dQ[tr.Action] = grad / float64(len(batch))
		l.online.Backward(l.dQ)
	}
	if l.pbuf != nil {
		l.pbuf.UpdatePriorities(idxs, l.tdErrs[:len(batch)])
	}
	l.opt.Step(l.online)
	l.trainSteps++
	if l.cfg.TargetTau > 0 {
		l.target.SoftUpdateFrom(l.online, l.cfg.TargetTau)
	} else if l.trainSteps%l.cfg.TargetSyncEvery == 0 {
		l.target.CopyWeightsFrom(l.online)
	}
	return totalLoss / float64(len(batch))
}

// targetValue computes the bootstrap target for one transition according
// to the configured algorithm.
func (l *Learner) targetValue(tr *Transition) float64 {
	if tr.Done {
		return tr.Reward
	}
	switch l.cfg.Algo {
	case DoubleDQN, DuelingDQN:
		// Action selected by the online net, evaluated by the target net.
		// The dueling variant also uses the double estimator, as in the
		// dueling-networks paper, which keeps its shared value stream from
		// compounding max-bias.
		qOnline := l.online.Forward(tr.Next)
		_, argmax := qOnline.Max()
		qTarget := l.target.Forward(tr.Next)
		return tr.Reward + l.cfg.Gamma*qTarget[argmax]
	case DeepSARSA:
		// On-policy: evaluate the action the behaviour policy actually took.
		qTarget := l.target.Forward(tr.Next)
		return tr.Reward + l.cfg.Gamma*qTarget[tr.NextAction]
	default: // DQN uses the standard max-target.
		qTarget := l.target.Forward(tr.Next)
		maxQ, _ := qTarget.Max()
		return tr.Reward + l.cfg.Gamma*maxQ
	}
}

// SyncTarget forces a hard copy of the online network into the target.
func (l *Learner) SyncTarget() { l.target.CopyWeightsFrom(l.online) }

// TrainSteps returns the number of optimizer updates performed.
func (l *Learner) TrainSteps() int { return l.trainSteps }

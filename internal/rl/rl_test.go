package rl

import (
	"math"
	"testing"
	"testing/quick"

	"ams/internal/tensor"
)

func TestReplayBufferRing(t *testing.T) {
	b := NewReplayBuffer(3, tensor.NewRNG(1))
	for i := 0; i < 5; i++ {
		b.Add(Transition{Action: i})
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	// Oldest two (actions 0 and 1) must have been evicted.
	seen := map[int]bool{}
	dst := make([]Transition, 64)
	for _, tr := range b.SampleInto(dst) {
		seen[tr.Action] = true
	}
	if seen[0] || seen[1] {
		t.Fatalf("evicted transitions still sampled: %v", seen)
	}
	for a := 2; a <= 4; a++ {
		if !seen[a] {
			t.Fatalf("action %d never sampled from full buffer", a)
		}
	}
}

func TestReplayBufferCopiesStates(t *testing.T) {
	b := NewReplayBuffer(2, tensor.NewRNG(1))
	state := []int{1, 2}
	b.Add(Transition{State: state})
	state[0] = 99
	dst := make([]Transition, 1)
	got := b.SampleInto(dst)[0]
	if got.State[0] == 99 {
		t.Fatal("replay buffer aliases caller state slice")
	}
}

func TestReplayBufferEmptySample(t *testing.T) {
	b := NewReplayBuffer(2, tensor.NewRNG(1))
	if got := b.SampleInto(make([]Transition, 4)); len(got) != 0 {
		t.Fatalf("sample from empty buffer returned %d items", len(got))
	}
}

func TestReplayBufferZeroCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-capacity buffer did not panic")
		}
	}()
	NewReplayBuffer(0, tensor.NewRNG(1))
}

func TestEpsilonSchedule(t *testing.T) {
	s := EpsilonSchedule{Start: 1, End: 0.1, DecaySteps: 100}
	if got := s.At(0); got != 1 {
		t.Fatalf("At(0) = %v", got)
	}
	if got := s.At(100); got != 0.1 {
		t.Fatalf("At(100) = %v", got)
	}
	if got := s.At(1000); got != 0.1 {
		t.Fatalf("At(1000) = %v", got)
	}
	mid := s.At(50)
	if math.Abs(mid-0.55) > 1e-12 {
		t.Fatalf("At(50) = %v, want 0.55", mid)
	}
	if got := s.At(-5); got != 1 {
		t.Fatalf("At(-5) = %v, want clamped Start", got)
	}
}

func TestEpsilonMonotoneProperty(t *testing.T) {
	s := EpsilonSchedule{Start: 1, End: 0.05, DecaySteps: 500}
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return s.At(x) >= s.At(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithmStringRoundTrip(t *testing.T) {
	for _, a := range Algorithms() {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Fatalf("round trip failed for %v: %v %v", a, got, err)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Fatal("ParseAlgorithm accepted junk")
	}
}

func newTestLearner(algo Algorithm, seed uint64) *Learner {
	return NewLearner(LearnerConfig{
		Algo:            algo,
		StateDim:        6,
		Actions:         4,
		Hidden:          []int{16},
		Gamma:           0.9,
		LearningRate:    0.01,
		BatchSize:       8,
		ReplayCapacity:  256,
		TargetSyncEvery: 20,
		WarmupSize:      8,
	}, tensor.NewRNG(seed))
}

func TestSelectActionRestricted(t *testing.T) {
	l := newTestLearner(DQN, 2)
	for i := 0; i < 200; i++ {
		a := l.SelectAction([]int{0}, 1.0, []int{1, 3})
		if a != 1 && a != 3 {
			t.Fatalf("selected disallowed action %d", a)
		}
	}
	// Greedy also restricted.
	for i := 0; i < 50; i++ {
		a := l.SelectAction([]int{0}, 0.0, []int{2})
		if a != 2 {
			t.Fatalf("greedy selection ignored restriction: %d", a)
		}
	}
}

func TestSelectActionEmptyAllowedPanics(t *testing.T) {
	l := newTestLearner(DQN, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("empty allowed set did not panic")
		}
	}()
	l.SelectAction([]int{0}, 0.5, nil)
}

func TestTrainStepNoopUntilBatch(t *testing.T) {
	l := newTestLearner(DQN, 3)
	if loss := l.TrainStep(); loss != 0 {
		t.Fatalf("TrainStep on empty buffer returned %v", loss)
	}
	if l.TrainSteps() != 0 {
		t.Fatal("TrainSteps advanced without data")
	}
}

// bandit environment: state is empty; action 2 always pays 1, others 0.
// Every learner variant must discover this.
func TestLearnersSolveBandit(t *testing.T) {
	for _, algo := range Algorithms() {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			l := newTestLearner(algo, 7)
			for ep := 0; ep < 600; ep++ {
				a := l.SelectAction(nil, 0.3, []int{0, 1, 2, 3})
				r := 0.0
				if a == 2 {
					r = 1.0
				}
				l.Observe(Transition{State: nil, Action: a, Reward: r, Next: nil,
					NextAction: 0, Done: true})
				l.TrainStep()
			}
			q := l.QValues(nil)
			_, best := q.Max()
			if best != 2 {
				t.Fatalf("%v failed bandit: Q=%v", algo, q)
			}
		})
	}
}

// Two-step chain: from state {}, action 0 moves to state {label 1} with
// reward 0; from {1}, action 1 pays 1 and ends. Gamma discounts mean
// Q({},0) must approach gamma*1 and Q({1},1) approaches 1. This exercises
// bootstrapping through the target network for every variant.
func TestLearnersBootstrapChain(t *testing.T) {
	for _, algo := range Algorithms() {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			l := newTestLearner(algo, 11)
			rng := tensor.NewRNG(13)
			for ep := 0; ep < 900; ep++ {
				// Step 1 (from empty state).
				a1 := l.SelectAction(nil, 0.25, []int{0, 1, 2, 3})
				if a1 != 0 {
					// Wrong first move ends the episode with no reward.
					l.Observe(Transition{State: nil, Action: a1, Reward: 0, Done: true})
					l.TrainStep()
					continue
				}
				// Step 2 (from state {1}).
				a2 := l.SelectAction([]int{1}, 0.25, []int{0, 1, 2, 3})
				r2 := 0.0
				if a2 == 1 {
					r2 = 1.0
				}
				l.Observe(Transition{State: nil, Action: 0, Reward: 0,
					Next: []int{1}, NextAction: a2, Done: false})
				l.Observe(Transition{State: []int{1}, Action: a2, Reward: r2, Done: true})
				l.TrainStep()
				_ = rng
			}
			qs := l.QValues([]int{1}).Clone()
			_, best2 := qs.Max()
			if best2 != 1 {
				t.Fatalf("%v: second-step policy wrong, Q({1})=%v", algo, qs)
			}
			q0 := l.QValues(nil).Clone()
			if q0[0] < 0.3 {
				t.Fatalf("%v: no value propagated to first step, Q({})=%v", algo, q0)
			}
		})
	}
}

func TestDuelingUsesDuelingNet(t *testing.T) {
	l := newTestLearner(DuelingDQN, 5)
	if !l.Online().Dueling() {
		t.Fatal("DuelingDQN learner built a plain network")
	}
	l2 := newTestLearner(DoubleDQN, 5)
	if l2.Online().Dueling() {
		t.Fatal("DoubleDQN learner built a dueling network")
	}
}

func TestTargetSyncPeriod(t *testing.T) {
	l := newTestLearner(DQN, 9)
	for i := 0; i < 40; i++ {
		l.Observe(Transition{State: []int{i % 6}, Action: i % 4, Reward: 1, Done: true})
	}
	before := l.target.Forward([]int{0}).Clone()
	for i := 0; i < 19; i++ {
		l.TrainStep()
	}
	mid := l.target.Forward([]int{0}).Clone()
	for i := range before {
		if before[i] != mid[i] {
			t.Fatal("target network drifted before sync period")
		}
	}
	l.TrainStep() // 20th step triggers sync
	after := l.target.Forward([]int{0}).Clone()
	same := true
	for i := range before {
		if before[i] != after[i] {
			same = false
		}
	}
	if same {
		t.Fatal("target network did not sync at the configured period")
	}
}

func TestLearnerDefaults(t *testing.T) {
	l := NewLearner(LearnerConfig{Algo: DQN, StateDim: 4, Actions: 3}, tensor.NewRNG(1))
	cfg := l.Config()
	if cfg.Gamma != 0.9 || cfg.BatchSize != 32 || len(cfg.Hidden) != 1 || cfg.Hidden[0] != 256 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if cfg.WarmupSize != 16*cfg.BatchSize {
		t.Fatalf("warmup default wrong: %d", cfg.WarmupSize)
	}
}

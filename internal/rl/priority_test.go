package rl

import (
	"math"
	"testing"
	"testing/quick"

	"ams/internal/tensor"
)

func TestPrioritizedBufferBasics(t *testing.T) {
	b := NewPrioritizedBuffer(8, 0.6, tensor.NewRNG(1))
	if b.Len() != 0 {
		t.Fatal("fresh buffer not empty")
	}
	for i := 0; i < 5; i++ {
		b.Add(Transition{Action: i})
	}
	if b.Len() != 5 {
		t.Fatalf("Len = %d", b.Len())
	}
	trs, idxs := b.Sample(16)
	if len(trs) != 16 || len(idxs) != 16 {
		t.Fatalf("sample sizes %d/%d", len(trs), len(idxs))
	}
	for i, tr := range trs {
		if tr.Action < 0 || tr.Action >= 5 {
			t.Fatalf("sampled bogus transition %+v", tr)
		}
		if idxs[i] < 0 || idxs[i] >= 5 {
			t.Fatalf("sampled bogus index %d", idxs[i])
		}
	}
}

func TestPrioritizedBufferEviction(t *testing.T) {
	b := NewPrioritizedBuffer(4, 0.6, tensor.NewRNG(2))
	for i := 0; i < 10; i++ {
		b.Add(Transition{Action: i})
	}
	if b.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", b.Len())
	}
	trs, _ := b.Sample(64)
	for _, tr := range trs {
		if tr.Action < 6 {
			t.Fatalf("evicted transition %d sampled", tr.Action)
		}
	}
}

func TestPrioritizedSamplingFollowsPriorities(t *testing.T) {
	b := NewPrioritizedBuffer(4, 1.0, tensor.NewRNG(3))
	for i := 0; i < 4; i++ {
		b.Add(Transition{Action: i})
	}
	// Give transition 2 a huge TD error, everything else tiny.
	b.UpdatePriorities([]int{0, 1, 2, 3}, []float64{0.01, 0.01, 10, 0.01})
	counts := map[int]int{}
	const n = 5000
	trs, _ := b.Sample(n)
	for _, tr := range trs {
		counts[tr.Action]++
	}
	frac := float64(counts[2]) / n
	if frac < 0.9 {
		t.Fatalf("high-priority transition sampled only %.2f of the time", frac)
	}
}

func TestPrioritizedTreeMassConsistent(t *testing.T) {
	rng := tensor.NewRNG(5)
	f := func(seed uint16) bool {
		b := NewPrioritizedBuffer(16, 0.7, tensor.NewRNG(uint64(seed)))
		for i := 0; i < 40; i++ {
			b.Add(Transition{Action: i})
			if i%3 == 0 && b.Len() > 2 {
				_, idxs := b.Sample(2)
				b.UpdatePriorities(idxs, []float64{rng.Float64() * 5, rng.Float64() * 5})
			}
		}
		// Tree root must equal the sum of the leaves.
		var leafSum float64
		for i := 16 - 1; i < 2*16-1; i++ {
			if b.tree[i] < 0 {
				return false
			}
			leafSum += b.tree[i]
		}
		return math.Abs(leafSum-b.Total()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPrioritizedZeroCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	NewPrioritizedBuffer(0, 0.5, tensor.NewRNG(1))
}

func TestLearnerPrioritizedSolvesBandit(t *testing.T) {
	l := NewLearner(LearnerConfig{
		Algo:            DQN,
		StateDim:        6,
		Actions:         4,
		Hidden:          []int{16},
		Gamma:           0.9,
		LearningRate:    0.01,
		BatchSize:       8,
		ReplayCapacity:  256,
		TargetSyncEvery: 20,
		WarmupSize:      8,
		Prioritized:     true,
	}, tensor.NewRNG(7))
	if l.Buffer() != nil {
		t.Fatal("prioritized learner exposes a uniform buffer")
	}
	for ep := 0; ep < 600; ep++ {
		a := l.SelectAction(nil, 0.3, []int{0, 1, 2, 3})
		r := 0.0
		if a == 2 {
			r = 1.0
		}
		l.Observe(Transition{Action: a, Reward: r, Done: true})
		l.TrainStep()
	}
	q := l.QValues(nil)
	_, best := q.Max()
	if best != 2 {
		t.Fatalf("prioritized learner failed bandit: Q=%v", q)
	}
}

func TestLearnerSoftTargetUpdates(t *testing.T) {
	l := NewLearner(LearnerConfig{
		Algo:            DQN,
		StateDim:        6,
		Actions:         4,
		Hidden:          []int{16},
		BatchSize:       8,
		WarmupSize:      8,
		TargetSyncEvery: 1 << 30, // hard sync never fires
		TargetTau:       0.05,
	}, tensor.NewRNG(9))
	for i := 0; i < 40; i++ {
		l.Observe(Transition{State: []int{i % 6}, Action: i % 4, Reward: 1, Done: true})
	}
	before := l.target.Forward([]int{0}).Clone()
	for i := 0; i < 5; i++ {
		l.TrainStep()
	}
	after := l.target.Forward([]int{0}).Clone()
	moved := false
	for i := range before {
		if before[i] != after[i] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("soft updates did not move the target network")
	}
}

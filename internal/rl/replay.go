// Package rl provides the reinforcement-learning machinery of the AMS
// reproduction: experience transitions, a ring replay buffer, epsilon
// schedules, and Q-learning trainers for the four algorithm variants the
// paper evaluates (DQN, DoubleDQN, DuelingDQN, DeepSARSA).
//
// The package is environment-agnostic: states are sparse index sets, and
// the training driver in internal/core supplies transitions drawn from the
// labeling environment.
package rl

import (
	"ams/internal/tensor"
)

// Transition is one (s, a, r, s') experience. States are sparse sets of
// active label indices. NextAction is the on-policy follow-up action and
// is only consulted by DeepSARSA.
type Transition struct {
	State      []int
	Action     int
	Reward     float64
	Next       []int
	NextAction int
	Done       bool
}

// ReplayBuffer is a fixed-capacity ring buffer of transitions with uniform
// random sampling.
type ReplayBuffer struct {
	data []Transition
	pos  int
	full bool
	rng  *tensor.RNG
}

// NewReplayBuffer returns a buffer holding at most capacity transitions.
func NewReplayBuffer(capacity int, rng *tensor.RNG) *ReplayBuffer {
	if capacity <= 0 {
		panic("rl: replay buffer capacity must be positive")
	}
	return &ReplayBuffer{data: make([]Transition, 0, capacity), rng: rng}
}

// Add stores a transition, evicting the oldest when full. The transition's
// state slices are copied so callers may reuse their buffers.
func (b *ReplayBuffer) Add(tr Transition) {
	tr.State = append([]int(nil), tr.State...)
	tr.Next = append([]int(nil), tr.Next...)
	if len(b.data) < cap(b.data) {
		b.data = append(b.data, tr)
		return
	}
	b.data[b.pos] = tr
	b.pos = (b.pos + 1) % cap(b.data)
	b.full = true
}

// Len returns the number of stored transitions.
func (b *ReplayBuffer) Len() int { return len(b.data) }

// Cap returns the buffer capacity.
func (b *ReplayBuffer) Cap() int { return cap(b.data) }

// SampleInto fills dst with uniformly sampled transitions (with
// replacement) and returns dst[:n] where n = min(len(dst), Len). An empty
// buffer yields an empty slice.
func (b *ReplayBuffer) SampleInto(dst []Transition) []Transition {
	if len(b.data) == 0 {
		return dst[:0]
	}
	n := len(dst)
	for i := 0; i < n; i++ {
		dst[i] = b.data[b.rng.Intn(len(b.data))]
	}
	return dst[:n]
}

// EpsilonSchedule linearly anneals exploration from Start to End over
// DecaySteps environment steps, then stays at End.
type EpsilonSchedule struct {
	Start      float64
	End        float64
	DecaySteps int
}

// At returns the epsilon for the given global step.
func (s EpsilonSchedule) At(step int) float64 {
	if s.DecaySteps <= 0 || step >= s.DecaySteps {
		return s.End
	}
	if step < 0 {
		step = 0
	}
	frac := float64(step) / float64(s.DecaySteps)
	return s.Start + (s.End-s.Start)*frac
}

package rl

import (
	"math"

	"ams/internal/tensor"
)

// PrioritizedBuffer is a proportional prioritized experience replay
// buffer (Schaul et al., 2016): transitions are sampled with probability
// proportional to priority^alpha, where priority tracks the last observed
// absolute TD error. It is an optional extension — the paper's agents use
// uniform replay — exposed through LearnerConfig.Prioritized.
//
// The implementation uses a sum-tree over a ring of transitions so both
// updates and samples are O(log n).
type PrioritizedBuffer struct {
	capacity int
	alpha    float64
	eps      float64

	data []Transition
	pos  int
	size int

	tree []float64 // binary sum-tree, leaves at [capacity-1, 2*capacity-1)
	max  float64   // running max priority for fresh transitions

	rng *tensor.RNG
}

// NewPrioritizedBuffer returns a buffer with the given capacity and
// priority exponent alpha (0 = uniform).
func NewPrioritizedBuffer(capacity int, alpha float64, rng *tensor.RNG) *PrioritizedBuffer {
	if capacity <= 0 {
		panic("rl: prioritized buffer capacity must be positive")
	}
	// Round capacity up to a power of two for a clean tree layout.
	c := 1
	for c < capacity {
		c <<= 1
	}
	return &PrioritizedBuffer{
		capacity: c,
		alpha:    alpha,
		eps:      1e-3,
		data:     make([]Transition, c),
		tree:     make([]float64, 2*c),
		max:      1,
		rng:      rng,
	}
}

// Len returns the number of stored transitions.
func (b *PrioritizedBuffer) Len() int { return b.size }

// Add stores a transition at the running maximum priority so it is
// sampled at least once soon.
func (b *PrioritizedBuffer) Add(tr Transition) {
	tr.State = append([]int(nil), tr.State...)
	tr.Next = append([]int(nil), tr.Next...)
	b.data[b.pos] = tr
	b.setPriority(b.pos, b.max)
	b.pos = (b.pos + 1) % b.capacity
	if b.size < b.capacity {
		b.size++
	}
}

// setPriority writes p^alpha into the leaf and repairs the path up.
func (b *PrioritizedBuffer) setPriority(idx int, p float64) {
	leaf := b.capacity - 1 + idx
	v := math.Pow(p+b.eps, b.alpha)
	delta := v - b.tree[leaf]
	for i := leaf; ; i = (i - 1) / 2 {
		b.tree[i] += delta
		if i == 0 {
			break
		}
	}
}

// Sample draws n transitions proportional to priority, returning the
// transitions and their buffer indices (for UpdatePriorities).
func (b *PrioritizedBuffer) Sample(n int) ([]Transition, []int) {
	if b.size == 0 {
		return nil, nil
	}
	trs := make([]Transition, n)
	idxs := make([]int, n)
	total := b.tree[0]
	for i := 0; i < n; i++ {
		x := b.rng.Float64() * total
		node := 0
		for node < b.capacity-1 {
			left := 2*node + 1
			if x < b.tree[left] {
				node = left
			} else {
				x -= b.tree[left]
				node = left + 1
			}
		}
		idx := node - (b.capacity - 1)
		if idx >= b.size {
			// Unfilled leaf (zero priority paths cannot reach here unless
			// the tree is sparse); clamp to a valid slot.
			idx = b.rng.Intn(b.size)
		}
		trs[i] = b.data[idx]
		idxs[i] = idx
	}
	return trs, idxs
}

// UpdatePriorities records the new absolute TD errors of sampled
// transitions.
func (b *PrioritizedBuffer) UpdatePriorities(idxs []int, tdErrs []float64) {
	for i, idx := range idxs {
		p := math.Abs(tdErrs[i])
		if p > b.max {
			b.max = p
		}
		b.setPriority(idx, p)
	}
}

// Total returns the tree mass (for tests).
func (b *PrioritizedBuffer) Total() float64 { return b.tree[0] }

package ams

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
)

// TestTelemetryBitIdenticalAcrossPolicies: turning telemetry on must not
// change a single byte of any schedule — instruments observe decisions,
// they never participate in them. Every registry policy runs the same
// item stream in three modes — bare, plain telemetry, and the full
// span-tracing stack (sized tracer ring plus SLO burn accounting) — and
// the delivered results must match exactly across all of them: executed
// models, order, nominal times, labels, recall.
func TestTelemetryBitIdenticalAcrossPolicies(t *testing.T) {
	const items = 8
	modes := []struct {
		name string
		mut  func(*ServeConfig)
	}{
		{"telemetry", func(c *ServeConfig) { c.Telemetry = true }},
		{"spans+slo", func(c *ServeConfig) {
			c.Telemetry = true
			c.TraceCapacity = 64
			c.SLOs = []string{"p99<400ms", "tight:p50<50ms"}
		}},
	}
	for _, pol := range registryPolicies() {
		t.Run(pol.Name(), func(t *testing.T) {
			// The stochastic policy seeds its RNG per worker, so which
			// worker dequeues an item — a runtime race, orthogonal to the
			// telemetry contract under test — picks the draw stream. Pin it
			// to one worker, as TestBatchSizeOneBitIdenticalAcrossPolicies
			// does, so its schedules compare run to run.
			workers := 2
			if pol.Name() == PolicyRandom.Name() {
				workers = 1
			}
			run := func(mut func(*ServeConfig)) []*Result {
				cfg := ServeConfig{
					Workers:        workers,
					Policy:         pol,
					DeadlineSec:    0.5,
					MemoryGB:       8,
					TimeScale:      0.001,
					BatchSize:      2,
					PredictorCache: true,
				}
				if mut != nil {
					mut(&cfg)
				}
				srv, err := testSys.NewServer(testAgent, cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer srv.Close()
				out := make([]*Result, items)
				for i := 0; i < items; i++ {
					tk, err := srv.SubmitWait(bg, testSys.TestItem(i))
					if err != nil {
						t.Fatal(err)
					}
					if out[i], err = tk.Wait(bg); err != nil {
						t.Fatal(err)
					}
				}
				return out
			}
			plain := run(nil)
			for _, mode := range modes {
				instrumented := run(mode.mut)
				for i := range plain {
					if !reflect.DeepEqual(instrumented[i], plain[i]) {
						t.Fatalf("item %d: %s mode changed the result:\n%+v\nvs\n%+v",
							i, mode.name, instrumented[i], plain[i])
					}
				}
			}
		})
	}
}

// TestTelemetryDisabledInert: without ServeConfig.Telemetry there is no
// registry, no tracer, and no exporter — every surface reports empty.
func TestTelemetryDisabledInert(t *testing.T) {
	srv, err := testSys.NewServer(testAgent, ServeConfig{
		Workers: 1, DeadlineSec: 0.5, TimeScale: 0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tk, err := srv.SubmitWait(bg, testSys.TestItem(0).WithID("inert"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(bg); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.Telemetry != nil {
		t.Fatalf("disabled server produced a telemetry snapshot: %d series", len(st.Telemetry))
	}
	if addr := srv.MetricsAddr(); addr != "" {
		t.Fatalf("disabled server bound an exporter at %q", addr)
	}
	if trs := srv.Traces(8); trs != nil {
		t.Fatalf("disabled server recorded traces: %d", len(trs))
	}
	if _, ok := srv.TraceFor("inert"); ok {
		t.Fatal("disabled server retrieved a trace by tag")
	}
}

// TestTelemetryEndToEnd drives a sharded, batched, cache-sharing server
// with the exporter bound, on mixed traffic (test items with ground
// truth, generated external items without), and checks every exposition
// surface: /metrics families, /statusz JSON, /tracez by tag, pprof, the
// ServeStats.Telemetry snapshot, and per-ticket decision traces.
func TestTelemetryEndToEnd(t *testing.T) {
	srv, err := testSys.NewServer(testAgent, ServeConfig{
		Workers:        2,
		Shards:         2,
		DeadlineSec:    0.5,
		MemoryGB:       8,
		TimeScale:      0.001,
		BatchSize:      2,
		PredictorCache: true,
		MetricsAddr:    "127.0.0.1:0", // implies Telemetry
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for i := 0; i < 6; i++ {
		tk, err := srv.SubmitWait(bg, testSys.TestItem(i).WithID(fmt.Sprintf("item-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Wait(bg); err != nil {
			t.Fatal(err)
		}
	}
	// Ingested traffic: no ground truth, so these drive the quality
	// proxy (confidence mass vs predicted residual).
	for i, item := range testSys.GenerateItems(3, 7) {
		tk, err := srv.SubmitWait(bg, item.WithID(fmt.Sprintf("ext-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Wait(bg); err != nil {
			t.Fatal(err)
		}
	}

	addr := srv.MetricsAddr()
	if addr == "" {
		t.Fatal("exporter bound no address")
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		"# TYPE ams_queue_wait_seconds histogram",
		"ams_queue_wait_seconds_bucket{le=",
		"ams_item_latency_seconds_count",
		"ams_select_seconds_sum",
		"ams_model_exec_total{model=",
		"ams_items_admitted_total",
		`ams_queue_depth{shard="0"}`,
		`ams_queue_depth{shard="1"}`,
		`ams_items_completed_total{shard="0"}`,
		"ams_shard_assigned_total",
		"ams_batch_flush_total{cause=",
		"ams_predcache_hits_total",
		"ams_quality_conf_mass_count",
		"ams_quality_residual_ratio",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var status struct {
		Status  json.RawMessage   `json:"status"`
		Metrics []TelemetryMetric `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(get("/statusz")), &status); err != nil {
		t.Fatalf("/statusz not JSON: %v", err)
	}
	if len(status.Metrics) == 0 || len(status.Status) == 0 {
		t.Fatalf("/statusz empty: %d metrics, %d status bytes", len(status.Metrics), len(status.Status))
	}

	if tz := get("/tracez?tag=item-3"); !strings.Contains(tz, `"item-3"`) {
		t.Errorf("/tracez?tag=item-3 did not return the trace: %s", tz)
	}
	if pp := get("/debug/pprof/cmdline"); pp == "" {
		t.Error("/debug/pprof/cmdline empty")
	}

	st := srv.Stats()
	if len(st.Telemetry) == 0 {
		t.Fatal("Stats().Telemetry empty with telemetry on")
	}
	byName := make(map[string]TelemetryMetric)
	for _, m := range st.Telemetry {
		if m.Labels == nil {
			byName[m.Name] = m
		}
	}
	if m := byName["ams_item_latency_seconds"]; m.Count != st.Completed {
		t.Errorf("latency histogram count %d != completed %d (views must agree with Stats)",
			m.Count, st.Completed)
	}
	if m := byName["ams_items_admitted_total"]; int64(m.Value) != st.Completed {
		t.Errorf("admitted %v != completed %d (no shedding in this test)", m.Value, st.Completed)
	}
	if m, ok := byName["ams_quality_conf_mass"]; !ok || m.Count != 3 {
		t.Errorf("quality proxy observed %d ingested items, want 3", m.Count)
	}

	if trs := srv.Traces(4); len(trs) != 4 {
		t.Fatalf("Traces(4) returned %d", len(trs))
	} else {
		ev := trs[0].Events
		if len(ev) == 0 || ev[len(ev)-1].Kind != "commit" {
			t.Fatalf("trace does not end in commit: %+v", ev)
		}
		sawSelect := false
		for _, e := range ev {
			if e.Kind == "selected" {
				sawSelect = true
				if e.RemainingMS <= 0 {
					t.Errorf("selected event carries no deadline budget: %+v", e)
				}
			}
		}
		if !sawSelect {
			t.Fatalf("trace has no selected event: %+v", ev)
		}
	}
	if tr, ok := srv.TraceFor("ext-2"); !ok || tr.Tag != "ext-2" {
		t.Fatalf("TraceFor(ext-2) = %+v, %v", tr, ok)
	}
}

// TestTelemetryCorpusViews: a server over a durable corpus exposes the
// segment's journal and fsync state as labeled series.
func TestTelemetryCorpusViews(t *testing.T) {
	c, err := testSys.OpenCorpus(t.TempDir()+"/corpus.log", CorpusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv, err := testSys.NewServer(testAgent, ServeConfig{
		Workers: 1, DeadlineSec: 0.5, TimeScale: 0.001,
		Corpus: c, Telemetry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	item, err := testSys.ComposeItem(SceneSpec{ID: "corpus-item", Persons: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := srv.SubmitWait(bg, item)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(bg); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	var records, appends TelemetryMetric
	for _, m := range srv.Stats().Telemetry {
		switch m.Name {
		case "ams_corpus_records_total":
			records = m
		case "ams_corpus_append_seconds":
			appends = m
		}
	}
	if records.Value <= 0 {
		t.Fatalf("corpus journal view reports %v records", records.Value)
	}
	if appends.Count <= 0 {
		t.Fatalf("corpus append histogram observed %d spans", appends.Count)
	}
	if records.Labels["seg"] != "0" {
		t.Fatalf("corpus series missing segment label: %+v", records.Labels)
	}
}

package ams

import "testing"

func TestLabelBatchMatchesSequential(t *testing.T) {
	images := []int{0, 1, 2, 3, 4, 5, 6, 7}
	batch, stats, err := testSys.LabelBatch(bg, testAgent, testSys.TestItems(images...), Budget{DeadlineSec: 1}, 4)
	if err != nil {
		t.Fatalf("LabelBatch: %v", err)
	}
	if stats.Processed != len(images) {
		t.Fatalf("processed %d", stats.Processed)
	}
	for i, img := range images {
		seq, err := testSys.Label(bg, testAgent, testSys.TestItem(img), Budget{DeadlineSec: 1})
		if err != nil {
			t.Fatal(err)
		}
		got := batch[i]
		if got.Image != img {
			t.Fatalf("result %d has image %d", i, got.Image)
		}
		if got.Recall != seq.Recall || got.TimeSec != seq.TimeSec ||
			len(got.ModelsRun) != len(seq.ModelsRun) {
			t.Fatalf("batch result for image %d diverges from sequential: %+v vs %+v",
				img, got, seq)
		}
		for j := range got.ModelsRun {
			if got.ModelsRun[j] != seq.ModelsRun[j] {
				t.Fatalf("image %d schedule diverges at %d", img, j)
			}
		}
	}
}

func TestLabelBatchUnconstrainedAndMemory(t *testing.T) {
	images := []int{0, 1, 2, 3}
	_, stats, err := testSys.LabelBatch(bg, testAgent, testSys.TestItems(images...), Budget{}, 2)
	if err != nil {
		t.Fatalf("unconstrained batch: %v", err)
	}
	if stats.AvgRecall < 1-1e-9 {
		t.Fatalf("unconstrained batch recall %v", stats.AvgRecall)
	}
	res, _, err := testSys.LabelBatch(bg, testAgent, testSys.TestItems(images...), Budget{DeadlineSec: 0.8, MemoryGB: 8}, 2)
	if err != nil {
		t.Fatalf("memory batch: %v", err)
	}
	for _, r := range res {
		if r.TimeSec > 0.8+1e-9 {
			t.Fatalf("batch makespan %v over deadline", r.TimeSec)
		}
	}
}

func TestLabelBatchValidation(t *testing.T) {
	if _, _, err := testSys.LabelBatch(bg, nil, testSys.TestItems(0), Budget{}, 1); err == nil {
		t.Fatal("nil agent accepted")
	}
	if _, _, err := testSys.LabelBatch(bg, testAgent, testSys.TestItems(-1), Budget{}, 1); err == nil {
		t.Fatal("bad image accepted")
	}
	if _, _, err := testSys.LabelBatch(bg, testAgent, testSys.TestItems(0), Budget{MemoryGB: 4}, 1); err == nil {
		t.Fatal("memory-without-deadline accepted")
	}
	// Empty batch is fine.
	res, stats, err := testSys.LabelBatch(bg, testAgent, nil, Budget{}, 3)
	if err != nil || len(res) != 0 || stats.Processed != 0 {
		t.Fatalf("empty batch: %v %v %v", res, stats, err)
	}
}

// TestLabelBatchManyWorkers drives the cloning rule hard: far more
// workers than cores over every budget mode. Run under -race it is the
// regression test for sharing a network between workers.
func TestLabelBatchManyWorkers(t *testing.T) {
	images := make([]int, 48)
	for i := range images {
		images[i] = i % testSys.NumTestImages()
	}
	for _, b := range []Budget{
		{DeadlineSec: 0.5},
		{DeadlineSec: 0.5, MemoryGB: 8},
		{},
	} {
		res, stats, err := testSys.LabelBatch(bg, testAgent, testSys.TestItems(images...), b, 16)
		if err != nil {
			t.Fatalf("budget %+v: %v", b, err)
		}
		if stats.Processed != len(images) {
			t.Fatalf("budget %+v processed %d", b, stats.Processed)
		}
		// Concurrency must not change the per-image answer.
		for i := range images[:4] {
			seq, err := testSys.Label(bg, testAgent, testSys.TestItem(images[i]), b)
			if err != nil {
				t.Fatal(err)
			}
			if res[i].Recall != seq.Recall {
				t.Fatalf("budget %+v image %d recall %v diverges from sequential %v",
					b, images[i], res[i].Recall, seq.Recall)
			}
		}
	}
}

func TestLabelBatchDefaultWorkers(t *testing.T) {
	images := []int{0, 1, 2}
	res, _, err := testSys.LabelBatch(bg, testAgent, testSys.TestItems(images...), Budget{DeadlineSec: 0.5}, 0)
	if err != nil || len(res) != 3 {
		t.Fatalf("default workers run failed: %v", err)
	}
}

package ams

import "testing"

// TestLabelChunkedStreamValidation is the table-driven edge-case sweep
// of the stream entry point's argument checking.
func TestLabelChunkedStreamValidation(t *testing.T) {
	for _, tc := range []struct {
		name      string
		numImages int
		chunkLen  int
		exploreN  int
		wantErr   bool
	}{
		{"zero chunk length", 100, 0, 1, true},
		{"negative chunk length", 100, -5, 1, true},
		{"stream shorter than a chunk", 5, 10, 1, true},
		{"zero explore", 100, 10, 0, true},
		{"negative explore", 100, 10, -1, true},
		{"explore beyond chunk", 100, 10, 11, true},
		{"negative stream length", -1, 10, 1, true},
		{"explore equals chunk", 150, 10, 10, false},
		{"single-image chunks", 150, 1, 1, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := testSys.LabelChunkedStream(tc.numImages, tc.chunkLen, tc.exploreN)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("LabelChunkedStream(%d, %d, %d) accepted",
						tc.numImages, tc.chunkLen, tc.exploreN)
				}
				return
			}
			if err != nil {
				t.Fatalf("LabelChunkedStream(%d, %d, %d): %v",
					tc.numImages, tc.chunkLen, tc.exploreN, err)
			}
			if res.Images != tc.numImages {
				t.Fatalf("labeled %d images, want %d", res.Images, tc.numImages)
			}
			if res.AvgRecall <= 0 || res.AvgRecall > 1 {
				t.Fatalf("recall %v out of range", res.AvgRecall)
			}
		})
	}
}

package ams

import (
	"fmt"

	"ams/internal/core"
	"ams/internal/oracle"
	"ams/internal/synth"
)

// Trainer supports incremental (continual) agent training: train some
// epochs, snapshot an agent, keep training — possibly against data from a
// different distribution (online adaptation to drifting streams).
type Trainer struct {
	sys   *System
	inner *core.Trainer
}

// NewTrainer creates an incremental trainer with the given options.
func (s *System) NewTrainer(opts TrainOptions) (*Trainer, error) {
	theta, err := s.thetaVector(opts.Priorities)
	if err != nil {
		return nil, err
	}
	inner := core.NewTrainer(len(s.Zoo.Models), core.TrainConfig{
		Algo:     opts.Algorithm,
		Epochs:   opts.Epochs,
		Hidden:   opts.Hidden,
		Theta:    theta,
		Seed:     opts.Seed,
		Dataset:  s.cfg.Dataset,
		Progress: opts.Progress,
	})
	return &Trainer{sys: s, inner: inner}, nil
}

// TrainEpochs runs additional passes over the system's training split.
func (t *Trainer) TrainEpochs(epochs int) {
	t.inner.TrainEpochs(t.sys.trainStore, epochs)
}

// TrainEpochsOn runs additional passes over freshly generated scenes from
// another dataset profile — continual adaptation to new content.
func (t *Trainer) TrainEpochsOn(dataset string, numImages, epochs int, seed uint64) error {
	profile, err := synth.ProfileByName(dataset)
	if err != nil {
		return fmt.Errorf("ams: %w", err)
	}
	if numImages < 1 {
		return fmt.Errorf("ams: numImages must be positive")
	}
	ds := synth.NewDataset(t.sys.Vocabulary, profile, numImages, seed^0x6a09e667f3bcc909)
	store := oracle.Build(t.sys.Zoo, ds.Scenes)
	t.inner.TrainEpochs(store, epochs)
	return nil
}

// Steps returns the number of environment steps taken so far.
func (t *Trainer) Steps() int { return t.inner.GlobalStep() }

// Snapshot returns an independent agent capturing the current policy.
func (t *Trainer) Snapshot() *Agent { return &Agent{inner: t.inner.Agent()} }

// thetaVector converts a Priorities map into the dense theta vector.
func (s *System) thetaVector(priorities map[string]float64) ([]float64, error) {
	if len(priorities) == 0 {
		return nil, nil
	}
	theta := make([]float64, len(s.Zoo.Models))
	for i := range theta {
		theta[i] = 1
	}
	for name, th := range priorities {
		m, ok := s.Zoo.ByName(name)
		if !ok {
			return nil, fmt.Errorf("ams: unknown model %q in Priorities", name)
		}
		if th <= 0 {
			return nil, fmt.Errorf("ams: priority for %q must be positive, got %v", name, th)
		}
		theta[m.ID] = th
	}
	return theta, nil
}

package ams

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
)

// serveCfg is the shared fast-clock server configuration: a millisecond
// of model time sleeps a microsecond.
func serveCfg(workers int) ServeConfig {
	return ServeConfig{Workers: workers, DeadlineSec: 0.5, TimeScale: 0.001}
}

// mustWait waits for a ticket without a cancellation deadline.
func mustWait(t testing.TB, tk *ServeTicket) *Result {
	t.Helper()
	res, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	return res
}

func TestServerLabelsLikeLabel(t *testing.T) {
	srv, err := testSys.NewServer(testAgent, serveCfg(2))
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	tk, err := srv.Submit(testSys.TestItem(3))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got := mustWait(t, tk)
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The server's per-item schedule is the same Algorithm-1 loop Label
	// runs, so an uncontended item must reproduce Label exactly.
	want, err := testSys.Label(bg, testAgent, testSys.TestItem(3), Budget{DeadlineSec: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got.Recall != want.Recall || got.TimeSec != want.TimeSec ||
		len(got.ModelsRun) != len(want.ModelsRun) {
		t.Fatalf("server result diverges from Label: %+v vs %+v", got, want)
	}
	for i := range got.ModelsRun {
		if got.ModelsRun[i] != want.ModelsRun[i] {
			t.Fatalf("schedule diverges at %d: %v vs %v", i, got.ModelsRun, want.ModelsRun)
		}
	}
}

// TestServerConcurrentSubmits hammers one server from many goroutines
// under a shared memory budget — the public-API race test.
func TestServerConcurrentSubmits(t *testing.T) {
	cfg := serveCfg(4)
	cfg.MemoryGB = 8 // 8192 MB shared across 4 workers forces contention
	cfg.QueueCap = 8
	srv, err := testSys.NewServer(testAgent, cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	const (
		goroutines = 6
		perG       = 20
	)
	var wg sync.WaitGroup
	results := make([][]*Result, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				img := (g*perG + i) % testSys.NumTestImages()
				tk, err := srv.SubmitWait(context.Background(), testSys.TestItem(img))
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				results[g] = append(results[g], mustWait(t, tk))
			}
		}(g)
	}
	wg.Wait()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	stats := srv.Stats()
	if stats.Items != goroutines*perG {
		t.Fatalf("completed %d items, want %d", stats.Items, goroutines*perG)
	}
	if stats.Completed != int64(goroutines*perG) {
		t.Fatalf("total completions %d, want %d", stats.Completed, goroutines*perG)
	}
	if stats.PeakMemMB <= 0 || stats.PeakMemMB > 8*1024+1e-9 {
		t.Fatalf("peak memory %v MB outside (0, 8192]", stats.PeakMemMB)
	}
	for _, rs := range results {
		for _, r := range rs {
			if r.Recall < 0 || r.Recall > 1+1e-9 || r.TimeSec > 0.5+1e-9 {
				t.Fatalf("bad result %+v", r)
			}
		}
	}
}

// TestServeMatchesSimulateServe is the sim-vs-real parity check: the
// per-item schedules are deterministic and both paths cycle the same
// images, so average recall must agree to float precision even though
// one run is real concurrent execution and the other is virtual time.
func TestServeMatchesSimulateServe(t *testing.T) {
	cfg := serveCfg(2)
	trace := ServeTrace{ArrivalRateHz: 1000, Items: 40, Seed: 5}
	real, err := testSys.Serve(bg, testAgent, cfg, trace, nil)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	sim, err := testSys.SimulateServe(testAgent, cfg, trace)
	if err != nil {
		t.Fatalf("SimulateServe: %v", err)
	}
	if real.Items != sim.Items {
		t.Fatalf("items %d vs %d", real.Items, sim.Items)
	}
	if math.Abs(real.AvgRecall-sim.AvgRecall) > 1e-9 {
		t.Fatalf("real recall %v diverges from sim %v", real.AvgRecall, sim.AvgRecall)
	}
	if real.ThroughputHz <= 0 || sim.ThroughputHz <= 0 {
		t.Fatalf("throughput %v / %v", real.ThroughputHz, sim.ThroughputHz)
	}
}

func TestServeAdmissionValidation(t *testing.T) {
	trace := ServeTrace{ArrivalRateHz: 100, Items: 5, Seed: 1}
	for _, tc := range []struct {
		name string
		cfg  ServeConfig
	}{
		{"zero workers", ServeConfig{Workers: 0, DeadlineSec: 0.5, TimeScale: 0.001}},
		{"no deadline", ServeConfig{Workers: 2, DeadlineSec: 0, TimeScale: 0.001}},
		{"exhausted memory budget", ServeConfig{Workers: 2, DeadlineSec: 0.5, MemoryGB: 0.1, TimeScale: 0.001}},
		{"negative queue", ServeConfig{Workers: 2, DeadlineSec: 0.5, QueueCap: -1, TimeScale: 0.001}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := testSys.NewServer(testAgent, tc.cfg); err == nil {
				t.Fatalf("NewServer accepted %+v", tc.cfg)
			}
			if _, err := testSys.Serve(bg, testAgent, tc.cfg, trace, nil); err == nil {
				t.Fatalf("Serve accepted %+v", tc.cfg)
			}
		})
	}
	if _, err := testSys.NewServer(nil, serveCfg(1)); err == nil {
		t.Fatal("nil agent accepted")
	}
	if _, err := testSys.Serve(bg, nil, serveCfg(1), trace, nil); err == nil {
		t.Fatal("nil agent accepted by Serve")
	}
	if _, err := testSys.SimulateServe(nil, serveCfg(1), trace); err == nil {
		t.Fatal("nil agent accepted by SimulateServe")
	}
	if _, err := testSys.SimulateServe(testAgent, serveCfg(0), trace); err == nil {
		t.Fatal("zero workers accepted by SimulateServe")
	}
	if _, err := testSys.SimulateServe(testAgent, serveCfg(1), ServeTrace{}); err == nil {
		t.Fatal("empty trace accepted by SimulateServe")
	}
}

func TestServerQueueFullSurfacesBackpressure(t *testing.T) {
	cfg := ServeConfig{Workers: 1, DeadlineSec: 0.5, QueueCap: 1, TimeScale: 0.05}
	srv, err := testSys.NewServer(testAgent, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Flood a one-worker, one-slot server: with each item occupying the
	// worker for ~25 ms of wall clock, a burst of submits must hit the
	// bounded queue.
	var sawFull bool
	for i := 0; i < 10; i++ {
		_, err := srv.Submit(testSys.TestItem(3)) // image 3 runs a non-empty schedule (see above)
		if errors.Is(err, ErrQueueFull) {
			sawFull = true
			break
		}
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if !sawFull {
		t.Fatal("bounded queue never rejected under a flood")
	}
	if srv.Stats().Rejected == 0 {
		t.Fatal("rejected counter not incremented")
	}
}

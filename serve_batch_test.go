package ams

import (
	"reflect"
	"testing"

	"ams/internal/oracle"
	"ams/internal/zoo"
)

// registryPolicies returns every built-in policy, the stochastic one
// pinned to a seed so paired runs draw identical streams.
func registryPolicies() []Policy {
	return []Policy{PolicyAlgorithm1, PolicyAlgorithm2, PolicyQGreedy, PolicyRandom.WithSeed(42)}
}

// TestBatchSizeOneBitIdenticalAcrossPolicies: BatchSize 1 routes every
// execution through the batching machinery alone, which must reproduce
// the unbatched server bit for bit — schedules, labels, recall, and
// nominal times — for every registry policy, in both execution modes
// (Algorithm 2 serves per-item parallel, the rest serial).
func TestBatchSizeOneBitIdenticalAcrossPolicies(t *testing.T) {
	const items = 8
	for _, pol := range registryPolicies() {
		t.Run(pol.Name(), func(t *testing.T) {
			run := func(batchSize int) []*Result {
				srv, err := testSys.NewServer(testAgent, ServeConfig{
					Workers:     1,
					Policy:      pol,
					DeadlineSec: 0.5,
					MemoryGB:    8,
					TimeScale:   0.001,
					BatchSize:   batchSize,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer srv.Close()
				out := make([]*Result, items)
				for i := 0; i < items; i++ {
					tk, err := srv.SubmitWait(bg, testSys.TestItem(i))
					if err != nil {
						t.Fatal(err)
					}
					if out[i], err = tk.Wait(bg); err != nil {
						t.Fatal(err)
					}
				}
				return out
			}
			plain, one := run(0), run(1)
			for i := range plain {
				if !reflect.DeepEqual(one[i], plain[i]) {
					t.Fatalf("item %d: batch=1 result diverges from unbatched:\n%+v\nvs\n%+v",
						i, one[i], plain[i])
				}
			}
		})
	}
}

// TestBatchedServingPreservesOutputs: under real cross-item batching —
// concurrent workers, coalesced executions, the shared predictor cache —
// every item's delivered result must be bit-identical to a pure
// recomputation of its committed schedule against the store. Batches
// share GPU time and footprints, never outputs.
func TestBatchedServingPreservesOutputs(t *testing.T) {
	idxOf := make(map[string]int, len(testSys.Zoo.Models))
	for i, m := range testSys.Zoo.Models {
		idxOf[m.Name] = i
	}
	for _, pol := range registryPolicies() {
		t.Run(pol.Name(), func(t *testing.T) {
			srv, err := testSys.NewServer(testAgent, ServeConfig{
				Workers:        4,
				Policy:         pol,
				DeadlineSec:    0.5,
				MemoryGB:       6,
				TimeScale:      0.001,
				BatchSize:      4,
				BatchHoldMS:    100,
				PredictorCache: true,
				QueueCap:       64,
			})
			if err != nil {
				t.Fatal(err)
			}
			n := testSys.NumTestImages()
			tickets := make([]*ServeTicket, 0, 2*n)
			for i := 0; i < 2*n; i++ {
				tk, err := srv.SubmitWait(bg, testSys.TestItem(i%n))
				if err != nil {
					t.Fatal(err)
				}
				tickets = append(tickets, tk)
			}
			for _, tk := range tickets {
				res, err := tk.Wait(bg)
				if err != nil {
					t.Fatal(err)
				}
				tr := oracle.NewTracker(testSys.testStore, res.Image)
				outs := make([]zoo.Output, 0, len(res.ModelsRun))
				for _, name := range res.ModelsRun {
					m, ok := idxOf[name]
					if !ok {
						t.Fatalf("item %d ran unknown model %q", res.Image, name)
					}
					tr.Execute(m)
					outs = append(outs, testSys.testStore.Output(res.Image, m))
				}
				pure := testSys.assembleResult(testSys.TestItem(res.Image), res.ModelsRun,
					outs, res.TimeSec*1000, tr.Recall(), tr.HasTruth())
				if !reflect.DeepEqual(res, pure) {
					t.Fatalf("item %d: batched result diverges from pure recomputation:\n%+v\nvs\n%+v",
						res.Image, res, pure)
				}
			}
			if err := srv.Close(); err != nil {
				t.Fatal(err)
			}
			st := srv.Stats()
			if st.BatchedRequests == 0 {
				t.Fatal("batching path never exercised")
			}
			if st.PredCacheHits+st.PredCacheMisses == 0 && pol.needsAgent {
				t.Fatal("shared predictor cache never consulted")
			}
		})
	}
}

module ams

go 1.24

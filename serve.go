package ams

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ams/internal/corpus"
	"ams/internal/oracle"
	"ams/internal/sched"
	"ams/internal/serve"
	"ams/internal/service"
	"ams/internal/sim"
)

// Admission errors surfaced by Server. ErrQueueFull is the backpressure
// signal of the bounded queue; ErrServerClosed follows Close.
var (
	ErrQueueFull    = serve.ErrQueueFull
	ErrServerClosed = serve.ErrClosed
)

// ServeConfig parameterizes a labeling server.
type ServeConfig struct {
	// Workers is the number of concurrent labeling workers. Each worker
	// owns a private clone of the agent's network (LabelBatch's cloning
	// rule) driving one scheduling policy.
	Workers int
	// Policy selects the per-worker scheduling policy; the zero value
	// means PolicyAlgorithm1, the server's historical default. With
	// PolicyAlgorithm2 (which requires MemoryGB) the server switches to
	// per-item parallel mode: one item's models run concurrently across
	// the pool under the shared accountant, matching sim.RunParallel
	// semantics.
	Policy Policy
	// DeadlineSec is the per-item scheduling budget, as in Label.
	DeadlineSec float64
	// MemoryGB, when positive, is the GPU memory budget shared by ALL
	// workers: Algorithm 2's joint constraint enforced globally, so the
	// sum of in-flight model footprints across the pool never exceeds
	// it. Workers block when the budget is saturated.
	MemoryGB float64
	// QueueCap bounds the admission queue (default 2*Workers). Submit
	// rejects with ErrQueueFull when it is saturated.
	QueueCap int
	// BatchSize, when positive, turns on cross-item dynamic batching:
	// same-model demand from the whole worker pool coalesces into
	// batched executions of at most BatchSize requests, each costing a
	// fixed launch overhead plus a per-item marginal instead of the full
	// model time per item — and, under a memory budget, reserving the
	// model's footprint once per batch instead of once per request.
	// Schedules (and recall) are unchanged: deadlines charge the nominal
	// model time. One runs every request alone, reproducing unbatched
	// execution exactly; zero disables batching.
	BatchSize int
	// BatchHoldMS bounds, on the simulated clock, how long a lone
	// request waits in its model's lane for batch-mates before flushing.
	// Zero uses the server's default (10 ms) when batching is on.
	BatchHoldMS float64
	// PredictorCache, when set, shares one bounded Q-prediction cache
	// across all workers and items: every clone carries the same frozen
	// weights, so any worker's forward pass for a labeling state answers
	// that state everywhere. ServeStats reports its hit rate.
	PredictorCache bool
	// TimeScale is the real seconds slept per simulated second of model
	// execution (default 1.0). Small values run the full concurrent
	// machinery at test speed.
	TimeScale float64
	// StatsWindow is how many completed items Stats retains (default
	// 65536): a long-running server summarizes only the most recent
	// window, while ServeStats.Completed keeps the total count.
	StatsWindow int
	// Corpus, when non-nil, makes ingestion durable and bounded: every
	// external item the server admits is journaled (scene, each
	// memoized model output, and the completed schedule), evicted from
	// memory once committed and unreferenced, and recoverable after a
	// crash via OpenCorpus + ReplayCorpus. Creating the server reclaims
	// the memos of items already committed in the corpus's journal —
	// replay first (ReplayCorpus) if those results are still wanted.
	Corpus *Corpus
}

// ServeTrace describes a Poisson arrival trace for Serve and
// SimulateServe.
type ServeTrace struct {
	ArrivalRateHz float64 // mean arrivals per second
	Items         int     // stream length
	Seed          uint64
}

// ServeStats reports a serving run in the same shape as the virtual-time
// simulation, plus the real server's concurrency counters. Times are on
// the simulated clock (wall-clock divided by TimeScale) so real and
// simulated runs compare field by field.
type ServeStats struct {
	Items           int     // items in the summarized window
	Completed       int64   // total completions (exceeds Items once the window wraps)
	AvgQueueWaitSec float64 // submit -> execution start
	AvgLatencySec   float64 // submit -> completion
	P95LatencySec   float64
	AvgRecall       float64 // over ground-truth-backed items only
	RecallItems     int     // items AvgRecall averaged over (external items have no recall)
	ThroughputHz    float64 // completions per simulated second
	Utilization     float64 // busy worker-time / (workers * horizon)
	HorizonSec      float64 // completion time of the last item

	PeakMemMB float64 // maximum simultaneous GPU reservation (real server)
	MemWaits  int64   // executions that blocked on the memory budget
	Rejected  int64   // submits rejected with ErrQueueFull

	// Cross-item batching counters (zero unless ServeConfig.BatchSize
	// is set). SavedGPUMS is simulated GPU time avoided versus unbatched
	// execution; BatchSavedMemMB sums the footprint reservations
	// coalesced away on the serial path.
	Batches          int64
	BatchedRequests  int64
	LargestBatch     int
	BatchSavedGPUMS  float64
	BatchSavedMemMB  float64
	PredCacheHits    int64 // shared predictor-cache hits (PredictorCache)
	PredCacheMisses  int64
	PredCacheEntries int
	// ResultsDropped counts Results-stream completions shed because the
	// subscriber fell more than a stats window behind (an abandoned
	// consumer never blocks labeling or grows memory unboundedly).
	ResultsDropped int64

	// AvgSelectSec is the real (unscaled) seconds per item spent inside
	// the policy's Next — the scheduling overhead of the paper's Table
	// III, dominated by Q-network forward passes (memoized per labeling
	// state since the Q-prediction cache). Zero for the virtual-time
	// sim, which models selection as free.
	AvgSelectSec float64
}

// Server is a running concurrent labeling server. Create one with
// NewServer, feed it with Submit or SubmitWait — held-out test images
// and externally ingested items alike — and stop it with Close (which
// drains queued items). Consume completions either per item through
// tickets or as a stream through Results.
type Server struct {
	sys    *System
	ingest *oracle.OnDemand   // test store + dynamically ingested items (no corpus)
	corpus *Corpus            // durable ingestion, when configured
	src    *corpus.Source     // the corpus's executor view (nil without corpus)
	cache  *sched.SharedCache // shared Q-prediction cache (nil unless configured)
	inner  *serve.Server

	// ingested memoizes each external item's executor index so repeated
	// submissions of one item — including backoff-retries after
	// ErrQueueFull — reuse the slot instead of growing the executor per
	// attempt. admitting marks items whose (possibly blocking) corpus
	// admission is in flight, so one item is never journaled twice; mu
	// itself is never held across a wait.
	mu        sync.Mutex
	ingested  map[*oracle.ExternalItem]int
	admitting map[*oracle.ExternalItem]chan struct{}

	resOnce sync.Once
	res     chan *Result
}

// ServeTicket tracks one submitted item to completion.
type ServeTicket struct {
	sys  *System
	item Item
	in   *serve.Ticket
}

// Done is closed when the item has been labeled.
func (t *ServeTicket) Done() <-chan struct{} { return t.in.Done() }

// Wait blocks until the item has been labeled — or ctx is cancelled,
// which abandons the wait (not the item: the server still finishes it)
// and returns ctx.Err().
//
// Commit-of-result is the item's explicit lifetime boundary: by the time
// Wait returns, the result's outputs have been captured by value (and,
// with a corpus, the completion journaled), so the result stays valid
// even after the corpus evicts the item's in-memory outputs.
func (t *ServeTicket) Wait(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-t.in.Done():
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return t.sys.serveResult(t.item, t.in.Wait()), nil
}

// serveResult converts a server completion — which carries its executed
// outputs by value, captured before the commit — into the public Result.
func (s *System) serveResult(item Item, ir serve.ItemResult) *Result {
	names := make([]string, len(ir.Executed))
	for i, m := range ir.Executed {
		names[i] = s.Zoo.Models[m].Name
	}
	return s.assembleResult(item, names, ir.Outputs, ir.ScheduleMS, ir.Recall, ir.HasRecall)
}

// NewServer starts a concurrent labeling server driven by the agent. The
// server labels built-in test images from the precomputed store and
// ingested external items by running models on demand, under the same
// policies and budgets.
func (s *System) NewServer(agent *Agent, cfg ServeConfig) (*Server, error) {
	factory, policy, cache, err := s.serveFactory(agent, cfg)
	if err != nil {
		return nil, err
	}
	sv := &Server{
		sys:       s,
		corpus:    cfg.Corpus,
		cache:     cache,
		ingested:  make(map[*oracle.ExternalItem]int),
		admitting: make(map[*oracle.ExternalItem]chan struct{}),
	}
	var (
		ex         oracle.Executor
		corpusHook serve.Corpus
	)
	if cfg.Corpus != nil {
		if cfg.Corpus.sys.Zoo != s.Zoo {
			return nil, fmt.Errorf("ams: corpus opened by a different System")
		}
		sv.src = cfg.Corpus.inner.Source(s.testStore)
		ex = sv.src
		corpusHook = sv.src
		// History already committed in the journal was delivered before:
		// reclaim its memos so a reopened corpus does not pin them.
		// ReplayCorpus recovers those results *before* building a server.
		cfg.Corpus.inner.ReclaimCommitted()
	} else {
		sv.ingest = oracle.NewOnDemand(s.Zoo, s.testStore)
		ex = sv.ingest
	}
	inner, err := serve.New(ex, factory, serve.Config{
		Config: service.Config{
			Workers:     cfg.Workers,
			DeadlineSec: cfg.DeadlineSec,
		},
		QueueCap:       cfg.QueueCap,
		MemoryBudgetMB: cfg.MemoryGB * 1024,
		BatchSize:      cfg.BatchSize,
		BatchHoldMS:    cfg.BatchHoldMS,
		TimeScale:      cfg.TimeScale,
		StatsWindow:    cfg.StatsWindow,
		ItemParallel:   policy.parallel,
		Corpus:         corpusHook,
	})
	if err != nil {
		return nil, fmt.Errorf("ams: %w", err)
	}
	sv.inner = inner
	return sv, nil
}

// resolve maps an item onto the server's executor index, ingesting
// external content. One external item occupies one executor slot no
// matter how often it is submitted or how many admissions fail.
//
// Without a corpus, ingested slots live as long as the server (results
// carry their outputs by value, but the item's memo itself is never
// reclaimed): a server on an unbounded external stream grows with its
// distinct accepted items. With a corpus, admission journals the scene
// first and committed items are evicted, bounding residency at
// CorpusOptions.MaxResident — blocking admissions wait for an eviction,
// non-blocking ones fail with ErrCorpusFull.
func (sv *Server) resolve(ctx context.Context, item Item, blocking bool) (int, error) {
	ext, err := sv.sys.checkItem(item)
	if err != nil {
		return 0, err
	}
	if ext == nil {
		return item.image, nil
	}
	for {
		sv.mu.Lock()
		if idx, ok := sv.ingested[ext]; ok {
			sv.mu.Unlock()
			return idx, nil
		}
		if sv.src == nil {
			idx := sv.ingest.Add(ext)
			sv.ingested[ext] = idx
			sv.mu.Unlock()
			return idx, nil
		}
		pending, inFlight := sv.admitting[ext]
		if !inFlight {
			pending = make(chan struct{})
			sv.admitting[ext] = pending
		}
		sv.mu.Unlock()
		if inFlight {
			// Another goroutine is admitting this same item. Submit must
			// not wait (the peer may be blocked on the watermark), so it
			// reports transient backpressure; SubmitWait waits for the
			// peer's outcome and re-checks the index map.
			if !blocking {
				return 0, ErrCorpusFull
			}
			select {
			case <-pending:
				continue
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		}
		// This goroutine owns the admission; mu is NOT held across the
		// (possibly watermark-blocked) wait, so unrelated submissions —
		// and their contexts — stay live.
		var idx int
		if blocking {
			idx, err = sv.src.AdmitWait(ctx, *ext.Scene(), item.id)
		} else {
			idx, err = sv.src.TryAdmit(*ext.Scene(), item.id)
		}
		sv.mu.Lock()
		if err == nil {
			sv.ingested[ext] = idx
		}
		delete(sv.admitting, ext)
		close(pending)
		sv.mu.Unlock()
		return idx, err
	}
}

// Submit admits one item without blocking; ErrQueueFull (server
// saturated) and ErrCorpusFull (resident watermark reached) both mean
// the caller should back off and retry.
func (sv *Server) Submit(item Item) (*ServeTicket, error) {
	idx, err := sv.resolve(context.Background(), item, false)
	if err != nil {
		return nil, err
	}
	tk, err := sv.inner.Submit(idx, item.id)
	if err != nil {
		return nil, err
	}
	return &ServeTicket{sys: sv.sys, item: item, in: tk}, nil
}

// SubmitWait admits one item, blocking under backpressure — a full
// queue, or a corpus at its resident watermark — until space frees or
// the context is cancelled (returning ctx.Err()).
func (sv *Server) SubmitWait(ctx context.Context, item Item) (*ServeTicket, error) {
	idx, err := sv.resolve(ctx, item, true)
	if err != nil {
		return nil, err
	}
	return sv.submitIndex(ctx, idx, item)
}

// submitIndex is the resolved-index tail of SubmitWait, also used by
// ReplayCorpus to re-submit items that already hold corpus slots.
func (sv *Server) submitIndex(ctx context.Context, idx int, item Item) (*ServeTicket, error) {
	tk, err := sv.inner.SubmitWait(ctx, idx, item.id)
	if err != nil {
		return nil, err
	}
	return &ServeTicket{sys: sv.sys, item: item, in: tk}, nil
}

// Checkpoint compacts the server's corpus immediately: the previous
// snapshot, the journal, and the in-memory state merge into one
// snapshot blob and the journal restarts empty. It fails when the
// server was built without ServeConfig.Corpus.
func (sv *Server) Checkpoint() error {
	if sv.corpus == nil {
		return fmt.Errorf("ams: server has no corpus to checkpoint")
	}
	return sv.corpus.Snapshot()
}

// SubmitImage is the deprecated index-based surface: it submits held-out
// image i exactly as Submit(TestItem(i)) does.
//
// Deprecated: use Submit with TestItem.
func (sv *Server) SubmitImage(image int) (*ServeTicket, error) {
	return sv.Submit(sv.sys.TestItem(image))
}

// Results subscribes to the server's completion stream: every item
// finished after the call is delivered in completion order, without the
// caller holding tickets. The channel closes after Close once all
// results are drained. Repeated calls share one subscription. Subscribe
// before submitting — earlier completions are not replayed. A slow or
// abandoned consumer never blocks labeling or Close: results buffer
// internally up to ServeConfig.StatsWindow undelivered entries, beyond
// which the oldest are dropped (ServeStats.ResultsDropped counts them).
// Like time.Tick, a subscription that is never drained holds its
// bounded buffer and two forwarding goroutines until the process exits;
// a consumer should read until the channel closes.
//
// Every delivered result was committed first — commit-of-result is the
// item's lifetime boundary: the result's labels and outputs are captured
// by value at commit, so a lagging consumer still reads intact results
// after the corpus has evicted (or a journal has compacted away) the
// items they came from.
func (sv *Server) Results() <-chan *Result {
	sv.resOnce.Do(func() {
		inner := sv.inner.Results()
		ch := make(chan *Result)
		go func() {
			defer close(ch)
			for ir := range inner {
				item := Item{id: ir.Tag, image: ir.Image, valid: true}
				if ir.Image >= sv.sys.testStore.NumScenes() {
					// Ingested item: no test-split index to report.
					item.image = -1
				}
				ch <- sv.sys.serveResult(item, ir)
			}
		}()
		sv.res = ch
	})
	return sv.res
}

// Stats summarizes the items completed so far.
func (sv *Server) Stats() ServeStats {
	st := fromRunStats(sv.inner.Stats())
	if sv.cache != nil {
		st.PredCacheHits, st.PredCacheMisses, st.PredCacheEntries = sv.cache.Stats()
	}
	return st
}

// Close stops admission, drains the queue, and waits for in-flight items.
func (sv *Server) Close() error { return sv.inner.Close() }

// Serve replays a Poisson arrival trace through a fresh server, pulling
// items from src — any SceneSource; nil means the built-in test split,
// cycled — and returns its statistics: the real-time counterpart of
// SimulateServe. The replay ends after trace.Items arrivals or when the
// source is exhausted; cancelling ctx stops admission early and returns
// the statistics of the items completed, alongside ctx.Err().
func (s *System) Serve(ctx context.Context, agent *Agent, cfg ServeConfig, trace ServeTrace, src SceneSource) (ServeStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if trace.ArrivalRateHz <= 0 || trace.Items <= 0 {
		return ServeStats{}, fmt.Errorf("ams: serve needs a positive arrival rate and item count, got %v Hz / %d items",
			trace.ArrivalRateHz, trace.Items)
	}
	if src == nil {
		src = s.TestSplitSource()
	}
	if cfg.StatsWindow == 0 {
		cfg.StatsWindow = trace.Items // summarize the whole trace
	}
	srv, err := s.NewServer(agent, cfg)
	if err != nil {
		return ServeStats{}, err
	}
	scale := cfg.TimeScale
	if scale == 0 {
		scale = 1.0 // the server's own default; keep arrival pacing on it
	}
	start := time.Now()
	arrivals := service.Arrivals(trace.Items, trace.ArrivalRateHz, trace.Seed)
	var submitErr error
	for _, at := range arrivals {
		item, ok := src.Next()
		if !ok {
			break // source exhausted: serve what arrived
		}
		if d := time.Duration(at*scale*float64(time.Second)) - time.Since(start); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			submitErr = ctx.Err()
			break
		}
		if _, err := srv.SubmitWait(ctx, item); err != nil {
			submitErr = err
			break
		}
	}
	if err := srv.Close(); err != nil && submitErr == nil {
		submitErr = err
	}
	return srv.Stats(), submitErr
}

// SimulateServe runs the virtual-time discrete-event simulation of the
// same workload — same Config and policy wiring as Serve, no real
// concurrency or sleeping — so the two can be compared side by side.
// The simulation replays the built-in test split (virtual time cannot
// consume a live external source); the memory budget and queue bound do
// not apply: the sim models an unbounded FIFO queue with serial per-item
// execution.
func (s *System) SimulateServe(agent *Agent, cfg ServeConfig, trace ServeTrace) (ServeStats, error) {
	factory, _, _, err := s.serveFactory(agent, cfg)
	if err != nil {
		return ServeStats{}, err
	}
	svcCfg := s.traceConfig(cfg, trace)
	if svcCfg.Workers <= 0 {
		return ServeStats{}, fmt.Errorf("ams: need at least one worker, got %d", svcCfg.Workers)
	}
	if svcCfg.ArrivalRateHz <= 0 || svcCfg.DeadlineSec <= 0 || svcCfg.Items <= 0 {
		return ServeStats{}, fmt.Errorf("ams: invalid serve trace %+v", svcCfg)
	}
	st := service.Run(s.testStore, factory, svcCfg)
	return fromRunStats(serve.RunStats{Stats: st, Completed: int64(st.Items)}), nil
}

// traceConfig merges the server and trace parameters into the shared
// service.Config.
func (s *System) traceConfig(cfg ServeConfig, trace ServeTrace) service.Config {
	return service.Config{
		Workers:       cfg.Workers,
		ArrivalRateHz: trace.ArrivalRateHz,
		DeadlineSec:   cfg.DeadlineSec,
		Items:         trace.Items,
		Seed:          trace.Seed,
	}
}

// serveFactory resolves cfg.Policy (defaulting to Algorithm 1, the
// server's historical behavior) and builds the per-worker policy
// factory: each worker gets a private instantiation — and through it a
// private clone of the agent's network, LabelBatch's cloning rule.
func (s *System) serveFactory(agent *Agent, cfg ServeConfig) (service.PolicyFactory, Policy, *sched.SharedCache, error) {
	policy := cfg.Policy
	if !policy.valid() {
		policy = PolicyAlgorithm1
	}
	if policy.parallel && cfg.MemoryGB <= 0 {
		return nil, Policy{}, nil, fmt.Errorf("ams: policy %q serves items in parallel and requires a memory budget", policy.Name())
	}
	// Validate up front so configuration errors (e.g. a missing agent)
	// surface before any worker starts.
	if err := policy.check(agent); err != nil {
		return nil, Policy{}, nil, err
	}
	var cache *sched.SharedCache
	if cfg.PredictorCache {
		cache = sched.NewSharedCache(0)
	}
	return func(worker int) sim.Policy {
		p, err := policy.instantiateShared(s, agent, uint64(worker), cache)
		if err != nil {
			panic(err) // unreachable: validated above
		}
		return p
	}, policy, cache, nil
}

func fromRunStats(rs serve.RunStats) ServeStats {
	return ServeStats{
		Items:           rs.Items,
		Completed:       rs.Completed,
		AvgQueueWaitSec: rs.AvgQueueWaitSec,
		AvgLatencySec:   rs.AvgLatencySec,
		P95LatencySec:   rs.P95LatencySec,
		AvgRecall:       rs.AvgRecall,
		RecallItems:     rs.RecallItems,
		ThroughputHz:    rs.ThroughputHz,
		Utilization:     rs.Utilization,
		HorizonSec:      rs.HorizonSec,
		PeakMemMB:       rs.PeakMemMB,
		MemWaits:        rs.MemWaits,
		Rejected:        rs.Rejected,
		ResultsDropped:  rs.ResultsDropped,
		Batches:         rs.Batching.Batches,
		BatchedRequests: rs.Batching.Requests,
		LargestBatch:    rs.Batching.LargestBatch,
		BatchSavedGPUMS: rs.Batching.SavedGPUMS,
		BatchSavedMemMB: rs.Batching.SavedMemMB,
		AvgSelectSec:    rs.AvgSelectSec,
	}
}

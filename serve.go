package ams

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"strconv"
	"sync"
	"time"

	"ams/internal/corpus"
	"ams/internal/obs"
	"ams/internal/oracle"
	"ams/internal/sched"
	"ams/internal/serve"
	"ams/internal/service"
	"ams/internal/shard"
	"ams/internal/sim"
)

// Admission errors surfaced by Server. ErrQueueFull is the backpressure
// signal of the bounded queue; ErrServerClosed follows Close.
var (
	ErrQueueFull    = serve.ErrQueueFull
	ErrServerClosed = serve.ErrClosed
)

// ServeConfig parameterizes a labeling server.
type ServeConfig struct {
	// Workers is the number of concurrent labeling workers. Each worker
	// owns a private clone of the agent's network (LabelBatch's cloning
	// rule) driving one scheduling policy.
	Workers int
	// Policy selects the per-worker scheduling policy; the zero value
	// means PolicyAlgorithm1, the server's historical default. With
	// PolicyAlgorithm2 (which requires MemoryGB) the server switches to
	// per-item parallel mode: one item's models run concurrently across
	// the pool under the shared accountant, matching sim.RunParallel
	// semantics.
	Policy Policy
	// DeadlineSec is the per-item scheduling budget, as in Label.
	DeadlineSec float64
	// MemoryGB, when positive, is the GPU memory budget shared by ALL
	// workers: Algorithm 2's joint constraint enforced globally, so the
	// sum of in-flight model footprints across the pool never exceeds
	// it. Workers block when the budget is saturated.
	MemoryGB float64
	// QueueCap bounds the admission queue (default 2*Workers). Submit
	// rejects with ErrQueueFull when it is saturated.
	QueueCap int
	// BatchSize, when positive, turns on cross-item dynamic batching:
	// same-model demand from the whole worker pool coalesces into
	// batched executions of at most BatchSize requests, each costing a
	// fixed launch overhead plus a per-item marginal instead of the full
	// model time per item — and, under a memory budget, reserving the
	// model's footprint once per batch instead of once per request.
	// Schedules (and recall) are unchanged: deadlines charge the nominal
	// model time. One runs every request alone, reproducing unbatched
	// execution exactly; zero disables batching.
	BatchSize int
	// BatchHoldMS bounds, on the simulated clock, how long a lone
	// request waits in its model's lane for batch-mates before flushing.
	// Zero uses the server's default (10 ms) when batching is on.
	BatchHoldMS float64
	// PredictorCache, when set, shares one bounded Q-prediction cache
	// across all workers and items: every clone carries the same frozen
	// weights, so any worker's forward pass for a labeling state answers
	// that state everywhere. ServeStats reports its hit rate.
	PredictorCache bool
	// TimeScale is the real seconds slept per simulated second of model
	// execution (default 1.0). Small values run the full concurrent
	// machinery at test speed.
	TimeScale float64
	// StatsWindow is how many completed items Stats retains (default
	// 65536): a long-running server summarizes only the most recent
	// window, while ServeStats.Completed keeps the total count.
	StatsWindow int
	// Corpus, when non-nil, makes ingestion durable and bounded: every
	// external item the server admits is journaled (scene, each
	// memoized model output, and the completed schedule), evicted from
	// memory once committed and unreferenced, and recoverable after a
	// crash via OpenCorpus + ReplayCorpus. Creating the server reclaims
	// the memos of items already committed in the corpus's journal —
	// replay first (ReplayCorpus) if those results are still wanted.
	Corpus *Corpus
	// Shards, when 2 or more, splits the server into that many
	// independent shards — each one a worker pool with its own memory
	// accountant (MemoryGB and Workers divide across them) and, with a
	// corpus, its own journal segment (the corpus must have been opened
	// with OpenCorpusDir at the same segment count) — fronted by a
	// router that places items per ShardPlacement. One shard (or zero,
	// the default) is the single-budget server, byte-for-byte the
	// pre-sharding behavior.
	Shards int
	// ShardPlacement picks the router's placement policy: "hash"
	// (default; consistent hash of the item identity, stable across
	// restarts), "least" (fewest pending+in-flight), or "affinity"
	// (items whose valuable labels map to a shard's hot models land
	// together, keeping those models' working set stable per shard).
	ShardPlacement string
	// ShardSteal lets a shard whose queue idles steal pending items from
	// its most loaded sibling (never items pinned by replay).
	ShardSteal bool
	// Telemetry turns on the server's live metric registry and decision
	// tracer: per-stage latency histograms, per-model execution counters,
	// per-shard live gauges, and a bounded ring of per-item scheduling
	// traces, snapshotted through ServeStats.Telemetry, Traces, and
	// TraceFor. Instruments only observe — schedules are bit-identical
	// with telemetry on or off — and when this is unset (and MetricsAddr
	// is empty) the whole path is inert: no registry exists and the hot
	// path allocates nothing.
	Telemetry bool
	// MetricsAddr, when non-empty (host:port; ":0" picks a free port),
	// additionally serves the telemetry over HTTP: /metrics (Prometheus
	// text), /statusz (JSON status + metric snapshot), /tracez (recent
	// decision traces; ?format=chrome exports Perfetto-loadable JSON),
	// and /debug/pprof. Implies Telemetry. The listener shuts down with
	// Close. MetricsAddr reports the bound address.
	MetricsAddr string
	// TraceCapacity sets how many completed item traces the decision
	// tracer retains in its ring (default 256). Ring evictions and
	// per-trace event/span drops are surfaced as ams_trace_* series.
	TraceCapacity int
	// SLOs lists latency objectives the server accounts every completed
	// item against, each spec "p99<250ms" or "name:p95<1s" (quantile is
	// the good-fraction target, the duration is the threshold on the
	// simulated clock). A "deadline" objective — p99 within DeadlineSec —
	// is always present when telemetry is on. Burn rates over 5 m / 1 h
	// virtual-clock windows export as ams_slo_* series. Implies
	// Telemetry.
	SLOs []string
	// FlightDir, when non-empty, arms the anomaly flight recorder: the
	// server polls trigger conditions (shed-rate spike, deadline-burn,
	// steal storm, reserve-wait stall) and on firing atomically writes a
	// timestamped JSON bundle — the recent span-trace ring plus the full
	// metric snapshot, the moments *before* the anomaly — into this
	// directory. Implies Telemetry.
	FlightDir string
	// TraceOut, when non-empty, writes the span-trace ring as Chrome
	// trace-event JSON (loadable in Perfetto / chrome://tracing) to this
	// path when the server closes. Implies Telemetry.
	TraceOut string
}

// ServeTrace describes a Poisson arrival trace for Serve and
// SimulateServe.
type ServeTrace struct {
	ArrivalRateHz float64 // mean arrivals per second
	Items         int     // stream length
	Seed          uint64
	// OpenLoop submits without blocking: an item arriving into a
	// saturated queue (or a corpus at its watermark) is shed — counted in
	// ServeStats.Rejected — instead of applying backpressure to the
	// arrival process. This is the overload configuration: arrivals keep
	// their Poisson pacing no matter how far behind the server falls,
	// which is what produces shed storms for the flight recorder to
	// catch. The default (closed-loop) SubmitWait never sheds.
	OpenLoop bool
}

// ServeStats reports a serving run in the same shape as the virtual-time
// simulation, plus the real server's concurrency counters. Times are on
// the simulated clock (wall-clock divided by TimeScale) so real and
// simulated runs compare field by field.
type ServeStats struct {
	Items           int     // items in the summarized window
	Completed       int64   // total completions (exceeds Items once the window wraps)
	AvgQueueWaitSec float64 // submit -> execution start
	AvgLatencySec   float64 // submit -> completion
	P95LatencySec   float64
	AvgRecall       float64 // over ground-truth-backed items only
	RecallItems     int     // items AvgRecall averaged over (external items have no recall)
	ThroughputHz    float64 // completions per simulated second
	Utilization     float64 // busy worker-time / (workers * horizon)
	HorizonSec      float64 // completion time of the last item

	PeakMemMB float64 // maximum simultaneous GPU reservation (real server)
	MemWaits  int64   // executions that blocked on the memory budget
	Rejected  int64   // submits rejected with ErrQueueFull

	// Cross-item batching counters (zero unless ServeConfig.BatchSize
	// is set). SavedGPUMS is simulated GPU time avoided versus unbatched
	// execution; BatchSavedMemMB sums the footprint reservations
	// coalesced away on the serial path.
	Batches          int64
	BatchedRequests  int64
	LargestBatch     int
	BatchSavedGPUMS  float64
	BatchSavedMemMB  float64
	PredCacheHits    int64 // shared predictor-cache hits (PredictorCache)
	PredCacheMisses  int64
	PredCacheEntries int
	// ResultsDropped counts Results-stream completions shed because the
	// subscriber fell more than a stats window behind (an abandoned
	// consumer never blocks labeling or grows memory unboundedly).
	ResultsDropped int64

	// AvgSelectSec is the real (unscaled) seconds per item spent inside
	// the policy's Next — the scheduling overhead of the paper's Table
	// III, dominated by Q-network forward passes (memoized per labeling
	// state since the Q-prediction cache). Zero for the virtual-time
	// sim, which models selection as free.
	AvgSelectSec float64

	// Sharding counters. Shards is 1 for the single-budget server; with
	// ServeConfig.Shards >= 2 the top-level fields above merge every
	// shard's records on one shared timeline (PeakMemMB sums the
	// per-shard peaks — the footprint bound) and PerShard breaks the run
	// out per shard. Steals counts items executed by a shard other than
	// their placed home.
	Shards   int
	Steals   int64
	PerShard []ShardServeStats

	// Telemetry is the full metric snapshot at the moment Stats was
	// called — every registered series, including the per-stage
	// histograms and per-shard views /metrics exposes — or nil when
	// ServeConfig.Telemetry is off. The scalar fields above are views
	// over the same underlying state, so the two never disagree.
	Telemetry []TelemetryMetric
}

// ShardServeStats is one shard's slice of a sharded run.
type ShardServeStats struct {
	Shard        int
	Items        int     // completions in the shard's stats window
	Completed    int64   // total completions on this shard
	ThroughputHz float64 // over the shard's own records
	Utilization  float64 // of the shard's own workers
	AvgRecall    float64 // over the shard's ground-truth-backed items
	PeakMemMB    float64 // the shard accountant's observed peak
	MemWaits     int64
	Pending      int   // placed on this shard, not yet dispatched
	Assigned     int64 // home placements routed to this shard
	Steals       int64 // items this shard stole from siblings
	StolenFrom   int64 // items siblings stole from this shard
	Rejected     int64 // submits shed at this shard's queue cap
}

// Server is a running concurrent labeling server. Create one with
// NewServer, feed it with Submit or SubmitWait — held-out test images
// and externally ingested items alike — and stop it with Close (which
// drains queued items). Consume completions either per item through
// tickets or as a stream through Results.
type Server struct {
	sys    *System
	corpus *Corpus            // durable ingestion, when configured
	cache  *sched.SharedCache // shared Q-prediction cache (nil unless configured)

	// shards always holds at least one entry. Unsharded (Shards <= 1)
	// the router is nil and every call goes straight through shards[0]
	// — exactly the pre-sharding code path. Sharded, the router owns
	// placement, stealing, and merged stats across all entries.
	shards    []*serverShard
	router    *shard.Router
	placement shard.Placement

	// Telemetry plumbing — all nil unless ServeConfig.Telemetry (or
	// MetricsAddr) asked for it. One registry and one tracer span every
	// shard: per-model series aggregate fleet-wide, per-shard state is
	// broken out through labeled views.
	reg      *obs.Registry
	tracer   *obs.Tracer
	metrics  *serve.Metrics
	exporter *obs.Exporter
	flight   *obs.FlightRecorder

	// SLO clock: virtual seconds since start (wall elapsed ÷ scale).
	start time.Time
	scale float64

	traceOut  string // Chrome trace dump path, written once at Close
	traceOnce sync.Once

	resOnce sync.Once
	res     chan *Result
}

// serverShard is one shard of the server: one worker pool
// (serve.Server, with its own memory accountant) plus its own ingestion
// state — the on-demand executor or, with a corpus, its own journal
// segment's Source.
type serverShard struct {
	sys    *System
	ingest *oracle.OnDemand // test store + dynamically ingested items (no corpus)
	src    *corpus.Source   // this shard's corpus segment view (nil without corpus)
	inner  *serve.Server

	// ingested memoizes each external item's executor index so repeated
	// submissions of one item — including backoff-retries after
	// ErrQueueFull — reuse the slot instead of growing the executor per
	// attempt. admitting marks items whose (possibly blocking) corpus
	// admission is in flight, so one item is never journaled twice; mu
	// itself is never held across a wait.
	mu        sync.Mutex
	ingested  map[*oracle.ExternalItem]int
	admitting map[*oracle.ExternalItem]chan struct{}
}

// ServeTicket tracks one submitted item to completion.
type ServeTicket struct {
	sys  *System
	item Item
	in   *serve.Ticket // unsharded
	rt   *shard.Ticket // sharded
}

// Done is closed when the item has been labeled.
func (t *ServeTicket) Done() <-chan struct{} {
	if t.rt != nil {
		return t.rt.Done()
	}
	return t.in.Done()
}

// Wait blocks until the item has been labeled — or ctx is cancelled,
// which abandons the wait (not the item: the server still finishes it)
// and returns ctx.Err().
//
// Commit-of-result is the item's explicit lifetime boundary: by the time
// Wait returns, the result's outputs have been captured by value (and,
// with a corpus, the completion journaled), so the result stays valid
// even after the corpus evicts the item's in-memory outputs.
func (t *ServeTicket) Wait(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-t.Done():
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if t.rt != nil {
		res, err := t.rt.Result()
		if err != nil {
			return nil, err
		}
		return t.sys.serveResult(t.item, res.ItemResult), nil
	}
	return t.sys.serveResult(t.item, t.in.Wait()), nil
}

// serveResult converts a server completion — which carries its executed
// outputs by value, captured before the commit — into the public Result.
func (s *System) serveResult(item Item, ir serve.ItemResult) *Result {
	names := make([]string, len(ir.Executed))
	for i, m := range ir.Executed {
		names[i] = s.Zoo.Models[m].Name
	}
	return s.assembleResult(item, names, ir.Outputs, ir.ScheduleMS, ir.Recall, ir.HasRecall)
}

// NewServer starts a concurrent labeling server driven by the agent. The
// server labels built-in test images from the precomputed store and
// ingested external items by running models on demand, under the same
// policies and budgets.
func (s *System) NewServer(agent *Agent, cfg ServeConfig) (*Server, error) {
	factory, policy, cache, err := s.serveFactory(agent, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("ams: negative shard count %d", cfg.Shards)
	}
	placement, err := shard.PlacementByName(cfg.ShardPlacement)
	if err != nil {
		return nil, fmt.Errorf("ams: %w", err)
	}
	if cfg.Corpus != nil && cfg.Corpus.sys.Zoo != s.Zoo {
		return nil, fmt.Errorf("ams: corpus opened by a different System")
	}
	sv := &Server{sys: s, corpus: cfg.Corpus, cache: cache, placement: placement,
		start: time.Now(), scale: cfg.TimeScale, traceOut: cfg.TraceOut}
	if sv.scale <= 0 {
		sv.scale = 1.0 // the serve layer's own default; keep the SLO clock on it
	}
	if cfg.Telemetry || cfg.MetricsAddr != "" || cfg.FlightDir != "" || cfg.TraceOut != "" || len(cfg.SLOs) > 0 {
		sv.reg = obs.NewRegistry()
		sv.tracer = obs.NewTracer(cfg.TraceCapacity)
		sv.tracer.SetTimeScale(sv.scale)
		names := make([]string, len(s.Zoo.Models))
		for i, mod := range s.Zoo.Models {
			names[i] = mod.Name
		}
		sv.tracer.SetModelNames(names)
		sv.metrics = serve.NewMetrics(sv.reg, s.Zoo.Models)
	}

	if cfg.Shards <= 1 {
		// The single-budget server: one shard, no router in the path.
		var seg *corpus.Corpus
		if cfg.Corpus != nil {
			if n := cfg.Corpus.Segments(); n != 1 {
				return nil, fmt.Errorf("ams: unsharded server needs a single-segment corpus, got %d segments", n)
			}
			seg = cfg.Corpus.segs[0]
		}
		sh, err := s.newShard(sv, cfg, policy, seg, factory, 0, cfg.Workers, cfg.MemoryGB, cfg.QueueCap, time.Time{})
		if err != nil {
			return nil, err
		}
		sv.shards = []*serverShard{sh}
		return sv.finishTelemetry(cfg)
	}

	n := cfg.Shards
	if cfg.Workers < n {
		return nil, fmt.Errorf("ams: %d shards need at least %d workers, got %d", n, n, cfg.Workers)
	}
	if cfg.Corpus != nil && cfg.Corpus.Segments() != n {
		return nil, fmt.Errorf("ams: %d shards need a corpus with %d journal segments (OpenCorpusDir), got %d",
			n, n, cfg.Corpus.Segments())
	}
	// All shards share one clock epoch so their completion records merge
	// into a single coherent timeline in Stats.
	epoch := time.Now()
	workerSplit := make([]int, n)
	for i := range workerSplit {
		workerSplit[i] = cfg.Workers / n
		if i < cfg.Workers%n {
			workerSplit[i]++
		}
	}
	queuePer := 0
	if cfg.QueueCap > 0 {
		if queuePer = cfg.QueueCap / n; queuePer == 0 {
			queuePer = 1
		}
	}
	sv.shards = make([]*serverShard, n)
	inners := make([]*serve.Server, n)
	for i := 0; i < n; i++ {
		var seg *corpus.Corpus
		if cfg.Corpus != nil {
			seg = cfg.Corpus.segs[i]
		}
		// Offset the worker indices so every clone across the fleet
		// seeds its policy differently, exactly as one big pool would.
		offset := 0
		for j := 0; j < i; j++ {
			offset += workerSplit[j]
		}
		shardFactory := func(w int) sim.Policy { return factory(offset + w) }
		sh, err := s.newShard(sv, cfg, policy, seg, shardFactory, i, workerSplit[i], cfg.MemoryGB/float64(n), queuePer, epoch)
		if err != nil {
			for _, prev := range sv.shards[:i] {
				prev.inner.Close()
			}
			return nil, err
		}
		sv.shards[i] = sh
		inners[i] = sh.inner
	}
	router, err := shard.New(inners, shard.Config{
		Placement: placement,
		Steal:     cfg.ShardSteal,
		Models:    len(s.Zoo.Models),
		Workers:   workerSplit,
		Tracer:    sv.tracer,
	})
	if err != nil {
		for _, sh := range sv.shards {
			sh.inner.Close()
		}
		return nil, fmt.Errorf("ams: %w", err)
	}
	sv.router = router
	return sv.finishTelemetry(cfg)
}

// finishTelemetry completes a constructed server's observability: it
// registers the live-state views (per-shard serve gauges, router
// counters, corpus durability metrics, predictor-cache stats) and —
// last, after every other fallible construction step — binds the HTTP
// exporter, so a bind failure tears the fully built server down
// cleanly. No-op without telemetry.
func (sv *Server) finishTelemetry(cfg ServeConfig) (*Server, error) {
	if sv.reg == nil {
		return sv, nil
	}
	for i, sh := range sv.shards {
		sh.inner.RegisterViews(sv.reg, obs.L("shard", strconv.Itoa(i)))
	}
	if sv.router != nil {
		sv.router.RegisterViews(sv.reg)
	}
	if sv.corpus != nil {
		for i, seg := range sv.corpus.segs {
			label := obs.L("seg", strconv.Itoa(i))
			seg.SetMetrics(corpus.NewMetrics(sv.reg, label))
			seg.RegisterViews(sv.reg, label)
		}
	}
	if sv.cache != nil {
		sv.reg.CounterFunc("ams_predcache_hits_total",
			"Shared Q-prediction cache hits",
			func() int64 { h, _, _ := sv.cache.Stats(); return h })
		sv.reg.CounterFunc("ams_predcache_misses_total",
			"Shared Q-prediction cache misses",
			func() int64 { _, m, _ := sv.cache.Stats(); return m })
		sv.reg.GaugeFunc("ams_predcache_entries",
			"Entries resident in the shared Q-prediction cache",
			func() float64 { _, _, n := sv.cache.Stats(); return float64(n) })
	}
	// Tracer health: ring evictions (traces lost to capacity) and
	// event/span drops inside published traces, so silent trace loss is
	// itself observable.
	sv.reg.CounterFunc("ams_trace_evicted_total",
		"Completed traces overwritten by ring wraparound",
		sv.tracer.Evicted)
	sv.reg.CounterFunc("ams_trace_dropped_total",
		"Events and spans dropped inside published traces (per-item caps)",
		sv.tracer.DroppedTotal)
	sv.reg.GaugeFunc("ams_trace_capacity",
		"Trace-ring capacity (ServeConfig.TraceCapacity)",
		func() float64 { return float64(sv.tracer.Capacity()) })
	if err := sv.buildSLOs(cfg); err != nil {
		_ = sv.Close()
		return nil, err
	}
	if cfg.FlightDir != "" {
		sv.armFlightRecorder(cfg.FlightDir)
	}
	if cfg.MetricsAddr != "" {
		exp, err := obs.NewExporter(cfg.MetricsAddr, sv.reg, sv.tracer, func() any { return sv.Stats() })
		if err != nil {
			_ = sv.Close()
			return nil, fmt.Errorf("ams: metrics exporter: %w", err)
		}
		sv.exporter = exp
	}
	return sv, nil
}

// buildSLOs constructs the server's latency objectives — the implicit
// "deadline" objective (p99 within the scheduling deadline) plus every
// ServeConfig.SLOs spec — on the virtual clock, registers their
// ams_slo_* views, and threads them into the serve layer's completion
// hook. Runs before any item is admitted, so the slice is never written
// concurrently with itemDone reads.
func (sv *Server) buildSLOs(cfg ServeConfig) error {
	// Virtual seconds since server start: burn windows advance on the
	// simulated clock, so a 0.01× test run and a real-time run account
	// burn identically.
	vnow := func() float64 { return obs.SinceSeconds(sv.start) / sv.scale }
	var slos []*obs.SLO
	if cfg.DeadlineSec > 0 {
		slos = append(slos, obs.NewSLO("deadline", cfg.DeadlineSec, 0.99, vnow))
	}
	for _, spec := range cfg.SLOs {
		o, err := ParseSLO(spec)
		if err != nil {
			return fmt.Errorf("ams: %w", err)
		}
		slos = append(slos, obs.NewSLO(o.Name, o.ThresholdSec, o.Quantile, vnow))
	}
	for _, slo := range slos {
		slo.RegisterViews(sv.reg)
		slo := slo
		sv.reg.GaugeFunc("ams_slo_quantile_seconds",
			"Observed latency at the SLO's target quantile (lifetime histogram)",
			func() float64 { return sv.metrics.Latency.Quantile(slo.Target) },
			obs.L("slo", slo.Name))
	}
	sv.metrics.SLOs = slos
	return nil
}

// armFlightRecorder builds the anomaly flight recorder with the
// server's default trigger catalog and starts its poll loop. Triggers
// only read counters and burn gauges — nothing feeds back into
// scheduling.
func (sv *Server) armFlightRecorder(dir string) {
	fr := obs.NewFlightRecorder(dir, sv.reg, sv.tracer)
	// Shed storm: total sheds (server queues + router-level rejects)
	// growing faster than 5/s.
	fr.AddTrigger("shed-storm", obs.RateTrigger(func() int64 {
		n := sv.metrics.Shed.Value()
		if sv.router != nil {
			n += sv.router.RejectedTotal()
		}
		return n
	}, 5))
	// Deadline burn: any objective's fastest burn window at 8× budget —
	// the classic page-level fast-burn threshold.
	if len(sv.metrics.SLOs) > 0 {
		fr.AddTrigger("deadline-burn", obs.ThresholdTrigger(func() float64 {
			worst := 0.0
			for _, slo := range sv.metrics.SLOs {
				ws := slo.Windows()
				if len(ws) == 0 {
					continue
				}
				fast := ws[0]
				for _, w := range ws[1:] {
					if w < fast {
						fast = w
					}
				}
				if b := slo.BurnRate(fast); b > worst {
					worst = b
				}
			}
			return worst
		}, 8))
	}
	// Steal storm: sustained stealing means placement is fighting the
	// load instead of spreading it.
	if sv.router != nil {
		fr.AddTrigger("steal-storm", obs.RateTrigger(sv.router.StealsTotal, 20))
	}
	// Reserve stall: executions piling into the memory accountant's
	// wait queue faster than 50/s.
	fr.AddTrigger("reserve-stall", obs.RateTrigger(sv.metrics.ReserveWait.Count, 50))
	fr.RegisterViews(sv.reg)
	fr.Start()
	sv.flight = fr
}

// newShard builds one shard: a serve.Server over either the shard's
// corpus segment or a private on-demand executor.
func (s *System) newShard(sv *Server, cfg ServeConfig, policy Policy, seg *corpus.Corpus, factory service.PolicyFactory,
	shardIdx, workers int, memoryGB float64, queueCap int, epoch time.Time) (*serverShard, error) {
	sh := &serverShard{
		sys:       s,
		ingested:  make(map[*oracle.ExternalItem]int),
		admitting: make(map[*oracle.ExternalItem]chan struct{}),
	}
	var (
		ex         oracle.Executor
		corpusHook serve.Corpus
	)
	if seg != nil {
		sh.src = seg.Source(s.testStore)
		ex = sh.src
		corpusHook = sh.src
		// History already committed in the journal was delivered before:
		// reclaim its memos so a reopened corpus does not pin them.
		// ReplayCorpus recovers those results *before* building a server.
		seg.ReclaimCommitted()
	} else {
		sh.ingest = oracle.NewOnDemand(s.Zoo, s.testStore)
		ex = sh.ingest
	}
	inner, err := serve.New(ex, factory, serve.Config{
		Config: service.Config{
			Workers:     workers,
			DeadlineSec: cfg.DeadlineSec,
		},
		QueueCap:       queueCap,
		MemoryBudgetMB: memoryGB * 1024,
		BatchSize:      cfg.BatchSize,
		BatchHoldMS:    cfg.BatchHoldMS,
		TimeScale:      cfg.TimeScale,
		StatsWindow:    cfg.StatsWindow,
		ItemParallel:   policy.parallel,
		Corpus:         corpusHook,
		Epoch:          epoch,
		Metrics:        sv.metrics,
		Tracer:         sv.tracer,
		Shard:          shardIdx,
	})
	if err != nil {
		return nil, fmt.Errorf("ams: %w", err)
	}
	sh.inner = inner
	return sh, nil
}

// resolve maps an item onto the server's executor index, ingesting
// external content. One external item occupies one executor slot no
// matter how often it is submitted or how many admissions fail.
//
// Without a corpus, ingested slots live as long as the server (results
// carry their outputs by value, but the item's memo itself is never
// reclaimed): a server on an unbounded external stream grows with its
// distinct accepted items. With a corpus, admission journals the scene
// first and committed items are evicted, bounding residency at
// CorpusOptions.MaxResident — blocking admissions wait for an eviction,
// non-blocking ones fail with ErrCorpusFull.
func (sh *serverShard) resolve(ctx context.Context, item Item, blocking bool) (int, error) {
	ext, err := sh.sys.checkItem(item)
	if err != nil {
		return 0, err
	}
	if ext == nil {
		return item.image, nil
	}
	for {
		sh.mu.Lock()
		if idx, ok := sh.ingested[ext]; ok {
			sh.mu.Unlock()
			return idx, nil
		}
		if sh.src == nil {
			idx := sh.ingest.Add(ext)
			sh.ingested[ext] = idx
			sh.mu.Unlock()
			return idx, nil
		}
		pending, inFlight := sh.admitting[ext]
		if !inFlight {
			pending = make(chan struct{})
			sh.admitting[ext] = pending
		}
		sh.mu.Unlock()
		if inFlight {
			// Another goroutine is admitting this same item. Submit must
			// not wait (the peer may be blocked on the watermark), so it
			// reports transient backpressure; SubmitWait waits for the
			// peer's outcome and re-checks the index map.
			if !blocking {
				return 0, ErrCorpusFull
			}
			select {
			case <-pending:
				continue
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		}
		// This goroutine owns the admission; mu is NOT held across the
		// (possibly watermark-blocked) wait, so unrelated submissions —
		// and their contexts — stay live.
		var idx int
		if blocking {
			idx, err = sh.src.AdmitWait(ctx, *ext.Scene(), item.id)
		} else {
			idx, err = sh.src.TryAdmit(*ext.Scene(), item.id)
		}
		sh.mu.Lock()
		if err == nil {
			sh.ingested[ext] = idx
		}
		delete(sh.admitting, ext)
		close(pending)
		sh.mu.Unlock()
		return idx, err
	}
}

// itemKey is the stable routing identity for hash placement: the item's
// id when it has one, the test-split index otherwise, the scene's
// generation seed as a last resort — all properties that survive a
// restart, so a key lands on the same shard across runs.
func (s *System) itemKey(item Item, ext *oracle.ExternalItem) uint64 {
	if item.id != "" {
		h := fnv.New64a()
		h.Write([]byte(item.id))
		return h.Sum64()
	}
	if ext == nil {
		return uint64(item.image)
	}
	return ext.Scene().Seed
}

// affinityHint lists the models expected to carry the item's value —
// the affinity placement signal. For test items the hint derives from
// the ground truth's per-label value; for external items, from the
// scene's declared content. Production fronts would use whatever cheap
// prior they have (content type, tenant, camera); any consistent hint
// groups like traffic.
func (s *System) affinityHint(item Item, ext *oracle.ExternalItem) []int {
	weights := make(map[int]float64)
	if ext == nil {
		for l, v := range s.testStore.Truth(item.image).LabelValue {
			weights[l] = v
		}
	} else {
		scene := ext.Scene()
		add := func(l int) {
			if l >= 0 {
				weights[l] += 1
			}
		}
		add(scene.Place)
		for _, l := range scene.Objects {
			add(l)
		}
		add(scene.Emotion)
		add(scene.Gender)
		add(scene.Action)
		add(scene.Dog)
		for _, l := range scene.PoseKP {
			add(l)
		}
		for _, l := range scene.HandKP {
			add(l)
		}
	}
	return s.Zoo.SupportingModels(weights, 4)
}

// routedItem builds the router submission for an item. External items
// resolve lazily, on the shard chosen to execute them, so their corpus
// admission lands in the executing shard's own journal segment — also
// when stolen.
func (sv *Server) routedItem(item Item) (shard.Item, error) {
	ext, err := sv.sys.checkItem(item)
	if err != nil {
		return shard.Item{}, err
	}
	it := shard.Item{
		Key: sv.sys.itemKey(item, ext),
		Tag: item.id,
	}
	if sv.placement == shard.Affinity {
		// Hints cost a pass over the zoo per submission; only the
		// affinity router reads them.
		it.Hint = sv.sys.affinityHint(item, ext)
	}
	if ext == nil {
		it.Index = item.image
	} else {
		it.Resolve = func(sh int) (int, error) {
			//amsvet:allow ctxflow resolution runs at dispatch time on the executing shard, after the submitter's ctx has already returned
			return sv.shards[sh].resolve(context.Background(), item, true)
		}
	}
	return it, nil
}

// Submit admits one item without blocking; ErrQueueFull (server
// saturated) and ErrCorpusFull (resident watermark reached) both mean
// the caller should back off and retry. On a sharded server external
// items are journaled at dispatch time, on the shard that executes
// them, so a corpus at its watermark surfaces as queue backpressure
// (the shard's dispatcher waits for an eviction) rather than as
// ErrCorpusFull here.
func (sv *Server) Submit(item Item) (*ServeTicket, error) {
	if sv.router != nil {
		it, err := sv.routedItem(item)
		if err != nil {
			return nil, err
		}
		rt, err := sv.router.Submit(it)
		if err != nil {
			return nil, err
		}
		return &ServeTicket{sys: sv.sys, item: item, rt: rt}, nil
	}
	sh := sv.shards[0]
	//amsvet:allow ctxflow Submit is the non-blocking API: resolve uses TryAdmit, so this ctx is never waited on
	idx, err := sh.resolve(context.Background(), item, false)
	if err != nil {
		return nil, err
	}
	tk, err := sh.inner.Submit(idx, item.id)
	if err != nil {
		return nil, err
	}
	return &ServeTicket{sys: sv.sys, item: item, in: tk}, nil
}

// SubmitWait admits one item, blocking under backpressure — a full
// queue, or a corpus at its resident watermark — until space frees or
// the context is cancelled (returning ctx.Err()).
func (sv *Server) SubmitWait(ctx context.Context, item Item) (*ServeTicket, error) {
	if sv.router != nil {
		it, err := sv.routedItem(item)
		if err != nil {
			return nil, err
		}
		rt, err := sv.router.SubmitWait(ctx, it)
		if err != nil {
			return nil, err
		}
		return &ServeTicket{sys: sv.sys, item: item, rt: rt}, nil
	}
	sh := sv.shards[0]
	idx, err := sh.resolve(ctx, item, true)
	if err != nil {
		return nil, err
	}
	tk, err := sh.inner.SubmitWait(ctx, idx, item.id)
	if err != nil {
		return nil, err
	}
	return &ServeTicket{sys: sv.sys, item: item, in: tk}, nil
}

// submitSeg re-submits an item that already holds a slot in segment
// seg's corpus — ReplayCorpus's path. On a sharded server the item is
// pinned to that segment's shard, so its relabeling journals into the
// segment that already knows it.
func (sv *Server) submitSeg(ctx context.Context, seg, idx int, item Item) (*ServeTicket, error) {
	if sv.router != nil {
		rt, err := sv.router.SubmitWait(ctx, shard.Item{Tag: item.id, Index: idx, Pin: seg + 1})
		if err != nil {
			return nil, err
		}
		return &ServeTicket{sys: sv.sys, item: item, rt: rt}, nil
	}
	tk, err := sv.shards[0].inner.SubmitWait(ctx, idx, item.id)
	if err != nil {
		return nil, err
	}
	return &ServeTicket{sys: sv.sys, item: item, in: tk}, nil
}

// Checkpoint compacts the server's corpus immediately: the previous
// snapshot, the journal, and the in-memory state merge into one
// snapshot blob and the journal restarts empty. It fails when the
// server was built without ServeConfig.Corpus.
func (sv *Server) Checkpoint() error {
	if sv.corpus == nil {
		return fmt.Errorf("ams: server has no corpus to checkpoint")
	}
	return sv.corpus.Snapshot()
}

// SubmitImage is the deprecated index-based surface: it submits held-out
// image i exactly as Submit(TestItem(i)) does.
//
// Deprecated: use Submit with TestItem.
func (sv *Server) SubmitImage(image int) (*ServeTicket, error) {
	return sv.Submit(sv.sys.TestItem(image))
}

// Results subscribes to the server's completion stream: every item
// finished after the call is delivered in completion order, without the
// caller holding tickets. The channel closes after Close once all
// results are drained. Repeated calls share one subscription. Subscribe
// before submitting — earlier completions are not replayed. A slow or
// abandoned consumer never blocks labeling or Close: results buffer
// internally up to ServeConfig.StatsWindow undelivered entries, beyond
// which the oldest are dropped (ServeStats.ResultsDropped counts them).
// Like time.Tick, a subscription that is never drained holds its
// bounded buffer and two forwarding goroutines until the process exits;
// a consumer should read until the channel closes.
//
// Every delivered result was committed first — commit-of-result is the
// item's lifetime boundary: the result's labels and outputs are captured
// by value at commit, so a lagging consumer still reads intact results
// after the corpus has evicted (or a journal has compacted away) the
// items they came from.
func (sv *Server) Results() <-chan *Result {
	sv.resOnce.Do(func() {
		ch := make(chan *Result)
		convert := func(ir serve.ItemResult) *Result {
			item := Item{id: ir.Tag, image: ir.Image, valid: true}
			if ir.Image >= sv.sys.testStore.NumScenes() {
				// Ingested item: no test-split index to report.
				item.image = -1
			}
			return sv.sys.serveResult(item, ir)
		}
		if sv.router != nil {
			inner := sv.router.Results()
			go func() {
				defer close(ch)
				for res := range inner {
					ch <- convert(res.ItemResult)
				}
			}()
		} else {
			inner := sv.shards[0].inner.Results()
			go func() {
				defer close(ch)
				for ir := range inner {
					ch <- convert(ir)
				}
			}()
		}
		sv.res = ch
	})
	return sv.res
}

// Stats summarizes the items completed so far. On a sharded server the
// top-level fields merge every shard's completion records on the shared
// timeline and PerShard breaks out each shard.
func (sv *Server) Stats() ServeStats {
	var st ServeStats
	if sv.router != nil {
		rst := sv.router.Stats()
		st = fromRunStats(rst.Merged)
		st.Shards = len(sv.shards)
		st.Steals = rst.Steals
		st.PerShard = make([]ShardServeStats, len(rst.PerShard))
		for i, ps := range rst.PerShard {
			st.PerShard[i] = ShardServeStats{
				Shard:        ps.Shard,
				Items:        ps.Items,
				Completed:    ps.Completed,
				ThroughputHz: ps.ThroughputHz,
				Utilization:  ps.Utilization,
				AvgRecall:    ps.AvgRecall,
				PeakMemMB:    ps.PeakMemMB,
				MemWaits:     ps.MemWaits,
				Pending:      ps.Pending,
				Assigned:     ps.Assigned,
				Steals:       ps.Steals,
				StolenFrom:   ps.StolenFrom,
				Rejected:     ps.Rejected,
			}
		}
	} else {
		st = fromRunStats(sv.shards[0].inner.Stats())
		st.Shards = 1
	}
	if sv.cache != nil {
		st.PredCacheHits, st.PredCacheMisses, st.PredCacheEntries = sv.cache.Stats()
	}
	if sv.reg != nil {
		st.Telemetry = telemetryFromObs(sv.reg.Snapshot())
	}
	return st
}

// Close stops admission, drains the queue (on a sharded server, every
// shard's pending queue through its workers), waits for in-flight
// items, and — with ServeConfig.TraceOut — dumps the final span-trace
// ring as Chrome trace-event JSON.
func (sv *Server) Close() error {
	// The exporter goes first so no scrape races the teardown; Close
	// waits for its serve goroutine, keeping leak checks clean. The
	// flight recorder follows (its final poll catches an anomaly still
	// live at shutdown), then the shards drain.
	_ = sv.exporter.Close()
	_ = sv.flight.Close()
	var err error
	if sv.router != nil {
		err = sv.router.Close()
	} else {
		err = sv.shards[0].inner.Close()
	}
	if sv.traceOut != "" && sv.tracer != nil {
		// After the drain, so the dump holds every completed trace.
		sv.traceOnce.Do(func() {
			if werr := sv.dumpChromeTrace(); werr != nil && err == nil {
				err = fmt.Errorf("ams: trace-out: %w", werr)
			}
		})
	}
	return err
}

// dumpChromeTrace writes the whole trace ring to the TraceOut path.
func (sv *Server) dumpChromeTrace() error {
	f, err := os.Create(sv.traceOut)
	if err != nil {
		return err
	}
	if err := sv.tracer.WriteChrome(f, sv.tracer.Capacity(), ""); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteChromeTrace exports up to n recent span traces (all resident
// traces when n <= 0) as Chrome trace-event / Perfetto JSON — the same
// payload as /tracez?format=chrome and ServeConfig.TraceOut. A server
// without telemetry writes an empty trace document.
func (sv *Server) WriteChromeTrace(w io.Writer, n int) error {
	if n <= 0 {
		n = sv.tracer.Capacity()
		if n == 0 {
			n = 1
		}
	}
	return sv.tracer.WriteChrome(w, n, "")
}

// Serve replays a Poisson arrival trace through a fresh server, pulling
// items from src — any SceneSource; nil means the built-in test split,
// cycled — and returns its statistics: the real-time counterpart of
// SimulateServe. The replay ends after trace.Items arrivals or when the
// source is exhausted; cancelling ctx stops admission early and returns
// the statistics of the items completed, alongside ctx.Err().
func (s *System) Serve(ctx context.Context, agent *Agent, cfg ServeConfig, trace ServeTrace, src SceneSource) (ServeStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if trace.ArrivalRateHz <= 0 || trace.Items <= 0 {
		return ServeStats{}, fmt.Errorf("ams: serve needs a positive arrival rate and item count, got %v Hz / %d items",
			trace.ArrivalRateHz, trace.Items)
	}
	if src == nil {
		src = s.TestSplitSource()
	}
	if cfg.StatsWindow == 0 {
		cfg.StatsWindow = trace.Items // summarize the whole trace
	}
	srv, err := s.NewServer(agent, cfg)
	if err != nil {
		return ServeStats{}, err
	}
	scale := cfg.TimeScale
	if scale == 0 {
		scale = 1.0 // the server's own default; keep arrival pacing on it
	}
	start := time.Now()
	arrivals := service.Arrivals(trace.Items, trace.ArrivalRateHz, trace.Seed)
	var submitErr error
	for _, at := range arrivals {
		item, ok := src.Next()
		if !ok {
			break // source exhausted: serve what arrived
		}
		if d := time.Duration(at*scale*float64(time.Second)) - time.Since(start); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			submitErr = ctx.Err()
			break
		}
		if trace.OpenLoop {
			// Open loop: shed on backpressure, never block the arrival
			// process. Sheds are already counted by the admission path.
			if _, err := srv.Submit(item); err != nil &&
				err != ErrQueueFull && err != ErrCorpusFull {
				submitErr = err
				break
			}
			continue
		}
		if _, err := srv.SubmitWait(ctx, item); err != nil {
			submitErr = err
			break
		}
	}
	if err := srv.Close(); err != nil && submitErr == nil {
		submitErr = err
	}
	return srv.Stats(), submitErr
}

// SimulateServe runs the virtual-time discrete-event simulation of the
// same workload — same Config and policy wiring as Serve, no real
// concurrency or sleeping — so the two can be compared side by side.
// The simulation replays the built-in test split (virtual time cannot
// consume a live external source); the memory budget and queue bound do
// not apply: the sim models an unbounded FIFO queue with serial per-item
// execution.
func (s *System) SimulateServe(agent *Agent, cfg ServeConfig, trace ServeTrace) (ServeStats, error) {
	factory, _, _, err := s.serveFactory(agent, cfg)
	if err != nil {
		return ServeStats{}, err
	}
	svcCfg := s.traceConfig(cfg, trace)
	if svcCfg.Workers <= 0 {
		return ServeStats{}, fmt.Errorf("ams: need at least one worker, got %d", svcCfg.Workers)
	}
	if svcCfg.ArrivalRateHz <= 0 || svcCfg.DeadlineSec <= 0 || svcCfg.Items <= 0 {
		return ServeStats{}, fmt.Errorf("ams: invalid serve trace %+v", svcCfg)
	}
	st := service.Run(s.testStore, factory, svcCfg)
	return fromRunStats(serve.RunStats{Stats: st, Completed: int64(st.Items)}), nil
}

// traceConfig merges the server and trace parameters into the shared
// service.Config.
func (s *System) traceConfig(cfg ServeConfig, trace ServeTrace) service.Config {
	return service.Config{
		Workers:       cfg.Workers,
		ArrivalRateHz: trace.ArrivalRateHz,
		DeadlineSec:   cfg.DeadlineSec,
		Items:         trace.Items,
		Seed:          trace.Seed,
	}
}

// serveFactory resolves cfg.Policy (defaulting to Algorithm 1, the
// server's historical behavior) and builds the per-worker policy
// factory: each worker gets a private instantiation — and through it a
// private clone of the agent's network, LabelBatch's cloning rule.
func (s *System) serveFactory(agent *Agent, cfg ServeConfig) (service.PolicyFactory, Policy, *sched.SharedCache, error) {
	policy := cfg.Policy
	if !policy.valid() {
		policy = PolicyAlgorithm1
	}
	if policy.parallel && cfg.MemoryGB <= 0 {
		return nil, Policy{}, nil, fmt.Errorf("ams: policy %q serves items in parallel and requires a memory budget", policy.Name())
	}
	// Validate up front so configuration errors (e.g. a missing agent)
	// surface before any worker starts.
	if err := policy.check(agent); err != nil {
		return nil, Policy{}, nil, err
	}
	var cache *sched.SharedCache
	if cfg.PredictorCache {
		cache = sched.NewSharedCache(0)
	}
	return func(worker int) sim.Policy {
		p, err := policy.instantiateShared(s, agent, uint64(worker), cache)
		if err != nil {
			panic(err) // unreachable: validated above
		}
		return p
	}, policy, cache, nil
}

func fromRunStats(rs serve.RunStats) ServeStats {
	return ServeStats{
		Items:           rs.Items,
		Completed:       rs.Completed,
		AvgQueueWaitSec: rs.AvgQueueWaitSec,
		AvgLatencySec:   rs.AvgLatencySec,
		P95LatencySec:   rs.P95LatencySec,
		AvgRecall:       rs.AvgRecall,
		RecallItems:     rs.RecallItems,
		ThroughputHz:    rs.ThroughputHz,
		Utilization:     rs.Utilization,
		HorizonSec:      rs.HorizonSec,
		PeakMemMB:       rs.PeakMemMB,
		MemWaits:        rs.MemWaits,
		Rejected:        rs.Rejected,
		ResultsDropped:  rs.ResultsDropped,
		Batches:         rs.Batching.Batches,
		BatchedRequests: rs.Batching.Requests,
		LargestBatch:    rs.Batching.LargestBatch,
		BatchSavedGPUMS: rs.Batching.SavedGPUMS,
		BatchSavedMemMB: rs.Batching.SavedMemMB,
		AvgSelectSec:    rs.AvgSelectSec,
	}
}
